// Integration tests spanning the whole stack: real runtimes, DAG builders,
// cost model and simulator exercised together the way the commands and
// examples use them.
package dpflow_test

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"dpflow/internal/bench"
	"dpflow/internal/cnc"
	"dpflow/internal/core"
	"dpflow/internal/dag"
	"dpflow/internal/forkjoin"
	"dpflow/internal/fw"
	"dpflow/internal/ge"
	"dpflow/internal/gep"
	"dpflow/internal/graphgen"
	"dpflow/internal/harness"
	"dpflow/internal/kernels"
	"dpflow/internal/machine"
	"dpflow/internal/matrix"
	"dpflow/internal/model"
	"dpflow/internal/seq"
	"dpflow/internal/simsched"
	"dpflow/internal/sw"
)

// The whole-repo equivalence matrix: every benchmark, every variant,
// several worker counts and base sizes, one seed — all results must be
// bit-identical to their serial references.
func TestEndToEndEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	pool := forkjoin.NewPool(forkjoin.Config{Workers: 3})
	defer pool.Close()
	variants := []core.Variant{core.SerialRDP, core.OMPTasking,
		core.NativeCnC, core.TunerCnC, core.ManualCnC, core.NonBlockingCnC}

	geIn := matrix.NewSquare(64)
	geIn.FillDiagonallyDominant(rng)
	geRef := geIn.Clone()
	ge.Serial(geRef)

	fwIn := graphgen.Random(graphgen.Config{N: 64, Density: 0.3, MaxWeight: 9, Infinity: fw.Infinity}, rng)
	fwRef := fwIn.Clone()
	fw.Serial(fwRef)

	a := seq.RandomDNA(64, rng)
	p := &sw.Problem{A: a, B: seq.Mutate(a, 0.25, seq.DNAAlphabet, rng), Scoring: kernels.DefaultScoring}
	swTable := p.NewTable()
	swRef := p.Serial(swTable)

	for _, v := range variants {
		for _, base := range []int{4, 16} {
			x := geIn.Clone()
			if _, err := ge.Run(v, x, base, 3, pool); err != nil {
				t.Fatalf("GE %v base=%d: %v", v, base, err)
			}
			if !matrix.Equal(x, geRef) {
				t.Fatalf("GE %v base=%d differs", v, base)
			}
			d := fwIn.Clone()
			if _, err := fw.Run(v, d, base, 3, pool); err != nil {
				t.Fatalf("FW %v base=%d: %v", v, base, err)
			}
			if !matrix.Equal(d, fwRef) {
				t.Fatalf("FW %v base=%d differs", v, base)
			}
			score, err := p.Run(v, base, 3, pool)
			if err != nil {
				t.Fatalf("SW %v base=%d: %v", v, base, err)
			}
			if score != swRef {
				t.Fatalf("SW %v base=%d: score %v want %v", v, base, score, swRef)
			}
		}
	}
}

// The CnC task census of a real GE run must equal the analytic DAG size,
// tying the runtime and the simulation layer together.
func TestRuntimeMatchesDAGCensus(t *testing.T) {
	const (
		n    = 64
		base = 8
	)
	rng := rand.New(rand.NewSource(5))
	x := matrix.NewSquare(n)
	x.FillDiagonallyDominant(rng)
	stats, err := ge.RunCnC(x, base, 2, core.ManualCnC)
	if err != nil {
		t.Fatal(err)
	}
	g := dag.NewGEPDataflow(n/base, gep.Triangular)
	if stats.BaseTasks != g.Len() {
		t.Fatalf("runtime executed %d base tasks, DAG has %d", stats.BaseTasks, g.Len())
	}
}

// Simulated figure points must be internally consistent: variant times at
// the same point differ only by overheads (same exec work), so none can be
// more than ~100× apart at a moderate configuration.
func TestSimulationSanityEnvelope(t *testing.T) {
	mach := machine.EPYC64()
	var times []float64
	for _, v := range core.ParallelVariants {
		secs, err := harness.SimulatePoint(mach, core.GE, 2048, 64, v)
		if err != nil {
			t.Fatal(err)
		}
		times = append(times, secs)
	}
	lo, hi := times[0], times[0]
	for _, x := range times {
		lo, hi = math.Min(lo, x), math.Max(hi, x)
	}
	if hi/lo > 100 {
		t.Fatalf("variant spread too wide: %v", times)
	}
}

// The Estimated series must track the simulated data-flow execution within
// an order of magnitude across a broad sweep (the paper's model is crude
// but never wild).
func TestEstimatedTracksSimulated(t *testing.T) {
	mach := machine.SKYLAKE192()
	for _, n := range []int{1024, 4096} {
		for _, base := range []int{32, 128} {
			ge, err := bench.Lookup(core.GE)
			if err != nil {
				t.Fatal(err)
			}
			est := model.EstimatedTime(mach, ge, n, base)
			sim, err := harness.SimulatePoint(mach, core.GE, n, base, core.NativeCnC)
			if err != nil {
				t.Fatal(err)
			}
			if ratio := sim / est; ratio < 0.2 || ratio > 30 {
				t.Fatalf("n=%d base=%d: sim %v vs est %v (ratio %v)", n, base, sim, est, ratio)
			}
		}
	}
}

// JSON export round-trips the figure structure.
func TestFigureJSONExport(t *testing.T) {
	exp, _ := harness.FigureByID("fig6")
	res, err := exp.Run(harness.Options{Scale: 3})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"experiment": "fig6"`, `"label": "CnC_tuner"`, `"machine": "EPYC-64"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("JSON missing %s:\n%.300s", want, out)
		}
	}
}

// A GE system whose size is not a power of two is solved via PadPow2 with
// an identity-extended tail — the documented workflow for irregular sizes.
func TestNonPowerOfTwoViaPadding(t *testing.T) {
	const n = 23 // 22 unknowns
	rng := rand.New(rand.NewSource(8))
	sys, want := ge.NewSystem(n, rng)
	padded := matrix.PadPow2(sys, 0)
	for i := n; i < padded.Rows(); i++ {
		padded.Set(i, i, 1) // identity tail keeps pivots non-zero
	}
	if _, err := ge.RunCnC(padded, 4, 2, core.NativeCnC); err != nil {
		t.Fatal(err)
	}
	solved := padded.View(0, 0, n, n).Clone()
	got, err := ge.BackSubstitute(solved)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-8 {
			t.Fatalf("x[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// Deadlock diagnostics surface through the public benchmark APIs when a
// dependency can never be satisfied (here: a consumer on a never-produced
// item), matching the paper's "deadlocks are straightforward to identify".
func TestDeadlockDiagnosticsEndToEnd(t *testing.T) {
	g := cnc.NewGraph("e2e-deadlock", 2)
	items := cnc.NewItemCollection[int, bool](g, "missing")
	tags := cnc.NewTagCollection[int](g, "tg", false)
	step := cnc.NewStepCollection(g, "reader", func(i int) error {
		items.Get(i + 1000)
		return nil
	})
	tags.Prescribe(step)
	err := g.Run(func() { tags.Put(1) })
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "missing[1001]") {
		t.Fatalf("diagnostic lacks the blocking item: %v", err)
	}
}

// The simulator's variant ordering is stable under scaling of all cost
// constants (scale invariance: doubling every cost doubles every makespan).
func TestSimulatorScaleInvariance(t *testing.T) {
	g := dag.NewGEPDataflow(8, gep.Triangular)
	var c simsched.Costs
	for k := 0; k < dag.NumKinds; k++ {
		c.Exec[k] = float64(k + 1)
		c.Overhead[k] = 0.1
	}
	r1, err := simsched.Simulate(g, 4, c)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < dag.NumKinds; k++ {
		c.Exec[k] *= 2
		c.Overhead[k] *= 2
	}
	r2, err := simsched.Simulate(g, 4, c)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r2.Makespan-2*r1.Makespan) > 1e-9 {
		t.Fatalf("not scale invariant: %v vs 2*%v", r2.Makespan, r1.Makespan)
	}
}
