// Package dpflow reproduces "Understanding Recursive Divide-and-Conquer
// Dynamic Programs in Fork-Join and Data-Flow Execution Models" (Nookala,
// Kong, Ahmad, Javanmard, Chowdhury, Harrison; IPPS/IPDPSW 2021) as a Go
// library.
//
// The repository contains both sides of the paper's comparison as real,
// runnable runtimes — a work-stealing fork-join pool (internal/forkjoin,
// the OpenMP-tasking analogue) and a Concurrent Collections data-flow
// runtime (internal/cnc, the Intel CnC analogue) — together with the three
// DP benchmarks implemented on both (internal/ge, internal/sw,
// internal/fw via the shared recursion engine internal/gep), the paper's
// analytical cache/task model (internal/model), a cache simulator standing
// in for PAPI (internal/cachesim), task-DAG builders for both execution
// models (internal/dag), and a discrete-event scheduler (internal/simsched)
// that reproduces the paper's 64-core and 192-core results on any machine.
//
// Start with examples/quickstart, regenerate the paper's figures with
// cmd/dpbench, and see DESIGN.md / EXPERIMENTS.md for the experiment
// inventory and measured-vs-paper comparison.
package dpflow
