// APSP: all-pairs shortest paths on a random directed graph with recursive
// divide-and-conquer Floyd-Warshall in both execution models, verified
// against the classic triple loop and against the closed-form ring-graph
// oracle.
//
//	go run ./examples/apsp [-v 256] [-base 32] [-workers 4]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"dpflow/internal/core"
	"dpflow/internal/forkjoin"
	"dpflow/internal/fw"
	"dpflow/internal/graphgen"
	"dpflow/internal/matrix"
)

func main() {
	v := flag.Int("v", 256, "vertices (power of two)")
	base := flag.Int("base", 32, "tile size")
	workers := flag.Int("workers", 4, "runtime workers")
	density := flag.Float64("density", 0.1, "edge probability")
	flag.Parse()

	rng := rand.New(rand.NewSource(3))
	d0 := graphgen.Random(graphgen.Config{N: *v, Density: *density, MaxWeight: 9, Infinity: fw.Infinity}, rng)
	fmt.Printf("APSP on a random digraph: %d vertices, density %.0f%%, base=%d, workers=%d\n\n",
		*v, 100**density, *base, *workers)

	ref := d0.Clone()
	fw.Serial(ref)
	reachable, diameter := summarize(ref)
	fmt.Printf("serial reference: %d finite pairs, diameter %v\n\n", reachable, diameter)

	pool := forkjoin.NewPool(forkjoin.Config{Workers: *workers})
	defer pool.Close()
	for _, variant := range []core.Variant{core.SerialRDP, core.OMPTasking,
		core.NativeCnC, core.TunerCnC, core.ManualCnC} {
		d := d0.Clone()
		start := time.Now()
		if _, err := fw.Run(variant, d, *base, *workers, pool); err != nil {
			log.Fatalf("%v: %v", variant, err)
		}
		ok := matrix.Equal(d, ref)
		fmt.Printf("%-14s %10v   matches serial: %v\n", variant, time.Since(start).Round(time.Microsecond), ok)
		if !ok {
			log.Fatalf("%v produced a different distance matrix", variant)
		}
	}

	// Oracle check on the ring graph, whose APSP solution is known exactly.
	ring := graphgen.Ring(64, fw.Infinity)
	if _, err := fw.RunCnC(ring, 8, *workers, core.NativeCnC); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		for j := 0; j < 64; j++ {
			if ring.At(i, j) != graphgen.RingDistance(64, i, j) {
				log.Fatalf("ring oracle violated at (%d,%d)", i, j)
			}
		}
	}
	fmt.Println("\nring-graph oracle: all 4096 distances exact")
}

func summarize(d *matrix.Dense) (finite int, diameter float64) {
	for i := 0; i < d.Rows(); i++ {
		for _, v := range d.Row(i) {
			if v < fw.Infinity {
				finite++
				if v > diameter {
					diameter = v
				}
			}
		}
	}
	return finite, diameter
}
