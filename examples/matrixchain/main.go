// Matrixchain: optimal matrix-chain parenthesisation — a DP whose tiles
// depend on every tile between them and the diagonal, unlike the paper's
// three benchmarks. The example solves a random chain in every execution
// model and prints the dependency fan-in profile that distinguishes this
// problem class.
//
//	go run ./examples/matrixchain [-n 256] [-base 32] [-workers 4]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"dpflow/internal/core"
	"dpflow/internal/forkjoin"
	"dpflow/internal/par"
)

func main() {
	n := flag.Int("n", 256, "chain length (power of two)")
	base := flag.Int("base", 32, "tile size")
	workers := flag.Int("workers", 4, "runtime workers")
	flag.Parse()

	rng := rand.New(rand.NewSource(21))
	p := par.RandomProblem(*n, 50, rng)
	fmt.Printf("optimal parenthesisation of a %d-matrix chain (dims <= 50), base=%d, workers=%d\n\n",
		*n, *base, *workers)

	ref := p.NewTable()
	want := p.Serial(ref)
	fmt.Printf("%-16s cost %.0f\n", "serial", want)

	pool := forkjoin.NewPool(forkjoin.Config{Workers: *workers})
	defer pool.Close()
	for _, v := range []core.Variant{core.SerialRDP, core.OMPTasking,
		core.NativeCnC, core.TunerCnC, core.ManualCnC} {
		start := time.Now()
		got, err := p.Run(v, *base, *workers, pool)
		if err != nil {
			log.Fatalf("%v: %v", v, err)
		}
		status := "ok"
		if got != want {
			status = fmt.Sprintf("MISMATCH (want %.0f)", want)
		}
		fmt.Printf("%-16s cost %.0f in %10v   %s\n", v, got, time.Since(start).Round(time.Microsecond), status)
	}

	tiles := *n / *base
	fmt.Printf("\ndependency fan-in by tile gap (tiles=%d per side):\n", tiles)
	for gap := 0; gap < tiles; gap++ {
		fanIn := 2 * gap
		fmt.Printf("  gap %2d: %2d tiles in the band, %2d pre-declared deps each\n",
			gap, tiles-gap, fanIn)
	}
	fmt.Println("\ncompare with SW's constant fan-in of 3: the parenthesis problem is")
	fmt.Println("where dependency-list tuners earn (or lose) their keep.")
}
