// Alignment: Smith-Waterman local alignment of two synthetic DNA sequences
// in both execution models. This is the paper's wavefront benchmark: the
// data-flow version pipelines anti-diagonals that the fork-join joins would
// serialise, which the printed utilisation traces make visible.
//
//	go run ./examples/alignment [-n 1024] [-base 64] [-workers 4]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"dpflow/internal/core"
	"dpflow/internal/forkjoin"
	"dpflow/internal/kernels"
	"dpflow/internal/seq"
	"dpflow/internal/sw"
)

func main() {
	n := flag.Int("n", 1024, "sequence length (power of two)")
	base := flag.Int("base", 64, "tile size")
	workers := flag.Int("workers", 4, "runtime workers")
	mutation := flag.Float64("mutation", 0.15, "mutation rate between the two sequences")
	flag.Parse()

	rng := rand.New(rand.NewSource(11))
	a := seq.RandomDNA(*n, rng)
	b := seq.Mutate(a, *mutation, seq.DNAAlphabet, rng)
	p := &sw.Problem{A: a, B: b, Scoring: kernels.DefaultScoring}

	fmt.Printf("aligning two %d-base sequences (%.0f%% mutated copy), base=%d, workers=%d\n\n",
		*n, 100**mutation, *base, *workers)

	refScore := p.Linear() // O(n)-space reference, the paper's optimisation
	fmt.Printf("%-16s score %.0f (O(n) space reference)\n", "linear-space", refScore)

	pool := forkjoin.NewPool(forkjoin.Config{Workers: *workers})
	defer pool.Close()
	for _, v := range []core.Variant{core.SerialLoop, core.SerialRDP, core.OMPTasking,
		core.NativeCnC, core.TunerCnC, core.ManualCnC} {
		start := time.Now()
		score, err := p.Run(v, *base, *workers, pool)
		if err != nil {
			log.Fatalf("%v: %v", v, err)
		}
		status := "ok"
		if score != refScore {
			status = fmt.Sprintf("MISMATCH (want %.0f)", refScore)
		}
		fmt.Printf("%-16s score %.0f in %10v   %s\n", v, score, time.Since(start).Round(time.Microsecond), status)
	}

	// Show the wavefront structure: tiles per anti-diagonal.
	tiles := *n / *base
	fmt.Printf("\nwavefront width by anti-diagonal (tiles=%d per side):\n", tiles)
	for d := 0; d < 2*tiles-1; d++ {
		w := d + 1
		if d >= tiles {
			w = 2*tiles - 1 - d
		}
		if d < 4 || d == tiles-1 || d > 2*tiles-4 {
			fmt.Printf("  diagonal %3d: %d tiles ready together\n", d, w)
		} else if d == 4 {
			fmt.Println("  ...")
		}
	}
	fmt.Println("\nfork-join joins cut across these diagonals; the data-flow runtime")
	fmt.Println("fires each tile the moment its three neighbours finish.")
}
