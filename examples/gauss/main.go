// Gauss: solve a dense linear system with recursive divide-and-conquer
// Gaussian elimination in every execution model the paper compares, verify
// the solutions, and report runtime activity — the paper's running example
// as an application.
//
//	go run ./examples/gauss [-n 512] [-base 32] [-workers 4]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"dpflow/internal/core"
	"dpflow/internal/forkjoin"
	"dpflow/internal/ge"
)

func main() {
	n := flag.Int("n", 512, "system size (power of two; n-1 unknowns)")
	base := flag.Int("base", 32, "recursive base size")
	workers := flag.Int("workers", 4, "runtime workers")
	flag.Parse()

	rng := rand.New(rand.NewSource(7))
	system, want := ge.NewSystem(*n, rng)
	fmt.Printf("solving a %d-unknown diagonally dominant system (n=%d, base=%d, workers=%d)\n\n",
		*n-1, *n, *base, *workers)

	pool := forkjoin.NewPool(forkjoin.Config{Workers: *workers})
	defer pool.Close()

	variants := []core.Variant{
		core.SerialLoop, core.SerialRDP, core.OMPTasking,
		core.NativeCnC, core.TunerCnC, core.ManualCnC,
	}
	for _, v := range variants {
		a := system.Clone()
		start := time.Now()
		stats, err := ge.Run(v, a, *base, *workers, pool)
		elapsed := time.Since(start)
		if err != nil {
			log.Fatalf("%v: %v", v, err)
		}
		x, err := ge.BackSubstitute(a)
		if err != nil {
			log.Fatalf("%v: %v", v, err)
		}
		maxErr := 0.0
		for i := range want {
			if e := math.Abs(x[i] - want[i]); e > maxErr {
				maxErr = e
			}
		}
		extra := ""
		if stats.BaseTasks > 0 {
			extra = fmt.Sprintf("  (%d base tasks, %d aborts, %d inline)",
				stats.BaseTasks, stats.Aborts, stats.InlineRuns)
		}
		fmt.Printf("%-16s %10v   max |x-x*| = %.2e%s\n", v, elapsed.Round(time.Microsecond), maxErr, extra)
	}
}
