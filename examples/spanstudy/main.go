// Spanstudy: make the paper's central claim tangible. For each benchmark it
// prints work, span and parallelism of the fork-join and data-flow task
// graphs side by side, then simulates both on the paper's machines to show
// where artificial dependencies actually cost time — and runs a small REAL
// two-runtime execution with tracing to show worker idleness directly.
//
//	go run ./examples/spanstudy
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dpflow/internal/bench"
	"dpflow/internal/core"
	"dpflow/internal/dag"
	"dpflow/internal/forkjoin"
	"dpflow/internal/gep"
	"dpflow/internal/kernels"
	"dpflow/internal/machine"
	"dpflow/internal/matrix"
	"dpflow/internal/model"
	"dpflow/internal/simsched"
	"dpflow/internal/trace"
)

func main() {
	spanTables()
	simulatedUtilization()
	realTracedRun()
}

func spanTables() {
	var unit simsched.Costs
	for k := 0; k < dag.NumKinds; k++ {
		if dag.Kind(k) != dag.KindJoin {
			unit.Exec[k] = 1
		}
	}
	fmt.Println("== task-graph structure (unit task costs) ==")
	fmt.Printf("%8s %8s | %10s %10s %8s | %10s %10s %8s\n",
		"bench", "tiles", "df span", "df par", "", "fj span", "fj par", "ratio")
	for _, tiles := range []int{8, 16, 32, 64} {
		for _, b := range []struct {
			name string
			df   dag.Graph
			fj   dag.Graph
		}{
			{"GE", dag.NewGEPDataflow(tiles, gep.Triangular), dag.NewGEPForkJoin(tiles, gep.Triangular)},
			{"SW", dag.NewSWDataflow(tiles), dag.NewSWForkJoin(tiles)},
		} {
			df, err := simsched.Simulate(b.df, 0, unit)
			check(err)
			fj, err := simsched.Simulate(b.fj, 0, unit)
			check(err)
			fmt.Printf("%8s %8d | %10.0f %10.1f %8s | %10.0f %10.1f %8.2f\n",
				b.name, tiles, df.Makespan, df.Work/df.Makespan, "",
				fj.Makespan, fj.Work/fj.Makespan, fj.Makespan/df.Makespan)
		}
	}
	fmt.Println()
}

func simulatedUtilization() {
	fmt.Println("== simulated utilisation, GE n=2048 base=512 (starved regime) ==")
	ge, err := bench.Lookup(core.GE)
	check(err)
	for _, mk := range []func() *machine.Machine{machine.EPYC64, machine.SKYLAKE192} {
		mach := mk()
		tiles := 2048 / gep.BaseSize(2048, 512)
		df := dag.NewGEPDataflow(tiles, gep.Triangular)
		fj := dag.NewGEPForkJoin(tiles, gep.Triangular)
		rdf, err := simsched.Simulate(df, mach.Cores, model.CostsFor(mach, ge, 2048, 512, core.NativeCnC, df.Len()))
		check(err)
		rfj, err := simsched.Simulate(fj, mach.Cores, model.CostsFor(mach, ge, 2048, 512, core.OMPTasking, df.Len()))
		check(err)
		fmt.Printf("%-12s data-flow: %6.3fs at %4.1f%% util | fork-join: %6.3fs at %4.1f%% util\n",
			mach.Name, rdf.Makespan, 100*rdf.Utilization, rfj.Makespan, 100*rfj.Utilization)
	}
	fmt.Println()
}

// realTracedRun executes GE on both real runtimes with tracing kernels and
// prints worker utilisation — small-scale, but the idleness pattern of the
// fork-join joins is real, not simulated.
func realTracedRun() {
	const (
		n       = 256
		base    = 32
		workers = 4
	)
	fmt.Printf("== real traced execution, GE n=%d base=%d on %d goroutine workers ==\n", n, base, workers)
	rng := rand.New(rand.NewSource(1))
	orig := matrix.NewSquare(n)
	orig.FillDiagonallyDominant(rng)

	// Fork-join with a tracing kernel.
	fjRec := trace.NewRecorder()
	fjAlg := gep.Algorithm{Shape: gep.Triangular, Kernel: func(x *matrix.Dense, i0, j0, k0, b int) {
		// WorkerID is not threaded through gep kernels; record on worker 0
		// lane and rely on busy-time aggregate only.
		done := fjRec.Task(0, "tile")
		kernels.GE(x, i0, j0, k0, b)
		done()
	}}
	pool := forkjoin.NewPool(forkjoin.Config{Workers: workers})
	x := orig.Clone()
	check(fjAlg.ForkJoin(x, base, pool))
	pool.Close()
	repFJ := fjRec.Report(1)

	dfRec := trace.NewRecorder()
	dfAlg := gep.Algorithm{Shape: gep.Triangular, Kernel: func(x *matrix.Dense, i0, j0, k0, b int) {
		done := dfRec.Task(0, "tile")
		kernels.GE(x, i0, j0, k0, b)
		done()
	}}
	y := orig.Clone()
	_, err := dfAlg.RunCnC(y, base, workers, core.NativeCnC)
	check(err)
	repDF := dfRec.Report(1)

	if !matrix.Equal(x, y) {
		log.Fatal("models disagree")
	}
	fmt.Printf("fork-join: %4d tile tasks, kernel busy %v over %v wall\n",
		repFJ.Tasks, repFJ.Busy.Round(0), repFJ.Makespan.Round(0))
	fmt.Printf("data-flow: %4d tile tasks, kernel busy %v over %v wall\n",
		repDF.Tasks, repDF.Busy.Round(0), repDF.Makespan.Round(0))
	fmt.Println("(identical results, identical task census — only the ordering differs)")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
