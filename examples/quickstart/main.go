// Quickstart: the smallest complete CnC program — the graph of the paper's
// Listing 1 — plus a first taste of both execution models on a toy
// Gaussian elimination.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dpflow/internal/cnc"
	"dpflow/internal/core"
	"dpflow/internal/forkjoin"
	"dpflow/internal/ge"
	"dpflow/internal/matrix"
)

func main() {
	listing1()
	bothModels()
}

// listing1 builds the paper's Listing 1 specification: a tag collection
// myCtrl prescribing a step collection myStep, which consumes and produces
// items of myData and puts further control tags.
func listing1() {
	g := cnc.NewGraph("listing1", 2)
	myData := cnc.NewItemCollection[int, string](g, "myData")
	myCtrl := cnc.NewTagCollection[int](g, "myCtrl", false)
	myStep := cnc.NewStepCollection(g, "myStep", func(i int) error {
		v := myData.Get(i) // blocking get: the CnC synchronisation primitive
		myData.Put(i+1, v+"*")
		if i < 4 {
			myCtrl.Put(i + 1)
		}
		return nil
	})
	myStep.Consumes(myData).Produces(myData)
	myCtrl.Prescribe(myStep)

	fmt.Print(g.Describe())
	if err := g.Run(func() {
		myData.Put(0, "seed")
		myCtrl.Put(0)
	}); err != nil {
		log.Fatal(err)
	}
	v, _ := myData.TryGet(5)
	fmt.Printf("after 5 steps: myData[5] = %q\n\n", v)
}

// bothModels runs the same 64×64 Gaussian elimination through the fork-join
// runtime (the paper's OpenMP side) and the CnC data-flow runtime (the
// paper's Intel CnC side) and checks they agree bit-for-bit.
func bothModels() {
	rng := rand.New(rand.NewSource(42))
	a := matrix.NewSquare(64)
	a.FillDiagonallyDominant(rng)

	serial := a.Clone()
	ge.Serial(serial)

	fj := a.Clone()
	pool := forkjoin.NewPool(forkjoin.Config{Workers: 4})
	defer pool.Close()
	if err := ge.ForkJoin(fj, 8, pool); err != nil {
		log.Fatal(err)
	}

	df := a.Clone()
	stats, err := ge.RunCnC(df, 8, 4, core.NativeCnC)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("fork-join matches serial:  %v\n", matrix.Equal(fj, serial))
	fmt.Printf("data-flow matches serial:  %v\n", matrix.Equal(df, serial))
	fmt.Printf("CnC activity: %d base tasks, %d tags, %d items, %d aborted gets\n",
		stats.BaseTasks, stats.TagsPut, stats.ItemsPut, stats.Aborts)
}
