// Command dpsim explores one configuration of the study in depth: it
// builds the fork-join and data-flow task DAGs for a (benchmark, n, base)
// point, reports work/span/parallelism for both execution models, and
// simulates every variant on a chosen machine.
//
// Usage:
//
//	dpsim -bench ge -n 8192 -base 256 -machine epyc
//	dpsim -bench sw -n 4096 -base 128 -machine skylake -procs 48
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dpflow/internal/bench"
	"dpflow/internal/core"
	"dpflow/internal/dag"
	"dpflow/internal/gep"
	"dpflow/internal/machine"
	"dpflow/internal/model"
	"dpflow/internal/simsched"
)

func main() {
	var (
		benchName = flag.String("bench", "ge", "benchmark: "+bench.NameList())
		n         = flag.Int("n", 4096, "problem size (power of two)")
		base      = flag.Int("base", 128, "recursive base size")
		machName  = flag.String("machine", "epyc", "machine model: epyc, skylake, host")
		procs     = flag.Int("procs", 0, "override simulated processor count (0 = machine's cores)")
		timeline  = flag.Bool("timeline", false, "print processor-occupancy profiles (40 windows)")
	)
	flag.Parse()

	b, err := bench.ByName(*benchName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dpsim: %v (known: %s)\n", err, bench.NameList())
		os.Exit(2)
	}
	var mach *machine.Machine
	switch strings.ToLower(*machName) {
	case "epyc":
		mach = machine.EPYC64()
	case "skylake", "skx":
		mach = machine.SKYLAKE192()
	case "host":
		mach = machine.Host()
	default:
		fmt.Fprintln(os.Stderr, "dpsim: unknown machine", *machName)
		os.Exit(2)
	}
	p := *procs
	if p <= 0 {
		p = mach.Cores
	}

	m := gep.BaseSize(*n, *base)
	tiles := *n / m
	fmt.Printf("%s n=%d base=%d (effective tile %d, %d tiles/side) on %s, P=%d\n\n",
		b.ID(), *n, *base, m, tiles, mach.Name, p)
	fmt.Println(model.Describe(mach, b, *n, *base))

	df, fj := b.Dataflow(tiles), b.ForkJoin(tiles)

	for _, side := range []struct {
		name string
		g    dag.Graph
		v    core.Variant
	}{
		{"data-flow", df, core.NativeCnC},
		{"fork-join", fj, core.OMPTasking},
	} {
		st := dag.Analyze(side.g)
		costs := model.CostsFor(mach, b, *n, *base, side.v, df.Len())
		span, err := simsched.Simulate(side.g, 0, costs)
		check(err)
		fmt.Printf("\n[%s DAG] nodes=%d tasks=%d edges=%d (A=%d B=%d C=%d D=%d SW=%d joins=%d)\n",
			side.name, st.Nodes, st.Tasks, st.Edges,
			st.ByKind[dag.KindA], st.ByKind[dag.KindB], st.ByKind[dag.KindC],
			st.ByKind[dag.KindD], st.ByKind[dag.KindSW], st.ByKind[dag.KindJoin])
		fmt.Printf("  T1 (work) = %.4fs   Tinf (span) = %.4fs (%d tasks on path)   parallelism = %.1f\n",
			span.Work, span.Makespan, span.SpanTasks, span.Work/span.Makespan)
	}

	fmt.Printf("\n[simulated execution on %d processors]\n", p)
	fmt.Printf("%14s %12s %12s %10s\n", "variant", "time (s)", "utilization", "peakReady")
	const windows = 40
	profiles := map[string][]float64{}
	for _, v := range core.ParallelVariants {
		g := df
		if v == core.OMPTasking {
			g = fj
		}
		r, err := simsched.SimulateTimeline(g, p, model.CostsFor(mach, b, *n, *base, v, df.Len()), windows)
		check(err)
		fmt.Printf("%14s %12.4f %12.1f%% %10d\n", v, r.Makespan, 100*r.Utilization, r.PeakReady)
		profiles[v.String()] = r.Timeline
	}
	if *timeline {
		fmt.Printf("\n[processor occupancy over time, %d equal windows]\n", windows)
		for _, v := range core.ParallelVariants {
			prof := profiles[v.String()]
			fmt.Printf("%14s |", v)
			for _, occ := range prof {
				level := int(occ / float64(p) * 9.999)
				fmt.Print(string("0123456789"[level]))
			}
			fmt.Println("| (0-9 = deciles of P busy)")
		}
	}
	fmt.Printf("%14s %12.4f\n", "Estimated", model.EstimatedTime(mach, b, *n, *base))
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpsim:", err)
		os.Exit(1)
	}
}
