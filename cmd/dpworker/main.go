// Command dpworker is a standalone shard worker for the distributed
// runtime (internal/dist). The coordinator normally self-execs whatever
// binary it lives in (dpbench does this), so dpworker exists for running a
// shard by hand — debugging the wire protocol, or hosting a shard under a
// separate supervisor:
//
//	DPFLOW_DIST_WORKER_SOCKET=/tmp/shard-0.sock dpworker
//	dpworker -socket /tmp/shard-0.sock
//
// The worker serves its Unix socket until it is killed or its stdin
// reaches EOF (the coordinator's orphan-prevention lifeline).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dpflow/internal/dist"
)

func main() {
	// Env form first: identical to every self-exec'd worker.
	dist.MaybeWorkerChild()

	socket := flag.String("socket", "", "unix socket path to serve (alternative to "+dist.EnvWorkerSocket+")")
	flag.Parse()
	if *socket == "" {
		fmt.Fprintf(os.Stderr, "dpworker: -socket required (or set %s)\n", dist.EnvWorkerSocket)
		os.Exit(2)
	}
	go func() {
		_, _ = io.Copy(io.Discard, os.Stdin)
		os.Exit(0)
	}()
	if err := dist.ServeWorker(*socket); err != nil {
		fmt.Fprintln(os.Stderr, "dpworker:", err)
		os.Exit(1)
	}
}
