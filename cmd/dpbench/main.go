// Command dpbench regenerates the paper's evaluation artifacts: every
// figure (fig4..fig9, plus the beyond-the-paper Cholesky panel figch),
// Table I (table1), the §IV-B claims reports (crossover, swspan,
// bestblock), and the bounded-memory contract report (memory: get-count
// GC leak freedom plus backpressure under a live-set budget). The
// benchmark-facing experiments iterate the internal/bench registry, so
// every registered benchmark — GE, SW, FW-APSP, CH — appears in the
// crossover verification, memory, sched, and dist (sharded multi-process
// vs single-process) reports.
//
// Usage:
//
//	dpbench -exp fig4            # print the figure's panels as tables
//	dpbench -exp fig8 -csv       # CSV instead of aligned tables
//	dpbench -exp fig5 -scale 2   # quarter-size panels (fast preview)
//	dpbench -exp table1 -tscale 8
//	dpbench -exp all -timeout 5m # everything, bounded
//	dpbench -list
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"dpflow/internal/dist"
	"dpflow/internal/harness"
)

func main() {
	// The dist coordinator self-execs this binary as its shard workers
	// (dpbench -exp dist); with the worker env set this call never returns.
	dist.MaybeWorkerChild()
	var (
		exp     = flag.String("exp", "", "experiment id ("+harness.ValidIDList()+", or 'all')")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		jsonF   = flag.Bool("json", false, "emit JSON instead of aligned tables")
		scale   = flag.Int("scale", 0, "divide figure problem sizes by 2^scale (0 = paper sizes)")
		tscale  = flag.Int("tscale", 8, "table1 linear scaling factor (1 = the paper's full 8K trace)")
		tiles   = flag.Int("maxtiles", 256, "skip sweep points with more tiles per side than this (0 = no limit)")
		timeout = flag.Duration("timeout", 0, "abandon the run after this long (0 = no limit)")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		quiet   = flag.Bool("quiet", false, "suppress progress lines")
		raceDet = flag.Bool("race-detect", false, "perf: run fork-join rows under determinacy-race detection and CnC rows under discipline checking, and report detector stats")

		vsample = flag.Int("verify-sample", 0, "dist: verified-read sampling rate (0 = 1-in-16 default, 1 = every get, <0 = never)")

		baseline = flag.String("baseline", "BENCH_seed.json", "perfdiff: baseline perf snapshot to diff against")
		current  = flag.String("current", "", "perfdiff: current perf snapshot (empty = measure fresh)")
		tol      = flag.Float64("tol", 0.10, "perfdiff: fail on any cell regressing by more than this fraction")
	)
	flag.Parse()

	if *list {
		fmt.Println(harness.ValidIDList())
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "dpbench: -exp required; one of:", harness.ValidIDList())
		os.Exit(2)
	}

	// The context bounds every sweep: -timeout expiry and Ctrl-C both cancel
	// the in-flight experiment at its next point check.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	ids := []string{*exp}
	if *exp == "all" {
		// perfdiff is a gate against a committed snapshot, not a measurement;
		// "all" runs the measurements only.
		ids = ids[:0]
		for _, id := range harness.IDs() {
			if id != "perfdiff" {
				ids = append(ids, id)
			}
		}
	}
	for _, id := range ids {
		if err := run(ctx, id, *csv, *jsonF, *scale, *tscale, *tiles, *quiet, *raceDet, *vsample, *baseline, *current, *tol); err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				fmt.Fprintln(os.Stderr, "dpbench: timeout exceeded during", id)
			} else {
				fmt.Fprintln(os.Stderr, "dpbench:", err)
			}
			os.Exit(1)
		}
	}
}

func run(ctx context.Context, id string, csv, jsonOut bool, scale, tscale, maxTiles int, quiet, raceDetect bool, vsample int, baseline, current string, tol float64) error {
	switch id {
	case "table1":
		res, err := harness.RunTable1Context(ctx, tscale)
		if err != nil {
			return err
		}
		res.WriteTable(os.Stdout)
		return nil
	case "crossover":
		return harness.WriteCrossover(ctx, os.Stdout)
	case "swspan":
		return harness.WriteSWSpan(ctx, os.Stdout)
	case "bestblock":
		return harness.WriteBestBlock(ctx, os.Stdout)
	case "rway":
		return harness.WriteRWay(ctx, os.Stdout)
	case "computeon":
		return harness.WriteComputeOn(ctx, os.Stdout)
	case "scaling":
		return harness.WriteScaling(ctx, os.Stdout)
	case "cluster":
		return harness.WriteCluster(ctx, os.Stdout)
	case "swwave":
		return harness.WriteSWWave(ctx, os.Stdout)
	case "memory":
		return harness.WriteMemory(ctx, os.Stdout)
	case "sched":
		return harness.WriteSched(ctx, os.Stdout)
	case "dist":
		return harness.WriteDist(ctx, os.Stdout, vsample)
	case "perf":
		return harness.WritePerf(ctx, os.Stdout, jsonOut, raceDetect)
	case "perfdiff":
		return harness.WritePerfDiff(ctx, os.Stdout, baseline, current, tol)
	}
	e, ok := harness.FigureByID(id)
	if !ok {
		return fmt.Errorf("unknown experiment %q (valid: %s)", id, harness.ValidIDList())
	}
	opts := harness.Options{Scale: scale, MaxTiles: maxTiles}
	if !quiet {
		opts.Progress = os.Stderr
	}
	res, err := e.RunContext(ctx, opts)
	if err != nil {
		return err
	}
	if csv {
		res.WriteCSV(os.Stdout)
		return nil
	}
	if jsonOut {
		return res.WriteJSON(os.Stdout)
	}
	res.WriteTable(os.Stdout)
	fmt.Println()
	for _, line := range res.Best() {
		fmt.Println("//", line)
	}
	return nil
}
