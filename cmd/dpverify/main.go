// Command dpverify runs the full correctness matrix on the host: every
// benchmark × every variant × several base sizes, all checked bit-for-bit
// against the serial references. It is the quick smoke test for anyone
// adopting the library ("do all execution models really agree on my
// machine?").
//
// Usage:
//
//	dpverify [-n 256] [-workers 4] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"dpflow/internal/chol"
	"dpflow/internal/core"
	"dpflow/internal/forkjoin"
	"dpflow/internal/fw"
	"dpflow/internal/ge"
	"dpflow/internal/graphgen"
	"dpflow/internal/kernels"
	"dpflow/internal/matrix"
	"dpflow/internal/par"
	"dpflow/internal/seq"
	"dpflow/internal/sw"
)

func main() {
	n := flag.Int("n", 256, "problem size (power of two)")
	workers := flag.Int("workers", 4, "runtime workers")
	seed := flag.Int64("seed", 1, "input generator seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	pool := forkjoin.NewPool(forkjoin.Config{Workers: *workers})
	defer pool.Close()

	variants := []core.Variant{core.SerialRDP, core.OMPTasking,
		core.NativeCnC, core.TunerCnC, core.ManualCnC, core.NonBlockingCnC}
	bases := []int{*n / 32, *n / 8, *n / 2}

	// Inputs and serial references.
	geIn := matrix.NewSquare(*n)
	geIn.FillDiagonallyDominant(rng)
	geRef := geIn.Clone()
	ge.Serial(geRef)

	fwIn := graphgen.Random(graphgen.Config{N: *n, Density: 0.3, MaxWeight: 9, Infinity: fw.Infinity}, rng)
	fwRef := fwIn.Clone()
	fw.Serial(fwRef)

	a := seq.RandomDNA(*n, rng)
	swP := &sw.Problem{A: a, B: seq.Mutate(a, 0.2, seq.DNAAlphabet, rng), Scoring: kernels.DefaultScoring}
	swRef := swP.Linear()

	parP := par.RandomProblem(*n, 40, rng)
	parRef, _ := parP.Run(core.SerialLoop, 1, 1, nil)

	cholIn := chol.NewSPD(*n, rng)

	failures := 0
	check := func(bench string, v core.Variant, base int, ok bool, err error, elapsed time.Duration) {
		status := "ok"
		switch {
		case err != nil:
			status = "ERROR: " + err.Error()
			failures++
		case !ok:
			status = "MISMATCH"
			failures++
		}
		fmt.Printf("%-8s %-16s base=%-5d %10v  %s\n", bench, v, base, elapsed.Round(time.Microsecond), status)
	}

	fmt.Printf("dpverify: n=%d workers=%d seed=%d (%d variants x %d bases x 5 benchmarks)\n\n",
		*n, *workers, *seed, len(variants), len(bases))
	for _, v := range variants {
		for _, base := range bases {
			start := time.Now()
			x := geIn.Clone()
			_, err := ge.Run(v, x, base, *workers, pool)
			check("GE", v, base, err == nil && matrix.Equal(x, geRef), err, time.Since(start))

			start = time.Now()
			d := fwIn.Clone()
			_, err = fw.Run(v, d, base, *workers, pool)
			check("FW", v, base, err == nil && matrix.Equal(d, fwRef), err, time.Since(start))

			start = time.Now()
			score, err := swP.Run(v, base, *workers, pool)
			check("SW", v, base, err == nil && score == swRef, err, time.Since(start))

			start = time.Now()
			cost, err := parP.Run(v, base, *workers, pool)
			check("PAR", v, base, err == nil && cost == parRef, err, time.Since(start))

			start = time.Now()
			cl := cholIn.Clone()
			err = chol.Run(v, cl, base, *workers, pool)
			cholWant := cholIn.Clone()
			_ = chol.TiledSerial(cholWant, base)
			check("CHOL", v, base, err == nil && matrix.Equal(cl, cholWant) && chol.Residual(cl, cholIn) < 1e-8,
				err, time.Since(start))
		}
	}
	if failures > 0 {
		fmt.Printf("\n%d FAILURES\n", failures)
		os.Exit(1)
	}
	fmt.Println("\nall checks passed: every execution model agrees bit-for-bit")
}
