// Command cachetable regenerates the paper's Table I: the ratio of the
// analytical model's maximum estimated cache misses to the actual cache
// misses of the R-DP GE execution, per cache level and base size. The
// "actual" misses come from the set-associative LRU cache simulator
// replaying the kernel's exact address stream — the repository's stand-in
// for the paper's PAPI measurements (see DESIGN.md).
//
// Usage:
//
//	cachetable            # default 1/8-scale geometry (1K trace, ~1.5 min)
//	cachetable -scale 4   # 2K trace, caches scaled 1/16 (slower)
//	cachetable -scale 1   # the paper's full 8K geometry (very slow)
package main

import (
	"flag"
	"fmt"
	"os"

	"dpflow/internal/harness"
)

func main() {
	scale := flag.Int("scale", 8, "linear scaling factor vs the paper's 8K run (1 = exact geometry)")
	flag.Parse()
	res, err := harness.RunTable1(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cachetable:", err)
		os.Exit(1)
	}
	res.WriteTable(os.Stdout)
}
