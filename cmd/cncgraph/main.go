// Command cncgraph prints the static CnC specification graph of one of the
// registered benchmarks — the collections and their prescribe/produce/
// consume edges — in the paper's textual notation (Listing 1 style) or
// Graphviz DOT (Figure 1 style).
//
// Usage:
//
//	cncgraph -bench ge          # textual CnC specification
//	cncgraph -bench chol -dot   # DOT for rendering with graphviz
package main

import (
	"flag"
	"fmt"
	"os"

	"dpflow/internal/bench"
)

func main() {
	name := flag.String("bench", "ge", "benchmark: "+bench.NameList())
	dot := flag.Bool("dot", false, "emit Graphviz DOT instead of the CnC textual form")
	flag.Parse()

	b, err := bench.ByName(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cncgraph:", err)
		os.Exit(2)
	}
	g := b.SpecGraph()
	if *dot {
		fmt.Print(g.Dot())
		return
	}
	fmt.Print(g.Describe())
}
