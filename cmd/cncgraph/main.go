// Command cncgraph prints the static CnC specification graph of one of the
// benchmarks — the collections and their prescribe/produce/consume edges —
// in the paper's textual notation (Listing 1 style) or Graphviz DOT
// (Figure 1 style).
//
// Usage:
//
//	cncgraph -bench ge          # textual CnC specification
//	cncgraph -bench sw -dot     # DOT for rendering with graphviz
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dpflow/internal/cnc"
	"dpflow/internal/core"
	"dpflow/internal/fw"
	"dpflow/internal/ge"
	"dpflow/internal/sw"
)

func main() {
	bench := flag.String("bench", "ge", "benchmark: ge, sw, fw")
	dot := flag.Bool("dot", false, "emit Graphviz DOT instead of the CnC textual form")
	flag.Parse()

	var g *cnc.Graph
	switch strings.ToLower(*bench) {
	case "ge":
		g = ge.Algorithm.NewCnCGraph("GE", core.NativeCnC)
	case "fw":
		g = fw.Algorithm.NewCnCGraph("FW-APSP", core.NativeCnC)
	case "sw":
		g = sw.NewCnCGraph("SW")
	default:
		fmt.Fprintln(os.Stderr, "cncgraph: unknown bench", *bench)
		os.Exit(2)
	}
	if *dot {
		fmt.Print(g.Dot())
		return
	}
	fmt.Print(g.Describe())
}
