// Command dpserve runs the dpflow job service: a long-running HTTP server
// that executes dynamic-programming jobs — registry benchmarks or dynamic
// fork-join specs — on one shared executor sized to GOMAXPROCS, with
// multi-tenant memory admission control and Prometheus metrics.
//
// Usage:
//
//	dpserve [-addr :8080] [-budget bytes] [-quota bytes] [-stall 10s] [-workers n]
//
// Submit a registry job:
//
//	curl -d '{"tenant":"t1","benchmark":"ge","n":256,"base":16,"memory_bytes":1048576}' localhost:8080/jobs
//
// Submit a dynamic fork-join spec (children expanded at submission, run
// concurrently on the same shared executor):
//
//	curl -d '{"tenant":"t1","fork":[{"benchmark":"ge","n":128},{"benchmark":"sw","n":128,"variant":"openmp"}]}' localhost:8080/jobs
//
// Then poll GET /jobs/{id}, cancel with POST /jobs/{id}/cancel, and scrape
// GET /metrics.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dpflow/internal/exec"
	"dpflow/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	budget := flag.Int64("budget", 0, "process memory budget in bytes (0 = unlimited)")
	quota := flag.Int64("quota", 0, "default per-tenant quota in bytes (0 = unlimited)")
	stall := flag.Duration("stall", 10*time.Second, "per-job watchdog window (0 disables)")
	workers := flag.Int("workers", 0, "physical workers (0 = shared GOMAXPROCS pool)")
	flag.Parse()

	cfg := serve.Config{Budget: *budget, DefaultQuota: *quota, StallWindow: *stall}
	if *stall == 0 {
		cfg.StallWindow = -1
	}
	if *workers > 0 {
		cfg.Executor = exec.New(*workers)
		defer cfg.Executor.Close()
	}
	s := serve.New(cfg)
	defer s.Close()

	srv := &http.Server{Addr: *addr, Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("dpserve listening on %s (budget=%d quota=%d stall=%v)", *addr, *budget, *quota, *stall)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	case <-sig:
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(ctx)
}
