// examples_test builds and runs every example binary end-to-end — the
// examples are documentation, and documentation that does not run is a
// lie. Skipped under -short (each example takes a second or two).
package dpflow_test

import (
	"os/exec"
	"strings"
	"testing"
)

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples are slow")
	}
	cases := []struct {
		dir    string
		args   []string
		expect string
	}{
		{"examples/quickstart", nil, "data-flow matches serial:  true"},
		{"examples/gauss", []string{"-n", "128", "-base", "16"}, "max |x-x*|"},
		{"examples/alignment", []string{"-n", "128", "-base", "16"}, "wavefront width"},
		{"examples/apsp", []string{"-v", "64", "-base", "16"}, "ring-graph oracle"},
		{"examples/spanstudy", nil, "identical results"},
		{"examples/matrixchain", []string{"-n", "64", "-base", "16"}, "dependency fan-in"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.dir, func(t *testing.T) {
			args := append([]string{"run", "./" + c.dir}, c.args...)
			out, err := exec.Command("go", args...).CombinedOutput()
			if err != nil {
				t.Fatalf("%s failed: %v\n%s", c.dir, err, out)
			}
			if !strings.Contains(string(out), c.expect) {
				t.Fatalf("%s output missing %q:\n%s", c.dir, c.expect, out)
			}
			if strings.Contains(string(out), "MISMATCH") {
				t.Fatalf("%s reported a mismatch:\n%s", c.dir, out)
			}
		})
	}
}

func TestCommandsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("commands are slow")
	}
	cases := []struct {
		args   []string
		expect string
	}{
		{[]string{"run", "./cmd/dpbench", "-list"}, "fig4"},
		{[]string{"run", "./cmd/dpbench", "-exp", "fig6", "-scale", "3", "-quiet"}, "CnC_tuner"},
		{[]string{"run", "./cmd/dpbench", "-exp", "swspan"}, "T^lg3"},
		{[]string{"run", "./cmd/dpsim", "-bench", "sw", "-n", "512", "-base", "64"}, "parallelism"},
		{[]string{"run", "./cmd/cncgraph", "-bench", "ge"}, "<funcA_tags> :: (funcA);"},
		{[]string{"run", "./cmd/cncgraph", "-bench", "fw", "-dot"}, "digraph"},
		{[]string{"run", "./cmd/dpverify", "-n", "64"}, "all checks passed"},
	}
	for _, c := range cases {
		c := c
		t.Run(strings.Join(c.args[1:], "_"), func(t *testing.T) {
			out, err := exec.Command("go", c.args...).CombinedOutput()
			if err != nil {
				t.Fatalf("%v failed: %v\n%s", c.args, err, out)
			}
			if !strings.Contains(string(out), c.expect) {
				t.Fatalf("%v output missing %q:\n%.400s", c.args, c.expect, out)
			}
		})
	}
}
