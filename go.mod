module dpflow

go 1.24
