module dpflow

go 1.22
