package seq

import (
	"math/rand"
	"testing"
)

func TestRandomLengthAndAlphabet(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := RandomDNA(100, rng)
	if len(s) != 100 {
		t.Fatalf("len = %d", len(s))
	}
	for _, c := range s {
		switch c {
		case 'A', 'C', 'G', 'T':
		default:
			t.Fatalf("unexpected base %q", c)
		}
	}
	p := Random(50, ProteinAlphabet, rng)
	if len(p) != 50 {
		t.Fatalf("protein len = %d", len(p))
	}
}

func TestMutateRate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := RandomDNA(1000, rng)
	same := Mutate(s, 0, DNAAlphabet, rng)
	for i := range s {
		if s[i] != same[i] {
			t.Fatal("rate 0 must not mutate")
		}
	}
	all := Mutate(s, 1, DNAAlphabet, rng)
	diff := 0
	for i := range s {
		if s[i] != all[i] {
			diff++
		}
	}
	// With rate 1 every position resamples; ~75% differ for a 4-letter
	// alphabet. Anything above half is clearly "mutated everywhere".
	if diff < 500 {
		t.Fatalf("rate 1 changed only %d/1000 positions", diff)
	}
	// Mutate must not modify its input.
	if &s[0] == &all[0] {
		t.Fatal("Mutate aliased its input")
	}
}
