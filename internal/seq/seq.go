// Package seq generates synthetic biological sequences for the
// Smith-Waterman benchmark — the workload generator standing in for the DNA
// / amino-acid inputs of the paper's SW experiments.
package seq

import "math/rand"

// DNAAlphabet is the nucleotide alphabet.
const DNAAlphabet = "ACGT"

// ProteinAlphabet is the 20-letter amino-acid alphabet.
const ProteinAlphabet = "ACDEFGHIKLMNPQRSTVWY"

// Random returns a random sequence of length n over the given alphabet.
func Random(n int, alphabet string, rng *rand.Rand) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return s
}

// RandomDNA returns a random nucleotide sequence of length n.
func RandomDNA(n int, rng *rand.Rand) []byte { return Random(n, DNAAlphabet, rng) }

// Mutate returns a copy of s with each position independently substituted
// with probability rate — a cheap way to build pairs of homologous
// sequences whose local alignments are long and score highly, which is the
// regime where SW wavefront parallelism matters.
func Mutate(s []byte, rate float64, alphabet string, rng *rand.Rand) []byte {
	out := append([]byte(nil), s...)
	for i := range out {
		if rng.Float64() < rate {
			out[i] = alphabet[rng.Intn(len(alphabet))]
		}
	}
	return out
}
