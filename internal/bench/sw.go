package bench

import (
	"context"
	"fmt"
	"math/rand"

	"dpflow/internal/cnc"
	"dpflow/internal/core"
	"dpflow/internal/dag"
	"dpflow/internal/gep"
	"dpflow/internal/kernels"
	"dpflow/internal/matrix"
	"dpflow/internal/seq"
	"dpflow/internal/sw"
)

func init() { Register(swBench{}) }

// swBench is Smith-Waterman local alignment — the wavefront benchmark whose
// fork-join joins are the paper's artificial dependencies. Every base task
// is the single KindSW tile kernel.
type swBench struct{}

func (swBench) ID() core.BenchID { return core.SW }
func (swBench) Name() string     { return "sw" }

func (swBench) NewInstance(n, base int, seed int64) (Instance, error) {
	rng := rand.New(rand.NewSource(seed))
	a := seq.RandomDNA(n, rng)
	p := &sw.Problem{A: a, B: seq.Mutate(a, 0.2, seq.DNAAlphabet, rng), Scoring: kernels.DefaultScoring}
	ref := p.NewTable()
	want, err := p.RDPSerial(ref, base)
	if err != nil {
		return nil, err
	}
	return &swInstance{p: p, work: p.NewTable(), ref: ref, want: want, base: base}, nil
}

func (swBench) Dataflow(tiles int) dag.Graph { return dag.NewSWDataflow(tiles) }
func (swBench) ForkJoin(tiles int) dag.Graph { return dag.NewSWForkJoin(tiles) }

func (swBench) TotalTasks(tiles int) int { return tiles * tiles }

func (swBench) KindCounts(tiles int) [dag.NumKinds]int {
	var out [dag.NumKinds]int
	out[dag.KindSW] = tiles * tiles
	return out
}

// Flops: an SW cell costs about eight operations (three candidate scores,
// a max chain and the zero clamp).
func (swBench) Flops(kind dag.Kind, m int) float64 { return 8 * float64(m*m) }

// MaxMissBound: per row, three row segments (above, above-left, own) plus
// the two sequence elements.
func (swBench) MaxMissBound(kind dag.Kind, m, lineBytes int) float64 {
	return float64(m) * (3*segLines(m, lineBytes) + 2)
}

func (swBench) StreamLines(kind dag.Kind, m, lineBytes int) float64 {
	return streamLinesOf(float64(3*m*m), m, lineBytes)
}

// DepCount: three awaited neighbours (west, north, north-west).
func (swBench) DepCount(kind dag.Kind) float64 {
	if kind == dag.KindSW {
		return 3
	}
	return 0
}

// PrefetchFriendly is false: SW tiles stream table rows identically under
// both execution models, so neither side earns the prefetch discount.
func (swBench) PrefetchFriendly() bool { return false }

func (swBench) SpecGraph() *cnc.Graph { return sw.NewCnCGraph("SW") }

// Wire enumerates SW's single-pass vocabulary: tile_tags exchanges
// sw.TileTag (no K dimension) and tile_outputs exchanges sw.TileKey -> bool.
func (swBench) Wire(tiles int) WireVocab {
	m := tiles - 1
	if m < 0 {
		m = 0
	}
	return WireVocab{
		Tags: []any{
			sw.TileTag{},                     // zero value
			sw.TileTag{I: 0, J: 0, S: 0},     // zero-size tile
			sw.TileTag{I: m, J: m, S: 1},     // max-coordinate base tag
			sw.TileTag{I: 0, J: 0, S: tiles}, // recursive root tag
		},
		Items: []WireItem{
			{Coll: "tile_outputs", Key: sw.TileKey{}, Val: false},
			{Coll: "tile_outputs", Key: sw.TileKey{I: m, J: m}, Val: true},
		},
	}
}

// swInstance drives one SW problem; Verify demands both the exact maximum
// score and a bit-identical DP table against the serial reference.
type swInstance struct {
	p     *sw.Problem
	work  *matrix.Dense
	ref   *matrix.Dense
	want  float64
	got   float64
	base  int
	byRun bool
}

func (in *swInstance) Run(ctx context.Context, v core.Variant, opts RunOpts) (gep.CnCStats, error) {
	p := *in.p
	p.Trace = opts.Trace
	in.byRun = true
	switch v {
	case core.SerialRDP:
		score, err := p.RDPSerial(in.work, in.base)
		in.got = score
		return gep.CnCStats{}, err
	case core.OMPTasking:
		if opts.Pool == nil {
			return gep.CnCStats{}, fmt.Errorf("bench: sw: OMPTasking requires RunOpts.Pool")
		}
		score, err := p.ForkJoinContext(ctx, in.work, in.base, opts.Pool)
		in.got = score
		return gep.CnCStats{}, err
	case core.NativeCnC, core.TunerCnC, core.ManualCnC, core.NonBlockingCnC:
		score, stats, err := p.RunCnCContext(ctx, in.work, in.base, opts.Workers, v, opts.Tune)
		in.got = score
		return stats, err
	default:
		return gep.CnCStats{}, fmt.Errorf("bench: sw does not drive variant %s", v)
	}
}

func (in *swInstance) Verify() error {
	if !in.byRun {
		return fmt.Errorf("bench: sw: Verify before Run")
	}
	if in.got != in.want {
		return fmt.Errorf("bench: sw score = %g, want %g", in.got, in.want)
	}
	if !matrix.Equal(in.work, in.ref) {
		return fmt.Errorf("bench: sw table disagrees with serial reference (maxdiff %g)",
			matrix.MaxAbsDiff(in.work, in.ref))
	}
	return nil
}
