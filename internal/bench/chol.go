package bench

import (
	"context"
	"fmt"
	"math/rand"

	"dpflow/internal/chol"
	"dpflow/internal/cnc"
	"dpflow/internal/core"
	"dpflow/internal/dag"
	"dpflow/internal/gep"
	"dpflow/internal/matrix"
)

func init() { Register(chBench{}) }

// chBench is tiled Cholesky factorisation — the fourth benchmark, onboarded
// entirely through this registry (no layer outside internal/chol and this
// file knows its recurrence). POTRF maps to KindA, TRSM to KindC and the
// trailing UPDATE to KindD, so the model prices its kernels with the
// GE-family triangular closed forms: POTRF is funcA-shaped (a shrinking
// triangular elimination of the diagonal tile), TRSM funcC-shaped (a
// pivot-column solve) and UPDATE funcD-shaped (a full m³ rank-update).
type chBench struct{}

func (chBench) ID() core.BenchID { return core.CH }
func (chBench) Name() string     { return "chol" }

func (chBench) NewInstance(n, base int, seed int64) (Instance, error) {
	rng := rand.New(rand.NewSource(seed))
	a := chol.NewSPD(n, rng)
	ref := a.Clone()
	if err := chol.TiledSerial(ref, base); err != nil {
		return nil, err
	}
	return &chInstance{work: a, ref: ref, base: base}, nil
}

func (chBench) Dataflow(tiles int) dag.Graph { return dag.NewCholDataflow(tiles) }
func (chBench) ForkJoin(tiles int) dag.Graph { return dag.NewCholForkJoin(tiles) }

// TotalTasks is the tetrahedral number T(T+1)(T+2)/6: phase k updates the
// (T−k)(T−k+1)/2-tile lower triangle.
func (chBench) TotalTasks(tiles int) int { return tiles * (tiles + 1) * (tiles + 2) / 6 }

func (chBench) KindCounts(tiles int) [dag.NumKinds]int {
	var out [dag.NumKinds]int
	out[dag.KindA] = tiles
	out[dag.KindC] = tiles * (tiles - 1) / 2
	out[dag.KindD] = (tiles - 1) * tiles * (tiles + 1) / 6
	return out
}

// Flops uses the GE triangular forms: POTRF/TRSM/UPDATE perform the same
// multiply-subtract updates plus an amortised division (and square root on
// the diagonal) per row pair.
func (chBench) Flops(kind dag.Kind, m int) float64 {
	u := Updates(kind, m, gep.Triangular)
	divRows := float64(m * m)
	return 2*float64(u) + 3*divRows
}

func (chBench) MaxMissBound(kind dag.Kind, m, lineBytes int) float64 {
	return missBoundLoop(m, lineBytes, triangularGeom(kind, m))
}

func (chBench) StreamLines(kind dag.Kind, m, lineBytes int) float64 {
	return streamLinesOf(float64(Updates(kind, m, gep.Triangular)), m, lineBytes)
}

// DepCount follows internal/chol's deps: POTRF awaits the previous-phase
// UPDATE of its tile, TRSM additionally the phase's POTRF, UPDATE the two
// TRSMs (one on the diagonal) plus the previous-phase UPDATE.
func (chBench) DepCount(kind dag.Kind) float64 {
	switch kind {
	case dag.KindA:
		return 1
	case dag.KindC:
		return 2
	case dag.KindD:
		return 3
	default:
		return 0
	}
}

func (chBench) PrefetchFriendly() bool { return true }

func (chBench) SpecGraph() *cnc.Graph { return chol.NewCnCGraph("CH") }

// Wire enumerates Cholesky's vocabulary: the tasks tag collection exchanges
// chol.Tag and tile_outputs exchanges chol.Key -> bool, over the three task
// kinds (POTRF/TRSM/UPDATE). chol tags carry no size field, so the edge
// cases are the zero value and the max-coordinate corner per kind.
func (chBench) Wire(tiles int) WireVocab {
	m := tiles - 1
	if m < 0 {
		m = 0
	}
	w := WireVocab{Tags: []any{chol.Tag{}}}
	for kind := chol.KindPotrf; kind <= chol.KindUpdate; kind++ {
		w.Tags = append(w.Tags, chol.Tag{Kind: kind, I: m, J: m, K: m})
		w.Items = append(w.Items,
			WireItem{Coll: "tile_outputs", Key: chol.Key{Kind: kind}, Val: false},
			WireItem{Coll: "tile_outputs", Key: chol.Key{Kind: kind, I: m, J: m, K: m}, Val: true},
		)
	}
	return w
}

// chInstance drives one SPD factorisation; all chol drivers apply
// bit-identical per-element operations, so Verify demands exact equality
// with the tiled serial reference.
type chInstance struct {
	work *matrix.Dense
	ref  *matrix.Dense
	base int
}

func (in *chInstance) Run(ctx context.Context, v core.Variant, opts RunOpts) (gep.CnCStats, error) {
	switch v {
	case core.SerialRDP:
		return gep.CnCStats{}, chol.TiledSerial(in.work, in.base)
	case core.OMPTasking:
		if opts.Pool == nil {
			return gep.CnCStats{}, fmt.Errorf("bench: chol: OMPTasking requires RunOpts.Pool")
		}
		return gep.CnCStats{}, chol.ForkJoinContext(ctx, in.work, in.base, opts.Pool, opts.Trace)
	case core.NativeCnC, core.TunerCnC, core.ManualCnC, core.NonBlockingCnC:
		return chol.RunCnCConfigured(ctx, in.work, in.base, v, chol.RunConfig{
			Workers: opts.Workers, Tune: opts.Tune, Trace: opts.Trace,
		})
	default:
		return gep.CnCStats{}, fmt.Errorf("bench: chol does not drive variant %s", v)
	}
}

func (in *chInstance) Verify() error {
	if !matrix.Equal(in.work, in.ref) {
		return fmt.Errorf("bench: chol factor disagrees with tiled serial reference (maxdiff %g)",
			matrix.MaxAbsDiff(in.work, in.ref))
	}
	return nil
}
