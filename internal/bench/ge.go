package bench

import (
	"math/rand"

	"dpflow/internal/cnc"
	"dpflow/internal/core"
	"dpflow/internal/dag"
	"dpflow/internal/ge"
	"dpflow/internal/gep"
)

func init() { Register(geBench{}) }

// geBench is Gaussian Elimination without pivoting — the paper's running
// example (§III), a GEP instantiation over the triangular update set.
type geBench struct{}

func (geBench) ID() core.BenchID { return core.GE }
func (geBench) Name() string     { return "ge" }

func (geBench) NewInstance(n, base int, seed int64) (Instance, error) {
	rng := rand.New(rand.NewSource(seed))
	a, _ := ge.NewSystem(n, rng)
	ref := a.Clone()
	if err := ge.RDPSerial(ref, base); err != nil {
		return nil, err
	}
	return &gepInstance{alg: ge.Algorithm, name: "ge", work: a, ref: ref, base: base}, nil
}

func (geBench) Dataflow(tiles int) dag.Graph { return dag.NewGEPDataflow(tiles, gep.Triangular) }
func (geBench) ForkJoin(tiles int) dag.Graph { return dag.NewGEPForkJoin(tiles, gep.Triangular) }

func (geBench) TotalTasks(tiles int) int { return TotalTasksGEP(tiles, gep.Triangular) }

func (geBench) KindCounts(tiles int) [dag.NumKinds]int {
	var out [dag.NumKinds]int
	a, b, c, d := gep.TaskCount(tiles, gep.Triangular)
	out[dag.KindA], out[dag.KindB], out[dag.KindC], out[dag.KindD] = a, b, c, d
	return out
}

// Flops: each GE update costs a multiply and a subtract, plus an amortised
// division per (k, i) row pair (bounded by m²).
func (geBench) Flops(kind dag.Kind, m int) float64 {
	u := Updates(kind, m, gep.Triangular)
	divRows := float64(m * m)
	return 2*float64(u) + 3*divRows
}

func (geBench) MaxMissBound(kind dag.Kind, m, lineBytes int) float64 {
	return missBoundLoop(m, lineBytes, triangularGeom(kind, m))
}

func (geBench) StreamLines(kind dag.Kind, m, lineBytes int) float64 {
	return streamLinesOf(float64(Updates(kind, m, gep.Triangular)), m, lineBytes)
}

// DepCount follows internal/gep's deps (Listing 5): funcA awaits one input,
// funcB/funcC two, funcD four.
func (geBench) DepCount(kind dag.Kind) float64 {
	switch kind {
	case dag.KindA:
		return 1
	case dag.KindB, dag.KindC:
		return 2
	case dag.KindD:
		return 4
	default:
		return 0
	}
}

func (geBench) PrefetchFriendly() bool { return true }

func (geBench) Wire(tiles int) WireVocab { return gepWire(tiles) }

func (geBench) SpecGraph() *cnc.Graph { return ge.Algorithm.NewCnCGraph("GE", core.NativeCnC) }
