// Shared closed forms of the paper's analytical model (§IV-B), moved here
// from internal/model so each benchmark can assemble its own Flops /
// MaxMissBound / StreamLines methods from them. internal/model keeps the
// machine-dependent pricing (MemTime, ExecTime, CostsFor) and consumes the
// per-benchmark forms through the Benchmark interface.
package bench

import (
	"math"

	"dpflow/internal/dag"
	"dpflow/internal/gep"
)

// TotalTasksGEP returns the closed-form base-task count of the paper for a
// T-tile GE problem: (1/3)T³ + (1/2)T² + (1/6)T = T(T+1)(2T+1)/6. For the
// cube shape (FW) it is simply T³.
func TotalTasksGEP(tiles int, shape gep.Shape) int {
	if shape == gep.Cube {
		return tiles * tiles * tiles
	}
	return tiles * (tiles + 1) * (2*tiles + 1) / 6
}

// Updates returns the number of DP-table update operations a base task of
// the given kind performs on an m×m tile, for the given shape.
func Updates(kind dag.Kind, m int, shape gep.Shape) int {
	if kind == dag.KindSW {
		return m * m
	}
	if shape == gep.Cube {
		return m * m * m
	}
	switch kind {
	case dag.KindA:
		return (m - 1) * m * (2*m - 1) / 6 // Σ (m-1-k)²
	case dag.KindB, dag.KindC:
		return m * m * (m - 1) / 2 // Σ (m-1-k)·m
	case dag.KindD:
		return m * m * m
	default:
		return 0
	}
}

// WorkingSetBytes is the paper's three-block working set of a base task.
func WorkingSetBytes(m int) int { return 3 * m * m * 8 }

// CompulsoryLines is the minimum line traffic of a base task: streaming
// three m×m blocks once.
func CompulsoryLines(m, lineBytes int) float64 {
	lw := float64(lineBytes) / 8
	return math.Ceil(3 * float64(m*m) / lw)
}

// segLines is the line count of a contiguous segment of elems doubles.
func segLines(elems, lineBytes int) float64 {
	if elems <= 0 {
		return 0
	}
	return math.Ceil(float64(elems) / (float64(lineBytes) / 8))
}

// missBoundLoop evaluates the paper's per-task upper bound on cache misses
// assuming the cache holds no more than three lines: for every (k, i)
// iteration pair the kernel touches the C[i][j·] segment, the C[k][j·]
// segment, C[i][k] and C[k][k] — two segment transfers plus two single
// lines. geom reports the i iterations and j-segment length at step k.
func missBoundLoop(m, lineBytes int, geom func(k int) (rows, segLen int)) float64 {
	total := 0.0
	for k := 0; k < m; k++ {
		rows, segLen := geom(k)
		if rows <= 0 || segLen <= 0 {
			continue
		}
		total += float64(rows) * (2*segLines(segLen, lineBytes) + 2)
	}
	return total
}

// triangularGeom is the (rows, segment-length) geometry of the GE-family
// kernels over the triangular update set, by task kind.
func triangularGeom(kind dag.Kind, m int) func(k int) (int, int) {
	switch kind {
	case dag.KindA:
		return func(k int) (int, int) { return m - 1 - k, m - 1 - k }
	case dag.KindB:
		return func(k int) (int, int) { return m - 1 - k, m }
	case dag.KindC:
		return func(k int) (int, int) { return m, m - 1 - k }
	default: // KindD
		return func(k int) (int, int) { return m, m }
	}
}

// streamLinesOf is the realistic per-task traffic at a level whose capacity
// cannot hold the three-block working set: one line transfer per lw update
// operations, plus the compulsory streaming of the blocks themselves.
func streamLinesOf(updates float64, m, lineBytes int) float64 {
	return updates/(float64(lineBytes)/8) + CompulsoryLines(m, lineBytes)
}
