package bench

import (
	"context"
	"fmt"

	"dpflow/internal/core"
	"dpflow/internal/gep"
	"dpflow/internal/matrix"
)

// gepInstance drives one GE or FW problem through the gep.Algorithm
// recursion. All drivers apply bit-identical per-element updates, so Verify
// demands exact equality with the precomputed serial reference.
type gepInstance struct {
	alg  gep.Algorithm
	name string
	work *matrix.Dense
	ref  *matrix.Dense
	base int
}

func (in *gepInstance) Run(ctx context.Context, v core.Variant, opts RunOpts) (gep.CnCStats, error) {
	alg := in.alg
	if opts.Trace != nil {
		kernel, trace := alg.Kernel, opts.Trace
		alg.Kernel = func(x *matrix.Dense, i0, j0, k0, b int) {
			done := trace()
			kernel(x, i0, j0, k0, b)
			done()
		}
	}
	switch v {
	case core.SerialRDP:
		return gep.CnCStats{}, alg.RDPSerial(in.work, in.base)
	case core.OMPTasking:
		if opts.Pool == nil {
			return gep.CnCStats{}, fmt.Errorf("bench: %s: OMPTasking requires RunOpts.Pool", in.name)
		}
		return gep.CnCStats{}, alg.ForkJoinContext(ctx, in.work, in.base, opts.Pool)
	case core.NativeCnC, core.TunerCnC, core.ManualCnC, core.NonBlockingCnC:
		return alg.RunCnCContext(ctx, in.work, in.base, opts.Workers, v, opts.Tune)
	default:
		return gep.CnCStats{}, fmt.Errorf("bench: %s does not drive variant %s", in.name, v)
	}
}

func (in *gepInstance) Verify() error {
	if !matrix.Equal(in.work, in.ref) {
		return fmt.Errorf("bench: %s result disagrees with serial reference (maxdiff %g)",
			in.name, matrix.MaxAbsDiff(in.work, in.ref))
	}
	return nil
}
