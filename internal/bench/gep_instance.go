package bench

import (
	"context"
	"fmt"

	"dpflow/internal/core"
	"dpflow/internal/gep"
	"dpflow/internal/matrix"
)

// gepInstance drives one GE or FW problem through the gep.Algorithm
// recursion. All drivers apply bit-identical per-element updates, so Verify
// demands exact equality with the precomputed serial reference.
type gepInstance struct {
	alg  gep.Algorithm
	name string
	work *matrix.Dense
	ref  *matrix.Dense
	base int
}

func (in *gepInstance) Run(ctx context.Context, v core.Variant, opts RunOpts) (gep.CnCStats, error) {
	alg := in.alg
	if opts.Trace != nil {
		kernel, trace := alg.Kernel, opts.Trace
		alg.Kernel = func(x *matrix.Dense, i0, j0, k0, b int) {
			done := trace()
			kernel(x, i0, j0, k0, b)
			done()
		}
	}
	switch v {
	case core.SerialRDP:
		return gep.CnCStats{}, alg.RDPSerial(in.work, in.base)
	case core.OMPTasking:
		if opts.Pool == nil {
			return gep.CnCStats{}, fmt.Errorf("bench: %s: OMPTasking requires RunOpts.Pool", in.name)
		}
		return gep.CnCStats{}, alg.ForkJoinContext(ctx, in.work, in.base, opts.Pool)
	case core.NativeCnC, core.TunerCnC, core.ManualCnC, core.NonBlockingCnC:
		return alg.RunCnCContext(ctx, in.work, in.base, opts.Workers, v, opts.Tune)
	default:
		return gep.CnCStats{}, fmt.Errorf("bench: %s does not drive variant %s", in.name, v)
	}
}

// gepWire is the shared GE/FW vocabulary: the four funcX tag collections
// exchange gep.Tag and the four funcX_outputs item collections exchange
// gep.ItemKey -> bool, exactly as built by gep's dataflow graph. The samples
// span the zero value, a zero-size tile (S == 0), a recursive
// (larger-than-base) tag and the max-coordinate corner of a tiles×tiles
// problem.
func gepWire(tiles int) WireVocab {
	m := tiles - 1
	if m < 0 {
		m = 0
	}
	w := WireVocab{
		Tags: []any{
			gep.Tag{},                           // zero value
			gep.Tag{I: 0, J: 0, K: 0, S: 0},     // zero-size tile
			gep.Tag{I: m, J: m, K: m, S: 1},     // max-coordinate base tag
			gep.Tag{I: 0, J: 0, K: 0, S: tiles}, // recursive root tag
		},
	}
	for _, f := range []gep.Func{gep.FuncA, gep.FuncB, gep.FuncC, gep.FuncD} {
		coll := f.String() + "_outputs"
		w.Items = append(w.Items,
			WireItem{Coll: coll, Key: gep.ItemKey{}, Val: false},
			WireItem{Coll: coll, Key: gep.ItemKey{I: m, J: m, K: m}, Val: true},
		)
	}
	return w
}

func (in *gepInstance) Verify() error {
	if !matrix.Equal(in.work, in.ref) {
		return fmt.Errorf("bench: %s result disagrees with serial reference (maxdiff %g)",
			in.name, matrix.MaxAbsDiff(in.work, in.ref))
	}
	return nil
}
