package bench

import (
	"context"
	"testing"

	"dpflow/internal/cnc"
	"dpflow/internal/core"
	"dpflow/internal/determinacy"
	"dpflow/internal/forkjoin"
)

// TestConformanceRaceFree: every registered benchmark's fork-join schedule,
// run under determinacy-race detection, must report no race at tile
// granularity — and the detection must be live (base cases declaring their
// access sets), not vacuously clean. This is the registry-wide form of the
// paper's claim that the Spawn/Wait schedule covers every true dependency.
func TestConformanceRaceFree(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			t.Parallel()
			in, err := b.NewInstance(confN, confBase, confSeed)
			if err != nil {
				t.Fatal(err)
			}
			pool := forkjoin.NewPool(forkjoin.Config{Workers: confWorkers, Seed: confSeed})
			defer pool.Close()
			d := determinacy.NewDetector()
			pool.WithRaceDetection(d)
			if _, err := in.Run(context.Background(), core.OMPTasking, RunOpts{Pool: pool}); err != nil {
				t.Fatal(err)
			}
			if err := in.Verify(); err != nil {
				t.Fatal(err)
			}
			if err := d.Err(); err != nil {
				t.Fatalf("fork-join schedule reported racy: %v", err)
			}
			st := d.Stats()
			if st.Accesses == 0 || st.Cells == 0 {
				t.Fatalf("detector stats %+v: no accesses declared — detection is vacuous", st)
			}
		})
	}
}

// TestConformanceDisciplineClean: every CnC schedule of every benchmark,
// run under dataflow-discipline checking, must record zero violations —
// write-once respected, get-counts exact — with the checker demonstrably
// live (puts and releases observed).
func TestConformanceDisciplineClean(t *testing.T) {
	for _, b := range All() {
		for _, v := range []core.Variant{core.NativeCnC, core.TunerCnC, core.ManualCnC} {
			b, v := b, v
			t.Run(b.Name()+"/"+v.String(), func(t *testing.T) {
				t.Parallel()
				in, err := b.NewInstance(confN, confBase, confSeed)
				if err != nil {
					t.Fatal(err)
				}
				var last *determinacy.DisciplineChecker
				tune := func(g *cnc.Graph) {
					// Fresh checker per graph: tuner probe runs are checked
					// too, each against its own ledger.
					last = determinacy.NewDisciplineChecker()
					g.WithDisciplineCheck(last)
				}
				if _, err := in.Run(context.Background(), v, RunOpts{Workers: confWorkers, Tune: tune}); err != nil {
					t.Fatal(err)
				}
				if err := in.Verify(); err != nil {
					t.Fatal(err)
				}
				if last == nil {
					t.Fatal("tune never saw a graph")
				}
				if err := last.Err(); err != nil {
					t.Fatalf("discipline violation on the clean schedule: %v", err)
				}
				st := last.Stats()
				if st.Puts == 0 || st.Releases == 0 {
					t.Fatalf("checker stats %+v: no activity recorded — checking is vacuous", st)
				}
			})
		}
	}
}
