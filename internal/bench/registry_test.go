package bench

import (
	"errors"
	"testing"

	"dpflow/internal/core"
)

// TestRegistryContents pins the registered benchmark set: the three paper
// benchmarks plus Cholesky, sorted by id, with lowercase CLI tokens.
func TestRegistryContents(t *testing.T) {
	all := All()
	if len(all) != 4 {
		t.Fatalf("registered %d benchmarks, want 4: %s", len(all), NameList())
	}
	wantIDs := []core.BenchID{core.GE, core.SW, core.FW, core.CH}
	wantNames := []string{"ge", "sw", "fw", "chol"}
	for i, b := range all {
		if b.ID() != wantIDs[i] {
			t.Fatalf("All()[%d].ID() = %v, want %v", i, b.ID(), wantIDs[i])
		}
		if b.Name() != wantNames[i] {
			t.Fatalf("All()[%d].Name() = %q, want %q", i, b.Name(), wantNames[i])
		}
		got, err := Lookup(b.ID())
		if err != nil || got.ID() != b.ID() {
			t.Fatalf("Lookup(%v) = %v, %v", b.ID(), got, err)
		}
		g := b.SpecGraph()
		if g == nil || g.Describe() == "" {
			t.Fatalf("%s: empty CnC spec graph", b.Name())
		}
	}
}

// TestLookupUnknownFailsLoudly is the registry half of the silent-fallback
// fix: an id nobody registered must name the failure, never default to a
// GE-shaped benchmark.
func TestLookupUnknownFailsLoudly(t *testing.T) {
	if _, err := Lookup(core.BenchID(99)); !errors.Is(err, ErrUnknownBenchmark) {
		t.Fatalf("Lookup(99) err = %v, want ErrUnknownBenchmark", err)
	}
	if _, err := ByName("nonesuch"); !errors.Is(err, ErrUnknownBenchmark) {
		t.Fatalf("ByName(nonesuch) err = %v, want ErrUnknownBenchmark", err)
	}
}

// TestByNameAliases: the CLI accepts both the lowercase token and the
// BenchID string, case-insensitively.
func TestByNameAliases(t *testing.T) {
	for _, tc := range []struct {
		name string
		id   core.BenchID
	}{
		{"ge", core.GE}, {"GE", core.GE},
		{"sw", core.SW}, {"SW", core.SW},
		{"fw", core.FW}, {"fw-apsp", core.FW}, {"FW-APSP", core.FW},
		{"chol", core.CH}, {"ch", core.CH}, {"CH", core.CH},
	} {
		b, err := ByName(tc.name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", tc.name, err)
		}
		if b.ID() != tc.id {
			t.Fatalf("ByName(%q).ID() = %v, want %v", tc.name, b.ID(), tc.id)
		}
	}
}
