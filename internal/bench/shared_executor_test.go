package bench

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dpflow/internal/chaos"
	"dpflow/internal/cnc"
	"dpflow/internal/core"
	"dpflow/internal/exec"
	"dpflow/internal/exec/admission"
)

// waitGoroutines polls until the goroutine count drops to at most want
// (monitor goroutines unwind asynchronously after a run returns).
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines = %d, want <= %d (leak)", runtime.NumGoroutine(), want)
}

// Every benchmark × every CnC schedule, all running concurrently on ONE
// shared executor: each job verifies, frees every item, and the process
// never grows a per-job worker complement — the executor multiplexes its
// fixed physical pool across all of them.
func TestSharedExecutorConformance(t *testing.T) {
	ex := exec.New(4)
	defer ex.Close()
	before := runtime.NumGoroutine()

	variants := []core.Variant{core.NativeCnC, core.TunerCnC, core.ManualCnC, core.NonBlockingCnC}
	type result struct {
		name    string
		stats   cnc.Stats
		err     error
		gcBound bool // schedule declares get-counts: leak check applies
	}
	var wg sync.WaitGroup
	results := make(chan result, len(All())*len(variants))
	for _, b := range All() {
		for _, v := range variants {
			wg.Add(1)
			go func(b Benchmark, v core.Variant) {
				defer wg.Done()
				name := b.Name() + "/" + v.String()
				in, err := b.NewInstance(confN, confBase, confSeed)
				if err != nil {
					results <- result{name: name, err: err}
					return
				}
				stats, err := in.Run(context.Background(), v, RunOpts{
					Workers: confWorkers,
					Tune:    func(g *cnc.Graph) { g.WithExecutor(ex) },
				})
				if err == nil {
					err = in.Verify()
				}
				// NonBlocking is the one schedule without declared
				// get-counts, so only the others promise LiveItems == 0.
				results <- result{name: name, stats: stats.Stats, err: err,
					gcBound: v != core.NonBlockingCnC}
			}(b, v)
		}
	}
	wg.Wait()
	close(results)
	for r := range results {
		if r.err != nil {
			t.Errorf("%s: %v", r.name, r.err)
			continue
		}
		if r.stats.StepsDone == 0 {
			t.Errorf("%s: StepsDone = 0, run not wired through the executor", r.name)
		}
		if r.gcBound && r.stats.LiveItems != 0 {
			t.Errorf("%s: LiveItems = %d after quiesce (leak)", r.name, r.stats.LiveItems)
		}
	}
	// All leases closed: no goroutines beyond the executor's own pool.
	waitGoroutines(t, before+2)
	if s := ex.Stats(); s.Leases != 0 {
		t.Fatalf("leases = %d after all runs, want 0", s.Leases)
	}
}

// Determinism survives the shared executor: replaying every benchmark
// under two different schedules (worker counts and steal policies) on one
// executor yields bit-identical item-store fingerprints.
func TestSharedExecutorDeterminismAudit(t *testing.T) {
	ex := exec.New(3)
	defer ex.Close()
	for _, b := range All() {
		t.Run(b.Name(), func(t *testing.T) {
			run := func(ctx context.Context, workers int, tune func(*cnc.Graph)) error {
				in, err := b.NewInstance(confN, confBase, confSeed)
				if err != nil {
					return err
				}
				_, err = in.Run(ctx, core.NativeCnC, RunOpts{
					Workers: workers,
					Tune: func(g *cnc.Graph) {
						g.WithExecutor(ex)
						tune(g)
					},
				})
				return err
			}
			diffs, err := chaos.DeterminismAudit(context.Background(), run,
				chaos.Schedule{Workers: 2, Steal: cnc.StealRandom},
				chaos.Schedule{Workers: 3, Steal: cnc.StealSequential})
			if err != nil {
				t.Fatal(err)
			}
			if len(diffs) != 0 {
				t.Fatalf("fingerprints differ across schedules: %v", diffs)
			}
		})
	}
}

// The PR's acceptance scenario: 8 concurrent GE n=256 jobs on one 8-worker
// executor. Total goroutines stay bounded by the pool size plus O(jobs) —
// not jobs × workers — every job verifies, and with per-job memory limits
// carved from a process budget by the admission controller, the aggregate
// PeakLiveBytes stays within the budget whenever nothing stalled.
func TestSharedExecutorConcurrentGEAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("8×GE n=256 acceptance run")
	}
	const (
		jobs    = 8
		workers = 8
		n       = 256
		base    = 16
		budget  = int64(32 << 20)
	)
	before := runtime.NumGoroutine()
	ex := exec.New(workers)
	defer ex.Close()
	ctl := admission.New(budget)

	ge, err := Lookup(core.GE)
	if err != nil {
		t.Fatal(err)
	}

	// Sample the goroutine high-water mark while the jobs run.
	var peakG atomic.Int64
	stopSampler := make(chan struct{})
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		for {
			select {
			case <-stopSampler:
				return
			default:
			}
			if g := int64(runtime.NumGoroutine()); g > peakG.Load() {
				peakG.Store(g)
			}
			time.Sleep(time.Millisecond)
		}
	}()

	perJob := budget / jobs
	var wg sync.WaitGroup
	stats := make([]cnc.Stats, jobs)
	errs := make([]error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tenant := ctl.Tenant(fmt.Sprintf("tenant-%d", i), 0)
			grant, err := tenant.Admit(context.Background(), perJob)
			if err != nil {
				errs[i] = err
				return
			}
			defer grant.Release()
			in, err := ge.NewInstance(n, base, int64(i))
			if err != nil {
				errs[i] = err
				return
			}
			st, err := in.Run(context.Background(), core.NativeCnC, RunOpts{
				Workers: workers,
				Tune: func(g *cnc.Graph) {
					g.WithExecutor(ex)
					g.WithMemoryLimit(grant.Bytes())
				},
			})
			if err == nil {
				err = in.Verify()
			}
			stats[i], errs[i] = st.Stats, err
		}(i)
	}
	wg.Wait()
	close(stopSampler)
	<-samplerDone

	for i, err := range errs {
		if err != nil {
			t.Errorf("job %d: %v", i, err)
		}
	}
	// Goroutine bound: the executor's fixed pool plus O(jobs) — one job
	// goroutine and one run-monitor goroutine per job, with slack for the
	// test's own machinery. The pre-refactor world would have needed
	// jobs×workers worker goroutines on top.
	bound := int64(before + workers + 3*jobs + 4)
	if peak := peakG.Load(); peak > bound {
		t.Errorf("goroutine peak %d exceeds pool+O(jobs) bound %d", peak, bound)
	}
	var totalPeak, totalStalls int64
	for _, st := range stats {
		totalPeak += st.PeakLiveBytes
		totalStalls += st.BackpressureStalls
	}
	if totalPeak == 0 {
		t.Fatal("aggregate PeakLiveBytes = 0: memory accounting not wired")
	}
	if totalStalls == 0 && totalPeak > budget {
		t.Errorf("aggregate PeakLiveBytes %d exceeds process budget %d with zero stalls",
			totalPeak, budget)
	}
	if s := ctl.Stats(); s.Reserved != 0 || s.Admitted != jobs {
		t.Errorf("admission stats after drain: %+v", s)
	}
}
