package bench

import (
	"testing"

	"dpflow/internal/core"
	"dpflow/internal/dag"
	"dpflow/internal/gep"
)

// The paper's closed-form task count (1/3)T³+(1/2)T²+(1/6)T must equal the
// per-function census of the recursion.
func TestTaskCountFormulaMatchesCensus(t *testing.T) {
	for _, tiles := range []int{1, 2, 3, 4, 8, 16, 100} {
		for _, shape := range []gep.Shape{gep.Triangular, gep.Cube} {
			a, b, c, d := gep.TaskCount(tiles, shape)
			if got, want := TotalTasksGEP(tiles, shape), a+b+c+d; got != want {
				t.Fatalf("%v tiles=%d: formula %d != census %d", shape, tiles, got, want)
			}
		}
	}
}

// Updates must agree with brute-force counting of the guarded loop nest.
func TestUpdatesBruteForce(t *testing.T) {
	for _, m := range []int{1, 2, 3, 4, 8} {
		counts := map[dag.Kind]int{}
		// Count triangular-guard updates in a block by kind geometry:
		// A: i>k && j>k within block; B: rows i>k, all j of a disjoint
		// column block; C: all i, cols j>k; D: everything.
		for k := 0; k < m; k++ {
			counts[dag.KindA] += (m - 1 - k) * (m - 1 - k)
			counts[dag.KindB] += (m - 1 - k) * m
			counts[dag.KindC] += m * (m - 1 - k)
			counts[dag.KindD] += m * m
		}
		for kind, want := range counts {
			if got := Updates(kind, m, gep.Triangular); got != want {
				t.Fatalf("Updates(%v, %d) = %d, want %d", kind, m, got, want)
			}
		}
		if got := Updates(dag.KindB, m, gep.Cube); got != m*m*m {
			t.Fatalf("cube Updates = %d, want %d", got, m*m*m)
		}
		if got := Updates(dag.KindSW, m, gep.Triangular); got != m*m {
			t.Fatalf("SW Updates = %d", got)
		}
	}
}

func TestMaxMissBoundProperties(t *testing.T) {
	ge, err := Lookup(core.GE)
	if err != nil {
		t.Fatal(err)
	}
	// The bound must dominate compulsory traffic and grow with m.
	prev := 0.0
	for _, m := range []int{8, 16, 32, 64, 128} {
		b := ge.MaxMissBound(dag.KindD, m, 64)
		if b <= prev {
			t.Fatalf("bound not increasing at m=%d", m)
		}
		if b < CompulsoryLines(m, 64) {
			t.Fatalf("bound %v below compulsory %v at m=%d", b, CompulsoryLines(m, 64), m)
		}
		prev = b
	}
	// Closed-form check for D: m² rows × (2·ceil(m/8)+2) at 64B lines.
	m := 16
	if got, want := ge.MaxMissBound(dag.KindD, m, 64), float64(m*m*(2*2+2)); got != want {
		t.Fatalf("D bound = %v, want %v", got, want)
	}
	// A ≤ B,C ≤ D for the same m.
	a := ge.MaxMissBound(dag.KindA, m, 64)
	b := ge.MaxMissBound(dag.KindB, m, 64)
	d := ge.MaxMissBound(dag.KindD, m, 64)
	if !(a <= b && b <= d) {
		t.Fatalf("bound ordering violated: A=%v B=%v D=%v", a, b, d)
	}
}

// Cholesky's closed forms must sit between the triangular GE bound (same
// per-kind geometry) and, in total, below an equal-tile FW cube census.
func TestCholClosedFormsAgainstGE(t *testing.T) {
	ch, err := Lookup(core.CH)
	if err != nil {
		t.Fatal(err)
	}
	ge, err := Lookup(core.GE)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []int{8, 16, 64} {
		for _, kind := range []dag.Kind{dag.KindA, dag.KindC, dag.KindD} {
			if ch.Flops(kind, m) != ge.Flops(kind, m) {
				t.Fatalf("CH Flops(%v, %d) = %v, GE = %v", kind, m, ch.Flops(kind, m), ge.Flops(kind, m))
			}
			if ch.MaxMissBound(kind, m, 64) != ge.MaxMissBound(kind, m, 64) {
				t.Fatalf("CH MaxMissBound(%v, %d) diverges from GE", kind, m)
			}
		}
	}
	for _, tiles := range []int{2, 4, 16} {
		if ch.TotalTasks(tiles) >= ge.TotalTasks(tiles) {
			t.Fatalf("tiles=%d: CH works half the matrix, must have fewer tasks than GE (%d vs %d)",
				tiles, ch.TotalTasks(tiles), ge.TotalTasks(tiles))
		}
	}
}
