// Package bench is the benchmark registry: each of the study's DP
// benchmarks registers one self-describing implementation of the Benchmark
// interface, and every cross-cutting layer — the analytical model, the
// figure/claims/memory/sched harness, the chaos matrix, the dpbench and
// dpsim CLIs — dispatches through the registry instead of switching on
// core.BenchID by hand. Onboarding a new recurrence is then a one-package
// change: implement Benchmark, call Register from an init, and the model
// closed forms, DAG builders, runners, GC contract and reports all pick it
// up (internal/chol is the worked example; see DESIGN.md §5f).
package bench

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"dpflow/internal/cnc"
	"dpflow/internal/core"
	"dpflow/internal/dag"
	"dpflow/internal/forkjoin"
	"dpflow/internal/gep"
)

// ErrUnknownBenchmark is returned (wrapped) by Lookup and ByName for ids
// and names no benchmark registered — the loud replacement for the silent
// "treat anything unknown as GE-shaped" fallbacks the registry removed.
var ErrUnknownBenchmark = errors.New("bench: unknown benchmark")

// RunOpts carries the optional machinery of one Instance.Run.
type RunOpts struct {
	// Workers is the CnC worker count (CnC variants).
	Workers int
	// Pool runs the fork-join variant; required for core.OMPTasking.
	Pool *forkjoin.Pool
	// Tune, when non-nil, receives every cnc.Graph the run builds before
	// it starts — the chaos harness's fault hook and the memory report's
	// WithMemoryLimit hook. Ignored by non-CnC variants.
	Tune func(*cnc.Graph)
	// Trace, when non-nil, brackets every base-tile kernel invocation: the
	// returned func is called when the kernel finishes. The sched report's
	// utilisation probe.
	Trace func() func()
}

// Instance is one concrete problem of a benchmark: inputs generated from a
// seed plus the serial reference result. An Instance is single-use — one
// Run, then Verify against the reference.
type Instance interface {
	// Run executes the variant on the instance's working copy and returns
	// the CnC runtime stats (zero-valued for non-CnC variants).
	Run(ctx context.Context, v core.Variant, opts RunOpts) (gep.CnCStats, error)
	// Verify checks the result of the preceding Run against the serial
	// reference.
	Verify() error
}

// Benchmark is one self-describing DP benchmark. The methods fall in three
// groups: identity (ID, Name), execution (NewInstance → Instance), and the
// static descriptions the model/harness layers consume — DAG builders for
// both execution models and the paper's analytical-model closed forms.
type Benchmark interface {
	// ID is the benchmark's shared enum name.
	ID() core.BenchID
	// Name is the lowercase CLI token (dpsim -bench <name>).
	Name() string

	// NewInstance builds a fresh problem of size n at the given base size,
	// deterministically from seed, with its serial reference precomputed.
	NewInstance(n, base int, seed int64) (Instance, error)

	// Dataflow builds the analytic true-dependency task graph at tile
	// granularity, ForkJoin the ordering DAG the Spawn/Wait schedule
	// imposes (joins included).
	Dataflow(tiles int) dag.Graph
	ForkJoin(tiles int) dag.Graph

	// TotalTasks is the closed-form base-task census for a tiles×tiles
	// problem; KindCounts breaks it down by dag.Kind (joins excluded).
	TotalTasks(tiles int) int
	KindCounts(tiles int) [dag.NumKinds]int

	// Flops, MaxMissBound and StreamLines are the paper's per-base-task
	// closed forms (§IV-B): floating-point operations, the three-line
	// cache-miss upper bound, and the streaming-regime line traffic of one
	// m×m base task of the given kind.
	Flops(kind dag.Kind, m int) float64
	MaxMissBound(kind dag.Kind, m, lineBytes int) float64
	StreamLines(kind dag.Kind, m, lineBytes int) float64

	// SpecGraph builds the static CnC specification graph — collections
	// and prescribe/produce/consume edges, Listing 1 style — without
	// running it (cmd/cncgraph's text and DOT renderings).
	SpecGraph() *cnc.Graph

	// DepCount is the number of pre-declared dependencies / blocking gets
	// of a base task of the given kind (prices the CnC variant overheads).
	DepCount(kind dag.Kind) float64
	// PrefetchFriendly reports whether the fork-join schedule's depth-first
	// locality lets the hardware prefetcher discount the benchmark's memory
	// time (true for the GE family, false for SW's row streams).
	PrefetchFriendly() bool

	// Wire returns the benchmark's on-the-wire vocabulary for a tiles×tiles
	// problem: sample values of every tag and item type its CnC graph puts,
	// spanning the edge cases a serialisation layer must survive — the
	// zero-value tag, zero-size tiles (S == 0), and max-coordinate tags and
	// keys. The distributed runtime (internal/dist) registers these concrete
	// types with its codec and the codec round-trip tests sweep them.
	Wire(tiles int) WireVocab
}

// WireVocab is one benchmark's on-the-wire vocabulary: the concrete tag and
// item types its CnC graph exchanges, as sample values. Every registered
// benchmark must enumerate at least one sample of every type it puts so the
// distributed codec can register and round-trip them.
type WireVocab struct {
	// Tags are sample control-tag values (one per tag collection at least),
	// including the zero value and the maximum-coordinate tag.
	Tags []any
	// Items are sample (collection, key, value) triples, one per item
	// collection at least, including zero-value and max-coordinate keys.
	Items []WireItem
}

// WireItem is one sample item of a benchmark's vocabulary.
type WireItem struct {
	Coll string
	Key  any
	Val  any
}

var registry = map[core.BenchID]Benchmark{}

// Register adds a benchmark to the registry; duplicate ids panic (a wiring
// bug, caught at init time).
func Register(b Benchmark) {
	if _, dup := registry[b.ID()]; dup {
		panic(fmt.Sprintf("bench: duplicate registration of %v", b.ID()))
	}
	registry[b.ID()] = b
}

// Lookup resolves a benchmark id, or reports ErrUnknownBenchmark.
func Lookup(id core.BenchID) (Benchmark, error) {
	b, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("%w: id %v (registered: %s)", ErrUnknownBenchmark, id, NameList())
	}
	return b, nil
}

// ByName resolves a benchmark by its CLI token or its BenchID string,
// case-insensitively, or reports ErrUnknownBenchmark.
func ByName(name string) (Benchmark, error) {
	want := strings.ToLower(name)
	for _, b := range registry {
		if want == b.Name() || want == strings.ToLower(b.ID().String()) {
			return b, nil
		}
	}
	return nil, fmt.Errorf("%w: %q (registered: %s)", ErrUnknownBenchmark, name, NameList())
}

// All returns every registered benchmark, sorted by id — the loop driver
// for registry-wide reports and conformance tests.
func All() []Benchmark {
	out := make([]Benchmark, 0, len(registry))
	for _, b := range registry {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// NameList renders the registered CLI tokens for usage messages.
func NameList() string {
	var names []string
	for _, b := range All() {
		names = append(names, b.Name())
	}
	return strings.Join(names, ", ")
}
