package bench

import (
	"context"
	"errors"
	"testing"

	"dpflow/internal/core"
	"dpflow/internal/dag"
	"dpflow/internal/forkjoin"
)

// The conformance suite runs automatically against every registered
// benchmark — register a fifth benchmark and it is held to the same
// contract with no new test code. It replaces the per-package
// TestAllVariantsAgree copies that ge, fw and sw used to carry.

const (
	confN       = 64
	confBase    = 8
	confWorkers = 3
	confSeed    = 17
)

// TestConformanceVariantsAgree: every variant of every benchmark must
// reproduce the serial reference exactly (all drivers apply bit-identical
// per-element operations, so Verify demands equality, not tolerance).
func TestConformanceVariantsAgree(t *testing.T) {
	pool := forkjoin.NewPool(forkjoin.Config{Workers: confWorkers})
	defer pool.Close()
	variants := []core.Variant{core.SerialRDP, core.OMPTasking,
		core.NativeCnC, core.TunerCnC, core.ManualCnC, core.NonBlockingCnC}
	for _, b := range All() {
		for _, v := range variants {
			t.Run(b.Name()+"/"+v.String(), func(t *testing.T) {
				in, err := b.NewInstance(confN, confBase, confSeed)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := in.Run(context.Background(), v, RunOpts{Workers: confWorkers, Pool: pool}); err != nil {
					t.Fatal(err)
				}
				if err := in.Verify(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestConformanceLeakFree: the CnC schedules that declare get-counts must
// garbage-collect every item receipt by quiesce on every benchmark —
// LiveItems 0, everything put eventually freed, and a live high-water mark
// strictly below the total put count.
func TestConformanceLeakFree(t *testing.T) {
	for _, b := range All() {
		for _, v := range []core.Variant{core.NativeCnC, core.TunerCnC, core.ManualCnC} {
			t.Run(b.Name()+"/"+v.String(), func(t *testing.T) {
				in, err := b.NewInstance(confN, confBase, confSeed)
				if err != nil {
					t.Fatal(err)
				}
				stats, err := in.Run(context.Background(), v, RunOpts{Workers: confWorkers})
				if err != nil {
					t.Fatal(err)
				}
				if err := in.Verify(); err != nil {
					t.Fatal(err)
				}
				if stats.ItemsPut == 0 {
					t.Fatal("ItemsPut = 0; stats not wired")
				}
				if stats.LiveItems != 0 {
					t.Fatalf("LiveItems = %d after quiesce, want 0", stats.LiveItems)
				}
				if stats.ItemsFreed != int64(stats.ItemsPut) {
					t.Fatalf("ItemsFreed = %d, want %d", stats.ItemsFreed, stats.ItemsPut)
				}
				if stats.PeakLiveItems >= int64(stats.ItemsPut) {
					t.Fatalf("PeakLiveItems = %d, want < %d (no item ever died)",
						stats.PeakLiveItems, stats.ItemsPut)
				}
			})
		}
	}
}

// TestConformanceCancellation: a pre-cancelled context must unwind every
// parallel variant of every benchmark promptly with context.Canceled.
func TestConformanceCancellation(t *testing.T) {
	pool := forkjoin.NewPool(forkjoin.Config{Workers: confWorkers})
	defer pool.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, b := range All() {
		for _, v := range core.ParallelVariants {
			t.Run(b.Name()+"/"+v.String(), func(t *testing.T) {
				in, err := b.NewInstance(confN, confBase, confSeed)
				if err != nil {
					t.Fatal(err)
				}
				_, err = in.Run(ctx, v, RunOpts{Workers: confWorkers, Pool: pool})
				if v == core.OMPTasking {
					// The fork-join pool observes cancellation between task
					// dispatches, so a pre-cancelled run may still complete;
					// a completed run must then verify.
					if err == nil {
						if verr := in.Verify(); verr != nil {
							t.Fatalf("uncancelled run failed verification: %v", verr)
						}
						return
					}
					if !errors.Is(err, context.Canceled) {
						t.Fatalf("Run with cancelled ctx = %v, want context.Canceled or nil", err)
					}
					return
				}
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("Run with cancelled ctx = %v, want context.Canceled", err)
				}
			})
		}
	}
}

// TestConformanceCensus cross-checks each benchmark's three structural
// views: the closed-form TotalTasks, the per-kind breakdown, and the
// materialised DAGs of both execution models.
func TestConformanceCensus(t *testing.T) {
	for _, b := range All() {
		for _, tiles := range []int{1, 2, 4, 8} {
			df, fj := b.Dataflow(tiles), b.ForkJoin(tiles)
			if err := dag.CheckAcyclic(df); err != nil {
				t.Fatalf("%s tiles=%d dataflow: %v", b.Name(), tiles, err)
			}
			if err := dag.CheckAcyclic(fj); err != nil {
				t.Fatalf("%s tiles=%d fork-join: %v", b.Name(), tiles, err)
			}
			total := b.TotalTasks(tiles)
			sum := 0
			for _, c := range b.KindCounts(tiles) {
				sum += c
			}
			if sum != total {
				t.Fatalf("%s tiles=%d: KindCounts sum %d, TotalTasks %d", b.Name(), tiles, sum, total)
			}
			if got := dag.Analyze(df).Tasks; got != total {
				t.Fatalf("%s tiles=%d: dataflow has %d tasks, TotalTasks %d", b.Name(), tiles, got, total)
			}
			if got := dag.Analyze(fj).Tasks; got != total {
				t.Fatalf("%s tiles=%d: fork-join has %d tasks, TotalTasks %d", b.Name(), tiles, got, total)
			}
		}
	}
}

// TestConformanceInstanceSingleUse: Verify without a Run must not pass
// trivially for score-carrying benchmarks, and a failed-run instance must
// not verify (spot-checked via sw, whose Verify guards explicitly).
func TestConformanceInstanceSingleUse(t *testing.T) {
	b, err := Lookup(core.SW)
	if err != nil {
		t.Fatal(err)
	}
	in, err := b.NewInstance(confN, confBase, confSeed)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Verify(); err == nil {
		t.Fatal("sw Verify before Run succeeded; want error")
	}
}
