package bench

import (
	"math/rand"

	"dpflow/internal/cnc"
	"dpflow/internal/core"
	"dpflow/internal/dag"
	"dpflow/internal/fw"
	"dpflow/internal/gep"
	"dpflow/internal/graphgen"
)

func init() { Register(fwBench{}) }

// fwBench is Floyd-Warshall all-pairs shortest paths — the GEP
// instantiation over the full cube update set (every funcX kind performs
// the same m³ relaxations).
type fwBench struct{}

func (fwBench) ID() core.BenchID { return core.FW }
func (fwBench) Name() string     { return "fw" }

func (fwBench) NewInstance(n, base int, seed int64) (Instance, error) {
	rng := rand.New(rand.NewSource(seed))
	d := graphgen.Random(graphgen.Config{N: n, Density: 0.35, MaxWeight: 9, Infinity: fw.Infinity}, rng)
	ref := d.Clone()
	if err := fw.RDPSerial(ref, base); err != nil {
		return nil, err
	}
	return &gepInstance{alg: fw.Algorithm, name: "fw", work: d, ref: ref, base: base}, nil
}

func (fwBench) Dataflow(tiles int) dag.Graph { return dag.NewGEPDataflow(tiles, gep.Cube) }
func (fwBench) ForkJoin(tiles int) dag.Graph { return dag.NewGEPForkJoin(tiles, gep.Cube) }

func (fwBench) TotalTasks(tiles int) int { return TotalTasksGEP(tiles, gep.Cube) }

func (fwBench) KindCounts(tiles int) [dag.NumKinds]int {
	var out [dag.NumKinds]int
	a, b, c, d := gep.TaskCount(tiles, gep.Cube)
	out[dag.KindA], out[dag.KindB], out[dag.KindC], out[dag.KindD] = a, b, c, d
	return out
}

// Flops: each FW update is an add and a compare.
func (fwBench) Flops(kind dag.Kind, m int) float64 {
	return 2 * float64(Updates(kind, m, gep.Cube))
}

func (fwBench) MaxMissBound(kind dag.Kind, m, lineBytes int) float64 {
	return missBoundLoop(m, lineBytes, func(int) (int, int) { return m, m })
}

func (fwBench) StreamLines(kind dag.Kind, m, lineBytes int) float64 {
	return streamLinesOf(float64(Updates(kind, m, gep.Cube)), m, lineBytes)
}

// DepCount matches GE: the FW recursion pre-declares the same await
// structure per kind.
func (fwBench) DepCount(kind dag.Kind) float64 {
	switch kind {
	case dag.KindA:
		return 1
	case dag.KindB, dag.KindC:
		return 2
	case dag.KindD:
		return 4
	default:
		return 0
	}
}

func (fwBench) PrefetchFriendly() bool { return true }

func (fwBench) Wire(tiles int) WireVocab { return gepWire(tiles) }

func (fwBench) SpecGraph() *cnc.Graph { return fw.Algorithm.NewCnCGraph("FW-APSP", core.NativeCnC) }
