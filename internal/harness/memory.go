package harness

import (
	"context"
	"fmt"
	"io"

	"dpflow/internal/bench"
	"dpflow/internal/cnc"
	"dpflow/internal/core"
	"dpflow/internal/gep"
)

// Memory-report geometry: 8x8 tiles per benchmark is large enough that the
// live set has real structure (interior tiles with full fan-in) yet small
// enough that three schedules x two runs x four benchmarks finishes in
// seconds.
const (
	memN       = 256
	memBase    = 32
	memWorkers = 8
	memSeed    = 7
)

// memRun executes one registered benchmark once under a schedule on a
// fresh instance and returns the graph's stats after verifying the result
// against the serial reference.
func memRun(ctx context.Context, b bench.Benchmark, v core.Variant, tune func(*cnc.Graph)) (gep.CnCStats, error) {
	in, err := b.NewInstance(memN, memBase, memSeed)
	if err != nil {
		return gep.CnCStats{}, err
	}
	stats, err := in.Run(ctx, v, bench.RunOpts{Workers: memWorkers, Tune: tune})
	if err != nil {
		return stats, err
	}
	return stats, in.Verify()
}

// WriteMemory reports the bounded-memory contract of the CnC runtime on
// real benchmark graphs: for every GC-enabled schedule of every registered
// benchmark it runs once unbounded (measuring the natural peak live set)
// and once with the memory limit set to 95% of that measured peak. The
// claims checked per row:
//
//   - leak freedom: LiveItems == 0 at quiesce, ItemsFreed == ItemsPut;
//   - the peak live set is a fraction of the items put (get-count GC frees
//     tiles as their last reader completes, cf. the paper's data-movement
//     discussion in §V);
//   - under a feasible limit the run completes with PeakLiveBytes <= limit
//     and BackpressureStalls == 0 — throttled puts deferred (waits) instead
//     of admitted over budget.
//
// Any violated claim is reported as an error so `dpbench -exp memory` can
// gate CI.
func WriteMemory(ctx context.Context, w io.Writer) error {
	variants := []core.Variant{core.NativeCnC, core.TunerCnC, core.ManualCnC}

	fmt.Fprintf(w, "# memory: get-count GC + backpressure, n=%d base=%d workers=%d (limit = 95%% of unbounded peak)\n", memN, memBase, memWorkers)
	fmt.Fprintf(w, "%6s %10s %10s %8s %6s %6s %8s %12s %12s %8s %8s %8s\n",
		"bench", "variant", "mode", "puts", "peak", "live", "freed", "peakbytes", "limit", "waits", "stalls", "claims")

	var failures []string
	bounded, degraded := 0, 0
	for _, b := range bench.All() {
		name := b.ID().String()
		for _, v := range variants {
			if err := ctx.Err(); err != nil {
				return err
			}
			free, err := memRun(ctx, b, v, nil)
			if err != nil {
				return fmt.Errorf("memory: %s/%s unbounded: %w", name, v, err)
			}
			writeMemRow(w, name, v.String(), "unbounded", free.Stats, 0)
			if msg := checkLeakFree(name, v.String(), free.Stats); msg != "" {
				failures = append(failures, msg)
			}

			limit := free.PeakLiveBytes * 95 / 100
			capped, err := memRun(ctx, b, v, func(g *cnc.Graph) { g.WithMemoryLimit(limit) })
			if err != nil {
				return fmt.Errorf("memory: %s/%s bounded to %d: %w", name, v, limit, err)
			}
			writeMemRow(w, name, v.String(), "bounded", capped.Stats, limit)
			if msg := checkLeakFree(name, v.String(), capped.Stats); msg != "" {
				failures = append(failures, msg)
			}
			switch {
			case capped.BackpressureStalls > 0:
				degraded++
			case capped.PeakLiveBytes <= limit:
				bounded++
			default:
				failures = append(failures, fmt.Sprintf("%s/%s: peak %d bytes exceeds limit %d without reported stalls",
					name, v, capped.PeakLiveBytes, limit))
			}
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(w, "FAIL:", f)
		}
		return fmt.Errorf("memory: %d claim(s) violated", len(failures))
	}
	fmt.Fprintf(w, "\n// all rows leak-free (live=0, freed=puts); %d limited runs honored their budget, %d degraded gracefully (limit below that schedule's floor)\n", bounded, degraded)
	return nil
}

func writeMemRow(w io.Writer, bench, variant, mode string, s cnc.Stats, limit int64) {
	claims := "leak-free"
	if s.LiveItems != 0 {
		claims = "LEAK"
	}
	lim := "-"
	if limit > 0 {
		lim = fmt.Sprint(limit)
		if s.BackpressureStalls == 0 && s.PeakLiveBytes <= limit {
			claims += ",bounded"
		} else if s.BackpressureStalls > 0 {
			claims += ",degraded"
		} else {
			claims = "OVER-LIMIT"
		}
	}
	fmt.Fprintf(w, "%6s %10s %10s %8d %6d %6d %8d %12d %12s %8d %8d %8s\n",
		bench, variant, mode, s.ItemsPut, s.PeakLiveItems, s.LiveItems, s.ItemsFreed,
		s.PeakLiveBytes, lim, s.BackpressureWaits, s.BackpressureStalls, claims)
}

// checkLeakFree validates the quiesce-time accounting of one run; empty
// string means every claim held.
func checkLeakFree(bench, variant string, s cnc.Stats) string {
	switch {
	case s.LiveItems != 0:
		return fmt.Sprintf("%s/%s: %d items live at quiesce (freed %d of %d)", bench, variant, s.LiveItems, s.ItemsFreed, s.ItemsPut)
	case s.ItemsFreed != int64(s.ItemsPut):
		return fmt.Sprintf("%s/%s: freed %d of %d items", bench, variant, s.ItemsFreed, s.ItemsPut)
	case s.PeakLiveItems >= int64(s.ItemsPut):
		return fmt.Sprintf("%s/%s: peak live %d never dropped below items put %d", bench, variant, s.PeakLiveItems, s.ItemsPut)
	}
	return ""
}
