package harness

import (
	"context"
	"fmt"
	"io"
	"math"

	"dpflow/internal/bench"
	"dpflow/internal/core"
	"dpflow/internal/dag"
	"dpflow/internal/forkjoin"
	"dpflow/internal/gep"
	"dpflow/internal/machine"
	"dpflow/internal/model"
	"dpflow/internal/simsched"
)

// maxSweepTiles guards claim sweeps against building graphs with hundreds
// of millions of tasks (an FW cube at 512 tiles/side is 134M base tasks);
// points beyond the guard are skipped, which never moves the minimum — the
// skipped points are deep in the overhead-dominated regime.
const maxSweepTiles = 256

// BestOverBases returns the minimum simulated time of a variant over a
// base-size sweep, and the base achieving it. The sweep checks ctx between
// points.
func BestOverBases(ctx context.Context, mach *machine.Machine, id core.BenchID, n int, v core.Variant, bases []int) (float64, int, error) {
	b, err := bench.Lookup(id)
	if err != nil {
		return 0, 0, err
	}
	cache := map[string]dag.Graph{}
	best, bestBase := math.Inf(1), 0
	for _, base := range bases {
		if err := ctx.Err(); err != nil {
			return 0, 0, err
		}
		if base > n/2 {
			continue
		}
		if tiles := n / gep.BaseSize(n, base); tiles > maxSweepTiles {
			continue
		}
		t, err := simulatePoint(cache, mach, b, n, base, v)
		if err != nil {
			return 0, 0, err
		}
		if t < best {
			best, bestBase = t, base
		}
	}
	return best, bestBase, nil
}

// WriteCrossover reproduces the paper's two headline claims as a report:
// with fixed cores, fork-join overtakes data-flow as the input grows; with
// a fixed problem, moving to the machine with more cores hands the win back
// to data-flow.
func WriteCrossover(ctx context.Context, w io.Writer) error {
	bases := []int{32, 64, 128, 256, 512}
	for _, b := range bench.All() {
		fmt.Fprintf(w, "# crossover: best time over base sweep, %s (data-flow = best CnC variant)\n", b.ID())
		fmt.Fprintf(w, "%12s %8s %14s %14s %10s\n", "machine", "n", "data-flow", "fork-join", "winner")
		for _, mk := range []func() *machine.Machine{machine.EPYC64, machine.SKYLAKE192} {
			mach := mk()
			for _, n := range []int{2048, 4096, 8192, 16384} {
				df := math.Inf(1)
				for _, v := range []core.Variant{core.NativeCnC, core.TunerCnC, core.ManualCnC} {
					t, _, err := BestOverBases(ctx, mach, b.ID(), n, v, bases)
					if err != nil {
						return err
					}
					if t < df {
						df = t
					}
				}
				fj, _, err := BestOverBases(ctx, mach, b.ID(), n, core.OMPTasking, bases)
				if err != nil {
					return err
				}
				winner := "data-flow"
				if fj < df {
					winner = "fork-join"
				}
				fmt.Fprintf(w, "%12s %8d %14.4f %14.4f %10s\n", mach.Name, n, df, fj, winner)
			}
		}
		fmt.Fprintln(w)
	}
	return writeCrossoverVerification(ctx, w)
}

// writeCrossoverVerification grounds the simulated tables in real runs:
// every registered benchmark executes every parallel variant on a small
// instance and is checked against its serial reference. A benchmark that
// simulates but cannot run — or runs but disagrees with its reference —
// fails the experiment instead of shipping an unverified table.
func writeCrossoverVerification(ctx context.Context, w io.Writer) error {
	const (
		verifyN       = 128
		verifyBase    = 16
		verifyWorkers = 4
		verifySeed    = 5
	)
	pool := forkjoin.NewPool(forkjoin.Config{Workers: verifyWorkers})
	defer pool.Close()
	fmt.Fprintf(w, "# verification: real runs, n=%d base=%d workers=%d, checked against serial reference\n",
		verifyN, verifyBase, verifyWorkers)
	fmt.Fprintf(w, "%10s %14s %12s %12s\n", "bench", "variant", "base tasks", "result")
	for _, b := range bench.All() {
		for _, v := range core.ParallelVariants {
			if err := ctx.Err(); err != nil {
				return err
			}
			in, err := b.NewInstance(verifyN, verifyBase, verifySeed)
			if err != nil {
				return fmt.Errorf("crossover verify %s: %w", b.Name(), err)
			}
			stats, err := in.Run(ctx, v, bench.RunOpts{Workers: verifyWorkers, Pool: pool})
			if err != nil {
				return fmt.Errorf("crossover verify %s/%v: %w", b.Name(), v, err)
			}
			if err := in.Verify(); err != nil {
				return fmt.Errorf("crossover verify %s/%v: %w", b.Name(), v, err)
			}
			fmt.Fprintf(w, "%10s %14s %12d %12s\n", b.Name(), v, stats.BaseTasks, "ok")
		}
	}
	return nil
}

// WriteSWSpan reproduces the §IV-B wavefront claim quantitatively: the
// fork-join span of R-DP Smith-Waterman grows like T^lg3 while the
// data-flow span grows like 2T-1, so the artificial-dependency penalty is
// unbounded.
func WriteSWSpan(ctx context.Context, w io.Writer) error {
	var unit simsched.Costs
	for k := 0; k < dag.NumKinds; k++ {
		if dag.Kind(k) != dag.KindJoin {
			unit.Exec[k] = 1
		}
	}
	fmt.Fprintln(w, "# swspan: critical path length (in unit tasks) of R-DP Smith-Waterman")
	fmt.Fprintf(w, "%8s %12s %12s %8s %22s\n", "tiles", "data-flow", "fork-join", "ratio", "theory fj = T^lg3")
	for _, tiles := range []int{4, 8, 16, 32, 64, 128} {
		if err := ctx.Err(); err != nil {
			return err
		}
		df, err := simsched.Simulate(dag.NewSWDataflow(tiles), 0, unit)
		if err != nil {
			return err
		}
		fj, err := simsched.Simulate(dag.NewSWForkJoin(tiles), 0, unit)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%8d %12.0f %12.0f %8.2f %22.0f\n",
			tiles, df.Makespan, fj.Makespan, fj.Makespan/df.Makespan,
			math.Pow(float64(tiles), math.Log2(3)))
	}
	fmt.Fprintln(w, "\n# GE spans for comparison (A->B/C->D chain: data-flow = 3T-2)")
	fmt.Fprintf(w, "%8s %12s %12s %8s\n", "tiles", "data-flow", "fork-join", "ratio")
	for _, tiles := range []int{4, 8, 16, 32, 64} {
		if err := ctx.Err(); err != nil {
			return err
		}
		df, err := simsched.Simulate(dag.NewGEPDataflow(tiles, gep.Triangular), 0, unit)
		if err != nil {
			return err
		}
		fj, err := simsched.Simulate(dag.NewGEPForkJoin(tiles, gep.Triangular), 0, unit)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%8d %12.0f %12.0f %8.2f\n", tiles, df.Makespan, fj.Makespan, fj.Makespan/df.Makespan)
	}
	return nil
}

// WriteBestBlock reproduces the paper's closing observation that the best
// running times land at interior block sizes (the paper reports 128–256 on
// its testbeds) for every variant of every benchmark.
func WriteBestBlock(ctx context.Context, w io.Writer) error {
	bases := []int{16, 32, 64, 128, 256, 512, 1024}
	fmt.Fprintln(w, "# bestblock: argmin base size per benchmark/machine/variant, n=8192")
	fmt.Fprintf(w, "%12s %10s %14s %10s %14s\n", "machine", "bench", "variant", "best base", "time")
	for _, mk := range []func() *machine.Machine{machine.EPYC64, machine.SKYLAKE192} {
		mach := mk()
		for _, b := range bench.All() {
			for _, v := range core.ParallelVariants {
				t, base, err := BestOverBases(ctx, mach, b.ID(), 8192, v, bases)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "%12s %10s %14s %10d %14.4f\n", mach.Name, b.ID(), v, base, t)
			}
		}
	}
	return nil
}

// WriteRWay quantifies how much of the fork-join artificial-dependency span
// the parametric r-way algorithms (the paper's references [15, 16], §I)
// recover: as the split arity r grows toward the tile count, the fork-join
// span approaches the data-flow span — at the cost of giving up cache
// obliviousness.
func WriteRWay(ctx context.Context, w io.Writer) error {
	mach := machine.EPYC64()
	const (
		n     = 8192
		base  = 128
		tiles = n / base // 64
	)
	var unit simsched.Costs
	for k := 0; k < dag.NumKinds; k++ {
		if dag.Kind(k) != dag.KindJoin {
			unit.Exec[k] = 1
		}
	}
	ge, err := bench.Lookup(core.GE)
	if err != nil {
		return err
	}
	costs := func(v core.Variant, total int) simsched.Costs {
		return model.CostsFor(mach, ge, n, base, v, total)
	}
	df := ge.Dataflow(tiles)
	dfSpan, err := simsched.Simulate(df, 0, unit)
	if err != nil {
		return err
	}
	dfTime, err := simsched.Simulate(df, mach.Cores, costs(core.NativeCnC, df.Len()))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "# rway: r-way fork-join GE, n=%d base=%d (%d tiles) on %s\n", n, base, tiles, mach.Name)
	fmt.Fprintf(w, "%10s %14s %14s %14s\n", "r", "span (tasks)", "sim time (s)", "vs data-flow")
	fmt.Fprintf(w, "%10s %14.0f %14.4f %14s\n", "data-flow", dfSpan.Makespan, dfTime.Makespan, "1.00")
	for _, r := range []int{2, 4, 8, tiles} {
		if err := ctx.Err(); err != nil {
			return err
		}
		g := dag.NewGEPForkJoinR(tiles, r, gep.Triangular)
		span, err := simsched.Simulate(g, 0, unit)
		if err != nil {
			return err
		}
		sim, err := simsched.Simulate(g, mach.Cores, costs(core.OMPTasking, df.Len()))
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%10d %14.0f %14.4f %14.2f\n", r, span.Makespan, sim.Makespan, sim.Makespan/dfTime.Makespan)
	}
	return nil
}

// WriteComputeOn projects the compute_on tuner the paper's §IV-B closes
// with: pinning tile tasks to a home socket ("thereby minimizing potential
// inter-core and inter-NUMA data movement"). The migration penalty is the
// modelled cost of a tile's three-block working set crossing the socket
// interconnect; the policy column shows FIFO dispatch (no placement) versus
// home-socket-preferring dispatch.
func WriteComputeOn(ctx context.Context, w io.Writer) error {
	mach := machine.SKYLAKE192()
	const (
		n    = 8192
		base = 128
	)
	ge, err := bench.Lookup(core.GE)
	if err != nil {
		return err
	}
	tiles := n / gep.BaseSize(n, base)
	df := ge.Dataflow(tiles).(*dag.GEPDataflow)
	costs := model.CostsFor(mach, ge, n, base, core.TunerCnC, df.Len())
	m := gep.BaseSize(n, base)
	// A migrated tile re-streams its working set across the interconnect.
	penalty := float64(bench.WorkingSetBytes(m)) / 64.0 * mach.MemMissCost
	home := func(id int) int {
		i, j, _ := df.Coords(id)
		return (i*131 + j) % mach.Sockets
	}
	fmt.Fprintf(w, "# computeon: GE n=%d base=%d on %s, %d sockets, migration penalty %.3gms/task\n",
		n, base, mach.Name, mach.Sockets, penalty*1e3)
	fmt.Fprintf(w, "%18s %14s %14s %14s\n", "policy", "time (s)", "migrations", "utilization")
	for _, pol := range []struct {
		name   string
		prefer bool
	}{{"fifo (no hint)", false}, {"compute_on", true}} {
		if err := ctx.Err(); err != nil {
			return err
		}
		r, err := simsched.SimulateAffinity(df, mach.Cores, costs, simsched.Affinity{
			Sockets:        mach.Sockets,
			Home:           home,
			MigratePenalty: penalty,
			PreferHome:     pol.prefer,
			ScanLimit:      256,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%18s %14.4f %14d %13.1f%%\n", pol.name, r.Makespan, r.Migrations, 100*r.Utilization)
	}
	return nil
}

// WriteScaling sweeps the processor count at a fixed problem — the
// continuous form of the paper's "more cores favour data-flow" claim (and
// the strong-scaling presentation its related-work section cites for CnC).
// The speedup columns are T_serial / T_P per execution model.
func WriteScaling(ctx context.Context, w io.Writer) error {
	const (
		n    = 4096
		base = 128
	)
	mach := machine.EPYC64() // cost constants; the core count is swept
	fmt.Fprintf(w, "# scaling: simulated strong scaling, n=%d base=%d (%s cost model)\n", n, base, mach.Name)
	for _, b := range bench.All() {
		tiles := n / gep.BaseSize(n, base)
		df, fj := b.Dataflow(tiles), b.ForkJoin(tiles)
		dfCosts := model.CostsFor(mach, b, n, base, core.NativeCnC, df.Len())
		fjCosts := model.CostsFor(mach, b, n, base, core.OMPTasking, df.Len())
		dfOne, err := simsched.Simulate(df, 1, dfCosts)
		if err != nil {
			return err
		}
		fjOne, err := simsched.Simulate(fj, 1, fjCosts)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\n## %s (%d tiles/side)\n", b.ID(), tiles)
		fmt.Fprintf(w, "%8s %14s %12s %14s %12s %10s\n",
			"P", "data-flow (s)", "speedup", "fork-join (s)", "speedup", "winner")
		for _, p := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256} {
			if err := ctx.Err(); err != nil {
				return err
			}
			rdf, err := simsched.Simulate(df, p, dfCosts)
			if err != nil {
				return err
			}
			rfj, err := simsched.Simulate(fj, p, fjCosts)
			if err != nil {
				return err
			}
			winner := "data-flow"
			if rfj.Makespan < rdf.Makespan {
				winner = "fork-join"
			}
			fmt.Fprintf(w, "%8d %14.4f %12.1f %14.4f %12.1f %10s\n",
				p, rdf.Makespan, dfOne.Makespan/rdf.Makespan,
				rfj.Makespan, fjOne.Makespan/rfj.Makespan, winner)
		}
	}
	return nil
}

// WriteCluster explores the paper's distributed-memory future work: the
// data-flow GE DAG under owner-computes placement (2-D block-cyclic tiles)
// on clusters of EPYC-like nodes, with per-edge communication costs. The
// small-base rows show communication swamping the extra parallelism; the
// large-base rows scale until starvation — the surface-to-volume tradeoff
// distributed R-DP work revolves around.
func WriteCluster(ctx context.Context, w io.Writer) error {
	mach := machine.EPYC64()
	const n = 8192
	fmt.Fprintf(w, "# cluster: distributed data-flow GE, n=%d, owner-computes block-cyclic tiles\n", n)
	fmt.Fprintf(w, "%8s %8s %8s %14s %12s %12s %12s\n",
		"base", "nodes", "cores", "time (s)", "speedup", "messages", "comm (s)")
	ge, err := bench.Lookup(core.GE)
	if err != nil {
		return err
	}
	for _, base := range []int{128, 512} {
		tiles := n / gep.BaseSize(n, base)
		g := ge.Dataflow(tiles).(*dag.GEPDataflow)
		costs := model.CostsFor(mach, ge, n, base, core.NativeCnC, g.Len())
		m := gep.BaseSize(n, base)
		transfer := float64(m*m*8) / (10 << 30) // tile over 10 GiB/s links
		var t1 float64
		for _, nodes := range []int{1, 2, 4, 8, 16} {
			if err := ctx.Err(); err != nil {
				return err
			}
			pr := 1
			for pr*pr < nodes {
				pr *= 2
			} // process grid pr x nodes/pr
			pc := nodes / pr
			if pc == 0 {
				pc = 1
			}
			home := func(id int) int {
				i, j, _ := g.Coords(id)
				return (i%pr)*pc + (j % pc)
			}
			r, err := simsched.SimulateCluster(g, simsched.Cluster{
				Nodes: nodes, CoresPerNode: 32, Home: home,
				Latency: 2e-6, TransferTime: transfer,
			}, costs)
			if err != nil {
				return err
			}
			if nodes == 1 {
				t1 = r.Makespan
			}
			fmt.Fprintf(w, "%8d %8d %8d %14.4f %12.2f %12d %12.3f\n",
				base, nodes, nodes*32, r.Makespan, t1/r.Makespan, r.Messages, r.CommTime)
		}
	}
	return nil
}

// WriteSWWave compares the three SW schedules the paper discusses: the
// 2-way fork-join recursion (artificial dependencies), the
// barrier-per-wavefront fork-join of footnote 6 (span-optimal but rigid),
// and the pure data-flow wavefront. Simulated on EPYC-64 with per-variant
// overheads.
func WriteSWWave(ctx context.Context, w io.Writer) error {
	mach := machine.EPYC64()
	sw, err := bench.Lookup(core.SW)
	if err != nil {
		return err
	}
	const n = 8192
	fmt.Fprintf(w, "# swwave: three SW schedules, n=%d on %s\n", n, mach.Name)
	fmt.Fprintf(w, "%8s %18s %18s %18s\n", "base", "fj-recursion (s)", "fj-wavefront (s)", "data-flow (s)")
	for _, base := range []int{64, 128, 256, 512} {
		if err := ctx.Err(); err != nil {
			return err
		}
		tiles := n / gep.BaseSize(n, base)
		df := sw.Dataflow(tiles)
		costsFJ := model.CostsFor(mach, sw, n, base, core.OMPTasking, df.Len())
		costsDF := model.CostsFor(mach, sw, n, base, core.NativeCnC, df.Len())
		rec, err := simsched.Simulate(sw.ForkJoin(tiles), mach.Cores, costsFJ)
		if err != nil {
			return err
		}
		wave, err := simsched.Simulate(dag.NewSWWavefrontBarrier(tiles), mach.Cores, costsFJ)
		if err != nil {
			return err
		}
		flow, err := simsched.Simulate(df, mach.Cores, costsDF)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%8d %18.4f %18.4f %18.4f\n", base, rec.Makespan, wave.Makespan, flow.Makespan)
	}
	return nil
}
