package harness

import (
	"context"
	"fmt"
	"io"
	"time"

	"dpflow/internal/bench"
	"dpflow/internal/core"
	"dpflow/internal/dist"
)

// Distributed-report geometry: one mid-size problem per benchmark, enough
// item traffic that the shard counters are meaningful, small enough that
// the serialised per-shard RPC data plane keeps the sweep CI-sized.
const (
	distN       = 256
	distBase    = 32
	distSeed    = 5
	distWorkers = 8
	distShards  = 2
)

// WriteDist reports every registered benchmark executed two ways: the
// in-process NativeCnC baseline, and the same graph sharded across worker
// processes through the coordinator's item backend — same code path every
// benchmark gets for free via the registry. Each row shows the wall-clock
// cost of distribution next to the shard counters (remote put ops and the
// batch frames that carried them, local vs verified reads, the
// mirror-race re-polls, transport retries, respawns, degradations, wire
// bytes), and both runs verify against the serial reference, so the table
// doubles as an end-to-end conformance check: a benchmark that breaks the
// distributed protocol fails the experiment, not just a unit test.
// puts/f is the batching amortisation — the old per-item data plane was
// pinned at 1.0.
//
// verifySample is the coordinator's verified-read rate (0 = the production
// default of 1-in-16, 1 = every get, negative = never); CI runs the report
// at both the default and full verification.
func WriteDist(ctx context.Context, w io.Writer, verifySample int) error {
	fmt.Fprintf(w, "# dist: single-process vs %d-shard distributed execution, n=%d base=%d workers=%d verify-sample=%d (both verified)\n",
		distShards, distN, distBase, distWorkers, verifySample)
	fmt.Fprintf(w, "%6s %10s %10s %7s %9s %8s %7s %9s %9s %8s %8s %8s %8s %10s %10s\n",
		"bench", "single", "dist", "ratio", "r-puts", "p-frames", "puts/f", "l-gets", "v-gets", "races", "retries", "respawn", "degrade", "bytes-out", "bytes-in")

	var failures []string
	for _, b := range bench.All() {
		if err := ctx.Err(); err != nil {
			return err
		}
		in, err := b.NewInstance(distN, distBase, distSeed)
		if err != nil {
			return err
		}
		start := time.Now()
		_, err = in.Run(ctx, core.NativeCnC, bench.RunOpts{Workers: distWorkers})
		wallSingle := time.Since(start)
		if err == nil {
			err = in.Verify()
		}
		if err != nil {
			failures = append(failures, fmt.Sprintf("%s single-process: %v", b.Name(), err))
			continue
		}

		r := &dist.Runner{Shards: distShards, Workers: distWorkers,
			Options: dist.Options{VerifySample: verifySample}}
		res := r.Drive(b, distN, distBase, distSeed, nil)
		if res.Err != nil {
			failures = append(failures, fmt.Sprintf("%s distributed: %v", b.Name(), res.Err))
			continue
		}
		c := res.Counters
		putsPerFrame := 0.0
		if c.PutFrames > 0 {
			putsPerFrame = float64(c.RemotePuts) / float64(c.PutFrames)
		}
		fmt.Fprintf(w, "%6s %10s %10s %6.1fx %9d %8d %7.1f %9d %9d %8d %8d %8d %8d %10d %10d\n",
			b.Name(), wallSingle.Round(time.Millisecond), res.Wall.Round(time.Millisecond),
			float64(res.Wall)/float64(wallSingle),
			c.RemotePuts, c.PutFrames, putsPerFrame, c.LocalGets, c.VerifiedReads,
			c.RaceRetries, c.Retries, c.Respawns, c.Degradations,
			c.BytesOut, c.BytesIn)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(w, "FAIL:", f)
		}
		return fmt.Errorf("dist: %d run(s) failed", len(failures))
	}
	fmt.Fprintln(w, "\n// both columns verified against the serial reference; mirror puts cross the socket batched,")
	fmt.Fprintln(w, "// gets serve from the read-your-writes put log with a sampled fraction verified against the shard")
	return nil
}
