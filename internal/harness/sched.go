package harness

import (
	"context"
	"fmt"
	"io"
	"time"

	"dpflow/internal/bench"
	"dpflow/internal/core"
	"dpflow/internal/forkjoin"
	"dpflow/internal/trace"
)

// Scheduler-overhead geometry: real benchmark runs, several tile counts per
// schedule, on enough workers that dispatch contention is visible but small
// enough that a full sweep stays CI-sized.
const (
	schedWorkers = 8
	schedSeed    = 3
)

// schedPoint is one cell of the problem-size × base-size sweep.
type schedPoint struct{ n, base int }

// schedRow is one measured run for the report.
type schedRow struct {
	point    schedPoint
	variant  core.Variant
	wall     time.Duration
	util     float64 // kernel-busy fraction of workers × wall (trace.Report)
	tasks    int     // recorded kernel spans
	steals   uint64
	probes   uint64 // failed steal probes
	wakeups  uint64
	requeues uint64
	puts     uint64 // tags + items put (CnC only)
}

// runSched executes one registered benchmark once at a sweep point under
// one schedule with the instance's Trace hook recording kernel spans, then
// verifies the result against the serial reference and returns the measured
// row. Spans are recorded on lane 0 (worker ids are not threaded through
// the kernels), so trace.Report contributes the busy-time aggregate:
// utilisation = kernel busy / (workers × wall).
func runSched(ctx context.Context, b bench.Benchmark, p schedPoint, v core.Variant) (schedRow, error) {
	in, err := b.NewInstance(p.n, p.base, schedSeed)
	if err != nil {
		return schedRow{}, err
	}
	rec := trace.NewRecorder()
	opts := bench.RunOpts{Workers: schedWorkers, Trace: func() func() { return rec.Task(0, "tile") }}
	row := schedRow{point: p, variant: v}

	start := time.Now()
	if v == core.OMPTasking {
		pool := forkjoin.NewPool(forkjoin.Config{Workers: schedWorkers, Seed: schedSeed})
		opts.Pool = pool
		_, err := in.Run(ctx, v, opts)
		pool.Close()
		if err != nil {
			return row, err
		}
		row.wall = time.Since(start)
		fs := pool.Stats()
		row.steals, row.probes = fs.Steals, fs.FailedProbes
	} else {
		stats, err := in.Run(ctx, v, opts)
		if err != nil {
			return row, err
		}
		row.wall = time.Since(start)
		row.steals, row.probes, row.wakeups = stats.Steals, stats.FailedProbes, stats.Wakeups
		row.requeues = stats.Requeues
		row.puts = stats.TagsPut + stats.ItemsPut
		// The wake bill must be bounded by the dispatch count: the queue
		// signals at most one worker per push, where the seed broadcast to
		// all workers on every push.
		if stats.Wakeups > stats.StepsStarted+stats.InlineRuns {
			return row, fmt.Errorf("Wakeups %d exceeds dispatches (%d started + %d inline): targeted-signal claim violated",
				stats.Wakeups, stats.StepsStarted, stats.InlineRuns)
		}
	}
	if err := in.Verify(); err != nil {
		return row, err
	}
	rep := rec.Report(schedWorkers)
	row.util, row.tasks = rep.Utilization, rep.Tasks
	return row, nil
}

// WriteSched reports the dispatch-layer overhead counters of real runs of
// every registered benchmark across a problem-size × base-case-size sweep,
// one row per schedule: the fork-join pool and every CnC schedule on the
// work-stealing graph runtime. Each row's result is verified against the
// serial reference; for CnC rows the targeted-wakeup claim (Wakeups ≤
// dispatches, hence ≪ the seed's implied workers × puts broadcast bill,
// printed as `bcast~`) gates the exit status so `dpbench -exp sched` can
// run as a CI smoke job. This is the instrumented ground truth behind the
// paper's Fig. 4–9 overhead story: as the scheduler constant per task
// shrinks, the size at which fork-join overtakes data-flow moves outward.
func WriteSched(ctx context.Context, w io.Writer) error {
	points := []schedPoint{{256, 32}, {256, 64}, {512, 32}, {512, 64}}
	variants := []core.Variant{core.OMPTasking, core.NativeCnC, core.NonBlockingCnC, core.TunerCnC, core.ManualCnC}

	fmt.Fprintf(w, "# sched: dispatch-overhead sweep over all registered benchmarks, workers=%d (real runs, tracing kernel)\n", schedWorkers)
	fmt.Fprintf(w, "%6s %5s %5s %16s %10s %6s %7s %8s %10s %8s %8s %10s\n",
		"bench", "n", "base", "variant", "wall", "util", "tasks", "steals", "probes", "wakeups", "requeue", "bcast~")

	var failures []string
	for _, b := range bench.All() {
		for _, p := range points {
			for _, v := range variants {
				if err := ctx.Err(); err != nil {
					return err
				}
				row, err := runSched(ctx, b, p, v)
				if err != nil {
					failures = append(failures, fmt.Sprintf("%s n=%d base=%d %s: %v", b.Name(), p.n, p.base, v, err))
					continue
				}
				bcast := "-" // the seed's implied wake count: workers × puts
				if v != core.OMPTasking {
					bcast = fmt.Sprint(uint64(schedWorkers) * row.puts)
				}
				wake := "-"
				if v != core.OMPTasking {
					wake = fmt.Sprint(row.wakeups)
				}
				fmt.Fprintf(w, "%6s %5d %5d %16s %10s %5.1f%% %7d %8d %10d %8s %8d %10s\n",
					b.Name(), p.n, p.base, v, row.wall.Round(10*time.Microsecond), 100*row.util,
					row.tasks, row.steals, row.probes, wake, row.requeues, bcast)
			}
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(w, "FAIL:", f)
		}
		return fmt.Errorf("sched: %d run(s) failed", len(failures))
	}
	fmt.Fprintln(w, "\n// all rows verified against the serial reference; every CnC row held Wakeups <= dispatches (vs the seed's workers x puts broadcast bill, bcast~)")
	return nil
}
