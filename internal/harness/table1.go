package harness

import (
	"context"
	"fmt"
	"io"

	"dpflow/internal/bench"
	"dpflow/internal/cachesim"
	"dpflow/internal/core"
	"dpflow/internal/model"
)

// Table1Row is one row of the paper's Table I: the ratio of the analytical
// model's maximum estimated cache misses over the actual (simulated)
// misses, per cache level, for one base size.
type Table1Row struct {
	Base             int // base size at the experiment's scale
	PaperBase        int // corresponding base size at the paper's scale
	Estimated        float64
	ActualL2         uint64
	ActualL3         uint64
	L2Ratio          float64
	L3Ratio          float64
	PaperL2, PaperL3 float64 // the paper's reported ratios (0 if n/a)
}

// Table1Result is the reproduced Table I.
type Table1Result struct {
	N     int // traced problem size
	Scale int // linear scaling factor versus the paper's 8K run
	Rows  []Table1Row
}

// paperTable1 holds the published ratios for GE 8K×8K on SKYLAKE.
var paperTable1 = map[int][2]float64{
	64:   {107.61, 294.50},
	128:  {240.63, 660.02},
	256:  {38.38, 1637.20},
	512:  {7.97, 5793.74},
	1024: {6.13, 8247.60},
	2048: {5.96, 127.06},
}

// RunTable1 reproduces Table I. The paper traced GE at 8K×8K with PAPI on
// Skylake (L2 1MB, L3 32MB/core-share). A full 8K trace is ~7·10¹¹
// simulated accesses, so by default the experiment runs at 1/scale the
// linear size with cache capacities scaled by 1/scale² (and base sizes by
// 1/scale), which preserves the blocks-fit-capacity crossovers the table
// demonstrates; scale=1 runs the paper's exact geometry. L2 and L3 use
// hashed set indexing like the physical caches PAPI measured.
func RunTable1(scale int) (*Table1Result, error) {
	return RunTable1Context(context.Background(), scale)
}

// RunTable1Context is RunTable1 with cooperative cancellation: checked
// between rows and, because a single full-scale trace can run for minutes,
// inside each trace between base blocks.
func RunTable1Context(ctx context.Context, scale int) (*Table1Result, error) {
	if scale < 1 {
		scale = 1
	}
	const (
		paperN  = 8192
		paperL2 = 1 << 20
		paperL3 = 32 << 20
	)
	ge, err := bench.Lookup(core.GE)
	if err != nil {
		return nil, err
	}
	n := paperN / scale
	l1 := 32 << 10 / (scale * scale)
	if l1 < 2<<10 {
		l1 = 2 << 10 // keep L1 big enough to hold a few dozen lines
	}
	res := &Table1Result{N: n, Scale: scale}
	for _, paperBase := range []int{64, 128, 256, 512, 1024, 2048} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		base := paperBase / scale
		if base < 2 {
			continue
		}
		h := cachesim.New(
			cachesim.LevelConfig{Name: "L1", SizeBytes: l1, LineBytes: 64, Ways: 8},
			cachesim.LevelConfig{Name: "L2", SizeBytes: paperL2 / (scale * scale), LineBytes: 64, Ways: 16, Hashed: true},
			cachesim.LevelConfig{Name: "L3", SizeBytes: paperL3 / (scale * scale), LineBytes: 64, Ways: 16, Hashed: true},
		)
		stats, err := cachesim.TraceRDPGEContext(ctx, h, n, base)
		if err != nil {
			return nil, err
		}
		est := model.EstimatedMaxMisses(ge, n, base, 64)
		row := Table1Row{
			Base:      base,
			PaperBase: paperBase,
			Estimated: est,
			ActualL2:  stats[1].Misses,
			ActualL3:  stats[2].Misses,
		}
		if row.ActualL2 > 0 {
			row.L2Ratio = est / float64(row.ActualL2)
		}
		if row.ActualL3 > 0 {
			row.L3Ratio = est / float64(row.ActualL3)
		}
		if p, ok := paperTable1[paperBase]; ok {
			row.PaperL2, row.PaperL3 = p[0], p[1]
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// WriteTable renders the reproduced Table I next to the paper's values.
func (t *Table1Result) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "# table1: estimated-max/actual cache-miss ratio, R-DP GE %dx%d (1/%d of the paper's 8K, caches scaled 1/%d)\n",
		t.N, t.N, t.Scale, t.Scale*t.Scale)
	fmt.Fprintf(w, "%10s %10s %14s %14s %10s %10s %12s %12s\n",
		"base", "paperBase", "actualL2", "actualL3", "L2 ratio", "L3 ratio", "paper L2", "paper L3")
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%10d %10d %14d %14d %10.2f %10.2f %12.2f %12.2f\n",
			r.Base, r.PaperBase, r.ActualL2, r.ActualL3, r.L2Ratio, r.L3Ratio, r.PaperL2, r.PaperL3)
	}
}
