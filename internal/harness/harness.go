// Package harness defines and runs the paper's experiments: one entry per
// figure (Figures 4–9) and table (Table I), plus the textual claims of
// §IV-B (crossover, SW wavefront, best block size). Each experiment names
// its workload, parameter sweep and series, runs through the DAG builder +
// cost model + discrete-event simulator pipeline, and renders the same
// rows/series the paper reports.
package harness

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"dpflow/internal/bench"
	"dpflow/internal/core"
	"dpflow/internal/dag"
	"dpflow/internal/gep"
	"dpflow/internal/machine"
	"dpflow/internal/model"
	"dpflow/internal/simsched"
)

// Experiment is one figure-style sweep.
type Experiment struct {
	ID      string
	Title   string
	Bench   core.BenchID
	Machine func() *machine.Machine
	Ns      []int
	// BasesFor returns the base-size x-axis of the panel for problem size n.
	BasesFor func(n int) []int
	// Estimated adds the paper's analytical-model series (GE figures).
	Estimated bool
}

// Options controls a run.
type Options struct {
	// Scale divides every problem size by 2^Scale (tile counts shrink
	// accordingly): Scale 2 turns the 16K panel into a 4K-shaped one.
	// Scale 0 reproduces the paper's sizes exactly.
	Scale int
	// MaxTiles skips sweep points whose tile count exceeds the limit
	// (memory/time guard); 0 means no limit.
	MaxTiles int
	// Progress, when non-nil, receives one line per completed panel.
	Progress io.Writer
}

// Panel is one sub-plot: a fixed problem size with one series per variant.
type Panel struct {
	N      int
	Bases  []int
	Series []core.Series
}

// FigureResult is a completed experiment.
type FigureResult struct {
	Exp    Experiment
	Panels []Panel
}

// Figures returns the six figure experiments of the paper's evaluation.
func Figures() []Experiment {
	geBases := func(n int) []int {
		switch {
		case n <= 2048:
			return []int{8, 16, 32, 64, 128, 256, 512}
		case n <= 4096:
			return []int{16, 32, 64, 128, 256, 512, 1024}
		default:
			return []int{64, 128, 256, 512, 1024, 2048}
		}
	}
	swfwBases := func(n int) []int {
		if n <= 4096 {
			return []int{64, 128, 256, 512}
		}
		return []int{64, 128, 256, 512, 1024, 2048}
	}
	ns := []int{2048, 4096, 8192, 16384}
	return []Experiment{
		{ID: "fig4", Title: "Execution time of Gaussian Elimination on EPYC-64",
			Bench: core.GE, Machine: machine.EPYC64, Ns: ns, BasesFor: geBases, Estimated: true},
		{ID: "fig5", Title: "Execution time of Gaussian Elimination on SKYLAKE-192",
			Bench: core.GE, Machine: machine.SKYLAKE192, Ns: ns, BasesFor: geBases, Estimated: true},
		{ID: "fig6", Title: "Execution time of Smith-Waterman on EPYC-64",
			Bench: core.SW, Machine: machine.EPYC64, Ns: ns, BasesFor: swfwBases},
		{ID: "fig7", Title: "Execution time of Smith-Waterman on SKYLAKE-192",
			Bench: core.SW, Machine: machine.SKYLAKE192, Ns: ns, BasesFor: swfwBases},
		{ID: "fig8", Title: "Execution time of Floyd-Warshall on EPYC-64",
			Bench: core.FW, Machine: machine.EPYC64, Ns: ns, BasesFor: swfwBases},
		{ID: "fig9", Title: "Execution time of Floyd-Warshall on SKYLAKE-192",
			Bench: core.FW, Machine: machine.SKYLAKE192, Ns: ns, BasesFor: swfwBases},
		// Beyond the paper: Cholesky shares GE's triangular kernel geometry,
		// so it reuses the GE base-size axis and analytical-model series.
		{ID: "figch", Title: "Execution time of Cholesky factorization on EPYC-64",
			Bench: core.CH, Machine: machine.EPYC64, Ns: ns, BasesFor: geBases, Estimated: true},
	}
}

// FigureByID returns the figure experiment with the given id.
func FigureByID(id string) (Experiment, bool) {
	for _, e := range Figures() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// graphFor builds (or fetches from cache) the task graph of one sweep
// point. Data-flow graphs are shared across the three CnC variants.
func graphFor(cache map[string]dag.Graph, b bench.Benchmark, tiles int, m core.Model) dag.Graph {
	key := fmt.Sprintf("%d/%d/%d", b.ID(), tiles, m)
	if g, ok := cache[key]; ok {
		return g
	}
	var g dag.Graph
	if m == core.ForkJoin {
		g = b.ForkJoin(tiles)
	} else {
		g = b.Dataflow(tiles)
	}
	cache[key] = g
	return g
}

// SimulatePoint runs one (machine, bench, n, base, variant) point through
// the model + simulator and returns the predicted execution time. Unknown
// benchmark ids report bench.ErrUnknownBenchmark instead of defaulting to a
// GE-shaped sweep.
func SimulatePoint(mach *machine.Machine, id core.BenchID, n, base int, v core.Variant) (float64, error) {
	b, err := bench.Lookup(id)
	if err != nil {
		return 0, err
	}
	cache := map[string]dag.Graph{}
	return simulatePoint(cache, mach, b, n, base, v)
}

func simulatePoint(cache map[string]dag.Graph, mach *machine.Machine, b bench.Benchmark, n, base int, v core.Variant) (float64, error) {
	tiles := n / gep.BaseSize(n, base)
	df := graphFor(cache, b, tiles, core.DataFlow)
	g := df
	if v == core.OMPTasking {
		g = graphFor(cache, b, tiles, core.ForkJoin)
	}
	costs := model.CostsFor(mach, b, n, base, v, df.Len())
	r, err := simsched.Simulate(g, mach.Cores, costs)
	if err != nil {
		return 0, err
	}
	return r.Makespan, nil
}

// Run executes the experiment.
func (e Experiment) Run(opts Options) (*FigureResult, error) {
	return e.RunContext(context.Background(), opts)
}

// RunContext is Run with cooperative cancellation: the sweep checks ctx
// between points, so a deadline or interrupt abandons the remaining points
// and returns ctx.Err() instead of a partial result.
func (e Experiment) RunContext(ctx context.Context, opts Options) (*FigureResult, error) {
	mach := e.Machine()
	bm, err := bench.Lookup(e.Bench)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", e.ID, err)
	}
	res := &FigureResult{Exp: e}
	for _, fullN := range e.Ns {
		n := fullN >> opts.Scale
		if n < 256 {
			continue
		}
		panel := Panel{N: n}
		labels := []string{}
		for _, v := range core.ParallelVariants {
			labels = append(labels, v.String())
		}
		if e.Estimated {
			labels = append(labels, "Estimated")
		}
		series := make([]core.Series, len(labels))
		for i, l := range labels {
			series[i] = core.Series{Label: l}
		}
		cache := map[string]dag.Graph{}
		for _, base := range e.BasesFor(fullN) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			b := base >> opts.Scale
			if b < 1 || b > n/2 {
				continue
			}
			tiles := n / gep.BaseSize(n, b)
			if opts.MaxTiles > 0 && tiles > opts.MaxTiles {
				continue
			}
			panel.Bases = append(panel.Bases, b)
			for i, v := range core.ParallelVariants {
				secs, err := simulatePoint(cache, mach, bm, n, b, v)
				if err != nil {
					return nil, fmt.Errorf("%s n=%d base=%d %v: %w", e.ID, n, b, v, err)
				}
				series[i].Points = append(series[i].Points, core.Point{
					Bench: e.Bench, Machine: mach.Name, Variant: v.String(),
					N: n, Base: b, Seconds: secs,
				})
			}
			if e.Estimated {
				series[len(series)-1].Points = append(series[len(series)-1].Points, core.Point{
					Bench: e.Bench, Machine: mach.Name, Variant: "Estimated",
					N: n, Base: b, Seconds: model.EstimatedTime(mach, bm, n, b),
				})
			}
		}
		panel.Series = series
		res.Panels = append(res.Panels, panel)
		if opts.Progress != nil {
			fmt.Fprintf(opts.Progress, "%s: panel n=%d done (%d points)\n", e.ID, n, len(panel.Bases))
		}
	}
	return res, nil
}

// WriteTable renders the result as aligned text tables, one per panel —
// the same rows the paper's figures plot.
func (r *FigureResult) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "# %s: %s\n", r.Exp.ID, r.Exp.Title)
	for _, p := range r.Panels {
		fmt.Fprintf(w, "\n## %s matrix (%s, %s)\n", sizeLabel(p.N), r.Exp.Bench, r.Exp.Machine().Name)
		fmt.Fprintf(w, "%8s", "base")
		for _, s := range p.Series {
			fmt.Fprintf(w, " %14s", s.Label)
		}
		fmt.Fprintln(w)
		for i, base := range p.Bases {
			fmt.Fprintf(w, "%8d", base)
			for _, s := range p.Series {
				if i < len(s.Points) {
					fmt.Fprintf(w, " %14.4f", s.Points[i].Seconds)
				} else {
					fmt.Fprintf(w, " %14s", "-")
				}
			}
			fmt.Fprintln(w)
		}
	}
}

// WriteCSV renders the result as CSV rows.
func (r *FigureResult) WriteCSV(w io.Writer) {
	fmt.Fprintln(w, "experiment,machine,bench,n,base,variant,seconds")
	for _, p := range r.Panels {
		for _, s := range p.Series {
			for _, pt := range s.Points {
				fmt.Fprintf(w, "%s,%s,%s,%d,%d,%s,%.6f\n",
					r.Exp.ID, pt.Machine, pt.Bench, pt.N, pt.Base, pt.Variant, pt.Seconds)
			}
		}
	}
}

// Best returns, per panel, the winning variant and its (base, time).
func (r *FigureResult) Best() []string {
	var out []string
	for _, p := range r.Panels {
		bestLabel, bestBase, bestT := "", 0, 0.0
		for _, s := range p.Series {
			if s.Label == "Estimated" {
				continue
			}
			for i, pt := range s.Points {
				if bestLabel == "" || pt.Seconds < bestT {
					bestLabel, bestBase, bestT = s.Label, p.Bases[i], pt.Seconds
				}
			}
		}
		out = append(out, fmt.Sprintf("n=%d: %s wins at base %d (%.3fs)", p.N, bestLabel, bestBase, bestT))
	}
	return out
}

func sizeLabel(n int) string {
	if n%1024 == 0 {
		return fmt.Sprintf("%dK", n/1024)
	}
	return fmt.Sprint(n)
}

// IDs returns all known experiment ids (figures plus the derived claims
// and the table), sorted.
func IDs() []string {
	ids := []string{"table1", "crossover", "swspan", "bestblock", "rway", "computeon", "scaling", "cluster", "swwave", "memory", "sched", "dist", "perf", "perfdiff"}
	for _, e := range Figures() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}

// ValidIDList renders the ids for usage messages.
func ValidIDList() string { return strings.Join(IDs(), ", ") }
