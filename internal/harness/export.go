package harness

import (
	"encoding/json"
	"io"
)

// jsonFigure is the export schema of a figure result.
type jsonFigure struct {
	Experiment string      `json:"experiment"`
	Title      string      `json:"title"`
	Bench      string      `json:"bench"`
	Machine    string      `json:"machine"`
	Panels     []jsonPanel `json:"panels"`
}

type jsonPanel struct {
	N      int          `json:"n"`
	Bases  []int        `json:"bases"`
	Series []jsonSeries `json:"series"`
}

type jsonSeries struct {
	Label   string    `json:"label"`
	Seconds []float64 `json:"seconds"`
}

// WriteJSON renders the result as one JSON document, suitable for external
// plotting tools.
func (r *FigureResult) WriteJSON(w io.Writer) error {
	out := jsonFigure{
		Experiment: r.Exp.ID,
		Title:      r.Exp.Title,
		Bench:      r.Exp.Bench.String(),
		Machine:    r.Exp.Machine().Name,
	}
	for _, p := range r.Panels {
		jp := jsonPanel{N: p.N, Bases: p.Bases}
		for _, s := range p.Series {
			js := jsonSeries{Label: s.Label}
			for _, pt := range s.Points {
				js.Seconds = append(js.Seconds, pt.Seconds)
			}
			jp.Series = append(jp.Series, js)
		}
		out.Panels = append(out.Panels, jp)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
