package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"dpflow/internal/bench"
	"dpflow/internal/cnc"
	"dpflow/internal/core"
	"dpflow/internal/determinacy"
	"dpflow/internal/forkjoin"
)

// Perf-baseline geometry: one mid-size problem per benchmark, large enough
// that kernel time dominates flag parsing and pool startup, small enough
// that the full matrix (4 benchmarks × 5 variants × perfReps) stays inside
// a CI smoke budget. The committed BENCH_seed.json snapshot is generated
// from exactly this configuration, so regressions diff like-for-like.
const (
	perfN       = 512
	perfBase    = 64
	perfWorkers = 8
	perfSeed    = 3
	perfReps    = 3
)

// perfVariants is the measured execution matrix: the serial reference, the
// fork-join model, and the three CnC schedules.
var perfVariants = []core.Variant{
	core.SerialRDP, core.OMPTasking, core.NativeCnC, core.TunerCnC, core.ManualCnC,
}

// PerfDetector is the detector-activity half of a race-checked perf row:
// evidence of how much checking the run actually did, alongside the firing
// counts that must stay zero.
type PerfDetector struct {
	// Fork-join rows (determinacy.DetectorStats):
	Tasks    uint64 `json:"tasks,omitempty"`
	Accesses uint64 `json:"accesses,omitempty"`
	Queries  uint64 `json:"queries,omitempty"`
	Cells    int    `json:"cells,omitempty"`
	Races    int    `json:"races"`
	// CnC rows (determinacy.DisciplineStats):
	Puts       uint64 `json:"puts,omitempty"`
	Gets       uint64 `json:"gets,omitempty"`
	Releases   uint64 `json:"releases,omitempty"`
	Violations int    `json:"violations"`
}

// PerfRow is one measured (benchmark, variant) cell.
type PerfRow struct {
	Bench    string        `json:"bench"`
	Variant  string        `json:"variant"`
	Seconds  float64       `json:"seconds"` // best of perfReps verified runs
	Detector *PerfDetector `json:"detector,omitempty"`
}

// PerfReport is the JSON schema of `dpbench -exp perf -json`, committed as
// BENCH_seed.json and uploaded fresh by CI for regression diffing.
type PerfReport struct {
	Schema      string    `json:"schema"`
	N           int       `json:"n"`
	Base        int       `json:"base"`
	Workers     int       `json:"workers"`
	Seed        int64     `json:"seed"`
	Reps        int       `json:"reps"`
	RaceChecked bool      `json:"raceChecked"`
	GoMaxProcs  int       `json:"gomaxprocs"`
	Rows        []PerfRow `json:"rows"`
}

// runPerfOnce executes one verified run of (b, v) and returns its wall time
// plus, when raceDetect is set, the detector snapshot. Detection failures
// (a race or discipline violation on a production schedule) are errors.
func runPerfOnce(ctx context.Context, b bench.Benchmark, v core.Variant, raceDetect bool) (time.Duration, *PerfDetector, error) {
	in, err := b.NewInstance(perfN, perfBase, perfSeed)
	if err != nil {
		return 0, nil, err
	}
	opts := bench.RunOpts{Workers: perfWorkers}

	var det *determinacy.Detector
	var disc *determinacy.DisciplineChecker
	var pool *forkjoin.Pool
	if v == core.OMPTasking {
		pool = forkjoin.NewPool(forkjoin.Config{Workers: perfWorkers, Seed: perfSeed})
		defer pool.Close()
		if raceDetect {
			det = determinacy.NewDetector()
			pool.WithRaceDetection(det)
		}
		opts.Pool = pool
	} else if raceDetect && v.IsCnC() {
		opts.Tune = func(g *cnc.Graph) {
			disc = determinacy.NewDisciplineChecker()
			g.WithDisciplineCheck(disc)
		}
	}

	start := time.Now()
	if _, err := in.Run(ctx, v, opts); err != nil {
		return 0, nil, err
	}
	wall := time.Since(start)
	if err := in.Verify(); err != nil {
		return 0, nil, err
	}

	var pd *PerfDetector
	if det != nil {
		if err := det.Err(); err != nil {
			return 0, nil, fmt.Errorf("race detected on production schedule: %w", err)
		}
		st := det.Stats()
		pd = &PerfDetector{Tasks: st.Tasks, Accesses: st.Accesses, Queries: st.Queries, Cells: st.Cells, Races: st.Races}
	}
	if disc != nil {
		if err := disc.Err(); err != nil {
			return 0, nil, fmt.Errorf("discipline violation on production schedule: %w", err)
		}
		st := disc.Stats()
		pd = &PerfDetector{Puts: st.Puts, Gets: st.Gets, Releases: st.Releases, Violations: st.Violations}
	}
	return wall, pd, nil
}

// RunPerf measures the perf-baseline matrix: every registered benchmark ×
// perfVariants, best-of-perfReps verified wall times. With raceDetect the
// fork-join rows run under determinacy-race detection and the CnC rows
// under discipline checking, the per-row detector stats are included, and
// any detection fails the sweep.
func RunPerf(ctx context.Context, raceDetect bool) (*PerfReport, error) {
	rep := &PerfReport{
		Schema: "dpflow-perf/v1", N: perfN, Base: perfBase, Workers: perfWorkers,
		Seed: perfSeed, Reps: perfReps, RaceChecked: raceDetect, GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, b := range bench.All() {
		for _, v := range perfVariants {
			row := PerfRow{Bench: b.Name(), Variant: v.String()}
			for rep := 0; rep < perfReps; rep++ {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				wall, pd, err := runPerfOnce(ctx, b, v, raceDetect)
				if err != nil {
					return nil, fmt.Errorf("perf: %s %s: %w", b.Name(), v, err)
				}
				if s := wall.Seconds(); row.Seconds == 0 || s < row.Seconds {
					row.Seconds = s
				}
				row.Detector = pd // stats are schedule-stable; keep the last
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	return rep, nil
}

// WritePerf runs the perf baseline and renders it as JSON (the committed
// snapshot format) or an aligned table.
func WritePerf(ctx context.Context, w io.Writer, jsonOut, raceDetect bool) error {
	rep, err := RunPerf(ctx, raceDetect)
	if err != nil {
		return err
	}
	if jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Fprintf(w, "# perf: baseline matrix n=%d base=%d workers=%d reps=%d raceDetect=%v\n",
		rep.N, rep.Base, rep.Workers, rep.Reps, rep.RaceChecked)
	fmt.Fprintf(w, "%8s %16s %12s %12s\n", "bench", "variant", "seconds", "detector")
	for _, r := range rep.Rows {
		detail := "-"
		if r.Detector != nil {
			if r.Detector.Accesses > 0 {
				detail = fmt.Sprintf("acc=%d races=%d", r.Detector.Accesses, r.Detector.Races)
			} else {
				detail = fmt.Sprintf("puts=%d viol=%d", r.Detector.Puts, r.Detector.Violations)
			}
		}
		fmt.Fprintf(w, "%8s %16s %12.6f %12s\n", r.Bench, r.Variant, r.Seconds, detail)
	}
	return nil
}
