package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"dpflow/internal/bench"
	"dpflow/internal/cnc"
	"dpflow/internal/core"
	"dpflow/internal/determinacy"
	"dpflow/internal/exec"
	"dpflow/internal/forkjoin"
)

// Perf-baseline geometry: one mid-size problem per benchmark, measured at
// two base-case sizes — the left arm of the paper's U-curve (base 16, where
// per-task scheduling overhead dominates) and near its bottom (base 64,
// where kernel time dominates). Large enough that kernel time dominates
// flag parsing and pool startup, small enough that the full matrix
// (4 benchmarks × 5 variants × 2 bases × perfReps) stays inside a CI smoke
// budget. The committed BENCH_seed.json snapshot is generated from exactly
// this configuration, so regressions diff like-for-like.
const (
	perfN       = 512
	perfWorkers = 8
	perfSeed    = 3
	perfReps    = 3
)

// perfBases are the measured base-case sizes: 16 exercises the scheduler
// (the U-curve's left arm), 64 exercises the kernels (near the bottom).
var perfBases = []int{16, 64}

// perfVariants is the measured execution matrix: the serial reference, the
// fork-join model, and the three CnC schedules.
var perfVariants = []core.Variant{
	core.SerialRDP, core.OMPTasking, core.NativeCnC, core.TunerCnC, core.ManualCnC,
}

// PerfDetector is the detector-activity half of a race-checked perf row:
// evidence of how much checking the run actually did, alongside the firing
// counts that must stay zero.
type PerfDetector struct {
	// Fork-join rows (determinacy.DetectorStats):
	Tasks    uint64 `json:"tasks,omitempty"`
	Accesses uint64 `json:"accesses,omitempty"`
	Queries  uint64 `json:"queries,omitempty"`
	Cells    int    `json:"cells,omitempty"`
	Races    int    `json:"races"`
	// CnC rows (determinacy.DisciplineStats):
	Puts       uint64 `json:"puts,omitempty"`
	Gets       uint64 `json:"gets,omitempty"`
	Releases   uint64 `json:"releases,omitempty"`
	Violations int    `json:"violations"`
}

// PerfRow is one measured (benchmark, variant, base) cell.
type PerfRow struct {
	Bench    string        `json:"bench"`
	Variant  string        `json:"variant"`
	Base     int           `json:"base"`
	Seconds  float64       `json:"seconds"` // best of perfReps verified runs
	Detector *PerfDetector `json:"detector,omitempty"`
}

// PerfReport is the JSON schema of `dpbench -exp perf -json`, committed as
// BENCH_seed.json and appended per-PR (BENCH_pr7.json, ...) so the perf
// trajectory of the repo is diffable commit to commit.
//
// Schema history: dpflow-perf/v1 measured a single base (top-level "base")
// at whatever GOMAXPROCS the host happened to have; v2 measures a matrix of
// bases (per-row "base") with GOMAXPROCS pinned to the worker count for the
// duration of the sweep, so the recorded gomaxprocs always equals workers
// and two v2 reports with equal headers are directly comparable.
type PerfReport struct {
	Schema      string    `json:"schema"`
	N           int       `json:"n"`
	Bases       []int     `json:"bases"`
	Workers     int       `json:"workers"`
	Seed        int64     `json:"seed"`
	Reps        int       `json:"reps"`
	RaceChecked bool      `json:"raceChecked"`
	GoMaxProcs  int       `json:"gomaxprocs"`
	Rows        []PerfRow `json:"rows"`
}

// PerfSchema is the current perf-report schema identifier.
const PerfSchema = "dpflow-perf/v2"

// runPerfOnce executes one verified run of (b, v, base) and returns its
// wall time plus, when raceDetect is set, the detector snapshot. Detection
// failures (a race or discipline violation on a production schedule) are
// errors.
func runPerfOnce(ctx context.Context, ex *exec.Executor, b bench.Benchmark, v core.Variant, base int, raceDetect bool) (time.Duration, *PerfDetector, error) {
	in, err := b.NewInstance(perfN, base, perfSeed)
	if err != nil {
		return 0, nil, err
	}
	opts := bench.RunOpts{Workers: perfWorkers}

	var det *determinacy.Detector
	var disc *determinacy.DisciplineChecker
	var pool *forkjoin.Pool
	if v == core.OMPTasking {
		pool = forkjoin.NewPool(forkjoin.Config{Workers: perfWorkers, Seed: perfSeed, Executor: ex})
		defer pool.Close()
		if raceDetect {
			det = determinacy.NewDetector()
			pool.WithRaceDetection(det)
		}
		opts.Pool = pool
	} else if v.IsCnC() {
		opts.Tune = func(g *cnc.Graph) {
			g.WithExecutor(ex)
			if raceDetect {
				disc = determinacy.NewDisciplineChecker()
				g.WithDisciplineCheck(disc)
			}
		}
	}

	start := time.Now()
	if _, err := in.Run(ctx, v, opts); err != nil {
		return 0, nil, err
	}
	wall := time.Since(start)
	if err := in.Verify(); err != nil {
		return 0, nil, err
	}

	var pd *PerfDetector
	if det != nil {
		if err := det.Err(); err != nil {
			return 0, nil, fmt.Errorf("race detected on production schedule: %w", err)
		}
		st := det.Stats()
		pd = &PerfDetector{Tasks: st.Tasks, Accesses: st.Accesses, Queries: st.Queries, Cells: st.Cells, Races: st.Races}
	}
	if disc != nil {
		if err := disc.Err(); err != nil {
			return 0, nil, fmt.Errorf("discipline violation on production schedule: %w", err)
		}
		st := disc.Stats()
		pd = &PerfDetector{Puts: st.Puts, Gets: st.Gets, Releases: st.Releases, Violations: st.Violations}
	}
	return wall, pd, nil
}

// RunPerf measures the perf-baseline matrix: every registered benchmark ×
// perfVariants × perfBases, best-of-perfReps verified wall times. GOMAXPROCS
// is pinned to perfWorkers for the duration of the sweep (and restored
// after), so the recorded parallelism always matches the configured worker
// count regardless of host shape — the comparability fix for the v1 seed,
// which was recorded at GOMAXPROCS=1 with workers=8. With raceDetect the
// fork-join rows run under determinacy-race detection and the CnC rows
// under discipline checking, the per-row detector stats are included, and
// any detection fails the sweep.
func RunPerf(ctx context.Context, raceDetect bool) (*PerfReport, error) {
	prev := runtime.GOMAXPROCS(perfWorkers)
	defer runtime.GOMAXPROCS(prev)

	// A dedicated executor pinned to perfWorkers physical workers, not the
	// process-wide Default (which is sized to the host's original
	// GOMAXPROCS): perf rows must measure the configured parallelism
	// regardless of host shape, exactly like the GOMAXPROCS pin above.
	ex := exec.New(perfWorkers)
	defer ex.Close()

	rep := &PerfReport{
		Schema: PerfSchema, N: perfN, Bases: append([]int(nil), perfBases...),
		Workers: perfWorkers, Seed: perfSeed, Reps: perfReps,
		RaceChecked: raceDetect, GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, b := range bench.All() {
		for _, v := range perfVariants {
			for _, base := range perfBases {
				row := PerfRow{Bench: b.Name(), Variant: v.String(), Base: base}
				for r := 0; r < perfReps; r++ {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
					wall, pd, err := runPerfOnce(ctx, ex, b, v, base, raceDetect)
					if err != nil {
						return nil, fmt.Errorf("perf: %s %s base=%d: %w", b.Name(), v, base, err)
					}
					if s := wall.Seconds(); row.Seconds == 0 || s < row.Seconds {
						row.Seconds = s
					}
					row.Detector = pd // stats are schedule-stable; keep the last
				}
				rep.Rows = append(rep.Rows, row)
			}
		}
	}
	return rep, nil
}

// WritePerf runs the perf baseline and renders it as JSON (the committed
// snapshot format) or an aligned table.
func WritePerf(ctx context.Context, w io.Writer, jsonOut, raceDetect bool) error {
	rep, err := RunPerf(ctx, raceDetect)
	if err != nil {
		return err
	}
	if jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Fprintf(w, "# perf: baseline matrix n=%d bases=%v workers=%d reps=%d raceDetect=%v\n",
		rep.N, rep.Bases, rep.Workers, rep.Reps, rep.RaceChecked)
	fmt.Fprintf(w, "%8s %16s %6s %12s %12s\n", "bench", "variant", "base", "seconds", "detector")
	for _, r := range rep.Rows {
		detail := "-"
		if r.Detector != nil {
			if r.Detector.Accesses > 0 {
				detail = fmt.Sprintf("acc=%d races=%d", r.Detector.Accesses, r.Detector.Races)
			} else {
				detail = fmt.Sprintf("puts=%d viol=%d", r.Detector.Puts, r.Detector.Violations)
			}
		}
		fmt.Fprintf(w, "%8s %16s %6d %12.6f %12s\n", r.Bench, r.Variant, r.Base, r.Seconds, detail)
	}
	return nil
}

// LoadPerfReport reads a committed perf snapshot (BENCH_*.json). Reports
// with a schema other than PerfSchema are refused: v1 snapshots were
// recorded at an unpinned GOMAXPROCS and a single base, so no like-for-like
// comparison against them is possible.
func LoadPerfReport(path string) (*PerfReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep PerfReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != PerfSchema {
		return nil, fmt.Errorf("%s: schema %q is not %q; cross-schema perf comparisons are refused (regenerate the snapshot with `dpbench -exp perf -json`)", path, rep.Schema, PerfSchema)
	}
	return &rep, nil
}

// PerfDelta is one compared (benchmark, variant, base) cell.
type PerfDelta struct {
	Bench    string
	Variant  string
	Base     int
	Baseline float64 // seconds
	Current  float64 // seconds
	Ratio    float64 // Current / Baseline; <1 is an improvement
}

func (d PerfDelta) key() string {
	return fmt.Sprintf("%s/%s/b%d", d.Bench, d.Variant, d.Base)
}

// ComparePerf diffs a current perf report against a baseline cell by cell.
// It refuses cross-config comparisons: both reports must agree on schema,
// problem size, worker count, pinned GOMAXPROCS, seed, and rep count, so a
// delta can only ever mean the code changed, not the measurement. Returns
// every cell present in both reports (cells unique to one side are an
// error: a benchmark or base silently disappearing from the matrix must
// not pass as "no regression").
func ComparePerf(baseline, current *PerfReport) ([]PerfDelta, error) {
	type cfg struct {
		schema  string
		n       int
		workers int
		gomax   int
		seed    int64
		reps    int
	}
	bc := cfg{baseline.Schema, baseline.N, baseline.Workers, baseline.GoMaxProcs, baseline.Seed, baseline.Reps}
	cc := cfg{current.Schema, current.N, current.Workers, current.GoMaxProcs, current.Seed, current.Reps}
	if bc != cc {
		return nil, fmt.Errorf("perf configs differ (baseline %+v vs current %+v): cross-config comparisons are refused", bc, cc)
	}

	type cell struct {
		bench, variant string
		base           int
	}
	base := make(map[cell]float64, len(baseline.Rows))
	for _, r := range baseline.Rows {
		base[cell{r.Bench, r.Variant, r.Base}] = r.Seconds
	}
	var deltas []PerfDelta
	seen := make(map[cell]bool, len(current.Rows))
	for _, r := range current.Rows {
		c := cell{r.Bench, r.Variant, r.Base}
		seen[c] = true
		bs, ok := base[c]
		if !ok {
			return nil, fmt.Errorf("cell %s/%s/b%d present in current but missing from baseline", r.Bench, r.Variant, r.Base)
		}
		deltas = append(deltas, PerfDelta{
			Bench: r.Bench, Variant: r.Variant, Base: r.Base,
			Baseline: bs, Current: r.Seconds, Ratio: r.Seconds / bs,
		})
	}
	for c := range base {
		if !seen[c] {
			return nil, fmt.Errorf("cell %s/%s/b%d present in baseline but missing from current", c.bench, c.variant, c.base)
		}
	}
	return deltas, nil
}

// WritePerfDiff loads the baseline snapshot, obtains a current report
// (loaded from currentPath when given, measured fresh otherwise), renders
// the per-cell deltas, and returns an error if any cell regressed by more
// than tol (e.g. 0.10 = fail on >10% slowdown). This is the CI
// perf-trajectory gate.
func WritePerfDiff(ctx context.Context, w io.Writer, baselinePath, currentPath string, tol float64) error {
	baseline, err := LoadPerfReport(baselinePath)
	if err != nil {
		return err
	}
	var current *PerfReport
	if currentPath != "" {
		if current, err = LoadPerfReport(currentPath); err != nil {
			return err
		}
	} else if current, err = RunPerf(ctx, false); err != nil {
		return err
	}
	deltas, err := ComparePerf(baseline, current)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "# perfdiff: %s vs current (tol %.0f%%)\n", baselinePath, tol*100)
	fmt.Fprintf(w, "%8s %16s %6s %12s %12s %8s\n", "bench", "variant", "base", "baseline", "current", "ratio")
	var regressed []PerfDelta
	for _, d := range deltas {
		mark := ""
		if d.Ratio > 1+tol {
			mark = "  REGRESSED"
			regressed = append(regressed, d)
		}
		fmt.Fprintf(w, "%8s %16s %6d %12.6f %12.6f %8.3f%s\n",
			d.Bench, d.Variant, d.Base, d.Baseline, d.Current, d.Ratio, mark)
	}
	if len(regressed) > 0 {
		msg := fmt.Sprintf("%d cell(s) regressed by more than %.0f%%:", len(regressed), tol*100)
		for _, d := range regressed {
			msg += fmt.Sprintf(" %s(%.1f%%)", d.key(), (d.Ratio-1)*100)
		}
		return fmt.Errorf("%s", msg)
	}
	return nil
}
