package harness

import (
	"context"
	"strings"
	"testing"
)

// TestWriteMemory runs the bounded-memory claims report end to end: every
// row must come out leak-free, no claim may fail (WriteMemory returns an
// error when one does), and every registered benchmark must appear in both
// modes.
func TestWriteMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("memory report runs 24 CnC graphs")
	}
	var sb strings.Builder
	if err := WriteMemory(context.Background(), &sb); err != nil {
		t.Fatalf("WriteMemory: %v\n%s", err, sb.String())
	}
	out := sb.String()
	for _, want := range []string{"# memory", "GE", "FW", "SW", "CH", "unbounded", "bounded", "leak-free"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	for _, bad := range []string{"LEAK", "OVER-LIMIT", "FAIL"} {
		if strings.Contains(out, bad) {
			t.Fatalf("output contains %q:\n%s", bad, out)
		}
	}
}
