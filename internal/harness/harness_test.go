package harness

import (
	"context"
	"errors"
	"strings"
	"testing"

	"dpflow/internal/bench"
	"dpflow/internal/core"
	"dpflow/internal/machine"
)

func TestFiguresRegistry(t *testing.T) {
	figs := Figures()
	if len(figs) != 7 {
		t.Fatalf("%d figures, want 7 (fig4-fig9 + figch)", len(figs))
	}
	seen := map[string]bool{}
	for _, f := range figs {
		if seen[f.ID] {
			t.Fatalf("duplicate id %s", f.ID)
		}
		seen[f.ID] = true
		if f.Machine == nil || f.BasesFor == nil || len(f.Ns) == 0 {
			t.Fatalf("%s incomplete", f.ID)
		}
	}
	if _, ok := FigureByID("fig4"); !ok {
		t.Fatal("fig4 missing")
	}
	if ch, ok := FigureByID("figch"); !ok || ch.Bench != core.CH || !ch.Estimated {
		t.Fatalf("figch missing or misconfigured: %+v ok=%v", ch, ok)
	}
	if _, ok := FigureByID("nope"); ok {
		t.Fatal("bogus id found")
	}
	if !strings.Contains(ValidIDList(), "table1") {
		t.Fatal("id list missing table1")
	}
}

// A scaled-down fig4 run must produce complete panels with one series per
// variant plus Estimated, every series the same length as the base axis.
func TestRunFig4Scaled(t *testing.T) {
	exp, _ := FigureByID("fig4")
	res, err := exp.Run(Options{Scale: 3, MaxTiles: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Panels) == 0 {
		t.Fatal("no panels")
	}
	for _, p := range res.Panels {
		if len(p.Series) != len(core.ParallelVariants)+1 {
			t.Fatalf("n=%d: %d series", p.N, len(p.Series))
		}
		for _, s := range p.Series {
			if len(s.Points) != len(p.Bases) {
				t.Fatalf("n=%d series %s: %d points for %d bases", p.N, s.Label, len(s.Points), len(p.Bases))
			}
			for _, pt := range s.Points {
				if pt.Seconds <= 0 {
					t.Fatalf("non-positive time %v at %+v", pt.Seconds, pt)
				}
			}
		}
	}
	var tbl, csv strings.Builder
	res.WriteTable(&tbl)
	if !strings.Contains(tbl.String(), "Estimated") || !strings.Contains(tbl.String(), "OpenMP") {
		t.Fatalf("table rendering incomplete:\n%s", tbl.String())
	}
	res.WriteCSV(&csv)
	if !strings.Contains(csv.String(), "fig4,EPYC-64,GE") {
		t.Fatalf("csv rendering incomplete:\n%.200s", csv.String())
	}
	if best := res.Best(); len(best) != len(res.Panels) {
		t.Fatalf("Best() returned %d lines", len(best))
	}
}

// SW figures have no Estimated series.
func TestRunFig6Scaled(t *testing.T) {
	exp, _ := FigureByID("fig6")
	res, err := exp.Run(Options{Scale: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Panels {
		if len(p.Series) != len(core.ParallelVariants) {
			t.Fatalf("SW panel has %d series", len(p.Series))
		}
	}
}

func TestSimulatePointAllBenches(t *testing.T) {
	mach := machine.EPYC64()
	for _, b := range bench.All() {
		for _, v := range core.ParallelVariants {
			secs, err := SimulatePoint(mach, b.ID(), 1024, 64, v)
			if err != nil {
				t.Fatalf("%v %v: %v", b.ID(), v, err)
			}
			if secs <= 0 {
				t.Fatalf("%v %v: %v seconds", b.ID(), v, secs)
			}
		}
	}
}

// An id outside the registry must fail loudly — the old shapeOf helper
// silently defaulted unknown benchmarks to a GE-shaped (Triangular) sweep.
func TestSimulatePointUnknownBenchFailsLoudly(t *testing.T) {
	_, err := SimulatePoint(machine.EPYC64(), core.BenchID(99), 1024, 64, core.NativeCnC)
	if !errors.Is(err, bench.ErrUnknownBenchmark) {
		t.Fatalf("SimulatePoint(unknown) = %v, want ErrUnknownBenchmark", err)
	}
	exp := Experiment{ID: "bogus", Bench: core.BenchID(99), Machine: machine.EPYC64,
		Ns: []int{2048}, BasesFor: func(int) []int { return []int{64} }}
	if _, err := exp.Run(Options{Scale: 3}); !errors.Is(err, bench.ErrUnknownBenchmark) {
		t.Fatalf("Experiment.Run(unknown bench) = %v, want ErrUnknownBenchmark", err)
	}
}

func TestBestOverBases(t *testing.T) {
	mach := machine.EPYC64()
	best, base, err := BestOverBases(context.Background(), mach, core.GE, 2048, core.TunerCnC, []int{32, 64, 128})
	if err != nil {
		t.Fatal(err)
	}
	if best <= 0 || base == 0 {
		t.Fatalf("best=%v base=%d", best, base)
	}
}

func TestClaimsReports(t *testing.T) {
	if testing.Short() {
		t.Skip("claims sweep is slow")
	}
	var sb strings.Builder
	if err := WriteSWSpan(context.Background(), &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "swspan") {
		t.Fatal("swspan header missing")
	}
	sb.Reset()
	if err := WriteBestBlock(context.Background(), &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "EPYC-64") {
		t.Fatalf("bestblock output incomplete:\n%s", out)
	}
	// The claims loops are registry-driven: every registered benchmark —
	// including CH — must show up in the best-block table.
	for _, b := range bench.All() {
		if !strings.Contains(out, b.ID().String()) {
			t.Fatalf("bestblock output missing %s:\n%s", b.ID(), out)
		}
	}
}

// WriteCrossover must cover every registered benchmark in both its
// simulated table and its real-run verification block, and every
// verification row must come out ok (errors fail the experiment).
func TestCrossoverCoversRegistry(t *testing.T) {
	if testing.Short() {
		t.Skip("crossover runs real benchmarks")
	}
	var sb strings.Builder
	if err := WriteCrossover(context.Background(), &sb); err != nil {
		t.Fatalf("WriteCrossover: %v\n%s", err, sb.String())
	}
	out := sb.String()
	for _, b := range bench.All() {
		if !strings.Contains(out, b.ID().String()) {
			t.Fatalf("crossover output missing %s:\n%s", b.ID(), out)
		}
	}
	if !strings.Contains(out, "CH") || !strings.Contains(out, "verification") {
		t.Fatalf("crossover missing CH verification block:\n%s", out)
	}
}

func TestTable1Scaled(t *testing.T) {
	if testing.Short() {
		t.Skip("cache trace is slow")
	}
	res, err := RunTable1(16) // n=512
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 4 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	// The L3 cliff: the ratio at the paper-base-2048 row must be far below
	// the fitting rows, as in the paper.
	var fit, overflow float64
	for _, r := range res.Rows {
		if r.PaperBase == 512 {
			fit = r.L3Ratio
		}
		if r.PaperBase == 2048 {
			overflow = r.L3Ratio
		}
	}
	if fit == 0 || overflow == 0 || overflow > fit/3 {
		t.Fatalf("L3 ratio cliff missing: fit=%v overflow=%v", fit, overflow)
	}
	var sb strings.Builder
	res.WriteTable(&sb)
	if !strings.Contains(sb.String(), "paper L3") {
		t.Fatal("table rendering incomplete")
	}
}

func TestExtensionReports(t *testing.T) {
	if testing.Short() {
		t.Skip("extension sweeps are slow")
	}
	var sb strings.Builder
	if err := WriteRWay(context.Background(), &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "data-flow") {
		t.Fatal("rway output incomplete")
	}
	sb.Reset()
	if err := WriteComputeOn(context.Background(), &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "compute_on") {
		t.Fatal("computeon output incomplete")
	}
	sb.Reset()
	if err := WriteScaling(context.Background(), &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "speedup") {
		t.Fatal("scaling output incomplete")
	}
}

// A pre-cancelled context must abort a sweep before it simulates anything.
func TestRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	exp, _ := FigureByID("fig4")
	if _, err := exp.RunContext(ctx, Options{Scale: 3, MaxTiles: 64}); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext = %v, want context.Canceled", err)
	}
	if _, err := RunTable1Context(ctx, 16); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunTable1Context = %v, want context.Canceled", err)
	}
	var sb strings.Builder
	if err := WriteCrossover(ctx, &sb); !errors.Is(err, context.Canceled) {
		t.Fatalf("WriteCrossover = %v, want context.Canceled", err)
	}
	if _, _, err := BestOverBases(ctx, machine.EPYC64(), core.GE, 2048, core.TunerCnC, []int{64}); !errors.Is(err, context.Canceled) {
		t.Fatalf("BestOverBases = %v, want context.Canceled", err)
	}
}
