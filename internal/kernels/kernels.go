// Package kernels provides the serial base-case tile kernels shared by every
// implementation (loop-based, fork-join, data-flow) of the three DP
// benchmarks studied in the paper:
//
//   - GE: Gaussian Elimination without pivoting,
//   - FW: Floyd-Warshall all-pairs shortest path,
//   - SW: Smith-Waterman local alignment.
//
// All kernels operate on the full DP table with explicit index ranges, like
// the paper's ge_iterative_kernel(input_sz, block_sz, I, J, K, dp_table):
// a base-case task for tile (I, J) at elimination step range K reads pivot
// data from other tiles of the same table, so the kernels need global
// coordinates rather than isolated tile views.
//
// The GE and FW kernels come in two forms: a guarded reference form that
// mirrors the paper's Listing 2 loop nest literally, and an optimised form
// with the branches hoisted out of the innermost loop (the paper notes the
// same optimisation was applied "to enable vectorization"). Tests assert
// both forms are equivalent.
package kernels

import "dpflow/internal/matrix"

// GE applies the Gaussian-elimination update to the block of X with row
// range [i0, i0+b), column range [j0, j0+b) and elimination-step range
// [k0, k0+b):
//
//	for k, i, j in block: if i > k && j > k { X[i][j] -= X[i][k]*X[k][j] / X[k][k] }
//
// This is the branch-hoisted form: the guards i > k and j > k are folded
// into the loop bounds so the innermost loop is branch-free, and the row
// multiplier X[i][k]/X[k][k] is computed once per row — the vectorisation
// optimisation the paper applied to its C++ kernels.
//
// Note on the guard: the paper's Listing 2 writes j >= k, but executing that
// in place with an ascending j loop destroys the multiplier column X[·][k]
// (the j == k update zeroes it) before the j > k updates read it, both
// within a block and — fatally — across the C-before-D tile ordering that
// Listing 5 enforces. The update set that makes the recurrence and the
// A/B/C/D dependency structure consistent is the strict Σ_GE of Chowdhury &
// Ramachandran's Gaussian Elimination Paradigm: i > k && j > k, which is
// what every implementation in this repository uses. Sub-diagonal entries
// consequently retain their last intermediate values instead of being
// zeroed; forward elimination of an augmented system is unaffected because
// the right-hand-side column has j > k for every step.
func GE(x *matrix.Dense, i0, j0, k0, b int) {
	for k := k0; k < k0+b; k++ {
		pivotRow := x.Row(k)
		pivot := pivotRow[k]
		iStart := i0
		if k+1 > iStart {
			iStart = k + 1
		}
		jStart := j0
		if k+1 > jStart {
			jStart = k + 1
		}
		jEnd := j0 + b
		if jStart >= jEnd {
			continue
		}
		for i := iStart; i < i0+b; i++ {
			row := x.Row(i)
			factor := row[k] / pivot
			for j := jStart; j < jEnd; j++ {
				row[j] -= factor * pivotRow[j]
			}
		}
	}
}

// GEGuarded is the literal guarded transcription of the GE block update (the
// shape of the paper's Listing 2 loop nest, with the strict Σ_GE guard); it
// exists as a branch-per-iteration reference implementation for tests.
func GEGuarded(x *matrix.Dense, i0, j0, k0, b int) {
	for k := k0; k < k0+b; k++ {
		for i := i0; i < i0+b; i++ {
			for j := j0; j < j0+b; j++ {
				if i > k && j > k {
					x.Set(i, j, x.At(i, j)-(x.At(i, k)/x.At(k, k))*x.At(k, j))
				}
			}
		}
	}
}

// GESerial runs the full loop-based serial GE on an n×n matrix: the k loop
// stops at n-1, exactly as in the paper's Listing 2.
func GESerial(x *matrix.Dense) {
	n := x.Rows()
	for k := 0; k < n-1; k++ {
		pivotRow := x.Row(k)
		pivot := pivotRow[k]
		for i := k + 1; i < n; i++ {
			row := x.Row(i)
			factor := row[k] / pivot
			for j := k + 1; j < n; j++ {
				row[j] -= factor * pivotRow[j]
			}
		}
	}
}

// GEBlockLimit clamps the elimination-step range of a GE block so that the
// global k loop never reaches n-1 or beyond (Listing 2 iterates k < N-1).
// It returns the number of k steps a base-case block at k0 should execute.
func GEBlockLimit(n, k0, b int) int {
	limit := n - 1 - k0
	if limit > b {
		limit = b
	}
	if limit < 0 {
		limit = 0
	}
	return limit
}

// FW applies the Floyd-Warshall min-plus update to the block of X with row
// range [i0, i0+b), column range [j0, j0+b) and intermediate-vertex range
// [k0, k0+b):
//
//	X[i][j] = min(X[i][j], X[i][k] + X[k][j])
func FW(x *matrix.Dense, i0, j0, k0, b int) {
	for k := k0; k < k0+b; k++ {
		viaRow := x.Row(k)
		for i := i0; i < i0+b; i++ {
			row := x.Row(i)
			dik := row[k]
			for j := j0; j < j0+b; j++ {
				if d := dik + viaRow[j]; d < row[j] {
					row[j] = d
				}
			}
		}
	}
}

// FWSerial runs the classic triply nested Floyd-Warshall loop on the full
// n×n distance matrix.
func FWSerial(x *matrix.Dense) {
	n := x.Rows()
	FW(x, 0, 0, 0, n)
}

// Scoring holds the Smith-Waterman scoring scheme: match reward, mismatch
// penalty and linear gap penalty. Match must be positive and the penalties
// are given as positive magnitudes.
type Scoring struct {
	Match    float64
	Mismatch float64
	Gap      float64
}

// DefaultScoring is the standard +2/-1/-1 DNA scheme used by the examples
// and benchmarks.
var DefaultScoring = Scoring{Match: 2, Mismatch: 1, Gap: 1}

// Score returns the substitution score for aligning bytes a and b.
func (s Scoring) Score(a, b byte) float64 {
	if a == b {
		return s.Match
	}
	return -s.Mismatch
}

// SW fills the Smith-Waterman block of H with row range [i0, i0+b) and
// column range [j0, j0+b). H is an (len(a)+1)×(len(b)+1) table whose row 0
// and column 0 are fixed at zero; i0 and j0 are therefore >= 1. Cells
// outside the block (the row above and column to the left) must already be
// final — the callers' recursion or wavefront ordering guarantees this.
//
//	H[i][j] = max(0, H[i-1][j-1]+score(a[i-1],b[j-1]), H[i-1][j]-gap, H[i][j-1]-gap)
func SW(h *matrix.Dense, a, b []byte, sc Scoring, i0, j0, bsz int) {
	iEnd := i0 + bsz
	jEnd := j0 + bsz
	for i := i0; i < iEnd; i++ {
		row := h.Row(i)
		above := h.Row(i - 1)
		ai := a[i-1]
		for j := j0; j < jEnd; j++ {
			best := above[j-1] + sc.Score(ai, b[j-1])
			if up := above[j] - sc.Gap; up > best {
				best = up
			}
			if left := row[j-1] - sc.Gap; left > best {
				best = left
			}
			if best < 0 {
				best = 0
			}
			row[j] = best
		}
	}
}

// SWSerial fills the full (len(a)+1)×(len(b)+1) Smith-Waterman table and
// returns the maximum local-alignment score.
func SWSerial(h *matrix.Dense, a, b []byte, sc Scoring) float64 {
	SW(h, a, b, sc, 1, 1, h.Rows()-1)
	return MaxScore(h)
}

// SWLinear computes the Smith-Waterman maximum score in O(n) space, the
// optimisation the paper applied to its SW benchmark ("we have optimized the
// algorithm to consume O(n) space"). It keeps only the previous row.
func SWLinear(a, b []byte, sc Scoring) float64 {
	prev := make([]float64, len(b)+1)
	cur := make([]float64, len(b)+1)
	best := 0.0
	for i := 1; i <= len(a); i++ {
		ai := a[i-1]
		cur[0] = 0
		for j := 1; j <= len(b); j++ {
			v := prev[j-1] + sc.Score(ai, b[j-1])
			if up := prev[j] - sc.Gap; up > v {
				v = up
			}
			if left := cur[j-1] - sc.Gap; left > v {
				v = left
			}
			if v < 0 {
				v = 0
			}
			cur[j] = v
			if v > best {
				best = v
			}
		}
		prev, cur = cur, prev
	}
	return best
}

// MaxScore returns the maximum element of a Smith-Waterman table.
func MaxScore(h *matrix.Dense) float64 {
	best := 0.0
	for i := 0; i < h.Rows(); i++ {
		for _, v := range h.Row(i) {
			if v > best {
				best = v
			}
		}
	}
	return best
}
