// Package kernels provides the serial base-case tile kernels shared by every
// implementation (loop-based, fork-join, data-flow) of the three DP
// benchmarks studied in the paper:
//
//   - GE: Gaussian Elimination without pivoting,
//   - FW: Floyd-Warshall all-pairs shortest path,
//   - SW: Smith-Waterman local alignment.
//
// All kernels operate on the full DP table with explicit index ranges, like
// the paper's ge_iterative_kernel(input_sz, block_sz, I, J, K, dp_table):
// a base-case task for tile (I, J) at elimination step range K reads pivot
// data from other tiles of the same table, so the kernels need global
// coordinates rather than isolated tile views.
//
// Each kernel comes in two forms: a guarded reference form that mirrors
// the paper's loop nest literally (GEGuarded, FWRef, SWRef), and the
// optimised form used by every runtime — branch-hoisted (the paper notes
// the same optimisation was applied "to enable vectorization") and
// register-blocked: the GE and FW inner loops are unrolled four rows deep
// so each load of the shared pivot/via row element feeds four scalar
// accumulator updates, and the SW inner loop carries the left and diagonal
// neighbours in registers across iterations. All loops run stride-1 over
// the row-major matrix.Dense (j innermost), the access order the cache
// model's StreamLines/PrefetchFriendly closed forms predict is
// prefetch-friendly, and the tiles are re-sliced to equal lengths so the
// compiler drops bounds checks. Tests assert the optimised forms are
// bit-identical to the references: at a fixed elimination/via step k the
// per-(i, j) updates are independent and the blocked forms perform exactly
// the same arithmetic on exactly the same operand values, so no
// floating-point reassociation occurs.
package kernels

import "dpflow/internal/matrix"

// GE applies the Gaussian-elimination update to the block of X with row
// range [i0, i0+b), column range [j0, j0+b) and elimination-step range
// [k0, k0+b):
//
//	for k, i, j in block: if i > k && j > k { X[i][j] -= X[i][k]*X[k][j] / X[k][k] }
//
// This is the branch-hoisted, register-blocked form: the guards i > k and
// j > k are folded into the loop bounds so the innermost loop is
// branch-free, the row multiplier X[i][k]/X[k][k] is computed once per row
// (the vectorisation optimisation the paper applied to its C++ kernels),
// and the row loop is unrolled 4× so each pivot-row element loaded feeds
// four independent scalar updates. The update of row i at column j is
// X[i][j] -= (X[i][k]/X[k][k]) * X[k][j] in both the blocked and the
// guarded form — identical operands, identical operation order per
// element — so the result is bit-identical to GEGuarded; no row in
// [max(i0,k+1), i0+b) aliases pivot row k and column k is never written
// (both guards are strict), so the early multiplier loads are safe.
//
// Note on the guard: the paper's Listing 2 writes j >= k, but executing that
// in place with an ascending j loop destroys the multiplier column X[·][k]
// (the j == k update zeroes it) before the j > k updates read it, both
// within a block and — fatally — across the C-before-D tile ordering that
// Listing 5 enforces. The update set that makes the recurrence and the
// A/B/C/D dependency structure consistent is the strict Σ_GE of Chowdhury &
// Ramachandran's Gaussian Elimination Paradigm: i > k && j > k, which is
// what every implementation in this repository uses. Sub-diagonal entries
// consequently retain their last intermediate values instead of being
// zeroed; forward elimination of an augmented system is unaffected because
// the right-hand-side column has j > k for every step.
func GE(x *matrix.Dense, i0, j0, k0, b int) {
	for k := k0; k < k0+b; k++ {
		pivot := x.At(k, k)
		iStart := i0
		if k+1 > iStart {
			iStart = k + 1
		}
		jStart := j0
		if k+1 > jStart {
			jStart = k + 1
		}
		jEnd := j0 + b
		if jStart >= jEnd {
			continue
		}
		iEnd := i0 + b
		p := x.RowSeg(k, jStart, jEnd)
		i := iStart
		for ; i+3 < iEnd; i += 4 {
			f0 := x.At(i, k) / pivot
			f1 := x.At(i+1, k) / pivot
			f2 := x.At(i+2, k) / pivot
			f3 := x.At(i+3, k) / pivot
			r0 := x.RowSeg(i, jStart, jEnd)[:len(p)]
			r1 := x.RowSeg(i+1, jStart, jEnd)[:len(p)]
			r2 := x.RowSeg(i+2, jStart, jEnd)[:len(p)]
			r3 := x.RowSeg(i+3, jStart, jEnd)[:len(p)]
			for jj, pv := range p {
				r0[jj] -= f0 * pv
				r1[jj] -= f1 * pv
				r2[jj] -= f2 * pv
				r3[jj] -= f3 * pv
			}
		}
		for ; i < iEnd; i++ {
			f := x.At(i, k) / pivot
			r := x.RowSeg(i, jStart, jEnd)[:len(p)]
			for jj, pv := range p {
				r[jj] -= f * pv
			}
		}
	}
}

// GEGuarded is the literal guarded transcription of the GE block update (the
// shape of the paper's Listing 2 loop nest, with the strict Σ_GE guard); it
// exists as a branch-per-iteration reference implementation for tests.
func GEGuarded(x *matrix.Dense, i0, j0, k0, b int) {
	for k := k0; k < k0+b; k++ {
		for i := i0; i < i0+b; i++ {
			for j := j0; j < j0+b; j++ {
				if i > k && j > k {
					x.Set(i, j, x.At(i, j)-(x.At(i, k)/x.At(k, k))*x.At(k, j))
				}
			}
		}
	}
}

// GESerial runs the full loop-based serial GE on an n×n matrix: the k loop
// stops at n-1, exactly as in the paper's Listing 2.
func GESerial(x *matrix.Dense) {
	n := x.Rows()
	for k := 0; k < n-1; k++ {
		pivotRow := x.Row(k)
		pivot := pivotRow[k]
		for i := k + 1; i < n; i++ {
			row := x.Row(i)
			factor := row[k] / pivot
			for j := k + 1; j < n; j++ {
				row[j] -= factor * pivotRow[j]
			}
		}
	}
}

// GEBlockLimit clamps the elimination-step range of a GE block so that the
// global k loop never reaches n-1 or beyond (Listing 2 iterates k < N-1).
// It returns the number of k steps a base-case block at k0 should execute.
func GEBlockLimit(n, k0, b int) int {
	limit := n - 1 - k0
	if limit > b {
		limit = b
	}
	if limit < 0 {
		limit = 0
	}
	return limit
}

// FW applies the Floyd-Warshall min-plus update to the block of X with row
// range [i0, i0+b), column range [j0, j0+b) and intermediate-vertex range
// [k0, k0+b):
//
//	X[i][j] = min(X[i][j], X[i][k] + X[k][j])
//
// This is the register-blocked form: the row loop is unrolled 4× so each
// via-row element X[k][j] loaded feeds four independent min-plus updates,
// with the X[i][k] distances held in scalars across the inner loop. When
// the tile contains via row k itself (diagonal tiles), the blocked form
// still updates each column element in ascending-i order — exactly the
// per-element order of the rolled loop — and the X[i][k] scalars are
// loaded at points where no preceding update in either form could have
// written them, so the result is bit-identical to FWRef.
func FW(x *matrix.Dense, i0, j0, k0, b int) {
	jEnd := j0 + b
	iEnd := i0 + b
	for k := k0; k < k0+b; k++ {
		via := x.RowSeg(k, j0, jEnd)
		i := i0
		for ; i+3 < iEnd; i += 4 {
			d0 := x.At(i, k)
			d1 := x.At(i+1, k)
			d2 := x.At(i+2, k)
			d3 := x.At(i+3, k)
			r0 := x.RowSeg(i, j0, jEnd)[:len(via)]
			r1 := x.RowSeg(i+1, j0, jEnd)[:len(via)]
			r2 := x.RowSeg(i+2, j0, jEnd)[:len(via)]
			r3 := x.RowSeg(i+3, j0, jEnd)[:len(via)]
			for jj := range via {
				vj := via[jj]
				if d := d0 + vj; d < r0[jj] {
					r0[jj] = d
				}
				if d := d1 + vj; d < r1[jj] {
					r1[jj] = d
				}
				if d := d2 + vj; d < r2[jj] {
					r2[jj] = d
				}
				if d := d3 + vj; d < r3[jj] {
					r3[jj] = d
				}
			}
		}
		for ; i < iEnd; i++ {
			dik := x.At(i, k)
			r := x.RowSeg(i, j0, jEnd)[:len(via)]
			for jj := range via {
				if d := dik + via[jj]; d < r[jj] {
					r[jj] = d
				}
			}
		}
	}
}

// FWRef is the literal rolled transcription of the FW block update; it
// exists as the per-element reference implementation for equivalence tests
// against the register-blocked FW.
func FWRef(x *matrix.Dense, i0, j0, k0, b int) {
	for k := k0; k < k0+b; k++ {
		for i := i0; i < i0+b; i++ {
			dik := x.At(i, k)
			for j := j0; j < j0+b; j++ {
				if d := dik + x.At(k, j); d < x.At(i, j) {
					x.Set(i, j, d)
				}
			}
		}
	}
}

// FWSerial runs the classic triply nested Floyd-Warshall loop on the full
// n×n distance matrix.
func FWSerial(x *matrix.Dense) {
	n := x.Rows()
	FW(x, 0, 0, 0, n)
}

// Scoring holds the Smith-Waterman scoring scheme: match reward, mismatch
// penalty and linear gap penalty. Match must be positive and the penalties
// are given as positive magnitudes.
type Scoring struct {
	Match    float64
	Mismatch float64
	Gap      float64
}

// DefaultScoring is the standard +2/-1/-1 DNA scheme used by the examples
// and benchmarks.
var DefaultScoring = Scoring{Match: 2, Mismatch: 1, Gap: 1}

// Score returns the substitution score for aligning bytes a and b.
func (s Scoring) Score(a, b byte) float64 {
	if a == b {
		return s.Match
	}
	return -s.Mismatch
}

// SW fills the Smith-Waterman block of H with row range [i0, i0+b) and
// column range [j0, j0+b). H is an (len(a)+1)×(len(b)+1) table whose row 0
// and column 0 are fixed at zero; i0 and j0 are therefore >= 1. Cells
// outside the block (the row above and column to the left) must already be
// final — the callers' recursion or wavefront ordering guarantees this.
//
//	H[i][j] = max(0, H[i-1][j-1]+score(a[i-1],b[j-1]), H[i-1][j]-gap, H[i][j-1]-gap)
//
// This is the register-carried form: the column loop has a loop-carried
// dependency through H[i][j-1] (no j-unrolling is possible), so instead the
// left and diagonal neighbours are carried in registers across iterations —
// each cell loads only H[i-1][j] and b[j-1], and the freshly computed score
// becomes the next iteration's left neighbour without a reload. The
// candidate set and comparison order per cell are identical to SWRef, so
// the result is bit-identical.
func SW(h *matrix.Dense, a, b []byte, sc Scoring, i0, j0, bsz int) {
	iEnd := i0 + bsz
	jEnd := j0 + bsz
	gap := sc.Gap
	bseg := b[j0-1 : jEnd-1]
	for i := i0; i < iEnd; i++ {
		// Segments start one column early so row[0]/above[0] are the
		// already-final west and northwest neighbours of the tile.
		row := h.RowSeg(i, j0-1, jEnd)[:len(bseg)+1]
		above := h.RowSeg(i-1, j0-1, jEnd)[:len(bseg)+1]
		ai := a[i-1]
		left := row[0]
		diag := above[0]
		for jj, bj := range bseg {
			up := above[jj+1]
			best := diag + sc.Score(ai, bj)
			if v := up - gap; v > best {
				best = v
			}
			if v := left - gap; v > best {
				best = v
			}
			if best < 0 {
				best = 0
			}
			row[jj+1] = best
			left = best
			diag = up
		}
	}
}

// SWRef is the literal transcription of the SW block fill, loading all
// three neighbours from the table every cell; it exists as the reference
// implementation for equivalence tests against the register-carried SW.
func SWRef(h *matrix.Dense, a, b []byte, sc Scoring, i0, j0, bsz int) {
	iEnd := i0 + bsz
	jEnd := j0 + bsz
	for i := i0; i < iEnd; i++ {
		ai := a[i-1]
		for j := j0; j < jEnd; j++ {
			best := h.At(i-1, j-1) + sc.Score(ai, b[j-1])
			if up := h.At(i-1, j) - sc.Gap; up > best {
				best = up
			}
			if left := h.At(i, j-1) - sc.Gap; left > best {
				best = left
			}
			if best < 0 {
				best = 0
			}
			h.Set(i, j, best)
		}
	}
}

// SWSerial fills the full (len(a)+1)×(len(b)+1) Smith-Waterman table and
// returns the maximum local-alignment score.
func SWSerial(h *matrix.Dense, a, b []byte, sc Scoring) float64 {
	SW(h, a, b, sc, 1, 1, h.Rows()-1)
	return MaxScore(h)
}

// SWLinear computes the Smith-Waterman maximum score in O(n) space, the
// optimisation the paper applied to its SW benchmark ("we have optimized the
// algorithm to consume O(n) space"). It keeps only the previous row.
func SWLinear(a, b []byte, sc Scoring) float64 {
	prev := make([]float64, len(b)+1)
	cur := make([]float64, len(b)+1)
	best := 0.0
	for i := 1; i <= len(a); i++ {
		ai := a[i-1]
		cur[0] = 0
		for j := 1; j <= len(b); j++ {
			v := prev[j-1] + sc.Score(ai, b[j-1])
			if up := prev[j] - sc.Gap; up > v {
				v = up
			}
			if left := cur[j-1] - sc.Gap; left > v {
				v = left
			}
			if v < 0 {
				v = 0
			}
			cur[j] = v
			if v > best {
				best = v
			}
		}
		prev, cur = cur, prev
	}
	return best
}

// MaxScore returns the maximum element of a Smith-Waterman table.
func MaxScore(h *matrix.Dense) float64 {
	best := 0.0
	for i := 0; i < h.Rows(); i++ {
		for _, v := range h.Row(i) {
			if v > best {
				best = v
			}
		}
	}
	return best
}
