package kernels

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dpflow/internal/matrix"
)

func randomGE(n int, seed int64) *matrix.Dense {
	m := matrix.NewSquare(n)
	m.FillDiagonallyDominant(rand.New(rand.NewSource(seed)))
	return m
}

// The branch-hoisted GE block kernel must agree with the literal guarded
// transcription of Listing 2 on every block geometry.
func TestGEMatchesGuarded(t *testing.T) {
	n := 16
	for _, b := range []int{1, 2, 4, 8, 16} {
		for k0 := 0; k0 < n; k0 += b {
			for i0 := 0; i0 < n; i0 += b {
				for j0 := 0; j0 < n; j0 += b {
					a := randomGE(n, 42)
					ref := a.Clone()
					GE(a, i0, j0, k0, b)
					GEGuarded(ref, i0, j0, k0, b)
					// Both forms apply identical FP operations in identical
					// order, so the results must match exactly.
					if !matrix.Equal(a, ref) {
						t.Fatalf("GE != GEGuarded at block i0=%d j0=%d k0=%d b=%d (maxdiff %g)",
							i0, j0, k0, b, matrix.MaxAbsDiff(a, ref))
					}
				}
			}
		}
	}
}

// Applying GE block-by-block in the correct k-i-j tile order must reproduce
// the serial elimination — this is the fundamental tiling identity that all
// parallel implementations rely on.
func TestGETiledMatchesSerial(t *testing.T) {
	for _, n := range []int{4, 8, 16, 32} {
		for _, b := range []int{1, 2, 4} {
			if b > n {
				continue
			}
			a := randomGE(n, int64(n*100+b))
			ref := a.Clone()
			GESerial(ref)
			tiles := n / b
			for K := 0; K < tiles; K++ {
				for I := 0; I < tiles; I++ {
					for J := 0; J < tiles; J++ {
						GE(a, I*b, J*b, K*b, b)
					}
				}
			}
			if !matrix.AlmostEqual(a, ref, 1e-9) {
				t.Fatalf("tiled GE != serial GE for n=%d b=%d (maxdiff %g)",
					n, b, matrix.MaxAbsDiff(a, ref))
			}
		}
	}
}

func TestGESerialKnownSystem(t *testing.T) {
	// Eliminate a small system by hand with the strict Σ_GE update set:
	//   [2 1; 4 5] -> row1[1] -= (4/2)*1 -> [2 1; 4 3]
	// (the j == k entry keeps its pre-elimination value; see the GE doc).
	a := matrix.FromRows([][]float64{{2, 1}, {4, 5}})
	GESerial(a)
	want := matrix.FromRows([][]float64{{2, 1}, {4, 3}})
	if !matrix.AlmostEqual(a, want, 1e-12) {
		t.Fatalf("GE result:\n%v\nwant:\n%v", a, want)
	}
}

// Forward elimination on an augmented matrix followed by back substitution
// must solve the linear system: the end-to-end property GE exists for.
func TestGESolvesLinearSystem(t *testing.T) {
	const n = 17 // n-1 unknowns in an n×n augmented matrix, as in the paper
	rng := rand.New(rand.NewSource(11))
	a := matrix.NewSquare(n)
	a.FillDiagonallyDominant(rng)
	x := make([]float64, n-1)
	for i := range x {
		x[i] = -2 + 4*rng.Float64()
	}
	// Last column holds b = A·x over the leading (n-1)×(n-1) system.
	for i := 0; i < n-1; i++ {
		sum := 0.0
		for j := 0; j < n-1; j++ {
			sum += a.At(i, j) * x[j]
		}
		a.Set(i, n-1, sum)
	}
	GESerial(a)
	// Back substitution on the upper-triangularised system.
	got := make([]float64, n-1)
	for i := n - 2; i >= 0; i-- {
		sum := a.At(i, n-1)
		for j := i + 1; j < n-1; j++ {
			sum -= a.At(i, j) * got[j]
		}
		got[i] = sum / a.At(i, i)
	}
	for i := range x {
		if math.Abs(got[i]-x[i]) > 1e-9 {
			t.Fatalf("solution[%d] = %v, want %v", i, got[i], x[i])
		}
	}
}

func TestGEBlockLimit(t *testing.T) {
	cases := []struct {
		n, k0, b, want int
	}{
		{16, 0, 4, 4},
		{16, 12, 4, 3}, // last block: k stops at n-1
		{16, 15, 4, 0}, // beyond the loop bound
		{8, 0, 8, 7},   // whole-matrix block
		{8, 8, 4, 0},   // fully out of range
	}
	for _, c := range cases {
		if got := GEBlockLimit(c.n, c.k0, c.b); got != c.want {
			t.Errorf("GEBlockLimit(%d,%d,%d) = %d, want %d", c.n, c.k0, c.b, got, c.want)
		}
	}
}

func randomDist(n int, seed int64) *matrix.Dense {
	rng := rand.New(rand.NewSource(seed))
	m := matrix.NewSquare(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			switch {
			case i == j:
				m.Set(i, j, 0)
			case rng.Float64() < 0.4:
				// Integer weights keep min-plus arithmetic exact in float64,
				// so differently ordered implementations agree bit-for-bit.
				m.Set(i, j, float64(1+rng.Intn(9)))
			default:
				m.Set(i, j, 1e6) // "infinity" for a sparse graph
			}
		}
	}
	return m
}

func TestFWSerialSmall(t *testing.T) {
	inf := 1e6
	d := matrix.FromRows([][]float64{
		{0, 3, inf},
		{inf, 0, 2},
		{7, inf, 0},
	})
	FWSerial(d)
	want := matrix.FromRows([][]float64{
		{0, 3, 5},
		{9, 0, 2},
		{7, 10, 0},
	})
	if !matrix.Equal(d, want) {
		t.Fatalf("FW result:\n%v\nwant:\n%v", d, want)
	}
}

// FW must satisfy the triangle inequality on its output and be idempotent.
func TestFWProperties(t *testing.T) {
	f := func(seed int64) bool {
		n := 12
		d := randomDist(n, seed)
		FWSerial(d)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				for k := 0; k < n; k++ {
					if d.At(i, j) > d.At(i, k)+d.At(k, j)+1e-9 {
						return false
					}
				}
			}
		}
		again := d.Clone()
		FWSerial(again)
		return matrix.Equal(d, again)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Tiled FW matches the serial loop when each K phase runs in the blocked
// order the A/B/C/D recursion induces: the diagonal tile first, then the
// pivot row and column tiles, then the remaining tiles. (A naive K-I-J tile
// sweep is NOT equivalent — tiles left of / above the pivot would read stale
// pivot rows — which is precisely why the recursion orders A before B/C
// before D.)
func TestFWTiledMatchesSerial(t *testing.T) {
	for _, n := range []int{8, 16} {
		for _, b := range []int{1, 2, 4, 8} {
			d := randomDist(n, int64(n+b))
			ref := d.Clone()
			FWSerial(ref)
			tiles := n / b
			for K := 0; K < tiles; K++ {
				FW(d, K*b, K*b, K*b, b)
				for X := 0; X < tiles; X++ {
					if X == K {
						continue
					}
					FW(d, K*b, X*b, K*b, b) // pivot row
					FW(d, X*b, K*b, K*b, b) // pivot column
				}
				for I := 0; I < tiles; I++ {
					for J := 0; J < tiles; J++ {
						if I != K && J != K {
							FW(d, I*b, J*b, K*b, b)
						}
					}
				}
			}
			if !matrix.Equal(d, ref) {
				t.Fatalf("tiled FW != serial for n=%d b=%d", n, b)
			}
		}
	}
}

func TestScoring(t *testing.T) {
	sc := Scoring{Match: 3, Mismatch: 2, Gap: 1}
	if sc.Score('A', 'A') != 3 {
		t.Fatal("match score wrong")
	}
	if sc.Score('A', 'C') != -2 {
		t.Fatal("mismatch score wrong")
	}
}

func TestSWKnownAlignment(t *testing.T) {
	// Classic example: TGTTACGG vs GGTTGACTA, match=3 mismatch=3 gap=2
	// has optimal local alignment score 13 (GTT-AC / GTTGAC).
	a := []byte("TGTTACGG")
	b := []byte("GGTTGACTA")
	sc := Scoring{Match: 3, Mismatch: 3, Gap: 2}
	h := matrix.New(len(a)+1, len(b)+1)
	got := SWSerial(h, a, b, sc)
	if got != 13 {
		t.Fatalf("SW score = %v, want 13", got)
	}
	if lin := SWLinear(a, b, sc); lin != 13 {
		t.Fatalf("SWLinear score = %v, want 13", lin)
	}
}

func TestSWIdenticalSequences(t *testing.T) {
	s := []byte("ACGTACGT")
	h := matrix.New(len(s)+1, len(s)+1)
	got := SWSerial(h, s, s, DefaultScoring)
	want := float64(len(s)) * DefaultScoring.Match
	if got != want {
		t.Fatalf("self-alignment score = %v, want %v", got, want)
	}
}

func TestSWEmptyishAndBounds(t *testing.T) {
	a, b := []byte("A"), []byte("C")
	h := matrix.New(2, 2)
	if got := SWSerial(h, a, b, DefaultScoring); got != 0 {
		t.Fatalf("mismatched single chars score = %v, want 0", got)
	}
}

func randSeq(n int, rng *rand.Rand) []byte {
	const alpha = "ACGT"
	s := make([]byte, n)
	for i := range s {
		s[i] = alpha[rng.Intn(4)]
	}
	return s
}

// Tiled SW (row-major tile order) matches the serial full-table fill, and
// the linear-space variant agrees on the max score.
func TestSWTiledMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{4, 8, 16} {
		for _, bsz := range []int{1, 2, 4} {
			a, b := randSeq(n, rng), randSeq(n, rng)
			ref := matrix.New(n+1, n+1)
			refScore := SWSerial(ref, a, b, DefaultScoring)

			h := matrix.New(n+1, n+1)
			tiles := n / bsz
			for I := 0; I < tiles; I++ {
				for J := 0; J < tiles; J++ {
					SW(h, a, b, DefaultScoring, 1+I*bsz, 1+J*bsz, bsz)
				}
			}
			if !matrix.Equal(h, ref) {
				t.Fatalf("tiled SW != serial for n=%d b=%d", n, bsz)
			}
			if lin := SWLinear(a, b, DefaultScoring); lin != refScore {
				t.Fatalf("SWLinear = %v, serial max = %v", lin, refScore)
			}
		}
	}
}

// Property: SW scores are non-negative everywhere and the max score of
// aligning s against itself is Match*len(s).
func TestSWProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(24)
		a, b := randSeq(n, rng), randSeq(n, rng)
		h := matrix.New(n+1, n+1)
		SWSerial(h, a, b, DefaultScoring)
		for i := 0; i <= n; i++ {
			for _, v := range h.Row(i) {
				if v < 0 {
					return false
				}
			}
		}
		self := matrix.New(n+1, n+1)
		return SWSerial(self, a, a, DefaultScoring) == float64(n)*DefaultScoring.Match
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxScore(t *testing.T) {
	h := matrix.New(3, 3)
	h.Set(1, 2, 4.5)
	if got := MaxScore(h); got != 4.5 {
		t.Fatalf("MaxScore = %v", got)
	}
}
