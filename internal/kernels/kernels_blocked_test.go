package kernels

import (
	"math/rand"
	"testing"

	"dpflow/internal/matrix"
)

// Geometry sweep for the register-blocked kernels: every tile size from 1
// to a couple past the 4× unroll factor plus larger non-multiples, so the
// unrolled groups, the remainder rows, and the all-remainder (b < 4) path
// are all exercised.
var blockedSizes = []int{1, 2, 3, 4, 5, 6, 7, 9, 11, 13, 16, 17}

// The register-blocked GE must be bit-identical to the guarded reference on
// every block geometry, including tiles whose row count is not a multiple
// of the unroll factor and k ranges that the strict i>k / j>k guards clamp
// to partial or empty update sets (diagonal tiles, and tiles whose k range
// reaches past the last column of the block).
func TestGEBlockedMatchesGuardedOddGeometries(t *testing.T) {
	const n = 36
	for _, b := range blockedSizes {
		for _, d := range []struct{ i0, j0, k0 int }{
			{0, 0, 0},                         // diagonal tile: guards clamp every k step
			{n - b, n - b, n - b},             // last diagonal tile: k range hits the matrix edge
			{b, 0, 0},                         // pivot-column tile (j range fully clamped at k=j0..)
			{0, b, 0},                         // pivot-row tile
			{b, b, 0},                         // interior tile, unclamped
			{n - b, b, 0},                     // bottom strip
			{b, n - b, 0},                     // right strip
			{2 * b % (n - b), b, b % (n - b)}, // misaligned odd offsets
		} {
			if d.i0 < 0 || d.j0 < 0 || d.k0 < 0 || d.i0+b > n || d.j0+b > n || d.k0+b > n {
				continue
			}
			a := randomGE(n, int64(97*b+d.i0+2*d.j0+3*d.k0))
			ref := a.Clone()
			GE(a, d.i0, d.j0, d.k0, b)
			GEGuarded(ref, d.i0, d.j0, d.k0, b)
			if !matrix.Equal(a, ref) {
				t.Fatalf("GE != GEGuarded at i0=%d j0=%d k0=%d b=%d (maxdiff %g)",
					d.i0, d.j0, d.k0, b, matrix.MaxAbsDiff(a, ref))
			}
		}
	}
}

// The register-blocked FW must be bit-identical to the rolled reference on
// every block geometry — most importantly diagonal tiles, where the tile
// contains via row k and the blocked form's 4-row groups alias it.
func TestFWBlockedMatchesRefOddGeometries(t *testing.T) {
	const n = 36
	for _, b := range blockedSizes {
		for _, d := range []struct{ i0, j0, k0 int }{
			{0, 0, 0},             // diagonal tile: rows alias the via row
			{n - b, n - b, n - b}, // last diagonal tile
			{0, b, 0},             // via-row strip (i range contains k, j disjoint)
			{b, 0, 0},             // via-column strip (reads X[i][k] inside the j range)
			{b, b, 0},             // interior tile, no aliasing
			{n - b, 0, b},         // bottom-left with offset k
		} {
			if d.i0 < 0 || d.j0 < 0 || d.k0 < 0 || d.i0+b > n || d.j0+b > n || d.k0+b > n {
				continue
			}
			x := randomDist(n, int64(31*b+d.i0+2*d.j0+3*d.k0))
			ref := x.Clone()
			FW(x, d.i0, d.j0, d.k0, b)
			FWRef(ref, d.i0, d.j0, d.k0, b)
			if !matrix.Equal(x, ref) {
				t.Fatalf("FW != FWRef at i0=%d j0=%d k0=%d b=%d (maxdiff %g)",
					d.i0, d.j0, d.k0, b, matrix.MaxAbsDiff(x, ref))
			}
		}
	}
}

// The register-carried SW must be bit-identical to the literal reference on
// every tile of a wavefront decomposition. The tiles are filled in
// wavefront order so each tile's west/north/northwest halo is final before
// it runs, exactly as the parallel runtimes guarantee.
func TestSWRegisterCarriedMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, n := range []int{1, 3, 8, 20} {
		for _, bsz := range blockedSizes {
			if bsz > n || n%bsz != 0 {
				continue
			}
			a, b := randSeq(n, rng), randSeq(n, rng)
			h := matrix.New(n+1, n+1)
			ref := matrix.New(n+1, n+1)
			tiles := n / bsz
			for I := 0; I < tiles; I++ {
				for J := 0; J < tiles; J++ {
					SW(h, a, b, DefaultScoring, 1+I*bsz, 1+J*bsz, bsz)
					SWRef(ref, a, b, DefaultScoring, 1+I*bsz, 1+J*bsz, bsz)
				}
			}
			if !matrix.Equal(h, ref) {
				t.Fatalf("SW != SWRef for n=%d bsz=%d", n, bsz)
			}
		}
	}
}

// Whole-table fills through the blocked kernels must still match the serial
// oracles at odd table sizes (k-range boundary: GE's k loop is clamped by
// its guards at n-1, not by GEBlockLimit, when b spans the whole matrix).
func TestBlockedWholeTableOddSizes(t *testing.T) {
	for _, n := range []int{2, 3, 5, 7, 10, 17, 33} {
		a := randomGE(n, int64(1000+n))
		ref := a.Clone()
		GE(a, 0, 0, 0, n)
		GEGuarded(ref, 0, 0, 0, n)
		if !matrix.Equal(a, ref) {
			t.Fatalf("whole-table GE != GEGuarded at n=%d", n)
		}

		x := randomDist(n, int64(2000+n))
		fref := x.Clone()
		FW(x, 0, 0, 0, n)
		FWRef(fref, 0, 0, 0, n)
		if !matrix.Equal(x, fref) {
			t.Fatalf("whole-table FW != FWRef at n=%d", n)
		}
	}
}

// The kernels are the per-task steady state of every runtime: they must
// not allocate at all.
func TestKernelsAllocFree(t *testing.T) {
	const n, b = 32, 8
	ge := randomGE(n, 1)
	if allocs := testing.AllocsPerRun(10, func() { GE(ge, b, b, 0, b) }); allocs != 0 {
		t.Fatalf("GE allocates %v times per run", allocs)
	}
	fw := randomDist(n, 2)
	if allocs := testing.AllocsPerRun(10, func() { FW(fw, b, b, 0, b) }); allocs != 0 {
		t.Fatalf("FW allocates %v times per run", allocs)
	}
	rng := rand.New(rand.NewSource(3))
	a, bs := randSeq(n, rng), randSeq(n, rng)
	h := matrix.New(n+1, n+1)
	if allocs := testing.AllocsPerRun(10, func() { SW(h, a, bs, DefaultScoring, 1+b, 1+b, b) }); allocs != 0 {
		t.Fatalf("SW allocates %v times per run", allocs)
	}
}
