package chol

import (
	"math/rand"
	"testing"

	"dpflow/internal/core"
	"dpflow/internal/forkjoin"
)

// Full-run allocation budgets (ISSUE 7), the Cholesky counterpart of the
// gates in internal/gep: pooled dispatch keeps a complete tiled
// factorisation's allocation count at graph-construction-plus-boxed-keys
// scale. Budgets are ~2× current measurements at n=128/base=16 (8×8
// tiles); see internal/gep/alloc_test.go for the rationale.
func TestRunAllocBudget(t *testing.T) {
	const n, base, workers = 128, 16, 4
	budget := map[core.Variant]float64{
		core.NativeCnC:  4200, // measured ~2.1k
		core.TunerCnC:   2500, // measured ~1.2k
		core.ManualCnC:  3500, // measured ~1.7k
		core.OMPTasking: 100,  // measured ~11
	}
	pool := forkjoin.NewPool(forkjoin.Config{Workers: workers})
	defer pool.Close()
	src := NewSPD(n, rand.New(rand.NewSource(1)))

	for _, v := range core.ParallelVariants {
		v := v
		run := func() {
			a := src.Clone()
			if v == core.OMPTasking {
				if err := ForkJoin(a, base, pool); err != nil {
					t.Fatal(err)
				}
				return
			}
			if _, err := RunCnC(a, base, workers, v); err != nil {
				t.Fatal(err)
			}
		}
		run() // warm the pools and the runtime
		allocs := testing.AllocsPerRun(3, run)
		t.Logf("CH/%s: %.0f allocs/run (budget %.0f)", v, allocs, budget[v])
		if allocs > budget[v] {
			t.Errorf("CH/%s: %.0f allocs/run exceeds budget %.0f — a pooled dispatch path regressed", v, allocs, budget[v])
		}
	}
}
