package chol

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dpflow/internal/core"
	"dpflow/internal/forkjoin"
	"dpflow/internal/matrix"
)

func TestSerialKnownFactor(t *testing.T) {
	// A = [[4, 12, -16], [12, 37, -43], [-16, -43, 98]] has the textbook
	// factor L = [[2,0,0],[6,1,0],[-8,5,3]].
	a := matrix.FromRows([][]float64{
		{4, 12, -16},
		{12, 37, -43},
		{-16, -43, 98},
	})
	if err := Serial(a); err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{2}, {6, 1}, {-8, 5, 3}}
	for i, row := range want {
		for j, v := range row {
			if a.At(i, j) != v {
				t.Fatalf("L[%d][%d] = %v, want %v", i, j, a.At(i, j), v)
			}
		}
	}
}

func TestSerialRejectsNonSPD(t *testing.T) {
	a := matrix.FromRows([][]float64{{-1, 0}, {0, 1}})
	if err := Serial(a); err == nil {
		t.Fatal("negative pivot accepted")
	}
}

func TestResidualOnSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a0 := NewSPD(32, rng)
	l := a0.Clone()
	if err := Serial(l); err != nil {
		t.Fatal(err)
	}
	if r := Residual(l, a0); r > 1e-10 {
		t.Fatalf("residual %g", r)
	}
}

// Every driver must produce a bit-identical factor: the kernels apply the
// same per-element operations in the same order.
func TestAllVariantsAgree(t *testing.T) {
	pool := forkjoin.NewPool(forkjoin.Config{Workers: 3})
	defer pool.Close()
	rng := rand.New(rand.NewSource(2))
	a0 := NewSPD(64, rng)

	ref := a0.Clone()
	if err := TiledSerial(ref, 8); err != nil {
		t.Fatal(err)
	}
	if r := Residual(ref, a0); r > 1e-9 {
		t.Fatalf("tiled-serial residual %g", r)
	}

	for _, v := range []core.Variant{core.OMPTasking, core.NativeCnC,
		core.TunerCnC, core.ManualCnC, core.NonBlockingCnC} {
		for _, base := range []int{8, 16, 64} {
			x := a0.Clone()
			if err := Run(v, x, base, 3, pool); err != nil {
				t.Fatalf("%v base=%d: %v", v, base, err)
			}
			want := a0.Clone()
			if err := TiledSerial(want, base); err != nil {
				t.Fatal(err)
			}
			if !matrix.Equal(x, want) {
				t.Fatalf("%v base=%d: factor differs from tiled serial (maxdiff %g)",
					v, base, matrix.MaxAbsDiff(x, want))
			}
		}
	}
}

// Element-wise Serial and the tiled algorithm agree on the lower triangle
// (the strict upper triangle is untouched input in both).
func TestTiledMatchesElementwise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a0 := NewSPD(32, rng)
	el := a0.Clone()
	if err := Serial(el); err != nil {
		t.Fatal(err)
	}
	for _, base := range []int{1, 4, 32} {
		ti := a0.Clone()
		if err := TiledSerial(ti, base); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 32; i++ {
			for j := 0; j <= i; j++ {
				if math.Abs(ti.At(i, j)-el.At(i, j)) > 1e-9 {
					t.Fatalf("base=%d: L[%d][%d] %v vs %v", base, i, j, ti.At(i, j), el.At(i, j))
				}
			}
		}
	}
}

// Property: for random SPD matrices, the CnC factor reconstructs A.
func TestFactorProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a0 := NewSPD(16, rng)
		l := a0.Clone()
		if _, err := RunCnC(l, 4, 2, core.NativeCnC); err != nil {
			return false
		}
		return Residual(l, a0) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestValidationAndDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if err := TiledSerial(matrix.New(4, 6), 2); err == nil {
		t.Error("non-square accepted")
	}
	if err := TiledSerial(NewSPD(16, rng), 0); err == nil {
		t.Error("base 0 accepted")
	}
	if err := Run(core.OMPTasking, NewSPD(16, rng), 4, 2, nil); err == nil {
		t.Error("OMPTasking without pool accepted")
	}
	if err := Run(core.Variant(77), NewSPD(16, rng), 4, 2, nil); err == nil {
		t.Error("unknown variant accepted")
	}
	a := NewSPD(16, rng)
	if err := Run(core.SerialLoop, a, 4, 2, nil); err != nil {
		t.Fatal(err)
	}
}

// The CnC variants must surface the non-SPD error through the graph.
func TestCnCPropagatesFactorError(t *testing.T) {
	a := matrix.NewSquare(16) // all zeros: first pivot fails
	_, err := RunCnC(a, 4, 2, core.NativeCnC)
	if err == nil {
		t.Fatal("zero matrix factored without error")
	}
}

// Task census: tetrahedral number of tasks T(T+1)(T+2)/6 ... counted
// directly: Σ_K (1 + (T-1-K) + (T-K)(T-K-1)/2 + (T-K-1)) tiles.
func TestTaskCensus(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := NewSPD(64, rng)
	stats, err := RunCnC(a, 8, 2, core.ManualCnC)
	if err != nil {
		t.Fatal(err)
	}
	tiles := 8
	want := 0
	for k := 0; k < tiles; k++ {
		r := tiles - k - 1        // rows below the diagonal tile
		want += 1 + r + r*(r+1)/2 // potrf + trsms + updates
	}
	if stats.BaseTasks != want {
		t.Fatalf("BaseTasks = %d, want %d", stats.BaseTasks, want)
	}
	if stats.Aborts != 0 {
		t.Fatalf("manual variant aborted %d times", stats.Aborts)
	}
}
