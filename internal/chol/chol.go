// Package chol implements tiled Cholesky factorisation — the flagship CnC
// case study of the paper's related work (§V: Chandramowlishwaran et al.
// matched or beat MKL with a CnC Cholesky; Budimlić et al. used it to show
// CnC thread scaling). It factors a symmetric positive-definite matrix A
// into L·Lᵀ with the classic three-kernel tile algorithm:
//
//	POTRF(K):      Cholesky of diagonal tile (K,K)
//	TRSM(I,K):     triangular solve of tile (I,K) against L(K,K), I > K
//	UPDATE(I,J,K): A(I,J) -= L(I,K)·L(J,K)ᵀ, K < J <= I
//
// The data-flow dependencies mirror the GE structure (the paper's Fig 2
// family): POTRF(K) ← UPDATE(K,K,K−1); TRSM(I,K) ← POTRF(K) and
// UPDATE(I,K,K−1); UPDATE(I,J,K) ← TRSM(I,K), TRSM(J,K) and
// UPDATE(I,J,K−1). The fork-join version joins after each kernel batch of
// a phase — the right-looking schedule with barriers.
package chol

import (
	"fmt"
	"math"
	"math/rand"

	"dpflow/internal/cnc"
	"dpflow/internal/core"
	"dpflow/internal/forkjoin"
	"dpflow/internal/gep"
	"dpflow/internal/matrix"
)

// NewSPD generates a random symmetric positive-definite n×n matrix
// (B·Bᵀ/n + I for random B), suitable for Cholesky without pivoting.
func NewSPD(n int, rng *rand.Rand) *matrix.Dense {
	b := matrix.NewSquare(n)
	b.FillRandom(rng, -1, 1)
	a := matrix.NewSquare(n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := 0.0
			for k := 0; k < n; k++ {
				sum += b.At(i, k) * b.At(j, k)
			}
			v := sum/float64(n) + boolTo(i == j)
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	return a
}

func boolTo(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Serial factors a in place (lower triangle becomes L; the strict upper
// triangle is left untouched). It returns an error on a non-positive
// pivot (a not SPD).
func Serial(a *matrix.Dense) error {
	n := a.Rows()
	for k := 0; k < n; k++ {
		d := a.At(k, k)
		if d <= 0 {
			return fmt.Errorf("chol: non-positive pivot %g at %d", d, k)
		}
		dk := math.Sqrt(d)
		a.Set(k, k, dk)
		for i := k + 1; i < n; i++ {
			a.Set(i, k, a.At(i, k)/dk)
		}
		for j := k + 1; j < n; j++ {
			ljk := a.At(j, k)
			for i := j; i < n; i++ {
				a.Set(i, j, a.At(i, j)-a.At(i, k)*ljk)
			}
		}
	}
	return nil
}

// The three tile kernels, all operating on the full matrix with global
// tile coordinates and tile side bs. They apply exactly the same
// per-element operations in the same order as Serial, so all drivers
// produce bit-identical factors.

func potrf(a *matrix.Dense, kt, bs int) error {
	lo := kt * bs
	for k := lo; k < lo+bs; k++ {
		d := a.At(k, k)
		if d <= 0 {
			return fmt.Errorf("chol: non-positive pivot %g at %d", d, k)
		}
		dk := math.Sqrt(d)
		a.Set(k, k, dk)
		for i := k + 1; i < lo+bs; i++ {
			a.Set(i, k, a.At(i, k)/dk)
		}
		for j := k + 1; j < lo+bs; j++ {
			ljk := a.At(j, k)
			for i := j; i < lo+bs; i++ {
				a.Set(i, j, a.At(i, j)-a.At(i, k)*ljk)
			}
		}
	}
	return nil
}

func trsm(a *matrix.Dense, it, kt, bs int) {
	iLo, kLo := it*bs, kt*bs
	for k := kLo; k < kLo+bs; k++ {
		dk := a.At(k, k)
		for i := iLo; i < iLo+bs; i++ {
			a.Set(i, k, a.At(i, k)/dk)
		}
		for j := k + 1; j < kLo+bs; j++ {
			ljk := a.At(j, k)
			for i := iLo; i < iLo+bs; i++ {
				a.Set(i, j, a.At(i, j)-a.At(i, k)*ljk)
			}
		}
	}
}

func update(a *matrix.Dense, it, jt, kt, bs int) {
	iLo, jLo, kLo := it*bs, jt*bs, kt*bs
	for k := kLo; k < kLo+bs; k++ {
		for j := jLo; j < jLo+bs; j++ {
			ljk := a.At(j, k)
			iStart := iLo
			if it == jt && j > iStart {
				iStart = j // diagonal tiles update only the lower part
			}
			for i := iStart; i < iLo+bs; i++ {
				a.Set(i, j, a.At(i, j)-a.At(i, k)*ljk)
			}
		}
	}
}

func validate(a *matrix.Dense, base int) error {
	n := a.Rows()
	if n != a.Cols() {
		return fmt.Errorf("chol: matrix must be square, got %dx%d", n, a.Cols())
	}
	if !matrix.IsPow2(n) {
		return fmt.Errorf("chol: side %d must be a power of two", n)
	}
	if base < 1 {
		return fmt.Errorf("chol: base %d must be >= 1", base)
	}
	return nil
}

// TiledSerial runs the right-looking tile algorithm serially.
func TiledSerial(a *matrix.Dense, base int) error {
	if err := validate(a, base); err != nil {
		return err
	}
	bs := gep.BaseSize(a.Rows(), base)
	tiles := a.Rows() / bs
	for k := 0; k < tiles; k++ {
		if err := potrf(a, k, bs); err != nil {
			return err
		}
		for i := k + 1; i < tiles; i++ {
			trsm(a, i, k, bs)
		}
		for j := k + 1; j < tiles; j++ {
			for i := j; i < tiles; i++ {
				update(a, i, j, k, bs)
			}
		}
	}
	return nil
}

// ForkJoin runs the right-looking schedule on the pool with a taskwait
// after the TRSM batch and after the UPDATE batch of each phase.
func ForkJoin(a *matrix.Dense, base int, pool *forkjoin.Pool) error {
	if err := validate(a, base); err != nil {
		return err
	}
	bs := gep.BaseSize(a.Rows(), base)
	tiles := a.Rows() / bs
	var firstErr error
	pool.Run(func(ctx *forkjoin.Ctx) {
		var g forkjoin.Group
		for k := 0; k < tiles; k++ {
			if err := potrf(a, k, bs); err != nil {
				firstErr = err
				return
			}
			for i := k + 1; i < tiles; i++ {
				i := i
				ctx.Spawn(&g, func(*forkjoin.Ctx) { trsm(a, i, k, bs) })
			}
			ctx.Wait(&g)
			for j := k + 1; j < tiles; j++ {
				for i := j; i < tiles; i++ {
					i, j := i, j
					ctx.Spawn(&g, func(*forkjoin.Ctx) { update(a, i, j, k, bs) })
				}
			}
			ctx.Wait(&g)
		}
	})
	return firstErr
}

// Tag identifies one tile task: Kind 0 = POTRF, 1 = TRSM, 2 = UPDATE.
type Tag struct {
	Kind    int
	I, J, K int
}

// Key identifies a finished tile state in the item collection.
type Key struct {
	Kind    int
	I, J, K int
}

// RunCnC runs the data-flow Cholesky: three step collections with the
// dependency structure above, items at base-tile granularity.
func RunCnC(a *matrix.Dense, base, workers int, variant core.Variant) (gep.CnCStats, error) {
	if err := validate(a, base); err != nil {
		return gep.CnCStats{}, err
	}
	bs := gep.BaseSize(a.Rows(), base)
	tiles := a.Rows() / bs

	g := cnc.NewGraph("chol-"+variant.String(), workers)
	out := cnc.NewItemCollection[Key, bool](g, "tile_outputs")
	tags := cnc.NewTagCollection[Tag](g, "tasks", false)

	const (
		kindPotrf = iota
		kindTrsm
		kindUpdate
	)
	await := func(k Key) bool {
		if variant == core.NonBlockingCnC {
			_, ok := out.TryGet(k)
			return ok
		}
		out.Get(k)
		return true
	}
	// prevUpdate is the write-write dependency on the same tile's previous
	// phase (absent at K == 0).
	prevUpdate := func(i, j, k int) (Key, bool) {
		if k == 0 {
			return Key{}, false
		}
		return Key{kindUpdate, i, j, k - 1}, true
	}
	step := cnc.NewStepCollection(g, "cholTask", func(t Tag) error {
		switch t.Kind {
		case kindPotrf:
			if p, ok := prevUpdate(t.K, t.K, t.K); ok && !await(p) {
				tags.Put(t)
				return nil
			}
			if err := potrf(a, t.K, bs); err != nil {
				return err
			}
			out.Put(Key{kindPotrf, t.K, t.K, t.K}, true)
		case kindTrsm:
			if !await(Key{kindPotrf, t.K, t.K, t.K}) {
				tags.Put(t)
				return nil
			}
			if p, ok := prevUpdate(t.I, t.K, t.K); ok && !await(p) {
				tags.Put(t)
				return nil
			}
			trsm(a, t.I, t.K, bs)
			out.Put(Key{kindTrsm, t.I, t.K, t.K}, true)
		default:
			ok := await(Key{kindTrsm, t.I, t.K, t.K}) && await(Key{kindTrsm, t.J, t.K, t.K})
			if ok {
				if p, pOK := prevUpdate(t.I, t.J, t.K); pOK {
					ok = await(p)
				}
			}
			if !ok {
				tags.Put(t)
				return nil
			}
			update(a, t.I, t.J, t.K, bs)
			out.Put(Key{kindUpdate, t.I, t.J, t.K}, true)
		}
		return nil
	})
	step.Consumes(out).Produces(out)

	deps := func(t Tag) []cnc.Dep {
		var ds []cnc.Dep
		add := func(k Key) { ds = append(ds, out.Key(k)) }
		switch t.Kind {
		case kindPotrf:
			if p, ok := prevUpdate(t.K, t.K, t.K); ok {
				add(p)
			}
		case kindTrsm:
			add(Key{kindPotrf, t.K, t.K, t.K})
			if p, ok := prevUpdate(t.I, t.K, t.K); ok {
				add(p)
			}
		default:
			add(Key{kindTrsm, t.I, t.K, t.K})
			if t.J != t.I {
				add(Key{kindTrsm, t.J, t.K, t.K})
			}
			if p, ok := prevUpdate(t.I, t.J, t.K); ok {
				add(p)
			}
		}
		return ds
	}
	switch variant {
	case core.TunerCnC:
		step.WithDeps(cnc.TunedPrescheduled, deps)
	case core.ManualCnC:
		step.WithDeps(cnc.TunedTriggered, deps)
	}
	tags.Prescribe(step)

	err := g.Run(func() {
		for k := 0; k < tiles; k++ {
			tags.Put(Tag{kindPotrf, k, k, k})
			for i := k + 1; i < tiles; i++ {
				tags.Put(Tag{kindTrsm, i, k, k})
			}
			for j := k + 1; j < tiles; j++ {
				for i := j; i < tiles; i++ {
					tags.Put(Tag{kindUpdate, i, j, k})
				}
			}
		}
	})
	stats := gep.CnCStats{Stats: g.Stats(), BaseTasks: out.Len()}
	return stats, err
}

// Run dispatches any variant (SerialLoop = element-wise Serial).
func Run(v core.Variant, a *matrix.Dense, base, workers int, pool *forkjoin.Pool) error {
	switch v {
	case core.SerialLoop:
		return Serial(a)
	case core.SerialRDP:
		return TiledSerial(a, base)
	case core.OMPTasking:
		if pool == nil {
			return fmt.Errorf("chol: OMPTasking requires a fork-join pool")
		}
		return ForkJoin(a, base, pool)
	case core.NativeCnC, core.TunerCnC, core.ManualCnC, core.NonBlockingCnC:
		_, err := RunCnC(a, base, workers, v)
		return err
	default:
		return fmt.Errorf("chol: unsupported variant %v", v)
	}
}

// Residual returns max |(L·Lᵀ − A0)[i][j]| over the lower triangle, where
// l is a factored matrix and a0 the original — the end-to-end correctness
// measure.
func Residual(l, a0 *matrix.Dense) float64 {
	n := l.Rows()
	max := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := 0.0
			for k := 0; k <= j; k++ {
				sum += l.At(i, k) * l.At(j, k)
			}
			if d := math.Abs(sum - a0.At(i, j)); d > max {
				max = d
			}
		}
	}
	return max
}
