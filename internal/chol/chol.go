// Package chol implements tiled Cholesky factorisation — the flagship CnC
// case study of the paper's related work (§V: Chandramowlishwaran et al.
// matched or beat MKL with a CnC Cholesky; Budimlić et al. used it to show
// CnC thread scaling). It factors a symmetric positive-definite matrix A
// into L·Lᵀ with the classic three-kernel tile algorithm:
//
//	POTRF(K):      Cholesky of diagonal tile (K,K)
//	TRSM(I,K):     triangular solve of tile (I,K) against L(K,K), I > K
//	UPDATE(I,J,K): A(I,J) -= L(I,K)·L(J,K)ᵀ, K < J <= I
//
// The data-flow dependencies mirror the GE structure (the paper's Fig 2
// family): POTRF(K) ← UPDATE(K,K,K−1); TRSM(I,K) ← POTRF(K) and
// UPDATE(I,K,K−1); UPDATE(I,J,K) ← TRSM(I,K), TRSM(J,K) and
// UPDATE(I,J,K−1). The fork-join version joins after each kernel batch of
// a phase — the right-looking schedule with barriers.
package chol

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"dpflow/internal/cnc"
	"dpflow/internal/core"
	"dpflow/internal/determinacy"
	"dpflow/internal/forkjoin"
	"dpflow/internal/gep"
	"dpflow/internal/matrix"
)

// NewSPD generates a random symmetric positive-definite n×n matrix
// (B·Bᵀ/n + I for random B), suitable for Cholesky without pivoting.
func NewSPD(n int, rng *rand.Rand) *matrix.Dense {
	b := matrix.NewSquare(n)
	b.FillRandom(rng, -1, 1)
	a := matrix.NewSquare(n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := 0.0
			for k := 0; k < n; k++ {
				sum += b.At(i, k) * b.At(j, k)
			}
			v := sum/float64(n) + boolTo(i == j)
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	return a
}

func boolTo(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Serial factors a in place (lower triangle becomes L; the strict upper
// triangle is left untouched). It returns an error on a non-positive
// pivot (a not SPD).
func Serial(a *matrix.Dense) error {
	n := a.Rows()
	for k := 0; k < n; k++ {
		d := a.At(k, k)
		if d <= 0 {
			return fmt.Errorf("chol: non-positive pivot %g at %d", d, k)
		}
		dk := math.Sqrt(d)
		a.Set(k, k, dk)
		for i := k + 1; i < n; i++ {
			a.Set(i, k, a.At(i, k)/dk)
		}
		for j := k + 1; j < n; j++ {
			ljk := a.At(j, k)
			for i := j; i < n; i++ {
				a.Set(i, j, a.At(i, j)-a.At(i, k)*ljk)
			}
		}
	}
	return nil
}

// The three tile kernels, all operating on the full matrix with global
// tile coordinates and tile side bs. They apply exactly the same
// per-element operations in the same order as Serial, so all drivers
// produce bit-identical factors.

func potrf(a *matrix.Dense, kt, bs int) error {
	lo := kt * bs
	for k := lo; k < lo+bs; k++ {
		d := a.At(k, k)
		if d <= 0 {
			return fmt.Errorf("chol: non-positive pivot %g at %d", d, k)
		}
		dk := math.Sqrt(d)
		a.Set(k, k, dk)
		for i := k + 1; i < lo+bs; i++ {
			a.Set(i, k, a.At(i, k)/dk)
		}
		for j := k + 1; j < lo+bs; j++ {
			ljk := a.At(j, k)
			for i := j; i < lo+bs; i++ {
				a.Set(i, j, a.At(i, j)-a.At(i, k)*ljk)
			}
		}
	}
	return nil
}

func trsm(a *matrix.Dense, it, kt, bs int) {
	iLo, kLo := it*bs, kt*bs
	for k := kLo; k < kLo+bs; k++ {
		dk := a.At(k, k)
		for i := iLo; i < iLo+bs; i++ {
			a.Set(i, k, a.At(i, k)/dk)
		}
		for j := k + 1; j < kLo+bs; j++ {
			ljk := a.At(j, k)
			for i := iLo; i < iLo+bs; i++ {
				a.Set(i, j, a.At(i, j)-a.At(i, k)*ljk)
			}
		}
	}
}

func update(a *matrix.Dense, it, jt, kt, bs int) {
	iLo, jLo, kLo := it*bs, jt*bs, kt*bs
	for k := kLo; k < kLo+bs; k++ {
		for j := jLo; j < jLo+bs; j++ {
			ljk := a.At(j, k)
			iStart := iLo
			if it == jt && j > iStart {
				iStart = j // diagonal tiles update only the lower part
			}
			for i := iStart; i < iLo+bs; i++ {
				a.Set(i, j, a.At(i, j)-a.At(i, k)*ljk)
			}
		}
	}
}

func validate(a *matrix.Dense, base int) error {
	n := a.Rows()
	if n != a.Cols() {
		return fmt.Errorf("chol: matrix must be square, got %dx%d", n, a.Cols())
	}
	if !matrix.IsPow2(n) {
		return fmt.Errorf("chol: side %d must be a power of two", n)
	}
	if base < 1 {
		return fmt.Errorf("chol: base %d must be >= 1", base)
	}
	return nil
}

// TiledSerial runs the right-looking tile algorithm serially.
func TiledSerial(a *matrix.Dense, base int) error {
	if err := validate(a, base); err != nil {
		return err
	}
	bs := gep.BaseSize(a.Rows(), base)
	tiles := a.Rows() / bs
	for k := 0; k < tiles; k++ {
		if err := potrf(a, k, bs); err != nil {
			return err
		}
		for i := k + 1; i < tiles; i++ {
			trsm(a, i, k, bs)
		}
		for j := k + 1; j < tiles; j++ {
			for i := j; i < tiles; i++ {
				update(a, i, j, k, bs)
			}
		}
	}
	return nil
}

// ForkJoin runs the right-looking schedule on the pool with a taskwait
// after the TRSM batch and after the UPDATE batch of each phase.
func ForkJoin(a *matrix.Dense, base int, pool *forkjoin.Pool) error {
	return ForkJoinContext(context.Background(), a, base, pool, nil)
}

// ForkJoinContext is ForkJoin with cooperative cancellation (a cancelled
// ctx unwinds the recursion and returns ctx.Err() with a partial factor)
// and an optional trace hook: when non-nil, trace brackets every tile
// kernel invocation — the returned func is called when the kernel finishes
// (the sched report's utilisation probe).
func ForkJoinContext(ctx context.Context, a *matrix.Dense, base int, pool *forkjoin.Pool, trace func() func()) error {
	if err := validate(a, base); err != nil {
		return err
	}
	bs := gep.BaseSize(a.Rows(), base)
	tiles := a.Rows() / bs
	span := traceFn(trace)
	r := &fjChol{a: a, bs: bs, span: span}
	var firstErr error
	err := pool.RunContext(ctx, func(fjc *forkjoin.Ctx) {
		var g forkjoin.Group
		for k := 0; k < tiles; k++ {
			declareRace(fjc, k, k)
			done := span()
			err := potrf(a, k, bs)
			done()
			if err != nil {
				firstErr = err
				return
			}
			for i := k + 1; i < tiles; i++ {
				fjc.SpawnCall(&g, cholCallTrsm, r, [4]int{i, k})
			}
			fjc.Wait(&g)
			for j := k + 1; j < tiles; j++ {
				for i := j; i < tiles; i++ {
					fjc.SpawnCall(&g, cholCallUpdate, r, [4]int{i, j, k})
				}
			}
			fjc.Wait(&g)
		}
	})
	if err != nil {
		return err
	}
	return firstErr
}

// fjChol bundles the per-run state of the fork-join schedule so the TRSM
// and UPDATE batches — the O(tiles²) and O(tiles³) spawn sites — go through
// the closure-free SpawnCall trampolines.
type fjChol struct {
	a    *matrix.Dense
	bs   int
	span func() func()
}

func cholCallTrsm(c *forkjoin.Ctx, recv any, t [4]int) {
	r := recv.(*fjChol)
	i, k := t[0], t[1]
	declareRace(c, i, k, [2]int{k, k})
	done := r.span()
	trsm(r.a, i, k, r.bs)
	done()
}

func cholCallUpdate(c *forkjoin.Ctx, recv any, t [4]int) {
	r := recv.(*fjChol)
	i, j, k := t[0], t[1], t[2]
	declareRace(c, i, j, [2]int{i, k}, [2]int{j, k})
	done := r.span()
	update(r.a, i, j, k, r.bs)
	done()
}

// declareRace reports one tile kernel's access set — written tile (wi, wj)
// plus the read tiles — to the pool's race detector when the run is
// race-checked. Reads equal to the written tile are implied and skipped.
func declareRace(c *forkjoin.Ctx, wi, wj int, reads ...[2]int) {
	f := c.Race()
	if f == nil {
		return
	}
	w := determinacy.TileCell(wi, wj)
	f.Write(w)
	for _, r := range reads {
		if cell := determinacy.TileCell(r[0], r[1]); cell != w {
			f.Read(cell)
		}
	}
}

// traceFn normalises an optional trace hook into an always-callable span
// opener.
func traceFn(trace func() func()) func() func() {
	if trace == nil {
		return func() func() { return func() {} }
	}
	return trace
}

// Tag identifies one tile task: Kind 0 = POTRF, 1 = TRSM, 2 = UPDATE.
type Tag struct {
	Kind    int
	I, J, K int
}

// Key identifies a finished tile state in the item collection.
type Key struct {
	Kind    int
	I, J, K int
}

// The task/item kinds of the Tag.Kind / Key.Kind fields.
const (
	KindPotrf = iota
	KindTrsm
	KindUpdate
)

// RunConfig bundles the optional knobs of a CnC Cholesky run.
type RunConfig struct {
	// Workers is the CnC worker count.
	Workers int
	// Tune, when non-nil, receives the built graph before the run starts —
	// the chaos harness's fault-injection and the memory report's
	// WithMemoryLimit hook.
	Tune func(*cnc.Graph)
	// Trace, when non-nil, brackets every tile kernel invocation.
	Trace func() func()
}

// NewCnCGraph builds the static CnC structure of the Cholesky program —
// one step collection prescribed by one tag collection, synchronised
// through one item collection of finished tile states — without running
// it (cmd/cncgraph's description and DOT renderings).
func NewCnCGraph(name string) *cnc.Graph {
	g := cnc.NewGraph(name, 1)
	out := cnc.NewItemCollection[Key, bool](g, "tile_outputs")
	tags := cnc.NewTagCollection[Tag](g, "tasks", false)
	step := cnc.NewStepCollection(g, "cholTask", func(Tag) error { return nil })
	step.Consumes(out).Produces(out)
	tags.Prescribe(step)
	return g
}

// RunCnC runs the data-flow Cholesky: one step collection with the
// dependency structure above, items at base-tile granularity.
func RunCnC(a *matrix.Dense, base, workers int, variant core.Variant) (gep.CnCStats, error) {
	return RunCnCContext(context.Background(), a, base, workers, variant, nil)
}

// RunCnCContext is RunCnC with cooperative cancellation and the tune hook
// (see RunConfig.Tune).
func RunCnCContext(ctx context.Context, a *matrix.Dense, base, workers int, variant core.Variant, tune func(*cnc.Graph)) (gep.CnCStats, error) {
	return RunCnCConfigured(ctx, a, base, variant, RunConfig{Workers: workers, Tune: tune})
}

// RunCnCConfigured is the full-control entry point behind RunCnC.
//
// For the GC-enabled schedules (everything but NonBlockingCnC) it declares
// the memory contract: every tile receipt's consumer count is known in
// closed form, so get-count GC frees it as its last reader completes and
// Graph.WithMemoryLimit can throttle the environment's tag sprint. With
// T = tiles per side the consumer counts are
//
//   - POTRF(k): one per TRSM(i,k), i > k → T−1−k (the last diagonal frees
//     on put);
//   - TRSM(i,k): the UPDATEs of row i (i−k of them, counting the diagonal
//     task once) plus those of column i below the diagonal (T−1−i)
//     → T−k−1;
//   - UPDATE(i,j,k): exactly the phase-k+1 task on tile (i,j), which always
//     exists (j ≥ k+1) → 1.
//
// The diagonal UPDATE's step body blocking-gets TRSM(i,k) twice (as row and
// column factor), but releases fire per declared dependency at completion,
// not per Get, so the deduplicated deps list below is also the exact
// release set.
func RunCnCConfigured(ctx context.Context, a *matrix.Dense, base int, variant core.Variant, cfg RunConfig) (gep.CnCStats, error) {
	if err := validate(a, base); err != nil {
		return gep.CnCStats{}, err
	}
	bs := gep.BaseSize(a.Rows(), base)
	tiles := a.Rows() / bs

	g := cnc.NewGraph("chol-"+variant.String(), cfg.Workers)
	out := cnc.NewItemCollection[Key, bool](g, "tile_outputs")
	tags := cnc.NewTagCollection[Tag](g, "tasks", false)
	span := traceFn(cfg.Trace)

	await := func(k Key) bool {
		if variant == core.NonBlockingCnC {
			_, ok := out.TryGet(k)
			return ok
		}
		out.Get(k)
		return true
	}
	// prevUpdate is the write-write dependency on the same tile's previous
	// phase (absent at K == 0).
	prevUpdate := func(i, j, k int) (Key, bool) {
		if k == 0 {
			return Key{}, false
		}
		return Key{KindUpdate, i, j, k - 1}, true
	}
	step := cnc.NewStepCollection(g, "cholTask", func(t Tag) error {
		switch t.Kind {
		case KindPotrf:
			if p, ok := prevUpdate(t.K, t.K, t.K); ok && !await(p) {
				tags.Put(t)
				return nil
			}
			done := span()
			err := potrf(a, t.K, bs)
			done()
			if err != nil {
				return err
			}
			out.Put(Key{KindPotrf, t.K, t.K, t.K}, true)
		case KindTrsm:
			if !await(Key{KindPotrf, t.K, t.K, t.K}) {
				tags.Put(t)
				return nil
			}
			if p, ok := prevUpdate(t.I, t.K, t.K); ok && !await(p) {
				tags.Put(t)
				return nil
			}
			done := span()
			trsm(a, t.I, t.K, bs)
			done()
			out.Put(Key{KindTrsm, t.I, t.K, t.K}, true)
		default:
			ok := await(Key{KindTrsm, t.I, t.K, t.K}) && await(Key{KindTrsm, t.J, t.K, t.K})
			if ok {
				if p, pOK := prevUpdate(t.I, t.J, t.K); pOK {
					ok = await(p)
				}
			}
			if !ok {
				tags.Put(t)
				return nil
			}
			done := span()
			update(a, t.I, t.J, t.K, bs)
			done()
			out.Put(Key{KindUpdate, t.I, t.J, t.K}, true)
		}
		return nil
	})
	step.Consumes(out).Produces(out)

	deps := func(t Tag) []cnc.Dep {
		var ds []cnc.Dep
		add := func(k Key) { ds = append(ds, out.Key(k)) }
		switch t.Kind {
		case KindPotrf:
			if p, ok := prevUpdate(t.K, t.K, t.K); ok {
				add(p)
			}
		case KindTrsm:
			add(Key{KindPotrf, t.K, t.K, t.K})
			if p, ok := prevUpdate(t.I, t.K, t.K); ok {
				add(p)
			}
		default:
			add(Key{KindTrsm, t.I, t.K, t.K})
			if t.J != t.I {
				add(Key{KindTrsm, t.J, t.K, t.K})
			}
			if p, ok := prevUpdate(t.I, t.J, t.K); ok {
				add(p)
			}
		}
		return ds
	}
	switch variant {
	case core.TunerCnC:
		step.WithDeps(cnc.TunedPrescheduled, deps)
	case core.ManualCnC:
		step.WithDeps(cnc.TunedTriggered, deps)
	}
	tags.Prescribe(step)

	// Memory contract (consumer counts derived in the doc comment above).
	// NonBlockingCnC is excluded: its poll-miss re-put retires one
	// successful step instance per poll, which would release the declared
	// read set once per poll instead of once per tile.
	if variant != core.NonBlockingCnC {
		tile := bs * bs * 8
		out.WithGetCount(func(k Key) int {
			switch k.Kind {
			case KindPotrf:
				return tiles - 1 - k.K
			case KindTrsm:
				return tiles - k.K - 1
			default: // KindUpdate
				return 1
			}
		}).WithSizeOf(func(Key) int { return tile })
		step.WithGets(deps)
		// Every tag is a base task here (the environment expands the task
		// space itself), so each admitted tag materialises one tile.
		tags.WithTagBytes(func(Tag) int { return tile })
	}
	if cfg.Tune != nil {
		cfg.Tune(g)
	}

	err := g.RunContext(ctx, func() {
		// One burst per elimination phase: each phase's O(tiles²) tags hit
		// the queue in one batched push and wakeup pass. Under a memory
		// limit the throttled path defers tags individually as before.
		for k := 0; k < tiles; k++ {
			bu := g.NewBurst()
			tags.PutThrottledInto(Tag{KindPotrf, k, k, k}, bu)
			for i := k + 1; i < tiles; i++ {
				tags.PutThrottledInto(Tag{KindTrsm, i, k, k}, bu)
			}
			for j := k + 1; j < tiles; j++ {
				for i := j; i < tiles; i++ {
					tags.PutThrottledInto(Tag{KindUpdate, i, j, k}, bu)
				}
			}
			bu.Flush()
		}
	})
	// Puts, not Len: with get-counts active Len is the *live* census and
	// drops to zero as tiles are garbage-collected.
	stats := gep.CnCStats{Stats: g.Stats(), BaseTasks: int(out.Puts())}
	return stats, err
}

// Run dispatches any variant (SerialLoop = element-wise Serial).
func Run(v core.Variant, a *matrix.Dense, base, workers int, pool *forkjoin.Pool) error {
	switch v {
	case core.SerialLoop:
		return Serial(a)
	case core.SerialRDP:
		return TiledSerial(a, base)
	case core.OMPTasking:
		if pool == nil {
			return fmt.Errorf("chol: OMPTasking requires a fork-join pool")
		}
		return ForkJoin(a, base, pool)
	case core.NativeCnC, core.TunerCnC, core.ManualCnC, core.NonBlockingCnC:
		_, err := RunCnC(a, base, workers, v)
		return err
	default:
		return fmt.Errorf("chol: unsupported variant %v", v)
	}
}

// Residual returns max |(L·Lᵀ − A0)[i][j]| over the lower triangle, where
// l is a factored matrix and a0 the original — the end-to-end correctness
// measure.
func Residual(l, a0 *matrix.Dense) float64 {
	n := l.Rows()
	max := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := 0.0
			for k := 0; k <= j; k++ {
				sum += l.At(i, k) * l.At(j, k)
			}
			if d := math.Abs(sum - a0.At(i, j)); d > max {
				max = d
			}
		}
	}
	return max
}
