package chol

import (
	"context"
	"math/rand"
	"testing"

	"dpflow/internal/cnc"
	"dpflow/internal/core"
	"dpflow/internal/matrix"
)

// TestCnCLeakFree checks the Cholesky memory contract across the three
// schedules that declare get-counts: after a successful run every tile
// receipt must have been garbage-collected (a too-high declared count would
// leave LiveItems > 0; a too-low one fails the run with a use-after-free or
// over-release), the factor must still be bit-identical to the tiled serial
// reference, and the live high-water mark must sit strictly below the total
// put count.
func TestCnCLeakFree(t *testing.T) {
	for _, v := range []core.Variant{core.NativeCnC, core.TunerCnC, core.ManualCnC} {
		t.Run(v.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			orig := NewSPD(64, rng)
			ref := orig.Clone()
			if err := TiledSerial(ref, 8); err != nil {
				t.Fatal(err)
			}

			x := orig.Clone()
			stats, err := RunCnC(x, 8, 3, v)
			if err != nil {
				t.Fatal(err)
			}
			if !matrix.Equal(x, ref) {
				t.Fatalf("factor disagrees with tiled serial (maxdiff %g)", matrix.MaxAbsDiff(x, ref))
			}
			if stats.LiveItems != 0 {
				t.Fatalf("LiveItems = %d after quiesce, want 0 (declared get-counts too high)", stats.LiveItems)
			}
			if stats.ItemsFreed != int64(stats.ItemsPut) {
				t.Fatalf("ItemsFreed = %d, want %d", stats.ItemsFreed, stats.ItemsPut)
			}
			if stats.PeakLiveItems >= int64(stats.ItemsPut) {
				t.Fatalf("PeakLiveItems = %d, want < %d (no item ever died)", stats.PeakLiveItems, stats.ItemsPut)
			}
		})
	}
}

// TestNonBlockingExcludedFromGC pins the NonBlockingCnC carve-out: its
// poll-miss re-put retires one successful step instance per poll, so
// completion-time releases would over-release. The variant therefore runs
// without get-counts — nothing freed, everything live at quiesce.
func TestNonBlockingExcludedFromGC(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := NewSPD(32, rng)
	stats, err := RunCnC(x, 4, 3, core.NonBlockingCnC)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ItemsFreed != 0 {
		t.Fatalf("ItemsFreed = %d, want 0 (NonBlocking must not declare get-counts)", stats.ItemsFreed)
	}
	if stats.LiveItems != int64(stats.ItemsPut) {
		t.Fatalf("LiveItems = %d, want %d", stats.LiveItems, stats.ItemsPut)
	}
}

// TestBoundedMemoryCH runs Cholesky under a memory limit derived from its
// own unbounded peak: the feasible budget must hold strictly (stalls 0,
// peak <= limit) and the infeasible half-peak budget must degrade — stalls
// reported, run still correct — instead of deadlocking.
func TestBoundedMemoryCH(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	orig := NewSPD(256, rng)
	ref := orig.Clone()
	if err := TiledSerial(ref, 16); err != nil {
		t.Fatal(err)
	}

	x := orig.Clone()
	unbounded, err := RunCnC(x, 16, 4, core.NativeCnC)
	if err != nil {
		t.Fatal(err)
	}
	if unbounded.LiveItems != 0 {
		t.Fatalf("unbounded: LiveItems = %d, want 0", unbounded.LiveItems)
	}
	if unbounded.PeakLiveBytes == 0 {
		t.Fatal("unbounded: PeakLiveBytes = 0; SizeOf hints not wired")
	}
	if !matrix.Equal(x, ref) {
		t.Fatalf("unbounded factor disagrees with tiled serial (maxdiff %g)", matrix.MaxAbsDiff(x, ref))
	}

	limit := unbounded.PeakLiveBytes * 95 / 100
	y := orig.Clone()
	bounded, err := RunCnCContext(context.Background(), y, 16, 4, core.NativeCnC,
		func(g *cnc.Graph) { g.WithMemoryLimit(limit) })
	if err != nil {
		t.Fatal(err)
	}
	if bounded.PeakLiveBytes > limit {
		t.Fatalf("bounded: PeakLiveBytes = %d, want <= %d", bounded.PeakLiveBytes, limit)
	}
	if bounded.BackpressureStalls != 0 {
		t.Fatalf("bounded: BackpressureStalls = %d, want 0 (budget was feasible)", bounded.BackpressureStalls)
	}
	if !matrix.Equal(y, ref) {
		t.Fatalf("bounded factor disagrees with tiled serial (maxdiff %g)", matrix.MaxAbsDiff(y, ref))
	}

	tight := unbounded.PeakLiveBytes / 2
	z := orig.Clone()
	degraded, err := RunCnCContext(context.Background(), z, 16, 4, core.NativeCnC,
		func(g *cnc.Graph) { g.WithMemoryLimit(tight) })
	if err != nil {
		t.Fatal(err)
	}
	if degraded.BackpressureStalls == 0 {
		t.Fatal("degraded: BackpressureStalls = 0, want > 0 (half-peak budget is infeasible)")
	}
	if degraded.LiveItems != 0 {
		t.Fatalf("degraded: LiveItems = %d, want 0", degraded.LiveItems)
	}
	if !matrix.Equal(z, ref) {
		t.Fatalf("degraded factor disagrees with tiled serial (maxdiff %g)", matrix.MaxAbsDiff(z, ref))
	}
}
