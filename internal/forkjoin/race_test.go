package forkjoin_test

import (
	"strings"
	"testing"

	"dpflow/internal/determinacy"
	"dpflow/internal/forkjoin"
)

// TestRaceDetectionCleanProgram runs a well-synchronised fork-join program
// under detection: spawned writers touch disjoint cells, a Wait joins them,
// then the parent reads everything. No race may be reported, and the
// detector must show it actually checked accesses.
func TestRaceDetectionCleanProgram(t *testing.T) {
	p := forkjoin.NewPool(forkjoin.Config{Workers: 4, Seed: 1})
	defer p.Close()
	d := determinacy.NewDetector()
	p.WithRaceDetection(d)

	p.Run(func(c *forkjoin.Ctx) {
		var g forkjoin.Group
		for i := 0; i < 8; i++ {
			i := i
			c.Spawn(&g, func(cc *forkjoin.Ctx) {
				cc.Race().Write(determinacy.TileCell(i, 0))
			})
		}
		c.Wait(&g)
		f := c.Race()
		for i := 0; i < 8; i++ {
			f.Read(determinacy.TileCell(i, 0))
		}
	})
	if err := d.Err(); err != nil {
		t.Fatalf("clean program reported race: %v", err)
	}
	st := d.Stats()
	if st.Accesses != 16 || st.Tasks != 9 || st.Cells != 8 {
		t.Fatalf("stats = %+v, want 16 accesses / 9 tasks / 8 cells", st)
	}
}

// TestRaceDetectionSeededRace runs the canonical broken program — two
// spawned tasks write the same cell with no Wait between them — and checks
// the detector reports it, naming both tasks by fork path.
func TestRaceDetectionSeededRace(t *testing.T) {
	p := forkjoin.NewPool(forkjoin.Config{Workers: 4, Seed: 1})
	defer p.Close()
	d := determinacy.NewDetector()
	p.WithRaceDetection(d)

	cell := determinacy.TileCell(2, 3)
	p.Run(func(c *forkjoin.Ctx) {
		var g forkjoin.Group
		c.Spawn(&g, func(cc *forkjoin.Ctx) { cc.Race().Write(cell) })
		c.Spawn(&g, func(cc *forkjoin.Ctx) { cc.Race().Write(cell) })
		c.Wait(&g)
	})
	err := d.Err()
	if err == nil {
		t.Fatal("seeded sibling write-write race not detected")
	}
	re, ok := err.(*determinacy.RaceError)
	if !ok {
		t.Fatalf("Err() = %T, want *RaceError", err)
	}
	if re.Cell != "tile(2,3)" {
		t.Errorf("Cell = %q, want tile(2,3)", re.Cell)
	}
	// Whatever order the schedule ran the writers in, the reported pair is
	// the two spawns off the root, named by spawn epoch.
	tasks := []string{re.FirstTask, re.SecondTask}
	for _, task := range tasks {
		if !strings.HasPrefix(task, "root/") {
			t.Errorf("task %q not named by fork path", task)
		}
	}
	if tasks[0] == tasks[1] {
		t.Errorf("race names the same task twice: %v", tasks)
	}
}

// TestRaceDetectionDeterministicReport runs the same seeded race many
// times: the schedule varies (different steal seeds, either writer may
// execute first), but the canonicalised report must be byte-identical on
// every run.
func TestRaceDetectionDeterministicReport(t *testing.T) {
	cell := determinacy.TileCell(0, 0)
	want := "determinacy: race on tile(0,0): write by task root/1:1 is unordered with write by task root/2:1"
	for run := 0; run < 20; run++ {
		p := forkjoin.NewPool(forkjoin.Config{Workers: 4, Seed: int64(run)})
		d := determinacy.NewDetector()
		p.WithRaceDetection(d)
		p.Run(func(c *forkjoin.Ctx) {
			var g forkjoin.Group
			c.Spawn(&g, func(cc *forkjoin.Ctx) { cc.Race().Write(cell) })
			c.Spawn(&g, func(cc *forkjoin.Ctx) { cc.Race().Write(cell) })
			c.Wait(&g)
		})
		p.Close()
		err := d.Err()
		if err == nil {
			t.Fatalf("run %d: race not detected", run)
		}
		if err.Error() != want {
			t.Fatalf("run %d reported %q, want %q", run, err.Error(), want)
		}
	}
}

// TestRaceDetectionPoolReuse checks the detector resets shadow state between
// sequential runs on one pool: the same cells written in two runs are not a
// cross-run race.
func TestRaceDetectionPoolReuse(t *testing.T) {
	p := forkjoin.NewPool(forkjoin.Config{Workers: 2, Seed: 1})
	defer p.Close()
	d := determinacy.NewDetector()
	p.WithRaceDetection(d)
	for run := 0; run < 3; run++ {
		p.Run(func(c *forkjoin.Ctx) {
			var g forkjoin.Group
			c.Spawn(&g, func(cc *forkjoin.Ctx) { cc.Race().Write(determinacy.TileCell(1, 1)) })
			c.Wait(&g)
		})
	}
	if err := d.Err(); err != nil {
		t.Fatalf("sequential pool reuse reported race: %v", err)
	}
}

// TestNoDetectionZeroOverheadPath checks the off-by-default contract:
// without WithRaceDetection, Ctx.Race returns nil and nothing is tracked.
func TestNoDetectionZeroOverheadPath(t *testing.T) {
	p := forkjoin.NewPool(forkjoin.Config{Workers: 2, Seed: 1})
	defer p.Close()
	p.Run(func(c *forkjoin.Ctx) {
		if c.Race() != nil {
			t.Error("Ctx.Race() non-nil without WithRaceDetection")
		}
		var g forkjoin.Group
		c.Spawn(&g, func(cc *forkjoin.Ctx) {
			if cc.Race() != nil {
				t.Error("child Ctx.Race() non-nil without WithRaceDetection")
			}
		})
		c.Wait(&g)
	})
	if p.RaceDetector() != nil {
		t.Error("RaceDetector() non-nil by default")
	}
}
