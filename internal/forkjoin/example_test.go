package forkjoin_test

import (
	"fmt"

	"dpflow/internal/forkjoin"
)

// The Spawn/Wait pair is the analogue of "#pragma omp task" and
// "#pragma omp taskwait": Wait blocks until every task spawned on the
// group has finished — including the artificial dependencies that entails.
func Example() {
	pool := forkjoin.NewPool(forkjoin.Config{Workers: 4})
	defer pool.Close()

	results := make([]int, 4)
	pool.Run(func(ctx *forkjoin.Ctx) {
		var g forkjoin.Group
		for i := range results {
			ctx.Spawn(&g, func(*forkjoin.Ctx) { results[i] = i * i })
		}
		ctx.Wait(&g) // taskwait: all four children are done here
	})
	fmt.Println(results)
	// Output: [0 1 4 9]
}
