// Package forkjoin implements the fork-join execution model the paper's
// OpenMP benchmarks use: per-worker task deques with work stealing, plus
// task groups whose Wait method is the analogue of "#pragma omp taskwait"
// (and of cilk_sync). A Pool's workers are logical: execution is leased
// from the process-wide shared executor (internal/exec), so any number of
// pools — and any mix of pools and CnC graphs — multiplex onto GOMAXPROCS
// physical workers without oversubscription.
//
// The structural property under study — joins acting as barriers over all
// spawned children and thereby introducing artificial dependencies — is
// inherent to the Spawn/Wait API: Wait returns only after every task spawned
// on the group has finished, even when a continuation depends on just one of
// them.
//
// Scheduling follows the classic child-stealing design: a worker pushes
// spawned tasks to the bottom of its own deque and pops from the bottom
// (LIFO, preserving locality), while thieves steal from the top (FIFO,
// stealing the oldest and typically largest sub-computations). A worker
// blocked in Wait helps by draining its own deque and stealing, so waiting
// never idles a worker that could make progress.
//
// Because physical workers are shared, tasks must not block the worker
// waiting on other tasks except through Wait (which helps): a sibling
// barrier inside two tasks can deadlock when one physical worker runs both
// back to back — the same discipline TBB and Java's ForkJoinPool impose.
// Kernels that merely compute (every DP benchmark here) are unaffected.
package forkjoin

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"dpflow/internal/determinacy"
	"dpflow/internal/exec"
)

// Task is a unit of work. The Ctx identifies the worker executing the task
// and must be used for any nested Spawn or Wait.
type Task func(*Ctx)

// ChildPanicError is the panic payload Ctx.Wait re-panics with when a child
// task panicked. Value preserves the child's original panic value, so typed
// payloads — error sentinels, structured diagnostics — survive the group
// boundary instead of being flattened to a string.
type ChildPanicError struct{ Value any }

func (e *ChildPanicError) Error() string {
	return fmt.Sprintf("forkjoin: child task panicked: %v", e.Value)
}

// Unwrap exposes the child's panic value when it was an error, so
// errors.Is and errors.As see through the group boundary.
func (e *ChildPanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// runState is the cancellation state shared by every task of one
// Run/RunContext invocation. Cancellation is cooperative: queued tasks of a
// cancelled run are skipped (their group bookkeeping still retires), and
// Wait unwinds the task tree with a runCancelled panic that RunContext
// recovers at the root.
type runState struct {
	cancelled atomic.Bool
}

// runCancelled is the internal panic payload that unwinds a cancelled run.
// It is deliberately not recorded as a child panic: every stack level
// re-raises its own from Wait, and RunContext translates it to ctx.Err().
type runCancelled struct{}

// ErrConcurrentRun is returned (RunContext) or panicked (Run) when a run is
// started while another run of the same Pool is still in flight. Pools are
// one-run-at-a-time objects: the deques, steal RNGs and race detector are
// all scoped to a single computation. Server clients that want N concurrent
// jobs build N pools — they all lease from the same shared executor, so
// extra pools cost lanes, not goroutines.
var ErrConcurrentRun = errors.New("forkjoin: concurrent Run on the same Pool")

// StealPolicy selects how an idle worker picks victims.
type StealPolicy int

const (
	// StealRandom probes victims in (pseudo) random order; the default, as
	// in Cilk-style runtimes.
	StealRandom StealPolicy = iota
	// StealSequential probes victims in round-robin order starting after
	// the thief; kept as an ablation knob.
	StealSequential
)

// Config controls pool construction.
type Config struct {
	// Workers is the number of logical workers (deques) the pool leases
	// from the shared executor; 0 means GOMAXPROCS. This caps the pool's
	// concurrency — physical worker goroutines belong to the executor.
	Workers int
	// Policy selects the steal order; the zero value is StealRandom.
	Policy StealPolicy
	// Seed seeds the per-worker steal RNGs so runs are reproducible.
	Seed int64
	// Executor is the shared pool to lease from; nil means exec.Default().
	Executor *exec.Executor
}

// Stats is a snapshot of pool activity counters.
type Stats struct {
	Spawned      uint64 // tasks pushed via Spawn or Run
	Executed     uint64 // tasks completed
	Steals       uint64 // successful steals
	FailedProbes uint64 // victim probes that found an empty deque
	Yields       uint64 // scheduler yields while out of work
}

// Pool is a fork-join task pool: per-logical-worker deques leasing
// execution from a shared exec.Executor. Create one with NewPool and
// release it with Close. A Pool may execute any number of Run calls
// sequentially; concurrent Run calls on the same Pool fail loudly with
// ErrConcurrentRun (build one Pool per concurrent job — they multiplex on
// the executor anyway).
type Pool struct {
	workers []*worker
	policy  StealPolicy
	race    *determinacy.Detector

	lease   *exec.Lease
	done    atomic.Bool // Close called: leased slots are gone
	running atomic.Bool // a Run/RunContext is in flight

	// framePool recycles spawn frames and ctxPool the task contexts, so a
	// steady-state run (spawn → steal → execute → retire) allocates
	// nothing beyond deque growth. Frames migrate between workers when
	// stolen, so both pools are pool-wide rather than per-worker.
	framePool sync.Pool
	ctxPool   sync.Pool

	spawned  atomic.Uint64
	executed atomic.Uint64
	steals   atomic.Uint64
	failed   atomic.Uint64
	yields   atomic.Uint64
}

// poolSource adapts a Pool to the executor's Source interface without
// allocating: run up to budget frames on the given logical worker, own
// deque first (LIFO bottom), then steals (FIFO top of a victim).
type poolSource Pool

func (s *poolSource) RunSlot(slot, budget int) int {
	p := (*Pool)(s)
	w := p.workers[slot]
	n := 0
	for n < budget {
		fr := w.pop()
		if fr == nil {
			fr = w.steal()
		}
		if fr == nil {
			break
		}
		w.execute(fr)
		n++
	}
	return n
}

// frame is one pooled spawned task: the body (either a Task closure or the
// allocation-free SpawnCall triple), the group it joins, and the run and
// race-detection state it inherits. Frames live from Spawn to execute and
// are recycled before the body runs.
type frame struct {
	f    Task
	call func(*Ctx, any, [4]int)
	recv any
	args [4]int

	g   *Group
	rs  *runState
	fr  *determinacy.Frame
	seq uint64
}

func (p *Pool) newFrame() *frame {
	fr, _ := p.framePool.Get().(*frame)
	if fr == nil {
		fr = &frame{}
	}
	return fr
}

// fring is a growable circular deque of frames: the owner pushes and pops
// at the back (LIFO, preserving locality), thieves take from the front
// (FIFO, the oldest and typically largest sub-computations). Unlike the
// seed's `dq = dq[1:]` slice deque it reuses its backing array — steady
// state allocates nothing and retains no dead heads.
type fring struct {
	buf  []*frame
	head int // index of the oldest element
	n    int
}

func (r *fring) pushBack(fr *frame) {
	if r.n == len(r.buf) {
		c := len(r.buf) * 2
		if c == 0 {
			c = 8
		}
		nb := make([]*frame, c)
		for i := 0; i < r.n; i++ {
			nb[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf, r.head = nb, 0
	}
	r.buf[(r.head+r.n)%len(r.buf)] = fr
	r.n++
}

func (r *fring) popBack() *frame {
	if r.n == 0 {
		return nil
	}
	r.n--
	i := (r.head + r.n) % len(r.buf)
	fr := r.buf[i]
	r.buf[i] = nil
	return fr
}

func (r *fring) popFront() *frame {
	if r.n == 0 {
		return nil
	}
	fr := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return fr
}

type worker struct {
	pool *Pool
	id   int
	mu   sync.Mutex
	dq   fring
	rng  *rand.Rand
}

// Ctx is the execution context of a task: the worker it runs on and the
// run it belongs to. A Ctx is only valid inside the task invocation that
// received it.
type Ctx struct {
	w  *worker
	rs *runState
	fr *determinacy.Frame
}

// WorkerID returns the index of the worker executing the current task, in
// [0, Workers).
func (c *Ctx) WorkerID() int { return c.w.id }

// Pool returns the pool the current task runs on.
func (c *Ctx) Pool() *Pool { return c.w.pool }

// Race returns the current task's race-detection frame, or nil when the
// pool runs without detection. Drivers declare their base-case cell
// accesses through it:
//
//	if f := c.Race(); f != nil { f.Write(cell); f.Read(dep) }
func (c *Ctx) Race() *determinacy.Frame { return c.fr }

// NewPool creates a pool and leases its logical workers from the shared
// executor (cfg.Executor, or exec.Default()). The pool owns no goroutines.
func NewPool(cfg Config) *Pool {
	n := cfg.Workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{policy: cfg.Policy}
	p.workers = make([]*worker, n)
	for i := range p.workers {
		p.workers[i] = &worker{
			pool: p,
			id:   i,
			rng:  rand.New(rand.NewSource(cfg.Seed + int64(i)*7919 + 1)),
		}
	}
	ex := cfg.Executor
	if ex == nil {
		ex = exec.Default()
	}
	p.lease = ex.Lease("forkjoin", n, (*poolSource)(p))
	return p
}

// Workers returns the pool's logical worker count (its concurrency cap and
// deque fan-out), not a goroutine count — physical workers belong to the
// shared executor.
func (p *Pool) Workers() int { return len(p.workers) }

// WithRaceDetection enables DePa-style determinacy-race detection: every
// Spawn and Wait maintains fork/join timestamps, and tasks may declare
// shadow-cell accesses through Ctx.Race. Set it before Run; the detector's
// shadow state is reset at each run's root, so a pool may run repeatedly,
// but concurrent runs must not share a detector. Off (nil) the only cost
// is a nil check per spawn and wait.
func (p *Pool) WithRaceDetection(d *determinacy.Detector) *Pool {
	p.race = d
	return p
}

// RaceDetector returns the detector installed by WithRaceDetection, or nil.
func (p *Pool) RaceDetector() *determinacy.Detector { return p.race }

// Stats returns a snapshot of the pool's activity counters. It is safe to
// call concurrently with a run — every counter is atomic — which is how
// the dpserve /metrics endpoint scrapes live jobs.
func (p *Pool) Stats() Stats {
	return Stats{
		Spawned:      p.spawned.Load(),
		Executed:     p.executed.Load(),
		Steals:       p.steals.Load(),
		FailedProbes: p.failed.Load(),
		Yields:       p.yields.Load(),
	}
}

// Close releases the pool's executor lease, waiting for in-flight slot
// claims to drain. Tasks still queued are abandoned; callers should Close
// only after their Run calls have returned.
func (p *Pool) Close() {
	p.done.Store(true)
	p.lease.Close()
}

// Run injects f as a root task and blocks until f — including every task it
// transitively spawns and waits for — has returned. It panics with the
// task's panic value if the computation panicked (a *ChildPanicError when
// the panic came from a spawned child, whose Value field holds the
// original payload), and with ErrConcurrentRun if another run of this Pool
// is still in flight.
func (p *Pool) Run(f Task) {
	// context.Background is never cancelled, so a non-nil error can only be
	// the concurrent-run guard; panics propagate unchanged.
	if err := p.RunContext(context.Background(), f); err != nil {
		panic(err)
	}
}

// RunContext is Run with cooperative cancellation. Cancellation is observed
// between task dispatches — queued children of a cancelled run are drained
// as no-ops and every Wait unwinds promptly — so a cancelled run stops
// scheduling work, retires its bookkeeping cleanly and returns ctx.Err()
// without leaking goroutines. A task already executing when the
// cancellation fires runs to completion: tasks are never interrupted
// mid-kernel. On success RunContext returns nil; if the computation
// panicked it re-panics exactly like Run.
func (p *Pool) RunContext(ctx context.Context, f Task) error {
	if p.done.Load() {
		panic("forkjoin: Run on closed pool")
	}
	if !p.running.CompareAndSwap(false, true) {
		return ErrConcurrentRun
	}
	defer p.running.Store(false)
	rs := &runState{}
	// Observe a pre-cancelled context synchronously: the monitor goroutine
	// races the shared executor running the root otherwise.
	if ctx.Err() != nil {
		rs.cancelled.Store(true)
	}
	finished := make(chan struct{})
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				rs.cancelled.Store(true)
			case <-finished:
			}
		}()
	}
	var rootFr *determinacy.Frame
	if p.race != nil {
		rootFr = p.race.Root()
	}
	done := make(chan any, 1)
	root := func(c *Ctx) {
		defer func() { done <- recover() }()
		if rs.cancelled.Load() {
			panic(runCancelled{})
		}
		f(c)
	}
	p.spawned.Add(1)
	fr := p.newFrame()
	fr.f = root
	fr.rs = rs
	fr.fr = rootFr
	w := p.workers[0]
	w.push(fr)
	p.lease.Notify(0)
	r := <-done
	close(finished)
	if _, unwound := r.(runCancelled); unwound || rs.cancelled.Load() {
		// Either the tree unwound through a Wait, or the root finished after
		// children were already being skipped; both mean the computation is
		// incomplete and the run's result must not be trusted.
		return ctx.Err()
	}
	if r != nil {
		panic(r)
	}
	return nil
}

// Group tracks a set of spawned tasks for a taskwait-style join. The zero
// value is ready to use. Groups may be reused after Wait returns.
type Group struct {
	pending atomic.Int64
	seq     atomic.Uint64
	panicMu sync.Mutex
	panics  []childPanic

	// Race-detection bookkeeping: the frames of children spawned on this
	// group since the last Wait, joined (ordered before the waiter's next
	// strand segment) when Wait completes. Touched only under detection.
	detMu   sync.Mutex
	detKids []*determinacy.Frame
}

// childPanic records one child's panic together with its spawn sequence
// number, so Wait can report deterministically regardless of which child
// reached its recover first.
type childPanic struct {
	seq uint64
	val any
}

// Spawn pushes f onto the current worker's deque as a child task of g.
// It is the analogue of "#pragma omp task". The Task closure is the only
// allocation on this path (the spawn frame itself is pooled); spawn sites
// hot enough to care use SpawnCall instead.
func (c *Ctx) Spawn(g *Group, f Task) {
	fr := c.w.pool.newFrame()
	fr.f = f
	c.spawn(g, fr)
}

// SpawnCall is the allocation-free form of Spawn: instead of a closure, the
// child is a package-level function invoked as call(ctx, recv, args). recv
// is typically a pointer to the long-lived state the child works on (a
// driver struct, a matrix) — pointer-shaped values convert to any without
// allocating — and args carries up to four integers of task coordinates
// (tile indices, extents). With both the frame and the Ctx pooled, a
// SpawnCall spawn-execute cycle performs zero heap allocations in steady
// state.
func (c *Ctx) SpawnCall(g *Group, call func(*Ctx, any, [4]int), recv any, args [4]int) {
	fr := c.w.pool.newFrame()
	fr.call = call
	fr.recv = recv
	fr.args = args
	c.spawn(g, fr)
}

// spawn fills in the inherited state of fr and pushes it.
func (c *Ctx) spawn(g *Group, fr *frame) {
	fr.seq = g.seq.Add(1)
	g.pending.Add(1)
	w := c.w
	fr.g = g
	fr.rs = c.rs
	if c.fr != nil {
		childFr := c.fr.Fork()
		g.detMu.Lock()
		g.detKids = append(g.detKids, childFr)
		g.detMu.Unlock()
		fr.fr = childFr
	}
	w.pool.spawned.Add(1)
	w.push(fr)
	// The spawning worker's own slot is busy (we are inside its claim), but
	// the dirty hint lets a parked physical worker claim a free sibling slot
	// and steal the child. Notify is a cheap no-op when nobody is parked.
	w.pool.lease.Notify(w.id)
}

// Wait blocks until every task spawned on g has completed — the analogue of
// "#pragma omp taskwait". While waiting, the current worker executes pending
// tasks (its own first, then stolen ones), so Wait never wastes the worker.
// If any child panicked, Wait re-panics with a *ChildPanicError carrying
// the panic value of the first panicking child in spawn order.
func (c *Ctx) Wait(g *Group) {
	w := c.w
	for g.pending.Load() > 0 {
		if rs := c.rs; rs != nil && rs.cancelled.Load() {
			panic(runCancelled{})
		}
		if t := w.pop(); t != nil {
			w.execute(t)
			continue
		}
		if t := w.steal(); t != nil {
			w.execute(t)
			continue
		}
		w.pool.yields.Add(1)
		runtime.Gosched()
	}
	if rs := c.rs; rs != nil && rs.cancelled.Load() {
		panic(runCancelled{})
	}
	if c.fr != nil {
		g.detMu.Lock()
		kids := g.detKids
		g.detKids = nil
		g.detMu.Unlock()
		c.fr.Join(kids)
	}
	g.panicMu.Lock()
	defer g.panicMu.Unlock()
	if len(g.panics) > 0 {
		// Deterministic report: the first panic by spawn order, however the
		// children interleaved. All panicking children have recorded their
		// value by the time pending reaches zero, so the choice cannot race.
		first := g.panics[0]
		for _, p := range g.panics[1:] {
			if p.seq < first.seq {
				first = p
			}
		}
		g.panics = nil
		if cpe, ok := first.val.(*ChildPanicError); ok {
			panic(cpe) // nested Wait already wrapped it: keep the innermost value
		}
		panic(&ChildPanicError{Value: first.val})
	}
}

func (w *worker) push(fr *frame) {
	w.mu.Lock()
	w.dq.pushBack(fr)
	w.mu.Unlock()
}

// pop removes the newest task (bottom of the deque): owner-side LIFO.
func (w *worker) pop() *frame {
	w.mu.Lock()
	fr := w.dq.popBack()
	w.mu.Unlock()
	return fr
}

// stealFrom removes the oldest task (top of the deque): thief-side FIFO.
func (w *worker) stealFrom() *frame {
	w.mu.Lock()
	fr := w.dq.popFront()
	w.mu.Unlock()
	return fr
}

// steal probes the other workers once each, in policy order, and returns a
// stolen task or nil.
func (w *worker) steal() *frame {
	p := w.pool
	n := len(p.workers)
	if n == 1 {
		return nil
	}
	start := 0
	switch p.policy {
	case StealRandom:
		start = w.rng.Intn(n)
	case StealSequential:
		start = w.id + 1
	}
	for i := 0; i < n; i++ {
		v := p.workers[(start+i)%n]
		if v == w {
			continue
		}
		if fr := v.stealFrom(); fr != nil {
			p.steals.Add(1)
			return fr
		}
		p.failed.Add(1)
	}
	return nil
}

func (w *worker) execute(fr *frame) {
	w.runFrame(fr)
	w.pool.executed.Add(1)
}

// runFrame copies the frame's state out, recycles the frame, and runs the
// body with a pooled Ctx. The group bookkeeping (panic capture, pending
// retirement) that Spawn used to wrap in a per-spawn closure lives here
// instead, so the only per-task heap traffic left is whatever the body's
// own closure captured — and none at all through SpawnCall.
func (w *worker) runFrame(fr *frame) {
	p := w.pool
	f, call, recv, args := fr.f, fr.call, fr.recv, fr.args
	g, rs, childFr, seq := fr.g, fr.rs, fr.fr, fr.seq
	*fr = frame{}
	p.framePool.Put(fr)

	c, _ := p.ctxPool.Get().(*Ctx)
	if c == nil {
		c = &Ctx{}
	}
	c.w, c.rs, c.fr = w, rs, childFr
	defer func() {
		c.w, c.rs, c.fr = nil, nil, nil
		p.ctxPool.Put(c)
		if g == nil {
			// Root task: its own wrapper recovers and reports, and there is
			// no group to retire.
			return
		}
		if r := recover(); r != nil {
			if _, unwound := r.(runCancelled); !unwound {
				g.panicMu.Lock()
				g.panics = append(g.panics, childPanic{seq: seq, val: r})
				g.panicMu.Unlock()
			}
		}
		g.pending.Add(-1)
	}()
	if g != nil && rs != nil && rs.cancelled.Load() {
		return // cancelled run: drain without executing
	}
	if call != nil {
		call(c, recv, args)
		return
	}
	f(c)
}

