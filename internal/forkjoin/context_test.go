package forkjoin

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// A cancelled RunContext must return ctx.Err() promptly even while the
// computation keeps spawning work, and must not leak goroutines.
func TestRunContextCancellation(t *testing.T) {
	p := NewPool(Config{Workers: 4})
	defer p.Close()
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once sync.Once
	errCh := make(chan error, 1)
	go func() {
		errCh <- p.RunContext(ctx, func(c *Ctx) {
			var g Group
			for {
				once.Do(func() { close(started) })
				c.Spawn(&g, func(*Ctx) {})
				c.Wait(&g)
			}
		})
	}()
	<-started
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("RunContext = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled RunContext did not return")
	}
	// No per-run goroutines may outlive the run (workers are pool-owned and
	// accounted in `before`).
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("goroutines leaked: %d before run, %d after", before, now)
	}
}

// RunContext without cancellation behaves exactly like Run.
func TestRunContextCompletes(t *testing.T) {
	p := NewPool(Config{Workers: 2})
	defer p.Close()
	var got int
	if err := p.RunContext(context.Background(), func(ctx *Ctx) { got = fib(ctx, 12) }); err != nil {
		t.Fatal(err)
	}
	if got != 144 {
		t.Fatalf("fib(12) = %d, want 144", got)
	}
}

// A context cancelled before the run starts must not execute the root.
func TestRunContextPreCancelled(t *testing.T) {
	p := NewPool(Config{Workers: 2})
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	// The root observes the cancellation either before or after it is
	// scheduled; in both cases the error must surface.
	err := p.RunContext(ctx, func(*Ctx) { ran = true })
	if err == nil && !ran {
		t.Fatal("run neither executed nor reported cancellation")
	}
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// The pool stays fully usable for plain Run calls after a cancelled
// RunContext left skipped children in the deques.
func TestPoolUsableAfterCancelledRun(t *testing.T) {
	p := NewPool(Config{Workers: 2})
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once sync.Once
	errCh := make(chan error, 1)
	go func() {
		errCh <- p.RunContext(ctx, func(c *Ctx) {
			var g Group
			for {
				once.Do(func() { close(started) })
				c.Spawn(&g, func(*Ctx) {})
				c.Wait(&g)
			}
		})
	}()
	<-started
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	var n atomic.Int64
	p.Run(func(c *Ctx) {
		var g Group
		for i := 0; i < 50; i++ {
			c.Spawn(&g, func(*Ctx) { n.Add(1) })
		}
		c.Wait(&g)
	})
	if n.Load() != 50 {
		t.Fatalf("post-cancel run executed %d/50 tasks", n.Load())
	}
}

// A typed panic payload — here an error value — must survive Wait's
// re-panic so callers can errors.Is/As through the group boundary.
func TestChildPanicPreservesTypedValue(t *testing.T) {
	sentinel := errors.New("typed sentinel")
	p := NewPool(Config{Workers: 2})
	defer p.Close()
	defer func() {
		r := recover()
		cpe, ok := r.(*ChildPanicError)
		if !ok {
			t.Fatalf("panic value %T, want *ChildPanicError", r)
		}
		if cpe.Value != sentinel {
			t.Fatalf("Value = %v, want the sentinel error", cpe.Value)
		}
		if !errors.Is(cpe, sentinel) {
			t.Fatal("errors.Is does not see through ChildPanicError")
		}
	}()
	p.Run(func(ctx *Ctx) {
		var g Group
		ctx.Spawn(&g, func(*Ctx) { panic(sentinel) })
		ctx.Wait(&g)
	})
}

// A panic crossing two nested Waits must keep the innermost original value
// rather than wrapping a wrapper.
func TestNestedChildPanicNotDoubleWrapped(t *testing.T) {
	p := NewPool(Config{Workers: 2})
	defer p.Close()
	defer func() {
		cpe, ok := recover().(*ChildPanicError)
		if !ok {
			t.Fatal("expected *ChildPanicError")
		}
		if cpe.Value != "inner boom" {
			t.Fatalf("Value = %v, want the innermost payload", cpe.Value)
		}
	}()
	p.Run(func(ctx *Ctx) {
		var outer Group
		ctx.Spawn(&outer, func(c *Ctx) {
			var inner Group
			c.Spawn(&inner, func(*Ctx) { panic("inner boom") })
			c.Wait(&inner)
		})
		ctx.Wait(&outer)
	})
}

// Two children panicking simultaneously: the reported value is always the
// first by spawn order, and no panic is ever lost to lock-acquisition
// order. The barrier forces both children to panic on every round.
func TestSimultaneousChildPanicsDeterministic(t *testing.T) {
	p := NewPool(Config{Workers: 4})
	defer p.Close()
	for round := 0; round < 50; round++ {
		// Both children always execute and panic — a child panic does not
		// cancel its group, and pending reaches zero only after both have
		// recorded their value — so the report must pick the first by spawn
		// order however the scheduler interleaved them. (No cross-child
		// barrier here: sibling tasks must not block on each other outside
		// Wait now that execution is leased from the shared executor, where
		// one physical worker may run both children back to back.)
		got := func() (r any) {
			defer func() { r = recover() }()
			p.Run(func(ctx *Ctx) {
				var g Group
				ctx.Spawn(&g, func(*Ctx) {
					panic("first by spawn order")
				})
				ctx.Spawn(&g, func(*Ctx) {
					panic("second by spawn order")
				})
				ctx.Wait(&g)
			})
			return nil
		}()
		cpe, ok := got.(*ChildPanicError)
		if !ok {
			t.Fatalf("round %d: panic value %T, want *ChildPanicError", round, got)
		}
		if cpe.Value != "first by spawn order" {
			t.Fatalf("round %d: reported %q, want the first spawned child's value", round, cpe.Value)
		}
	}
}
