package forkjoin

import "testing"

func nopCall(*Ctx, any, [4]int) {}

// TestSpawnCallSteadyStateAllocs is the fork-join half of the dispatch
// allocation gates: with spawn frames and task contexts pooled and the
// child expressed as a package-level call (no closure), a warm
// SpawnCall→Wait cycle — frame acquire, deque push, owner pop, execute,
// frame and Ctx recycle — performs zero heap allocations.
func TestSpawnCallSteadyStateAllocs(t *testing.T) {
	p := NewPool(Config{Workers: 1})
	defer p.Close()
	var allocs float64
	p.Run(func(c *Ctx) {
		var g Group
		for i := 0; i < 64; i++ { // warm the frame and Ctx pools, grow the deque
			c.SpawnCall(&g, nopCall, nil, [4]int{i})
		}
		c.Wait(&g)
		allocs = testing.AllocsPerRun(100, func() {
			c.SpawnCall(&g, nopCall, nil, [4]int{1, 2, 3, 4})
			c.Wait(&g)
		})
	})
	if allocs != 0 {
		t.Errorf("steady-state SpawnCall/Wait cycle allocates %v objects per run, want 0", allocs)
	}
}
