package forkjoin

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunExecutesRoot(t *testing.T) {
	p := NewPool(Config{Workers: 2})
	defer p.Close()
	ran := false
	p.Run(func(ctx *Ctx) { ran = true })
	if !ran {
		t.Fatal("root task did not run")
	}
}

func TestSpawnWaitCompletesAllChildren(t *testing.T) {
	p := NewPool(Config{Workers: 4})
	defer p.Close()
	var count atomic.Int64
	p.Run(func(ctx *Ctx) {
		var g Group
		for i := 0; i < 100; i++ {
			ctx.Spawn(&g, func(*Ctx) { count.Add(1) })
		}
		ctx.Wait(&g)
		if got := count.Load(); got != 100 {
			t.Errorf("after Wait, %d/100 children done", got)
		}
	})
	if count.Load() != 100 {
		t.Fatalf("executed %d tasks, want 100", count.Load())
	}
}

// fib exercises deeply nested spawn/wait — the same shape as the R-DP
// recursions — and must produce the correct value on any worker count.
func fib(ctx *Ctx, n int) int {
	if n < 2 {
		return n
	}
	var a, b int
	var g Group
	ctx.Spawn(&g, func(c *Ctx) { a = fib(c, n-1) })
	b = fib(ctx, n-2)
	ctx.Wait(&g)
	return a + b
}

func TestNestedForkJoinFib(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		p := NewPool(Config{Workers: workers})
		var got int
		p.Run(func(ctx *Ctx) { got = fib(ctx, 16) })
		p.Close()
		if got != 987 {
			t.Fatalf("workers=%d: fib(16) = %d, want 987", workers, got)
		}
	}
}

func TestWaitIsABarrierOverGroupOnly(t *testing.T) {
	p := NewPool(Config{Workers: 2})
	defer p.Close()
	var g1Done, g2Done atomic.Bool
	p.Run(func(ctx *Ctx) {
		var g1, g2 Group
		ctx.Spawn(&g1, func(*Ctx) { g1Done.Store(true) })
		ctx.Spawn(&g2, func(*Ctx) { g2Done.Store(true) })
		ctx.Wait(&g1)
		if !g1Done.Load() {
			t.Error("Wait(g1) returned before g1's child finished")
		}
		ctx.Wait(&g2)
	})
	if !g2Done.Load() {
		t.Fatal("g2 child never ran")
	}
}

func TestGroupReuse(t *testing.T) {
	p := NewPool(Config{Workers: 2})
	defer p.Close()
	var count atomic.Int64
	p.Run(func(ctx *Ctx) {
		var g Group
		for round := 0; round < 5; round++ {
			for i := 0; i < 10; i++ {
				ctx.Spawn(&g, func(*Ctx) { count.Add(1) })
			}
			ctx.Wait(&g)
		}
	})
	if count.Load() != 50 {
		t.Fatalf("executed %d tasks, want 50", count.Load())
	}
}

func TestChildPanicPropagatesAtWait(t *testing.T) {
	p := NewPool(Config{Workers: 2})
	defer p.Close()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic to propagate out of Run")
		}
		cpe, ok := r.(*ChildPanicError)
		if !ok {
			t.Fatalf("panic value %T, want *ChildPanicError", r)
		}
		if cpe.Value != "boom" {
			t.Fatalf("ChildPanicError.Value = %v, want the original payload", cpe.Value)
		}
		if !strings.Contains(cpe.Error(), "boom") {
			t.Fatalf("error text %q does not mention cause", cpe.Error())
		}
	}()
	p.Run(func(ctx *Ctx) {
		var g Group
		ctx.Spawn(&g, func(*Ctx) { panic("boom") })
		ctx.Wait(&g)
	})
}

func TestRunOnClosedPoolPanics(t *testing.T) {
	p := NewPool(Config{Workers: 1})
	p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Run(func(*Ctx) {})
}

func TestStatsCounters(t *testing.T) {
	p := NewPool(Config{Workers: 2})
	defer p.Close()
	p.Run(func(ctx *Ctx) {
		var g Group
		for i := 0; i < 20; i++ {
			ctx.Spawn(&g, func(*Ctx) {})
		}
		ctx.Wait(&g)
	})
	s := p.Stats()
	if s.Spawned != 21 { // 20 children + 1 root
		t.Errorf("Spawned = %d, want 21", s.Spawned)
	}
	// The root task is executed outside worker.execute accounting only when
	// run through Run; it is counted too.
	if s.Executed < 20 {
		t.Errorf("Executed = %d, want >= 20", s.Executed)
	}
}

func TestWorkerIDWithinRange(t *testing.T) {
	p := NewPool(Config{Workers: 3})
	defer p.Close()
	var bad atomic.Int64
	p.Run(func(ctx *Ctx) {
		var g Group
		for i := 0; i < 50; i++ {
			ctx.Spawn(&g, func(c *Ctx) {
				if c.WorkerID() < 0 || c.WorkerID() >= 3 {
					bad.Add(1)
				}
				if c.Pool() != p {
					bad.Add(1)
				}
			})
		}
		ctx.Wait(&g)
	})
	if bad.Load() != 0 {
		t.Fatalf("%d tasks saw invalid worker context", bad.Load())
	}
}

func TestStealPolicies(t *testing.T) {
	for _, pol := range []StealPolicy{StealRandom, StealSequential} {
		p := NewPool(Config{Workers: 4, Policy: pol, Seed: 3})
		var got int
		p.Run(func(ctx *Ctx) { got = fib(ctx, 14) })
		p.Close()
		if got != 377 {
			t.Fatalf("policy %d: fib(14) = %d, want 377", pol, got)
		}
	}
}

func TestDefaultWorkerCount(t *testing.T) {
	p := NewPool(Config{})
	defer p.Close()
	if p.Workers() < 1 {
		t.Fatalf("Workers = %d", p.Workers())
	}
}

func TestManySequentialRuns(t *testing.T) {
	p := NewPool(Config{Workers: 2})
	defer p.Close()
	for i := 0; i < 30; i++ {
		var done atomic.Bool
		p.Run(func(ctx *Ctx) {
			var g Group
			ctx.Spawn(&g, func(*Ctx) { done.Store(true) })
			ctx.Wait(&g)
		})
		if !done.Load() {
			t.Fatalf("run %d incomplete", i)
		}
	}
}

func BenchmarkSpawnWaitOverhead(b *testing.B) {
	p := NewPool(Config{Workers: 2})
	defer p.Close()
	b.ResetTimer()
	p.Run(func(ctx *Ctx) {
		var g Group
		for i := 0; i < b.N; i++ {
			ctx.Spawn(&g, func(*Ctx) {})
			ctx.Wait(&g)
		}
	})
}

func BenchmarkFib20(b *testing.B) {
	p := NewPool(Config{Workers: 0})
	defer p.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Run(func(ctx *Ctx) { fib(ctx, 20) })
	}
}

// Failure injection: one panicking grandchild deep in a large tree must
// propagate without wedging the pool, and the pool must stay usable.
func TestDeepPanicPropagationAndRecovery(t *testing.T) {
	p := NewPool(Config{Workers: 4})
	defer p.Close()
	var depth func(ctx *Ctx, d int)
	depth = func(ctx *Ctx, d int) {
		if d == 0 {
			panic("deep boom")
		}
		var g Group
		ctx.Spawn(&g, func(c *Ctx) { depth(c, d-1) })
		ctx.Wait(&g)
	}
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Error("expected panic from deep task")
			}
		}()
		p.Run(func(ctx *Ctx) { depth(ctx, 12) })
	}()
	// Pool still works after the panic.
	ok := false
	p.Run(func(ctx *Ctx) { ok = true })
	if !ok {
		t.Fatal("pool unusable after panic")
	}
}

// Stress: a wide, shallow burst of 100k no-op tasks must complete and be
// fully accounted.
func TestWideBurstStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	p := NewPool(Config{Workers: 8})
	defer p.Close()
	var n atomic.Int64
	p.Run(func(ctx *Ctx) {
		var g Group
		for i := 0; i < 100_000; i++ {
			ctx.Spawn(&g, func(*Ctx) { n.Add(1) })
		}
		ctx.Wait(&g)
	})
	if n.Load() != 100_000 {
		t.Fatalf("executed %d", n.Load())
	}
	s := p.Stats()
	if s.Executed < 100_000 {
		t.Fatalf("stats.Executed = %d", s.Executed)
	}
}

// Concurrent Run calls on one Pool fail loudly and deterministically with
// ErrConcurrentRun — a Pool is a single-computation object; concurrent
// jobs take one Pool each and multiplex on the shared executor. Sequential
// reuse of the same Pool keeps working, and callers that want concurrency
// get it from independent pools.
func TestConcurrentRuns(t *testing.T) {
	p := NewPool(Config{Workers: 4})
	defer p.Close()

	// A run that is still in flight makes every overlapping RunContext
	// return ErrConcurrentRun (and Run panic with it).
	rootRunning := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- p.RunContext(context.Background(), func(ctx *Ctx) {
			close(rootRunning)
			<-release
		})
	}()
	<-rootRunning
	if err := p.RunContext(context.Background(), func(*Ctx) {}); !errors.Is(err, ErrConcurrentRun) {
		t.Fatalf("overlapping RunContext returned %v, want ErrConcurrentRun", err)
	}
	func() {
		defer func() {
			if r := recover(); !errors.Is(r.(error), ErrConcurrentRun) {
				t.Errorf("overlapping Run panicked with %v, want ErrConcurrentRun", r)
			}
		}()
		p.Run(func(*Ctx) {})
		t.Error("overlapping Run did not panic")
	}()
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("first run failed: %v", err)
	}

	// Sequential reuse still works; concurrent jobs use one pool each.
	var total atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			q := NewPool(Config{Workers: 4})
			defer q.Close()
			q.Run(func(ctx *Ctx) {
				var g Group
				for i := 0; i < 50; i++ {
					ctx.Spawn(&g, func(*Ctx) { total.Add(1) })
				}
				ctx.Wait(&g)
			})
		}()
	}
	wg.Wait()
	if total.Load() != 400 {
		t.Fatalf("total = %d, want 400", total.Load())
	}
	p.Run(func(ctx *Ctx) { total.Add(1) })
	if total.Load() != 401 {
		t.Fatalf("sequential reuse after concurrent error broke: total = %d", total.Load())
	}
}
