package graphgen

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRandomStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := Random(Config{N: 32, Density: 0.5, MaxWeight: 9, Infinity: 1e9}, rng)
	edges := 0
	for i := 0; i < 32; i++ {
		if d.At(i, i) != 0 {
			t.Fatalf("diagonal (%d,%d) = %v", i, i, d.At(i, i))
		}
		for j := 0; j < 32; j++ {
			v := d.At(i, j)
			switch {
			case i == j:
			case v == 1e9:
			case v >= 1 && v <= 9 && v == float64(int(v)):
				edges++
			default:
				t.Fatalf("weight (%d,%d) = %v invalid", i, j, v)
			}
		}
	}
	if edges < 300 || edges > 700 {
		t.Fatalf("edge count %d far from expectation ~496", edges)
	}
}

func TestDefaultsApplied(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := Random(Config{N: 8}, rng) // zero density/weight/infinity -> defaults
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if i != j && d.At(i, j) != 1<<30 && (d.At(i, j) < 1 || d.At(i, j) > 10) {
				t.Fatalf("default weights wrong at (%d,%d): %v", i, j, d.At(i, j))
			}
		}
	}
}

func TestRingAndOracle(t *testing.T) {
	const n = 8
	d := Ring(n, 1e9)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			switch {
			case i == j:
				if d.At(i, j) != 0 {
					t.Fatal("diagonal not zero")
				}
			case (i+1)%n == j:
				if d.At(i, j) != 1 {
					t.Fatal("ring edge missing")
				}
			default:
				if d.At(i, j) != 1e9 {
					t.Fatal("non-edge not infinite")
				}
			}
		}
	}
	if RingDistance(n, 2, 5) != 3 || RingDistance(n, 5, 2) != 5 || RingDistance(n, 3, 3) != 0 {
		t.Fatal("RingDistance closed form wrong")
	}
}

// Property: RingDistance is always in [0, n) and satisfies the cycle
// identity d(i,j) + d(j,i) ∈ {0, n}.
func TestRingDistanceProperty(t *testing.T) {
	f := func(i, j uint8) bool {
		n := 16
		a := RingDistance(n, int(i)%n, int(j)%n)
		b := RingDistance(n, int(j)%n, int(i)%n)
		if a < 0 || a >= float64(n) {
			return false
		}
		sum := a + b
		return sum == 0 || sum == float64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
