// Package graphgen generates random weighted digraphs as dense distance
// matrices — the FW-APSP workload generator. Edge weights are small
// integers (stored in float64) so min-plus arithmetic is exact and every
// implementation produces bit-identical distance matrices.
package graphgen

import (
	"math/rand"

	"dpflow/internal/matrix"
)

// Config controls random graph generation.
type Config struct {
	N         int     // number of vertices
	Density   float64 // probability of each directed edge, in (0, 1]
	MaxWeight int     // weights drawn uniformly from [1, MaxWeight]
	Infinity  float64 // distance for absent edges
}

// Random returns the dense adjacency/distance matrix of a random digraph:
// 0 on the diagonal, a random integer weight for present edges, and
// cfg.Infinity for absent ones.
func Random(cfg Config, rng *rand.Rand) *matrix.Dense {
	if cfg.MaxWeight < 1 {
		cfg.MaxWeight = 10
	}
	if cfg.Infinity == 0 {
		cfg.Infinity = 1 << 30
	}
	if cfg.Density <= 0 || cfg.Density > 1 {
		cfg.Density = 0.5
	}
	d := matrix.NewSquare(cfg.N)
	for i := 0; i < cfg.N; i++ {
		row := d.Row(i)
		for j := range row {
			switch {
			case i == j:
				row[j] = 0
			case rng.Float64() < cfg.Density:
				row[j] = float64(1 + rng.Intn(cfg.MaxWeight))
			default:
				row[j] = cfg.Infinity
			}
		}
	}
	return d
}

// Ring returns a directed ring graph: vertex i connects to (i+1) mod n with
// weight 1, everything else at infinity. Its APSP solution is known in
// closed form — distance(i, j) = (j - i) mod n — which makes it a good
// oracle for correctness tests.
func Ring(n int, infinity float64) *matrix.Dense {
	d := matrix.NewSquare(n)
	for i := 0; i < n; i++ {
		row := d.Row(i)
		for j := range row {
			switch {
			case i == j:
				row[j] = 0
			case (i+1)%n == j:
				row[j] = 1
			default:
				row[j] = infinity
			}
		}
	}
	return d
}

// RingDistance is the closed-form APSP distance of the ring graph.
func RingDistance(n, i, j int) float64 {
	return float64(((j-i)%n + n) % n)
}
