package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder()
	done := r.Task(0, "a")
	time.Sleep(2 * time.Millisecond)
	done()
	spans := r.Spans()
	if len(spans) != 1 {
		t.Fatalf("%d spans", len(spans))
	}
	if spans[0].End-spans[0].Start < time.Millisecond {
		t.Fatalf("span too short: %v", spans[0])
	}
	if spans[0].Label != "a" || spans[0].Worker != 0 {
		t.Fatalf("span metadata wrong: %+v", spans[0])
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				r.Task(w, "t")()
			}
		}(w)
	}
	wg.Wait()
	if got := len(r.Spans()); got != 200 {
		t.Fatalf("%d spans, want 200", got)
	}
}

func TestReport(t *testing.T) {
	r := NewRecorder()
	d0 := r.Task(0, "x")
	time.Sleep(time.Millisecond)
	d0()
	d1 := r.Task(1, "y")
	time.Sleep(time.Millisecond)
	d1()
	rep := r.Report(2)
	if rep.Tasks != 2 || rep.Workers != 2 {
		t.Fatalf("report %+v", rep)
	}
	if rep.Utilization <= 0 || rep.Utilization > 1 {
		t.Fatalf("utilization %v", rep.Utilization)
	}
	if rep.PerWorker[0] == 0 || rep.PerWorker[1] == 0 {
		t.Fatalf("per-worker busy missing: %v", rep.PerWorker)
	}
	s := rep.String()
	if !strings.Contains(s, "tasks=2") || !strings.Contains(s, "worker  1") {
		t.Fatalf("report text: %s", s)
	}
}

// TestReportGrowsToObservedWorkers is the regression test for the
// out-of-range-worker bug: spans whose worker id is beyond the requested
// count used to inflate Busy while vanishing from PerWorker, breaking the
// sum identity and letting Utilization exceed 100%. The report must grow
// to the effective worker count instead.
func TestReportGrowsToObservedWorkers(t *testing.T) {
	r := NewRecorder()
	for _, w := range []int{0, 5} { // worker 5 is outside a Report(2) request
		done := r.Task(w, "x")
		time.Sleep(time.Millisecond)
		done()
	}
	rep := r.Report(2)
	if rep.Workers != 6 {
		t.Fatalf("Workers = %d, want effective count 6", rep.Workers)
	}
	if len(rep.PerWorker) != 6 {
		t.Fatalf("len(PerWorker) = %d, want 6", len(rep.PerWorker))
	}
	var sum time.Duration
	for _, d := range rep.PerWorker {
		sum += d
	}
	if sum != rep.Busy {
		t.Fatalf("sum(PerWorker) = %v, Busy = %v: identity broken", sum, rep.Busy)
	}
	if rep.PerWorker[5] == 0 {
		t.Fatal("out-of-range span still dropped from PerWorker")
	}
	if rep.Utilization > 1 {
		t.Fatalf("Utilization = %v, exceeds 100%%", rep.Utilization)
	}
	if rep.Tasks != 2 {
		t.Fatalf("Tasks = %d, want 2", rep.Tasks)
	}
}

// TestReportExcludesUnattributableSpans: negative worker ids cannot be
// charged to any worker; they must not count toward Busy either (the seed
// counted them, another way to break the identity).
func TestReportExcludesUnattributableSpans(t *testing.T) {
	r := NewRecorder()
	done := r.Task(-1, "orphan")
	time.Sleep(time.Millisecond)
	done()
	d0 := r.Task(0, "x")
	time.Sleep(time.Millisecond)
	d0()
	rep := r.Report(1)
	if rep.Tasks != 1 || rep.Workers != 1 {
		t.Fatalf("report %+v, want 1 task on 1 worker", rep)
	}
	if rep.Busy != rep.PerWorker[0] {
		t.Fatalf("Busy = %v includes unattributable time (worker 0 busy %v)", rep.Busy, rep.PerWorker[0])
	}
}

// TestGanttGrowsToObservedWorkers mirrors the Report fix on the chart:
// a span on worker 3 must add rows to a Gantt(2, …) render, not vanish.
func TestGanttGrowsToObservedWorkers(t *testing.T) {
	r := NewRecorder()
	done := r.Task(3, "x")
	time.Sleep(time.Millisecond)
	done()
	g := r.Gantt(2, 20)
	lines := strings.Split(strings.TrimSpace(g), "\n")
	if len(lines) != 4 {
		t.Fatalf("gantt rows = %d, want 4:\n%s", len(lines), g)
	}
	if !strings.Contains(lines[3], "#") {
		t.Fatalf("worker 3 row shows no busy cells: %q", lines[3])
	}
}

func TestGantt(t *testing.T) {
	r := NewRecorder()
	done := r.Task(0, "x")
	time.Sleep(time.Millisecond)
	done()
	g := r.Gantt(2, 20)
	lines := strings.Split(strings.TrimSpace(g), "\n")
	if len(lines) != 2 {
		t.Fatalf("gantt rows: %q", g)
	}
	if !strings.Contains(lines[0], "#") {
		t.Fatalf("worker 0 shows no busy cells: %q", lines[0])
	}
	if strings.Contains(lines[1], "#") {
		t.Fatalf("idle worker shows busy cells: %q", lines[1])
	}
	if empty := NewRecorder().Gantt(1, 10); !strings.Contains(empty, "no spans") {
		t.Fatalf("empty gantt: %q", empty)
	}
}
