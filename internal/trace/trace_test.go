package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder()
	done := r.Task(0, "a")
	time.Sleep(2 * time.Millisecond)
	done()
	spans := r.Spans()
	if len(spans) != 1 {
		t.Fatalf("%d spans", len(spans))
	}
	if spans[0].End-spans[0].Start < time.Millisecond {
		t.Fatalf("span too short: %v", spans[0])
	}
	if spans[0].Label != "a" || spans[0].Worker != 0 {
		t.Fatalf("span metadata wrong: %+v", spans[0])
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				r.Task(w, "t")()
			}
		}(w)
	}
	wg.Wait()
	if got := len(r.Spans()); got != 200 {
		t.Fatalf("%d spans, want 200", got)
	}
}

func TestReport(t *testing.T) {
	r := NewRecorder()
	d0 := r.Task(0, "x")
	time.Sleep(time.Millisecond)
	d0()
	d1 := r.Task(1, "y")
	time.Sleep(time.Millisecond)
	d1()
	rep := r.Report(2)
	if rep.Tasks != 2 || rep.Workers != 2 {
		t.Fatalf("report %+v", rep)
	}
	if rep.Utilization <= 0 || rep.Utilization > 1 {
		t.Fatalf("utilization %v", rep.Utilization)
	}
	if rep.PerWorker[0] == 0 || rep.PerWorker[1] == 0 {
		t.Fatalf("per-worker busy missing: %v", rep.PerWorker)
	}
	s := rep.String()
	if !strings.Contains(s, "tasks=2") || !strings.Contains(s, "worker  1") {
		t.Fatalf("report text: %s", s)
	}
}

func TestGantt(t *testing.T) {
	r := NewRecorder()
	done := r.Task(0, "x")
	time.Sleep(time.Millisecond)
	done()
	g := r.Gantt(2, 20)
	lines := strings.Split(strings.TrimSpace(g), "\n")
	if len(lines) != 2 {
		t.Fatalf("gantt rows: %q", g)
	}
	if !strings.Contains(lines[0], "#") {
		t.Fatalf("worker 0 shows no busy cells: %q", lines[0])
	}
	if strings.Contains(lines[1], "#") {
		t.Fatalf("idle worker shows busy cells: %q", lines[1])
	}
	if empty := NewRecorder().Gantt(1, 10); !strings.Contains(empty, "no spans") {
		t.Fatalf("empty gantt: %q", empty)
	}
}
