// Package trace records per-task execution spans of real (goroutine-based)
// runs and reports worker utilisation — the instrument used to demonstrate
// the paper's "threads becoming idle" effect on actual executions of the
// fork-join and data-flow runtimes.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span is one recorded task execution.
type Span struct {
	Worker int
	Label  string
	Start  time.Duration // since the recorder's epoch
	End    time.Duration
}

// Recorder collects spans from concurrent tasks. The zero value is not
// usable; create one with NewRecorder.
type Recorder struct {
	mu    sync.Mutex
	epoch time.Time
	spans []Span
}

// NewRecorder returns a recorder whose epoch is now.
func NewRecorder() *Recorder {
	return &Recorder{epoch: time.Now()}
}

// Task marks the start of a task on the given worker and returns a function
// that records its completion.
func (r *Recorder) Task(worker int, label string) func() {
	start := time.Since(r.epoch)
	return func() {
		end := time.Since(r.epoch)
		r.mu.Lock()
		r.spans = append(r.spans, Span{Worker: worker, Label: label, Start: start, End: end})
		r.mu.Unlock()
	}
}

// Spans returns a copy of the recorded spans, ordered by start time.
func (r *Recorder) Spans() []Span {
	r.mu.Lock()
	out := append([]Span(nil), r.spans...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Report summarises a recording over a fixed worker count.
type Report struct {
	Tasks       int
	Workers     int // effective worker count: max(requested, highest worker id seen + 1)
	Makespan    time.Duration
	Busy        time.Duration   // summed task durations
	PerWorker   []time.Duration // busy time per worker; sums to Busy
	Utilization float64         // Busy / (Workers × Makespan)
}

// Report computes the utilisation report for the given worker count. Spans
// recorded with a worker id beyond the requested count grow the report —
// Workers becomes the effective count and PerWorker covers every observed
// id — so the identity sum(PerWorker) == Busy always holds and Utilization
// stays a true fraction of worker-time; the seed silently dropped such
// spans from PerWorker while still counting them in Busy, letting
// Utilization exceed 100%. Spans with a negative worker id are
// unattributable and are excluded from the report entirely.
func (r *Recorder) Report(workers int) Report {
	spans := r.Spans()
	eff := workers
	if eff < 0 {
		eff = 0
	}
	for _, s := range spans {
		if s.Worker >= eff {
			eff = s.Worker + 1
		}
	}
	rep := Report{Workers: eff, PerWorker: make([]time.Duration, eff)}
	var first, last time.Duration
	for _, s := range spans {
		if s.Worker < 0 {
			continue
		}
		d := s.End - s.Start
		rep.Busy += d
		rep.PerWorker[s.Worker] += d
		if rep.Tasks == 0 || s.Start < first {
			first = s.Start
		}
		if s.End > last {
			last = s.End
		}
		rep.Tasks++
	}
	rep.Makespan = last - first
	if rep.Workers > 0 && rep.Makespan > 0 {
		rep.Utilization = float64(rep.Busy) / (float64(rep.Workers) * float64(rep.Makespan))
	}
	return rep
}

// String renders the report for humans.
func (rep Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "tasks=%d workers=%d makespan=%v busy=%v utilization=%.1f%%\n",
		rep.Tasks, rep.Workers, rep.Makespan.Round(time.Microsecond),
		rep.Busy.Round(time.Microsecond), 100*rep.Utilization)
	for w, b := range rep.PerWorker {
		fmt.Fprintf(&sb, "  worker %2d: busy %v\n", w, b.Round(time.Microsecond))
	}
	return sb.String()
}

// Gantt renders a coarse ASCII Gantt chart of the recording: one row per
// worker, width columns spanning the makespan, '#' where the worker was
// busy. Like Report, worker ids beyond the requested count grow the chart
// rather than vanish from it; negative ids are unattributable and skipped.
func (r *Recorder) Gantt(workers, width int) string {
	spans := r.Spans()
	if len(spans) == 0 || width < 1 {
		return "(no spans)\n"
	}
	var first, last time.Duration
	first = spans[0].Start
	eff := workers
	if eff < 0 {
		eff = 0
	}
	for _, s := range spans {
		if s.End > last {
			last = s.End
		}
		if s.Worker >= eff {
			eff = s.Worker + 1
		}
	}
	total := last - first
	if total <= 0 {
		total = 1
	}
	rows := make([][]byte, eff)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", width))
	}
	for _, s := range spans {
		if s.Worker < 0 {
			continue
		}
		a := int(float64(s.Start-first) / float64(total) * float64(width))
		b := int(float64(s.End-first)/float64(total)*float64(width)) + 1
		if b > width {
			b = width
		}
		for x := a; x < b; x++ {
			rows[s.Worker][x] = '#'
		}
	}
	var sb strings.Builder
	for w, row := range rows {
		fmt.Fprintf(&sb, "w%02d |%s|\n", w, row)
	}
	return sb.String()
}
