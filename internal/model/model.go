// Package model implements the paper's analytical model (§IV-B) and derives
// the cost tables the discrete-event simulator runs on.
//
// Three ingredients:
//
//  1. Task census. For base size m on an n×n problem the recursive
//     algorithm reaches (1/3)(n/m)³ + (1/2)(n/m)² + (1/6)(n/m) base cases
//     for GE — the paper's formula, which equals Σ_{k=1..T} k² with
//     T = n/m, and which the per-function census of internal/gep sums to
//     exactly (asserted by tests).
//
//  2. Cache misses. Per base task the paper derives an upper bound on
//     misses assuming the cache holds only three lines; per level the
//     effective miss count is the compulsory traffic when three m×m blocks
//     fit and grows toward the streaming/bound regime when they do not.
//     This is what produces Table I and the "Estimated" curves.
//
//  3. Variant overheads. Each scheduling event of each variant is priced
//     using the machine's Overheads constants: OpenMP tasks pay a spawn,
//     CnC steps pay tag-put + scheduling, native blocking gets pay
//     expected abort/requeue re-executions, tuned variants pay dependency
//     checks, and the manual variant additionally pays the up-front
//     instantiation of the entire task graph.
package model

import (
	"fmt"
	"math"

	"dpflow/internal/core"
	"dpflow/internal/dag"
	"dpflow/internal/gep"
	"dpflow/internal/machine"
	"dpflow/internal/simsched"
)

// TotalTasksGEP returns the closed-form base-task count of the paper for a
// T-tile GE problem: (1/3)T³ + (1/2)T² + (1/6)T = T(T+1)(2T+1)/6. For the
// cube shape (FW) it is simply T³.
func TotalTasksGEP(tiles int, shape gep.Shape) int {
	if shape == gep.Cube {
		return tiles * tiles * tiles
	}
	return tiles * (tiles + 1) * (2*tiles + 1) / 6
}

// Updates returns the number of DP-table update operations a base task of
// the given kind performs on an m×m tile, for the given shape.
func Updates(kind dag.Kind, m int, shape gep.Shape) int {
	if kind == dag.KindSW {
		return m * m
	}
	if shape == gep.Cube {
		return m * m * m
	}
	switch kind {
	case dag.KindA:
		return (m - 1) * m * (2*m - 1) / 6 // Σ (m-1-k)²
	case dag.KindB, dag.KindC:
		return m * m * (m - 1) / 2 // Σ (m-1-k)·m
	case dag.KindD:
		return m * m * m
	default:
		return 0
	}
}

// Flops converts an update count into floating-point operation counts:
// GE updates cost a multiply and a subtract plus an amortised division per
// row; FW updates an add and a compare; SW cells about eight operations.
func Flops(bench core.BenchID, kind dag.Kind, m int) float64 {
	switch bench {
	case core.GE:
		u := Updates(kind, m, gep.Triangular)
		divRows := float64(m * m) // one division per (k, i) pair, bounded
		return 2*float64(u) + 3*divRows
	case core.FW:
		return 2 * float64(Updates(kind, m, gep.Cube))
	default: // SW
		return 8 * float64(m*m)
	}
}

// WorkingSetBytes is the paper's three-block working set of a base task.
func WorkingSetBytes(m int) int { return 3 * m * m * 8 }

// CompulsoryLines is the minimum line traffic of a base task: streaming
// three m×m blocks once.
func CompulsoryLines(m, lineBytes int) float64 {
	lw := float64(lineBytes) / 8
	return math.Ceil(3 * float64(m*m) / lw)
}

// MaxMissBound is the paper's per-task upper bound on cache misses,
// assuming the cache holds no more than three lines: for every (k, i)
// iteration pair the kernel touches the C[i][j·] segment, the C[k][j·]
// segment, C[i][k] and C[k][k] — two segment transfers plus two single
// lines. The iteration pairs and segment lengths depend on the task kind.
func MaxMissBound(bench core.BenchID, kind dag.Kind, m, lineBytes int) float64 {
	lw := float64(lineBytes) / 8
	seg := func(elems int) float64 {
		if elems <= 0 {
			return 0
		}
		return math.Ceil(float64(elems) / lw)
	}
	if bench == core.SW {
		// Per row: three row segments (above, above-left, own) + sequence
		// elements.
		return float64(m) * (3*seg(m) + 2)
	}
	total := 0.0
	for k := 0; k < m; k++ {
		var rows int   // i iterations at this k
		var segLen int // j-segment length at this k
		if bench == core.FW {
			rows, segLen = m, m
		} else {
			switch kind {
			case dag.KindA:
				rows, segLen = m-1-k, m-1-k
			case dag.KindB:
				rows, segLen = m-1-k, m
			case dag.KindC:
				rows, segLen = m, m-1-k
			default: // KindD
				rows, segLen = m, m
			}
		}
		if rows <= 0 || segLen <= 0 {
			continue
		}
		total += float64(rows) * (2*seg(segLen) + 2)
	}
	return total
}

// streamLines is the realistic per-task traffic at a level whose capacity
// cannot hold the three-block working set: the own block streams once per
// elimination step, plus the pivot row/column blocks.
func streamLines(bench core.BenchID, kind dag.Kind, m, lineBytes int) float64 {
	lw := float64(lineBytes) / 8
	shape := gep.Triangular
	if bench == core.FW {
		shape = gep.Cube
	}
	u := float64(Updates(kind, m, shape))
	if bench == core.SW {
		u = float64(3 * m * m)
	}
	return u/lw + CompulsoryLines(m, lineBytes)
}

// LevelMisses returns the effective miss count of one base task at a cache
// level: compulsory when the three-block working set fits, the streaming
// estimate otherwise.
func LevelMisses(bench core.BenchID, kind dag.Kind, m int, lvl machine.CacheLevel) float64 {
	if lvl.Fits(WorkingSetBytes(m)) {
		return CompulsoryLines(m, lvl.LineBytes)
	}
	return streamLines(bench, kind, m, lvl.LineBytes)
}

// MemTime prices one base task's data movement through the hierarchy:
// every L1 miss is served by L2 at L1.MissCost, and so on down to memory.
func MemTime(mach *machine.Machine, bench core.BenchID, kind dag.Kind, m int) float64 {
	t := LevelMisses(bench, kind, m, mach.L1) * mach.L1.MissCost
	t += LevelMisses(bench, kind, m, mach.L2) * mach.L2.MissCost
	l3 := LevelMisses(bench, kind, m, mach.L3)
	t += l3 * mach.L3.MissCost
	// Lines missing in L3 go to memory.
	if !mach.L3.Fits(WorkingSetBytes(m)) {
		t += l3 * mach.MemMissCost
	} else {
		t += CompulsoryLines(m, mach.L3.LineBytes) * mach.MemMissCost * 0.1
	}
	return t
}

// ExecTime is the modelled execution time of one base task: compute plus
// data movement. Fork-join executions of the blocked GE/FW kernels benefit
// from depth-first locality and effective prefetching (the machine's
// PrefetchFactor): the LIFO schedule re-visits the blocks a parent call
// just touched. Data-flow executions pay the full memory cost — the
// paper's §IV-B observation that coarse-grained data-flow irregularity
// defeats the prefetcher. SW tiles stream rows identically under both
// models, so neither side gets the discount there.
func ExecTime(mach *machine.Machine, bench core.BenchID, kind dag.Kind, m int, forkJoin bool) float64 {
	mem := MemTime(mach, bench, kind, m)
	if forkJoin && bench != core.SW {
		mem *= mach.PrefetchFactor
	}
	return Flops(bench, kind, m)*mach.FlopTime + mem
}

// depCount is the number of pre-declared dependencies / blocking gets of a
// base task by kind (cf. internal/gep's deps and Listing 5).
func depCount(kind dag.Kind) float64 {
	switch kind {
	case dag.KindA:
		return 1
	case dag.KindB, dag.KindC:
		return 2
	case dag.KindD:
		return 4
	case dag.KindSW:
		return 3
	default:
		return 0
	}
}

// abortFraction is the modelled fraction of blocking gets that fail on
// first execution under the native variant (each failure re-executes the
// step from scratch).
const abortFraction = 0.5

// tagTreeFactor amortises the recursive tag-expansion steps over base
// tasks: an 8-ary recursion tree has ≈ N/7 internal nodes.
const tagTreeFactor = 8.0 / 7.0

// manualSerialFraction is the share of the manual variant's up-front
// instantiation that cannot be overlapped with execution (the environment
// expands the task graph while only already-released tasks can run).
const manualSerialFraction = 0.35

// CostsFor builds the simulator cost table for one configuration. n is the
// problem size, base the requested base size (the effective tile side is
// gep.BaseSize(n, base)), totalTasks the number of base tasks in the DAG.
func CostsFor(mach *machine.Machine, bench core.BenchID, n, base int, v core.Variant, totalTasks int) simsched.Costs {
	m := gep.BaseSize(n, base)
	var c simsched.Costs
	o := mach.Overheads
	fj := v == core.OMPTasking
	for k := 0; k < dag.NumKinds; k++ {
		kind := dag.Kind(k)
		if kind == dag.KindJoin {
			c.Overhead[k] = o.JoinFJ
			continue
		}
		c.Exec[k] = ExecTime(mach, bench, kind, m, fj)
		switch v {
		case core.OMPTasking:
			c.Overhead[k] = o.SpawnFJ
		case core.NativeCnC:
			// Each of the task's blocking gets fails with probability
			// abortFraction, costing an abort/requeue plus another
			// scheduler round trip for the re-execution.
			c.Overhead[k] = o.TagPut*tagTreeFactor + o.StepSched +
				abortFraction*depCount(kind)*(o.AbortRetry+0.5*o.StepSched)
		case core.TunerCnC:
			c.Overhead[k] = o.TagPut*tagTreeFactor + 0.3*o.StepSched + depCount(kind)*o.DepCheck
		case core.ManualCnC:
			c.Overhead[k] = o.StepSched + depCount(kind)*o.DepCheck + o.Instantiate
		default:
			c.Overhead[k] = o.TagPut
		}
	}
	switch v {
	case core.ManualCnC:
		c.Startup = float64(totalTasks) * o.Instantiate * manualSerialFraction
		c.SerialPerTask = o.ManualSerial
	case core.OMPTasking:
		c.SerialPerTask = o.FJSerial
	default:
		c.SerialPerTask = o.CnCSerial
	}
	return c
}

// EstimatedTime is the paper's "Estimated" series for the GE (and FW)
// figures: total modelled work — using the per-level effective miss counts
// and zero recursion/scheduling overhead — divided fairly over the cores.
func EstimatedTime(mach *machine.Machine, bench core.BenchID, n, base int) float64 {
	m := gep.BaseSize(n, base)
	tiles := n / m
	shape := gep.Triangular
	if bench == core.FW {
		shape = gep.Cube
	}
	var total float64
	if bench == core.SW {
		total = float64(tiles*tiles) * ExecTime(mach, bench, dag.KindSW, m, false)
	} else {
		a, b, cc, d := gep.TaskCount(tiles, shape)
		total = float64(a)*ExecTime(mach, bench, dag.KindA, m, false) +
			float64(b)*ExecTime(mach, bench, dag.KindB, m, false) +
			float64(cc)*ExecTime(mach, bench, dag.KindC, m, false) +
			float64(d)*ExecTime(mach, bench, dag.KindD, m, false)
	}
	return total / float64(mach.Cores)
}

// EstimatedMaxMisses is the model side of Table I: the summed per-task
// upper bound on cache misses over the whole R-DP GE computation at the
// given base size (the bound is line-size dependent but capacity
// independent — "the cache cannot hold more than three lines").
func EstimatedMaxMisses(bench core.BenchID, n, base, lineBytes int) float64 {
	m := gep.BaseSize(n, base)
	tiles := n / m
	shape := gep.Triangular
	if bench == core.FW {
		shape = gep.Cube
	}
	a, b, c, d := gep.TaskCount(tiles, shape)
	return float64(a)*MaxMissBound(bench, dag.KindA, m, lineBytes) +
		float64(b)*MaxMissBound(bench, dag.KindB, m, lineBytes) +
		float64(c)*MaxMissBound(bench, dag.KindC, m, lineBytes) +
		float64(d)*MaxMissBound(bench, dag.KindD, m, lineBytes)
}

// Describe renders the model's view of one configuration, for dpsim.
func Describe(mach *machine.Machine, bench core.BenchID, n, base int) string {
	m := gep.BaseSize(n, base)
	return fmt.Sprintf("%s %s n=%d base=%d: task exec D=%.3gs (flops %.3g, ws %dKB)",
		mach.Name, bench, n, m,
		ExecTime(mach, bench, dag.KindD, m, false),
		Flops(bench, dag.KindD, m),
		WorkingSetBytes(m)>>10)
}

// BestBase picks the base size minimising the modelled per-core work — the
// model-driven counterpart of sweeping the figures' x-axis, usable as an
// autotuner default before any measurement. It searches powers of two in
// [minBase, n/2].
func BestBase(mach *machine.Machine, bench core.BenchID, n, minBase int) int {
	if minBase < 1 {
		minBase = 8
	}
	best, bestTime := minBase, math.Inf(1)
	for base := minBase; base <= n/2; base *= 2 {
		t := EstimatedTime(mach, bench, n, base)
		// Penalise starvation the flat estimate cannot see: fewer ready
		// tasks than cores forces idle processors.
		tiles := n / gep.BaseSize(n, base)
		shape := gep.Triangular
		if bench == core.FW {
			shape = gep.Cube
		}
		tasks := TotalTasksGEP(tiles, shape)
		if bench == core.SW {
			tasks = tiles * tiles
		}
		if tasks < mach.Cores {
			t *= float64(mach.Cores) / float64(tasks)
		}
		// The paper's Estimated model is overhead-free; an autotuner must
		// also price the per-task scheduling work that makes tiny bases
		// unprofitable in every measured curve.
		t += float64(tasks) * (mach.Overheads.TagPut + mach.Overheads.StepSched) / float64(mach.Cores)
		if t < bestTime {
			best, bestTime = base, t
		}
	}
	return best
}
