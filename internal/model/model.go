// Package model prices the paper's analytical model (§IV-B) and derives
// the cost tables the discrete-event simulator runs on.
//
// The benchmark-specific arithmetic — task censuses, per-kind flop counts,
// the three-line cache-miss bounds and streaming traffic — lives with each
// benchmark behind the bench.Benchmark interface (internal/bench). This
// package keeps what is machine-dependent and benchmark-generic:
//
//  1. Cache misses. Per level the effective miss count is the compulsory
//     traffic when three m×m blocks fit and grows toward the benchmark's
//     streaming/bound regime when they do not. This is what produces
//     Table I and the "Estimated" curves.
//
//  2. Variant overheads. Each scheduling event of each variant is priced
//     using the machine's Overheads constants: OpenMP tasks pay a spawn,
//     CnC steps pay tag-put + scheduling, native blocking gets pay
//     expected abort/requeue re-executions, tuned variants pay dependency
//     checks, and the manual variant additionally pays the up-front
//     instantiation of the entire task graph.
package model

import (
	"fmt"
	"math"

	"dpflow/internal/bench"
	"dpflow/internal/core"
	"dpflow/internal/dag"
	"dpflow/internal/gep"
	"dpflow/internal/machine"
	"dpflow/internal/simsched"
)

// LevelMisses returns the effective miss count of one base task at a cache
// level: compulsory when the three-block working set fits, the benchmark's
// streaming estimate otherwise.
func LevelMisses(b bench.Benchmark, kind dag.Kind, m int, lvl machine.CacheLevel) float64 {
	if lvl.Fits(bench.WorkingSetBytes(m)) {
		return bench.CompulsoryLines(m, lvl.LineBytes)
	}
	return b.StreamLines(kind, m, lvl.LineBytes)
}

// MemTime prices one base task's data movement through the hierarchy:
// every L1 miss is served by L2 at L1.MissCost, and so on down to memory.
func MemTime(mach *machine.Machine, b bench.Benchmark, kind dag.Kind, m int) float64 {
	t := LevelMisses(b, kind, m, mach.L1) * mach.L1.MissCost
	t += LevelMisses(b, kind, m, mach.L2) * mach.L2.MissCost
	l3 := LevelMisses(b, kind, m, mach.L3)
	t += l3 * mach.L3.MissCost
	// Lines missing in L3 go to memory.
	if !mach.L3.Fits(bench.WorkingSetBytes(m)) {
		t += l3 * mach.MemMissCost
	} else {
		t += bench.CompulsoryLines(m, mach.L3.LineBytes) * mach.MemMissCost * 0.1
	}
	return t
}

// ExecTime is the modelled execution time of one base task: compute plus
// data movement. Fork-join executions of prefetch-friendly benchmarks
// benefit from depth-first locality and effective prefetching (the
// machine's PrefetchFactor): the LIFO schedule re-visits the blocks a
// parent call just touched. Data-flow executions pay the full memory cost —
// the paper's §IV-B observation that coarse-grained data-flow irregularity
// defeats the prefetcher. SW reports itself prefetch-unfriendly: its tiles
// stream rows identically under both models, so neither side gets the
// discount there.
func ExecTime(mach *machine.Machine, b bench.Benchmark, kind dag.Kind, m int, forkJoin bool) float64 {
	mem := MemTime(mach, b, kind, m)
	if forkJoin && b.PrefetchFriendly() {
		mem *= mach.PrefetchFactor
	}
	return b.Flops(kind, m)*mach.FlopTime + mem
}

// abortFraction is the modelled fraction of blocking gets that fail on
// first execution under the native variant (each failure re-executes the
// step from scratch).
const abortFraction = 0.5

// tagTreeFactor amortises the recursive tag-expansion steps over base
// tasks: an 8-ary recursion tree has ≈ N/7 internal nodes.
const tagTreeFactor = 8.0 / 7.0

// manualSerialFraction is the share of the manual variant's up-front
// instantiation that cannot be overlapped with execution (the environment
// expands the task graph while only already-released tasks can run).
const manualSerialFraction = 0.35

// CostsFor builds the simulator cost table for one configuration. n is the
// problem size, base the requested base size (the effective tile side is
// gep.BaseSize(n, base)), totalTasks the number of base tasks in the DAG.
func CostsFor(mach *machine.Machine, b bench.Benchmark, n, base int, v core.Variant, totalTasks int) simsched.Costs {
	m := gep.BaseSize(n, base)
	var c simsched.Costs
	o := mach.Overheads
	fj := v == core.OMPTasking
	for k := 0; k < dag.NumKinds; k++ {
		kind := dag.Kind(k)
		if kind == dag.KindJoin {
			c.Overhead[k] = o.JoinFJ
			continue
		}
		c.Exec[k] = ExecTime(mach, b, kind, m, fj)
		switch v {
		case core.OMPTasking:
			c.Overhead[k] = o.SpawnFJ
		case core.NativeCnC:
			// Each of the task's blocking gets fails with probability
			// abortFraction, costing an abort/requeue plus another
			// scheduler round trip for the re-execution.
			c.Overhead[k] = o.TagPut*tagTreeFactor + o.StepSched +
				abortFraction*b.DepCount(kind)*(o.AbortRetry+0.5*o.StepSched)
		case core.TunerCnC:
			c.Overhead[k] = o.TagPut*tagTreeFactor + 0.3*o.StepSched + b.DepCount(kind)*o.DepCheck
		case core.ManualCnC:
			c.Overhead[k] = o.StepSched + b.DepCount(kind)*o.DepCheck + o.Instantiate
		default:
			c.Overhead[k] = o.TagPut
		}
	}
	switch v {
	case core.ManualCnC:
		c.Startup = float64(totalTasks) * o.Instantiate * manualSerialFraction
		c.SerialPerTask = o.ManualSerial
	case core.OMPTasking:
		c.SerialPerTask = o.FJSerial
	default:
		c.SerialPerTask = o.CnCSerial
	}
	return c
}

// EstimatedTime is the paper's "Estimated" series for the figures: total
// modelled work — using the per-level effective miss counts and zero
// recursion/scheduling overhead — divided fairly over the cores.
func EstimatedTime(mach *machine.Machine, b bench.Benchmark, n, base int) float64 {
	m := gep.BaseSize(n, base)
	tiles := n / m
	var total float64
	for k, count := range b.KindCounts(tiles) {
		if count == 0 {
			continue
		}
		total += float64(count) * ExecTime(mach, b, dag.Kind(k), m, false)
	}
	return total / float64(mach.Cores)
}

// EstimatedMaxMisses is the model side of Table I: the summed per-task
// upper bound on cache misses over the whole R-DP computation at the given
// base size (the bound is line-size dependent but capacity independent —
// "the cache cannot hold more than three lines").
func EstimatedMaxMisses(b bench.Benchmark, n, base, lineBytes int) float64 {
	m := gep.BaseSize(n, base)
	tiles := n / m
	var total float64
	for k, count := range b.KindCounts(tiles) {
		if count == 0 {
			continue
		}
		total += float64(count) * b.MaxMissBound(dag.Kind(k), m, lineBytes)
	}
	return total
}

// dominantKind is the benchmark's most numerous base-task kind at a
// representative tile count — KindD for the GEP family (updates dominate
// the census), KindSW for SW's single-kind wavefront.
func dominantKind(b bench.Benchmark) dag.Kind {
	kind, max := dag.Kind(0), -1
	for k, count := range b.KindCounts(8) {
		if count > max {
			kind, max = dag.Kind(k), count
		}
	}
	return kind
}

// Describe renders the model's view of one configuration, for dpsim.
func Describe(mach *machine.Machine, b bench.Benchmark, n, base int) string {
	m := gep.BaseSize(n, base)
	kind := dominantKind(b)
	return fmt.Sprintf("%s %s n=%d base=%d: task exec D=%.3gs (flops %.3g, ws %dKB)",
		mach.Name, b.ID(), n, m,
		ExecTime(mach, b, kind, m, false),
		b.Flops(kind, m),
		bench.WorkingSetBytes(m)>>10)
}

// BestBase picks the base size minimising the modelled per-core work — the
// model-driven counterpart of sweeping the figures' x-axis, usable as an
// autotuner default before any measurement. It searches powers of two in
// [minBase, n/2].
func BestBase(mach *machine.Machine, b bench.Benchmark, n, minBase int) int {
	if minBase < 1 {
		minBase = 8
	}
	best, bestTime := minBase, math.Inf(1)
	for base := minBase; base <= n/2; base *= 2 {
		t := EstimatedTime(mach, b, n, base)
		// Penalise starvation the flat estimate cannot see: fewer ready
		// tasks than cores forces idle processors.
		tiles := n / gep.BaseSize(n, base)
		tasks := b.TotalTasks(tiles)
		if tasks < mach.Cores {
			t *= float64(mach.Cores) / float64(tasks)
		}
		// The paper's Estimated model is overhead-free; an autotuner must
		// also price the per-task scheduling work that makes tiny bases
		// unprofitable in every measured curve.
		t += float64(tasks) * (mach.Overheads.TagPut + mach.Overheads.StepSched) / float64(mach.Cores)
		if t < bestTime {
			best, bestTime = base, t
		}
	}
	return best
}
