package model

import (
	"math"
	"testing"

	"dpflow/internal/core"
	"dpflow/internal/dag"
	"dpflow/internal/gep"
	"dpflow/internal/machine"
	"dpflow/internal/simsched"
)

// The paper's closed-form task count (1/3)T³+(1/2)T²+(1/6)T must equal the
// per-function census of the recursion.
func TestTaskCountFormulaMatchesCensus(t *testing.T) {
	for _, tiles := range []int{1, 2, 3, 4, 8, 16, 100} {
		for _, shape := range []gep.Shape{gep.Triangular, gep.Cube} {
			a, b, c, d := gep.TaskCount(tiles, shape)
			if got, want := TotalTasksGEP(tiles, shape), a+b+c+d; got != want {
				t.Fatalf("%v tiles=%d: formula %d != census %d", shape, tiles, got, want)
			}
		}
	}
}

// Updates must agree with brute-force counting of the guarded loop nest.
func TestUpdatesBruteForce(t *testing.T) {
	for _, m := range []int{1, 2, 3, 4, 8} {
		counts := map[dag.Kind]int{}
		// Count triangular-guard updates in a block by kind geometry:
		// A: i>k && j>k within block; B: rows i>k, all j of a disjoint
		// column block; C: all i, cols j>k; D: everything.
		for k := 0; k < m; k++ {
			counts[dag.KindA] += (m - 1 - k) * (m - 1 - k)
			counts[dag.KindB] += (m - 1 - k) * m
			counts[dag.KindC] += m * (m - 1 - k)
			counts[dag.KindD] += m * m
		}
		for kind, want := range counts {
			if got := Updates(kind, m, gep.Triangular); got != want {
				t.Fatalf("Updates(%v, %d) = %d, want %d", kind, m, got, want)
			}
		}
		if got := Updates(dag.KindB, m, gep.Cube); got != m*m*m {
			t.Fatalf("cube Updates = %d, want %d", got, m*m*m)
		}
		if got := Updates(dag.KindSW, m, gep.Triangular); got != m*m {
			t.Fatalf("SW Updates = %d", got)
		}
	}
}

func TestMaxMissBoundProperties(t *testing.T) {
	// The bound must dominate compulsory traffic and grow with m.
	prev := 0.0
	for _, m := range []int{8, 16, 32, 64, 128} {
		b := MaxMissBound(core.GE, dag.KindD, m, 64)
		if b <= prev {
			t.Fatalf("bound not increasing at m=%d", m)
		}
		if b < CompulsoryLines(m, 64) {
			t.Fatalf("bound %v below compulsory %v at m=%d", b, CompulsoryLines(m, 64), m)
		}
		prev = b
	}
	// Closed-form check for D: m² rows × (2·ceil(m/8)+2) at 64B lines.
	m := 16
	if got, want := MaxMissBound(core.GE, dag.KindD, m, 64), float64(m*m*(2*2+2)); got != want {
		t.Fatalf("D bound = %v, want %v", got, want)
	}
	// A ≤ B,C ≤ D for the same m.
	a := MaxMissBound(core.GE, dag.KindA, m, 64)
	b := MaxMissBound(core.GE, dag.KindB, m, 64)
	d := MaxMissBound(core.GE, dag.KindD, m, 64)
	if !(a <= b && b <= d) {
		t.Fatalf("bound ordering violated: A=%v B=%v D=%v", a, b, d)
	}
}

// The Table I mechanism: per-level effective misses must jump exactly when
// three blocks stop fitting — at base 256 for Skylake's 1MB L2 (3·256²·8 =
// 1.5MB) and at base 2048 for its 32MB L3 (3·2048²·8 = 96MB), matching the
// paper's observed drops after 128 (L2) and 1024 (L3).
func TestFitThresholdsSkylake(t *testing.T) {
	mach := machine.SKYLAKE192()
	if !mach.L2.Fits(WorkingSetBytes(128)) {
		t.Fatal("3 blocks of 128² must fit Skylake L2")
	}
	if mach.L2.Fits(WorkingSetBytes(256)) {
		t.Fatal("3 blocks of 256² must not fit Skylake L2")
	}
	if !mach.L3.Fits(WorkingSetBytes(1024)) {
		t.Fatal("3 blocks of 1024² must fit Skylake L3 share")
	}
	if mach.L3.Fits(WorkingSetBytes(2048)) {
		t.Fatal("3 blocks of 2048² must not fit Skylake L3 share")
	}
}

func TestExecTimePrefetchAdvantage(t *testing.T) {
	mach := machine.EPYC64()
	fj := ExecTime(mach, core.GE, dag.KindD, 128, true)
	df := ExecTime(mach, core.GE, dag.KindD, 128, false)
	if fj >= df {
		t.Fatalf("fork-join task (%v) should be cheaper than data-flow (%v)", fj, df)
	}
	flops := Flops(core.GE, dag.KindD, 128) * mach.FlopTime
	if fj < flops {
		t.Fatalf("prefetching cannot beat pure compute time")
	}
}

func TestCostsForVariantOrdering(t *testing.T) {
	mach := machine.EPYC64()
	tasks := TotalTasksGEP(64, gep.Triangular)
	omp := CostsFor(mach, core.GE, 1024, 16, core.OMPTasking, tasks)
	nat := CostsFor(mach, core.GE, 1024, 16, core.NativeCnC, tasks)
	tun := CostsFor(mach, core.GE, 1024, 16, core.TunerCnC, tasks)
	man := CostsFor(mach, core.GE, 1024, 16, core.ManualCnC, tasks)

	d := dag.KindD
	if !(omp.Overhead[d] < tun.Overhead[d] && tun.Overhead[d] < nat.Overhead[d]) {
		t.Fatalf("overhead ordering wrong: omp=%v tuner=%v native=%v",
			omp.Overhead[d], tun.Overhead[d], nat.Overhead[d])
	}
	if man.Startup <= 0 || omp.Startup != 0 || nat.Startup != 0 {
		t.Fatalf("startup terms wrong: manual=%v omp=%v native=%v",
			man.Startup, omp.Startup, nat.Startup)
	}
	if omp.Exec[d] >= nat.Exec[d] {
		t.Fatalf("fork-join exec %v should be below data-flow exec %v (prefetch)",
			omp.Exec[d], nat.Exec[d])
	}
	if omp.Overhead[dag.KindJoin] <= 0 {
		t.Fatal("joins must cost something under OMP")
	}
}

// End-to-end model sanity: simulated GE times on EPYC-64 are in the broad
// magnitude range the paper reports (seconds to hundreds of seconds), and
// the per-base-size curve has the U shape: the best base size is interior.
func TestSimulatedGEMagnitudeAndShape(t *testing.T) {
	mach := machine.EPYC64()
	n := 4096
	var times []float64
	bases := []int{16, 64, 128, 256, 512, 1024}
	for _, base := range bases {
		tiles := n / gep.BaseSize(n, base)
		g := dag.NewGEPDataflow(tiles, gep.Triangular)
		c := CostsFor(mach, core.GE, n, base, core.NativeCnC, g.Len())
		r, err := simsched.Simulate(g, mach.Cores, c)
		if err != nil {
			t.Fatal(err)
		}
		times = append(times, r.Makespan)
	}
	best := 0
	for i, v := range times {
		if v < times[best] {
			best = i
		}
	}
	if best == 0 || best == len(times)-1 {
		t.Fatalf("no interior optimum: times=%v (bases %v)", times, bases)
	}
	if times[best] < 0.05 || times[best] > 500 {
		t.Fatalf("best simulated time %.3gs outside plausible range (times=%v)", times[best], times)
	}
}

// bestTime is the minimum simulated makespan over a base-size sweep — the
// quantity the paper's "X outperforms Y" statements refer to (each variant
// runs at its own best block size).
func bestTime(t *testing.T, mach *machine.Machine, bench core.BenchID, n int, v core.Variant, bases []int) float64 {
	t.Helper()
	best := math.Inf(1)
	for _, base := range bases {
		if base > n/2 {
			continue
		}
		tiles := n / gep.BaseSize(n, base)
		var g dag.Graph
		switch {
		case bench == core.SW && v == core.OMPTasking:
			g = dag.NewSWForkJoin(tiles)
		case bench == core.SW:
			g = dag.NewSWDataflow(tiles)
		case v == core.OMPTasking && bench == core.FW:
			g = dag.NewGEPForkJoin(tiles, gep.Cube)
		case v == core.OMPTasking:
			g = dag.NewGEPForkJoin(tiles, gep.Triangular)
		case bench == core.FW:
			g = dag.NewGEPDataflow(tiles, gep.Cube)
		default:
			g = dag.NewGEPDataflow(tiles, gep.Triangular)
		}
		r, err := simsched.Simulate(g, mach.Cores, CostsFor(mach, bench, n, base, v, g.Len()))
		if err != nil {
			t.Fatal(err)
		}
		if r.Makespan < best {
			best = r.Makespan
		}
	}
	return best
}

// The paper's headline claims, §I and §IV-B:
//  1. Fixed machine, growing input (GE/FW): data-flow wins small problems,
//     fork-join wins large ones.
//  2. Fixed problem, more cores: data-flow wins on the bigger machine even
//     where fork-join won on the smaller one.
//  3. SW: data-flow wins at every size (joins block the wavefront).
func TestCrossoverClaims(t *testing.T) {
	bases := []int{32, 64, 128, 256, 512}
	epyc, skx := machine.EPYC64(), machine.SKYLAKE192()

	// Claim 1 on EPYC-64: GE small vs large.
	smallDF := bestTime(t, epyc, core.GE, 2048, core.TunerCnC, bases)
	smallFJ := bestTime(t, epyc, core.GE, 2048, core.OMPTasking, bases)
	if smallDF >= smallFJ {
		t.Fatalf("GE 2K on EPYC: data-flow %v should beat fork-join %v", smallDF, smallFJ)
	}
	largeDF := bestTime(t, epyc, core.GE, 8192, core.NativeCnC, bases)
	largeFJ := bestTime(t, epyc, core.GE, 8192, core.OMPTasking, bases)
	if largeFJ >= largeDF {
		t.Fatalf("GE 8K on EPYC: fork-join %v should beat data-flow %v", largeFJ, largeDF)
	}

	// Claim 2: the same 8K GE problem on 192 cores flips back to data-flow.
	skxDF := bestTime(t, skx, core.GE, 8192, core.NativeCnC, bases)
	skxFJ := bestTime(t, skx, core.GE, 8192, core.OMPTasking, bases)
	if skxDF >= skxFJ {
		t.Fatalf("GE 8K on SKYLAKE-192: data-flow %v should beat fork-join %v", skxDF, skxFJ)
	}

	// Claim 3: SW favours data-flow at every size on both machines.
	for _, mach := range []*machine.Machine{epyc, skx} {
		for _, n := range []int{2048, 8192, 16384} {
			df := bestTime(t, mach, core.SW, n, core.NativeCnC, bases)
			fj := bestTime(t, mach, core.SW, n, core.OMPTasking, bases)
			if df >= fj {
				t.Fatalf("SW n=%d on %s: data-flow %v should beat fork-join %v", n, mach.Name, df, fj)
			}
		}
	}
}

func TestEstimatedTimePositiveAndScales(t *testing.T) {
	mach := machine.SKYLAKE192()
	small := EstimatedTime(mach, core.GE, 2048, 256)
	large := EstimatedTime(mach, core.GE, 16384, 256)
	if small <= 0 || large <= small {
		t.Fatalf("estimated times: 2K=%v 16K=%v", small, large)
	}
	if sw := EstimatedTime(mach, core.SW, 2048, 256); sw <= 0 {
		t.Fatalf("SW estimated = %v", sw)
	}
}

func TestEstimatedMaxMissesMonotoneInN(t *testing.T) {
	a := EstimatedMaxMisses(core.GE, 2048, 128, 64)
	b := EstimatedMaxMisses(core.GE, 4096, 128, 64)
	if b <= a {
		t.Fatalf("bound not growing with n: %v vs %v", a, b)
	}
	if fw := EstimatedMaxMisses(core.FW, 1024, 128, 64); fw <= EstimatedMaxMisses(core.GE, 1024, 128, 64) {
		t.Fatalf("FW (cube) bound should exceed GE (triangular): %v", fw)
	}
}

func TestDescribe(t *testing.T) {
	s := Describe(machine.EPYC64(), core.GE, 1024, 64)
	if s == "" {
		t.Fatal("empty description")
	}
}

func TestBestBaseInterior(t *testing.T) {
	mach := machine.EPYC64()
	for _, bench := range []core.BenchID{core.GE, core.SW, core.FW} {
		base := BestBase(mach, bench, 8192, 8)
		if base < 16 || base > 1024 {
			t.Fatalf("%v: BestBase = %d, expected an interior optimum", bench, base)
		}
	}
	// Larger machines push the optimum down or keep it (more cores want
	// more tasks), never up by much.
	e := BestBase(machine.EPYC64(), core.GE, 8192, 8)
	s := BestBase(machine.SKYLAKE192(), core.GE, 8192, 8)
	if s > e*4 {
		t.Fatalf("192-core best base %d much larger than 64-core %d", s, e)
	}
}
