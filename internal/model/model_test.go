package model

import (
	"math"
	"testing"

	"dpflow/internal/bench"
	"dpflow/internal/core"
	"dpflow/internal/dag"
	"dpflow/internal/gep"
	"dpflow/internal/machine"
	"dpflow/internal/simsched"
)

func mustBench(t *testing.T, id core.BenchID) bench.Benchmark {
	t.Helper()
	b, err := bench.Lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// The Table I mechanism: per-level effective misses must jump exactly when
// three blocks stop fitting — at base 256 for Skylake's 1MB L2 (3·256²·8 =
// 1.5MB) and at base 2048 for its 32MB L3 (3·2048²·8 = 96MB), matching the
// paper's observed drops after 128 (L2) and 1024 (L3).
func TestFitThresholdsSkylake(t *testing.T) {
	mach := machine.SKYLAKE192()
	if !mach.L2.Fits(bench.WorkingSetBytes(128)) {
		t.Fatal("3 blocks of 128² must fit Skylake L2")
	}
	if mach.L2.Fits(bench.WorkingSetBytes(256)) {
		t.Fatal("3 blocks of 256² must not fit Skylake L2")
	}
	if !mach.L3.Fits(bench.WorkingSetBytes(1024)) {
		t.Fatal("3 blocks of 1024² must fit Skylake L3 share")
	}
	if mach.L3.Fits(bench.WorkingSetBytes(2048)) {
		t.Fatal("3 blocks of 2048² must not fit Skylake L3 share")
	}
}

func TestExecTimePrefetchAdvantage(t *testing.T) {
	mach := machine.EPYC64()
	ge := mustBench(t, core.GE)
	fj := ExecTime(mach, ge, dag.KindD, 128, true)
	df := ExecTime(mach, ge, dag.KindD, 128, false)
	if fj >= df {
		t.Fatalf("fork-join task (%v) should be cheaper than data-flow (%v)", fj, df)
	}
	flops := ge.Flops(dag.KindD, 128) * mach.FlopTime
	if fj < flops {
		t.Fatalf("prefetching cannot beat pure compute time")
	}
}

func TestCostsForVariantOrdering(t *testing.T) {
	mach := machine.EPYC64()
	ge := mustBench(t, core.GE)
	tasks := ge.TotalTasks(64)
	omp := CostsFor(mach, ge, 1024, 16, core.OMPTasking, tasks)
	nat := CostsFor(mach, ge, 1024, 16, core.NativeCnC, tasks)
	tun := CostsFor(mach, ge, 1024, 16, core.TunerCnC, tasks)
	man := CostsFor(mach, ge, 1024, 16, core.ManualCnC, tasks)

	d := dag.KindD
	if !(omp.Overhead[d] < tun.Overhead[d] && tun.Overhead[d] < nat.Overhead[d]) {
		t.Fatalf("overhead ordering wrong: omp=%v tuner=%v native=%v",
			omp.Overhead[d], tun.Overhead[d], nat.Overhead[d])
	}
	if man.Startup <= 0 || omp.Startup != 0 || nat.Startup != 0 {
		t.Fatalf("startup terms wrong: manual=%v omp=%v native=%v",
			man.Startup, omp.Startup, nat.Startup)
	}
	if omp.Exec[d] >= nat.Exec[d] {
		t.Fatalf("fork-join exec %v should be below data-flow exec %v (prefetch)",
			omp.Exec[d], nat.Exec[d])
	}
	if omp.Overhead[dag.KindJoin] <= 0 {
		t.Fatal("joins must cost something under OMP")
	}
}

// End-to-end model sanity: simulated GE times on EPYC-64 are in the broad
// magnitude range the paper reports (seconds to hundreds of seconds), and
// the per-base-size curve has the U shape: the best base size is interior.
func TestSimulatedGEMagnitudeAndShape(t *testing.T) {
	mach := machine.EPYC64()
	ge := mustBench(t, core.GE)
	n := 4096
	var times []float64
	bases := []int{16, 64, 128, 256, 512, 1024}
	for _, base := range bases {
		tiles := n / gep.BaseSize(n, base)
		g := ge.Dataflow(tiles)
		c := CostsFor(mach, ge, n, base, core.NativeCnC, g.Len())
		r, err := simsched.Simulate(g, mach.Cores, c)
		if err != nil {
			t.Fatal(err)
		}
		times = append(times, r.Makespan)
	}
	best := 0
	for i, v := range times {
		if v < times[best] {
			best = i
		}
	}
	if best == 0 || best == len(times)-1 {
		t.Fatalf("no interior optimum: times=%v (bases %v)", times, bases)
	}
	if times[best] < 0.05 || times[best] > 500 {
		t.Fatalf("best simulated time %.3gs outside plausible range (times=%v)", times[best], times)
	}
}

// bestTime is the minimum simulated makespan over a base-size sweep — the
// quantity the paper's "X outperforms Y" statements refer to (each variant
// runs at its own best block size).
func bestTime(t *testing.T, mach *machine.Machine, b bench.Benchmark, n int, v core.Variant, bases []int) float64 {
	t.Helper()
	best := math.Inf(1)
	for _, base := range bases {
		if base > n/2 {
			continue
		}
		tiles := n / gep.BaseSize(n, base)
		var g dag.Graph
		if v == core.OMPTasking {
			g = b.ForkJoin(tiles)
		} else {
			g = b.Dataflow(tiles)
		}
		r, err := simsched.Simulate(g, mach.Cores, CostsFor(mach, b, n, base, v, g.Len()))
		if err != nil {
			t.Fatal(err)
		}
		if r.Makespan < best {
			best = r.Makespan
		}
	}
	return best
}

// The paper's headline claims, §I and §IV-B:
//  1. Fixed machine, growing input (GE/FW): data-flow wins small problems,
//     fork-join wins large ones.
//  2. Fixed problem, more cores: data-flow wins on the bigger machine even
//     where fork-join won on the smaller one.
//  3. SW: data-flow wins at every size (joins block the wavefront).
func TestCrossoverClaims(t *testing.T) {
	bases := []int{32, 64, 128, 256, 512}
	epyc, skx := machine.EPYC64(), machine.SKYLAKE192()
	ge, sw := mustBench(t, core.GE), mustBench(t, core.SW)

	// Claim 1 on EPYC-64: GE small vs large.
	smallDF := bestTime(t, epyc, ge, 2048, core.TunerCnC, bases)
	smallFJ := bestTime(t, epyc, ge, 2048, core.OMPTasking, bases)
	if smallDF >= smallFJ {
		t.Fatalf("GE 2K on EPYC: data-flow %v should beat fork-join %v", smallDF, smallFJ)
	}
	largeDF := bestTime(t, epyc, ge, 8192, core.NativeCnC, bases)
	largeFJ := bestTime(t, epyc, ge, 8192, core.OMPTasking, bases)
	if largeFJ >= largeDF {
		t.Fatalf("GE 8K on EPYC: fork-join %v should beat data-flow %v", largeFJ, largeDF)
	}

	// Claim 2: the same 8K GE problem on 192 cores flips back to data-flow.
	skxDF := bestTime(t, skx, ge, 8192, core.NativeCnC, bases)
	skxFJ := bestTime(t, skx, ge, 8192, core.OMPTasking, bases)
	if skxDF >= skxFJ {
		t.Fatalf("GE 8K on SKYLAKE-192: data-flow %v should beat fork-join %v", skxDF, skxFJ)
	}

	// Claim 3: SW favours data-flow at every size on both machines.
	for _, mach := range []*machine.Machine{epyc, skx} {
		for _, n := range []int{2048, 8192, 16384} {
			df := bestTime(t, mach, sw, n, core.NativeCnC, bases)
			fj := bestTime(t, mach, sw, n, core.OMPTasking, bases)
			if df >= fj {
				t.Fatalf("SW n=%d on %s: data-flow %v should beat fork-join %v", n, mach.Name, df, fj)
			}
		}
	}
}

func TestEstimatedTimePositiveAndScales(t *testing.T) {
	mach := machine.SKYLAKE192()
	ge := mustBench(t, core.GE)
	small := EstimatedTime(mach, ge, 2048, 256)
	large := EstimatedTime(mach, ge, 16384, 256)
	if small <= 0 || large <= small {
		t.Fatalf("estimated times: 2K=%v 16K=%v", small, large)
	}
	if sw := EstimatedTime(mach, mustBench(t, core.SW), 2048, 256); sw <= 0 {
		t.Fatalf("SW estimated = %v", sw)
	}
	// CH prices like a triangular GE over half the tiles: positive, and
	// below GE at equal n and base.
	ch := EstimatedTime(mach, mustBench(t, core.CH), 2048, 256)
	if ch <= 0 || ch >= small {
		t.Fatalf("CH estimated = %v, want in (0, GE=%v)", ch, small)
	}
}

func TestEstimatedMaxMissesMonotoneInN(t *testing.T) {
	ge := mustBench(t, core.GE)
	a := EstimatedMaxMisses(ge, 2048, 128, 64)
	b := EstimatedMaxMisses(ge, 4096, 128, 64)
	if b <= a {
		t.Fatalf("bound not growing with n: %v vs %v", a, b)
	}
	fw := mustBench(t, core.FW)
	if fwB := EstimatedMaxMisses(fw, 1024, 128, 64); fwB <= EstimatedMaxMisses(ge, 1024, 128, 64) {
		t.Fatalf("FW (cube) bound should exceed GE (triangular): %v", fwB)
	}
}

func TestDescribe(t *testing.T) {
	for _, b := range bench.All() {
		if s := Describe(machine.EPYC64(), b, 1024, 64); s == "" {
			t.Fatalf("%s: empty description", b.Name())
		}
	}
}

func TestBestBaseInterior(t *testing.T) {
	mach := machine.EPYC64()
	for _, b := range bench.All() {
		base := BestBase(mach, b, 8192, 8)
		if base < 16 || base > 1024 {
			t.Fatalf("%v: BestBase = %d, expected an interior optimum", b.ID(), base)
		}
	}
	// Larger machines push the optimum down or keep it (more cores want
	// more tasks), never up by much.
	ge := mustBench(t, core.GE)
	e := BestBase(machine.EPYC64(), ge, 8192, 8)
	s := BestBase(machine.SKYLAKE192(), ge, 8192, 8)
	if s > e*4 {
		t.Fatalf("192-core best base %d much larger than 64-core %d", s, e)
	}
}
