package cachesim

import (
	"testing"
	"testing/quick"
)

func oneLevel(size, line, ways int) *Hierarchy {
	return New(LevelConfig{Name: "L1", SizeBytes: size, LineBytes: line, Ways: ways})
}

func TestSequentialScanCompulsoryMisses(t *testing.T) {
	h := oneLevel(1<<10, 64, 4)
	const elems = 1024 // 8KB, 128 lines
	for i := 0; i < elems; i++ {
		h.Access(int64(8 * i))
	}
	s := h.Stats()[0]
	if s.Accesses != elems {
		t.Fatalf("accesses = %d", s.Accesses)
	}
	if s.Misses != elems*8/64 {
		t.Fatalf("misses = %d, want %d (one per line)", s.Misses, elems*8/64)
	}
}

func TestWorkingSetFitsSecondPassFree(t *testing.T) {
	h := oneLevel(8<<10, 64, 8)
	const elems = 512 // 4KB < 8KB
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < elems; i++ {
			h.Access(int64(8 * i))
		}
	}
	s := h.Stats()[0]
	if want := uint64(elems * 8 / 64); s.Misses != want {
		t.Fatalf("misses = %d, want %d (second pass all hits)", s.Misses, want)
	}
}

// LRU on a cyclic scan of a working set larger than capacity must miss on
// every line access (the classic LRU worst case).
func TestLRUCyclicThrash(t *testing.T) {
	h := oneLevel(1<<10, 64, 16) // fully associative, 16 lines
	lines := 17                  // one more than capacity
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < lines; i++ {
			h.Access(int64(64 * i))
		}
	}
	s := h.Stats()[0]
	if s.Misses != uint64(3*lines) {
		t.Fatalf("misses = %d, want %d (every access misses)", s.Misses, 3*lines)
	}
}

func TestAssociativityConflicts(t *testing.T) {
	// Direct-mapped: two lines mapping to the same set alternate -> thrash.
	h := oneLevel(1<<10, 64, 1) // 16 sets
	a, b := int64(0), int64(16*64)
	for i := 0; i < 10; i++ {
		h.Access(a)
		h.Access(b)
	}
	if s := h.Stats()[0]; s.Misses != 20 {
		t.Fatalf("direct-mapped conflict misses = %d, want 20", s.Misses)
	}
	// Two-way: both fit in the set, only compulsory misses.
	h2 := oneLevel(1<<10, 64, 2)
	for i := 0; i < 10; i++ {
		h2.Access(a)
		h2.Access(b)
	}
	if s := h2.Stats()[0]; s.Misses != 2 {
		t.Fatalf("2-way conflict misses = %d, want 2", s.Misses)
	}
}

func TestHierarchyProbing(t *testing.T) {
	h := New(
		LevelConfig{Name: "L1", SizeBytes: 512, LineBytes: 64, Ways: 8},
		LevelConfig{Name: "L2", SizeBytes: 4 << 10, LineBytes: 64, Ways: 8},
	)
	// Touch 16 lines (1KB): exceeds L1 (8 lines), fits L2.
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < 16; i++ {
			h.Access(int64(64 * i))
		}
	}
	s := h.Stats()
	if s[0].Accesses != 32 {
		t.Fatalf("L1 accesses = %d", s[0].Accesses)
	}
	if s[1].Accesses != s[0].Misses {
		t.Fatalf("L2 accesses %d != L1 misses %d", s[1].Accesses, s[0].Misses)
	}
	if s[1].Misses != 16 {
		t.Fatalf("L2 misses = %d, want 16 (compulsory only)", s[1].Misses)
	}
	if s[0].Misses <= 16 {
		t.Fatalf("L1 misses = %d, want > compulsory (capacity thrash)", s[0].Misses)
	}
}

func TestMissRateAndReset(t *testing.T) {
	h := oneLevel(1<<10, 64, 4)
	if r := h.Stats()[0].MissRate(); r != 0 {
		t.Fatalf("empty miss rate = %v", r)
	}
	h.Access(0)
	if r := h.Stats()[0].MissRate(); r != 1 {
		t.Fatalf("miss rate = %v, want 1", r)
	}
	h.Reset()
	s := h.Stats()[0]
	if s.Accesses != 0 || s.Misses != 0 {
		t.Fatal("reset did not clear counters")
	}
	h.Access(0)
	if h.Stats()[0].Misses != 1 {
		t.Fatal("reset did not clear contents")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	for _, cfg := range []LevelConfig{
		{SizeBytes: 0, LineBytes: 64, Ways: 1},
		{SizeBytes: 64, LineBytes: 0, Ways: 1},
		{SizeBytes: 64, LineBytes: 63, Ways: 1},
		{SizeBytes: 64, LineBytes: 64, Ways: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v: expected panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

// Property: misses never exceed accesses, and hits are monotone under
// repeated identical access (a re-access of the most recent line always
// hits).
func TestBasicInvariants(t *testing.T) {
	f := func(addrs []uint16) bool {
		h := oneLevel(2<<10, 64, 4)
		for _, a := range addrs {
			h.Access(int64(a))
			h.Access(int64(a)) // immediate re-access must hit
		}
		s := h.Stats()[0]
		return s.Misses <= s.Accesses && s.Misses <= uint64(len(addrs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// The Table I mechanism in miniature: trace R-DP GE at n=256 through a
// scaled two-level hierarchy and verify that the per-level misses jump
// when three base blocks stop fitting the level.
func TestTraceRDPGECapacityCliffs(t *testing.T) {
	// The kernel's resident working set is ~2 blocks (the updated block
	// plus the strided column block; the pivot-row block streams).
	// L2 = 16KB holds two blocks of up to 31²·8B -> fits base 16, is
	// marginal at 32, clearly overflows at 64.
	// L3 = 128KB -> fits base 64, overflows at 128.
	mk := func() *Hierarchy {
		return New(
			LevelConfig{Name: "L1", SizeBytes: 2 << 10, LineBytes: 64, Ways: 8},
			LevelConfig{Name: "L2", SizeBytes: 16 << 10, LineBytes: 64, Ways: 8, Hashed: true},
			LevelConfig{Name: "L3", SizeBytes: 128 << 10, LineBytes: 64, Ways: 16, Hashed: true},
		)
	}
	missesAt := func(base int) (l2, l3 uint64) {
		h := mk()
		stats, err := TraceRDPGE(h, 256, base)
		if err != nil {
			t.Fatal(err)
		}
		return stats[1].Misses, stats[2].Misses
	}
	l2a, l3a := missesAt(16)
	_, l3b := missesAt(32)
	l2c, l3c := missesAt(64)
	_, l3d := missesAt(128)
	if float64(l2c) < 2*float64(l2a) {
		t.Fatalf("L2 misses should jump when blocks stop fitting: base16=%d base64=%d", l2a, l2c)
	}
	if float64(l3d) < 2*float64(l3c) {
		t.Fatalf("L3 misses should jump when blocks stop fitting: base64=%d base128=%d", l3c, l3d)
	}
	if l3b > l3a*2 {
		t.Fatalf("L3 misses should stay near compulsory while blocks fit: base16=%d base32=%d", l3a, l3b)
	}
}

// Larger base sizes reduce total traffic while everything fits (temporal
// locality of blocking): actual L3 misses must be non-increasing from base
// 16 to 64 at n=256 with the scaled hierarchy above.
func TestBlockingImprovesLocality(t *testing.T) {
	prev := uint64(1 << 62)
	for _, base := range []int{8, 16, 32, 64} {
		h := New(
			LevelConfig{Name: "L1", SizeBytes: 2 << 10, LineBytes: 64, Ways: 8},
			LevelConfig{Name: "L2", SizeBytes: 16 << 10, LineBytes: 64, Ways: 8, Hashed: true},
			LevelConfig{Name: "L3", SizeBytes: 128 << 10, LineBytes: 64, Ways: 16, Hashed: true},
		)
		stats, err := TraceRDPGE(h, 256, base)
		if err != nil {
			t.Fatal(err)
		}
		l3 := stats[2].Misses
		if l3 > prev+prev/10 {
			t.Fatalf("L3 misses grew from %d to %d at base %d while blocks fit", prev, l3, base)
		}
		prev = l3
	}
}

// The FW tracer obeys the same capacity-cliff mechanics as GE and its
// access volume matches the n³ update count (three probes per update at
// the L1 level, minus the per-row hoisted multiplier).
func TestTraceRDPFW(t *testing.T) {
	h := New(
		LevelConfig{Name: "L1", SizeBytes: 2 << 10, LineBytes: 64, Ways: 8},
		LevelConfig{Name: "L2", SizeBytes: 16 << 10, LineBytes: 64, Ways: 8, Hashed: true},
	)
	const n, base = 64, 8
	stats, err := TraceRDPFW(h, n, base)
	if err != nil {
		t.Fatal(err)
	}
	wantAccesses := uint64(2*n*n*n + n*n*n/base) // 2 per (k,i,j) + 1 per (k,i)
	if stats[0].Accesses != wantAccesses {
		t.Fatalf("L1 accesses = %d, want %d", stats[0].Accesses, wantAccesses)
	}
	if stats[1].Misses == 0 || stats[1].Misses > stats[1].Accesses {
		t.Fatalf("L2 stats implausible: %+v", stats[1])
	}
}
