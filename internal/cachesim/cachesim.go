// Package cachesim is a multi-level set-associative LRU data-cache
// simulator. It stands in for the PAPI hardware counters the paper used to
// measure the "actual cache misses" of Table I: the exact address stream of
// the R-DP GE kernel is replayed through a simulated L1/L2/L3 hierarchy and
// the per-level miss counts take the place of the hardware events
// (DESIGN.md documents the substitution and the capacity scaling used to
// keep full traces tractable).
//
// The model is deliberately simple and deterministic: physical = virtual
// addresses, allocate-on-read-or-write, per-level LRU within a set, lines
// installed at every level on a miss, no inclusion enforcement on eviction
// and no write-back traffic. Those simplifications do not move the
// three-blocks-fit capacity cliffs Table I is about.
package cachesim

import "fmt"

// LevelConfig describes one cache level.
type LevelConfig struct {
	Name      string
	SizeBytes int
	LineBytes int
	Ways      int
	// Hashed selects hashed set indexing (a multiplicative hash of the
	// line address), as modern last-level caches use. Without it, plain
	// modulo indexing applies — which on power-of-two matrix strides maps
	// every row of a column block to the same set and thrashes, the
	// classic pathology hashed indexing exists to avoid. Table I traces
	// hash L2 and L3, matching the physically-hashed caches PAPI measured.
	Hashed bool
}

// LevelStats reports the traffic one level saw.
type LevelStats struct {
	Name     string
	Accesses uint64
	Misses   uint64
}

// MissRate returns misses/accesses (0 for an untouched level).
func (s LevelStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Hierarchy is a stack of cache levels probed top-down.
type Hierarchy struct {
	levels []*level
}

type level struct {
	name      string
	lineShift uint
	sets      int
	ways      int
	hashed    bool
	// tags is sets×ways line tags, kept in LRU order within each set
	// (index 0 = most recent).
	tags     []int64
	accesses uint64
	misses   uint64
}

// New builds a hierarchy from top (fastest) to bottom.
func New(cfgs ...LevelConfig) *Hierarchy {
	h := &Hierarchy{}
	for _, c := range cfgs {
		if c.LineBytes <= 0 || c.SizeBytes <= 0 || c.Ways <= 0 {
			panic(fmt.Sprintf("cachesim: invalid level %+v", c))
		}
		if c.LineBytes&(c.LineBytes-1) != 0 {
			panic(fmt.Sprintf("cachesim: line size %d not a power of two", c.LineBytes))
		}
		lines := c.SizeBytes / c.LineBytes
		sets := lines / c.Ways
		if sets < 1 {
			sets = 1
		}
		shift := uint(0)
		for 1<<shift < c.LineBytes {
			shift++
		}
		lv := &level{
			name:      c.Name,
			lineShift: shift,
			sets:      sets,
			ways:      c.Ways,
			hashed:    c.Hashed,
			tags:      make([]int64, sets*c.Ways),
		}
		for i := range lv.tags {
			lv.tags[i] = -1
		}
		h.levels = append(h.levels, lv)
	}
	return h
}

// Access replays one 8-byte element access at the given byte address. It
// probes levels top-down, stopping at the first hit, and installs the line
// in every level that missed.
func (h *Hierarchy) Access(addr int64) {
	for _, lv := range h.levels {
		if lv.access(addr) {
			return
		}
	}
}

func (lv *level) access(addr int64) bool {
	lv.accesses++
	lineAddr := addr >> lv.lineShift
	idx := uint64(lineAddr)
	if lv.hashed {
		idx *= 0x9E3779B97F4A7C15 // Fibonacci multiplicative hash
		idx >>= 16
	}
	set := int(idx % uint64(lv.sets))
	ways := lv.tags[set*lv.ways : set*lv.ways+lv.ways]
	for i, tag := range ways {
		if tag == lineAddr {
			// Move to front (most recently used).
			copy(ways[1:i+1], ways[:i])
			ways[0] = lineAddr
			return true
		}
	}
	lv.misses++
	copy(ways[1:], ways) // evict LRU (last), shift others down
	ways[0] = lineAddr
	return false
}

// Stats returns per-level statistics top-down.
func (h *Hierarchy) Stats() []LevelStats {
	out := make([]LevelStats, len(h.levels))
	for i, lv := range h.levels {
		out[i] = LevelStats{Name: lv.name, Accesses: lv.accesses, Misses: lv.misses}
	}
	return out
}

// Reset clears contents and counters.
func (h *Hierarchy) Reset() {
	for _, lv := range h.levels {
		for i := range lv.tags {
			lv.tags[i] = -1
		}
		lv.accesses, lv.misses = 0, 0
	}
}
