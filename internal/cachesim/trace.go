package cachesim

import (
	"context"

	"dpflow/internal/gep"
	"dpflow/internal/matrix"
)

// cancellable wraps a tracing kernel with a per-call context check. One
// check per kernel call is negligible against the b³ simulated accesses the
// call performs, and once the context is cancelled the remaining recursion
// fast-forwards through no-op calls in milliseconds.
func cancellable(ctx context.Context, kern gep.Kernel) gep.Kernel {
	return func(m *matrix.Dense, i0, j0, k0, b int) {
		if ctx.Err() != nil {
			return
		}
		kern(m, i0, j0, k0, b)
	}
}

// TraceKernelGE returns a gep.Kernel that, instead of computing, replays
// the exact address stream of the GE base-case kernel through the
// hierarchy: per elimination step k it touches the pivot X[k][k], per row
// the multiplier X[i][k], and per inner iteration the pivot-row element
// X[k][j] and the updated element X[i][j] — the four references the paper's
// cache-miss bound accounts (§IV-B).
//
// stride is the matrix row stride in elements; base is the byte address of
// element (0,0). Passing the kernel to gep.Algorithm.RDPSerial replays the
// full recursive execution in program order.
func TraceKernelGE(h *Hierarchy, baseAddr int64, stride int) gep.Kernel {
	addr := func(i, j int) int64 { return baseAddr + 8*int64(i*stride+j) }
	return func(_ *matrix.Dense, i0, j0, k0, b int) {
		for k := k0; k < k0+b; k++ {
			iStart := max(i0, k+1)
			jStart := max(j0, k+1)
			jEnd := j0 + b
			if jStart >= jEnd || iStart >= i0+b {
				continue
			}
			h.Access(addr(k, k))
			for i := iStart; i < i0+b; i++ {
				h.Access(addr(i, k))
				for j := jStart; j < jEnd; j++ {
					h.Access(addr(k, j))
					h.Access(addr(i, j))
				}
			}
		}
	}
}

// TraceRDPGE replays the full 2-way R-DP GE execution for an n×n table at
// the given base size through the hierarchy and returns the per-level
// statistics. This is the "actual cache misses" measurement of Table I,
// with the simulated hierarchy standing in for PAPI.
func TraceRDPGE(h *Hierarchy, n, base int) ([]LevelStats, error) {
	return TraceRDPGEContext(context.Background(), h, n, base)
}

// TraceRDPGEContext is TraceRDPGE with cooperative cancellation: a full
// trace is the slow unit of Table I (~10¹¹ accesses at the paper's scale),
// so the kernel checks ctx between base blocks and the trace returns
// ctx.Err() instead of partial statistics.
func TraceRDPGEContext(ctx context.Context, h *Hierarchy, n, base int) ([]LevelStats, error) {
	// The recursion never touches matrix data (the tracing kernel only
	// generates addresses), so a 1-row stand-in with the right geometry
	// would be unsafe; instead allocate the real table shape but share one
	// backing row via a stride trick — simplest is the honest allocation,
	// which for the scaled trace sizes is only a few MB.
	x := matrix.NewSquare(n)
	alg := gep.Algorithm{Kernel: cancellable(ctx, TraceKernelGE(h, 0, n)), Shape: gep.Triangular}
	if err := alg.RDPSerial(x, base); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return h.Stats(), nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TraceKernelFW replays the Floyd-Warshall base kernel's address stream:
// per (k, i, j) it touches X[i][k] (hoisted per row), X[k][j] and X[i][j].
// The paper notes its GE data-movement model "can be easily extended to
// the other DP algorithms"; this tracer is that extension for FW.
func TraceKernelFW(h *Hierarchy, baseAddr int64, stride int) gep.Kernel {
	addr := func(i, j int) int64 { return baseAddr + 8*int64(i*stride+j) }
	return func(_ *matrix.Dense, i0, j0, k0, b int) {
		for k := k0; k < k0+b; k++ {
			for i := i0; i < i0+b; i++ {
				h.Access(addr(i, k))
				for j := j0; j < j0+b; j++ {
					h.Access(addr(k, j))
					h.Access(addr(i, j))
				}
			}
		}
	}
}

// TraceRDPFW replays the full 2-way R-DP FW execution through the
// hierarchy and returns per-level statistics.
func TraceRDPFW(h *Hierarchy, n, base int) ([]LevelStats, error) {
	return TraceRDPFWContext(context.Background(), h, n, base)
}

// TraceRDPFWContext is TraceRDPFW with cooperative cancellation (see
// TraceRDPGEContext).
func TraceRDPFWContext(ctx context.Context, h *Hierarchy, n, base int) ([]LevelStats, error) {
	x := matrix.NewSquare(n)
	alg := gep.Algorithm{Kernel: cancellable(ctx, TraceKernelFW(h, 0, n)), Shape: gep.Cube}
	if err := alg.RDPSerial(x, base); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return h.Stats(), nil
}
