// Package matrix provides the dense row-major float64 matrix used as the DP
// table by every benchmark in this repository, together with tile (sub-matrix)
// views and comparison helpers.
//
// The matrix is deliberately simple: a single contiguous backing slice with
// row-major indexing, exactly like the double* tables of the paper's C++
// benchmarks. Tiles are lightweight views; they alias the parent storage so
// the recursive divide-and-conquer functions can update quadrants in place.
package matrix

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Dense is a row-major n×m matrix of float64 values.
//
// The zero value is an empty matrix; use New or FromRows to create a usable
// one.
type Dense struct {
	rows, cols int
	stride     int
	data       []float64
}

// New returns a zero-filled rows×cols matrix backed by one allocation.
func New(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: negative dimension %dx%d", rows, cols))
	}
	return &Dense{
		rows:   rows,
		cols:   cols,
		stride: cols,
		data:   make([]float64, rows*cols),
	}
}

// NewSquare returns a zero-filled n×n matrix.
func NewSquare(n int) *Dense { return New(n, n) }

// FromRows builds a matrix from a slice of equal-length rows, copying the
// data.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return New(0, 0)
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic(fmt.Sprintf("matrix: ragged rows: row 0 has %d cols, row %d has %d", m.cols, i, len(r)))
		}
		copy(m.Row(i), r)
	}
	return m
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// Stride returns the distance, in elements, between vertically adjacent
// entries of the backing storage. For a freshly allocated matrix the stride
// equals Cols; for tile views it is the stride of the root matrix.
func (m *Dense) Stride() int { return m.stride }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 { return m.data[i*m.stride+j] }

// Set stores v at row i, column j.
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.stride+j] = v }

// Row returns the i-th row as a slice aliasing the matrix storage. The slice
// has length Cols.
func (m *Dense) Row(i int) []float64 { return m.data[i*m.stride : i*m.stride+m.cols] }

// RowSeg returns the [j0, j1) segment of row i as a slice aliasing the
// matrix storage. The register-blocked kernels use it to hand the compiler
// exact-length slices: ranging over one segment and indexing the others at
// the same (re-sliced) length eliminates bounds checks from the stride-1
// inner loops.
func (m *Dense) RowSeg(i, j0, j1 int) []float64 {
	return m.data[i*m.stride+j0 : i*m.stride+j1]
}

// Data returns the backing slice when the matrix is contiguous (stride ==
// cols). It panics for non-contiguous tile views, where a flat slice would
// silently interleave out-of-tile elements.
func (m *Dense) Data() []float64 {
	if m.stride != m.cols {
		panic("matrix: Data called on non-contiguous view")
	}
	return m.data[:m.rows*m.cols]
}

// View returns the r×c sub-matrix whose top-left corner is (i, j). The view
// aliases the receiver's storage: writes through the view are visible in the
// parent and vice versa.
func (m *Dense) View(i, j, r, c int) *Dense {
	if i < 0 || j < 0 || r < 0 || c < 0 || i+r > m.rows || j+c > m.cols {
		panic(fmt.Sprintf("matrix: view [%d:%d, %d:%d] out of %dx%d", i, i+r, j, j+c, m.rows, m.cols))
	}
	return &Dense{
		rows:   r,
		cols:   c,
		stride: m.stride,
		data:   m.data[i*m.stride+j:],
	}
}

// Quadrant indices used by the 2-way recursive divide-and-conquer functions.
// For a matrix split at the midpoint: Q00 is top-left, Q01 top-right, Q10
// bottom-left and Q11 bottom-right.
const (
	Q00 = iota
	Q01
	Q10
	Q11
)

// Quad returns the four quadrants of a square matrix with even side length,
// in the order Q00, Q01, Q10, Q11. It panics when the matrix is not square
// or its side is odd: the divide-and-conquer drivers in this repository only
// recurse on power-of-two extents.
func (m *Dense) Quad() [4]*Dense {
	if m.rows != m.cols {
		panic(fmt.Sprintf("matrix: Quad of non-square %dx%d", m.rows, m.cols))
	}
	if m.rows%2 != 0 {
		panic(fmt.Sprintf("matrix: Quad of odd side %d", m.rows))
	}
	h := m.rows / 2
	return [4]*Dense{
		m.View(0, 0, h, h),
		m.View(0, h, h, h),
		m.View(h, 0, h, h),
		m.View(h, h, h, h),
	}
}

// Clone returns a deep copy with contiguous storage.
func (m *Dense) Clone() *Dense {
	c := New(m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		copy(c.Row(i), m.Row(i))
	}
	return c
}

// CopyFrom copies src into the receiver. Both matrices must have identical
// shapes.
func (m *Dense) CopyFrom(src *Dense) {
	if m.rows != src.rows || m.cols != src.cols {
		panic(fmt.Sprintf("matrix: CopyFrom shape mismatch %dx%d <- %dx%d", m.rows, m.cols, src.rows, src.cols))
	}
	for i := 0; i < m.rows; i++ {
		copy(m.Row(i), src.Row(i))
	}
}

// Fill sets every element to v.
func (m *Dense) Fill(v float64) {
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = v
		}
	}
}

// FillRandom fills the matrix with pseudo-random values in [lo, hi) drawn
// from rng.
func (m *Dense) FillRandom(rng *rand.Rand, lo, hi float64) {
	span := hi - lo
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = lo + span*rng.Float64()
		}
	}
}

// FillDiagonallyDominant fills the matrix with random values and then boosts
// the diagonal so the matrix is strictly diagonally dominant. GE without
// pivoting is numerically stable on such matrices, which is why the paper
// restricts itself to them.
func (m *Dense) FillDiagonallyDominant(rng *rand.Rand) {
	if m.rows != m.cols {
		panic("matrix: FillDiagonallyDominant needs a square matrix")
	}
	m.FillRandom(rng, 0, 1)
	for i := 0; i < m.rows; i++ {
		sum := 0.0
		row := m.Row(i)
		for j, v := range row {
			if j != i {
				sum += math.Abs(v)
			}
		}
		row[i] = sum + 1 + rng.Float64()
	}
}

// Equal reports whether the two matrices have the same shape and identical
// elements.
func Equal(a, b *Dense) bool { return MaxAbsDiff(a, b) == 0 && sameShape(a, b) }

// AlmostEqual reports whether the two matrices have the same shape and all
// elements within tol of each other, using a mixed absolute/relative test so
// large GE pivoted values compare sensibly.
func AlmostEqual(a, b *Dense, tol float64) bool {
	if !sameShape(a, b) {
		return false
	}
	for i := 0; i < a.rows; i++ {
		ra, rb := a.Row(i), b.Row(i)
		for j := range ra {
			if !closeEnough(ra[j], rb[j], tol) {
				return false
			}
		}
	}
	return true
}

func closeEnough(x, y, tol float64) bool {
	d := math.Abs(x - y)
	if d <= tol {
		return true
	}
	scale := math.Max(math.Abs(x), math.Abs(y))
	return d <= tol*scale
}

// MaxAbsDiff returns the largest absolute element-wise difference between two
// same-shaped matrices, or +Inf when the shapes differ.
func MaxAbsDiff(a, b *Dense) float64 {
	if !sameShape(a, b) {
		return math.Inf(1)
	}
	max := 0.0
	for i := 0; i < a.rows; i++ {
		ra, rb := a.Row(i), b.Row(i)
		for j := range ra {
			if d := math.Abs(ra[j] - rb[j]); d > max {
				max = d
			}
		}
	}
	return max
}

func sameShape(a, b *Dense) bool { return a.rows == b.rows && a.cols == b.cols }

// String renders small matrices for debugging; large matrices are summarised.
func (m *Dense) String() string {
	const limit = 12
	if m.rows > limit || m.cols > limit {
		return fmt.Sprintf("Dense(%dx%d)", m.rows, m.cols)
	}
	var sb strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%8.3f", m.At(i, j))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
