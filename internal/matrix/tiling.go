package matrix

import "fmt"

// NextPow2 returns the smallest power of two that is >= n (and >= 1).
func NextPow2(n int) int {
	if n < 1 {
		return 1
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// PadPow2 returns a square matrix whose side is the next power of two >=
// m's side, with m copied into the top-left corner and pad elsewhere. When
// the side is already a power of two the matrix is still copied, so callers
// may mutate the result freely.
func PadPow2(m *Dense, pad float64) *Dense {
	if m.rows != m.cols {
		panic(fmt.Sprintf("matrix: PadPow2 of non-square %dx%d", m.rows, m.cols))
	}
	n := NextPow2(m.rows)
	out := NewSquare(n)
	if pad != 0 {
		out.Fill(pad)
	}
	out.View(0, 0, m.rows, m.cols).CopyFrom(m)
	return out
}

// Tile identifies a b×b tile of an n×n matrix by its tile-grid coordinates.
// Tile {I, J} covers rows [I*b, (I+1)*b) and columns [J*b, (J+1)*b).
type Tile struct {
	I, J int
}

// TileGrid describes the decomposition of an n×n matrix into b×b tiles.
// It is the coordinate system shared by the CnC implementations, the DAG
// builders and the analytical model.
type TileGrid struct {
	N    int // matrix side
	Base int // tile side
}

// NewTileGrid validates and returns a tile grid. Base must divide N.
func NewTileGrid(n, base int) TileGrid {
	if n <= 0 || base <= 0 || n%base != 0 {
		panic(fmt.Sprintf("matrix: invalid tile grid n=%d base=%d", n, base))
	}
	return TileGrid{N: n, Base: base}
}

// Tiles returns the number of tiles along one side (N / Base).
func (g TileGrid) Tiles() int { return g.N / g.Base }

// View returns the tile t of m as a sub-matrix view.
func (g TileGrid) View(m *Dense, t Tile) *Dense {
	return m.View(t.I*g.Base, t.J*g.Base, g.Base, g.Base)
}

// InBounds reports whether the tile coordinates lie inside the grid.
func (g TileGrid) InBounds(t Tile) bool {
	n := g.Tiles()
	return t.I >= 0 && t.J >= 0 && t.I < n && t.J < n
}
