package matrix

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewShapes(t *testing.T) {
	m := New(3, 5)
	if m.Rows() != 3 || m.Cols() != 5 || m.Stride() != 5 {
		t.Fatalf("got %dx%d stride %d", m.Rows(), m.Cols(), m.Stride())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 5; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("fresh matrix not zero at (%d,%d)", i, j)
			}
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dims")
		}
	}()
	New(-1, 2)
}

func TestSetAtRoundTrip(t *testing.T) {
	m := New(4, 4)
	m.Set(2, 3, 7.5)
	if got := m.At(2, 3); got != 7.5 {
		t.Fatalf("At(2,3) = %v, want 7.5", got)
	}
	if got := m.Row(2)[3]; got != 7.5 {
		t.Fatalf("Row(2)[3] = %v, want 7.5", got)
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatalf("FromRows wrong content: %v", m)
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestFromRowsEmpty(t *testing.T) {
	m := FromRows(nil)
	if m.Rows() != 0 || m.Cols() != 0 {
		t.Fatalf("empty FromRows got %dx%d", m.Rows(), m.Cols())
	}
}

func TestViewAliasing(t *testing.T) {
	m := New(4, 4)
	v := m.View(1, 1, 2, 2)
	v.Set(0, 0, 9)
	if m.At(1, 1) != 9 {
		t.Fatal("write through view not visible in parent")
	}
	m.Set(2, 2, 5)
	if v.At(1, 1) != 5 {
		t.Fatal("write through parent not visible in view")
	}
	if v.Stride() != m.Stride() {
		t.Fatalf("view stride %d != parent stride %d", v.Stride(), m.Stride())
	}
}

func TestViewOutOfBoundsPanics(t *testing.T) {
	m := New(4, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-bounds view")
		}
	}()
	m.View(2, 2, 3, 3)
}

func TestDataContiguous(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 4)
	d := m.Data()
	if len(d) != 6 || d[5] != 4 {
		t.Fatalf("Data = %v", d)
	}
}

func TestDataOnViewPanics(t *testing.T) {
	m := New(4, 4)
	v := m.View(0, 0, 2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic calling Data on a view")
		}
	}()
	v.Data()
}

func TestQuad(t *testing.T) {
	m := New(4, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			m.Set(i, j, float64(10*i+j))
		}
	}
	q := m.Quad()
	cases := []struct {
		quad int
		i, j int
		want float64
	}{
		{Q00, 0, 0, 0},
		{Q01, 0, 0, 2},
		{Q10, 0, 0, 20},
		{Q11, 1, 1, 33},
	}
	for _, c := range cases {
		if got := q[c.quad].At(c.i, c.j); got != c.want {
			t.Errorf("quad %d at (%d,%d) = %v, want %v", c.quad, c.i, c.j, got, c.want)
		}
	}
}

func TestQuadPanics(t *testing.T) {
	for name, m := range map[string]*Dense{"non-square": New(4, 2), "odd": New(3, 3)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected Quad panic", name)
				}
			}()
			m.Quad()
		}()
	}
}

func TestCloneIndependent(t *testing.T) {
	m := New(3, 3)
	m.Set(1, 1, 2)
	c := m.Clone()
	c.Set(1, 1, 8)
	if m.At(1, 1) != 2 {
		t.Fatal("Clone shares storage with original")
	}
	if !Equal(m.Clone(), m) {
		t.Fatal("Clone not equal to original")
	}
}

func TestCloneOfView(t *testing.T) {
	m := New(4, 4)
	m.Set(1, 2, 3)
	c := m.View(1, 1, 2, 2).Clone()
	if c.Stride() != c.Cols() {
		t.Fatal("clone of view should be contiguous")
	}
	if c.At(0, 1) != 3 {
		t.Fatalf("clone content wrong: %v", c)
	}
}

func TestCopyFromShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 2).CopyFrom(New(3, 3))
}

func TestFillAndEqual(t *testing.T) {
	a, b := New(3, 3), New(3, 3)
	a.Fill(1.5)
	b.Fill(1.5)
	if !Equal(a, b) {
		t.Fatal("filled matrices should be equal")
	}
	b.Set(2, 2, 1.5000001)
	if Equal(a, b) {
		t.Fatal("Equal should detect difference")
	}
	if !AlmostEqual(a, b, 1e-5) {
		t.Fatal("AlmostEqual should tolerate 1e-7 difference")
	}
}

func TestEqualShapeMismatch(t *testing.T) {
	if Equal(New(2, 3), New(3, 2)) {
		t.Fatal("different shapes must not be Equal")
	}
	if !math.IsInf(MaxAbsDiff(New(2, 3), New(3, 2)), 1) {
		t.Fatal("MaxAbsDiff of mismatched shapes should be +Inf")
	}
}

func TestAlmostEqualRelative(t *testing.T) {
	a, b := New(1, 1), New(1, 1)
	a.Set(0, 0, 1e12)
	b.Set(0, 0, 1e12*(1+1e-10))
	if !AlmostEqual(a, b, 1e-9) {
		t.Fatal("relative comparison should accept tiny relative error on large values")
	}
	b.Set(0, 0, 1e12*1.01)
	if AlmostEqual(a, b, 1e-9) {
		t.Fatal("1% relative error should be rejected at tol 1e-9")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a, b := New(2, 2), New(2, 2)
	b.Set(1, 0, -3)
	if d := MaxAbsDiff(a, b); d != 3 {
		t.Fatalf("MaxAbsDiff = %v, want 3", d)
	}
}

func TestFillDiagonallyDominant(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewSquare(16)
	m.FillDiagonallyDominant(rng)
	for i := 0; i < 16; i++ {
		sum := 0.0
		for j := 0; j < 16; j++ {
			if j != i {
				sum += math.Abs(m.At(i, j))
			}
		}
		if m.At(i, i) <= sum {
			t.Fatalf("row %d not diagonally dominant: diag %v vs off-diag sum %v", i, m.At(i, i), sum)
		}
	}
}

func TestFillRandomRange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := New(8, 8)
	m.FillRandom(rng, 2, 5)
	for i := 0; i < 8; i++ {
		for _, v := range m.Row(i) {
			if v < 2 || v >= 5 {
				t.Fatalf("value %v outside [2,5)", v)
			}
		}
	}
}

func TestStringSmallAndLarge(t *testing.T) {
	small := FromRows([][]float64{{1}})
	if !strings.Contains(small.String(), "1.000") {
		t.Fatalf("small String: %q", small.String())
	}
	big := New(100, 100)
	if got := big.String(); got != "Dense(100x100)" {
		t.Fatalf("large String: %q", got)
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1000: 1024, 1024: 1024}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 64, 1 << 20} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false", n)
		}
	}
	for _, n := range []int{0, -4, 3, 6, 100} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true", n)
		}
	}
}

func TestPadPow2(t *testing.T) {
	m := NewSquare(3)
	m.Fill(2)
	p := PadPow2(m, -1)
	if p.Rows() != 4 {
		t.Fatalf("padded side = %d, want 4", p.Rows())
	}
	if p.At(1, 1) != 2 || p.At(3, 3) != -1 || p.At(0, 3) != -1 {
		t.Fatalf("padding content wrong:\n%v", p)
	}
	// Already a power of two: result is a copy, not an alias.
	q := PadPow2(p, 0)
	q.Set(0, 0, 99)
	if p.At(0, 0) == 99 {
		t.Fatal("PadPow2 aliased its input")
	}
}

func TestTileGrid(t *testing.T) {
	g := NewTileGrid(8, 2)
	if g.Tiles() != 4 {
		t.Fatalf("Tiles = %d, want 4", g.Tiles())
	}
	m := NewSquare(8)
	v := g.View(m, Tile{1, 2})
	v.Set(0, 0, 7)
	if m.At(2, 4) != 7 {
		t.Fatal("tile view offset wrong")
	}
	if !g.InBounds(Tile{3, 3}) || g.InBounds(Tile{4, 0}) || g.InBounds(Tile{-1, 0}) {
		t.Fatal("InBounds wrong")
	}
}

func TestTileGridInvalidPanics(t *testing.T) {
	for _, c := range [][2]int{{8, 3}, {0, 1}, {8, 0}, {4, 8}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewTileGrid(%d,%d): expected panic", c[0], c[1])
				}
			}()
			NewTileGrid(c[0], c[1])
		}()
	}
}

// Property: for any square matrix with power-of-two side >= 2, the four
// quadrants partition the matrix exactly.
func TestQuadPartitionProperty(t *testing.T) {
	f := func(seed int64, sizeExp uint8) bool {
		n := 2 << (sizeExp % 5) // 2..32
		rng := rand.New(rand.NewSource(seed))
		m := NewSquare(n)
		m.FillRandom(rng, -1, 1)
		q := m.Quad()
		h := n / 2
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var got float64
				switch {
				case i < h && j < h:
					got = q[Q00].At(i, j)
				case i < h:
					got = q[Q01].At(i, j-h)
				case j < h:
					got = q[Q10].At(i-h, j)
				default:
					got = q[Q11].At(i-h, j-h)
				}
				if got != m.At(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: tile views of a grid never overlap — writing distinct sentinel
// values through every tile view reproduces a consistent full matrix.
func TestTileViewsPartitionProperty(t *testing.T) {
	f := func(baseExp, nExp uint8) bool {
		b := 1 << (baseExp % 3)      // 1,2,4
		n := b * (1 << (nExp%3 + 1)) // b*2..b*8
		g := NewTileGrid(n, b)
		m := NewSquare(n)
		for i := 0; i < g.Tiles(); i++ {
			for j := 0; j < g.Tiles(); j++ {
				g.View(m, Tile{i, j}).Fill(float64(i*g.Tiles() + j))
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := float64((i/b)*g.Tiles() + j/b)
				if m.At(i, j) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
