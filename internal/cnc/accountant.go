package cnc

import (
	"sync"
	"sync/atomic"
)

// BackpressureReport is the diagnostic snapshot delivered to
// Hooks.OnBackpressureStall the first time backpressure cannot clear: the
// graph went idle — no step running, queued, or able to run — while
// deferred puts were still waiting for budget, and the runtime had to admit
// one over budget to preserve liveness. It is the backpressure analogue of
// the chaos watchdog's stall dump: enough state to explain why the budget
// could not clear.
type BackpressureReport struct {
	// LiveItems and LiveBytes are the accountant's state at stall time.
	LiveItems int64
	LiveBytes int64
	// Reserved is the budget committed to admitted-but-unmaterialised work.
	Reserved int64
	// Limit is the configured memory budget.
	Limit int64
	// Pending is the number of deferred tag puts still waiting for budget.
	Pending int
	// Blocked is the parked-instance dump (Graph.Blocked) at stall time.
	Blocked []string
}

// pendingPut is one deferred throttled tag put: its declared byte cost, a
// readiness probe (are the prescribed steps' declared gets all present?),
// a freeable probe (how many bytes would its steps free on completion?),
// and the put itself.
type pendingPut struct {
	cost     int64
	ready    func() bool
	freeable func() int64
	put      func()
}

// accountant tracks live items and bytes for one graph and implements the
// admission control behind Graph.WithMemoryLimit.
//
// Two kinds of budget consumption exist:
//
//   - live bytes: items put on collections with a SizeOf hint and not yet
//     freed by get-count garbage collection;
//   - reserved bytes: tags admitted through TagCollection.PutThrottled whose
//     declared cost (WithTagBytes) has been committed but whose item has not
//     materialised yet. Reservations convert to live bytes as items are put,
//     so admission sees the memory a tag *will* occupy, not only the memory
//     already occupied.
//
// Throttling is asynchronous: a PutThrottled that does not fit (or whose
// step's declared gets are not all present yet) is deferred, not blocked —
// the putter continues immediately, and the deferred tag is admitted later
// by the pump. Deferring instead of blocking is what makes throttling safe
// from inside step bodies: a blocked worker goroutine cannot execute the
// very consumers whose completions would free the budget it waits for.
//
// The pump admits pending puts in FIFO order, skipping entries that do not
// fit under the limit or whose dependencies are still missing. The
// readiness gate matters as much as the byte check: admitting a tag whose
// step immediately parks converts budget into a reservation nothing can
// free, and enough of those wedge the graph. Gating on readiness keeps the
// budget working on steps that can actually run, complete, and release
// their inputs — the degraded-parallelism mode the memory limit promises.
//
// Admission also weighs each put's net memory effect. A put is *freeing*
// when its steps' declared gets include enough last-read items (remaining
// get-count 1) to cover the put's own cost: running it does not grow the
// live set. Freeing puts may fill the budget completely. *Growing* puts
// must leave maxCost of headroom, so that a freeing consumer of the bytes
// they produce always remains admissible. Without that asymmetry the
// budget fills to exactly the limit with items whose consumers each cost
// one more tag than is left — a self-inflicted wedge in which only forced
// admissions make progress.
//
// Liveness: if the graph goes fully idle (no step queued or executing, no
// environment running) while puts are still pending, no free can ever land
// and the budget will never clear — the bound is infeasible for this graph
// and schedule. The pump then force-admits the oldest runnable entry,
// records a BackpressureStall, and reports the first such event through
// Hooks.OnBackpressureStall. The run degrades gracefully — the footprint
// exceeds the limit by the minimum needed to restore progress — instead of
// deadlocking or aborting.
type accountant struct {
	g *Graph

	// limit is write-before-Run configuration.
	limit int64

	mu        sync.Mutex
	liveItems int64
	liveBytes int64
	reserved  int64
	maxCost   int64 // largest throttled-put cost seen (growing-put headroom)
	peakItems int64
	peakBytes int64
	freed     int64
	waits     int64
	stalls    int64
	reported  bool // the stall hook fired (at most once per run)
	pending   []pendingPut

	// pendingN mirrors len(pending) for lock-free fast-path checks on the
	// hot put/free/taskDone paths.
	pendingN atomic.Int64

	// pumpMu serialises pump passes; repump coalesces triggers that arrive
	// while a pass is running (including reentrant ones from inline step
	// execution inside an admitted put).
	pumpMu sync.Mutex
	repump atomic.Bool
}

func (a *accountant) init(g *Graph) { a.g = g }

// limited reports whether a memory budget is configured.
func (a *accountant) limited() bool { return a.limit > 0 }

// admitItem charges one put item of the given size. Reserved bytes are
// converted first: the item materialises work whose cost admission already
// committed, so a put of a fully reserved item never raises the total.
func (a *accountant) admitItem(size int64) {
	a.mu.Lock()
	if conv := a.reserved; conv > 0 {
		if conv > size {
			conv = size
		}
		a.reserved -= conv
	}
	a.liveItems++
	a.liveBytes += size
	if a.liveItems > a.peakItems {
		a.peakItems = a.liveItems
	}
	if a.liveBytes > a.peakBytes {
		a.peakBytes = a.liveBytes
	}
	a.mu.Unlock()
}

// admissible reports whether a put of the given cost and freeable bytes
// fits the budget now. Freeing puts (freeable covers cost) may fill it
// completely; growing puts leave maxCost of headroom so a freeing consumer
// is always admissible. Callers hold a.mu.
func (a *accountant) admissible(cost, freeable int64) bool {
	total := a.liveBytes + a.reserved + cost
	if total > a.limit {
		return false
	}
	if freeable >= cost {
		return true
	}
	// Growing puts leave headroom for a freeing consumer — unless the
	// budget is empty, in which case there is nothing a consumer could
	// free and the headroom would only strand limits smaller than two
	// tags.
	return a.liveBytes+a.reserved == 0 || total+a.maxCost <= a.limit
}

// enqueue admits one throttled tag put immediately when it fits and is
// runnable, and defers it to the pending queue otherwise. Callers must have
// checked limited().
func (a *accountant) enqueue(cost int64, ready func() bool, freeable func() int64, put func()) {
	if a.g.cancelled.Load() {
		put() // drain mode retires the instance without executing it
		return
	}
	a.mu.Lock()
	if cost > a.maxCost {
		a.maxCost = cost
	}
	if len(a.pending) == 0 && a.liveBytes+a.reserved+cost <= a.limit &&
		ready() && a.admissible(cost, freeable()) {
		a.reserved += cost
		a.mu.Unlock()
		put()
		return
	}
	a.waits++
	a.pending = append(a.pending, pendingPut{cost: cost, ready: ready, freeable: freeable, put: put})
	a.pendingN.Add(1)
	// A pending put holds the graph open: quiescence must wait for every
	// deferred tag to be admitted (or flushed by cancellation).
	a.g.outstanding.Add(1)
	a.mu.Unlock()
	a.pump()
}

// pump runs admission passes until no trigger is outstanding. TryLock plus
// the repump flag coalesces concurrent and reentrant triggers (an admitted
// put can run a step inline, which can free items and re-trigger the pump)
// into the single running pass.
func (a *accountant) pump() {
	for a.pendingN.Load() > 0 {
		if !a.pumpMu.TryLock() {
			a.repump.Store(true)
			return
		}
		a.repump.Store(false)
		a.drain()
		a.pumpMu.Unlock()
		if !a.repump.Load() {
			return
		}
	}
}

// drain admits pending puts until none is admissible. Each admission
// releases a.mu before calling the put, so admitted tags can prescribe,
// inline-run, and re-defer without holding the accountant lock.
func (a *accountant) drain() {
	for {
		a.mu.Lock()
		if len(a.pending) == 0 {
			a.mu.Unlock()
			return
		}
		idx, forced := -1, false
		if a.g.cancelled.Load() {
			idx = 0 // flush: drain mode retires instances without executing
		} else {
			for i := range a.pending {
				p := &a.pending[i]
				if a.liveBytes+a.reserved+p.cost > a.limit {
					continue // cheap prune before the dependency probes
				}
				if p.ready() && a.admissible(p.cost, p.freeable()) {
					idx = i
					break
				}
			}
			if idx < 0 {
				// Nothing fits (or is runnable). If the rest of the graph is
				// idle — every outstanding unit is one of our own pending
				// holds — no free can ever land: force-admit an entry to
				// preserve liveness. Prefer a runnable memory-releasing one
				// so the degraded run tracks the live-set floor instead of
				// replaying the unbounded schedule.
				if a.g.outstanding.Load() <= int64(len(a.pending)) {
					forced = true
					for i := range a.pending {
						p := &a.pending[i]
						if p.ready() && p.freeable() >= p.cost {
							idx = i
							break
						}
					}
					if idx < 0 {
						for i := range a.pending {
							if a.pending[i].ready() {
								idx = i
								break
							}
						}
					}
					if idx < 0 {
						idx = 0 // nothing runnable either: flush in order
					}
				}
			}
		}
		if idx < 0 {
			a.mu.Unlock()
			return
		}
		p := a.pending[idx]
		a.pending = append(a.pending[:idx], a.pending[idx+1:]...)
		a.pendingN.Add(-1)
		a.reserved += p.cost
		var report *BackpressureReport
		if forced {
			a.stalls++
			if !a.reported {
				a.reported = true
				report = &BackpressureReport{
					LiveItems: a.liveItems,
					LiveBytes: a.liveBytes,
					Reserved:  a.reserved,
					Limit:     a.limit,
					Pending:   len(a.pending) + 1,
				}
			}
		}
		a.mu.Unlock()
		if report != nil {
			report.Blocked = a.g.collectBlocked()
			if h := a.g.hooks; h != nil && h.OnBackpressureStall != nil {
				h.OnBackpressureStall(*report)
			}
		}
		p.put()
		a.g.taskDone() // release the pending hold after the put lands
	}
}

// free retires one item of the given size and re-triggers admission.
func (a *accountant) free(size int64) {
	a.mu.Lock()
	a.liveItems--
	a.liveBytes -= size
	a.freed++
	a.mu.Unlock()
	if a.pendingN.Load() > 0 {
		a.pump()
	}
}

// refund undoes an admitItem whose put failed (single-assignment violation
// or use-after-free re-put): the item never became live.
func (a *accountant) refund(size int64) {
	a.mu.Lock()
	a.liveItems--
	a.liveBytes -= size
	a.mu.Unlock()
	if a.pendingN.Load() > 0 {
		a.pump()
	}
}

// memStats is the accountant's contribution to Stats.
type memStats struct {
	liveItems, peakItems, freed int64
	liveBytes, peakBytes        int64
	waits, stalls               int64
}

func (a *accountant) snapshot() memStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return memStats{
		liveItems: a.liveItems, peakItems: a.peakItems, freed: a.freed,
		liveBytes: a.liveBytes, peakBytes: a.peakBytes,
		waits: a.waits, stalls: a.stalls,
	}
}

// WithMemoryLimit sets a live-bytes budget for the run. Tag puts through
// PutThrottled/PutRange that would push live bytes plus outstanding
// reservations past the budget are deferred and admitted as get-count
// garbage collection frees items; deferred tags are also held back until
// the declared gets of their prescribed steps are present, so the budget is
// spent on steps that can run rather than park. Sizes come from each
// collection's WithSizeOf hint (collections without a hint occupy zero
// accounted bytes) plus the WithTagBytes reservations of throttled puts.
// The bound is strict while it is feasible: PeakLiveBytes never exceeds the
// limit as long as the graph can make progress within it. If the graph goes
// idle with puts still deferred — the budget can never clear — the runtime
// force-admits the oldest runnable put, records a BackpressureStall in
// Stats, and reports the first such event through
// Hooks.OnBackpressureStall: the run degrades past the bound instead of
// deadlocking. Call before Run.
func (g *Graph) WithMemoryLimit(bytes int64) *Graph {
	g.acct.limit = bytes
	return g
}

// MemoryLimit returns the configured live-bytes budget (0 = unbounded).
func (g *Graph) MemoryLimit() int64 { return g.acct.limit }
