package cnc

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGetCountGC runs the Listing 1 pipeline with a get-count of one per
// item (each item is read exactly once by the next step) and checks the
// runtime reclaims everything: zero live items after quiesce, every put
// eventually freed, and a bounded high-water mark.
func TestGetCountGC(t *testing.T) {
	g := NewGraph("gc", 2)
	data := NewItemCollection[int, int](g, "myData")
	ctrl := NewTagCollection[int](g, "myCtrl", false)
	const n = 50
	data.WithGetCount(func(k int) int {
		if k < n {
			return 1 // read by step k
		}
		return 0 // final item has no consumer: freed on put
	}).WithSizeOf(func(int) int { return 8 })
	step := NewStepCollection(g, "myStep", func(i int) error {
		v := data.Get(i)
		data.Put(i+1, v+1)
		if i+1 < n {
			ctrl.Put(i + 1)
		}
		return nil
	})
	step.Consumes(data).Produces(data)
	step.WithGets(func(i int) []Dep { return []Dep{data.Key(i)} })
	ctrl.Prescribe(step)

	if err := g.Run(func() {
		data.Put(0, 0)
		ctrl.Put(0)
	}); err != nil {
		t.Fatal(err)
	}
	s := g.Stats()
	if s.LiveItems != 0 {
		t.Fatalf("LiveItems = %d, want 0", s.LiveItems)
	}
	if s.ItemsFreed != int64(s.ItemsPut) {
		t.Fatalf("ItemsFreed = %d, want %d", s.ItemsFreed, s.ItemsPut)
	}
	if s.PeakLiveItems < 1 || s.PeakLiveItems >= int64(s.ItemsPut) {
		t.Fatalf("PeakLiveItems = %d, want in [1, %d)", s.PeakLiveItems, s.ItemsPut)
	}
	if s.PeakLiveBytes < 8 {
		t.Fatalf("PeakLiveBytes = %d, want >= 8", s.PeakLiveBytes)
	}
	if data.Puts() != s.ItemsPut {
		t.Fatalf("Puts() = %d, want %d", data.Puts(), s.ItemsPut)
	}
	if got := data.Len(); got != 0 {
		t.Fatalf("Len() = %d live items, want 0", got)
	}
	if !g.HasGetCounts() {
		t.Fatal("HasGetCounts() = false, want true")
	}
}

// TestUseAfterFreeGet frees an item via its (too low) get-count, then has a
// later step read it: the read must fail the graph with a deterministic
// UseAfterFreeError, not park forever or return stale data. One worker and
// a tag chain make the ordering deterministic.
func TestUseAfterFreeGet(t *testing.T) {
	g := NewGraph("uaf", 1)
	items := NewItemCollection[string, int](g, "items")
	items.WithGetCount(func(string) int { return 1 })
	firstTags := NewTagCollection[string](g, "first", false)
	secondTags := NewTagCollection[string](g, "second", false)

	first := NewStepCollection(g, "first", func(tag string) error {
		items.Get(tag)
		secondTags.Put(tag)
		return nil
	})
	first.WithGets(func(tag string) []Dep { return []Dep{items.Key(tag)} })
	second := NewStepCollection(g, "second", func(tag string) error {
		items.Get(tag) // the item was freed when first completed
		return nil
	})
	firstTags.Prescribe(first)
	secondTags.Prescribe(second)

	err := g.Run(func() {
		items.Put("x", 1)
		firstTags.Put("x")
	})
	var uaf *UseAfterFreeError
	if !errors.As(err, &uaf) {
		t.Fatalf("err = %v, want UseAfterFreeError", err)
	}
	if uaf.Collection != "items" || uaf.Key != "x" {
		t.Fatalf("UseAfterFreeError = %+v, want items[x]", uaf)
	}
}

// TestTryGetFreed checks the non-blocking read of a freed item also fails
// the graph deterministically instead of reporting "absent".
func TestTryGetFreed(t *testing.T) {
	g := NewGraph("uaf-tryget", 1)
	items := NewItemCollection[string, int](g, "items")
	items.WithGetCount(func(string) int { return 0 }) // freed on put
	tags := NewTagCollection[string](g, "tags", false)
	var sawPresent atomic.Bool
	step := NewStepCollection(g, "poll", func(tag string) error {
		if _, ok := items.TryGet(tag); ok {
			sawPresent.Store(true)
		}
		return nil
	})
	tags.Prescribe(step)

	err := g.Run(func() {
		items.Put("x", 1)
		tags.Put("x")
	})
	var uaf *UseAfterFreeError
	if !errors.As(err, &uaf) {
		t.Fatalf("err = %v, want UseAfterFreeError", err)
	}
	if sawPresent.Load() {
		t.Fatal("TryGet returned ok for a freed item")
	}
	if s := g.Stats(); s.ItemsFreed != 1 || s.LiveItems != 0 {
		t.Fatalf("stats = %+v, want 1 freed / 0 live", s)
	}
}

// TestRePutFreedItem checks that re-putting a key whose item was already
// garbage-collected is reported as a single-assignment violation wrapping
// the use-after-free, not accepted as a fresh item.
func TestRePutFreedItem(t *testing.T) {
	g := NewGraph("reput", 1)
	items := NewItemCollection[string, int](g, "items")
	items.WithGetCount(func(string) int { return 0 })
	tags := NewTagCollection[string](g, "tags", false)
	step := NewStepCollection(g, "step", func(tag string) error {
		items.Put(tag, 2) // "x" was freed the moment the env put it
		return nil
	})
	tags.Prescribe(step)
	err := g.Run(func() {
		items.Put("x", 1)
		tags.Put("x")
	})
	var uaf *UseAfterFreeError
	if !errors.As(err, &uaf) {
		t.Fatalf("err = %v, want UseAfterFreeError", err)
	}
	if !strings.Contains(err.Error(), "single-assignment") {
		t.Fatalf("err = %v, want single-assignment violation", err)
	}
}

// TestOverRelease declares a get-count of one but two reads: the second
// release must report that the declared count was too low.
func TestOverRelease(t *testing.T) {
	g := NewGraph("overrelease", 1)
	items := NewItemCollection[string, int](g, "items")
	items.WithGetCount(func(string) int { return 1 })
	tags := NewTagCollection[string](g, "tags", false)
	step := NewStepCollection(g, "step", func(tag string) error {
		items.Get(tag)
		return nil
	})
	// Two declared reads of the same item against a count of one.
	step.WithGets(func(tag string) []Dep {
		return []Dep{items.Key(tag), items.Key(tag)}
	})
	tags.Prescribe(step)
	err := g.Run(func() {
		items.Put("x", 1)
		tags.Put("x")
	})
	if err == nil || !strings.Contains(err.Error(), "over-release") {
		t.Fatalf("err = %v, want over-release", err)
	}
}

// TestReleaseNeverPut declares a read of an item that never existed; the
// completion-time release must flag the bogus declaration.
func TestReleaseNeverPut(t *testing.T) {
	g := NewGraph("ghost", 1)
	items := NewItemCollection[string, int](g, "items")
	items.WithGetCount(func(string) int { return 1 })
	tags := NewTagCollection[string](g, "tags", false)
	step := NewStepCollection(g, "step", func(string) error { return nil })
	step.WithGets(func(tag string) []Dep { return []Dep{items.Key("ghost")} })
	tags.Prescribe(step)
	err := g.Run(func() { tags.Put("go") })
	if err == nil || !strings.Contains(err.Error(), "never put") {
		t.Fatalf("err = %v, want release-of-never-put", err)
	}
}

// TestNegativeGetCount checks a negative declared count fails the graph and
// leaves the item pinned (live) rather than freeing it.
func TestNegativeGetCount(t *testing.T) {
	g := NewGraph("negative", 1)
	items := NewItemCollection[string, int](g, "items")
	items.WithGetCount(func(string) int { return -1 })
	tags := NewTagCollection[string](g, "tags", false)
	step := NewStepCollection(g, "step", func(string) error { return nil })
	tags.Prescribe(step)
	err := g.Run(func() {
		items.Put("x", 1)
		tags.Put("go")
	})
	if err == nil || !strings.Contains(err.Error(), "negative get-count") {
		t.Fatalf("err = %v, want negative get-count error", err)
	}
	if s := g.Stats(); s.LiveItems != 1 || s.ItemsFreed != 0 {
		t.Fatalf("stats = %+v, want the item pinned live", s)
	}
}

// TestRetryNoDoubleDecrement fails a reader's first attempt after its Get
// succeeded; under a retry budget the instance re-executes and completes.
// Releases must land exactly once — at the successful completion — so the
// count neither over-releases (failing attempt released) nor leaks.
func TestRetryNoDoubleDecrement(t *testing.T) {
	g := NewGraph("retry-gc", 1)
	items := NewItemCollection[string, int](g, "items")
	items.WithGetCount(func(string) int { return 1 })
	tags := NewTagCollection[string](g, "tags", false)
	var attempts atomic.Int64
	step := NewStepCollection(g, "flaky", func(tag string) error {
		items.Get(tag)
		if attempts.Add(1) == 1 {
			return errors.New("transient")
		}
		return nil
	}).WithRetry(1)
	step.WithGets(func(tag string) []Dep { return []Dep{items.Key(tag)} })
	tags.Prescribe(step)
	if err := g.Run(func() {
		items.Put("x", 1)
		tags.Put("x")
	}); err != nil {
		t.Fatal(err)
	}
	s := g.Stats()
	if s.Retries != 1 || s.ItemsFreed != 1 || s.LiveItems != 0 {
		t.Fatalf("stats = %+v, want 1 retry, 1 freed, 0 live", s)
	}
}

// TestAbortReReadNoDoubleDecrement forces the speculative abort-and-requeue
// path (tag before item) on a get-counted collection: the aborted attempt
// must not release, and the successful re-execution must release exactly
// once.
func TestAbortReReadNoDoubleDecrement(t *testing.T) {
	g := NewGraph("abort-gc", 2)
	items := NewItemCollection[string, int](g, "items")
	items.WithGetCount(func(string) int { return 1 })
	consumerTags := NewTagCollection[string](g, "ct", false)
	producerTags := NewTagCollection[string](g, "pt", false)
	consumer := NewStepCollection(g, "consumer", func(tag string) error {
		items.Get(tag) // aborts on the first execution
		return nil
	})
	consumer.WithGets(func(tag string) []Dep { return []Dep{items.Key(tag)} })
	producer := NewStepCollection(g, "producer", func(tag string) error {
		items.Put(tag, 7)
		return nil
	})
	consumerTags.Prescribe(consumer)
	producerTags.Prescribe(producer)
	if err := g.Run(func() {
		consumerTags.Put("x") // consumer scheduled first, item missing
		producerTags.Put("x")
	}); err != nil {
		t.Fatal(err)
	}
	s := g.Stats()
	if s.ItemsFreed != 1 || s.LiveItems != 0 {
		t.Fatalf("stats = %+v, want 1 freed, 0 live", s)
	}
}

// TestWithRetryZeroOverridesDefault pins the WithRetry(0) semantics: an
// explicit zero budget must win over the graph-wide SetRetry default
// instead of being mistaken for "unset".
func TestWithRetryZeroOverridesDefault(t *testing.T) {
	g := NewGraph("retry0", 1)
	tags := NewTagCollection[string](g, "tags", false)
	var attempts atomic.Int64
	step := NewStepCollection(g, "fragile", func(string) error {
		attempts.Add(1)
		return errors.New("always fails")
	}).WithRetry(0)
	tags.Prescribe(step)
	g.SetRetry(3) // would allow 3 re-executions if the 0 were ignored
	err := g.Run(func() { tags.Put("x") })
	if err == nil {
		t.Fatal("expected step failure")
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("attempts = %d, want exactly 1 (WithRetry(0) must override SetRetry)", got)
	}
	if s := g.Stats(); s.Retries != 0 {
		t.Fatalf("Retries = %d, want 0", s.Retries)
	}
}

// TestWithRetryNegativeClamped checks a negative budget behaves like zero.
func TestWithRetryNegativeClamped(t *testing.T) {
	g := NewGraph("retry-neg", 1)
	tags := NewTagCollection[string](g, "tags", false)
	var attempts atomic.Int64
	step := NewStepCollection(g, "fragile", func(string) error {
		attempts.Add(1)
		return errors.New("always fails")
	}).WithRetry(-5)
	tags.Prescribe(step)
	if err := g.Run(func() { tags.Put("x") }); err == nil {
		t.Fatal("expected step failure")
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("attempts = %d, want 1", got)
	}
}

// TestBackpressureBoundsMemory throttles an environment that wants to put
// 64 tags of 8 reserved bytes each under a 32-byte budget. Each step's item
// is freed immediately (get-count 0), so the budget keeps clearing; the run
// must complete with the peak under the limit, at least one wait, and no
// stall.
func TestBackpressureBoundsMemory(t *testing.T) {
	const limit = 32
	g := NewGraph("bounded", 2).WithMemoryLimit(limit)
	out := NewItemCollection[int, int](g, "out")
	out.WithGetCount(func(int) int { return 0 }).WithSizeOf(func(int) int { return 8 })
	tags := NewTagCollection[int](g, "tags", false)
	tags.WithTagBytes(func(int) int { return 8 })
	step := NewStepCollection(g, "work", func(i int) error {
		out.Put(i, i)
		return nil
	})
	step.Produces(out)
	tags.Prescribe(step)
	if err := g.Run(func() {
		for i := 0; i < 64; i++ {
			tags.PutThrottled(i)
		}
	}); err != nil {
		t.Fatal(err)
	}
	s := g.Stats()
	if s.PeakLiveBytes > limit {
		t.Fatalf("PeakLiveBytes = %d, want <= %d", s.PeakLiveBytes, limit)
	}
	if s.BackpressureWaits == 0 {
		t.Fatal("BackpressureWaits = 0, want > 0 (64 reservations against a 4-item budget)")
	}
	if s.BackpressureStalls != 0 {
		t.Fatalf("BackpressureStalls = %d, want 0", s.BackpressureStalls)
	}
	if s.ItemsPut != 64 || s.ItemsFreed != 64 || s.LiveItems != 0 {
		t.Fatalf("stats = %+v, want 64 put, 64 freed, 0 live", s)
	}
	if g.MemoryLimit() != limit {
		t.Fatalf("MemoryLimit() = %d, want %d", g.MemoryLimit(), limit)
	}
}

// TestPutRangeThrottled checks the bulk expander goes through the same
// admission control as PutThrottled.
func TestPutRangeThrottled(t *testing.T) {
	const limit = 32
	g := NewGraph("bounded-range", 2).WithMemoryLimit(limit)
	out := NewItemCollection[int, int](g, "out")
	out.WithGetCount(func(int) int { return 0 }).WithSizeOf(func(int) int { return 8 })
	tags := NewTagCollection[int](g, "tags", false)
	tags.WithTagBytes(func(int) int { return 8 })
	step := NewStepCollection(g, "work", func(i int) error {
		out.Put(i, i)
		return nil
	})
	step.Produces(out)
	tags.Prescribe(step)
	if err := g.Run(func() {
		tags.PutRange(0, 64, func(i int) int { return i })
	}); err != nil {
		t.Fatal(err)
	}
	s := g.Stats()
	if s.PeakLiveBytes > limit || s.BackpressureWaits == 0 || s.BackpressureStalls != 0 {
		t.Fatalf("stats = %+v, want bounded peak, waits > 0, no stall", s)
	}
}

// TestBackpressureStallDegrades gives the graph an infeasible budget: items
// are never freed (no get-count), so deferred puts can never be admitted
// within the limit. Once the graph idles the runtime must degrade — force-
// admit pending puts one at a time, record the stalls, fire the report hook
// once — and still complete.
func TestBackpressureStallDegrades(t *testing.T) {
	g := NewGraph("stall", 2).WithMemoryLimit(16)
	out := NewItemCollection[int, int](g, "out")
	out.WithSizeOf(func(int) int { return 8 }) // no get-count: never freed
	tags := NewTagCollection[int](g, "tags", false)
	tags.WithTagBytes(func(int) int { return 8 })
	var reports atomic.Int64
	var reported BackpressureReport
	g.SetHooks(&Hooks{OnBackpressureStall: func(r BackpressureReport) {
		reports.Add(1)
		reported = r
	}})
	step := NewStepCollection(g, "work", func(i int) error {
		out.Put(i, i)
		return nil
	})
	step.Produces(out)
	tags.Prescribe(step)
	if err := g.Run(func() {
		for i := 0; i < 8; i++ {
			tags.PutThrottled(i)
		}
	}); err != nil {
		t.Fatal(err)
	}
	s := g.Stats()
	// The first 8-byte tag is admitted from the empty budget; every later
	// one is a growing put (nothing is ever freed) that must leave one
	// tag of headroom, so only the idle-graph liveness path can admit the
	// remaining seven — one stall each.
	if s.BackpressureStalls != 7 {
		t.Fatalf("BackpressureStalls = %d, want 7", s.BackpressureStalls)
	}
	if got := reports.Load(); got != 1 {
		t.Fatalf("stall hook fired %d times, want 1", got)
	}
	if reported.Limit != 16 {
		t.Fatalf("report.Limit = %d, want 16", reported.Limit)
	}
	if s.ItemsPut != 8 || s.LiveItems != 8 {
		t.Fatalf("stats = %+v, want all 8 items put and live (degraded run)", s)
	}
}

// TestBackpressureFlushesOnCancel cancels a graph holding a deferred put
// that can never fit its budget, while a running step keeps the graph busy
// (so the idle-graph forced admission never applies). The cancellation must
// flush the deferred put into drain mode — without the flush its pending
// hold would keep the graph from quiescing.
func TestBackpressureFlushesOnCancel(t *testing.T) {
	g := NewGraph("bp-cancel", 1).WithMemoryLimit(8)
	out := NewItemCollection[int, int](g, "out")
	out.WithSizeOf(func(int) int { return 8 }) // no get-count: never freed
	tags := NewTagCollection[int](g, "tags", false)
	tags.WithTagBytes(func(int) int { return 8 })
	release := make(chan struct{})
	step := NewStepCollection(g, "work", func(i int) error {
		out.Put(i, i)
		<-release // hold the worker so the graph never idles
		return nil
	})
	step.Produces(out)
	tags.Prescribe(step)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- g.RunContext(ctx, func() {
			tags.PutThrottled(0) // admitted: fills the 8-byte budget
			tags.PutThrottled(1) // deferred: can never fit
		})
	}()
	time.Sleep(200 * time.Millisecond) // deadline passes while the step holds the graph busy
	close(release)
	select {
	case err := <-done:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want context.DeadlineExceeded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled graph did not flush the deferred put")
	}
	if s := g.Stats(); s.BackpressureStalls != 0 {
		t.Fatalf("BackpressureStalls = %d, want 0 (cancellation flush, not forced admission)", s.BackpressureStalls)
	}
}

// TestDescribeMemoryContract checks the textual spec and the DOT rendering
// surface the memory declarations.
func TestDescribeMemoryContract(t *testing.T) {
	g := NewGraph("spec", 1).WithMemoryLimit(1 << 20)
	items := NewItemCollection[int, int](g, "cells")
	items.WithGetCount(func(int) int { return 1 }).WithSizeOf(func(int) int { return 8 })
	tags := NewTagCollection[int](g, "ctl", false)
	tags.WithTagBytes(func(int) int { return 8 })
	step := NewStepCollection(g, "work", func(int) error { return nil })
	step.Consumes(items)
	step.WithGets(func(i int) []Dep { return []Dep{items.Key(i)} })
	tags.Prescribe(step)

	desc := g.Describe()
	for _, want := range []string{
		"[cells] : get-count, size-of;",
		"(work) : releases gets on completion;",
		"<ctl> : tag-bytes;",
		"memory limit: 1048576 bytes",
	} {
		if !strings.Contains(desc, want) {
			t.Errorf("Describe() missing %q:\n%s", want, desc)
		}
	}
	if dot := g.Dot(); !strings.Contains(dot, "peripheries=2") {
		t.Errorf("Dot() missing double periphery for get-counted items:\n%s", dot)
	}
}

// TestHighWaterHeapBounded validates that the accounted budget translates
// into real process memory: a producer/consumer graph whose items own 1 MiB
// buffers is run once unbounded without get-counts (every buffer stays
// live) and once under a 4 MiB limit with get-count GC (each buffer is
// freed after its single read). The bounded run's sampled heap high-water
// must come in well below the unbounded one.
func TestHighWaterHeapBounded(t *testing.T) {
	const (
		n    = 48
		size = 1 << 20
	)
	run := func(limit int64, withGC bool) uint64 {
		runtime.GC()
		var base runtime.MemStats
		runtime.ReadMemStats(&base)

		g := NewGraph("highwater", 2)
		if limit > 0 {
			g.WithMemoryLimit(limit)
		}
		bufs := NewItemCollection[int, []byte](g, "bufs")
		bufs.WithSizeOf(func(int) int { return size })
		if withGC {
			bufs.WithGetCount(func(int) int { return 1 })
		}
		produce := NewTagCollection[int](g, "produce", false)
		produce.WithTagBytes(func(int) int { return size })
		consume := NewTagCollection[int](g, "consume", false)

		var mu sync.Mutex
		var peak uint64
		sample := func() {
			runtime.GC()
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			mu.Lock()
			if m.HeapAlloc > peak {
				peak = m.HeapAlloc
			}
			mu.Unlock()
		}

		prod := NewStepCollection(g, "producer", func(i int) error {
			buf := make([]byte, size)
			buf[0] = byte(i)
			bufs.Put(i, buf)
			consume.Put(i)
			return nil
		})
		prod.Produces(bufs)
		cons := NewStepCollection(g, "consumer", func(i int) error {
			b := bufs.Get(i)
			_ = b[0]
			sample()
			return nil
		})
		if withGC {
			cons.WithGets(func(i int) []Dep { return []Dep{bufs.Key(i)} })
		}
		produce.Prescribe(prod)
		consume.Prescribe(cons)

		if err := g.Run(func() {
			for i := 0; i < n; i++ {
				produce.PutThrottled(i)
			}
		}); err != nil {
			t.Fatal(err)
		}
		sample()
		if s := g.Stats(); limit > 0 {
			if s.LiveItems != 0 {
				t.Fatalf("bounded: LiveItems = %d, want 0", s.LiveItems)
			}
			if s.PeakLiveBytes > limit {
				t.Fatalf("bounded: PeakLiveBytes = %d, want <= %d", s.PeakLiveBytes, limit)
			}
			if s.BackpressureStalls != 0 {
				t.Fatalf("bounded: BackpressureStalls = %d, want 0", s.BackpressureStalls)
			}
		}
		if peak <= base.HeapAlloc {
			return 0
		}
		return peak - base.HeapAlloc
	}

	unbounded := run(0, false)
	bounded := run(4*size, true)
	if unbounded < (n-8)*size {
		t.Fatalf("unbounded high-water %d unexpectedly low; sampling broken?", unbounded)
	}
	if bounded >= unbounded/2 {
		t.Fatalf("bounded high-water %d not meaningfully below unbounded %d", bounded, unbounded)
	}
	t.Logf("heap high-water: unbounded %d bytes, bounded (4 MiB budget) %d bytes", unbounded, bounded)
}
