// Package cnc is a Concurrent Collections (CnC) runtime in pure Go, modelled
// on the Intel CnC / TBB implementation the paper benchmarks (Budimlić et
// al., "Concurrent Collections", Scientific Programming 2010; paper §II).
//
// A CnC program is a graph of three kinds of collections:
//
//   - step collections: the computations, prescribed by tags;
//   - tag collections: control — putting a tag creates one instance of every
//     prescribed step collection, which eventually executes with that tag;
//   - item collections: data — single-assignment associative containers used
//     for all synchronisation between step instances.
//
// Blocking Get follows the Intel semantics the paper describes: a step
// instance executes speculatively, and when a Get finds its item missing the
// instance is aborted and parked on a wait list associated with the failed
// Get; a later Put of that item re-schedules every parked instance from
// scratch. Steps must therefore be written gets-first (pure reads), then
// compute, then puts — exactly the shape of the paper's Listing 5.
//
// Two tuners reproduce the paper's tuned variants (§III-D):
//
//   - WithDeps + TunedPrescheduled ("Tuner-CnC"): the runtime resolves the
//     declared dependencies when the tag is put; if all items are already
//     available the step runs inline on the putting goroutine, otherwise it
//     is triggered — without any speculative abort — when the last
//     dependency arrives.
//   - WithDeps + TunedTriggered ("Manual-CnC" building block): instances are
//     never run speculatively; each waits on a countdown of its declared
//     dependencies and is scheduled when the count reaches zero.
//
// The runtime dynamically enforces the single-assignment rule and, because
// CnC programs are deterministic, reports deadlock precisely: when the graph
// quiesces with parked instances, Run returns a DeadlockError listing every
// blocked step and the item it is waiting for.
//
// # Fault tolerance and cancellation
//
// Step bodies run under panic containment: a panicking step fails its own
// instance (and, absent a retry budget, the run) with an error naming the
// step and tag — it never kills a worker. RunContext adds cooperative
// cancellation: when the context is cancelled the graph stops starting new
// work, drains in-flight instances, and returns ctx.Err() with no leaked
// goroutines. Because steps are written gets-first/puts-last, a failed
// attempt has no side effects before its first Put, so re-execution is
// sound: WithRetry (per step collection) or Graph.SetRetry (graph default)
// re-dispatches failed attempts — errors, panics, or injected hook
// failures — up to a budget. Hooks (SetHooks) expose generic interception
// points (before-step, drop-tag, before-item-put) used by the
// internal/chaos harness to inject faults, and Graph.Blocked exposes the
// live wait state for external watchdogs that distinguish livelock (workers
// busy, no data produced) from the quiesced deadlock the runtime already
// reports itself.
//
// # Bounded memory
//
// Item collections are single-assignment, so without reclamation a run
// holds every item it ever produced. ItemCollection.WithGetCount declares
// each item's consumer count (Intel CnC's get-count tuner): the runtime
// frees the value when the count reaches zero and turns any later read into
// a deterministic UseAfterFreeError instead of silent corruption.
// Decrements are driven by StepCollection.WithGets — the declared read set
// of a step instance, released once when the instance completes
// successfully — which is what makes get-counts compose with speculative
// abort re-reads and WithRetry re-execution: an aborted or failed attempt
// releases nothing, so re-reading is always safe and nothing is
// double-decremented. A per-graph accountant surfaces
// LiveItems/PeakLiveItems/ItemsFreed/PeakLiveBytes in Stats, and
// Graph.WithMemoryLimit adds backpressure: throttled tag puts
// (TagCollection.PutThrottled, PutRange) that do not fit the budget are
// deferred — the putter never blocks — and admitted as get-count GC frees
// items. If the graph idles with puts still deferred, the runtime
// force-admits the oldest runnable one and reports through
// Hooks.OnBackpressureStall rather than deadlocking.
package cnc

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"dpflow/internal/determinacy"
	"dpflow/internal/exec"
)

// Stats is a snapshot of runtime activity, useful both for tests and for
// calibrating the scheduling-overhead constants of the simulation model.
type Stats struct {
	TagsPut       uint64 // tags put across all tag collections
	ItemsPut      uint64 // items put across all item collections
	StepsStarted  uint64 // step executions begun (including re-executions)
	StepsDone     uint64 // step instances completed successfully
	Aborts        uint64 // speculative executions aborted by a failed Get
	Requeues      uint64 // parked instances re-scheduled by an item Put
	InlineRuns    uint64 // instances run inline by the prescheduling tuner
	TriggeredRuns uint64 // instances released by a dependency countdown
	PinnedRuns    uint64 // instances placed by a ComputeOn tuner
	Retries       uint64 // failed attempts re-executed under a retry budget

	// Dispatch-layer counters (see queue.go). The seed runtime broadcast to
	// every worker on every push — an implied workers×puts wake bill; the
	// work-stealing queue wakes at most one worker per push, so Wakeups is
	// bounded by the number of dispatches.
	Steals       uint64 // work units taken from another worker's lane
	FailedProbes uint64 // steal probes that found an empty victim lane
	Wakeups      uint64 // targeted wake signals sent to parked workers

	// Item-backend counters (see Graph.WithItemBackend): puts mirrored to
	// and values fetched from the external store. Zero without a backend.
	BackendPuts uint64
	BackendGets uint64

	// Memory accounting (see ItemCollection.WithGetCount and
	// Graph.WithMemoryLimit). Bytes are counted only for collections with a
	// WithSizeOf hint; items are counted for every collection.
	LiveItems     int64 // items put and not yet freed by get-count GC
	PeakLiveItems int64 // high-water mark of LiveItems
	ItemsFreed    int64 // items freed when their get-count reached zero
	LiveBytes     int64 // bytes of live items (per the SizeOf hints)
	PeakLiveBytes int64 // high-water mark of LiveBytes
	// BackpressureWaits counts throttled puts that were deferred for budget;
	// BackpressureStalls counts forced admissions: deferred puts admitted
	// over budget because the graph went idle and no free could ever land.
	BackpressureWaits  int64
	BackpressureStalls int64
}

// DeadlockError reports a graph that quiesced with parked step instances.
type DeadlockError struct {
	// Blocked lists one entry per parked instance: "step@tag <- coll[key]".
	Blocked []string
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("cnc: deadlock: %d step instance(s) blocked: %s",
		len(e.Blocked), strings.Join(e.Blocked, "; "))
}

// ErrNotRunning is returned or panicked when collections are used outside
// Graph.Run.
var ErrNotRunning = errors.New("cnc: graph is not running")

// ErrConcurrentRun is returned when Run/RunContext is called while another
// run of the same Graph is still in flight. Graphs are single-run objects;
// server clients that want N concurrent jobs build N graphs — they all
// multiplex onto the shared executor anyway, so there is nothing to gain
// (and a pile of shared mutable collection state to lose) from racing two
// runs of one instance.
var ErrConcurrentRun = errors.New("cnc: concurrent Run on the same Graph")

// ErrFinished is returned when Run/RunContext is called on a Graph that
// already completed a run.
var ErrFinished = errors.New("cnc: Run called twice on the same Graph")

// Graph is a CnC context: it owns the collections, the dispatch lanes and
// the quiescence state. Build the collections, declare their relationships,
// then call Run exactly once with an environment function that performs the
// initial puts.
//
// Graphs do not own worker goroutines: a run leases `workers` logical
// workers from a shared exec.Executor (the process-wide exec.Default
// unless WithExecutor overrides it), so N concurrent graphs multiplex onto
// one GOMAXPROCS-sized pool instead of oversubscribing the machine.
// Workers() is therefore a logical-concurrency cap — the number of
// dispatch lanes and the ComputeOn pinning space — not a goroutine count.
type Graph struct {
	name    string
	workers int

	// executor is write-before-Run configuration: the shared pool this
	// graph leases logical workers from; nil means exec.Default().
	executor *exec.Executor

	queue     workQueue
	running   atomic.Bool
	finished  atomic.Bool
	cancelled atomic.Bool

	// hooks, retry, discipline and backend are write-before-Run
	// configuration; the runtime reads them without synchronisation once
	// running.
	hooks      *Hooks
	retry      int
	discipline *determinacy.DisciplineChecker
	backend    ItemBackend

	// backendBusy gauges operations currently inside a backend call (see
	// Graph.BackendBusy — the watchdog's remote-wait stall source).
	backendBusy atomic.Int64

	// acct tracks live items/bytes and implements the WithMemoryLimit
	// backpressure (see accountant.go).
	acct accountant

	outstanding atomic.Int64
	quiesceMu   sync.Mutex
	quiesceCond *sync.Cond
	parked      atomic.Int64

	// burstPool recycles Burst batch buffers (NewBurst/Flush); depsPool
	// recycles the []Dep scratch buffers the tuned dispatch paths hand to
	// WithDepsAppend callbacks. Both exist so the steady state of a run
	// performs no allocation in the dispatch layer.
	burstPool sync.Pool
	depsPool  sync.Pool

	failMu sync.Mutex
	err    error

	stats struct {
		tagsPut, itemsPut, started, done    atomic.Uint64
		aborts, requeues, inline, triggered atomic.Uint64
		pinned, retries                     atomic.Uint64
		backendPuts, backendGets            atomic.Uint64
	}

	// Static graph structure, for Describe/Dot and deadlock reports.
	structMu     sync.Mutex
	steps        []*stepMeta
	tags         []*tagMeta
	items        []*itemMeta
	reporters    []blockedReporter
	hasGetCounts bool
}

type stepMeta struct {
	name               string
	prescribedBy       []string
	consumes, produces []string
	releases           bool // WithGets declared: frees its reads on completion
}

type tagMeta struct {
	name     string
	tagBytes bool // WithTagBytes declared: throttled puts reserve budget
}

type itemMeta struct {
	name     string
	getCount bool // WithGetCount declared: items freed after their last read
	sizeOf   bool // WithSizeOf declared: items charge bytes to the accountant
}

// NewGraph creates a graph with the given number of workers (minimum 1).
func NewGraph(name string, workers int) *Graph {
	if workers < 1 {
		workers = 1
	}
	g := &Graph{name: name, workers: workers}
	g.acct.init(g)
	g.quiesceCond = sync.NewCond(&g.quiesceMu)
	// Deterministic steal seed: runs are reproducible for a given graph
	// shape, and CnC determinism holds under any victim order anyway.
	g.queue.init(workers, StealRandom, 1)
	return g
}

// SetStealPolicy selects the victim order idle workers use when stealing
// (StealRandom by default). Write-before-Run configuration, like SetHooks.
func (g *Graph) SetStealPolicy(p StealPolicy) { g.queue.policy = p }

// WithExecutor selects the shared executor the run leases its logical
// workers from; nil (the default) means the process-wide exec.Default().
// Dedicated executors are for harnesses that pin a physical worker count
// (perf snapshots) and for tests that need goroutine isolation.
// Write-before-Run configuration, like SetHooks.
func (g *Graph) WithExecutor(e *exec.Executor) *Graph {
	g.executor = e
	return g
}

// WithDisciplineCheck installs a dataflow-discipline checker: every item
// put, get and release is attributed to the step instance (or environment)
// that issued it, double puts report both writers and whether their values
// differ, get-count overdraws name the over-reading step alongside the
// steps that consumed the budget, and the checker's Fingerprint backs the
// post-run determinism audit (chaos.DeterminismAudit). Off (nil, the
// default) the only cost is a nil check per operation. Write-before-Run
// configuration, like SetHooks.
func (g *Graph) WithDisciplineCheck(dc *determinacy.DisciplineChecker) *Graph {
	g.discipline = dc
	return g
}

// DisciplineChecker returns the checker installed by WithDisciplineCheck,
// or nil.
func (g *Graph) DisciplineChecker() *determinacy.DisciplineChecker { return g.discipline }

// Name returns the graph's name.
func (g *Graph) Name() string { return g.name }

// Workers returns the graph's logical-concurrency cap: the number of
// dispatch lanes the run leases from the shared executor, and the modulus
// ComputeOn placements wrap at. It is not a goroutine count — physical
// workers belong to the executor.
func (g *Graph) Workers() int { return g.workers }

// Stats returns a snapshot of the activity counters. It is safe to call
// concurrently with a run — every counter is read atomically and the
// memory figures come from the accountant's locked snapshot — which is how
// the dpserve /metrics endpoint scrapes live jobs.
func (g *Graph) Stats() Stats {
	mem := g.acct.snapshot()
	return Stats{
		LiveItems:          mem.liveItems,
		PeakLiveItems:      mem.peakItems,
		ItemsFreed:         mem.freed,
		LiveBytes:          mem.liveBytes,
		PeakLiveBytes:      mem.peakBytes,
		BackpressureWaits:  mem.waits,
		BackpressureStalls: mem.stalls,

		TagsPut:       g.stats.tagsPut.Load(),
		ItemsPut:      g.stats.itemsPut.Load(),
		StepsStarted:  g.stats.started.Load(),
		StepsDone:     g.stats.done.Load(),
		Aborts:        g.stats.aborts.Load(),
		Requeues:      g.stats.requeues.Load(),
		InlineRuns:    g.stats.inline.Load(),
		TriggeredRuns: g.stats.triggered.Load(),
		PinnedRuns:    g.stats.pinned.Load(),
		Retries:       g.stats.retries.Load(),

		Steals:       g.queue.steals.Load(),
		FailedProbes: g.queue.failedProbes.Load(),
		Wakeups:      g.queue.wakeups.Load(),

		BackendPuts: g.stats.backendPuts.Load(),
		BackendGets: g.stats.backendGets.Load(),
	}
}

// Run starts the workers, invokes env — which performs the initial item and
// tag puts, playing the role of the CnC environment — and blocks until the
// graph quiesces. It returns the first error recorded during execution
// (single-assignment violation, step error, or deadlock). Run may be called
// only once per graph.
func (g *Graph) Run(env func()) error {
	return g.RunContext(context.Background(), env)
}

// RunContext is Run with cooperative cancellation and deadlines. Workers
// observe the context between step dispatches: when ctx is cancelled the
// graph switches to drain mode — every already-queued and newly-scheduled
// step instance is retired without executing its body, so tags and items
// put by in-flight steps stop producing work and the graph quiesces
// promptly. The run then returns ctx.Err() (recorded as the first error,
// so it wins over the secondary deadlock report of the instances the
// cancellation starved) with no goroutine leaked. A step body already
// executing when the cancellation fires is never interrupted; env likewise
// runs on the calling goroutine and should observe ctx itself if it can
// block.
func (g *Graph) RunContext(ctx context.Context, env func()) error {
	if g.finished.Load() {
		return ErrFinished
	}
	if !g.running.CompareAndSwap(false, true) {
		return ErrConcurrentRun
	}

	// Lease the graph's logical workers from the shared executor. The lease
	// must be installed before the environment's first put — every push
	// reports through q.lease.Notify — and is left in place after Close
	// (Notify on a closed lease is a no-op).
	ex := g.executor
	if ex == nil {
		ex = exec.Default()
	}
	lease := ex.Lease(g.name, g.workers, (*graphSource)(g))
	g.queue.lease = lease

	// A context cancelled before the run starts must fail the run
	// deterministically: the monitor goroutine races the executor draining
	// the graph (unlike the old dedicated workers, the shared pool is
	// already awake), so check synchronously before the first put.
	if err := ctx.Err(); err != nil {
		g.fail(err)
		g.cancelled.Store(true)
	}

	stopMonitor := make(chan struct{})
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				// Record the cancellation as the run's error (first error
				// wins) and switch the workers to drain mode.
				g.fail(ctx.Err())
				g.cancelled.Store(true)
				// Flush deferred throttled puts so drain mode can retire
				// their instances; otherwise their pending holds would
				// keep the graph from quiescing.
				g.acct.pump()
			case <-stopMonitor:
			}
		}()
	}

	// The environment counts as outstanding work while it runs so that the
	// graph cannot quiesce before the initial puts are complete.
	g.outstanding.Add(1)
	if env != nil {
		if dc := g.discipline; dc != nil {
			exit := dc.Enter("env")
			env()
			exit()
		} else {
			env()
		}
	}
	g.taskDone()

	g.quiesceMu.Lock()
	for g.outstanding.Load() > 0 {
		g.quiesceCond.Wait()
	}
	g.quiesceMu.Unlock()

	// Quiescence means the lanes are empty (every queued unit holds the
	// graph open), so closing the lease only waits for in-flight slot
	// claims to notice and return. finished is set before running so a
	// racing RunContext can never slip between the two guards.
	g.finished.Store(true)
	g.running.Store(false)
	lease.Close()
	close(stopMonitor)

	// End-of-run backend barrier: a batching backend (internal/dist) may
	// still hold mirrored puts or deferred verification work in its
	// buffers; surface any such error as the run's error.
	g.flushBackend()

	if g.parked.Load() > 0 {
		g.fail(&DeadlockError{Blocked: g.collectBlocked()})
	}
	g.failMu.Lock()
	defer g.failMu.Unlock()
	return g.err
}

// graphSource adapts a Graph to the executor's Source interface without
// allocating (a named pointer type boxes for free). Cancellation is
// checked per dispatched unit inside StepCollection.execute, which also
// covers inline and pinned dispatch paths that never pass through here.
type graphSource Graph

func (s *graphSource) RunSlot(slot, budget int) int {
	return (*Graph)(s).queue.runSlot(slot, budget)
}

func (g *Graph) fail(err error) {
	g.failMu.Lock()
	if g.err == nil {
		g.err = err
	}
	g.failMu.Unlock()
}

// schedule enqueues a runnable step instance on the global queue.
func (g *Graph) schedule(run runnable) {
	g.outstanding.Add(1)
	g.queue.push(run)
}

// scheduleOn enqueues a runnable step instance pinned to one worker (the
// compute_on placement). Out-of-range workers wrap around so tuners can
// use plain tile arithmetic.
func (g *Graph) scheduleOn(worker int, run runnable) {
	g.outstanding.Add(1)
	w := worker % g.workers
	if w < 0 {
		w += g.workers
	}
	g.stats.pinned.Add(1)
	g.queue.pushLocal(w, run)
}

// Burst accumulates tag puts so their dispatches hit the queue — and wake
// parked workers — once per burst instead of once per tag. Obtain one with
// NewBurst, put through TagCollection.PutInto / PutThrottledInto, and call
// Flush when the burst is complete. A Burst is single-use and not safe for
// concurrent use: Flush hands it back to an internal pool, so it must not
// be touched afterwards. The runtime itself bursts the waiter wakeups of
// every item put and the child-tag fan-out of the recursive DAG builders.
//
// Outstanding-work accounting happens at append time (each PutInto holds
// the graph open exactly like a plain Put), so a burst in flight can never
// let the graph quiesce early; dropping a burst without Flush leaks those
// holds and hangs the run — always Flush.
//
// With an item backend installed, a Burst also stages the backend mirrors
// of any ItemCollection.PutInto calls made through it: Flush delivers the
// whole batch in one ItemBackend.PutBatch call *before* pushing any of the
// burst's dispatches, so a waiter woken by the burst can never observe an
// item whose mirror has not reached the backend (flush-before-wakeup — the
// batched form of the Put-before-wakeup write-through ordering).
type Burst struct {
	g   *Graph
	rs  []runnable
	ops []PutOp
}

// NewBurst returns an empty burst bound to the graph. Bursts are pooled:
// the steady state of a run allocates none.
func (g *Graph) NewBurst() *Burst {
	bu, _ := g.burstPool.Get().(*Burst)
	if bu == nil {
		bu = &Burst{}
	}
	bu.g = g
	return bu
}

// Flush pushes every accumulated dispatch in one batch, waking parked
// workers once for the whole burst, and recycles the Burst. Flushing an
// empty burst is a cheap no-op; using the Burst after Flush is a bug.
func (bu *Burst) Flush() {
	g := bu.g
	if g == nil {
		return // already flushed
	}
	// Backend mirrors first: no waiter wakeup staged in rs may reach the
	// queue before every staged put has crossed the backend seam.
	if len(bu.ops) > 0 {
		g.backendPutBatch(bu.ops)
		clear(bu.ops)
		bu.ops = bu.ops[:0]
	}
	if len(bu.rs) > 0 {
		g.queue.pushBatch(bu.rs)
	}
	clear(bu.rs)
	bu.rs = bu.rs[:0]
	bu.g = nil
	g.burstPool.Put(bu)
}

// add appends one dispatch to the burst, taking the outstanding-work hold
// immediately.
func (bu *Burst) add(g *Graph, run runnable) {
	g.outstanding.Add(1)
	bu.rs = append(bu.rs, run)
}

// addOp stages one backend mirror for Flush (see ItemCollection.PutInto).
func (bu *Burst) addOp(coll string, key, val any) {
	bu.ops = append(bu.ops, PutOp{Coll: coll, Key: key, Val: val})
}

// taskDone retires one unit of outstanding work and signals quiescence when
// none remains.
func (g *Graph) taskDone() {
	if g.outstanding.Add(-1) == 0 {
		g.quiesceMu.Lock()
		g.quiesceCond.Broadcast()
		g.quiesceMu.Unlock()
		return
	}
	// With deferred throttled puts pending, every retirement is a potential
	// admission opportunity — and the retirement that leaves only pending
	// holds outstanding is what triggers the idle-graph liveness check.
	if g.acct.pendingN.Load() > 0 {
		g.acct.pump()
	}
}

func (g *Graph) checkRunning() {
	if !g.running.Load() {
		panic(ErrNotRunning)
	}
}

// blockedReporter is implemented by item collections to enumerate parked
// instances for deadlock reports.
type blockedReporter interface {
	blockedInstances() []string
}

func (g *Graph) registerReporter(r blockedReporter) {
	g.structMu.Lock()
	g.reporters = append(g.reporters, r)
	g.structMu.Unlock()
}

// HasGetCounts reports whether any item collection of the graph declared a
// get-count. A fully declared graph must quiesce with Stats.LiveItems == 0;
// harnesses (internal/chaos) use this to decide whether a nonzero count
// after a successful run is a leak.
func (g *Graph) HasGetCounts() bool {
	g.structMu.Lock()
	defer g.structMu.Unlock()
	return g.hasGetCounts
}

// Blocked returns a snapshot of the currently parked step instances, one
// "step@tag <- coll[key]" entry each — the same form DeadlockError uses.
// It is safe to call while the graph runs, which is how the chaos
// watchdog dumps the wait state of a stalled run.
func (g *Graph) Blocked() []string { return g.collectBlocked() }

func (g *Graph) collectBlocked() []string {
	g.structMu.Lock()
	rs := g.reporters
	g.structMu.Unlock()
	var out []string
	for _, r := range rs {
		out = append(out, r.blockedInstances()...)
	}
	sort.Strings(out)
	return out
}
