package cnc

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
)

// Failure injection: steps fail at random points of a large graph; the
// graph must quiesce (never hang), report an error, and stop being usable.
func TestRandomStepFailures(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := NewGraph(fmt.Sprintf("chaos-%d", seed), 4)
		rng := rand.New(rand.NewSource(seed))
		failAt := rng.Intn(200)
		items := NewItemCollection[int, int](g, "it")
		tags := NewTagCollection[int](g, "tg", false)
		var executed atomic.Int64
		step := NewStepCollection(g, "s", func(i int) error {
			executed.Add(1)
			if i == failAt {
				return fmt.Errorf("injected failure at %d", i)
			}
			items.Put(i, i)
			return nil
		})
		tags.Prescribe(step)
		err := g.Run(func() {
			for i := 0; i < 200; i++ {
				tags.Put(i)
			}
		})
		if err == nil || !strings.Contains(err.Error(), "injected failure") {
			t.Fatalf("seed %d: err = %v", seed, err)
		}
		if executed.Load() == 0 {
			t.Fatalf("seed %d: nothing executed", seed)
		}
	}
}

// A producer failing must surface its own error even though the consumers
// it starves end up parked (first error wins over the deadlock report).
func TestProducerFailureBeatsDeadlockReport(t *testing.T) {
	g := NewGraph("pfail", 3)
	items := NewItemCollection[int, int](g, "it")
	prodTags := NewTagCollection[int](g, "pt", false)
	consTags := NewTagCollection[int](g, "ct", false)
	producer := NewStepCollection(g, "p", func(i int) error {
		return errors.New("producer exploded")
	})
	consumer := NewStepCollection(g, "c", func(i int) error {
		items.Get(i) // never produced
		return nil
	})
	prodTags.Prescribe(producer)
	consTags.Prescribe(consumer)
	err := g.Run(func() {
		consTags.Put(1)
		prodTags.Put(1)
	})
	if err == nil || !strings.Contains(err.Error(), "producer exploded") {
		t.Fatalf("err = %v, want the producer's error", err)
	}
}

// Panics inside steps on every worker simultaneously must all be contained.
func TestPanicStorm(t *testing.T) {
	g := NewGraph("storm", 8)
	tags := NewTagCollection[int](g, "tg", false)
	step := NewStepCollection(g, "s", func(i int) error {
		if i%2 == 0 {
			panic(fmt.Sprintf("boom %d", i))
		}
		return nil
	})
	tags.Prescribe(step)
	err := g.Run(func() {
		for i := 0; i < 100; i++ {
			tags.Put(i)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
}

// TagRange: putting a dense range of tags (the Intel CnC tag-range
// pattern) through PutRange must prescribe every instance exactly once.
func TestPutRange(t *testing.T) {
	g := NewGraph("range", 4)
	tags := NewTagCollection[int](g, "tg", false)
	var count atomic.Int64
	step := NewStepCollection(g, "s", func(int) error {
		count.Add(1)
		return nil
	})
	tags.Prescribe(step)
	if err := g.Run(func() {
		tags.PutRange(10, 110, func(i int) int { return i })
	}); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 100 {
		t.Fatalf("%d instances, want 100", count.Load())
	}
}

// Large-scale stress: a 100k-step wavefront through the runtime, checking
// quiescence accounting never wedges.
func TestLargeGraphStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const side = 316 // ~100k steps
	g := NewGraph("stress", 8)
	cells := NewItemCollection[[2]int, int32](g, "cells")
	tags := NewTagCollection[[2]int](g, "tg", true)
	step := NewStepCollection(g, "s", func(t [2]int) error {
		i, j := t[0], t[1]
		var v int32 = 1
		if i > 0 {
			v += cells.Get([2]int{i - 1, j})
		}
		if j > 0 && i == 0 {
			v += cells.Get([2]int{i, j - 1})
		}
		cells.Put(t, v%1000)
		if i+1 < side {
			tags.Put([2]int{i + 1, j})
		}
		if j+1 < side {
			tags.Put([2]int{i, j + 1})
		}
		return nil
	})
	tags.Prescribe(step)
	if err := g.Run(func() { tags.Put([2]int{0, 0}) }); err != nil {
		t.Fatal(err)
	}
	if cells.Len() != side*side {
		t.Fatalf("%d cells, want %d", cells.Len(), side*side)
	}
	s := g.Stats()
	if s.StepsDone != side*side {
		t.Fatalf("StepsDone = %d", s.StepsDone)
	}
}

// tunedModes enumerates the tuned scheduling modes for the table-driven
// failure tests below; the speculative path is covered by the tests above.
var tunedModes = []struct {
	name string
	mode TuningMode
}{
	{"Prescheduled", TunedPrescheduled},
	{"Triggered", TunedTriggered},
}

// Injected step failures under both tuned modes: a failing body must
// surface its error and the graph must quiesce, whether the instance ran
// inline (prescheduled, deps present), was triggered by the last
// dependency, or waited on a countdown.
func TestTunedStepFailures(t *testing.T) {
	for _, tm := range tunedModes {
		t.Run(tm.name, func(t *testing.T) {
			g := NewGraph("tuned-fail-"+tm.name, 4)
			in := NewItemCollection[int, int](g, "in")
			out := NewItemCollection[int, int](g, "out")
			tags := NewTagCollection[int](g, "tg", false)
			var executed atomic.Int64
			step := NewStepCollection(g, "s", func(i int) error {
				executed.Add(1)
				v, _ := in.TryGet(i)
				if i == 13 {
					return fmt.Errorf("injected tuned failure at %d", i)
				}
				out.Put(i, v*2)
				return nil
			}).WithDeps(tm.mode, func(i int) []Dep { return []Dep{in.Key(i)} })
			tags.Prescribe(step)
			err := g.Run(func() {
				// Half the deps exist before the tags, half arrive after, so
				// both the already-present and the subscribe path execute.
				for i := 0; i < 10; i++ {
					in.Put(i, i)
				}
				for i := 0; i < 20; i++ {
					tags.Put(i)
				}
				for i := 10; i < 20; i++ {
					in.Put(i, i)
				}
			})
			if err == nil || !strings.Contains(err.Error(), "injected tuned failure") {
				t.Fatalf("err = %v", err)
			}
			if executed.Load() == 0 {
				t.Fatal("nothing executed")
			}
		})
	}
}

// Injected panics under both tuned modes must be contained like errors.
func TestTunedStepPanics(t *testing.T) {
	for _, tm := range tunedModes {
		t.Run(tm.name, func(t *testing.T) {
			g := NewGraph("tuned-panic-"+tm.name, 4)
			in := NewItemCollection[int, int](g, "in")
			tags := NewTagCollection[int](g, "tg", false)
			step := NewStepCollection(g, "s", func(i int) error {
				if i%4 == 0 {
					panic(fmt.Sprintf("tuned boom %d", i))
				}
				return nil
			}).WithDeps(tm.mode, func(i int) []Dep { return []Dep{in.Key(i)} })
			tags.Prescribe(step)
			err := g.Run(func() {
				for i := 0; i < 40; i++ {
					tags.Put(i)
				}
				for i := 0; i < 40; i++ {
					in.Put(i, i)
				}
			})
			if err == nil || !strings.Contains(err.Error(), "tuned boom") {
				t.Fatalf("err = %v", err)
			}
		})
	}
}

// A retry budget absorbs transient failures in tuned instances too: the
// re-dispatch must not wait on (or re-subscribe to) the already-satisfied
// dependencies.
func TestTunedRetryAbsorbsTransientFailure(t *testing.T) {
	for _, tm := range tunedModes {
		t.Run(tm.name, func(t *testing.T) {
			g := NewGraph("tuned-retry-"+tm.name, 4)
			in := NewItemCollection[int, int](g, "in")
			tags := NewTagCollection[int](g, "tg", false)
			var attempts atomic.Int64
			step := NewStepCollection(g, "s", func(i int) error {
				if attempts.Add(1) == 1 {
					return errors.New("transient tuned failure")
				}
				return nil
			}).WithDeps(tm.mode, func(i int) []Dep { return []Dep{in.Key(i)} }).WithRetry(1)
			tags.Prescribe(step)
			if err := g.Run(func() {
				tags.Put(5)
				in.Put(5, 50)
			}); err != nil {
				t.Fatalf("retry did not absorb the tuned failure: %v", err)
			}
			if g.Stats().Retries != 1 {
				t.Fatalf("Retries = %d, want 1", g.Stats().Retries)
			}
		})
	}
}

// Deadlock reporting under both tuned modes: an instance whose declared
// dependency never arrives must quiesce into a DeadlockError whose Blocked
// entry names exactly the starved instance and the missing coll[key].
func TestTunedDeadlockBlockedNaming(t *testing.T) {
	for _, tm := range tunedModes {
		t.Run(tm.name, func(t *testing.T) {
			g := NewGraph("tuned-deadlock-"+tm.name, 2)
			in := NewItemCollection[int, int](g, "in")
			tags := NewTagCollection[int](g, "tg", false)
			step := NewStepCollection(g, "s", func(i int) error {
				return nil
			}).WithDeps(tm.mode, func(i int) []Dep { return []Dep{in.Key(i)} })
			tags.Prescribe(step)
			err := g.Run(func() {
				tags.Put(3)
				tags.Put(9)
				in.Put(3, 30) // tag 9's dependency is never produced
			})
			var dl *DeadlockError
			if !errors.As(err, &dl) {
				t.Fatalf("err = %v, want DeadlockError", err)
			}
			if len(dl.Blocked) != 1 {
				t.Fatalf("Blocked = %v, want exactly the one starved instance", dl.Blocked)
			}
			if want := "s@9 <- in[9]"; dl.Blocked[0] != want {
				t.Fatalf("Blocked[0] = %q, want %q", dl.Blocked[0], want)
			}
		})
	}
}

// The same precise naming must hold when the starvation is caused by a
// chaos DropTag hook discarding the producer's tag in each tuned mode.
func TestTunedDroppedTagDeadlock(t *testing.T) {
	for _, tm := range tunedModes {
		t.Run(tm.name, func(t *testing.T) {
			g := NewGraph("tuned-drop-"+tm.name, 2)
			g.SetHooks(&Hooks{DropTag: func(coll string, tag any) bool {
				return coll == "pt" && tag == 2
			}})
			items := NewItemCollection[int, int](g, "it")
			prodTags := NewTagCollection[int](g, "pt", false)
			consTags := NewTagCollection[int](g, "ct", false)
			producer := NewStepCollection(g, "p", func(i int) error {
				items.Put(i, i*10)
				return nil
			})
			consumer := NewStepCollection(g, "c", func(i int) error {
				items.TryGet(i)
				return nil
			}).WithDeps(tm.mode, func(i int) []Dep { return []Dep{items.Key(i)} })
			prodTags.Prescribe(producer)
			consTags.Prescribe(consumer)
			err := g.Run(func() {
				consTags.Put(1)
				consTags.Put(2)
				prodTags.Put(1)
				prodTags.Put(2) // dropped by the hook: c@2 starves
			})
			var dl *DeadlockError
			if !errors.As(err, &dl) {
				t.Fatalf("err = %v, want DeadlockError", err)
			}
			if len(dl.Blocked) != 1 || dl.Blocked[0] != "c@2 <- it[2]" {
				t.Fatalf("Blocked = %v, want [c@2 <- it[2]]", dl.Blocked)
			}
		})
	}
}
