package cnc

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
)

// Failure injection: steps fail at random points of a large graph; the
// graph must quiesce (never hang), report an error, and stop being usable.
func TestRandomStepFailures(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := NewGraph(fmt.Sprintf("chaos-%d", seed), 4)
		rng := rand.New(rand.NewSource(seed))
		failAt := rng.Intn(200)
		items := NewItemCollection[int, int](g, "it")
		tags := NewTagCollection[int](g, "tg", false)
		var executed atomic.Int64
		step := NewStepCollection(g, "s", func(i int) error {
			executed.Add(1)
			if i == failAt {
				return fmt.Errorf("injected failure at %d", i)
			}
			items.Put(i, i)
			return nil
		})
		tags.Prescribe(step)
		err := g.Run(func() {
			for i := 0; i < 200; i++ {
				tags.Put(i)
			}
		})
		if err == nil || !strings.Contains(err.Error(), "injected failure") {
			t.Fatalf("seed %d: err = %v", seed, err)
		}
		if executed.Load() == 0 {
			t.Fatalf("seed %d: nothing executed", seed)
		}
	}
}

// A producer failing must surface its own error even though the consumers
// it starves end up parked (first error wins over the deadlock report).
func TestProducerFailureBeatsDeadlockReport(t *testing.T) {
	g := NewGraph("pfail", 3)
	items := NewItemCollection[int, int](g, "it")
	prodTags := NewTagCollection[int](g, "pt", false)
	consTags := NewTagCollection[int](g, "ct", false)
	producer := NewStepCollection(g, "p", func(i int) error {
		return errors.New("producer exploded")
	})
	consumer := NewStepCollection(g, "c", func(i int) error {
		items.Get(i) // never produced
		return nil
	})
	prodTags.Prescribe(producer)
	consTags.Prescribe(consumer)
	err := g.Run(func() {
		consTags.Put(1)
		prodTags.Put(1)
	})
	if err == nil || !strings.Contains(err.Error(), "producer exploded") {
		t.Fatalf("err = %v, want the producer's error", err)
	}
}

// Panics inside steps on every worker simultaneously must all be contained.
func TestPanicStorm(t *testing.T) {
	g := NewGraph("storm", 8)
	tags := NewTagCollection[int](g, "tg", false)
	step := NewStepCollection(g, "s", func(i int) error {
		if i%2 == 0 {
			panic(fmt.Sprintf("boom %d", i))
		}
		return nil
	})
	tags.Prescribe(step)
	err := g.Run(func() {
		for i := 0; i < 100; i++ {
			tags.Put(i)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
}

// TagRange: putting a dense range of tags (the Intel CnC tag-range
// pattern) through PutRange must prescribe every instance exactly once.
func TestPutRange(t *testing.T) {
	g := NewGraph("range", 4)
	tags := NewTagCollection[int](g, "tg", false)
	var count atomic.Int64
	step := NewStepCollection(g, "s", func(int) error {
		count.Add(1)
		return nil
	})
	tags.Prescribe(step)
	if err := g.Run(func() {
		tags.PutRange(10, 110, func(i int) int { return i })
	}); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 100 {
		t.Fatalf("%d instances, want 100", count.Load())
	}
}

// Large-scale stress: a 100k-step wavefront through the runtime, checking
// quiescence accounting never wedges.
func TestLargeGraphStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const side = 316 // ~100k steps
	g := NewGraph("stress", 8)
	cells := NewItemCollection[[2]int, int32](g, "cells")
	tags := NewTagCollection[[2]int](g, "tg", true)
	step := NewStepCollection(g, "s", func(t [2]int) error {
		i, j := t[0], t[1]
		var v int32 = 1
		if i > 0 {
			v += cells.Get([2]int{i - 1, j})
		}
		if j > 0 && i == 0 {
			v += cells.Get([2]int{i, j - 1})
		}
		cells.Put(t, v%1000)
		if i+1 < side {
			tags.Put([2]int{i + 1, j})
		}
		if j+1 < side {
			tags.Put([2]int{i, j + 1})
		}
		return nil
	})
	tags.Prescribe(step)
	if err := g.Run(func() { tags.Put([2]int{0, 0}) }); err != nil {
		t.Fatal(err)
	}
	if cells.Len() != side*side {
		t.Fatalf("%d cells, want %d", cells.Len(), side*side)
	}
	s := g.Stats()
	if s.StepsDone != side*side {
		t.Fatalf("StepsDone = %d", s.StepsDone)
	}
}
