package cnc

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// mapBackend is an in-memory ItemBackend that can perturb the value it
// serves and count its traffic — the unit-test stand-in for the distributed
// coordinator.
type mapBackend struct {
	mu      sync.Mutex
	items   map[string]any
	puts    int
	gets    int
	batches int // PutBatch calls (each delivering >= 1 op)
	// transform, when non-nil, rewrites served values — proof the Get path
	// returns the backend's copy, not the local cache.
	transform func(any) any
	putErr    error // returned by every Put/PutBatch when non-nil (terminal)
	getErr    error // returned by every Get when non-nil (terminal)
}

func (b *mapBackend) key(coll string, key any) string { return fmt.Sprintf("%s[%v]", coll, key) }

func (b *mapBackend) Put(coll string, key, val any) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.putErr != nil {
		return b.putErr
	}
	if b.items == nil {
		b.items = make(map[string]any)
	}
	b.items[b.key(coll, key)] = val
	b.puts++
	return nil
}

func (b *mapBackend) PutBatch(ops []PutOp) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.putErr != nil {
		return b.putErr
	}
	if b.items == nil {
		b.items = make(map[string]any)
	}
	for _, op := range ops {
		b.items[b.key(op.Coll, op.Key)] = op.Val
		b.puts++
	}
	b.batches++
	return nil
}

func (b *mapBackend) Get(coll string, key any) (any, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.gets++
	if b.getErr != nil {
		return nil, b.getErr
	}
	v, ok := b.items[b.key(coll, key)]
	if !ok {
		return nil, fmt.Errorf("backend: missing %s", b.key(coll, key))
	}
	if b.transform != nil {
		v = b.transform(v)
	}
	return v, nil
}

// TestItemBackendWriteThroughAndRemoteRead proves the seam's two halves:
// every put is mirrored before consumers run, and every get serves the
// backend's value (the transform shows up in the consumer's read), with the
// traffic visible in Stats.
func TestItemBackendWriteThroughAndRemoteRead(t *testing.T) {
	be := &mapBackend{transform: func(v any) any { return v.(int) + 100 }}
	g := NewGraph("backend", 2)
	g.WithItemBackend(be)
	items := NewItemCollection[int, int](g, "vals")
	var got int
	consume := NewStepCollection(g, "consume", func(k int) error {
		got = items.Get(k) // parks until the producer's put lands
		return nil
	})
	produce := NewStepCollection(g, "produce", func(k int) error {
		items.Put(k, 7)
		return nil
	})
	ctags := NewTagCollection[int](g, "ctags", false)
	ptags := NewTagCollection[int](g, "ptags", false)
	ctags.Prescribe(consume)
	ptags.Prescribe(produce)

	err := g.Run(func() {
		ctags.Put(1) // consumer first: exercises the park-then-wake order
		ptags.Put(1)
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got != 107 {
		t.Fatalf("consumer read %d, want the backend-served 107 (local cache was 7)", got)
	}
	st := g.Stats()
	if st.BackendPuts != 1 || be.puts != 1 {
		t.Fatalf("BackendPuts = %d (backend saw %d), want 1", st.BackendPuts, be.puts)
	}
	if st.BackendGets == 0 || be.gets == 0 {
		t.Fatalf("BackendGets = %d (backend saw %d), want > 0", st.BackendGets, be.gets)
	}
	if g.BackendBusy() != 0 {
		t.Fatalf("BackendBusy = %d after quiesce, want 0", g.BackendBusy())
	}
}

// TestItemBackendRetriesReleaseOnce mirrors the PR 6 WithRetry ×
// cancellation accounting test at the backend tier: a step whose first
// attempt fails *after* its backend-served gets must not double-release its
// read set when the retry succeeds — the backend sees the re-read (two
// gets) but get-count GC decrements exactly once, so the run quiesces
// leak-free with no over-release error.
func TestItemBackendRetriesReleaseOnce(t *testing.T) {
	be := &mapBackend{}
	g := NewGraph("backend-retry", 2)
	g.WithItemBackend(be)
	items := NewItemCollection[int, int](g, "vals")
	items.WithGetCount(func(int) int { return 1 })

	var attempts int
	var mu sync.Mutex
	consume := NewStepCollection(g, "consume", func(k int) error {
		_ = items.Get(k) // gets-first: the failed attempt has already read
		mu.Lock()
		attempts++
		first := attempts == 1
		mu.Unlock()
		if first {
			return errors.New("transient")
		}
		return nil
	})
	consume.WithRetry(2)
	consume.WithGets(func(k int) []Dep { return []Dep{items.Key(k)} })
	produce := NewStepCollection(g, "produce", func(k int) error {
		items.Put(k, k)
		return nil
	})
	ctags := NewTagCollection[int](g, "ctags", false)
	ptags := NewTagCollection[int](g, "ptags", false)
	ctags.Prescribe(consume)
	ptags.Prescribe(produce)

	err := g.Run(func() {
		ptags.Put(1)
		ctags.Put(1)
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (one injected failure + one retry)", attempts)
	}
	st := g.Stats()
	if st.Retries != 1 {
		t.Fatalf("Retries = %d, want 1", st.Retries)
	}
	if be.gets < 2 {
		t.Fatalf("backend gets = %d, want >= 2 (each attempt re-reads)", be.gets)
	}
	if st.LiveItems != 0 || st.ItemsFreed != 1 {
		t.Fatalf("LiveItems = %d, ItemsFreed = %d; want 0 live, 1 freed (released exactly once)",
			st.LiveItems, st.ItemsFreed)
	}
}

// TestItemBackendTerminalErrorFailsGraph: a backend that cannot serve a get
// even after its internal recovery (a non-nil error) is terminal — the run
// fails with an error naming the collection and key, never silently serving
// the stale local copy as a success.
func TestItemBackendTerminalErrorFailsGraph(t *testing.T) {
	be := &mapBackend{getErr: errors.New("shard 0 irrecoverably lost")}
	g := NewGraph("backend-err", 2)
	g.WithItemBackend(be)
	items := NewItemCollection[int, int](g, "vals")
	consume := NewStepCollection(g, "consume", func(k int) error {
		_ = items.Get(k)
		return nil
	})
	ctags := NewTagCollection[int](g, "ctags", false)
	ctags.Prescribe(consume)
	produce := NewStepCollection(g, "produce", func(k int) error {
		items.Put(k, k)
		return nil
	})
	ptags := NewTagCollection[int](g, "ptags", false)
	ptags.Prescribe(produce)

	err := g.Run(func() {
		ptags.Put(3)
		ctags.Put(3)
	})
	if err == nil {
		t.Fatal("run succeeded with a terminally failing backend")
	}
	if !strings.Contains(err.Error(), "item backend get vals[3]") {
		t.Fatalf("error does not name the backend get: %v", err)
	}
}

// TestItemBackendErrorCountsOnlySuccesses: Stats.BackendPuts/BackendGets
// must count operations the backend *accepted* — a terminal error is a
// failed operation, not traffic. (The counters feed the harness reports'
// put/get censuses; counting failures would make a failing run's report
// indistinguishable from a healthy one.)
func TestItemBackendErrorCountsOnlySuccesses(t *testing.T) {
	t.Run("put", func(t *testing.T) {
		be := &mapBackend{putErr: errors.New("shard refused the put")}
		g := NewGraph("backend-putcount", 2)
		g.WithItemBackend(be)
		items := NewItemCollection[int, int](g, "vals")
		produce := NewStepCollection(g, "produce", func(k int) error {
			items.Put(k, k)
			return nil
		})
		ptags := NewTagCollection[int](g, "ptags", false)
		ptags.Prescribe(produce)
		err := g.Run(func() { ptags.Put(1) })
		if err == nil || !strings.Contains(err.Error(), "item backend put vals[1]") {
			t.Fatalf("want a terminal backend-put error, got %v", err)
		}
		if st := g.Stats(); st.BackendPuts != 0 {
			t.Fatalf("BackendPuts = %d after a failed put, want 0", st.BackendPuts)
		}
	})
	t.Run("get", func(t *testing.T) {
		be := &mapBackend{getErr: errors.New("shard irrecoverably lost")}
		g := NewGraph("backend-getcount", 2)
		g.WithItemBackend(be)
		items := NewItemCollection[int, int](g, "vals")
		consume := NewStepCollection(g, "consume", func(k int) error {
			_ = items.Get(k)
			return nil
		})
		ctags := NewTagCollection[int](g, "ctags", false)
		ctags.Prescribe(consume)
		produce := NewStepCollection(g, "produce", func(k int) error {
			items.Put(k, k)
			return nil
		})
		ptags := NewTagCollection[int](g, "ptags", false)
		ptags.Prescribe(produce)
		err := g.Run(func() {
			ptags.Put(2)
			ctags.Put(2)
		})
		if err == nil || !strings.Contains(err.Error(), "item backend get vals[2]") {
			t.Fatalf("want a terminal backend-get error, got %v", err)
		}
		if st := g.Stats(); st.BackendGets != 0 {
			t.Fatalf("BackendGets = %d after a failed get, want 0", st.BackendGets)
		}
	})
}

// TestItemBackendPutBatchFlushBeforeWakeup: PutInto stages mirrors into the
// burst, Flush delivers them as one PutBatch call, and — the ordering that
// distributed read-your-writes rests on — the batch reaches the backend
// before any consumer woken by the burst reads: the consumers observe the
// backend's transformed values, proving their reads went out after the
// batched mirror landed.
func TestItemBackendPutBatchFlushBeforeWakeup(t *testing.T) {
	const n = 8
	be := &mapBackend{transform: func(v any) any { return v.(int) + 100 }}
	g := NewGraph("backend-batch", 4)
	g.WithItemBackend(be)
	items := NewItemCollection[int, int](g, "vals")
	got := make([]int, n)
	consume := NewStepCollection(g, "consume", func(k int) error {
		got[k] = items.Get(k) // parks until the producer's burst flushes
		return nil
	})
	produce := NewStepCollection(g, "produce", func(k int) error {
		if k != 0 {
			return nil
		}
		bu := g.NewBurst()
		for i := 0; i < n; i++ {
			items.PutInto(i, i, bu)
		}
		bu.Flush()
		return nil
	})
	ctags := NewTagCollection[int](g, "ctags", false)
	ptags := NewTagCollection[int](g, "ptags", false)
	ctags.Prescribe(consume)
	ptags.Prescribe(produce)

	err := g.Run(func() {
		for i := 0; i < n; i++ {
			ctags.Put(i) // park all consumers first
		}
		ptags.Put(0)
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for i := 0; i < n; i++ {
		if got[i] != i+100 {
			t.Fatalf("consumer %d read %d, want the backend-served %d", i, got[i], i+100)
		}
	}
	st := g.Stats()
	if st.BackendPuts != n || be.puts != n {
		t.Fatalf("BackendPuts = %d (backend saw %d), want %d", st.BackendPuts, be.puts, n)
	}
	if be.batches != 1 {
		t.Fatalf("backend saw %d PutBatch calls for one burst, want 1", be.batches)
	}
}

// TestItemBackendBatchTerminalErrorFailsGraph: a refused batch is as
// terminal as a refused put — the run fails, naming the batch.
func TestItemBackendBatchTerminalErrorFailsGraph(t *testing.T) {
	be := &mapBackend{putErr: errors.New("write-once violation")}
	g := NewGraph("backend-batch-err", 2)
	g.WithItemBackend(be)
	items := NewItemCollection[int, int](g, "vals")
	produce := NewStepCollection(g, "produce", func(k int) error {
		bu := g.NewBurst()
		items.PutInto(k, k, bu)
		items.PutInto(k+1, k, bu)
		bu.Flush()
		return nil
	})
	ptags := NewTagCollection[int](g, "ptags", false)
	ptags.Prescribe(produce)
	err := g.Run(func() { ptags.Put(1) })
	if err == nil || !strings.Contains(err.Error(), "item backend put batch of 2") {
		t.Fatalf("want a terminal batch error, got %v", err)
	}
	if st := g.Stats(); st.BackendPuts != 0 {
		t.Fatalf("BackendPuts = %d after a refused batch, want 0", st.BackendPuts)
	}
}

// TestItemBackendTypeMismatchFailsLoudly: a backend returning the wrong
// concrete type (a codec bug in a real deployment) must fail the graph with
// an error naming both types, not corrupt the step's read.
func TestItemBackendTypeMismatchFailsLoudly(t *testing.T) {
	be := &mapBackend{transform: func(any) any { return "not an int" }}
	g := NewGraph("backend-type", 2)
	g.WithItemBackend(be)
	items := NewItemCollection[int, int](g, "vals")
	consume := NewStepCollection(g, "consume", func(k int) error {
		_ = items.Get(k)
		return nil
	})
	ctags := NewTagCollection[int](g, "ctags", false)
	ctags.Prescribe(consume)
	produce := NewStepCollection(g, "produce", func(k int) error {
		items.Put(k, k)
		return nil
	})
	ptags := NewTagCollection[int](g, "ptags", false)
	ptags.Prescribe(produce)

	err := g.Run(func() {
		ptags.Put(5)
		ctags.Put(5)
	})
	if err == nil {
		t.Fatal("run succeeded with a type-corrupting backend")
	}
	if !strings.Contains(err.Error(), "want int") || !strings.Contains(err.Error(), "string") {
		t.Fatalf("error does not name the mismatched types: %v", err)
	}
}
