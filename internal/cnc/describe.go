package cnc

import (
	"fmt"
	"sort"
	"strings"
)

// Describe renders the static CnC specification in the paper's textual
// notation (Listing 1): parentheses for step collections, square brackets
// for item collections and angle brackets for tag collections.
func (g *Graph) Describe() string {
	g.structMu.Lock()
	defer g.structMu.Unlock()
	var sb strings.Builder
	fmt.Fprintf(&sb, "// CnC specification of graph %q\n", g.name)
	for _, s := range g.steps {
		for _, t := range s.prescribedBy {
			fmt.Fprintf(&sb, "<%s> :: (%s);\n", t, s.name)
		}
	}
	for _, s := range g.steps {
		var parts []string
		for _, c := range sortedCopy(s.consumes) {
			parts = append(parts, fmt.Sprintf("[%s]", c))
		}
		if len(parts) > 0 {
			fmt.Fprintf(&sb, "%s --> (%s);\n", strings.Join(parts, ", "), s.name)
		}
		parts = parts[:0]
		for _, p := range sortedCopy(s.produces) {
			parts = append(parts, fmt.Sprintf("[%s]", p))
		}
		if len(parts) > 0 {
			fmt.Fprintf(&sb, "(%s) --> %s;\n", s.name, strings.Join(parts, ", "))
		}
	}
	// Memory contract: get-count / size-of / tag-bytes declarations and the
	// graph's live-bytes budget, so a dump documents not only who produces
	// and consumes what, but when data dies and how much may live at once.
	for _, it := range g.items {
		var decls []string
		if it.getCount {
			decls = append(decls, "get-count")
		}
		if it.sizeOf {
			decls = append(decls, "size-of")
		}
		if len(decls) > 0 {
			fmt.Fprintf(&sb, "[%s] : %s;\n", it.name, strings.Join(decls, ", "))
		}
	}
	for _, s := range g.steps {
		if s.releases {
			fmt.Fprintf(&sb, "(%s) : releases gets on completion;\n", s.name)
		}
	}
	for _, t := range g.tags {
		if t.tagBytes {
			fmt.Fprintf(&sb, "<%s> : tag-bytes;\n", t.name)
		}
	}
	if g.acct.limit > 0 {
		fmt.Fprintf(&sb, "// memory limit: %d bytes (throttled puts deferred until frees land)\n", g.acct.limit)
	}
	fmt.Fprintf(&sb, "// scheduler: %d worker(s), work-stealing dispatch (%s victim order), %d-way striped item stores\n",
		g.workers, g.queue.policy, itemShards)
	return sb.String()
}

// Dot renders the static CnC graph in Graphviz DOT format: ovals for step
// collections, rectangles for item collections and hexagons for tag
// collections — the shapes of the paper's Figure 1.
func (g *Graph) Dot() string {
	g.structMu.Lock()
	defer g.structMu.Unlock()
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=LR;\n", g.name)
	for _, t := range g.tags {
		fmt.Fprintf(&sb, "  %q [shape=hexagon label=\"<%s>\"];\n", "tag_"+t.name, t.name)
	}
	for _, i := range g.items {
		// Double periphery marks get-counted (garbage-collected) items.
		extra := ""
		if i.getCount {
			extra = " peripheries=2"
		}
		fmt.Fprintf(&sb, "  %q [shape=box%s label=\"[%s]\"];\n", "item_"+i.name, extra, i.name)
	}
	for _, s := range g.steps {
		fmt.Fprintf(&sb, "  %q [shape=oval label=\"(%s)\"];\n", "step_"+s.name, s.name)
	}
	for _, s := range g.steps {
		for _, t := range s.prescribedBy {
			fmt.Fprintf(&sb, "  %q -> %q [style=dashed];\n", "tag_"+t, "step_"+s.name)
		}
		for _, c := range sortedCopy(s.consumes) {
			fmt.Fprintf(&sb, "  %q -> %q;\n", "item_"+c, "step_"+s.name)
		}
		for _, p := range sortedCopy(s.produces) {
			fmt.Fprintf(&sb, "  %q -> %q;\n", "step_"+s.name, "item_"+p)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

func sortedCopy(ss []string) []string {
	out := append([]string(nil), ss...)
	sort.Strings(out)
	return out
}
