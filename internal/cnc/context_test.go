package cnc

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dpflow/internal/determinacy"
	"dpflow/internal/exec"
)

// A cancelled RunContext must return ctx.Err() promptly — well under any
// watchdog window — even while the graph keeps generating work, and must
// not leak goroutines.
func TestRunContextCancellation(t *testing.T) {
	exec.Default() // the shared pool is process-lifetime, not a leak
	before := runtime.NumGoroutine()

	g := NewGraph("cancel", 4)
	tags := NewTagCollection[int](g, "tg", false)
	started := make(chan struct{})
	var once sync.Once
	step := NewStepCollection(g, "s", func(i int) error {
		once.Do(func() { close(started) })
		tags.Put(i + 1) // unbounded chain: only cancellation ends the run
		return nil
	})
	tags.Prescribe(step)

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		errCh <- g.RunContext(ctx, func() {
			for i := 0; i < 4; i++ {
				tags.Put(i * 1_000_000)
			}
		})
	}()
	<-started
	start := time.Now()
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("RunContext = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled RunContext did not return")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("cancellation took %v, want prompt drain", d)
	}

	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("goroutines leaked: %d before run, %d after", before, now)
	}
}

// A deadline that expires mid-run surfaces as context.DeadlineExceeded.
func TestRunContextDeadline(t *testing.T) {
	g := NewGraph("deadline", 2)
	tags := NewTagCollection[int](g, "tg", false)
	step := NewStepCollection(g, "s", func(i int) error {
		tags.Put(i + 1)
		return nil
	})
	tags.Prescribe(step)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err := g.RunContext(ctx, func() { tags.Put(0) })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// RunContext with an uncancelled context must be indistinguishable from Run.
func TestRunContextCompletes(t *testing.T) {
	g := NewGraph("plain", 4)
	items := NewItemCollection[int, int](g, "it")
	tags := NewTagCollection[int](g, "tg", false)
	step := NewStepCollection(g, "s", func(i int) error {
		items.Put(i, i*i)
		return nil
	})
	tags.Prescribe(step)
	if err := g.RunContext(context.Background(), func() { tags.PutRange(0, 100, func(i int) int { return i }) }); err != nil {
		t.Fatal(err)
	}
	if items.Len() != 100 {
		t.Fatalf("items = %d, want 100", items.Len())
	}
}

// Cancellation must win over the deadlock report for the instances the
// drain starved.
func TestCancellationBeatsDeadlockReport(t *testing.T) {
	g := NewGraph("cancel-deadlock", 2)
	items := NewItemCollection[int, int](g, "it")
	tags := NewTagCollection[int](g, "tg", false)
	blockedRunning := make(chan struct{})
	var once sync.Once
	step := NewStepCollection(g, "s", func(i int) error {
		if i == 0 {
			once.Do(func() { close(blockedRunning) })
			items.Get(99) // never produced: parks forever
		}
		tags.Put(i + 1)
		return nil
	})
	tags.Prescribe(step)
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		errCh <- g.RunContext(ctx, func() { tags.Put(0); tags.Put(1) })
	}()
	<-blockedRunning
	cancel()
	err := <-errCh
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled to beat the deadlock report", err)
	}
}

// WithRetry absorbs transient failures: a step failing its first attempts
// must be re-executed and the run must complete cleanly.
func TestWithRetryAbsorbsTransientFailures(t *testing.T) {
	g := NewGraph("retry", 4)
	items := NewItemCollection[int, int](g, "it")
	tags := NewTagCollection[int](g, "tg", false)
	var mu sync.Mutex
	attempts := map[int]int{}
	step := NewStepCollection(g, "s", func(i int) error {
		mu.Lock()
		attempts[i]++
		n := attempts[i]
		mu.Unlock()
		if i%3 == 0 && n <= 2 {
			return fmt.Errorf("transient failure %d of tag %d", n, i)
		}
		items.Put(i, i)
		return nil
	}).WithRetry(2)
	tags.Prescribe(step)
	if err := g.Run(func() { tags.PutRange(0, 30, func(i int) int { return i }) }); err != nil {
		t.Fatalf("retries did not absorb transient failures: %v", err)
	}
	if items.Len() != 30 {
		t.Fatalf("items = %d, want 30", items.Len())
	}
	if got := g.Stats().Retries; got != 20 { // tags 0,3,...,27: two retries each
		t.Fatalf("Stats.Retries = %d, want 20", got)
	}
}

// Cancellation arriving mid-retry must behave like any other cancellation:
// the run returns ctx.Err() promptly, no worker goroutine leaks, and the
// abandoned retries must not have touched the get-count accounting — a
// failed attempt releases nothing, so cancelling between attempts can never
// double-decrement a count or free an item early.
func TestWithRetryCancellationMidRetry(t *testing.T) {
	exec.Default() // the shared pool is process-lifetime, not a leak
	before := runtime.NumGoroutine()

	dc := determinacy.NewDisciplineChecker()
	g := NewGraph("retry-cancel", 4).WithDisciplineCheck(dc)
	in := NewItemCollection[int, int](g, "in")
	in.WithGetCount(func(int) int { return 1 })
	tags := NewTagCollection[int](g, "tg", false)
	retrying := make(chan struct{})
	var once sync.Once
	var attempts atomic.Int64
	step := NewStepCollection(g, "s", func(i int) error {
		in.Get(0)
		if attempts.Add(1) >= 2 {
			once.Do(func() { close(retrying) }) // first retry is in flight
		}
		return errors.New("failing every attempt")
	}).WithRetry(1 << 30) // budget never exhausts: only cancellation ends the run
	step.WithGets(func(i int) []Dep { return []Dep{in.Key(0)} })
	tags.Prescribe(step)

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		errCh <- g.RunContext(ctx, func() {
			in.Put(0, 42)
			tags.Put(0)
		})
	}()
	<-retrying
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("RunContext = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled mid-retry run did not return")
	}

	st := g.Stats()
	if st.Retries == 0 {
		t.Fatal("run was cancelled before any retry; the scenario is vacuous")
	}
	// No attempt succeeded, so the declared get must never have been
	// released: the item is still live, nothing freed, and the discipline
	// ledger saw zero releases and no overdraw.
	if st.LiveItems != 1 || st.ItemsFreed != 0 {
		t.Fatalf("LiveItems = %d, ItemsFreed = %d; failed attempts touched the get-count accounting",
			st.LiveItems, st.ItemsFreed)
	}
	if ds := dc.Stats(); ds.Releases != 0 || ds.Violations != 0 {
		t.Fatalf("discipline stats %+v: abandoned retries released or overdrew", ds)
	}

	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("goroutines leaked: %d before run, %d after", before, now)
	}
}

// An exhausted retry budget surfaces the last failure.
func TestWithRetryBudgetExhausted(t *testing.T) {
	g := NewGraph("retry-exhausted", 2)
	tags := NewTagCollection[int](g, "tg", false)
	var attempts atomic.Int64
	step := NewStepCollection(g, "s", func(i int) error {
		attempts.Add(1)
		return errors.New("permanent failure")
	}).WithRetry(3)
	tags.Prescribe(step)
	err := g.Run(func() { tags.Put(7) })
	if err == nil || !strings.Contains(err.Error(), "permanent failure") {
		t.Fatalf("err = %v", err)
	}
	if got := attempts.Load(); got != 4 { // 1 initial + 3 retries
		t.Fatalf("attempts = %d, want 4", got)
	}
}

// Graph.SetRetry supplies the default budget for collections without their
// own, and retries also absorb contained panics.
func TestGraphDefaultRetryAbsorbsPanic(t *testing.T) {
	g := NewGraph("retry-default", 2)
	g.SetRetry(1)
	tags := NewTagCollection[int](g, "tg", false)
	var attempts atomic.Int64
	step := NewStepCollection(g, "s", func(i int) error {
		if attempts.Add(1) == 1 {
			panic("one-shot panic")
		}
		return nil
	})
	tags.Prescribe(step)
	if err := g.Run(func() { tags.Put(1) }); err != nil {
		t.Fatalf("default retry did not absorb the panic: %v", err)
	}
	if got := g.Stats().Retries; got != 1 {
		t.Fatalf("Stats.Retries = %d, want 1", got)
	}
}

// Hooks: BeforeStep errors fail the attempt like a body error, DropTag
// starves the consumers into a precise DeadlockError, and BeforeItemPut
// sees every item put.
func TestHooks(t *testing.T) {
	t.Run("BeforeStep", func(t *testing.T) {
		g := NewGraph("hook-step", 2)
		g.SetHooks(&Hooks{BeforeStep: func(step string, tag any) error {
			if tag == 3 {
				return errors.New("hooked failure")
			}
			return nil
		}})
		tags := NewTagCollection[int](g, "tg", false)
		step := NewStepCollection(g, "s", func(int) error { return nil })
		tags.Prescribe(step)
		err := g.Run(func() { tags.PutRange(0, 10, func(i int) int { return i }) })
		if err == nil || !strings.Contains(err.Error(), "hooked failure") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("DropTag", func(t *testing.T) {
		g := NewGraph("hook-drop", 2)
		g.SetHooks(&Hooks{DropTag: func(coll string, tag any) bool {
			return coll == "pt" && tag == 1
		}})
		items := NewItemCollection[int, int](g, "it")
		prodTags := NewTagCollection[int](g, "pt", false)
		consTags := NewTagCollection[int](g, "ct", false)
		producer := NewStepCollection(g, "p", func(i int) error { items.Put(i, i); return nil })
		consumer := NewStepCollection(g, "c", func(i int) error { items.Get(i); return nil })
		prodTags.Prescribe(producer)
		consTags.Prescribe(consumer)
		err := g.Run(func() { consTags.Put(1); prodTags.Put(1) })
		var dl *DeadlockError
		if !errors.As(err, &dl) {
			t.Fatalf("err = %v, want DeadlockError from the dropped producer tag", err)
		}
		if len(dl.Blocked) != 1 || !strings.Contains(dl.Blocked[0], "c@1 <- it[1]") {
			t.Fatalf("blocked = %v, want the starved consumer named", dl.Blocked)
		}
	})
	t.Run("BeforeItemPut", func(t *testing.T) {
		g := NewGraph("hook-item", 2)
		var puts atomic.Int64
		g.SetHooks(&Hooks{BeforeItemPut: func(string, any) { puts.Add(1) }})
		items := NewItemCollection[int, int](g, "it")
		tags := NewTagCollection[int](g, "tg", false)
		step := NewStepCollection(g, "s", func(i int) error { items.Put(i, i); return nil })
		tags.Prescribe(step)
		if err := g.Run(func() { tags.PutRange(0, 25, func(i int) int { return i }) }); err != nil {
			t.Fatal(err)
		}
		if puts.Load() != 25 {
			t.Fatalf("BeforeItemPut saw %d puts, want 25", puts.Load())
		}
	})
}
