package cnc

import (
	"context"
	"errors"
	"strings"
	"testing"

	"dpflow/internal/determinacy"
)

// TestDisciplineDoublePutNamesBothSteps seeds the canonical write-once
// violation — two step instances put the same item with differing values —
// and checks the run fails with the checker's report naming both writers
// and the value conflict.
func TestDisciplineDoublePutNamesBothSteps(t *testing.T) {
	dc := determinacy.NewDisciplineChecker()
	g := NewGraph("double-put", 2).WithDisciplineCheck(dc)
	out := NewItemCollection[int, int](g, "out")
	tags := NewTagCollection[int](g, "t", false)
	step := NewStepCollection(g, "w", func(i int) error {
		out.Put(0, i) // both instances write out[0], with different values
		return nil
	})
	tags.Prescribe(step)
	err := g.RunContext(context.Background(), func() {
		tags.Put(1)
		tags.Put(2)
	})
	if err == nil {
		t.Fatal("double put did not fail the graph")
	}
	var dpe *determinacy.DoublePutError
	if !errors.As(err, &dpe) {
		t.Fatalf("err = %v (%T), want a *DoublePutError in the chain", err, err)
	}
	if !dpe.Differs {
		t.Fatal("Differs = false: the seeded values conflict")
	}
	// Which instance got there first is schedule-dependent; both must be
	// named, attributed as step@tag.
	writers := dpe.FirstPutBy + " " + dpe.SecondPutBy
	if !strings.Contains(writers, "w@1") || !strings.Contains(writers, "w@2") {
		t.Fatalf("writers = %q, want both w@1 and w@2", writers)
	}
	if dc.Err() == nil || len(dc.Violations()) == 0 {
		t.Fatal("checker recorded no violation")
	}
}

// TestDisciplineOverdrawNamesOverReader seeds a get-count overdraw: out[0]
// declares one consumer but two step instances declare a get on it. The
// second access (on one worker, strictly after the first freed the item)
// must fail the run with an overdraw report naming the over-reader and the
// instance that consumed the budget.
func TestDisciplineOverdrawNamesOverReader(t *testing.T) {
	dc := determinacy.NewDisciplineChecker()
	g := NewGraph("overdraw", 1).WithDisciplineCheck(dc)
	in := NewItemCollection[int, int](g, "in")
	in.WithGetCount(func(int) int { return 1 }) // actual declared readers: 2
	tags := NewTagCollection[int](g, "t", false)
	step := NewStepCollection(g, "r", func(i int) error {
		in.Get(0)
		return nil
	})
	step.WithGets(func(i int) []Dep { return []Dep{in.Key(0)} })
	tags.Prescribe(step)
	err := g.RunContext(context.Background(), func() {
		in.Put(0, 99)
		tags.Put(1)
		tags.Put(2)
	})
	if err == nil {
		t.Fatal("over-read of a freed item did not fail the graph")
	}
	var ode *determinacy.OverdrawError
	if !errors.As(err, &ode) {
		t.Fatalf("err = %v (%T), want an *OverdrawError in the chain", err, err)
	}
	if ode.Declared != 1 {
		t.Errorf("Declared = %d, want 1", ode.Declared)
	}
	if len(ode.Consumers) != 1 || !strings.HasPrefix(ode.Consumers[0], "r@") {
		t.Errorf("Consumers = %v, want the one r@ instance that used the budget", ode.Consumers)
	}
	if !strings.HasPrefix(ode.By, "r@") || ode.By == ode.Consumers[0] {
		t.Errorf("By = %q, want the other r@ instance", ode.By)
	}
	// The pre-existing use-after-free surface stays intact alongside the
	// attribution.
	var uafe *UseAfterFreeError
	if !errors.As(err, &uafe) {
		t.Fatalf("err = %v, want UseAfterFreeError preserved in the chain", err)
	}
}

// TestDisciplineEnvironmentAttribution checks puts issued by the
// environment closure are attributed to "env", not left unattributed.
func TestDisciplineEnvironmentAttribution(t *testing.T) {
	dc := determinacy.NewDisciplineChecker()
	g := NewGraph("env-attr", 1).WithDisciplineCheck(dc)
	out := NewItemCollection[int, int](g, "out")
	if err := g.RunContext(context.Background(), func() {
		out.Put(0, 1)
		out.Put(0, 2) // double put from the environment
	}); err == nil {
		t.Fatal("double put did not fail the graph")
	}
	v := dc.Violations()
	if len(v) != 1 {
		t.Fatalf("violations = %v, want exactly the env double put", v)
	}
	var dpe *determinacy.DoublePutError
	if !errors.As(v[0], &dpe) {
		t.Fatalf("violation = %T, want *DoublePutError", v[0])
	}
	if dpe.FirstPutBy != "env" || dpe.SecondPutBy != "env" {
		t.Fatalf("writers = %q/%q, want env/env", dpe.FirstPutBy, dpe.SecondPutBy)
	}
}

// TestDisciplineOffPreservesErrors pins the compatibility contract: without
// a checker the single-assignment error text is unchanged and carries no
// attribution machinery.
func TestDisciplineOffPreservesErrors(t *testing.T) {
	g := NewGraph("plain", 1)
	out := NewItemCollection[int, int](g, "out")
	err := g.RunContext(context.Background(), func() {
		out.Put(0, 1)
		out.Put(0, 2)
	})
	if err == nil || !strings.Contains(err.Error(), "put twice") {
		t.Fatalf("err = %v, want the plain put-twice report", err)
	}
	var dpe *determinacy.DoublePutError
	if errors.As(err, &dpe) {
		t.Fatal("checker-off error carries a DoublePutError")
	}
}

// TestDisciplineCleanRunStats checks a discipline-checked clean run records
// activity and no violations, and that Fingerprint covers freed items (the
// GC-independence the determinism audit relies on).
func TestDisciplineCleanRunStats(t *testing.T) {
	dc := determinacy.NewDisciplineChecker()
	g := NewGraph("clean", 2).WithDisciplineCheck(dc)
	in := NewItemCollection[int, int](g, "in")
	in.WithGetCount(func(int) int { return 1 })
	out := NewItemCollection[int, int](g, "out")
	tags := NewTagCollection[int](g, "t", false)
	step := NewStepCollection(g, "s", func(i int) error {
		out.Put(i, 10*in.Get(i))
		return nil
	})
	step.WithGets(func(i int) []Dep { return []Dep{in.Key(i)} })
	tags.Prescribe(step)
	if err := g.RunContext(context.Background(), func() {
		for i := 0; i < 4; i++ {
			in.Put(i, i)
			tags.Put(i)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := dc.Err(); err != nil {
		t.Fatalf("clean run recorded violation: %v", err)
	}
	st := dc.Stats()
	if st.Puts != 8 || st.Gets != 4 || st.Releases != 4 || st.Items != 8 || st.Violations != 0 {
		t.Fatalf("stats = %+v, want 8 puts / 4 gets / 4 releases / 8 items / 0 violations", st)
	}
	// All four in[] items were freed by get-count GC, yet the fingerprint
	// still holds them.
	fp := dc.Fingerprint()
	for i := 0; i < 4; i++ {
		if _, ok := fp["in["+string(rune('0'+i))+"]"]; !ok {
			t.Fatalf("fingerprint missing freed item in[%d]: %v", i, fp)
		}
	}
}
