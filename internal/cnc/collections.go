package cnc

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// StepFunc is the body of a step collection: the computation executed for
// each prescribed tag. It must be written gets-first: perform all item Gets
// before any Put or other side effect, because under Native scheduling the
// runtime executes instances speculatively and re-executes them from scratch
// after a failed Get. Returning a non-nil error fails the whole graph.
type StepFunc[T comparable] func(tag T) error

// TuningMode selects how a tuned step collection schedules its instances.
type TuningMode int

const (
	// TunedPrescheduled is the paper's "Tuner-CnC": dependencies declared by
	// WithDeps are resolved when the tag is put; if all items are already
	// present the instance runs inline on the putting goroutine, avoiding
	// the scheduler round-trip; otherwise it is scheduled when the last
	// dependency arrives.
	TunedPrescheduled TuningMode = iota
	// TunedTriggered is the building block of the paper's "Manual-CnC":
	// every instance waits on a countdown of its declared dependencies and
	// is scheduled (never inline) when the countdown reaches zero.
	TunedTriggered
)

// Dep names one item dependency of a step instance: a key in a specific
// item collection. Construct them with ItemCollection.Key so the key type
// always matches the collection.
type Dep struct {
	store itemStore
	key   any
}

// String renders the dependency as "collection[key]".
func (d Dep) String() string { return fmt.Sprintf("%s[%v]", d.store.collName(), d.key) }

// itemStore is the type-erased view of an item collection used by tuned
// scheduling.
type itemStore interface {
	collName() string
	// subscribe registers notify to fire once when key becomes present.
	// It returns false — without registering — when key is already present.
	subscribe(key any, label string, notify func()) bool
}

// StepCollection is a named computation prescribed by one or more tag
// collections.
type StepCollection[T comparable] struct {
	g    *Graph
	meta *stepMeta
	fn   StepFunc[T]

	deps      func(T) []Dep
	mode      TuningMode
	computeOn func(T) int

	retry    int
	retryMu  sync.Mutex
	attempts map[T]int
}

// NewStepCollection registers a step collection on g.
func NewStepCollection[T comparable](g *Graph, name string, fn StepFunc[T]) *StepCollection[T] {
	meta := &stepMeta{name: name}
	g.structMu.Lock()
	g.steps = append(g.steps, meta)
	g.structMu.Unlock()
	return &StepCollection[T]{g: g, meta: meta, fn: fn}
}

// WithDeps declares the per-tag item dependencies of the step and the tuning
// mode to use. With deps declared, instances are never executed
// speculatively: they run exactly once, when every declared dependency is
// available. The declaration must cover every Get the step performs;
// undeclared Gets fall back to the speculative abort path.
func (sc *StepCollection[T]) WithDeps(mode TuningMode, deps func(T) []Dep) *StepCollection[T] {
	sc.deps = deps
	sc.mode = mode
	return sc
}

// WithRetry allows every instance of the step to be re-executed up to n
// times after a failed attempt (an error returned by the body, an error
// from a BeforeStep hook, or a contained panic) before the failure is
// recorded and fails the graph. Re-execution is sound only because CnC
// steps are written gets-first/puts-last: an attempt that fails before its
// first Put has no observable side effects, so running it again is
// indistinguishable from running it once — the same invariant the
// speculative abort path relies on. Steps that can fail *after* putting
// items or tags must not use WithRetry: the re-executed Put would trip the
// single-assignment check (items) or duplicate instances (unmemoized
// tags). A graph-wide default for collections without their own budget can
// be set with Graph.SetRetry.
func (sc *StepCollection[T]) WithRetry(n int) *StepCollection[T] {
	sc.retry = n
	return sc
}

// WithComputeOn installs a placement tuner (Intel CnC's compute_on hint):
// every instance runs on worker fn(tag) mod Workers, never elsewhere. The
// paper's §IV-B suggests exactly this to pin tile tasks to cores and
// minimise inter-core and inter-NUMA data movement. Compute-on placement
// disables the prescheduling tuner's inline execution (a step must not run
// on the putting goroutine when it is pinned elsewhere).
func (sc *StepCollection[T]) WithComputeOn(fn func(T) int) *StepCollection[T] {
	sc.computeOn = fn
	return sc
}

// Consumes records, for documentation and Describe output, that the step
// reads from the given item collection (cf. the consumes declarations of the
// paper's Listing 4). It has no scheduling effect.
func (sc *StepCollection[T]) Consumes(ic Named) *StepCollection[T] {
	sc.g.structMu.Lock()
	sc.meta.consumes = append(sc.meta.consumes, ic.CollectionName())
	sc.g.structMu.Unlock()
	return sc
}

// Produces records that the step writes to the given item collection.
// Like Consumes it is declarative only.
func (sc *StepCollection[T]) Produces(ic Named) *StepCollection[T] {
	sc.g.structMu.Lock()
	sc.meta.produces = append(sc.meta.produces, ic.CollectionName())
	sc.g.structMu.Unlock()
	return sc
}

// Named is any collection with a name; used by the declarative graph
// description methods.
type Named interface{ CollectionName() string }

// CollectionName returns the step collection's name.
func (sc *StepCollection[T]) CollectionName() string { return sc.meta.name }

// dispatch schedules one runnable execution attempt, honouring compute_on
// placement.
func (sc *StepCollection[T]) dispatch(tag T) {
	if sc.computeOn != nil {
		sc.g.scheduleOn(sc.computeOn(tag), func() { sc.execute(tag) })
		return
	}
	sc.g.schedule(func() { sc.execute(tag) })
}

// instance launches the step instance for tag according to the collection's
// tuning mode.
func (sc *StepCollection[T]) instance(tag T) {
	g := sc.g
	if sc.deps == nil {
		sc.dispatch(tag)
		return
	}
	deps := sc.deps(tag)
	label := fmt.Sprintf("%s@%v", sc.meta.name, tag)

	// Countdown latch: the +1 sentinel guarantees the release runs at most
	// once and only after every subscribe call has been issued.
	var remaining atomic.Int64
	remaining.Store(1)
	g.parked.Add(1)
	release := func(inline bool) {
		g.parked.Add(-1)
		if inline && sc.mode == TunedPrescheduled && sc.computeOn == nil {
			g.stats.inline.Add(1)
			g.outstanding.Add(1)
			sc.execute(tag)
			return
		}
		g.stats.triggered.Add(1)
		sc.dispatch(tag)
	}
	arrive := func(inline bool) {
		if remaining.Add(-1) == 0 {
			release(inline)
		}
	}
	for _, d := range deps {
		remaining.Add(1)
		if !d.store.subscribe(d.key, label, func() { arrive(false) }) {
			remaining.Add(-1) // already present
		}
	}
	arrive(true) // retire the sentinel; runs inline when no dep was missing
}

// execute runs one (possibly speculative) execution attempt of the instance.
func (sc *StepCollection[T]) execute(tag T) {
	g := sc.g
	defer g.taskDone()
	// Cooperative cancellation: a cancelled graph drains dispatched work
	// without running it, so RunContext returns as soon as the queue and
	// the in-flight step bodies retire.
	if g.cancelled.Load() {
		return
	}
	g.stats.started.Add(1)
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if rs, ok := r.(*retrySignal); ok {
			// Failed blocking Get: park this instance on the item's wait
			// list; Put will re-schedule it from scratch.
			g.stats.aborts.Add(1)
			label := fmt.Sprintf("%s@%v", sc.meta.name, tag)
			rs.park(label, func() {
				g.stats.requeues.Add(1)
				sc.dispatch(tag)
			})
			return
		}
		sc.failed(tag, fmt.Errorf("cnc: step %s panicked on tag %v: %v", sc.meta.name, tag, r))
	}()
	if h := g.hooks; h != nil && h.BeforeStep != nil {
		if err := h.BeforeStep(sc.meta.name, tag); err != nil {
			sc.failed(tag, fmt.Errorf("cnc: step %s failed on tag %v: %w", sc.meta.name, tag, err))
			return
		}
	}
	if err := sc.fn(tag); err != nil {
		sc.failed(tag, fmt.Errorf("cnc: step %s failed on tag %v: %w", sc.meta.name, tag, err))
		return
	}
	g.stats.done.Add(1)
}

// failed handles one failed execution attempt: re-dispatch while the
// instance has retry budget left (see WithRetry for why re-execution is
// sound), otherwise record the error on the graph. The re-dispatch adds
// outstanding work before the current attempt retires its own unit, so the
// graph cannot quiesce in between.
func (sc *StepCollection[T]) failed(tag T, err error) {
	if sc.takeRetry(tag) {
		sc.g.stats.retries.Add(1)
		sc.dispatch(tag)
		return
	}
	sc.g.fail(err)
}

// takeRetry consumes one unit of tag's retry budget, reporting false when
// the budget (the collection's, or the graph default) is exhausted.
func (sc *StepCollection[T]) takeRetry(tag T) bool {
	limit := sc.retry
	if limit == 0 {
		limit = sc.g.retry
	}
	if limit <= 0 {
		return false
	}
	sc.retryMu.Lock()
	defer sc.retryMu.Unlock()
	if sc.attempts == nil {
		sc.attempts = make(map[T]int)
	}
	if sc.attempts[tag] >= limit {
		return false
	}
	sc.attempts[tag]++
	return true
}

// TagCollection is a control collection: putting a tag creates an instance
// of every prescribed step collection.
type TagCollection[T comparable] struct {
	g    *Graph
	name string

	mu         sync.Mutex
	prescribed []interface{ instance(T) }
	memoize    bool
	seen       map[T]struct{}
}

// NewTagCollection registers a tag collection on g. When memoize is true the
// collection deduplicates tags, as Intel CnC's default tag memoization does:
// re-putting a tag that was already put is a no-op.
func NewTagCollection[T comparable](g *Graph, name string, memoize bool) *TagCollection[T] {
	g.structMu.Lock()
	g.tags = append(g.tags, name)
	g.structMu.Unlock()
	tc := &TagCollection[T]{g: g, name: name, memoize: memoize}
	if memoize {
		tc.seen = make(map[T]struct{})
	}
	return tc
}

// CollectionName returns the tag collection's name.
func (tc *TagCollection[T]) CollectionName() string { return tc.name }

// Prescribe attaches a step collection: each future tag put creates one
// instance of it. Record the relationship before Run.
func (tc *TagCollection[T]) Prescribe(sc *StepCollection[T]) {
	tc.g.structMu.Lock()
	sc.meta.prescribedBy = append(sc.meta.prescribedBy, tc.name)
	tc.g.structMu.Unlock()
	tc.mu.Lock()
	tc.prescribed = append(tc.prescribed, sc)
	tc.mu.Unlock()
}

// Put puts a tag, creating an instance of every prescribed step collection.
// It may be called from the environment function or from inside steps.
func (tc *TagCollection[T]) Put(tag T) {
	tc.g.checkRunning()
	if h := tc.g.hooks; h != nil && h.DropTag != nil && h.DropTag(tc.name, tag) {
		return // injected fault: the tag is lost before memoization sees it
	}
	if tc.memoize {
		tc.mu.Lock()
		if _, dup := tc.seen[tag]; dup {
			tc.mu.Unlock()
			return
		}
		tc.seen[tag] = struct{}{}
		tc.mu.Unlock()
	}
	tc.g.stats.tagsPut.Add(1)
	tc.mu.Lock()
	pres := tc.prescribed
	tc.mu.Unlock()
	for _, sc := range pres {
		sc.instance(tag)
	}
}

// PutRange puts the tags mk(lo), mk(lo+1), …, mk(hi-1) — the Intel CnC
// tag-range pattern for prescribing dense index spaces in one call.
func (tc *TagCollection[T]) PutRange(lo, hi int, mk func(int) T) {
	for i := lo; i < hi; i++ {
		tc.Put(mk(i))
	}
}

// ItemCollection is a single-assignment associative data collection.
type ItemCollection[K comparable, V any] struct {
	g    *Graph
	name string

	mu      sync.Mutex
	items   map[K]V
	waiters map[K][]waiter
}

type waiter struct {
	label  string
	notify func()
}

// NewItemCollection registers an item collection on g.
func NewItemCollection[K comparable, V any](g *Graph, name string) *ItemCollection[K, V] {
	ic := &ItemCollection[K, V]{
		g:       g,
		name:    name,
		items:   make(map[K]V),
		waiters: make(map[K][]waiter),
	}
	g.structMu.Lock()
	g.items = append(g.items, name)
	g.structMu.Unlock()
	g.registerReporter(ic)
	return ic
}

// CollectionName returns the item collection's name.
func (ic *ItemCollection[K, V]) CollectionName() string { return ic.name }

func (ic *ItemCollection[K, V]) collName() string { return ic.name }

// Key builds a Dep naming item k of this collection, for WithDeps
// declarations.
func (ic *ItemCollection[K, V]) Key(k K) Dep { return Dep{store: ic, key: k} }

// Put stores the item under key k and wakes every step instance parked on
// it. Re-putting a key violates CnC's dynamic single assignment rule and
// fails the graph.
func (ic *ItemCollection[K, V]) Put(k K, v V) {
	ic.g.checkRunning()
	if h := ic.g.hooks; h != nil && h.BeforeItemPut != nil {
		h.BeforeItemPut(ic.name, k)
	}
	ic.mu.Lock()
	if _, dup := ic.items[k]; dup {
		ic.mu.Unlock()
		ic.g.fail(fmt.Errorf("cnc: single-assignment violation: item %s[%v] put twice", ic.name, k))
		return
	}
	ic.items[k] = v
	ws := ic.waiters[k]
	delete(ic.waiters, k)
	ic.mu.Unlock()
	ic.g.stats.itemsPut.Add(1)
	for _, w := range ws {
		w.notify()
	}
}

// Get returns the item stored under k, blocking in the CnC sense: when the
// item is missing, the calling step instance is aborted and re-executed
// after the item is put. Get must only be called from inside a step body.
func (ic *ItemCollection[K, V]) Get(k K) V {
	if v, ok := ic.TryGet(k); ok {
		return v
	}
	panic(&retrySignal{
		park: func(label string, requeue func()) {
			ic.mu.Lock()
			if _, ok := ic.items[k]; ok {
				// The item arrived between TryGet and parking: requeue
				// immediately instead of waiting.
				ic.mu.Unlock()
				requeue()
				return
			}
			ic.g.parked.Add(1)
			ic.waiters[k] = append(ic.waiters[k], waiter{label: label, notify: func() {
				ic.g.parked.Add(-1)
				requeue()
			}})
			ic.mu.Unlock()
		},
	})
}

// TryGet is the non-blocking get (the paper's §IV-B ablation): it reports
// whether the item is present without aborting the step.
func (ic *ItemCollection[K, V]) TryGet(k K) (V, bool) {
	ic.mu.Lock()
	v, ok := ic.items[k]
	ic.mu.Unlock()
	return v, ok
}

// Len returns the number of items currently stored.
func (ic *ItemCollection[K, V]) Len() int {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	return len(ic.items)
}

// subscribe implements itemStore for tuned scheduling.
func (ic *ItemCollection[K, V]) subscribe(key any, label string, notify func()) bool {
	k, ok := key.(K)
	if !ok {
		// Fail the graph but treat the dependency as satisfied so the
		// countdown still completes and the graph quiesces.
		ic.g.fail(fmt.Errorf("cnc: dependency key %v has wrong type for collection %s", key, ic.name))
		return false
	}
	ic.mu.Lock()
	defer ic.mu.Unlock()
	if _, present := ic.items[k]; present {
		return false
	}
	ic.waiters[k] = append(ic.waiters[k], waiter{label: label, notify: notify})
	return true
}

// blockedInstances enumerates parked instances for deadlock reports.
func (ic *ItemCollection[K, V]) blockedInstances() []string {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	var out []string
	for k, ws := range ic.waiters {
		for _, w := range ws {
			out = append(out, fmt.Sprintf("%s <- %s[%v]", w.label, ic.name, k))
		}
	}
	sort.Strings(out)
	return out
}

// retrySignal is the panic payload of a failed blocking Get.
type retrySignal struct {
	park func(label string, requeue func())
}
