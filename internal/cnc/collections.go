package cnc

import (
	"fmt"
	"hash/maphash"
	"sort"
	"sync"
	"sync/atomic"
)

// StepFunc is the body of a step collection: the computation executed for
// each prescribed tag. It must be written gets-first: perform all item Gets
// before any Put or other side effect, because under Native scheduling the
// runtime executes instances speculatively and re-executes them from scratch
// after a failed Get. Returning a non-nil error fails the whole graph.
type StepFunc[T comparable] func(tag T) error

// TuningMode selects how a tuned step collection schedules its instances.
type TuningMode int

const (
	// TunedPrescheduled is the paper's "Tuner-CnC": dependencies declared by
	// WithDeps are resolved when the tag is put; if all items are already
	// present the instance runs inline on the putting goroutine, avoiding
	// the scheduler round-trip; otherwise it is scheduled when the last
	// dependency arrives.
	TunedPrescheduled TuningMode = iota
	// TunedTriggered is the building block of the paper's "Manual-CnC":
	// every instance waits on a countdown of its declared dependencies and
	// is scheduled (never inline) when the countdown reaches zero.
	TunedTriggered
)

// Dep names one item dependency of a step instance: a key in a specific
// item collection. Construct them with ItemCollection.Key so the key type
// always matches the collection.
type Dep struct {
	store itemStore
	key   any
}

// String renders the dependency as "collection[key]".
func (d Dep) String() string { return fmt.Sprintf("%s[%v]", d.store.collName(), d.key) }

// itemStore is the type-erased view of an item collection used by tuned
// scheduling and get-count release.
type itemStore interface {
	collName() string
	// subscribe registers notify to fire once when key becomes present,
	// labelled (lazily, through who) for deadlock reports. It returns
	// false — without registering — when key is already present.
	subscribe(key any, who waitLabeler, notify func(*Burst)) bool
	// release decrements key's get-count (no-op on collections without
	// one), freeing the item at zero.
	release(key any)
	// has reports whether key is readable now or was already freed — the
	// memory-throttling readiness probe. A freed key counts as "ready" so
	// the admitted step surfaces the deterministic use-after-free error
	// instead of deferring forever.
	has(key any) bool
	// freeableBytes reports key's accounted size when one more release
	// would free it (present, remaining get-count exactly 1), else 0 —
	// the admission probe that classifies throttled puts as freeing or
	// growing.
	freeableBytes(key any) int64
}

// UseAfterFreeError reports a read (or re-put) of an item that get-count
// garbage collection already freed: the declared consumer count was
// exhausted before this access. It is a deterministic graph error — the
// memory contract was violated — never silent corruption, and it is not
// subject to retry (re-reading a freed item fails identically every time).
type UseAfterFreeError struct {
	Collection string
	Key        any
	// Overdraw carries the discipline checker's attribution — which steps
	// consumed the get-count budget and which step over-read — when the
	// graph ran with WithDisciplineCheck; nil otherwise.
	Overdraw error
}

func (e *UseAfterFreeError) Error() string {
	msg := fmt.Sprintf("cnc: use-after-free: item %s[%v] accessed after its get-count reached zero",
		e.Collection, e.Key)
	if e.Overdraw != nil {
		msg += "; " + e.Overdraw.Error()
	}
	return msg
}

// Unwrap exposes the overdraw attribution to errors.As/Is.
func (e *UseAfterFreeError) Unwrap() error { return e.Overdraw }

// StepCollection is a named computation prescribed by one or more tag
// collections.
type StepCollection[T comparable] struct {
	g    *Graph
	meta *stepMeta
	fn   StepFunc[T]

	// depsApp and getsApp are the append-form dependency and read-set
	// declarations (WithDepsAppend / WithGetsAppend); the slice-returning
	// WithDeps / WithGets wrap their callbacks into this form so the
	// runtime has a single internal representation that composes with
	// pooled scratch buffers.
	depsApp   func(T, []Dep) []Dep
	getsApp   func(T, []Dep) []Dep
	mode      TuningMode
	computeOn func(T) int

	retry    int
	retryMu  sync.Mutex
	attempts map[T]int

	// taskPool recycles dispatch envelopes (stepTask) and latchPool the
	// dependency-countdown latches (depLatch), so both the untuned and the
	// tuned dispatch paths allocate nothing in steady state.
	taskPool  sync.Pool
	latchPool sync.Pool
}

// retryUnset marks a step collection that has not called WithRetry, so the
// graph-wide SetRetry default applies. An explicit WithRetry(0) stores 0
// and means "no retries for this collection".
const retryUnset = -1

// NewStepCollection registers a step collection on g.
func NewStepCollection[T comparable](g *Graph, name string, fn StepFunc[T]) *StepCollection[T] {
	meta := &stepMeta{name: name}
	g.structMu.Lock()
	g.steps = append(g.steps, meta)
	g.structMu.Unlock()
	return &StepCollection[T]{g: g, meta: meta, fn: fn, retry: retryUnset}
}

// WithDeps declares the per-tag item dependencies of the step and the tuning
// mode to use. With deps declared, instances are never executed
// speculatively: they run exactly once, when every declared dependency is
// available. The declaration must cover every Get the step performs;
// undeclared Gets fall back to the speculative abort path.
func (sc *StepCollection[T]) WithDeps(mode TuningMode, deps func(T) []Dep) *StepCollection[T] {
	return sc.WithDepsAppend(mode, func(tag T, buf []Dep) []Dep {
		return append(buf, deps(tag)...)
	})
}

// WithDepsAppend is the allocation-free form of WithDeps: instead of
// returning a fresh slice, the callback appends the tag's dependencies to a
// runtime-pooled scratch buffer and returns it (the usual append idiom).
// The buffer is only valid for the duration of the call — the callback must
// not retain it.
func (sc *StepCollection[T]) WithDepsAppend(mode TuningMode, deps func(T, []Dep) []Dep) *StepCollection[T] {
	sc.depsApp = deps
	sc.mode = mode
	return sc
}

// WithGets declares the exact per-tag read set of the step for get-count
// garbage collection: when an instance completes successfully, the runtime
// releases (decrements the get-count of) every item the declaration names,
// freeing items whose count reaches zero. The declaration must cover every
// item the step reads and nothing else — a missing entry leaks the item
// (Stats.LiveItems stays nonzero), an extra entry trips a deterministic
// over-release error.
//
// Releases fire only on successful completion, never per Get. This is what
// makes get-counts compose with the rest of the runtime: a speculative
// abort re-reads its items on re-execution without double-counting, a
// WithRetry re-execution decrements exactly once however many attempts
// failed, and a drained (cancelled) or failed instance releases nothing. It
// also means the declaration is incompatible with steps that complete
// successfully *without* consuming their reads — the non-blocking variant's
// TryGet-miss-and-re-put-own-tag pattern retires a successful instance per
// poll, so non-blocking step collections must not declare gets.
func (sc *StepCollection[T]) WithGets(fn func(T) []Dep) *StepCollection[T] {
	return sc.WithGetsAppend(func(tag T, buf []Dep) []Dep {
		return append(buf, fn(tag)...)
	})
}

// WithGetsAppend is the allocation-free form of WithGets: the callback
// appends the tag's read set to a runtime-pooled scratch buffer and returns
// it. The buffer is only valid for the duration of the call.
func (sc *StepCollection[T]) WithGetsAppend(fn func(T, []Dep) []Dep) *StepCollection[T] {
	sc.getsApp = fn
	sc.g.structMu.Lock()
	sc.meta.releases = true
	sc.g.structMu.Unlock()
	return sc
}

// readyFor reports whether every declared get of the instance for tag is
// already readable — the admission probe for memory-throttled tag puts.
// Steps without a WithGets declaration are always ready.
func (sc *StepCollection[T]) readyFor(tag T) bool {
	if sc.getsApp == nil {
		return true
	}
	bufp := sc.g.takeDeps()
	ds := sc.getsApp(tag, *bufp)
	ready := true
	for _, d := range ds {
		if !d.store.has(d.key) {
			ready = false
			break
		}
	}
	*bufp = ds
	sc.g.putDeps(bufp)
	return ready
}

// freeableFor reports how many accounted bytes the instance for tag would
// free on completion: the total size of its declared gets for which this
// read is the last (remaining get-count 1). Admission uses it to tell
// memory-releasing steps apart from memory-growing ones.
func (sc *StepCollection[T]) freeableFor(tag T) int64 {
	if sc.getsApp == nil {
		return 0
	}
	bufp := sc.g.takeDeps()
	ds := sc.getsApp(tag, *bufp)
	var n int64
	for _, d := range ds {
		n += d.store.freeableBytes(d.key)
	}
	*bufp = ds
	sc.g.putDeps(bufp)
	return n
}

// takeDeps and putDeps manage the pooled []Dep scratch buffers handed to
// WithDepsAppend/WithGetsAppend callbacks.
func (g *Graph) takeDeps() *[]Dep {
	p, _ := g.depsPool.Get().(*[]Dep)
	if p == nil {
		p = new([]Dep)
	}
	return p
}

func (g *Graph) putDeps(p *[]Dep) {
	clear(*p)
	*p = (*p)[:0]
	g.depsPool.Put(p)
}

// WithRetry allows every instance of the step to be re-executed up to n
// times after a failed attempt (an error returned by the body, an error
// from a BeforeStep hook, or a contained panic) before the failure is
// recorded and fails the graph. An explicit WithRetry(0) opts the
// collection out of retries even when Graph.SetRetry sets a graph-wide
// default; collections that never call WithRetry inherit the default. Re-execution is sound only because CnC
// steps are written gets-first/puts-last: an attempt that fails before its
// first Put has no observable side effects, so running it again is
// indistinguishable from running it once — the same invariant the
// speculative abort path relies on. Steps that can fail *after* putting
// items or tags must not use WithRetry: the re-executed Put would trip the
// single-assignment check (items) or duplicate instances (unmemoized
// tags). A graph-wide default for collections without their own budget can
// be set with Graph.SetRetry.
func (sc *StepCollection[T]) WithRetry(n int) *StepCollection[T] {
	if n < 0 {
		n = 0 // negative budgets mean "no retries", same as an explicit 0
	}
	sc.retry = n
	return sc
}

// WithComputeOn installs a placement tuner (Intel CnC's compute_on hint):
// every instance runs on worker fn(tag) mod Workers, never elsewhere. The
// paper's §IV-B suggests exactly this to pin tile tasks to cores and
// minimise inter-core and inter-NUMA data movement. Compute-on placement
// disables the prescheduling tuner's inline execution (a step must not run
// on the putting goroutine when it is pinned elsewhere).
func (sc *StepCollection[T]) WithComputeOn(fn func(T) int) *StepCollection[T] {
	sc.computeOn = fn
	return sc
}

// Consumes records, for documentation and Describe output, that the step
// reads from the given item collection (cf. the consumes declarations of the
// paper's Listing 4). It has no scheduling effect.
func (sc *StepCollection[T]) Consumes(ic Named) *StepCollection[T] {
	sc.g.structMu.Lock()
	sc.meta.consumes = append(sc.meta.consumes, ic.CollectionName())
	sc.g.structMu.Unlock()
	return sc
}

// Produces records that the step writes to the given item collection.
// Like Consumes it is declarative only.
func (sc *StepCollection[T]) Produces(ic Named) *StepCollection[T] {
	sc.g.structMu.Lock()
	sc.meta.produces = append(sc.meta.produces, ic.CollectionName())
	sc.g.structMu.Unlock()
	return sc
}

// Named is any collection with a name; used by the declarative graph
// description methods.
type Named interface{ CollectionName() string }

// CollectionName returns the step collection's name.
func (sc *StepCollection[T]) CollectionName() string { return sc.meta.name }

// stepTask is the pooled dispatch envelope: one queued execution attempt of
// a step instance. Storing *stepTask in the queue's runnable interface is
// allocation-free (the value is pointer-shaped), and run recycles the
// envelope before executing, so the untuned dispatch path allocates nothing
// in steady state.
type stepTask[T comparable] struct {
	sc  *StepCollection[T]
	tag T
}

func (t *stepTask[T]) run() {
	sc, tag := t.sc, t.tag
	t.sc = nil
	var zero T
	t.tag = zero
	sc.taskPool.Put(t)
	sc.execute(tag)
}

func (sc *StepCollection[T]) newTask(tag T) *stepTask[T] {
	t, _ := sc.taskPool.Get().(*stepTask[T])
	if t == nil {
		t = &stepTask[T]{}
	}
	t.sc = sc
	t.tag = tag
	return t
}

// dispatch schedules one runnable execution attempt, honouring compute_on
// placement.
func (sc *StepCollection[T]) dispatch(tag T) {
	if sc.computeOn != nil {
		sc.g.scheduleOn(sc.computeOn(tag), sc.newTask(tag))
		return
	}
	sc.g.schedule(sc.newTask(tag))
}

// dispatchInto appends the execution attempt to bu when one is open, so the
// queue push and the worker wakeup are paid once per burst; otherwise (or
// for pinned steps, whose lane is fixed) it dispatches immediately.
func (sc *StepCollection[T]) dispatchInto(tag T, bu *Burst) {
	if bu == nil || bu.g == nil || sc.computeOn != nil {
		sc.dispatch(tag)
		return
	}
	bu.add(sc.g, sc.newTask(tag))
}

// depLatch is the pooled dependency-countdown latch of one tuned step
// instance: the +1 sentinel guarantees the release runs at most once and
// only after every subscribe call has been issued. notify is the pre-bound
// external-arrival closure, created once per latch allocation and reused
// across pool generations, so steady-state instance launches allocate
// nothing. The latch recycles itself on the final arrival; any waiter still
// registered on an item shard implies a pending arrival (remaining ≥ 1), so
// a latch reachable from a wait list is always live — which is what makes
// the lazy waitLabel safe for concurrent deadlock reports.
type depLatch[T comparable] struct {
	sc        *StepCollection[T]
	tag       T
	remaining atomic.Int64
	notify    func(*Burst)
}

func (l *depLatch[T]) waitLabel() string {
	return fmt.Sprintf("%s@%v", l.sc.meta.name, l.tag)
}

func (l *depLatch[T]) arrive(inline bool, bu *Burst) {
	if l.remaining.Add(-1) != 0 {
		return
	}
	sc, tag := l.sc, l.tag
	l.sc = nil
	var zero T
	l.tag = zero
	sc.latchPool.Put(l)
	g := sc.g
	g.parked.Add(-1)
	if inline && sc.mode == TunedPrescheduled && sc.computeOn == nil {
		g.stats.inline.Add(1)
		g.outstanding.Add(1)
		sc.execute(tag)
		return
	}
	g.stats.triggered.Add(1)
	sc.dispatchInto(tag, bu)
}

func (sc *StepCollection[T]) newLatch(tag T) *depLatch[T] {
	l, _ := sc.latchPool.Get().(*depLatch[T])
	if l == nil {
		l = &depLatch[T]{}
		l.notify = func(bu *Burst) { l.arrive(false, bu) }
	}
	l.sc = sc
	l.tag = tag
	l.remaining.Store(1)
	return l
}

// instance launches the step instance for tag according to the collection's
// tuning mode. A non-nil bu batches the resulting dispatch (if any) with
// the rest of the burst.
func (sc *StepCollection[T]) instance(tag T, bu *Burst) {
	g := sc.g
	if sc.depsApp == nil {
		sc.dispatchInto(tag, bu)
		return
	}
	bufp := g.takeDeps()
	deps := sc.depsApp(tag, *bufp)
	l := sc.newLatch(tag)
	g.parked.Add(1)
	for _, d := range deps {
		l.remaining.Add(1)
		if !d.store.subscribe(d.key, l, l.notify) {
			l.remaining.Add(-1) // already present
		}
	}
	*bufp = deps
	g.putDeps(bufp)
	l.arrive(true, bu) // retire the sentinel; runs inline when no dep was missing
}

// execute runs one (possibly speculative) execution attempt of the instance.
func (sc *StepCollection[T]) execute(tag T) {
	g := sc.g
	defer g.taskDone()
	// Cooperative cancellation: a cancelled graph drains dispatched work
	// without running it, so RunContext returns as soon as the queue and
	// the in-flight step bodies retire.
	if g.cancelled.Load() {
		return
	}
	g.stats.started.Add(1)
	if dc := g.discipline; dc != nil {
		// Attribute every put/get/release the body issues — including those
		// of nested inline runs, which push their own label — to this
		// instance.
		exit := dc.Enter(fmt.Sprintf("%s@%v", sc.meta.name, tag))
		defer exit()
	}
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if rs, ok := r.(*retrySignal); ok {
			// Failed blocking Get: park this instance on the item's wait
			// list; Put will re-schedule it from scratch (batched with the
			// put's other wakeups when it passes a burst).
			g.stats.aborts.Add(1)
			label := fmt.Sprintf("%s@%v", sc.meta.name, tag)
			rs.park(label, func(bu *Burst) {
				g.stats.requeues.Add(1)
				sc.dispatchInto(tag, bu)
			})
			return
		}
		if uaf, ok := r.(*UseAfterFreeError); ok {
			// A Get hit a freed item: a deterministic memory-contract
			// violation, already recorded on the graph. Never retried —
			// every re-execution would read the same freed key.
			g.fail(fmt.Errorf("cnc: step %s on tag %v read a freed item: %w", sc.meta.name, tag, uaf))
			return
		}
		sc.failed(tag, fmt.Errorf("cnc: step %s panicked on tag %v: %v", sc.meta.name, tag, r))
	}()
	if h := g.hooks; h != nil && h.BeforeStep != nil {
		if err := h.BeforeStep(sc.meta.name, tag); err != nil {
			sc.failed(tag, fmt.Errorf("cnc: step %s failed on tag %v: %w", sc.meta.name, tag, err))
			return
		}
	}
	if err := sc.fn(tag); err != nil {
		sc.failed(tag, fmt.Errorf("cnc: step %s failed on tag %v: %w", sc.meta.name, tag, err))
		return
	}
	// Successful completion: release the declared read set exactly once,
	// however many aborted or retried attempts preceded this one.
	if sc.getsApp != nil {
		bufp := g.takeDeps()
		ds := sc.getsApp(tag, *bufp)
		for _, d := range ds {
			d.store.release(d.key)
		}
		*bufp = ds
		g.putDeps(bufp)
	}
	g.stats.done.Add(1)
}

// failed handles one failed execution attempt: re-dispatch while the
// instance has retry budget left (see WithRetry for why re-execution is
// sound), otherwise record the error on the graph. The re-dispatch adds
// outstanding work before the current attempt retires its own unit, so the
// graph cannot quiesce in between.
func (sc *StepCollection[T]) failed(tag T, err error) {
	if sc.takeRetry(tag) {
		sc.g.stats.retries.Add(1)
		sc.dispatch(tag)
		return
	}
	sc.g.fail(err)
}

// takeRetry consumes one unit of tag's retry budget, reporting false when
// the budget (the collection's, or — only when the collection never called
// WithRetry — the graph default) is exhausted.
func (sc *StepCollection[T]) takeRetry(tag T) bool {
	limit := sc.retry
	if limit == retryUnset {
		limit = sc.g.retry
	}
	if limit <= 0 {
		return false
	}
	sc.retryMu.Lock()
	defer sc.retryMu.Unlock()
	if sc.attempts == nil {
		sc.attempts = make(map[T]int)
	}
	if sc.attempts[tag] >= limit {
		return false
	}
	sc.attempts[tag]++
	return true
}

// TagCollection is a control collection: putting a tag creates an instance
// of every prescribed step collection.
type TagCollection[T comparable] struct {
	g    *Graph
	name string
	meta *tagMeta

	tagBytes func(T) int

	// prescribed is a copy-on-write snapshot (Prescribe replaces it under
	// mu) so the hot Put path reads it with one atomic load instead of a
	// lock round-trip.
	prescribed atomic.Pointer[[]prescribable[T]]

	mu      sync.Mutex
	memoize bool
	seen    map[T]struct{}
}

// prescribable is the tag collection's view of a prescribed step
// collection: instance creation plus the memory-throttling admission
// probes.
type prescribable[T comparable] interface {
	instance(T, *Burst)
	readyFor(T) bool
	freeableFor(T) int64
}

// NewTagCollection registers a tag collection on g. When memoize is true the
// collection deduplicates tags, as Intel CnC's default tag memoization does:
// re-putting a tag that was already put is a no-op.
func NewTagCollection[T comparable](g *Graph, name string, memoize bool) *TagCollection[T] {
	meta := &tagMeta{name: name}
	g.structMu.Lock()
	g.tags = append(g.tags, meta)
	g.structMu.Unlock()
	tc := &TagCollection[T]{g: g, name: name, meta: meta, memoize: memoize}
	if memoize {
		tc.seen = make(map[T]struct{})
	}
	return tc
}

// CollectionName returns the tag collection's name.
func (tc *TagCollection[T]) CollectionName() string { return tc.name }

// Prescribe attaches a step collection: each future tag put creates one
// instance of it. Record the relationship before Run.
func (tc *TagCollection[T]) Prescribe(sc *StepCollection[T]) {
	tc.g.structMu.Lock()
	sc.meta.prescribedBy = append(sc.meta.prescribedBy, tc.name)
	tc.g.structMu.Unlock()
	tc.mu.Lock()
	var cur []prescribable[T]
	if p := tc.prescribed.Load(); p != nil {
		cur = *p
	}
	next := make([]prescribable[T], len(cur)+1)
	copy(next, cur)
	next[len(cur)] = sc
	tc.prescribed.Store(&next)
	tc.mu.Unlock()
}

func (tc *TagCollection[T]) prescribedList() []prescribable[T] {
	if p := tc.prescribed.Load(); p != nil {
		return *p
	}
	return nil
}

// Put puts a tag, creating an instance of every prescribed step collection.
// It may be called from the environment function or from inside steps.
func (tc *TagCollection[T]) Put(tag T) { tc.putInto(tag, nil) }

// PutInto is Put with batched dispatch: instances whose dependencies are
// already satisfied are appended to bu instead of being pushed (and waking
// a worker) one at a time; they hit the queue when the burst flushes. The
// semantics are otherwise exactly Put's — memoization, hooks and statistics
// all apply, and outstanding-work accounting happens immediately, so the
// graph cannot quiesce while the burst is open.
func (tc *TagCollection[T]) PutInto(tag T, bu *Burst) { tc.putInto(tag, bu) }

func (tc *TagCollection[T]) putInto(tag T, bu *Burst) {
	tc.g.checkRunning()
	if h := tc.g.hooks; h != nil && h.DropTag != nil && h.DropTag(tc.name, tag) {
		return // injected fault: the tag is lost before memoization sees it
	}
	if tc.memoize {
		tc.mu.Lock()
		if _, dup := tc.seen[tag]; dup {
			tc.mu.Unlock()
			return
		}
		tc.seen[tag] = struct{}{}
		tc.mu.Unlock()
	}
	tc.g.stats.tagsPut.Add(1)
	for _, sc := range tc.prescribedList() {
		sc.instance(tag, bu)
	}
}

// WithTagBytes declares how many bytes of live memory a tag admitted
// through PutThrottled will eventually occupy (typically the size of the
// item its base-case step puts; 0 for tags that only expand control flow).
// Under a memory limit, PutThrottled reserves that budget at admission and
// item puts convert reservations to live bytes as the data materialises —
// so backpressure paces the environment on the memory its puts *commit to*,
// not only on items already produced. Declare before Run.
func (tc *TagCollection[T]) WithTagBytes(fn func(T) int) *TagCollection[T] {
	tc.tagBytes = fn
	tc.g.structMu.Lock()
	tc.meta.tagBytes = true
	tc.g.structMu.Unlock()
	return tc
}

// PutThrottled is Put with memory backpressure: under Graph.WithMemoryLimit
// a tag whose WithTagBytes cost does not fit under the budget — or whose
// prescribed steps' declared gets are not all readable yet — is deferred
// rather than put, and admitted later as get-count garbage collection frees
// items and dependencies arrive. The call itself never blocks, so steps and
// environments can put through it freely; the graph stays open until every
// deferred tag is admitted. Without a limit (or for tags with zero declared
// cost) it is exactly Put. See WithMemoryLimit for the degrade-and-report
// behaviour when the budget can never clear. Best used with unmemoized
// collections: a deduplicated tag's reservation is never converted and
// would over-throttle later puts.
func (tc *TagCollection[T]) PutThrottled(tag T) { tc.putThrottledInto(tag, nil) }

// PutThrottledInto is PutThrottled with batched dispatch: tags admitted
// immediately (no memory limit, or zero declared cost, or budget available)
// go through bu like PutInto; a deferred tag is admitted later through the
// unbatched path, since its admission time is not under the putter's
// control.
func (tc *TagCollection[T]) PutThrottledInto(tag T, bu *Burst) { tc.putThrottledInto(tag, bu) }

func (tc *TagCollection[T]) putThrottledInto(tag T, bu *Burst) {
	if !tc.g.acct.limited() {
		tc.putInto(tag, bu)
		return
	}
	tc.g.checkRunning()
	var cost int64
	if tc.tagBytes != nil {
		cost = int64(tc.tagBytes(tag))
	}
	if cost == 0 {
		// Control-only tags occupy no budget and are never deferred.
		tc.putInto(tag, bu)
		return
	}
	tc.g.acct.enqueue(cost,
		func() bool { return tc.readyFor(tag) },
		func() int64 { return tc.freeableFor(tag) },
		func() { tc.Put(tag) })
}

// readyFor reports whether every prescribed step's declared gets for tag
// are already readable.
func (tc *TagCollection[T]) readyFor(tag T) bool {
	for _, sc := range tc.prescribedList() {
		if !sc.readyFor(tag) {
			return false
		}
	}
	return true
}

// freeableFor reports the accounted bytes the prescribed steps for tag
// would free on completion.
func (tc *TagCollection[T]) freeableFor(tag T) int64 {
	var n int64
	for _, sc := range tc.prescribedList() {
		n += sc.freeableFor(tag)
	}
	return n
}

// PutRange puts the tags mk(lo), mk(lo+1), …, mk(hi-1) — the Intel CnC
// tag-range pattern for prescribing dense index spaces in one call. When
// the graph has no memory limit (or the collection declares no tag cost)
// the whole range is dispatched as one burst: a single batched queue push
// and one wakeup pass instead of hi-lo of each. Under an active memory
// limit with declared tag bytes, each put is throttled individually so the
// range honours the budget exactly as before.
func (tc *TagCollection[T]) PutRange(lo, hi int, mk func(int) T) {
	if tc.g.acct.limited() && tc.tagBytes != nil {
		for i := lo; i < hi; i++ {
			tc.PutThrottled(mk(i))
		}
		return
	}
	bu := tc.g.NewBurst()
	for i := lo; i < hi; i++ {
		tc.putInto(mk(i), bu)
	}
	bu.Flush()
}

// itemShards is the stripe count of an ItemCollection's key space (a power
// of two so shard selection is a mask). 16 stripes ≈ 2× the largest worker
// counts the real runs here use, which keeps the probability that two
// concurrent tile operations collide on a stripe low while the per-shard
// constant cost (4 small maps) stays negligible; see DESIGN.md §5e.
const itemShards = 16

// itemShard is one stripe of an ItemCollection: the full
// items/remaining/freed/waiters map set for the keys that hash to it, under
// its own lock. Every collection operation is single-key, so puts and gets
// on different tiles proceed on different stripes without serialising.
type itemShard[K comparable, V any] struct {
	mu        sync.Mutex
	items     map[K]V
	remaining map[K]int      // live get-counts (only when getCount != nil)
	freed     map[K]struct{} // keys whose value was reclaimed
	waiters   map[K][]waiter
}

// ItemCollection is a single-assignment associative data collection.
type ItemCollection[K comparable, V any] struct {
	g    *Graph
	name string
	meta *itemMeta

	// getCount and sizeOf are write-before-Run declarations.
	getCount func(K) int
	sizeOf   func(K) int

	puts atomic.Uint64

	hashSeed maphash.Seed
	shards   [itemShards]itemShard[K, V]
}

// waiter is one parked consumer of a missing item: a tuned dependency latch
// or a speculatively-aborted instance. The label is materialised lazily
// through waitLabeler — deadlock reports and Blocked snapshots are the only
// readers, so the common case (the item arrives) never pays the
// fmt.Sprintf. notify takes the burst of the Put that woke it (nil when
// unbatched) so a put that satisfies many waiters re-dispatches them with
// one queue push.
type waiter struct {
	who    waitLabeler
	notify func(*Burst)
}

// waitLabeler names a parked instance for deadlock reports. It is
// implemented by depLatch (lazily) and by fixedLabel for the speculative
// abort path, whose label is already materialised when it parks.
type waitLabeler interface{ waitLabel() string }

type fixedLabel string

func (s fixedLabel) waitLabel() string { return string(s) }

// NewItemCollection registers an item collection on g.
func NewItemCollection[K comparable, V any](g *Graph, name string) *ItemCollection[K, V] {
	meta := &itemMeta{name: name}
	ic := &ItemCollection[K, V]{
		g:        g,
		name:     name,
		meta:     meta,
		hashSeed: maphash.MakeSeed(),
	}
	for i := range ic.shards {
		sh := &ic.shards[i]
		sh.items = make(map[K]V)
		sh.remaining = make(map[K]int)
		sh.freed = make(map[K]struct{})
		sh.waiters = make(map[K][]waiter)
	}
	g.structMu.Lock()
	g.items = append(g.items, meta)
	g.structMu.Unlock()
	g.registerReporter(ic)
	return ic
}

// shardOf maps a key to its stripe.
func (ic *ItemCollection[K, V]) shardOf(k K) *itemShard[K, V] {
	return &ic.shards[maphash.Comparable(ic.hashSeed, k)&(itemShards-1)]
}

// WithGetCount declares each item's consumer count — Intel CnC's get-count
// tuner. The runtime reference-counts every item: fn(k) is the number of
// release operations (StepCollection.WithGets entries of successfully
// completing instances) the item will receive, and when the count reaches
// zero the value is freed. A count of 0 frees the item as soon as it is
// put. Any access after the free — Get, TryGet, a tuned dependency
// subscription, or a re-put — fails the graph with a deterministic
// UseAfterFreeError; releasing a freed item reports an over-release
// (declared count too low), while a too-high count surfaces as
// Stats.LiveItems > 0 after quiesce. Declare before Run.
func (ic *ItemCollection[K, V]) WithGetCount(fn func(K) int) *ItemCollection[K, V] {
	ic.getCount = fn
	ic.g.structMu.Lock()
	ic.meta.getCount = true
	ic.g.hasGetCounts = true
	ic.g.structMu.Unlock()
	return ic
}

// WithSizeOf declares the accountant's byte-size hint for items of this
// collection (e.g. base² × 8 for a tile of float64s synchronised through a
// bool item). Collections without a hint occupy zero accounted bytes —
// their items still count toward LiveItems, but not toward the
// WithMemoryLimit budget. fn must be pure: it is re-evaluated at free time.
// Declare before Run.
func (ic *ItemCollection[K, V]) WithSizeOf(fn func(K) int) *ItemCollection[K, V] {
	ic.sizeOf = fn
	ic.g.structMu.Lock()
	ic.meta.sizeOf = true
	ic.g.structMu.Unlock()
	return ic
}

// Puts returns the number of successful puts into the collection. Unlike
// Len it is unaffected by get-count garbage collection, so it keeps
// reporting the task census after items are freed.
func (ic *ItemCollection[K, V]) Puts() uint64 { return ic.puts.Load() }

func (ic *ItemCollection[K, V]) sizeBytes(k K) int64 {
	if ic.sizeOf == nil {
		return 0
	}
	return int64(ic.sizeOf(k))
}

// CollectionName returns the item collection's name.
func (ic *ItemCollection[K, V]) CollectionName() string { return ic.name }

func (ic *ItemCollection[K, V]) collName() string { return ic.name }

// Key builds a Dep naming item k of this collection, for WithDeps
// declarations.
func (ic *ItemCollection[K, V]) Key(k K) Dep { return Dep{store: ic, key: k} }

// Put stores the item under key k and wakes every step instance parked on
// it. Re-putting a key — freed or not — violates CnC's dynamic single
// assignment rule and fails the graph. Under a memory limit the put waits
// for byte budget (see Graph.WithMemoryLimit) before storing.
func (ic *ItemCollection[K, V]) Put(k K, v V) {
	ic.putInto(k, v, nil)
}

// PutInto is Put with its backend mirror and waiter wakeups staged into the
// burst instead of performed immediately: a phase that puts N items through
// one burst crosses the backend seam (for internal/dist, the socket) as one
// PutBatch call, and wakes parked workers once for the whole burst.
// Ordering is preserved — Burst.Flush delivers the batched mirror before
// any staged wakeup reaches the run queue — but consumers polling via
// TryGet can observe an item before its mirror lands, the same
// local-insert-precedes-mirror window plain Put already has. The item is
// locally visible (and counted) when PutInto returns; only the mirror and
// the wakeups wait for Flush. Like every burst user: always Flush.
func (ic *ItemCollection[K, V]) PutInto(k K, v V, bu *Burst) {
	ic.putInto(k, v, bu) // nil bu degrades to plain Put
}

func (ic *ItemCollection[K, V]) putInto(k K, v V, bu *Burst) {
	ic.g.checkRunning()
	if h := ic.g.hooks; h != nil && h.BeforeItemPut != nil {
		h.BeforeItemPut(ic.name, k)
	}
	size := ic.sizeBytes(k)
	// Admission before the shard lock: the budget wait must not block
	// other gets/puts/frees on this collection (frees are what clear it).
	ic.g.acct.admitItem(size)
	sh := ic.shardOf(k)
	sh.mu.Lock()
	if _, wasFreed := sh.freed[k]; wasFreed {
		sh.mu.Unlock()
		ic.g.acct.refund(size)
		err := fmt.Errorf("cnc: single-assignment violation: item %s[%v] re-put after its get-count freed it: %w",
			ic.name, k, &UseAfterFreeError{Collection: ic.name, Key: k})
		if dc := ic.g.discipline; dc != nil {
			err = fmt.Errorf("%v; %w", dc.DoublePut(ic.name, k, fmt.Sprint(v)), err)
		}
		ic.g.fail(err)
		return
	}
	if _, dup := sh.items[k]; dup {
		sh.mu.Unlock()
		ic.g.acct.refund(size)
		var err error = fmt.Errorf("cnc: single-assignment violation: item %s[%v] put twice", ic.name, k)
		if dc := ic.g.discipline; dc != nil {
			// The checker names both writers and whether the values differ.
			err = dc.DoublePut(ic.name, k, fmt.Sprint(v))
		}
		ic.g.fail(err)
		return
	}
	sh.items[k] = v
	freeNow := false
	if ic.getCount != nil {
		switch n := ic.getCount(k); {
		case n < 0:
			// Leave the item live (un-counted) and fail: a negative count
			// is a declaration bug, not a freeing instruction.
			ic.g.fail(fmt.Errorf("cnc: item %s[%v] declared negative get-count %d", ic.name, k, n))
		case n == 0:
			freeNow = true
		default:
			sh.remaining[k] = n
		}
	}
	ws := sh.waiters[k]
	delete(sh.waiters, k)
	if freeNow {
		// Declared consumer-free: reclaim immediately. Parked waiters are
		// still woken — their re-read then reports use-after-free, which is
		// the deterministic surface of a get-count declared too low.
		delete(sh.items, k)
		sh.freed[k] = struct{}{}
	}
	sh.mu.Unlock()
	ic.g.stats.itemsPut.Add(1)
	ic.puts.Add(1)
	if dc := ic.g.discipline; dc != nil {
		declared := -1
		if ic.getCount != nil {
			declared = ic.getCount(k)
		}
		dc.RecordPut(ic.name, k, declared, fmt.Sprint(v))
	}
	if freeNow {
		ic.g.acct.free(size)
	}
	// Mirror to the external backend before any consumer can observe the
	// item: waiters woken below (and every later Get, whose local-presence
	// check this put just satisfied) may fetch the value remotely, so the
	// backend must hold it first — the distributed read-your-writes
	// ordering (see ItemBackend). With a caller burst (PutInto) the mirror
	// is staged instead; Burst.Flush delivers the whole batch before any
	// staged wakeup, preserving the same ordering batch-wide.
	if bu != nil {
		if ic.g.backend != nil {
			bu.addOp(ic.name, k, v)
		}
		for _, w := range ws {
			w.notify(bu)
		}
	} else {
		ic.g.backendPut(ic.name, k, v)
		if len(ws) > 0 {
			// Coalesce the wakeups: every waiter this put satisfies lands on
			// the queue in one batch with a single signalling pass, instead of
			// one push + one worker wake per waiter. (A lone waiter skips the
			// burst — a direct push is exactly as cheap.)
			var wbu *Burst
			if len(ws) > 1 {
				wbu = ic.g.NewBurst()
			}
			for _, w := range ws {
				w.notify(wbu)
			}
			if wbu != nil {
				wbu.Flush()
			}
		}
	}
	// A new item can make deferred throttled tags runnable.
	if ic.g.acct.pendingN.Load() > 0 {
		ic.g.acct.pump()
	}
}

// release decrements k's get-count, freeing the value at zero. It
// implements itemStore for StepCollection.WithGets; on collections without
// a get-count it is a no-op, so a shared read-set declaration can span
// counted and uncounted collections.
func (ic *ItemCollection[K, V]) release(key any) {
	if ic.getCount == nil {
		return
	}
	k, ok := key.(K)
	if !ok {
		ic.g.fail(fmt.Errorf("cnc: release key %v has wrong type for collection %s", key, ic.name))
		return
	}
	sh := ic.shardOf(k)
	sh.mu.Lock()
	if _, wasFreed := sh.freed[k]; wasFreed {
		sh.mu.Unlock()
		err := fmt.Errorf("cnc: over-release of item %s[%v]: get-count reached zero before its last declared reader (declared count too low)",
			ic.name, k)
		if dc := ic.g.discipline; dc != nil {
			err = fmt.Errorf("%v; %w", dc.Overdraw(ic.name, k, "release"), err)
		}
		ic.g.fail(err)
		return
	}
	rem, counted := sh.remaining[k]
	if !counted {
		if _, present := sh.items[k]; present {
			// Present but un-counted: the negative-count error path left it
			// pinned; the graph already failed.
			sh.mu.Unlock()
			return
		}
		sh.mu.Unlock()
		ic.g.fail(fmt.Errorf("cnc: release of item %s[%v] that was never put", ic.name, k))
		return
	}
	if dc := ic.g.discipline; dc != nil {
		dc.RecordRelease(ic.name, k)
	}
	if rem--; rem > 0 {
		sh.remaining[k] = rem
		sh.mu.Unlock()
		return
	}
	delete(sh.items, k)
	delete(sh.remaining, k)
	sh.freed[k] = struct{}{}
	sh.mu.Unlock()
	ic.g.acct.free(ic.sizeBytes(k))
}

// has implements the itemStore readiness probe: key is "ready" when its
// item is present — or already freed, in which case admitting the reader
// surfaces the deterministic use-after-free error instead of deferring the
// tag forever.
func (ic *ItemCollection[K, V]) has(key any) bool {
	k, ok := key.(K)
	if !ok {
		return true // let execution surface the type error
	}
	sh := ic.shardOf(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, present := sh.items[k]; present {
		return true
	}
	_, wasFreed := sh.freed[k]
	return wasFreed
}

// freeableBytes implements the itemStore admission probe: the accounted
// size of key when one more release would free it (present with a
// remaining get-count of exactly 1), else 0.
func (ic *ItemCollection[K, V]) freeableBytes(key any) int64 {
	k, ok := key.(K)
	if !ok {
		return 0
	}
	sh := ic.shardOf(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, present := sh.items[k]; !present {
		return 0
	}
	if rem, counted := sh.remaining[k]; !counted || rem != 1 {
		return 0
	}
	return ic.sizeBytes(k)
}

// Get returns the item stored under k, blocking in the CnC sense: when the
// item is missing, the calling step instance is aborted and re-executed
// after the item is put. Get must only be called from inside a step body.
// Reading an item that get-count garbage collection freed fails the graph
// with a deterministic UseAfterFreeError (the declared count was too low)
// instead of parking forever or returning stale data.
func (ic *ItemCollection[K, V]) Get(k K) V {
	sh := ic.shardOf(k)
	sh.mu.Lock()
	if v, ok := sh.items[k]; ok {
		sh.mu.Unlock()
		if dc := ic.g.discipline; dc != nil {
			dc.RecordGet(ic.name, k)
		}
		// With a backend installed the local value only proves existence;
		// the authoritative copy comes back over the wire (and must agree
		// in type — a mismatch is a codec bug, failed loudly).
		if rv, remote := ic.g.backendGet(ic.name, k, v); remote {
			tv, ok := rv.(V)
			if !ok {
				err := fmt.Errorf("cnc: item backend returned %T for %s[%v], want %T", rv, ic.name, k, v)
				ic.g.fail(err)
				panic(err) // unwinds the step like a failed Get; never retried into success
			}
			return tv
		}
		return v
	}
	if _, wasFreed := sh.freed[k]; wasFreed {
		sh.mu.Unlock()
		err := &UseAfterFreeError{Collection: ic.name, Key: k}
		if dc := ic.g.discipline; dc != nil {
			err.Overdraw = dc.Overdraw(ic.name, k, "get")
		}
		ic.g.fail(err)
		panic(err) // unwinds the step like a failed Get, but is never retried
	}
	sh.mu.Unlock()
	panic(&retrySignal{
		park: func(label string, requeue func(*Burst)) {
			sh.mu.Lock()
			if _, ok := sh.items[k]; ok {
				// The item arrived between TryGet and parking: requeue
				// immediately instead of waiting.
				sh.mu.Unlock()
				requeue(nil)
				return
			}
			ic.g.parked.Add(1)
			sh.waiters[k] = append(sh.waiters[k], waiter{who: fixedLabel(label), notify: func(bu *Burst) {
				ic.g.parked.Add(-1)
				requeue(bu)
			}})
			sh.mu.Unlock()
		},
	})
}

// TryGet is the non-blocking get (the paper's §IV-B ablation): it reports
// whether the item is present without aborting the step. Polling a freed
// item fails the graph (deterministic use-after-free, like Get) and reports
// the item as absent.
func (ic *ItemCollection[K, V]) TryGet(k K) (V, bool) {
	sh := ic.shardOf(k)
	sh.mu.Lock()
	v, ok := sh.items[k]
	if !ok {
		if _, wasFreed := sh.freed[k]; wasFreed {
			sh.mu.Unlock()
			err := &UseAfterFreeError{Collection: ic.name, Key: k}
			if dc := ic.g.discipline; dc != nil {
				err.Overdraw = dc.Overdraw(ic.name, k, "get")
			}
			ic.g.fail(err)
			var zero V
			return zero, false
		}
	}
	sh.mu.Unlock()
	if ok {
		if dc := ic.g.discipline; dc != nil {
			dc.RecordGet(ic.name, k)
		}
	}
	return v, ok
}

// Len returns the number of items currently live — put and not yet freed
// by get-count garbage collection. For the total ever put, use Puts.
func (ic *ItemCollection[K, V]) Len() int {
	n := 0
	for i := range ic.shards {
		sh := &ic.shards[i]
		sh.mu.Lock()
		n += len(sh.items)
		sh.mu.Unlock()
	}
	return n
}

// subscribe implements itemStore for tuned scheduling.
func (ic *ItemCollection[K, V]) subscribe(key any, who waitLabeler, notify func(*Burst)) bool {
	k, ok := key.(K)
	if !ok {
		// Fail the graph but treat the dependency as satisfied so the
		// countdown still completes and the graph quiesces.
		ic.g.fail(fmt.Errorf("cnc: dependency key %v has wrong type for collection %s", key, ic.name))
		return false
	}
	sh := ic.shardOf(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, present := sh.items[k]; present {
		return false
	}
	if _, wasFreed := sh.freed[k]; wasFreed {
		// A tuned instance declared a dependency on an already-freed item:
		// the get-count missed this consumer. Fail deterministically and
		// report the dependency as satisfied so the countdown completes and
		// the graph quiesces instead of parking forever.
		err := &UseAfterFreeError{Collection: ic.name, Key: k}
		if dc := ic.g.discipline; dc != nil {
			err.Overdraw = dc.Overdraw(ic.name, k, "get")
		}
		ic.g.fail(err)
		return false
	}
	sh.waiters[k] = append(sh.waiters[k], waiter{who: who, notify: notify})
	return true
}

// blockedInstances enumerates parked instances for deadlock reports.
func (ic *ItemCollection[K, V]) blockedInstances() []string {
	var out []string
	for i := range ic.shards {
		sh := &ic.shards[i]
		sh.mu.Lock()
		for k, ws := range sh.waiters {
			for _, w := range ws {
				out = append(out, fmt.Sprintf("%s <- %s[%v]", w.who.waitLabel(), ic.name, k))
			}
		}
		sh.mu.Unlock()
	}
	sort.Strings(out)
	return out
}

// retrySignal is the panic payload of a failed blocking Get. The requeue
// callback receives the burst of the Put that woke the instance (nil for an
// immediate requeue) so re-dispatches batch with the put's other wakeups.
type retrySignal struct {
	park func(label string, requeue func(*Burst))
}
