package cnc

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// TestPipeline builds the Listing 1 graph: one step collection that consumes
// an item, produces the next item and puts the next tag, forming a chain.
func TestPipeline(t *testing.T) {
	g := NewGraph("pipeline", 2)
	data := NewItemCollection[int, int](g, "myData")
	ctrl := NewTagCollection[int](g, "myCtrl", false)
	const n = 50
	step := NewStepCollection(g, "myStep", func(i int) error {
		v := data.Get(i)
		data.Put(i+1, v+1)
		if i+1 < n {
			ctrl.Put(i + 1)
		}
		return nil
	})
	step.Consumes(data)
	step.Produces(data)
	ctrl.Prescribe(step)

	err := g.Run(func() {
		data.Put(0, 0)
		ctrl.Put(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := data.TryGet(n); !ok || v != n {
		t.Fatalf("data[%d] = %v,%v; want %d,true", n, v, ok, n)
	}
}

// TestBlockingGetAbortsAndRequeues puts the consumer's tag before the item
// it needs exists, forcing the authentic abort-and-requeue path. One worker
// makes the order deterministic: a single lane drains FIFO, so the consumer
// is guaranteed to run (and miss its Get) before the producer.
func TestBlockingGetAbortsAndRequeues(t *testing.T) {
	g := NewGraph("abort", 1)
	items := NewItemCollection[string, int](g, "items")
	consumed := NewItemCollection[string, int](g, "out")
	consumerTags := NewTagCollection[string](g, "ct", false)
	producerTags := NewTagCollection[string](g, "pt", false)

	consumer := NewStepCollection(g, "consumer", func(tag string) error {
		v := items.Get(tag) // aborts on first execution
		consumed.Put(tag, v*10)
		return nil
	})
	producer := NewStepCollection(g, "producer", func(tag string) error {
		items.Put(tag, 7)
		return nil
	})
	consumerTags.Prescribe(consumer)
	producerTags.Prescribe(producer)

	err := g.Run(func() {
		consumerTags.Put("x") // consumer scheduled first, item missing
		producerTags.Put("x")
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := consumed.TryGet("x"); v != 70 {
		t.Fatalf("consumed = %d, want 70", v)
	}
	s := g.Stats()
	if s.Aborts == 0 || s.Requeues == 0 {
		t.Fatalf("expected abort+requeue, stats %+v", s)
	}
}

func TestSingleAssignmentViolation(t *testing.T) {
	g := NewGraph("dsa", 1)
	items := NewItemCollection[int, int](g, "it")
	tags := NewTagCollection[int](g, "tg", false)
	step := NewStepCollection(g, "dup", func(int) error {
		items.Put(1, 1)
		items.Put(1, 2)
		return nil
	})
	tags.Prescribe(step)
	err := g.Run(func() { tags.Put(0) })
	if err == nil || !strings.Contains(err.Error(), "single-assignment") {
		t.Fatalf("err = %v, want single-assignment violation", err)
	}
}

func TestDeadlockDetection(t *testing.T) {
	g := NewGraph("dl", 2)
	items := NewItemCollection[int, string](g, "never")
	tags := NewTagCollection[int](g, "tg", false)
	step := NewStepCollection(g, "blocked", func(tag int) error {
		items.Get(42) // never put
		return nil
	})
	tags.Prescribe(step)
	err := g.Run(func() { tags.Put(1) })
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(dl.Blocked) != 1 || !strings.Contains(dl.Blocked[0], "never[42]") {
		t.Fatalf("blocked report = %v", dl.Blocked)
	}
	if !strings.Contains(dl.Error(), "blocked@1") {
		t.Fatalf("error text %q should identify the blocked instance", dl.Error())
	}
}

func TestTagMemoization(t *testing.T) {
	g := NewGraph("memo", 2)
	var runs atomic.Int64
	tags := NewTagCollection[int](g, "tg", true)
	step := NewStepCollection(g, "s", func(int) error {
		runs.Add(1)
		return nil
	})
	tags.Prescribe(step)
	err := g.Run(func() {
		for i := 0; i < 10; i++ {
			tags.Put(5)
		}
		tags.Put(6)
	})
	if err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 2 {
		t.Fatalf("step ran %d times, want 2 (memoized)", runs.Load())
	}
}

func TestUnmemoizedTagsRunPerPut(t *testing.T) {
	g := NewGraph("nomemo", 2)
	var runs atomic.Int64
	tags := NewTagCollection[int](g, "tg", false)
	step := NewStepCollection(g, "s", func(int) error {
		runs.Add(1)
		return nil
	})
	tags.Prescribe(step)
	if err := g.Run(func() {
		tags.Put(5)
		tags.Put(5)
	}); err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 2 {
		t.Fatalf("step ran %d times, want 2", runs.Load())
	}
}

// TestPrescheduledInline: dependencies available at prescription time run
// the step inline on the putting goroutine, with no abort.
func TestPrescheduledInline(t *testing.T) {
	g := NewGraph("tuner", 2)
	in := NewItemCollection[int, int](g, "in")
	out := NewItemCollection[int, int](g, "out")
	tags := NewTagCollection[int](g, "tg", false)
	step := NewStepCollection(g, "s", func(i int) error {
		out.Put(i, in.Get(i)*2)
		return nil
	}).WithDeps(TunedPrescheduled, func(i int) []Dep {
		return []Dep{in.Key(i)}
	})
	tags.Prescribe(step)
	err := g.Run(func() {
		in.Put(3, 21)
		tags.Put(3) // dependency already present -> inline
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := out.TryGet(3); v != 42 {
		t.Fatalf("out = %d, want 42", v)
	}
	s := g.Stats()
	if s.InlineRuns != 1 {
		t.Fatalf("InlineRuns = %d, want 1 (stats %+v)", s.InlineRuns, s)
	}
	if s.Aborts != 0 {
		t.Fatalf("tuned step must not abort, stats %+v", s)
	}
}

// TestPrescheduledDelayed: with the dependency missing at prescription time,
// the tuned step is released when the item arrives, still without aborts.
func TestPrescheduledDelayed(t *testing.T) {
	g := NewGraph("tuner2", 2)
	in := NewItemCollection[int, int](g, "in")
	out := NewItemCollection[int, int](g, "out")
	stepTags := NewTagCollection[int](g, "tg", false)
	prodTags := NewTagCollection[int](g, "pt", false)
	step := NewStepCollection(g, "s", func(i int) error {
		out.Put(i, in.Get(i)+1)
		return nil
	}).WithDeps(TunedPrescheduled, func(i int) []Dep {
		return []Dep{in.Key(i)}
	})
	prod := NewStepCollection(g, "p", func(i int) error {
		in.Put(i, 10)
		return nil
	})
	stepTags.Prescribe(step)
	prodTags.Prescribe(prod)
	err := g.Run(func() {
		stepTags.Put(1) // dep missing: parked on countdown
		prodTags.Put(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := out.TryGet(1); v != 11 {
		t.Fatalf("out = %d, want 11", v)
	}
	s := g.Stats()
	if s.Aborts != 0 {
		t.Fatalf("tuned step aborted, stats %+v", s)
	}
	if s.TriggeredRuns != 1 {
		t.Fatalf("TriggeredRuns = %d, want 1", s.TriggeredRuns)
	}
}

// TestTriggeredNeverInline: TunedTriggered schedules through the queue even
// when all dependencies are present.
func TestTriggeredNeverInline(t *testing.T) {
	g := NewGraph("manual", 2)
	in := NewItemCollection[int, int](g, "in")
	out := NewItemCollection[int, int](g, "out")
	tags := NewTagCollection[int](g, "tg", false)
	step := NewStepCollection(g, "s", func(i int) error {
		out.Put(i, in.Get(i)-1)
		return nil
	}).WithDeps(TunedTriggered, func(i int) []Dep { return []Dep{in.Key(i)} })
	tags.Prescribe(step)
	err := g.Run(func() {
		in.Put(9, 100)
		tags.Put(9)
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := out.TryGet(9); v != 99 {
		t.Fatalf("out = %d, want 99", v)
	}
	s := g.Stats()
	if s.InlineRuns != 0 || s.TriggeredRuns != 1 {
		t.Fatalf("stats %+v: want 0 inline, 1 triggered", s)
	}
}

// TestTunedDeadlock: a tuned step whose dependency never arrives must be
// reported as a deadlock, not hang.
func TestTunedDeadlock(t *testing.T) {
	g := NewGraph("tdl", 1)
	in := NewItemCollection[int, int](g, "input")
	tags := NewTagCollection[int](g, "tg", false)
	step := NewStepCollection(g, "s", func(i int) error {
		in.Get(i)
		return nil
	}).WithDeps(TunedTriggered, func(i int) []Dep { return []Dep{in.Key(i)} })
	tags.Prescribe(step)
	err := g.Run(func() { tags.Put(7) })
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(dl.Blocked) != 1 || !strings.Contains(dl.Blocked[0], "input[7]") {
		t.Fatalf("blocked = %v", dl.Blocked)
	}
}

func TestStepErrorFailsGraph(t *testing.T) {
	g := NewGraph("err", 1)
	tags := NewTagCollection[int](g, "tg", false)
	step := NewStepCollection(g, "s", func(int) error { return errors.New("kaput") })
	tags.Prescribe(step)
	err := g.Run(func() { tags.Put(1) })
	if err == nil || !strings.Contains(err.Error(), "kaput") {
		t.Fatalf("err = %v", err)
	}
}

func TestStepPanicFailsGraph(t *testing.T) {
	g := NewGraph("panic", 1)
	tags := NewTagCollection[int](g, "tg", false)
	step := NewStepCollection(g, "s", func(int) error { panic("oh no") })
	tags.Prescribe(step)
	err := g.Run(func() { tags.Put(1) })
	if err == nil || !strings.Contains(err.Error(), "oh no") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunTwiceErrors(t *testing.T) {
	g := NewGraph("twice", 1)
	if err := g.Run(nil); err != nil {
		t.Fatal(err)
	}
	if err := g.Run(nil); err == nil {
		t.Fatal("second Run should error")
	}
}

func TestPutOutsideRunPanics(t *testing.T) {
	g := NewGraph("outside", 1)
	items := NewItemCollection[int, int](g, "it")
	defer func() {
		if r := recover(); r != ErrNotRunning {
			t.Fatalf("recover = %v, want ErrNotRunning", r)
		}
	}()
	items.Put(1, 1)
}

// TestWavefrontDeterminism runs a 2-D wavefront (the SW dependency pattern)
// under several worker counts and requires bit-identical results — the
// determinism property CnC guarantees for deterministic steps.
func TestWavefrontDeterminism(t *testing.T) {
	const n = 12
	run := func(workers int) []int64 {
		g := NewGraph("wave", workers)
		cell := NewItemCollection[[2]int, int64](g, "cell")
		tags := NewTagCollection[[2]int](g, "tg", true)
		step := NewStepCollection(g, "w", func(t [2]int) error {
			i, j := t[0], t[1]
			up := cell.Get([2]int{i - 1, j})
			left := cell.Get([2]int{i, j - 1})
			diag := cell.Get([2]int{i - 1, j - 1})
			cell.Put([2]int{i, j}, up+left+2*diag+int64(i*j))
			if i+1 < n {
				tags.Put([2]int{i + 1, j})
			}
			if j+1 < n {
				tags.Put([2]int{i, j + 1})
			}
			return nil
		})
		tags.Prescribe(step)
		err := g.Run(func() {
			cell.Put([2]int{0, 0}, 0)
			for i := 1; i < n; i++ {
				cell.Put([2]int{i, 0}, int64(i))
				cell.Put([2]int{0, i}, int64(i))
			}
			tags.Put([2]int{1, 1})
		})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]int64, 0, n*n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				v, ok := cell.TryGet([2]int{i, j})
				if !ok {
					t.Fatalf("workers=%d: cell (%d,%d) missing", workers, i, j)
				}
				out = append(out, v)
			}
		}
		return out
	}
	ref := run(1)
	for _, w := range []int{2, 4, 8} {
		got := run(w)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: cell %d = %d, want %d", w, i, got[i], ref[i])
			}
		}
	}
}

// TestFibonacci exercises recursive tag expansion with memoization — the
// control-flow shape of the paper's recursive CnC programs in miniature.
func TestFibonacci(t *testing.T) {
	g := NewGraph("fib", 4)
	fib := NewItemCollection[int, uint64](g, "fib")
	tags := NewTagCollection[int](g, "tg", true)
	step := NewStepCollection(g, "f", func(n int) error {
		if n < 2 {
			fib.Put(n, uint64(n))
			return nil
		}
		// Expand children first so they exist; gets may abort and retry.
		tags.Put(n - 1)
		tags.Put(n - 2)
		a := fib.Get(n - 1)
		b := fib.Get(n - 2)
		fib.Put(n, a+b)
		return nil
	})
	tags.Prescribe(step)
	if err := g.Run(func() { tags.Put(30) }); err != nil {
		t.Fatal(err)
	}
	if v, _ := fib.TryGet(30); v != 832040 {
		t.Fatalf("fib(30) = %d, want 832040", v)
	}
}

func TestStatsAccounting(t *testing.T) {
	g := NewGraph("stats", 2)
	items := NewItemCollection[int, int](g, "it")
	tags := NewTagCollection[int](g, "tg", false)
	step := NewStepCollection(g, "s", func(i int) error {
		items.Put(i, i)
		return nil
	})
	tags.Prescribe(step)
	if err := g.Run(func() {
		for i := 0; i < 10; i++ {
			tags.Put(i)
		}
	}); err != nil {
		t.Fatal(err)
	}
	s := g.Stats()
	if s.TagsPut != 10 || s.ItemsPut != 10 || s.StepsDone != 10 {
		t.Fatalf("stats %+v", s)
	}
}

func TestDescribeAndDot(t *testing.T) {
	g := NewGraph("GE", 1)
	data := NewItemCollection[int, bool](g, "myData")
	ctrl := NewTagCollection[int](g, "myCtrl", false)
	step := NewStepCollection(g, "myStep", func(int) error { return nil })
	step.Consumes(data).Produces(data)
	ctrl.Prescribe(step)

	desc := g.Describe()
	for _, want := range []string{"<myCtrl> :: (myStep);", "[myData] --> (myStep);", "(myStep) --> [myData];"} {
		if !strings.Contains(desc, want) {
			t.Errorf("Describe missing %q:\n%s", want, desc)
		}
	}
	dot := g.Dot()
	for _, want := range []string{"shape=hexagon", "shape=box", "shape=oval", "digraph \"GE\""} {
		if !strings.Contains(dot, want) {
			t.Errorf("Dot missing %q:\n%s", want, dot)
		}
	}
}

func TestDepString(t *testing.T) {
	g := NewGraph("d", 1)
	items := NewItemCollection[int, int](g, "tbl")
	d := items.Key(5)
	if d.String() != "tbl[5]" {
		t.Fatalf("Dep.String = %q", d.String())
	}
}

func TestMultiplePrescriptions(t *testing.T) {
	g := NewGraph("multi", 2)
	var a, b atomic.Int64
	tags := NewTagCollection[int](g, "tg", false)
	sa := NewStepCollection(g, "a", func(int) error { a.Add(1); return nil })
	sb := NewStepCollection(g, "b", func(int) error { b.Add(1); return nil })
	tags.Prescribe(sa)
	tags.Prescribe(sb)
	if err := g.Run(func() { tags.Put(0) }); err != nil {
		t.Fatal(err)
	}
	if a.Load() != 1 || b.Load() != 1 {
		t.Fatalf("a=%d b=%d, want 1,1", a.Load(), b.Load())
	}
}

// A step with several missing tuned dependencies must fire exactly once,
// after the last one arrives.
func TestMultiDepCountdown(t *testing.T) {
	g := NewGraph("latch", 2)
	in := NewItemCollection[int, int](g, "in")
	out := NewItemCollection[int, int](g, "out")
	stepTags := NewTagCollection[int](g, "st", false)
	feedTags := NewTagCollection[int](g, "ft", false)
	var runs atomic.Int64
	step := NewStepCollection(g, "sum", func(int) error {
		runs.Add(1)
		out.Put(0, in.Get(1)+in.Get(2)+in.Get(3))
		return nil
	}).WithDeps(TunedTriggered, func(int) []Dep {
		return []Dep{in.Key(1), in.Key(2), in.Key(3)}
	})
	feed := NewStepCollection(g, "feed", func(i int) error {
		in.Put(i, i*100)
		return nil
	})
	stepTags.Prescribe(step)
	feedTags.Prescribe(feed)
	if err := g.Run(func() {
		stepTags.Put(0)
		for i := 1; i <= 3; i++ {
			feedTags.Put(i)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 1 {
		t.Fatalf("step ran %d times, want exactly 1", runs.Load())
	}
	if v, _ := out.TryGet(0); v != 600 {
		t.Fatalf("out = %d, want 600", v)
	}
}

func TestItemLenAndName(t *testing.T) {
	g := NewGraph("len", 1)
	items := NewItemCollection[int, int](g, "xs")
	tags := NewTagCollection[int](g, "tg", false)
	step := NewStepCollection(g, "s", func(i int) error { items.Put(i, i); return nil })
	tags.Prescribe(step)
	if err := g.Run(func() { tags.Put(1); tags.Put(2) }); err != nil {
		t.Fatal(err)
	}
	if items.Len() != 2 {
		t.Fatalf("Len = %d", items.Len())
	}
	if items.CollectionName() != "xs" || tags.CollectionName() != "tg" || step.CollectionName() != "s" {
		t.Fatal("collection names wrong")
	}
	if g.Name() != "len" || g.Workers() != 1 {
		t.Fatal("graph metadata wrong")
	}
}

func ExampleGraph() {
	g := NewGraph("hello", 1)
	data := NewItemCollection[int, string](g, "myData")
	ctrl := NewTagCollection[int](g, "myCtrl", false)
	step := NewStepCollection(g, "myStep", func(i int) error {
		data.Put(i+1, data.Get(i)+"!")
		return nil
	})
	ctrl.Prescribe(step)
	_ = g.Run(func() {
		data.Put(0, "hello")
		ctrl.Put(0)
	})
	v, _ := data.TryGet(1)
	fmt.Println(v)
	// Output: hello!
}

// TestComputeOnPinning: all instances pinned to one worker execute
// strictly sequentially on that worker — verified by mutating shared state
// without synchronisation under the race detector, which would flag any
// violation of the pinning.
func TestComputeOnPinning(t *testing.T) {
	g := NewGraph("pin", 4)
	tags := NewTagCollection[int](g, "tg", false)
	var order []int // no mutex: safe only if truly pinned to one worker
	step := NewStepCollection(g, "s", func(i int) error {
		order = append(order, i)
		return nil
	}).WithComputeOn(func(int) int { return 2 })
	tags.Prescribe(step)
	if err := g.Run(func() {
		for i := 0; i < 200; i++ {
			tags.Put(i)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if len(order) != 200 {
		t.Fatalf("executed %d steps, want 200", len(order))
	}
	// Pinned queues are FIFO, so the environment's put order is preserved.
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d: pinned FIFO violated", i, v)
		}
	}
	if s := g.Stats(); s.PinnedRuns != 200 {
		t.Fatalf("PinnedRuns = %d, want 200", s.PinnedRuns)
	}
}

// TestComputeOnWithDeps: placement composes with pre-declared dependencies
// (never inline, still pinned) and with the abort/requeue path.
func TestComputeOnWithDeps(t *testing.T) {
	g := NewGraph("pin2", 3)
	in := NewItemCollection[int, int](g, "in")
	out := NewItemCollection[int, int](g, "out")
	stepTags := NewTagCollection[int](g, "st", false)
	feedTags := NewTagCollection[int](g, "ft", false)
	var sum int // unsynchronised: all consumer steps pinned to worker 1
	consumer := NewStepCollection(g, "c", func(i int) error {
		sum += in.Get(i)
		out.Put(i, sum)
		return nil
	}).WithDeps(TunedPrescheduled, func(i int) []Dep {
		return []Dep{in.Key(i)}
	}).WithComputeOn(func(int) int { return 1 })
	producer := NewStepCollection(g, "p", func(i int) error {
		in.Put(i, 1)
		return nil
	})
	stepTags.Prescribe(consumer)
	feedTags.Prescribe(producer)
	if err := g.Run(func() {
		for i := 0; i < 50; i++ {
			stepTags.Put(i)
		}
		for i := 0; i < 50; i++ {
			feedTags.Put(i)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if sum != 50 {
		t.Fatalf("sum = %d, want 50", sum)
	}
	s := g.Stats()
	if s.InlineRuns != 0 {
		t.Fatalf("pinned steps must never run inline, stats %+v", s)
	}
	if s.PinnedRuns != 50 {
		t.Fatalf("PinnedRuns = %d, want 50", s.PinnedRuns)
	}
}

// TestComputeOnNegativeAndLargeWorkers: placement indices wrap around.
func TestComputeOnWraparound(t *testing.T) {
	g := NewGraph("pin3", 2)
	tags := NewTagCollection[int](g, "tg", false)
	var runs atomic.Int64
	step := NewStepCollection(g, "s", func(i int) error {
		runs.Add(1)
		return nil
	}).WithComputeOn(func(i int) int { return i - 5 }) // negative and large
	tags.Prescribe(step)
	if err := g.Run(func() {
		for i := 0; i < 20; i++ {
			tags.Put(i)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 20 {
		t.Fatalf("runs = %d", runs.Load())
	}
}
