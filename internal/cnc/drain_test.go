package cnc

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

// TestDrainRetiresPutsDeferredAfterCancelPump pins down the pump-on-drain
// contract: the monitor goroutine pumps the accountant exactly once when
// the context fires, so a throttled put issued *after* that pump (here: by
// a step that waits until it has observed the cancellation) must still
// retire through the accountant's own drain path — not hang the run on an
// un-pumped pending hold.
func TestDrainRetiresPutsDeferredAfterCancelPump(t *testing.T) {
	g := NewGraph("late-put", 1).WithMemoryLimit(8)
	out := NewItemCollection[int, int](g, "out")
	out.WithSizeOf(func(int) int { return 8 }) // no get-count: budget never clears
	tags := NewTagCollection[int](g, "tags", false)
	tags.WithTagBytes(func(int) int { return 8 })

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	started := make(chan struct{})
	cancelled := make(chan struct{})
	var bodyRuns atomic.Int64
	step := NewStepCollection(g, "work", func(i int) error {
		bodyRuns.Add(1)
		close(started) // the test cancels only after the body is running
		out.Put(i, i)
		<-cancelled // resume only after the monitor's single pump has run
		// The budget is full and can never free, so without drain-mode
		// admission this put would be deferred forever.
		tags.PutThrottled(i + 1)
		return nil
	})
	step.Produces(out)
	tags.Prescribe(step)

	done := make(chan error, 1)
	go func() {
		done <- g.RunContext(ctx, func() { tags.PutThrottled(0) })
	}()
	<-started
	cancel()
	// Give the monitor time to record the error and run its one pump
	// before the step issues the late throttled put.
	time.Sleep(50 * time.Millisecond)
	close(cancelled)

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("throttled put deferred after the cancellation pump never retired")
	}
	if n := bodyRuns.Load(); n != 1 {
		t.Fatalf("step bodies run = %d, want 1 (tag 1 must drain, not execute)", n)
	}
	if n := g.acct.pendingN.Load(); n != 0 {
		t.Fatalf("accountant still holds %d pending put(s) after the run", n)
	}
	if s := g.Stats(); s.BackpressureStalls != 0 {
		t.Fatalf("BackpressureStalls = %d, want 0 (drain admission, not forced admission)", s.BackpressureStalls)
	}
}

// TestDrainPumpCancelStress races many throttled puts against the
// cancellation flush across repeated runs: whatever interleaving the
// deferral hits — before, during, or after the monitor's pump — the run
// must return and leave no pending holds.
func TestDrainPumpCancelStress(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 20; round++ {
		g := NewGraph("pump-stress", 4).WithMemoryLimit(16)
		out := NewItemCollection[int, int](g, "out")
		out.WithSizeOf(func(int) int { return 8 })
		tags := NewTagCollection[int](g, "tags", false)
		tags.WithTagBytes(func(int) int { return 8 })
		step := NewStepCollection(g, "work", func(i int) error {
			out.Put(i, i)
			if i < 64 {
				tags.PutThrottled(i + 100*(i%3+1)) // fan out unique tags
			}
			return nil
		})
		step.Produces(out)
		tags.Prescribe(step)

		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			done <- g.RunContext(ctx, func() {
				for i := 0; i < 32; i++ {
					tags.PutThrottled(i)
				}
			})
		}()
		time.Sleep(time.Duration(rng.Intn(2000)) * time.Microsecond)
		cancel()
		select {
		case <-done:
		case <-time.After(20 * time.Second):
			t.Fatalf("round %d: cancelled bounded-memory run hung", round)
		}
		if n := g.acct.pendingN.Load(); n != 0 {
			t.Fatalf("round %d: %d pending put(s) survived the run", round, n)
		}
	}
}
