package cnc

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dpflow/internal/exec"
)

// TestQueuePinnedBeforeGlobalOrder checks the dispatch-order guarantee the
// ComputeOn tuner relies on: a worker drains its pinned FIFO, in put order,
// before touching any stealable work.
func TestQueuePinnedBeforeGlobalOrder(t *testing.T) {
	var q workQueue
	q.init(1, StealRandom, 1)
	var order []int
	rec := func(i int) runnable { return funcTask(func() { order = append(order, i) }) }
	q.pushLocal(0, rec(1))
	q.push(rec(99))
	q.pushLocal(0, rec(2))
	q.pushLocal(0, rec(3))
	if n := q.runSlot(0, 16); n != 4 {
		t.Fatalf("runSlot drained %d units, want 4", n)
	}
	want := []int{1, 2, 3, 99}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order = %v, want %v", order, want)
		}
	}
}

// TestQueuePinnedNotStealable checks pinned work is invisible to every
// worker but its owner: take() on other workers must not return it.
func TestQueuePinnedNotStealable(t *testing.T) {
	var q workQueue
	q.init(4, StealRandom, 1)
	q.pushLocal(2, funcTask(func() {}))
	for _, w := range []int{0, 1, 3} {
		if _, ok := q.take(w); ok {
			t.Fatalf("worker %d took work pinned to worker 2", w)
		}
	}
	if _, ok := q.take(2); !ok {
		t.Fatal("owner did not find its pinned work")
	}
}

// TestQueueStealCounters checks a parked-free steal path: worker 1 steals
// work pushed onto worker 0's lane, and the counters record it.
func TestQueueStealCounters(t *testing.T) {
	var q workQueue
	q.init(2, StealSequential, 1)
	q.nextPush.Store(1) // next push lands on lane (1+1)%2 = 0
	q.push(funcTask(func() {}))
	if _, ok := q.take(1); !ok {
		t.Fatal("worker 1 failed to steal from worker 0's lane")
	}
	if got := q.steals.Load(); got != 1 {
		t.Fatalf("steals = %d, want 1", got)
	}
	if _, ok := q.take(1); ok {
		t.Fatal("second take returned phantom work")
	}
	if got := q.failedProbes.Load(); got == 0 {
		t.Fatal("empty-victim probe was not counted in failedProbes")
	}
}

// TestQueueQuiesceOneWorker checks the deterministic single-worker
// contract: every pushed unit runs exactly once, in FIFO order per lane,
// and a drained queue reports no phantom work.
func TestQueueQuiesceOneWorker(t *testing.T) {
	var q workQueue
	q.init(1, StealRandom, 1)
	const n = 100
	got := 0
	for i := 0; i < n; i++ {
		q.push(funcTask(func() { got++ }))
	}
	if ran := q.runSlot(0, n); ran != n {
		t.Fatalf("runSlot drained %d units, want %d", ran, n)
	}
	if _, ok := q.take(0); ok {
		t.Fatal("take on drained queue returned work")
	}
	if got != n {
		t.Fatalf("executed %d units, want %d", got, n)
	}
}

// laneSource adapts a workQueue to exec.Source for the lease-seam tests
// below: the same wiring graphSource does for a real Graph.
type laneSource struct{ q *workQueue }

func (s laneSource) RunSlot(slot, budget int) int { return s.q.runSlot(slot, budget) }

// TestQueueLeaseNoLostWakeup ping-pongs a single item through the full
// push → Notify → executor-claim → runSlot path with the consumer side
// fully idle between items — the tightest race between a put and a
// physical worker parking. A lost wakeup hangs the test.
func TestQueueLeaseNoLostWakeup(t *testing.T) {
	e := exec.New(1)
	defer e.Close()
	var q workQueue
	q.init(1, StealRandom, 1)
	q.lease = e.Lease("q", 1, laneSource{&q})
	defer q.lease.Close()
	const rounds = 5000
	ran := make(chan struct{}, 1)
	for i := 0; i < rounds; i++ {
		q.push(funcTask(func() { ran <- struct{}{} }))
		select {
		case <-ran:
		case <-time.After(10 * time.Second):
			t.Fatalf("round %d: wakeup lost (the item never ran)", i)
		}
	}
}

// TestQueueConcurrentStress hammers push/pushLocal/steal through a real
// executor lease from many pushers (run under -race in CI): every unit
// must execute exactly once, pinned units on their designated logical
// worker only. Slot-claim exclusivity stands in for the old per-worker
// goroutines: current[slot] counts claims inside RunSlot(slot).
func TestQueueConcurrentStress(t *testing.T) {
	const workers = 4
	const pushers = 4
	const perPusher = 2000
	e := exec.New(workers)
	defer e.Close()
	var q workQueue
	q.init(workers, StealRandom, 1)

	var current [workers]atomic.Int32
	var executed, pinnedWrong atomic.Int64
	src := funcSource(func(slot, budget int) int {
		current[slot].Add(1)
		n := q.runSlot(slot, budget)
		current[slot].Add(-1)
		return n
	})
	q.lease = e.Lease("stress", workers, src)

	var pwg sync.WaitGroup
	pwg.Add(pushers)
	for p := 0; p < pushers; p++ {
		go func(p int) {
			defer pwg.Done()
			for i := 0; i < perPusher; i++ {
				if i%3 == 0 {
					target := (p + i) % workers
					q.pushLocal(target, funcTask(func() {
						if current[target].Load() == 0 {
							pinnedWrong.Add(1)
						}
						executed.Add(1)
					}))
				} else {
					q.push(funcTask(func() { executed.Add(1) }))
				}
			}
		}(p)
	}
	pwg.Wait()

	deadline := time.Now().Add(30 * time.Second)
	for executed.Load() != pushers*perPusher {
		if time.Now().After(deadline) {
			t.Fatalf("executed %d of %d units (lost work or lost wakeup)", executed.Load(), pushers*perPusher)
		}
		time.Sleep(time.Millisecond)
	}
	q.lease.Close()
	if n := pinnedWrong.Load(); n != 0 {
		t.Fatalf("%d pinned unit(s) observed their designated slot unclaimed", n)
	}
	if got := q.steals.Load() + q.wakeups.Load(); got == 0 {
		t.Fatal("stress run recorded neither steals nor wakeups — counters dead?")
	}
}

// funcSource adapts a function to exec.Source.
type funcSource func(slot, budget int) int

func (f funcSource) RunSlot(slot, budget int) int { return f(slot, budget) }

// TestRingReusesBacking is the allocation-bound regression test for the
// re-slicing leak the seed queues had (`q.items = q.items[1:]` kept dead
// backing-array heads alive): steady-state push/pop through a warm ring
// must not allocate, and drained slots must not retain their closures.
func TestRingReusesBacking(t *testing.T) {
	var r ring
	f := funcTask(func() {})
	for i := 0; i < 8; i++ { // warm up to capacity 8
		r.pushBack(f)
	}
	for i := 0; i < 8; i++ {
		r.popFront()
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 8; i++ {
			r.pushBack(f)
		}
		for i := 0; i < 8; i++ {
			if _, ok := r.popFront(); !ok {
				t.Fatal("ring lost an element")
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state ring cycle allocates %v objects per run, want 0", allocs)
	}
	for i, w := range r.buf {
		if w != nil {
			t.Fatalf("drained ring retains a closure at slot %d", i)
		}
	}
}

// TestQueueSteadyStateAllocs extends the ring bound through the queue API:
// a warm pushLocal/take cycle with no parked workers allocates nothing.
func TestQueueSteadyStateAllocs(t *testing.T) {
	var q workQueue
	q.init(2, StealRandom, 1)
	f := funcTask(func() {})
	q.pushLocal(0, f)
	q.take(0)
	allocs := testing.AllocsPerRun(100, func() {
		q.pushLocal(0, f)
		if _, ok := q.take(0); !ok {
			t.Fatal("queue lost the pinned unit")
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state pushLocal/take allocates %v objects per run, want 0", allocs)
	}
}
