package cnc

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestQueuePinnedBeforeGlobalOrder checks the dispatch-order guarantee the
// ComputeOn tuner relies on: a worker drains its pinned FIFO, in put order,
// before touching any stealable work.
func TestQueuePinnedBeforeGlobalOrder(t *testing.T) {
	var q workQueue
	q.init(1, StealRandom, 1)
	var order []int
	rec := func(i int) runnable { return funcTask(func() { order = append(order, i) }) }
	q.pushLocal(0, rec(1))
	q.push(rec(99))
	q.pushLocal(0, rec(2))
	q.pushLocal(0, rec(3))
	for i := 0; i < 4; i++ {
		w, ok := q.pop(0)
		if !ok {
			t.Fatalf("pop %d: queue reported closed", i)
		}
		w.run()
	}
	want := []int{1, 2, 3, 99}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order = %v, want %v", order, want)
		}
	}
}

// TestQueuePinnedNotStealable checks pinned work is invisible to every
// worker but its owner: take() on other workers must not return it.
func TestQueuePinnedNotStealable(t *testing.T) {
	var q workQueue
	q.init(4, StealRandom, 1)
	q.pushLocal(2, funcTask(func() {}))
	for _, w := range []int{0, 1, 3} {
		if _, ok := q.take(w); ok {
			t.Fatalf("worker %d took work pinned to worker 2", w)
		}
	}
	if _, ok := q.take(2); !ok {
		t.Fatal("owner did not find its pinned work")
	}
}

// TestQueueStealCounters checks a parked-free steal path: worker 1 steals
// work pushed onto worker 0's lane, and the counters record it.
func TestQueueStealCounters(t *testing.T) {
	var q workQueue
	q.init(2, StealSequential, 1)
	q.nextPush.Store(1) // next push lands on lane (1+1)%2 = 0
	q.push(funcTask(func() {}))
	if _, ok := q.take(1); !ok {
		t.Fatal("worker 1 failed to steal from worker 0's lane")
	}
	if got := q.steals.Load(); got != 1 {
		t.Fatalf("steals = %d, want 1", got)
	}
	if _, ok := q.take(1); ok {
		t.Fatal("second take returned phantom work")
	}
	if got := q.failedProbes.Load(); got == 0 {
		t.Fatal("empty-victim probe was not counted in failedProbes")
	}
}

// TestQueueQuiesceOneWorker checks the deterministic single-worker
// contract: every pushed unit pops exactly once, in FIFO order per lane,
// and close() ends the pop loop with nothing retained.
func TestQueueQuiesceOneWorker(t *testing.T) {
	var q workQueue
	q.init(1, StealRandom, 1)
	const n = 100
	got := 0
	for i := 0; i < n; i++ {
		q.push(funcTask(func() { got++ }))
	}
	for i := 0; i < n; i++ {
		w, ok := q.pop(0)
		if !ok {
			t.Fatalf("pop %d: queue reported closed early", i)
		}
		w.run()
	}
	q.close()
	if _, ok := q.pop(0); ok {
		t.Fatal("pop after close on empty queue returned work")
	}
	if got != n {
		t.Fatalf("executed %d units, want %d", got, n)
	}
}

// TestQueueCloseWakesAllParked parks every worker on an empty queue, then
// closes it: all must return promptly (shutdown is lost-wakeup-free too).
func TestQueueCloseWakesAllParked(t *testing.T) {
	var q workQueue
	const workers = 4
	q.init(workers, StealRandom, 1)
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func(id int) {
			defer wg.Done()
			if _, ok := q.pop(id); ok {
				t.Errorf("worker %d got work from an empty closed queue", id)
			}
		}(i)
	}
	for q.nParked.Load() != workers {
		time.Sleep(time.Millisecond)
	}
	q.close()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("parked workers did not wake on close")
	}
}

// TestQueueNoLostWakeup ping-pongs a single item between a producer and a
// consumer that goes fully idle between items — the tightest race between
// a put and a worker parking. A lost wakeup hangs the test.
func TestQueueNoLostWakeup(t *testing.T) {
	var q workQueue
	q.init(1, StealRandom, 1)
	const rounds = 5000
	ran := make(chan struct{})
	go func() {
		for {
			w, ok := q.pop(0)
			if !ok {
				return
			}
			w.run()
		}
	}()
	for i := 0; i < rounds; i++ {
		q.push(funcTask(func() { ran <- struct{}{} }))
		select {
		case <-ran:
		case <-time.After(10 * time.Second):
			t.Fatalf("round %d: wakeup lost (consumer never ran the item)", i)
		}
	}
	q.close()
}

// TestQueueConcurrentStress hammers push/pushLocal/pop/steal from many
// goroutines (run under -race in CI): every unit must execute exactly
// once, pinned units on their designated worker only.
func TestQueueConcurrentStress(t *testing.T) {
	var q workQueue
	const workers = 4
	const pushers = 4
	const perPusher = 2000
	q.init(workers, StealRandom, 1)

	// workerID[g] is set by each consumer goroutine so a pinned unit can
	// verify it ran on the right worker.
	var current [workers]atomic.Int32
	var executed, pinnedWrong atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func(id int) {
			defer wg.Done()
			for {
				w, ok := q.pop(id)
				if !ok {
					return
				}
				current[id].Add(1)
				w.run()
				current[id].Add(-1)
			}
		}(i)
	}

	var pwg sync.WaitGroup
	pwg.Add(pushers)
	for p := 0; p < pushers; p++ {
		go func(p int) {
			defer pwg.Done()
			for i := 0; i < perPusher; i++ {
				if i%3 == 0 {
					target := (p + i) % workers
					q.pushLocal(target, funcTask(func() {
						if current[target].Load() == 0 {
							pinnedWrong.Add(1)
						}
						executed.Add(1)
					}))
				} else {
					q.push(funcTask(func() { executed.Add(1) }))
				}
			}
		}(p)
	}
	pwg.Wait()

	deadline := time.Now().Add(30 * time.Second)
	for executed.Load() != pushers*perPusher {
		if time.Now().After(deadline) {
			t.Fatalf("executed %d of %d units (lost work or lost wakeup)", executed.Load(), pushers*perPusher)
		}
		time.Sleep(time.Millisecond)
	}
	q.close()
	wg.Wait()
	if n := pinnedWrong.Load(); n != 0 {
		t.Fatalf("%d pinned unit(s) observed their designated worker idle", n)
	}
	if got := q.steals.Load() + q.wakeups.Load(); got == 0 {
		t.Fatal("stress run recorded neither steals nor wakeups — counters dead?")
	}
}

// TestRingReusesBacking is the allocation-bound regression test for the
// re-slicing leak the seed queues had (`q.items = q.items[1:]` kept dead
// backing-array heads alive): steady-state push/pop through a warm ring
// must not allocate, and drained slots must not retain their closures.
func TestRingReusesBacking(t *testing.T) {
	var r ring
	f := funcTask(func() {})
	for i := 0; i < 8; i++ { // warm up to capacity 8
		r.pushBack(f)
	}
	for i := 0; i < 8; i++ {
		r.popFront()
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 8; i++ {
			r.pushBack(f)
		}
		for i := 0; i < 8; i++ {
			if _, ok := r.popFront(); !ok {
				t.Fatal("ring lost an element")
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state ring cycle allocates %v objects per run, want 0", allocs)
	}
	for i, w := range r.buf {
		if w != nil {
			t.Fatalf("drained ring retains a closure at slot %d", i)
		}
	}
}

// TestQueueSteadyStateAllocs extends the ring bound through the queue API:
// a warm pushLocal/take cycle with no parked workers allocates nothing.
func TestQueueSteadyStateAllocs(t *testing.T) {
	var q workQueue
	q.init(2, StealRandom, 1)
	f := funcTask(func() {})
	q.pushLocal(0, f)
	q.take(0)
	allocs := testing.AllocsPerRun(100, func() {
		q.pushLocal(0, f)
		if _, ok := q.take(0); !ok {
			t.Fatal("queue lost the pinned unit")
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state pushLocal/take allocates %v objects per run, want 0", allocs)
	}
}
