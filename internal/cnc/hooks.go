package cnc

// Hooks intercepts runtime events, primarily for fault injection (see
// internal/chaos) and tracing. All fields are optional. Hooks run inline on
// the runtime's hot paths; BeforeStep additionally runs inside the calling
// step's panic containment, so a panic raised by the hook is recorded
// exactly like a panic in the step body — which is how the chaos layer
// injects step panics without the runtime carrying any chaos-specific code.
type Hooks struct {
	// BeforeStep runs before every execution attempt of step@tag, including
	// re-executions after a speculative abort and retries. Returning a
	// non-nil error fails the attempt as if the step body returned it;
	// panicking fails it as a contained step panic. Both paths are subject
	// to the step's retry budget.
	BeforeStep func(step string, tag any) error
	// DropTag runs on every tag put; returning true silently discards the
	// tag, so no step instance is ever prescribed for it. The graph then
	// either completes without the instance or quiesces into a
	// DeadlockError naming exactly the instances the drop starved.
	DropTag func(coll string, tag any) bool
	// BeforeItemPut runs before every item put — the hook point for delay
	// injection. It must not itself put items or tags.
	BeforeItemPut func(coll string, key any)
	// OnBackpressureStall runs at most once per run, the first time the
	// memory budget proves infeasible: the graph went idle with throttled
	// puts still deferred, so no free could ever land, and the runtime
	// force-admitted one over budget to preserve liveness (see
	// Graph.WithMemoryLimit). It receives the accountant's state and the
	// parked-instance dump at stall time — the watchdog-style report that
	// explains why the budget could not clear. It must not put items or
	// tags.
	OnBackpressureStall func(report BackpressureReport)
}

// SetHooks installs h on the graph. Call it before Run; the runtime reads
// the hook set without synchronisation once running.
func (g *Graph) SetHooks(h *Hooks) { g.hooks = h }

// SetRetry sets the graph-wide default retry budget used by every step
// collection that has not declared its own WithRetry. Call it before Run.
// See StepCollection.WithRetry for the idempotence requirement that makes
// re-execution sound.
func (g *Graph) SetRetry(n int) { g.retry = n }
