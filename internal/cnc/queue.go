package cnc

import (
	"math/rand"
	"sync"
	"sync/atomic"

	"dpflow/internal/exec"
)

// StealPolicy selects how an idle worker picks steal victims — the same
// knob internal/forkjoin exposes for the fork-join pool, carried over to
// the CnC dispatch layer so the two runtimes' scheduling disciplines are
// comparable (Dinh & Simhadri's point that work stealing transfers to
// nested dataflow).
type StealPolicy int

const (
	// StealRandom probes victims in (pseudo) random order; the default, as
	// in Cilk-style runtimes.
	StealRandom StealPolicy = iota
	// StealSequential probes victims in round-robin order starting after
	// the thief; kept as an ablation knob.
	StealSequential
)

// String renders the policy for Describe output.
func (p StealPolicy) String() string {
	if p == StealSequential {
		return "sequential"
	}
	return "random"
}

// runnable is one unit of dispatched work. It is an interface rather than a
// func() so the hot dispatch path can enqueue pooled step-task envelopes
// (*stepTask) without allocating: storing a pointer in an interface is
// allocation-free, while every func() closure capturing a tag is a fresh
// heap object.
type runnable interface{ run() }

// funcTask adapts a plain func() to the runnable interface for the slow
// paths (and tests) where a closure is fine. Func values are pointer-shaped,
// so the interface conversion itself does not allocate.
type funcTask func()

func (f funcTask) run() { f() }

// ring is a growable circular FIFO of work items. Unlike the seed's
// re-sliced `q.items = q.items[1:]` queues it reuses its backing array:
// steady-state push/pop allocates nothing and retains no dead heads
// (regression-tested with testing.AllocsPerRun).
type ring struct {
	buf  []runnable
	head int // index of the oldest element
	n    int
}

func (r *ring) len() int { return r.n }

func (r *ring) pushBack(w runnable) {
	if r.n == len(r.buf) {
		c := len(r.buf) * 2
		if c == 0 {
			c = 8
		}
		nb := make([]runnable, c)
		for i := 0; i < r.n; i++ {
			nb[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf, r.head = nb, 0
	}
	r.buf[(r.head+r.n)%len(r.buf)] = w
	r.n++
}

func (r *ring) popFront() (runnable, bool) {
	if r.n == 0 {
		return nil, false
	}
	w := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return w, true
}

// workerLane is one logical worker's share of the work pool: a pinned FIFO
// for ComputeOn placements (only the owner may run those), a general queue
// other workers may steal from, and the owner's victim-order RNG.
type workerLane struct {
	mu     sync.Mutex
	pinned ring // ComputeOn work; strictly FIFO, owner-only
	queue  ring // general work; owner and thieves both take oldest-first
	rng    *rand.Rand // victim order; touched only by the owning worker
}

// workQueue is the runtime's work pool: per-logical-worker lanes with
// randomized work stealing, replacing the seed's single mutex-guarded
// global FIFO whose every push cond.Broadcast()ed all workers.
//
// Placement: pinned work (ComputeOn) goes to its designated worker's
// pinned FIFO and runs only there, preserving the per-worker put-order
// guarantee. General work is placed round-robin across the lanes; the
// owner drains its lane oldest-first and idle workers steal oldest-first
// from other lanes. Oldest-first (rather than the fork-join pool's
// owner-LIFO) is deliberate: the non-blocking CnC schedule makes progress
// by re-putting its own tag behind the producers it polls for, which
// requires queue fairness — owner-LIFO would let a single worker re-pop
// its own re-put forever.
//
// Idleness is no longer handled here: since the shared-executor refactor
// the lanes are drained by exec.Executor physical workers claiming the
// graph's lease slots (one lane per slot), and every push reports new work
// through the lease's dirty-bit Notify seam. The lost-wakeup argument
// moved with the park protocol into internal/exec: a push completes its
// enqueue (under the lane mutex) before Notify, and the executor clears
// dirty bits only before re-scanning, so work is never stranded. Each push
// still produces at most one counted wake (Stats.Wakeups), preserving the
// PR 4 targeted-signal bound of wakeups ≤ dispatches.
type workQueue struct {
	lanes  []*workerLane
	policy StealPolicy

	// lease is the graph's reservation on the shared executor, set by
	// RunContext before the environment's first put and left in place after
	// the run (Notify on a closed lease is a no-op, so late pushes from
	// stray goroutines cannot race a nil check).
	lease *exec.Lease

	nextPush atomic.Uint64 // round-robin placement cursor

	steals       atomic.Uint64
	failedProbes atomic.Uint64
	wakeups      atomic.Uint64
}

func (q *workQueue) init(workers int, policy StealPolicy, seed int64) {
	q.policy = policy
	q.lanes = make([]*workerLane, workers)
	for i := range q.lanes {
		q.lanes[i] = &workerLane{
			rng: rand.New(rand.NewSource(seed + int64(i)*7919 + 1)),
		}
	}
}

// notify reports new work on the given lane to the executor lease. Counted
// wakeups are the ones that actually roused a parked physical worker — the
// client-visible wake bill the sched harness gates on.
func (q *workQueue) notify(slot int) {
	if l := q.lease; l != nil {
		if l.Notify(slot) {
			q.wakeups.Add(1)
		}
	}
}

// push enqueues stealable work on the next lane in round-robin order and
// notifies the executor (waking at most one parked physical worker).
func (q *workQueue) push(w runnable) {
	t := int(q.nextPush.Add(1) % uint64(len(q.lanes)))
	lane := q.lanes[t]
	lane.mu.Lock()
	lane.queue.pushBack(w)
	lane.mu.Unlock()
	q.notify(t)
}

// pushBatch enqueues a burst of stealable work, distributing it round-robin
// across the lanes with one lock acquisition per lane, and then notifies
// once per touched lane instead of once per item: at most
// min(len(ws), lanes) wakes for the whole burst. This is the dispatch
// amortisation behind TagCollection.PutRange and Burst — a GE elimination
// phase that puts hundreds of tags pays a handful of lock/notify
// operations rather than hundreds.
func (q *workQueue) pushBatch(ws []runnable) {
	if len(ws) == 0 {
		return
	}
	n := len(q.lanes)
	start := int((q.nextPush.Add(uint64(len(ws))) - uint64(len(ws))) % uint64(n))
	for off := 0; off < n && off < len(ws); off++ {
		lane := q.lanes[(start+off)%n]
		lane.mu.Lock()
		for i := off; i < len(ws); i += n {
			lane.queue.pushBack(ws[i])
		}
		lane.mu.Unlock()
	}
	for off := 0; off < n && off < len(ws); off++ {
		q.notify((start + off) % n)
	}
}

// pushLocal enqueues pinned work for one logical worker and notifies with
// that slot as the hint — nobody else can run it, and the executor's
// dirty-slot pass guarantees the hinted slot is eventually claimed.
func (q *workQueue) pushLocal(worker int, w runnable) {
	lane := q.lanes[worker]
	lane.mu.Lock()
	lane.pinned.pushBack(w)
	lane.mu.Unlock()
	q.notify(worker)
}

// take attempts to acquire one unit of work without blocking: the
// worker's own pinned FIFO first (preserving the ComputeOn ordering
// guarantee), then its own general queue, then a steal sweep.
func (q *workQueue) take(worker int) (runnable, bool) {
	lane := q.lanes[worker]
	lane.mu.Lock()
	if w, ok := lane.pinned.popFront(); ok {
		lane.mu.Unlock()
		return w, true
	}
	if w, ok := lane.queue.popFront(); ok {
		lane.mu.Unlock()
		return w, true
	}
	lane.mu.Unlock()
	if w := q.steal(worker); w != nil {
		return w, true
	}
	return nil, false
}

// steal probes the other lanes once each, in policy order, taking the
// oldest stealable item of the first non-empty victim.
func (q *workQueue) steal(worker int) runnable {
	n := len(q.lanes)
	if n == 1 {
		return nil
	}
	start := 0
	switch q.policy {
	case StealRandom:
		start = q.lanes[worker].rng.Intn(n)
	case StealSequential:
		start = worker + 1
	}
	for i := 0; i < n; i++ {
		vi := (start + i) % n
		if vi == worker {
			continue
		}
		v := q.lanes[vi]
		v.mu.Lock()
		w, ok := v.queue.popFront()
		v.mu.Unlock()
		if ok {
			q.steals.Add(1)
			return w
		}
		q.failedProbes.Add(1)
	}
	return nil
}

// runSlot is the executor-facing drain loop: run up to budget units
// available to the given logical worker — own pinned FIFO first, then own
// queue, then steals — returning as soon as nothing is runnable. The
// executor guarantees single-claim per slot, so the per-lane pinned-order
// and owner-RNG disciplines are preserved exactly as under the old
// dedicated worker goroutines.
func (q *workQueue) runSlot(slot, budget int) int {
	n := 0
	for n < budget {
		w, ok := q.take(slot)
		if !ok {
			break
		}
		w.run()
		n++
	}
	return n
}
