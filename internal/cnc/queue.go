package cnc

import (
	"math/rand"
	"sync"
	"sync/atomic"
)

// StealPolicy selects how an idle worker picks steal victims — the same
// knob internal/forkjoin exposes for the fork-join pool, carried over to
// the CnC dispatch layer so the two runtimes' scheduling disciplines are
// comparable (Dinh & Simhadri's point that work stealing transfers to
// nested dataflow).
type StealPolicy int

const (
	// StealRandom probes victims in (pseudo) random order; the default, as
	// in Cilk-style runtimes.
	StealRandom StealPolicy = iota
	// StealSequential probes victims in round-robin order starting after
	// the thief; kept as an ablation knob.
	StealSequential
)

// String renders the policy for Describe output.
func (p StealPolicy) String() string {
	if p == StealSequential {
		return "sequential"
	}
	return "random"
}

// runnable is one unit of dispatched work. It is an interface rather than a
// func() so the hot dispatch path can enqueue pooled step-task envelopes
// (*stepTask) without allocating: storing a pointer in an interface is
// allocation-free, while every func() closure capturing a tag is a fresh
// heap object.
type runnable interface{ run() }

// funcTask adapts a plain func() to the runnable interface for the slow
// paths (and tests) where a closure is fine. Func values are pointer-shaped,
// so the interface conversion itself does not allocate.
type funcTask func()

func (f funcTask) run() { f() }

// ring is a growable circular FIFO of work items. Unlike the seed's
// re-sliced `q.items = q.items[1:]` queues it reuses its backing array:
// steady-state push/pop allocates nothing and retains no dead heads
// (regression-tested with testing.AllocsPerRun).
type ring struct {
	buf  []runnable
	head int // index of the oldest element
	n    int
}

func (r *ring) len() int { return r.n }

func (r *ring) pushBack(w runnable) {
	if r.n == len(r.buf) {
		c := len(r.buf) * 2
		if c == 0 {
			c = 8
		}
		nb := make([]runnable, c)
		for i := 0; i < r.n; i++ {
			nb[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf, r.head = nb, 0
	}
	r.buf[(r.head+r.n)%len(r.buf)] = w
	r.n++
}

func (r *ring) popFront() (runnable, bool) {
	if r.n == 0 {
		return nil, false
	}
	w := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return w, true
}

// workerLane is one worker's share of the work pool: a pinned FIFO for
// ComputeOn placements (only the owner may run those), a general queue
// other workers may steal from, a buffered wake token, and the owner's
// victim-order RNG.
type workerLane struct {
	mu     sync.Mutex
	pinned ring // ComputeOn work; strictly FIFO, owner-only
	queue  ring // general work; owner and thieves both take oldest-first
	wake   chan struct{}
	rng    *rand.Rand // victim order; touched only by the owning worker
}

// workQueue is the runtime's work pool: per-worker lanes with randomized
// work stealing, replacing the seed's single mutex-guarded global FIFO
// whose every push cond.Broadcast()ed all workers.
//
// Placement: pinned work (ComputeOn) goes to its designated worker's
// pinned FIFO and runs only there, preserving the per-worker put-order
// guarantee. General work is placed round-robin across the lanes; the
// owner drains its lane oldest-first and idle workers steal oldest-first
// from other lanes. Oldest-first (rather than the fork-join pool's
// owner-LIFO) is deliberate: the non-blocking CnC schedule makes progress
// by re-putting its own tag behind the producers it polls for, which
// requires queue fairness — owner-LIFO would let a single worker re-pop
// its own re-put forever.
//
// Sleep/wake protocol (lost-wakeup-free): a worker that finds nothing —
// own pinned, own queue, steal sweep — registers itself in the parked set
// under parkMu, probes everything once more, and only then blocks on its
// wake token. A pusher enqueues first and wakes second, so it either
// completed the enqueue before the worker's post-registration probe (the
// probe finds the item: both sides synchronise on the lane mutex) or it
// observes the registration and hands the worker a token. Tokens are
// buffered (capacity 1) so a wake sent before the worker actually blocks
// is retained, and a stale token at worst causes one spurious re-probe.
// Each push wakes at most one worker — the pinned target, or any parked
// worker for stealable work — so puts stop paying the seed's
// workers×puts thundering-herd broadcast bill (counted in Stats.Wakeups).
type workQueue struct {
	lanes  []*workerLane
	policy StealPolicy

	parkMu   sync.Mutex
	parked   []int // ids of parked workers, most recently parked last
	isParked []bool
	closed   bool
	nParked  atomic.Int32 // mirror of len(parked) for the push fast path

	nextPush atomic.Uint64 // round-robin placement cursor

	steals       atomic.Uint64
	failedProbes atomic.Uint64
	wakeups      atomic.Uint64
}

func (q *workQueue) init(workers int, policy StealPolicy, seed int64) {
	q.policy = policy
	q.lanes = make([]*workerLane, workers)
	q.isParked = make([]bool, workers)
	for i := range q.lanes {
		q.lanes[i] = &workerLane{
			wake: make(chan struct{}, 1),
			rng:  rand.New(rand.NewSource(seed + int64(i)*7919 + 1)),
		}
	}
}

// push enqueues stealable work on the next lane in round-robin order and
// wakes at most one parked worker.
func (q *workQueue) push(w runnable) {
	t := int(q.nextPush.Add(1) % uint64(len(q.lanes)))
	lane := q.lanes[t]
	lane.mu.Lock()
	lane.queue.pushBack(w)
	lane.mu.Unlock()
	q.wakeAny(t)
}

// pushBatch enqueues a burst of stealable work, distributing it round-robin
// across the lanes with one lock acquisition per lane, and then signals
// parked workers once for the whole burst instead of once per item: at most
// min(len(ws), parked) wake tokens are sent. This is the dispatch
// amortisation behind TagCollection.PutRange and Burst — a GE elimination
// phase that puts hundreds of tags pays a handful of lock/wake operations
// rather than hundreds.
func (q *workQueue) pushBatch(ws []runnable) {
	if len(ws) == 0 {
		return
	}
	n := len(q.lanes)
	start := int((q.nextPush.Add(uint64(len(ws))) - uint64(len(ws))) % uint64(n))
	for off := 0; off < n && off < len(ws); off++ {
		lane := q.lanes[(start+off)%n]
		lane.mu.Lock()
		for i := off; i < len(ws); i += n {
			lane.queue.pushBack(ws[i])
		}
		lane.mu.Unlock()
	}
	q.wakeBatch(len(ws))
}

// pushLocal enqueues pinned work for one worker and wakes that worker
// specifically — nobody else can run it.
func (q *workQueue) pushLocal(worker int, w runnable) {
	lane := q.lanes[worker]
	lane.mu.Lock()
	lane.pinned.pushBack(w)
	lane.mu.Unlock()
	q.wakeWorker(worker)
}

// wakeAny wakes one parked worker, preferring the lane owner the item was
// placed on. No-op when nobody is parked (the common busy-graph case,
// checked without taking parkMu).
func (q *workQueue) wakeAny(preferred int) {
	if q.nParked.Load() == 0 {
		return
	}
	q.parkMu.Lock()
	chosen := -1
	if q.isParked[preferred] {
		chosen = preferred
	} else if n := len(q.parked); n > 0 {
		chosen = q.parked[n-1]
	}
	if chosen >= 0 {
		q.removeParkedLocked(chosen)
	}
	q.parkMu.Unlock()
	if chosen >= 0 {
		q.sendWake(chosen)
	}
}

// wakeBatch wakes up to n parked workers in one parkMu pass — the burst
// analogue of wakeAny. Most recently parked workers are woken first (their
// stacks are warmest). The same lost-wakeup argument as wakeAny applies:
// pushBatch completes every enqueue before calling here, so a worker that
// parks between the enqueue and the wake either re-probes and finds the
// work or is in the parked set and receives a token.
func (q *workQueue) wakeBatch(n int) {
	if n <= 0 || q.nParked.Load() == 0 {
		return
	}
	var buf [64]int
	if n > len(buf) {
		n = len(buf)
	}
	m := 0
	q.parkMu.Lock()
	for m < n && len(q.parked) > 0 {
		id := q.parked[len(q.parked)-1]
		q.removeParkedLocked(id)
		buf[m] = id
		m++
	}
	q.parkMu.Unlock()
	for i := 0; i < m; i++ {
		q.sendWake(buf[i])
	}
}

// wakeWorker wakes the given worker iff it is parked.
func (q *workQueue) wakeWorker(worker int) {
	if q.nParked.Load() == 0 {
		return
	}
	q.parkMu.Lock()
	ok := q.isParked[worker]
	if ok {
		q.removeParkedLocked(worker)
	}
	q.parkMu.Unlock()
	if ok {
		q.sendWake(worker)
	}
}

func (q *workQueue) sendWake(worker int) {
	q.wakeups.Add(1)
	select {
	case q.lanes[worker].wake <- struct{}{}:
	default: // a token is already pending; the worker will wake anyway
	}
}

func (q *workQueue) removeParkedLocked(worker int) {
	q.isParked[worker] = false
	q.nParked.Add(-1)
	for i, id := range q.parked {
		if id == worker {
			q.parked = append(q.parked[:i], q.parked[i+1:]...)
			return
		}
	}
}

// take attempts to acquire one unit of work without blocking: the
// worker's own pinned FIFO first (preserving the ComputeOn ordering
// guarantee), then its own general queue, then a steal sweep.
func (q *workQueue) take(worker int) (runnable, bool) {
	lane := q.lanes[worker]
	lane.mu.Lock()
	if w, ok := lane.pinned.popFront(); ok {
		lane.mu.Unlock()
		return w, true
	}
	if w, ok := lane.queue.popFront(); ok {
		lane.mu.Unlock()
		return w, true
	}
	lane.mu.Unlock()
	if w := q.steal(worker); w != nil {
		return w, true
	}
	return nil, false
}

// steal probes the other lanes once each, in policy order, taking the
// oldest stealable item of the first non-empty victim.
func (q *workQueue) steal(worker int) runnable {
	n := len(q.lanes)
	if n == 1 {
		return nil
	}
	start := 0
	switch q.policy {
	case StealRandom:
		start = q.lanes[worker].rng.Intn(n)
	case StealSequential:
		start = worker + 1
	}
	for i := 0; i < n; i++ {
		vi := (start + i) % n
		if vi == worker {
			continue
		}
		v := q.lanes[vi]
		v.mu.Lock()
		w, ok := v.queue.popFront()
		v.mu.Unlock()
		if ok {
			q.steals.Add(1)
			return w
		}
		q.failedProbes.Add(1)
	}
	return nil
}

// pop returns the next unit for the given worker, blocking until work
// arrives or the queue closes. On close it keeps returning remaining work
// (pinned first, then anything stealable) until none is left.
func (q *workQueue) pop(worker int) (runnable, bool) {
	lane := q.lanes[worker]
	for {
		if w, ok := q.take(worker); ok {
			return w, true
		}
		// Register as parked, then probe once more before sleeping: a
		// pusher that missed the registration finished its enqueue first,
		// so this probe sees the item; a pusher that saw it leaves a token.
		q.parkMu.Lock()
		if q.closed {
			q.parkMu.Unlock()
			return q.take(worker)
		}
		q.isParked[worker] = true
		q.parked = append(q.parked, worker)
		q.nParked.Add(1)
		q.parkMu.Unlock()
		if w, ok := q.take(worker); ok {
			q.cancelPark(worker)
			return w, true
		}
		<-lane.wake
		// A stale token (left by a wake that raced with cancelPark) can
		// deliver before anyone deregistered us: always deregister here so
		// the parked set never holds a running worker.
		q.cancelPark(worker)
	}
}

// cancelPark deregisters the worker if a waker has not already done so.
func (q *workQueue) cancelPark(worker int) {
	q.parkMu.Lock()
	if q.isParked[worker] {
		q.removeParkedLocked(worker)
	}
	q.parkMu.Unlock()
}

func (q *workQueue) close() {
	q.parkMu.Lock()
	q.closed = true
	ws := append([]int(nil), q.parked...)
	for _, id := range ws {
		q.removeParkedLocked(id)
	}
	q.parkMu.Unlock()
	for _, id := range ws {
		// Shutdown wakeups are not counted in Stats.Wakeups: the counter
		// measures dispatch-path signalling, not teardown.
		select {
		case q.lanes[id].wake <- struct{}{}:
		default:
		}
	}
}
