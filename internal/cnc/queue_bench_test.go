package cnc

import (
	"sync"
	"testing"
)

// BenchmarkDispatchFanout measures the push/wake path of the work-stealing
// queue end to end: one tag put per op fanning out across 4 workers, with
// the per-op wake bill reported (the seed's broadcast regime implied
// workers wakes per put).
func BenchmarkDispatchFanout(b *testing.B) {
	g := NewGraph("bench-dispatch", 4)
	tags := NewTagCollection[int](g, "t", false)
	step := NewStepCollection(g, "nop", func(int) error { return nil })
	tags.Prescribe(step)
	b.ResetTimer()
	err := g.Run(func() {
		for i := 0; i < b.N; i++ {
			tags.Put(i)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
	s := g.Stats()
	b.ReportMetric(float64(s.Wakeups)/float64(b.N), "wakeups/op")
	b.ReportMetric(float64(s.Steals)/float64(b.N), "steals/op")
}

// BenchmarkPinnedDispatch measures the ComputeOn path: pinned FIFO push,
// targeted wake, owner-only pop.
func BenchmarkPinnedDispatch(b *testing.B) {
	g := NewGraph("bench-pinned", 4)
	tags := NewTagCollection[int](g, "t", false)
	step := NewStepCollection(g, "nop", func(int) error { return nil }).
		WithComputeOn(func(i int) int { return i })
	tags.Prescribe(step)
	b.ResetTimer()
	err := g.Run(func() {
		for i := 0; i < b.N; i++ {
			tags.Put(i)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkItemStoreParallel measures concurrent put+get throughput on one
// item collection from 4 goroutines with disjoint keys — the access
// pattern the striped shards exist for (tile puts/gets on different tiles
// must not serialise on one collection lock).
func BenchmarkItemStoreParallel(b *testing.B) {
	g := NewGraph("bench-items", 1)
	items := NewItemCollection[int, int](g, "cells")
	const putters = 4
	err := g.Run(func() {
		var wg sync.WaitGroup
		wg.Add(putters)
		b.ResetTimer()
		for p := 0; p < putters; p++ {
			go func(p int) {
				defer wg.Done()
				for i := p; i < b.N; i += putters {
					items.Put(i, i)
					if _, ok := items.TryGet(i); !ok {
						b.Error("item vanished")
						return
					}
				}
			}(p)
		}
		wg.Wait()
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkQueuePushTake measures the raw ring-buffer queue cycle with no
// parked workers (the hot steady-state path; allocation-free, see
// TestQueueSteadyStateAllocs).
func BenchmarkQueuePushTake(b *testing.B) {
	var q workQueue
	q.init(1, StealRandom, 1)
	f := funcTask(func() {})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.push(f)
		if _, ok := q.take(0); !ok {
			b.Fatal("queue lost the unit")
		}
	}
}
