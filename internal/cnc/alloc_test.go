package cnc

import (
	"sync/atomic"
	"testing"
)

// These are the dispatch-layer allocation gates: with the step-task
// envelopes, dependency latches, burst buffers and []Dep scratch space all
// pooled, the hot put→dispatch→execute cycle must not allocate in steady
// state. Tags are ints and dependency keys are small ints (< 256), whose
// interface conversions use the runtime's static boxes — the same shapes the
// real drivers use pointers and pooled envelopes for. Every gate warms the
// pools first; only the warm cycle is measured.

// TestInlineDispatchSteadyStateAllocs gates the tuned prescheduled path:
// a put whose declared dependency is already present runs the step inline
// on the putting goroutine — tag put, latch acquire/recycle, dependency
// probe and step execution, all without a single heap allocation.
func TestInlineDispatchSteadyStateAllocs(t *testing.T) {
	g := NewGraph("alloc-inline", 1)
	items := NewItemCollection[int, int](g, "in")
	tags := NewTagCollection[int](g, "tags", false)
	var ran atomic.Int64
	step := NewStepCollection(g, "noop", func(int) error {
		ran.Add(1)
		return nil
	})
	step.WithDepsAppend(TunedPrescheduled, func(tag int, buf []Dep) []Dep {
		return append(buf, items.Key(7))
	})
	tags.Prescribe(step)

	var allocs float64
	err := g.Run(func() {
		items.Put(7, 1)
		for i := 0; i < 64; i++ { // warm the latch and scratch pools
			tags.Put(1)
		}
		allocs = testing.AllocsPerRun(100, func() { tags.Put(1) })
	})
	if err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Errorf("steady-state inline put/execute cycle allocates %v objects per run, want 0", allocs)
	}
	if ran.Load() == 0 {
		t.Fatal("step never ran — the gate measured nothing")
	}
}

// TestQueueDispatchSteadyStateAllocs gates the untuned dispatch path end to
// end: put → pooled envelope → lane push → parked-worker wakeup → worker
// executes and recycles the envelope → worker re-parks. The channel
// handshake serialises the cycle so the measurement window contains exactly
// one full round trip.
func TestQueueDispatchSteadyStateAllocs(t *testing.T) {
	g := NewGraph("alloc-queue", 1)
	tags := NewTagCollection[int](g, "tags", false)
	done := make(chan struct{}, 1)
	step := NewStepCollection(g, "noop", func(int) error {
		done <- struct{}{}
		return nil
	})
	tags.Prescribe(step)

	cycle := func() {
		tags.Put(1)
		<-done
	}
	var allocs float64
	err := g.Run(func() {
		for i := 0; i < 64; i++ { // warm envelope pool, lane rings, parked set
			cycle()
		}
		allocs = testing.AllocsPerRun(100, cycle)
	})
	if err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Errorf("steady-state put→worker→execute cycle allocates %v objects per run, want 0", allocs)
	}
}

// TestBurstDispatchSteadyStateAllocs gates the batched path: a burst of
// puts appended through PutInto, flushed as one pushBatch plus one
// wakeBatch pass, with the burst buffer itself recycled through the pool.
func TestBurstDispatchSteadyStateAllocs(t *testing.T) {
	const burst = 8
	g := NewGraph("alloc-burst", 1)
	tags := NewTagCollection[int](g, "tags", false)
	var pending atomic.Int64
	done := make(chan struct{}, 1)
	step := NewStepCollection(g, "noop", func(int) error {
		if pending.Add(-1) == 0 {
			done <- struct{}{}
		}
		return nil
	})
	tags.Prescribe(step)

	cycle := func() {
		pending.Store(burst)
		bu := g.NewBurst()
		for i := 0; i < burst; i++ {
			tags.PutInto(i, bu)
		}
		bu.Flush()
		<-done
	}
	var allocs float64
	err := g.Run(func() {
		for i := 0; i < 32; i++ { // warm burst pool, rings, parked set
			cycle()
		}
		allocs = testing.AllocsPerRun(100, cycle)
	})
	if err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Errorf("steady-state burst flush cycle allocates %v objects per run, want 0", allocs)
	}
}
