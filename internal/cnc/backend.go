package cnc

import "fmt"

// PutOp is one element of a batched backend mirror: the same
// (collection, key, value) triple ItemBackend.Put carries, in a form that
// can be aggregated so a whole burst of puts crosses the backend seam — and,
// for a distributed backend, the wire — in one call instead of one per item.
type PutOp struct {
	Coll string
	Key  any
	Val  any
}

// ItemBackend is an external item-store backend — the seam the distributed
// runtime (internal/dist) plugs a sharded multi-process store into without
// this package knowing anything about processes, sockets or codecs.
//
// With a backend installed (Graph.WithItemBackend), every item collection
// becomes a write-through cache over it:
//
//   - Put mirrors each item to the backend synchronously, after the local
//     store has accepted it (so the write-once rule is already enforced)
//     and before any parked consumer is woken. The ordering is the
//     distributed read-your-writes guarantee for woken consumers: by the
//     time a parked step re-runs, the backend holds the item durably — or
//     the backend has degraded and said so by returning nil anyway. A
//     consumer that observes the item through its own speculative timing
//     (the local insert precedes the mirror) can race the in-flight
//     mirror; backends must absorb that window in Get.
//   - PutBatch is the batch form of Put: semantically identical to calling
//     Put once per op, but the backend may aggregate the whole batch into
//     one round trip. ItemCollection.PutInto stages its mirror into the
//     enclosing Burst, whose Flush delivers the batch through PutBatch
//     *before* any of the burst's waiter wakeups reach the run queue — the
//     batched form of the same read-your-writes ordering.
//   - Get fetches the authoritative value from the backend on every local
//     hit; the locally cached value is used only for existence tracking
//     (parking, wakeups, get-count GC, discipline checks). A backend may
//     itself answer from a read-your-writes cache and cross-check a sample
//     of reads against the remote store (internal/dist does), in which
//     case the data plane is proven statistically instead of per read.
//
// Backends own their robustness: transient transport errors must be
// absorbed internally (retry, reconnect, respawn, replay, degrade to a
// local log — see internal/dist's degradation ladder). A non-nil error from
// any method is terminal and fails the graph. All methods are called
// concurrently from every worker and must be safe for concurrent use.
//
// TryGet is intentionally not routed through the backend: the non-blocking
// variant polls it in a hot loop, and a poll miss is not a data access.
type ItemBackend interface {
	Put(coll string, key, val any) error
	PutBatch(ops []PutOp) error
	Get(coll string, key any) (any, error)
}

// BackendFlusher is the optional flush/barrier hook of an ItemBackend that
// buffers mirror traffic internally (batching puts into frames, deferring
// cross-checks). The graph calls Flush once at quiesce, after the last step
// retired and before Run returns, so any buffered mirror or deferred
// verification error surfaces as the run's error instead of being lost with
// the buffer. A backend with no internal buffering simply doesn't implement
// it.
type BackendFlusher interface {
	Flush() error
}

// WithItemBackend installs an external item-store backend on the graph.
// Write-before-Run configuration, like SetHooks; nil (the default) keeps
// the item collections purely in-process with zero overhead beyond one nil
// check per put/get.
func (g *Graph) WithItemBackend(b ItemBackend) *Graph {
	g.backend = b
	return g
}

// ItemBackendInstalled reports whether the graph routes item storage
// through an external backend.
func (g *Graph) ItemBackendInstalled() bool { return g.backend != nil }

// BackendBusy is the number of operations currently inside a backend call —
// including any retry/backoff window the backend is sitting out internally.
// External watchdogs use it to tell "parked waiting on a remote get" apart
// from livelock: a run whose puts have stopped but whose BackendBusy is
// nonzero is waiting on the transport, not spinning
// (chaos.WatchdogConfig.RemoteBusy).
func (g *Graph) BackendBusy() int64 { return g.backendBusy.Load() }

// backendPut mirrors one accepted put to the backend, maintaining the busy
// gauge and counters. A backend error is terminal (see ItemBackend) and is
// not counted: Stats.BackendPuts reports operations the backend accepted.
func (g *Graph) backendPut(coll string, key, val any) {
	b := g.backend
	if b == nil {
		return
	}
	g.backendBusy.Add(1)
	err := b.Put(coll, key, val)
	g.backendBusy.Add(-1)
	if err != nil {
		g.fail(fmt.Errorf("cnc: item backend put %s[%v]: %w", coll, key, err))
		return
	}
	g.stats.backendPuts.Add(1)
}

// backendPutBatch mirrors a burst of accepted puts to the backend in one
// call. Like backendPut it is terminal on error and counts only successful
// operations (all of ops, since PutBatch is all-or-error).
func (g *Graph) backendPutBatch(ops []PutOp) {
	b := g.backend
	if b == nil || len(ops) == 0 {
		return
	}
	g.backendBusy.Add(1)
	err := b.PutBatch(ops)
	g.backendBusy.Add(-1)
	if err != nil {
		g.fail(fmt.Errorf("cnc: item backend put batch of %d (first %s[%v]): %w",
			len(ops), ops[0].Coll, ops[0].Key, err))
		return
	}
	g.stats.backendPuts.Add(uint64(len(ops)))
}

// backendGet fetches the authoritative value of a locally-present item from
// the backend. It returns (local, false) when no backend is installed and
// on (terminal, already-recorded) backend errors, so callers always have a
// value to hand the step. Stats.BackendGets counts only successful fetches.
func (g *Graph) backendGet(coll string, key, local any) (any, bool) {
	b := g.backend
	if b == nil {
		return local, false
	}
	g.backendBusy.Add(1)
	v, err := b.Get(coll, key)
	g.backendBusy.Add(-1)
	if err != nil {
		g.fail(fmt.Errorf("cnc: item backend get %s[%v]: %w", coll, key, err))
		return local, false
	}
	g.stats.backendGets.Add(1)
	return v, true
}

// flushBackend runs the backend's optional end-of-run flush barrier,
// surfacing any buffered mirror or deferred verification error as a graph
// error. Called once by RunContext after quiesce.
func (g *Graph) flushBackend() {
	f, ok := g.backend.(BackendFlusher)
	if !ok {
		return
	}
	g.backendBusy.Add(1)
	err := f.Flush()
	g.backendBusy.Add(-1)
	if err != nil {
		g.fail(fmt.Errorf("cnc: item backend flush: %w", err))
	}
}
