package cnc

import "fmt"

// ItemBackend is an external item-store backend — the seam the distributed
// runtime (internal/dist) plugs a sharded multi-process store into without
// this package knowing anything about processes, sockets or codecs.
//
// With a backend installed (Graph.WithItemBackend), every item collection
// becomes a write-through cache over it:
//
//   - Put mirrors each item to the backend synchronously, after the local
//     store has accepted it (so the write-once rule is already enforced)
//     and before any parked consumer is woken. The ordering is the
//     distributed read-your-writes guarantee for woken consumers: by the
//     time a parked step re-runs, the backend holds the item durably — or
//     the backend has degraded and said so by returning nil anyway. A
//     consumer that observes the item through its own speculative timing
//     (the local insert precedes the mirror) can race the in-flight
//     mirror; backends must absorb that window in Get.
//   - Get fetches the authoritative value from the backend on every local
//     hit; the locally cached value is used only for existence tracking
//     (parking, wakeups, get-count GC, discipline checks). A distributed
//     run therefore proves its data plane on every read instead of quietly
//     serving coordinator-local state.
//
// Backends own their robustness: transient transport errors must be
// absorbed internally (retry, reconnect, respawn, replay, degrade to a
// local log — see internal/dist's degradation ladder). A non-nil error from
// either method is terminal and fails the graph. Both methods are called
// concurrently from every worker and must be safe for concurrent use.
//
// TryGet is intentionally not routed through the backend: the non-blocking
// variant polls it in a hot loop, and a poll miss is not a data access.
type ItemBackend interface {
	Put(coll string, key, val any) error
	Get(coll string, key any) (any, error)
}

// WithItemBackend installs an external item-store backend on the graph.
// Write-before-Run configuration, like SetHooks; nil (the default) keeps
// the item collections purely in-process with zero overhead beyond one nil
// check per put/get.
func (g *Graph) WithItemBackend(b ItemBackend) *Graph {
	g.backend = b
	return g
}

// ItemBackendInstalled reports whether the graph routes item storage
// through an external backend.
func (g *Graph) ItemBackendInstalled() bool { return g.backend != nil }

// BackendBusy is the number of operations currently inside a backend call —
// including any retry/backoff window the backend is sitting out internally.
// External watchdogs use it to tell "parked waiting on a remote get" apart
// from livelock: a run whose puts have stopped but whose BackendBusy is
// nonzero is waiting on the transport, not spinning
// (chaos.WatchdogConfig.RemoteBusy).
func (g *Graph) BackendBusy() int64 { return g.backendBusy.Load() }

// backendPut mirrors one accepted put to the backend, maintaining the busy
// gauge and counters. A backend error is terminal (see ItemBackend).
func (g *Graph) backendPut(coll string, key, val any) {
	b := g.backend
	if b == nil {
		return
	}
	g.backendBusy.Add(1)
	err := b.Put(coll, key, val)
	g.backendBusy.Add(-1)
	g.stats.backendPuts.Add(1)
	if err != nil {
		g.fail(fmt.Errorf("cnc: item backend put %s[%v]: %w", coll, key, err))
	}
}

// backendGet fetches the authoritative value of a locally-present item from
// the backend. It returns (local, false) when no backend is installed and
// on (terminal, already-recorded) backend errors, so callers always have a
// value to hand the step.
func (g *Graph) backendGet(coll string, key, local any) (any, bool) {
	b := g.backend
	if b == nil {
		return local, false
	}
	g.backendBusy.Add(1)
	v, err := b.Get(coll, key)
	g.backendBusy.Add(-1)
	g.stats.backendGets.Add(1)
	if err != nil {
		g.fail(fmt.Errorf("cnc: item backend get %s[%v]: %w", coll, key, err))
		return local, false
	}
	return v, true
}
