package dist

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"syscall"
	"time"

	"dpflow/internal/bench"
	"dpflow/internal/chaos"
	"dpflow/internal/cnc"
	"dpflow/internal/core"
	"dpflow/internal/determinacy"
)

// Runner drives registered benchmarks through the sharded runtime, with
// the same liveness harness chaos.Runner wraps around in-process runs: a
// hard deadline, a progress watchdog (remote-wait aware here), optional
// discipline checking, and verification against the serial reference.
type Runner struct {
	// Shards is the worker-process count (default Options default, 2).
	Shards int
	// Workers is the CnC worker-goroutine count in the coordinator
	// (default 4).
	Workers int
	// Timeout is the hard per-run deadline (default 120s — respawn
	// ladders legitimately take seconds).
	Timeout time.Duration
	// StallWindow is the watchdog's no-progress window (default 2s);
	// remote waits defer it rather than tripping it.
	StallWindow time.Duration
	// Discipline installs a dataflow-discipline checker on every graph.
	Discipline bool
	// Options seeds the coordinator configuration (Shards overridden by
	// Runner.Shards when set).
	Options Options
}

// RunResult reports one distributed run.
type RunResult struct {
	Bench string
	Fault string
	Seed  int64
	// Wall is the graph execution time (excluding instance setup and the
	// serial reference).
	Wall time.Duration
	// Injections / Fired mirror chaos.Result: what the fault actually did.
	Injections int
	Fired      []string
	// Err is nil exactly when the run completed, verified, kept the
	// dataflow discipline, leaked no items and orphaned no workers.
	Err error
	// Stalled / Blocked / DeadlineFired mirror chaos.Result.
	Stalled       bool
	Blocked       []string
	DeadlineFired bool
	// Counters is the coordinator's traffic/recovery activity.
	Counters CounterSnapshot
	// Degraded is how many shards fell back to local serving.
	Degraded int
	// Watchdog reports the stall-source accounting (remote-wait deferrals).
	Watchdog chaos.WatchdogStats
	// Violations are discipline findings (expected empty).
	Violations []error
	// Stats is the last graph's runtime counters.
	Stats cnc.Stats
}

// Drive runs benchmark b (size n, base tile base, instance seed seed)
// distributed across the runner's shards, optionally under a process-level
// fault, and classifies the outcome. fault may be nil for a clean run.
func (r *Runner) Drive(b bench.Benchmark, n, base int, seed int64, fault chaos.DistFault) RunResult {
	res := RunResult{Bench: b.Name(), Seed: seed}
	if fault != nil {
		res.Fault = fault.Name()
	}
	timeout := r.Timeout
	if timeout <= 0 {
		timeout = 120 * time.Second
	}
	workers := r.Workers
	if workers <= 0 {
		workers = 4
	}

	inst, err := b.NewInstance(n, base, seed)
	if err != nil {
		res.Err = fmt.Errorf("dist: %s instance: %w", b.Name(), err)
		return res
	}
	opts := r.Options
	if r.Shards > 0 {
		opts.Shards = r.Shards
	}
	coord, err := NewCoordinator(opts)
	if err != nil {
		res.Err = fmt.Errorf("dist: coordinator: %w", err)
		return res
	}
	// Close before returning on every path: orphan-freedom is part of the
	// result contract, not a caller obligation.
	defer coord.Close()

	var probe *chaos.Probe
	if fault != nil {
		probe = fault.ArmDist(coord, rand.New(rand.NewSource(seed)))
	}

	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	var wd *chaos.Watchdog
	var graph *cnc.Graph
	var checkers []*determinacy.DisciplineChecker
	tune := func(g *cnc.Graph) {
		graph = g
		coord.Attach(g)
		if r.Discipline {
			dc := determinacy.NewDisciplineChecker()
			g.WithDisciplineCheck(dc)
			checkers = append(checkers, dc)
		}
		if wd != nil {
			wd.Stop()
		}
		wd = chaos.NewWatchdog(chaos.WatchdogConfig{
			Progress: func() uint64 { return g.Stats().ItemsPut },
			Blocked:  g.Blocked,
			Window:   r.StallWindow,
			OnStall:  func([]string) { cancel() },
			// The satellite distinction: puts stalled because a step sits
			// inside a remote get (or the backend sits in a backoff
			// window) is remote waiting, not livelock.
			RemoteBusy: g.BackendBusy,
		})
		wd.Start()
	}

	start := time.Now()
	_, runErr := inst.Run(ctx, core.NativeCnC, bench.RunOpts{Workers: workers, Tune: tune})
	res.Wall = time.Since(start)
	if wd != nil {
		wd.Stop()
		res.Stalled, res.Blocked = wd.Stalled()
		res.Watchdog = wd.Stats()
	}
	if probe != nil {
		res.Injections = probe.Count()
		res.Fired = probe.Fired()
	}
	res.DeadlineFired = errors.Is(runErr, context.DeadlineExceeded) || ctx.Err() == context.DeadlineExceeded
	res.Counters = coord.Counters().Snapshot()
	res.Degraded = coord.Degraded()

	var stats cnc.Stats
	if graph != nil {
		stats = graph.Stats()
		res.Stats = stats
	}
	for _, dc := range checkers {
		res.Violations = append(res.Violations, dc.Violations()...)
	}

	switch {
	case runErr != nil:
		res.Err = fmt.Errorf("dist: %s under fault %s (seed %d, %d injections): %w",
			b.Name(), res.Fault, seed, res.Injections, runErr)
	default:
		if verr := inst.Verify(); verr != nil {
			res.Err = fmt.Errorf("dist: fault %s corrupted %s (seed %d, fired %v): %w",
				res.Fault, b.Name(), seed, res.Fired, verr)
		}
	}
	// The same riders chaos.Runner enforces: a verified run must also be
	// leak-free and discipline-clean, faults or no faults.
	if res.Err == nil && graph != nil && graph.HasGetCounts() && stats.LiveItems != 0 {
		res.Err = fmt.Errorf("dist: %s (seed %d): run verified but leaked %d of %d items",
			b.Name(), seed, stats.LiveItems, stats.ItemsPut)
	}
	if res.Err == nil && len(res.Violations) > 0 {
		res.Err = fmt.Errorf("dist: %s (seed %d): run verified but broke dataflow discipline (%d violations): %w",
			b.Name(), seed, len(res.Violations), res.Violations[0])
	}
	// And the distributed rider: no worker may outlive its coordinator.
	pids := coord.WorkerPIDs()
	coord.Close()
	if res.Err == nil {
		if leaked := livePIDs(pids); len(leaked) > 0 {
			res.Err = fmt.Errorf("dist: %s (seed %d): orphaned worker PIDs %v after Close", b.Name(), seed, leaked)
		}
	}
	return res
}

// livePIDs filters pids down to processes that still exist (signal 0
// probe). Reaped children report ESRCH; anything else still holds a
// process-table slot.
func livePIDs(pids []int) []int {
	var live []int
	for _, pid := range pids {
		if err := syscall.Kill(pid, syscall.Signal(0)); err == nil {
			live = append(live, pid)
		}
	}
	return live
}
