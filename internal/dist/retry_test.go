package dist

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// fakeClock advances only when Sleep is called and records every sleep —
// the retry policy becomes a pure function of its inputs.
type fakeClock struct {
	mu     sync.Mutex
	now    time.Time
	sleeps []time.Duration
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Sleep(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.sleeps = append(f.sleeps, d)
	f.mu.Unlock()
}

func (f *fakeClock) slept() []time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]time.Duration(nil), f.sleeps...)
}

func TestRetrierExponentialScheduleThenSuccess(t *testing.T) {
	clk := &fakeClock{}
	r := NewRetrier(Backoff{Base: time.Millisecond, Max: 100 * time.Millisecond, Factor: 2}, clk, nil)
	retries := 0
	r.OnRetry = func() { retries++ }
	fails := 3
	err := r.Do(clk.Now().Add(time.Second), func() error {
		if fails > 0 {
			fails--
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond}
	got := clk.slept()
	if len(got) != len(want) {
		t.Fatalf("slept %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sleep %d = %v, want %v (schedule %v)", i, got[i], want[i], got)
		}
	}
	if retries != 3 {
		t.Fatalf("OnRetry fired %d times, want 3", retries)
	}
}

func TestRetrierBackoffCapsAtMax(t *testing.T) {
	clk := &fakeClock{}
	r := NewRetrier(Backoff{Base: time.Millisecond, Max: 4 * time.Millisecond, Factor: 2}, clk, nil)
	fails := 6
	err := r.Do(clk.Now().Add(time.Minute), func() error {
		if fails > 0 {
			fails--
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	for i, d := range clk.slept() {
		if d > 4*time.Millisecond {
			t.Fatalf("sleep %d = %v exceeds Max 4ms", i, d)
		}
	}
}

// TestRetrierDeadlineMidBackoffWrapsTransportError is the satellite
// contract: when the next backoff would overrun the deadline, Do returns
// immediately — without sleeping into the dead window — with an error
// carrying BOTH ErrDeadline (the policy failure) and the last transport
// error (the cause).
func TestRetrierDeadlineMidBackoffWrapsTransportError(t *testing.T) {
	clk := &fakeClock{}
	r := NewRetrier(Backoff{Base: 4 * time.Millisecond, Max: 100 * time.Millisecond, Factor: 2}, clk, nil)
	transport := errors.New("connection refused: shard 1")
	err := r.Do(clk.Now().Add(5*time.Millisecond), func() error { return transport })
	if err == nil {
		t.Fatal("Do succeeded with an always-failing op")
	}
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("error does not wrap ErrDeadline: %v", err)
	}
	if !errors.Is(err, transport) {
		t.Fatalf("error does not wrap the transport error: %v", err)
	}
	// Exactly one backoff fit inside the deadline (4ms < 5ms); the second
	// (8ms) was refused without sleeping.
	if got := clk.slept(); len(got) != 1 || got[0] != 4*time.Millisecond {
		t.Fatalf("slept %v, want exactly [4ms]", got)
	}
}

func TestRetrierJitterBounded(t *testing.T) {
	clk := &fakeClock{}
	r := NewRetrier(Backoff{Base: 10 * time.Millisecond, Max: 10 * time.Millisecond, Factor: 2, Jitter: 0.5},
		clk, rand.New(rand.NewSource(7)))
	fails := 20
	err := r.Do(clk.Now().Add(time.Hour), func() error {
		if fails > 0 {
			fails--
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	varied := false
	for i, d := range clk.slept() {
		if d < 10*time.Millisecond || d > 15*time.Millisecond {
			t.Fatalf("sleep %d = %v outside jitter bounds [10ms, 15ms]", i, d)
		}
		if d != 10*time.Millisecond {
			varied = true
		}
	}
	if !varied {
		t.Fatal("jitter never varied the delay")
	}
}
