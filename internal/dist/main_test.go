package dist

import (
	"os"
	"testing"
)

// TestMain lets the coordinator self-exec this test binary as a shard
// worker: with EnvWorkerSocket set, MaybeWorkerChild serves the shard and
// never returns, so the child process never runs any tests.
func TestMain(m *testing.M) {
	MaybeWorkerChild()
	os.Exit(m.Run())
}
