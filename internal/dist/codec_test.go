package dist

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"dpflow/internal/bench"
)

// TestValueRoundTripAllBenchmarks sweeps every registered benchmark's wire
// vocabulary — tags and (collection, key, value) samples including the
// zero-value tag, zero-size tiles and max-coordinate keys — through
// EncodeValue/DecodeValue, and checks encoding is deterministic (the
// property the shard map and byte-equal idempotent replay rely on).
func TestValueRoundTripAllBenchmarks(t *testing.T) {
	benches := bench.All()
	if len(benches) == 0 {
		t.Fatal("no registered benchmarks")
	}
	for _, b := range benches {
		w := b.Wire(4)
		if len(w.Tags) == 0 || len(w.Items) == 0 {
			t.Fatalf("%s: Wire vocabulary empty (tags %d, items %d)", b.Name(), len(w.Tags), len(w.Items))
		}
		var vals []any
		vals = append(vals, w.Tags...)
		for _, it := range w.Items {
			vals = append(vals, it.Key, it.Val)
		}
		for i, v := range vals {
			name := fmt.Sprintf("%s/%d:%T", b.Name(), i, v)
			enc1, err := EncodeValue(v)
			if err != nil {
				t.Fatalf("%s: encode: %v", name, err)
			}
			enc2, err := EncodeValue(v)
			if err != nil {
				t.Fatalf("%s: re-encode: %v", name, err)
			}
			if !bytes.Equal(enc1, enc2) {
				t.Fatalf("%s: encoding not deterministic (%d vs %d bytes)", name, len(enc1), len(enc2))
			}
			dec, err := DecodeValue(enc1)
			if err != nil {
				t.Fatalf("%s: decode: %v", name, err)
			}
			if !reflect.DeepEqual(dec, v) {
				t.Fatalf("%s: round trip %#v -> %#v", name, v, dec)
			}
		}
	}
}

// TestFrameRoundTrip pushes each message type through EncodeFrame/ReadFrame.
func TestFrameRoundTrip(t *testing.T) {
	cases := []struct {
		mt      byte
		seq     uint64
		payload any
	}{
		{MsgPut, 1, PutMsg{Coll: "g1/tile_outputs", Key: []byte{1, 2}, Val: []byte{3}}},
		{MsgGet, 2, GetMsg{Coll: "g1/tile_outputs", Key: []byte{}}},
		{MsgAck, 3, AckMsg{}},
		{MsgAck, 4, AckMsg{Err: "write-once violation"}},
		{MsgItem, 5, ItemMsg{Found: true, Val: []byte{9, 9}}},
		{MsgPing, 6, nil},
		{MsgPong, 7, PongMsg{Stored: 17}},
		{MsgPutBatch, 8, PutBatchMsg{Ops: []PutMsg{
			{Coll: "g1/a", Key: []byte{1}, Val: []byte{2}},
			{Coll: "g1/b", Key: []byte{3, 4}, Val: []byte{}},
		}}},
		{MsgGetBatch, 9, GetBatchMsg{Gets: []GetMsg{{Coll: "g1/a", Key: []byte{1}}}}},
		{MsgItemBatch, 10, ItemBatchMsg{Items: []ItemMsg{{Found: true, Val: []byte{2}}, {Found: false}}}},
	}
	var stream bytes.Buffer
	wires := make([]int, len(cases))
	for i, tc := range cases {
		frame, err := EncodeFrame(tc.mt, tc.seq, tc.payload)
		if err != nil {
			t.Fatalf("%s: encode: %v", MsgName(tc.mt), err)
		}
		wires[i] = len(frame)
		stream.Write(frame)
	}
	for i, tc := range cases {
		mt, seq, pl, wire, err := ReadFrame(&stream)
		if err != nil {
			t.Fatalf("%s: read: %v", MsgName(tc.mt), err)
		}
		if mt != tc.mt || seq != tc.seq {
			t.Fatalf("frame header (%s, %d), want (%s, %d)", MsgName(mt), seq, MsgName(tc.mt), tc.seq)
		}
		if wire != wires[i] {
			t.Fatalf("%s: ReadFrame wire size %d, want the %d bytes EncodeFrame produced", MsgName(mt), wire, wires[i])
		}
		switch tc.mt {
		case MsgPut:
			var m PutMsg
			if err := DecodePayload(pl, &m); err != nil {
				t.Fatalf("decode put: %v", err)
			}
			want := tc.payload.(PutMsg)
			if m.Coll != want.Coll || !bytes.Equal(m.Key, want.Key) || !bytes.Equal(m.Val, want.Val) {
				t.Fatalf("put round trip %+v -> %+v", want, m)
			}
		case MsgPutBatch:
			var m PutBatchMsg
			if err := DecodePayload(pl, &m); err != nil {
				t.Fatalf("decode putbatch: %v", err)
			}
			want := tc.payload.(PutBatchMsg)
			if len(m.Ops) != len(want.Ops) {
				t.Fatalf("putbatch round trip %d ops, want %d", len(m.Ops), len(want.Ops))
			}
			for j := range want.Ops {
				if m.Ops[j].Coll != want.Ops[j].Coll || !bytes.Equal(m.Ops[j].Key, want.Ops[j].Key) || !bytes.Equal(m.Ops[j].Val, want.Ops[j].Val) {
					t.Fatalf("putbatch op %d round trip %+v -> %+v", j, want.Ops[j], m.Ops[j])
				}
			}
		case MsgPong:
			var m PongMsg
			if err := DecodePayload(pl, &m); err != nil {
				t.Fatalf("decode pong: %v", err)
			}
			if m.Stored != tc.payload.(PongMsg).Stored {
				t.Fatalf("pong round trip %+v -> %+v", tc.payload, m)
			}
		case MsgPing:
			if len(pl) != 0 {
				t.Fatalf("ping payload %d bytes, want 0", len(pl))
			}
		}
	}
}

// TestPutBatchRoundTripAllBenchmarks sweeps every registered benchmark's
// wire vocabulary through MsgPutBatch frames — the empty batch, every
// single-entry batch, and the full-vocabulary batch — checking each op's
// bytes survive the frame intact and that a worker Store fed the decoded
// batch serves exactly what went in. This is the batch analogue of
// TestValueRoundTripAllBenchmarks: the batched data plane must be able to
// carry anything the per-item plane could.
func TestPutBatchRoundTripAllBenchmarks(t *testing.T) {
	benches := bench.All()
	if len(benches) == 0 {
		t.Fatal("no registered benchmarks")
	}
	roundTrip := func(t *testing.T, ops []PutMsg, seq uint64) PutBatchMsg {
		frame, err := EncodeFrame(MsgPutBatch, seq, PutBatchMsg{Ops: ops})
		if err != nil {
			t.Fatalf("encode batch of %d: %v", len(ops), err)
		}
		mt, rseq, pl, wire, err := ReadFrame(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("read batch of %d: %v", len(ops), err)
		}
		if mt != MsgPutBatch || rseq != seq || wire != len(frame) {
			t.Fatalf("batch header (%s, %d, wire %d), want (putbatch, %d, %d)", MsgName(mt), rseq, wire, seq, len(frame))
		}
		var m PutBatchMsg
		if err := DecodePayload(pl, &m); err != nil {
			t.Fatalf("decode batch of %d: %v", len(ops), err)
		}
		if len(m.Ops) != len(ops) {
			t.Fatalf("batch round trip %d ops, want %d", len(m.Ops), len(ops))
		}
		for i := range ops {
			if m.Ops[i].Coll != ops[i].Coll || !bytes.Equal(m.Ops[i].Key, ops[i].Key) || !bytes.Equal(m.Ops[i].Val, ops[i].Val) {
				t.Fatalf("batch op %d round trip %+v -> %+v", i, ops[i], m.Ops[i])
			}
		}
		return m
	}
	// The empty batch (a flush that lost the race with another flusher)
	// must be representable, not a protocol error.
	roundTrip(t, nil, 1)
	for _, b := range benches {
		w := b.Wire(4)
		var ops []PutMsg
		for i, it := range w.Items {
			kb, err := EncodeValue(it.Key)
			if err != nil {
				t.Fatalf("%s: encode key: %v", b.Name(), err)
			}
			vb, err := EncodeValue(it.Val)
			if err != nil {
				t.Fatalf("%s: encode val: %v", b.Name(), err)
			}
			// Distinct keys per op: vocabulary entries may repeat a
			// collection, and the Store check below needs one slot each.
			ops = append(ops, PutMsg{Coll: fmt.Sprintf("g1/%s/%d", it.Coll, i), Key: kb, Val: vb})
		}
		if len(ops) == 0 {
			t.Fatalf("%s: empty wire vocabulary", b.Name())
		}
		for i := range ops {
			roundTrip(t, ops[i:i+1], uint64(i)+2) // single-entry batches
		}
		m := roundTrip(t, ops, 99)
		store := NewStore()
		for _, op := range m.Ops {
			if err := store.Put(op.Coll, op.Key, op.Val); err != nil {
				t.Fatalf("%s: store refused decoded batch op: %v", b.Name(), err)
			}
		}
		for _, op := range ops {
			got, ok := store.Get(op.Coll, op.Key)
			if !ok || !bytes.Equal(got, op.Val) {
				t.Fatalf("%s: store serves %d bytes for %s, want the %d put via batch", b.Name(), len(got), op.Coll, len(op.Val))
			}
		}
	}
}

// TestShardOfDeterministicAndInRange: the shard map is a pure function of
// (collection, key bytes) with results in [0, shards), and the NUL
// separator keeps ambiguous concatenations apart.
func TestShardOfDeterministicAndInRange(t *testing.T) {
	for _, b := range bench.All() {
		for _, it := range b.Wire(4).Items {
			kb, err := EncodeValue(it.Key)
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range []int{1, 2, 3, 8} {
				s1 := ShardOf(it.Coll, kb, n)
				s2 := ShardOf(it.Coll, kb, n)
				if s1 != s2 {
					t.Fatalf("%s: shard map not deterministic (%d vs %d)", it.Coll, s1, s2)
				}
				if s1 < 0 || s1 >= n {
					t.Fatalf("%s: shard %d out of range [0,%d)", it.Coll, s1, n)
				}
			}
		}
	}
	if storeKey("ab", []byte("c")) == storeKey("a", []byte("bc")) {
		t.Fatal("store keys collide across the coll/key boundary")
	}
}

// TestStoreWriteOnce: byte-identical duplicate puts are accepted (replay
// idempotence), differing duplicates refused (write-once).
func TestStoreWriteOnce(t *testing.T) {
	s := NewStore()
	if err := s.Put("c", []byte("k"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("c", []byte("k"), []byte("v1")); err != nil {
		t.Fatalf("idempotent replay refused: %v", err)
	}
	if err := s.Put("c", []byte("k"), []byte("v2")); err == nil {
		t.Fatal("differing duplicate put accepted")
	}
	if v, ok := s.Get("c", []byte("k")); !ok || string(v) != "v1" {
		t.Fatalf("Get = (%q, %v), want (v1, true)", v, ok)
	}
	if _, ok := s.Get("c", []byte("missing")); ok {
		t.Fatal("Get of missing key reported found")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}
