package dist

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"dpflow/internal/bench"
)

// TestValueRoundTripAllBenchmarks sweeps every registered benchmark's wire
// vocabulary — tags and (collection, key, value) samples including the
// zero-value tag, zero-size tiles and max-coordinate keys — through
// EncodeValue/DecodeValue, and checks encoding is deterministic (the
// property the shard map and byte-equal idempotent replay rely on).
func TestValueRoundTripAllBenchmarks(t *testing.T) {
	benches := bench.All()
	if len(benches) == 0 {
		t.Fatal("no registered benchmarks")
	}
	for _, b := range benches {
		w := b.Wire(4)
		if len(w.Tags) == 0 || len(w.Items) == 0 {
			t.Fatalf("%s: Wire vocabulary empty (tags %d, items %d)", b.Name(), len(w.Tags), len(w.Items))
		}
		var vals []any
		vals = append(vals, w.Tags...)
		for _, it := range w.Items {
			vals = append(vals, it.Key, it.Val)
		}
		for i, v := range vals {
			name := fmt.Sprintf("%s/%d:%T", b.Name(), i, v)
			enc1, err := EncodeValue(v)
			if err != nil {
				t.Fatalf("%s: encode: %v", name, err)
			}
			enc2, err := EncodeValue(v)
			if err != nil {
				t.Fatalf("%s: re-encode: %v", name, err)
			}
			if !bytes.Equal(enc1, enc2) {
				t.Fatalf("%s: encoding not deterministic (%d vs %d bytes)", name, len(enc1), len(enc2))
			}
			dec, err := DecodeValue(enc1)
			if err != nil {
				t.Fatalf("%s: decode: %v", name, err)
			}
			if !reflect.DeepEqual(dec, v) {
				t.Fatalf("%s: round trip %#v -> %#v", name, v, dec)
			}
		}
	}
}

// TestFrameRoundTrip pushes each message type through EncodeFrame/ReadFrame.
func TestFrameRoundTrip(t *testing.T) {
	cases := []struct {
		mt      byte
		seq     uint64
		payload any
	}{
		{MsgPut, 1, PutMsg{Coll: "g1/tile_outputs", Key: []byte{1, 2}, Val: []byte{3}}},
		{MsgGet, 2, GetMsg{Coll: "g1/tile_outputs", Key: []byte{}}},
		{MsgAck, 3, AckMsg{}},
		{MsgAck, 4, AckMsg{Err: "write-once violation"}},
		{MsgItem, 5, ItemMsg{Found: true, Val: []byte{9, 9}}},
		{MsgPing, 6, nil},
		{MsgPong, 7, PongMsg{Stored: 17}},
	}
	var stream bytes.Buffer
	for _, tc := range cases {
		frame, err := EncodeFrame(tc.mt, tc.seq, tc.payload)
		if err != nil {
			t.Fatalf("%s: encode: %v", MsgName(tc.mt), err)
		}
		stream.Write(frame)
	}
	for _, tc := range cases {
		mt, seq, pl, err := ReadFrame(&stream)
		if err != nil {
			t.Fatalf("%s: read: %v", MsgName(tc.mt), err)
		}
		if mt != tc.mt || seq != tc.seq {
			t.Fatalf("frame header (%s, %d), want (%s, %d)", MsgName(mt), seq, MsgName(tc.mt), tc.seq)
		}
		switch tc.mt {
		case MsgPut:
			var m PutMsg
			if err := DecodePayload(pl, &m); err != nil {
				t.Fatalf("decode put: %v", err)
			}
			want := tc.payload.(PutMsg)
			if m.Coll != want.Coll || !bytes.Equal(m.Key, want.Key) || !bytes.Equal(m.Val, want.Val) {
				t.Fatalf("put round trip %+v -> %+v", want, m)
			}
		case MsgPong:
			var m PongMsg
			if err := DecodePayload(pl, &m); err != nil {
				t.Fatalf("decode pong: %v", err)
			}
			if m.Stored != tc.payload.(PongMsg).Stored {
				t.Fatalf("pong round trip %+v -> %+v", tc.payload, m)
			}
		case MsgPing:
			if len(pl) != 0 {
				t.Fatalf("ping payload %d bytes, want 0", len(pl))
			}
		}
	}
}

// TestShardOfDeterministicAndInRange: the shard map is a pure function of
// (collection, key bytes) with results in [0, shards), and the NUL
// separator keeps ambiguous concatenations apart.
func TestShardOfDeterministicAndInRange(t *testing.T) {
	for _, b := range bench.All() {
		for _, it := range b.Wire(4).Items {
			kb, err := EncodeValue(it.Key)
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range []int{1, 2, 3, 8} {
				s1 := ShardOf(it.Coll, kb, n)
				s2 := ShardOf(it.Coll, kb, n)
				if s1 != s2 {
					t.Fatalf("%s: shard map not deterministic (%d vs %d)", it.Coll, s1, s2)
				}
				if s1 < 0 || s1 >= n {
					t.Fatalf("%s: shard %d out of range [0,%d)", it.Coll, s1, n)
				}
			}
		}
	}
	if storeKey("ab", []byte("c")) == storeKey("a", []byte("bc")) {
		t.Fatal("store keys collide across the coll/key boundary")
	}
}

// TestStoreWriteOnce: byte-identical duplicate puts are accepted (replay
// idempotence), differing duplicates refused (write-once).
func TestStoreWriteOnce(t *testing.T) {
	s := NewStore()
	if err := s.Put("c", []byte("k"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("c", []byte("k"), []byte("v1")); err != nil {
		t.Fatalf("idempotent replay refused: %v", err)
	}
	if err := s.Put("c", []byte("k"), []byte("v2")); err == nil {
		t.Fatal("differing duplicate put accepted")
	}
	if v, ok := s.Get("c", []byte("k")); !ok || string(v) != "v1" {
		t.Fatalf("Get = (%q, %v), want (v1, true)", v, ok)
	}
	if _, ok := s.Get("c", []byte("missing")); ok {
		t.Fatal("Get of missing key reported found")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}
