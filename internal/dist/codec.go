// Package dist is the sharded multi-process runtime: a coordinator process
// that runs the CnC graph and N worker processes that each own one shard of
// the item space, connected over Unix-domain sockets. It layers on the
// generic cnc.ItemBackend seam, so every registered benchmark runs
// distributed with zero per-benchmark code: the coordinator mirrors each
// item put to its shard owner before consumers can observe it and fetches
// the authoritative value on every get (see cnc.ItemBackend for the
// read-your-writes argument).
//
// The runtime's robustness ladder, bottom to top: per-request deadlines
// with retry + exponential backoff + jitter (retry.go); reconnect against
// a live but unresponsive worker; supervisor respawn of dead workers with
// replay of the coordinator's write-ahead put log (safe because items are
// write-once — workers accept byte-identical duplicate puts); and graceful
// degradation to coordinator-local serving from that same log when a shard
// is irrecoverably lost, which is exactly single-process execution. Faults
// are injected through the chaos.TransportControl seam the Coordinator
// implements.
package dist

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"sync"

	"dpflow/internal/bench"
)

// Wire format: every frame is
//
//	uint32 BE  frame length (bytes after this field)
//	byte       message type
//	uint64 BE  sequence number
//	[]byte     gob-encoded payload (may be empty)
//
// The sequence number lives in the frame header, not the payload, so the
// coordinator can discard stale responses (a retried request's late answer)
// without decoding them.
const (
	// MsgPut carries PutMsg coordinator->worker; answered by MsgAck.
	MsgPut byte = 1 + iota
	// MsgGet carries GetMsg coordinator->worker; answered by MsgItem.
	MsgGet
	// MsgAck answers MsgPut.
	MsgAck
	// MsgItem answers MsgGet.
	MsgItem
	// MsgPing is the heartbeat probe (empty payload); answered by MsgPong.
	MsgPing
	// MsgPong answers MsgPing.
	MsgPong
	// MsgPutBatch carries PutBatchMsg coordinator->worker — a whole flush
	// of mirror puts in one frame; answered by MsgAck. Semantically
	// identical to len(Ops) MsgPut exchanges (same write-once, byte-equal
	// idempotence per op), amortising the round trip and the syscalls.
	MsgPutBatch
	// MsgGetBatch carries GetBatchMsg coordinator->worker; answered by
	// MsgItemBatch with one ItemMsg per requested key, in order. Used by
	// the post-replay audit to cross-check a sample of restored items in
	// one exchange.
	MsgGetBatch
	// MsgItemBatch answers MsgGetBatch.
	MsgItemBatch
)

// MsgName renders a message type for logs and fault hooks.
func MsgName(mt byte) string {
	switch mt {
	case MsgPut:
		return "put"
	case MsgGet:
		return "get"
	case MsgAck:
		return "ack"
	case MsgItem:
		return "item"
	case MsgPing:
		return "ping"
	case MsgPong:
		return "pong"
	case MsgPutBatch:
		return "putbatch"
	case MsgGetBatch:
		return "getbatch"
	case MsgItemBatch:
		return "itembatch"
	}
	return fmt.Sprintf("msg(%d)", mt)
}

// maxFrame bounds a single frame; anything larger is a protocol error, not
// a legitimate tile (the benchmarks exchange receipt booleans and small
// structs).
const maxFrame = 16 << 20

const headerLen = 4 // length field itself

// PutMsg stores one write-once item on its shard owner. Key and Val are
// pre-encoded (EncodeValue) — workers treat both as opaque bytes and need
// no type registrations.
type PutMsg struct {
	Coll string
	Key  []byte
	Val  []byte
}

// GetMsg fetches one item.
type GetMsg struct {
	Coll string
	Key  []byte
}

// AckMsg answers a put. A non-empty Err is a protocol-level failure the
// coordinator must surface (the only expected one: a write-once violation,
// a differing duplicate put).
type AckMsg struct {
	Err string
}

// ItemMsg answers a get.
type ItemMsg struct {
	Found bool
	Val   []byte
	Err   string
}

// PongMsg answers a ping; Stored is the worker's item count, a cheap
// invariant probe for tests.
type PongMsg struct {
	Stored uint64
}

// PutBatchMsg stores a batch of write-once items in one frame. The worker
// applies Ops in order and answers with a single MsgAck: empty Err when
// every op was accepted (or was a byte-identical duplicate — replay), the
// first failing op's error otherwise. All-or-first-error, not transactional:
// ops before a failure are stored, which is safe because any error here is
// terminal for the run.
type PutBatchMsg struct {
	Ops []PutMsg
}

// GetBatchMsg fetches a batch of items in one frame; answered by
// MsgItemBatch.
type GetBatchMsg struct {
	Gets []GetMsg
}

// ItemBatchMsg answers MsgGetBatch: Items[i] answers Gets[i].
type ItemBatchMsg struct {
	Items []ItemMsg
}

// EncodeFrame renders one frame. A nil payload encodes as an empty body
// (MsgPing/partner types with no fields can pass nil).
func EncodeFrame(mt byte, seq uint64, payload any) ([]byte, error) {
	var body bytes.Buffer
	body.Write(make([]byte, headerLen)) // length placeholder
	body.WriteByte(mt)
	var seqb [8]byte
	binary.BigEndian.PutUint64(seqb[:], seq)
	body.Write(seqb[:])
	if payload != nil {
		if err := gob.NewEncoder(&body).Encode(payload); err != nil {
			return nil, fmt.Errorf("dist: encode %s frame: %w", MsgName(mt), err)
		}
	}
	out := body.Bytes()
	binary.BigEndian.PutUint32(out[:headerLen], uint32(len(out)-headerLen))
	return out, nil
}

// ReadFrame reads one frame off r, returning the message type, sequence
// number, raw payload bytes, and the total wire size of the frame (header
// included) — the single source of truth for byte accounting and
// size-sensitive fault hooks, so no caller re-derives the frame layout.
func ReadFrame(r io.Reader) (mt byte, seq uint64, payload []byte, wire int, err error) {
	var lenb [headerLen]byte
	if _, err = io.ReadFull(r, lenb[:]); err != nil {
		return 0, 0, nil, 0, err
	}
	n := binary.BigEndian.Uint32(lenb[:])
	if n < 9 || n > maxFrame {
		return 0, 0, nil, 0, fmt.Errorf("dist: bad frame length %d", n)
	}
	buf := make([]byte, n)
	if _, err = io.ReadFull(r, buf); err != nil {
		return 0, 0, nil, 0, err
	}
	return buf[0], binary.BigEndian.Uint64(buf[1:9]), buf[9:], headerLen + int(n), nil
}

// DecodePayload decodes a frame payload into v.
func DecodePayload(payload []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(payload)).Decode(v)
}

// wireValue is the gob envelope for dynamically-typed tag/key/item values:
// encoding `any` directly is not possible, encoding a struct with an `any`
// field is, provided every concrete type is gob-registered
// (RegisterWireTypes).
type wireValue struct {
	V any
}

// EncodeValue renders one tag/key/item value to bytes. A fresh encoder per
// call makes the bytes a pure function of the value — the property the
// shard map (same key, same shard), the worker store key and the byte-equal
// idempotent-replay check all rely on.
func EncodeValue(v any) ([]byte, error) {
	RegisterWireTypes()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wireValue{V: v}); err != nil {
		return nil, fmt.Errorf("dist: encode value %T: %w", v, err)
	}
	return buf.Bytes(), nil
}

// DecodeValue inverts EncodeValue.
func DecodeValue(b []byte) (any, error) {
	RegisterWireTypes()
	var w wireValue
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return nil, fmt.Errorf("dist: decode value: %w", err)
	}
	return w.V, nil
}

var registerOnce sync.Once

// RegisterWireTypes registers every registered benchmark's tag, key and
// item-value concrete types with gob, by walking bench.All() through the
// Wire vocabulary each benchmark declares. Coordinator-side only — workers
// never decode values. Idempotent and safe from multiple goroutines.
func RegisterWireTypes() {
	registerOnce.Do(func() {
		for _, b := range bench.All() {
			w := b.Wire(4)
			for _, tag := range w.Tags {
				gob.Register(tag)
			}
			for _, it := range w.Items {
				gob.Register(it.Key)
				gob.Register(it.Val)
			}
		}
	})
}
