package dist

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
)

// EnvWorkerSocket is the environment variable whose presence turns a
// process into a shard worker: the coordinator spawns its own executable
// with it set (dpbench, dpworker and the dist tests all call
// MaybeWorkerChild first thing for that reason).
const EnvWorkerSocket = "DPFLOW_DIST_WORKER_SOCKET"

// Store is one shard's item store: opaque bytes under the write-once rule.
// Workers never decode values, so they need no gob type registrations and
// no benchmark knowledge at all.
type Store struct {
	mu    sync.Mutex
	items map[string][]byte
}

// NewStore builds an empty store.
func NewStore() *Store { return &Store{items: make(map[string][]byte)} }

// Put stores one item. A duplicate put with byte-identical value is
// accepted silently — that is what makes the coordinator's replay-after-
// respawn and ack-lost-so-retry paths safe. A duplicate with differing
// bytes is a write-once violation and is refused.
func (s *Store) Put(coll string, key, val []byte) error {
	k := storeKey(coll, key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, dup := s.items[k]; dup {
		if bytes.Equal(old, val) {
			return nil // idempotent replay / retried put
		}
		return fmt.Errorf("dist: write-once violation: %s re-put with %d differing bytes", coll, len(val))
	}
	s.items[k] = val
	return nil
}

// Get fetches one item.
func (s *Store) Get(coll string, key []byte) (val []byte, found bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	val, found = s.items[storeKey(coll, key)]
	return val, found
}

// Len is the item count (the heartbeat's Stored probe).
func (s *Store) Len() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return uint64(len(s.items))
}

// ServeWorker runs one shard worker: listen on the Unix socket, serve
// coordinator connections one at a time (the coordinator holds exactly one
// connection per shard; a new accept means it reconnected, so the previous
// connection is dead). Returns only on listener failure — the normal exits
// are process-level: SIGKILL from a chaos fault, or the stdin-EOF watcher
// when the coordinator goes away.
func ServeWorker(socketPath string) error {
	// A previous incarnation of this shard (pre-respawn) leaves its socket
	// file behind; remove it or Listen fails with EADDRINUSE.
	_ = os.Remove(socketPath)
	ln, err := net.Listen("unix", socketPath)
	if err != nil {
		return fmt.Errorf("dist: worker listen %s: %w", socketPath, err)
	}
	defer ln.Close()
	store := NewStore()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return fmt.Errorf("dist: worker accept: %w", err)
		}
		serveConn(conn, store)
	}
}

// serveConn answers frames until the connection dies. Request handling is
// strictly sequential per connection: the coordinator pipelines multiple
// in-flight requests, but each carries its own header sequence number and
// the coordinator demuxes replies by seq, so in-order sequential answers
// are sufficient — and keep the worker trivially race-free.
func serveConn(conn net.Conn, store *Store) {
	defer conn.Close()
	for {
		mt, seq, payload, _, err := ReadFrame(conn)
		if err != nil {
			return
		}
		var reply []byte
		switch mt {
		case MsgPut:
			var m PutMsg
			var ack AckMsg
			if err := DecodePayload(payload, &m); err != nil {
				ack.Err = err.Error()
			} else if err := store.Put(m.Coll, m.Key, m.Val); err != nil {
				ack.Err = err.Error()
			}
			reply, err = EncodeFrame(MsgAck, seq, ack)
		case MsgPutBatch:
			// One ack for the whole batch: empty when every op landed (or
			// was an idempotent byte-identical replay), else the first
			// failing op's error. Ops before a failure stay stored — any
			// error here is terminal for the coordinator anyway.
			var m PutBatchMsg
			var ack AckMsg
			if err := DecodePayload(payload, &m); err != nil {
				ack.Err = err.Error()
			} else {
				for i := range m.Ops {
					op := &m.Ops[i]
					if err := store.Put(op.Coll, op.Key, op.Val); err != nil {
						ack.Err = err.Error()
						break
					}
				}
			}
			reply, err = EncodeFrame(MsgAck, seq, ack)
		case MsgGet:
			var m GetMsg
			var item ItemMsg
			if derr := DecodePayload(payload, &m); derr != nil {
				item.Err = derr.Error()
			} else {
				item.Val, item.Found = store.Get(m.Coll, m.Key)
			}
			reply, err = EncodeFrame(MsgItem, seq, item)
		case MsgGetBatch:
			var m GetBatchMsg
			var batch ItemBatchMsg
			if derr := DecodePayload(payload, &m); derr != nil {
				// Answer every slot with the decode error so the reply
				// still pairs Items[i] with Gets[i] by position.
				batch.Items = []ItemMsg{{Err: derr.Error()}}
			} else {
				batch.Items = make([]ItemMsg, len(m.Gets))
				for i := range m.Gets {
					it := &batch.Items[i]
					it.Val, it.Found = store.Get(m.Gets[i].Coll, m.Gets[i].Key)
				}
			}
			reply, err = EncodeFrame(MsgItemBatch, seq, batch)
		case MsgPing:
			reply, err = EncodeFrame(MsgPong, seq, PongMsg{Stored: store.Len()})
		default:
			// Unknown type: the stream is corrupt; drop the connection and
			// let the coordinator's retry ladder reconnect.
			return
		}
		if err != nil {
			return
		}
		if _, err := conn.Write(reply); err != nil {
			return
		}
	}
}

// MaybeWorkerChild turns the current process into a shard worker and never
// returns if EnvWorkerSocket is set; otherwise it is a no-op. Every binary
// the coordinator may self-exec (dpbench, the dist test binary) must call
// it before doing anything else.
//
// The worker exits when its stdin reaches EOF: the coordinator holds the
// write end of the pipe for the worker's whole life, so coordinator death —
// graceful or not — reaps every worker and no orphan can outlive a run.
func MaybeWorkerChild() {
	socket := os.Getenv(EnvWorkerSocket)
	if socket == "" {
		return
	}
	go func() {
		_, _ = io.Copy(io.Discard, os.Stdin)
		os.Exit(0)
	}()
	if err := ServeWorker(socket); err != nil {
		fmt.Fprintf(os.Stderr, "dpflow worker: %v\n", err)
		os.Exit(1)
	}
	os.Exit(0)
}
