package dist

import "hash/fnv"

// ShardOf maps one (collection, encoded key) pair to its owning shard by
// FNV-64a over the collection name, a NUL separator and the key bytes. The
// separator keeps ("ab", "c") and ("a", "bc") distinct; hashing the
// collection in spreads collections whose key spaces coincide (every GE
// quadrant collection uses the same ItemKey type) across different shards.
//
// Determinism matters more than balance here: the same item must map to the
// same shard on every call — including replay after a respawn — which holds
// because EncodeValue is a pure function of the key.
func ShardOf(coll string, key []byte, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(coll))
	h.Write([]byte{0})
	h.Write(key)
	return int(h.Sum64() % uint64(shards))
}

// storeKey is the worker store's (and put log's) map key for one item —
// the same coll+NUL+key bytes the shard map hashes.
func storeKey(coll string, key []byte) string {
	return coll + "\x00" + string(key)
}
