package dist

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"dpflow/internal/chaos"
	"dpflow/internal/cnc"
)

// ErrShardDegraded reports that a shard exhausted its recovery ladder and
// the coordinator now serves its items locally from the write-ahead put
// log — the graceful-degradation terminal state, not a failure: a fully
// degraded run is exactly single-process execution.
var ErrShardDegraded = errors.New("dist: shard degraded to local serving")

// errClosed marks operations attempted after Coordinator.Close. It gates
// the recovery ladder too: a retrying request that races Close must not
// respawn a worker the closed coordinator would never reap.
var errClosed = errors.New("dist: coordinator closed")

// Options configures a Coordinator.
type Options struct {
	// Shards is the number of worker processes (default 2).
	Shards int
	// SocketDir hosts the per-shard Unix sockets; empty means a fresh
	// temporary directory owned (and removed) by the coordinator.
	SocketDir string
	// RequestTimeout is the per-request deadline: one full retry cycle
	// (attempts + backoff) must land inside it before the ladder escalates
	// to reconnect/respawn (default 2s).
	RequestTimeout time.Duration
	// AttemptTimeout bounds one send+receive attempt inside the cycle, so
	// a dropped response costs one attempt, not the whole deadline
	// (default RequestTimeout/4, floor 20ms).
	AttemptTimeout time.Duration
	// Backoff is the retry schedule between attempts.
	Backoff Backoff
	// HeartbeatEvery is the health-check period; 0 means 250ms, negative
	// disables heartbeats.
	HeartbeatEvery time.Duration
	// MaxRespawns is the per-shard respawn budget before the shard
	// degrades to local serving. Zero means the default (3); negative
	// means no respawns at all — a lost worker degrades immediately (the
	// degradation tests' configuration).
	MaxRespawns int
	// BatchOps caps the per-shard outgoing put buffer in operations: the
	// buffer flushes as one MsgPutBatch frame when it holds this many.
	// Zero means the default (64); negative means 1 (every put flushes
	// its own frame — the pre-batching wire behaviour, for comparison).
	BatchOps int
	// BatchBytes caps the same buffer in payload bytes (default 256KB).
	BatchBytes int
	// FlushEvery bounds how long a buffered put may wait for its frame:
	// a background flusher sweeps all shards at this period, so trickle
	// traffic still reaches the workers promptly between size-triggered
	// flushes. Zero means the default (2ms); negative disables the
	// sweeper (flushes then happen only on size, pre-get barriers, and
	// the end-of-run Flush).
	FlushEvery time.Duration
	// VerifySample controls verified-read sampling: gets are served from
	// the coordinator's write-ahead log (read-your-writes), and one in
	// VerifySample of them is also fetched from the shard owner and
	// byte-compared. Zero means the default (16); 1 verifies every read
	// (the chaos/CI configuration — every get proves the remote data
	// plane); negative disables verification entirely.
	VerifySample int
	// Seed seeds the backoff jitter (default 1).
	Seed int64
	// Spawn overrides how a shard worker process is created (tests);
	// default is self-exec with EnvWorkerSocket set (MaybeWorkerChild).
	Spawn func(socketPath string) (*exec.Cmd, error)
	// Clock overrides time for the retry engine (tests); default wall.
	Clock Clock
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 2
	}
	if o.MaxRespawns == 0 {
		o.MaxRespawns = 3
	} else if o.MaxRespawns < 0 {
		o.MaxRespawns = 0
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 2 * time.Second
	}
	if o.AttemptTimeout <= 0 {
		o.AttemptTimeout = o.RequestTimeout / 4
	}
	if o.AttemptTimeout < 20*time.Millisecond {
		o.AttemptTimeout = 20 * time.Millisecond
	}
	if o.HeartbeatEvery == 0 {
		o.HeartbeatEvery = 250 * time.Millisecond
	}
	if o.BatchOps == 0 {
		o.BatchOps = 64
	} else if o.BatchOps < 0 {
		o.BatchOps = 1
	}
	if o.BatchBytes <= 0 {
		o.BatchBytes = 256 << 10
	}
	if o.FlushEvery == 0 {
		o.FlushEvery = 2 * time.Millisecond
	}
	if o.VerifySample == 0 {
		o.VerifySample = 16
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Clock == nil {
		o.Clock = RealClock
	}
	return o
}

// Counters is the coordinator's observable activity, all monotone.
type Counters struct {
	// RemotePuts / RemoteGets are successfully completed remote item
	// operations (batched puts count one per op, not per frame).
	RemotePuts, RemoteGets atomic.Uint64
	// PutFrames counts the MsgPutBatch frames that carried those puts —
	// the denominator of the puts-per-frame batching ratio.
	PutFrames atomic.Uint64
	// LocalGets counts gets served from the write-ahead log without a
	// remote cross-check; VerifiedReads counts the sampled gets that were
	// also fetched from the shard owner and byte-compared (each such get
	// increments RemoteGets too).
	LocalGets, VerifiedReads atomic.Uint64
	// Retries counts re-attempts inside request deadlines.
	Retries atomic.Uint64
	// Respawns counts worker processes relaunched by the supervisor,
	// ReplayedPuts the log entries re-delivered to them.
	Respawns, ReplayedPuts atomic.Uint64
	// Degradations counts shards that exhausted recovery and fell back to
	// local serving; DegradedGets the gets served from the local log.
	Degradations, DegradedGets atomic.Uint64
	// RaceRetries counts gets re-polled because they raced their
	// producer's in-flight mirror (see graphBackend.Get).
	RaceRetries atomic.Uint64
	// BytesOut / BytesIn are frame bytes across all sockets.
	BytesOut, BytesIn atomic.Uint64
	// Heartbeats / HeartbeatFailures count health probes sent and probes
	// that found a shard unhealthy.
	Heartbeats, HeartbeatFailures atomic.Uint64
}

// CounterSnapshot is a plain-value copy of Counters for reports.
type CounterSnapshot struct {
	RemotePuts, RemoteGets        uint64
	PutFrames                     uint64
	LocalGets, VerifiedReads      uint64
	Retries                       uint64
	Respawns, ReplayedPuts        uint64
	Degradations, DegradedGets    uint64
	RaceRetries                   uint64
	BytesOut, BytesIn             uint64
	Heartbeats, HeartbeatFailures uint64
}

// Snapshot copies the counters.
func (c *Counters) Snapshot() CounterSnapshot {
	return CounterSnapshot{
		RemotePuts: c.RemotePuts.Load(), RemoteGets: c.RemoteGets.Load(),
		PutFrames: c.PutFrames.Load(),
		LocalGets: c.LocalGets.Load(), VerifiedReads: c.VerifiedReads.Load(),
		Retries:  c.Retries.Load(),
		Respawns: c.Respawns.Load(), ReplayedPuts: c.ReplayedPuts.Load(),
		Degradations: c.Degradations.Load(), DegradedGets: c.DegradedGets.Load(),
		RaceRetries: c.RaceRetries.Load(),
		BytesOut:    c.BytesOut.Load(), BytesIn: c.BytesIn.Load(),
		Heartbeats: c.Heartbeats.Load(), HeartbeatFailures: c.HeartbeatFailures.Load(),
	}
}

// pendReply is what the shard's read loop hands an in-flight request.
type pendReply struct {
	payload []byte
	err     error
}

// pendEntry is one in-flight request awaiting its demuxed reply. gen pins
// it to the connection generation it was sent on, so a dying connection
// fails exactly the requests that were riding it.
type pendEntry struct {
	ch  chan pendReply
	gen uint64
}

// shard is the coordinator's view of one worker process.
type shard struct {
	idx    int
	socket string

	// mu guards the connection lifecycle (conn, gen) and serialises the
	// recovery ladder; requests no longer hold it across the wire — the
	// transport is pipelined, demuxed by header sequence number.
	mu       sync.Mutex
	conn     net.Conn
	gen      uint64
	respawns int
	retrier  *Retrier

	// seq issues globally unique request sequence numbers for this shard.
	seq atomic.Uint64

	// sendMu serialises frame writes on the current connection (reads are
	// owned by the single readLoop goroutine per connection).
	sendMu sync.Mutex

	// pendMu guards pending, the seq -> in-flight-request demux table.
	pendMu  sync.Mutex
	pending map[uint64]pendEntry

	// inflight gauges requests inside rpc — the heartbeat's "is traffic
	// already probing this shard" check.
	inflight atomic.Int64

	degraded atomic.Bool

	// pbufMu guards the outgoing put buffer; flushMu serialises flushes
	// so each shard has at most one MsgPutBatch frame in flight and
	// batches leave in enqueue order.
	pbufMu    sync.Mutex
	pbuf      []PutMsg
	pbufBytes int
	flushMu   sync.Mutex

	// procMu guards the process handle (KillWorker and the supervisor
	// race by design).
	procMu   sync.Mutex
	cmd      *exec.Cmd
	stdin    io.WriteCloser
	waitDone chan struct{}

	// logMu guards the write-ahead put log.
	logMu  sync.Mutex
	log    []PutMsg
	logIdx map[string]int
}

type frameHookHolder struct {
	fn func(dir chaos.Dir, shard int, msgType string, size int) chaos.Verdict
}

// Coordinator owns the worker fleet and implements cnc.ItemBackend (via
// Attach) and chaos.TransportControl.
type Coordinator struct {
	opts     Options
	dir      string
	ownsDir  bool
	shards   []*shard
	counters Counters
	hook     atomic.Pointer[frameHookHolder]
	graphSeq atomic.Uint64
	closed   atomic.Bool
	hbStop   chan struct{}
	hbDone   chan struct{}
	flStop   chan struct{}
	flDone   chan struct{}

	// termMu/termErr latch the first terminal data-plane error (a refused
	// put in an asynchronous flush, a verified-read mismatch): every later
	// backend operation returns it, so an error detected between a step's
	// put and the run's end still fails the run.
	termMu  sync.Mutex
	termErr error
}

// NewCoordinator spawns the worker fleet and connects to every shard. On
// any startup failure the already-spawned workers are reaped before the
// error returns.
func NewCoordinator(opts Options) (*Coordinator, error) {
	opts = opts.withDefaults()
	c := &Coordinator{opts: opts, dir: opts.SocketDir}
	if c.dir == "" {
		dir, err := os.MkdirTemp("", "dpflow-dist-*")
		if err != nil {
			return nil, fmt.Errorf("dist: socket dir: %w", err)
		}
		c.dir, c.ownsDir = dir, true
	}
	for i := 0; i < opts.Shards; i++ {
		sh := &shard{
			idx:     i,
			socket:  filepath.Join(c.dir, fmt.Sprintf("shard-%d.sock", i)),
			logIdx:  make(map[string]int),
			pending: make(map[uint64]pendEntry),
		}
		sh.retrier = NewRetrier(opts.Backoff, opts.Clock, rand.New(rand.NewSource(opts.Seed*31+int64(i))))
		sh.retrier.OnRetry = func() { c.counters.Retries.Add(1) }
		c.shards = append(c.shards, sh)
	}
	for _, sh := range c.shards {
		if err := c.spawnWorker(sh); err != nil {
			c.Close()
			return nil, err
		}
		conn, err := c.dial(sh, time.Now().Add(5*time.Second))
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("dist: connect shard %d: %w", sh.idx, err)
		}
		c.publishConnLocked(sh, conn)
	}
	if opts.HeartbeatEvery > 0 {
		c.hbStop = make(chan struct{})
		c.hbDone = make(chan struct{})
		go c.heartbeatLoop()
	}
	if opts.FlushEvery > 0 {
		c.flStop = make(chan struct{})
		c.flDone = make(chan struct{})
		go c.flushLoop()
	}
	return c, nil
}

// setTerm latches the first terminal data-plane error.
func (c *Coordinator) setTerm(err error) {
	c.termMu.Lock()
	if c.termErr == nil {
		c.termErr = err
	}
	c.termMu.Unlock()
}

func (c *Coordinator) termError() error {
	c.termMu.Lock()
	defer c.termMu.Unlock()
	return c.termErr
}

// spawnWorker launches (or relaunches) the shard's process and installs
// the stdin lifeline: the coordinator holds the pipe's write end for the
// worker's whole life, so coordinator death reaps every worker.
func (c *Coordinator) spawnWorker(sh *shard) error {
	var cmd *exec.Cmd
	var err error
	if c.opts.Spawn != nil {
		cmd, err = c.opts.Spawn(sh.socket)
	} else {
		var exe string
		exe, err = os.Executable()
		if err == nil {
			cmd = exec.Command(exe)
			cmd.Env = append(os.Environ(), EnvWorkerSocket+"="+sh.socket)
		}
	}
	if err != nil {
		return fmt.Errorf("dist: spawn shard %d: %w", sh.idx, err)
	}
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return fmt.Errorf("dist: spawn shard %d: stdin: %w", sh.idx, err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("dist: spawn shard %d: %w", sh.idx, err)
	}
	waitDone := make(chan struct{})
	go func() { _ = cmd.Wait(); close(waitDone) }()
	sh.procMu.Lock()
	sh.cmd, sh.stdin, sh.waitDone = cmd, stdin, waitDone
	sh.procMu.Unlock()
	return nil
}

// dial connects to the shard's socket, retrying while the (possibly
// just-spawned) worker comes up.
func (c *Coordinator) dial(sh *shard, deadline time.Time) (net.Conn, error) {
	var lastErr error
	for {
		conn, err := net.DialTimeout("unix", sh.socket, 200*time.Millisecond)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		if time.Now().After(deadline) {
			return nil, lastErr
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// alive reports whether the shard's current worker process is running.
func (c *Coordinator) alive(sh *shard) bool {
	sh.procMu.Lock()
	done := sh.waitDone
	sh.procMu.Unlock()
	if done == nil {
		return false
	}
	select {
	case <-done:
		return false
	default:
		return true
	}
}

// killWorker force-terminates the shard's process and reaps it.
func (c *Coordinator) killWorker(sh *shard) {
	sh.procMu.Lock()
	cmd, stdin, done := sh.cmd, sh.stdin, sh.waitDone
	sh.cmd, sh.stdin, sh.waitDone = nil, nil, nil
	sh.procMu.Unlock()
	if stdin != nil {
		_ = stdin.Close()
	}
	if cmd == nil {
		return
	}
	if done != nil {
		select {
		case <-done: // already exited, Wait already reaped it
			return
		default:
		}
	}
	if cmd.Process != nil {
		_ = cmd.Process.Kill()
	}
	if done != nil {
		<-done // Kill guarantees exit; Wait (in spawnWorker's goroutine) reaps
	}
}

// publishConnLocked installs conn as the shard's live connection and starts
// its read loop. Callers hold sh.mu (or, during NewCoordinator, have
// exclusive access).
func (c *Coordinator) publishConnLocked(sh *shard, conn net.Conn) {
	sh.gen++
	sh.conn = conn
	go c.readLoop(sh, conn, sh.gen)
}

func (c *Coordinator) dropConnLocked(sh *shard) {
	if sh.conn != nil {
		_ = sh.conn.Close() // readLoop notices and fails this gen's pending
		sh.conn = nil
	}
}

func (c *Coordinator) dropConn(sh *shard) {
	sh.mu.Lock()
	c.dropConnLocked(sh)
	sh.mu.Unlock()
}

// ensureConn returns the shard's live connection (dialling one if needed)
// and its generation. It refuses after Close: a redial there would talk to
// a worker the coordinator is about to reap — or respawn one it never will.
func (c *Coordinator) ensureConn(sh *shard, deadline time.Time) (net.Conn, uint64, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if c.closed.Load() {
		return nil, 0, errClosed
	}
	if sh.conn != nil {
		return sh.conn, sh.gen, nil
	}
	conn, err := c.dial(sh, deadline)
	if err != nil {
		return nil, 0, fmt.Errorf("dist: shard %d dial: %w", sh.idx, err)
	}
	c.publishConnLocked(sh, conn)
	return sh.conn, sh.gen, nil
}

// connLost tears down a dead connection: unpublish it (if still current)
// and fail every pending request that was riding it. Requests already sent
// on a newer connection keep waiting — their gen differs.
func (c *Coordinator) connLost(sh *shard, conn net.Conn, gen uint64, err error) {
	_ = conn.Close()
	sh.mu.Lock()
	if sh.conn == conn {
		sh.conn = nil
	}
	sh.mu.Unlock()
	sh.pendMu.Lock()
	for seq, e := range sh.pending {
		if e.gen == gen {
			delete(sh.pending, seq)
			e.ch <- pendReply{err: err}
		}
	}
	sh.pendMu.Unlock()
}

func (c *Coordinator) frameVerdict(dir chaos.Dir, shardIdx int, mt byte, size int) chaos.Verdict {
	h := c.hook.Load()
	if h == nil || h.fn == nil {
		return chaos.Verdict{}
	}
	return h.fn(dir, shardIdx, MsgName(mt), size)
}

// readLoop is the single reader of one connection: it demuxes replies to
// their in-flight requests by header sequence number, applying receive-side
// fault verdicts per frame. Replies whose request already gave up (stale
// seq) are discarded undecoded. On any read error the connection is dead
// and every request riding it fails immediately instead of waiting out its
// attempt timeout.
func (c *Coordinator) readLoop(sh *shard, conn net.Conn, gen uint64) {
	for {
		mt, seq, pl, wire, err := ReadFrame(conn)
		if err != nil {
			c.connLost(sh, conn, gen, fmt.Errorf("dist: shard %d read: %w", sh.idx, err))
			return
		}
		c.counters.BytesIn.Add(uint64(wire))
		v := c.frameVerdict(chaos.DirRecv, sh.idx, mt, wire)
		if v.Delay > 0 {
			time.Sleep(v.Delay)
		}
		if v.Reset {
			c.connLost(sh, conn, gen, fmt.Errorf("dist: shard %d: injected connection reset (recv %s)", sh.idx, MsgName(mt)))
			return
		}
		if v.Drop {
			continue // response lost in flight; its request times out
		}
		sh.pendMu.Lock()
		e, ok := sh.pending[seq]
		if ok {
			delete(sh.pending, seq)
		}
		sh.pendMu.Unlock()
		if ok {
			e.ch <- pendReply{payload: pl}
		}
	}
}

// attempt performs one pipelined send+await attempt: register a fresh
// sequence number, write the frame (send-side fault verdicts applied), and
// wait for the read loop to demux the reply — without excluding other
// requests to the same shard, which is what lets gets overlap puts and each
// other on one connection.
func (c *Coordinator) attempt(sh *shard, mt byte, payload any, cycleDeadline time.Time) ([]byte, error) {
	attemptDeadline := time.Now().Add(c.opts.AttemptTimeout)
	if attemptDeadline.After(cycleDeadline) {
		attemptDeadline = cycleDeadline
	}
	conn, gen, err := c.ensureConn(sh, attemptDeadline)
	if err != nil {
		return nil, err
	}
	seq := sh.seq.Add(1)
	frame, err := EncodeFrame(mt, seq, payload)
	if err != nil {
		return nil, err
	}
	v := c.frameVerdict(chaos.DirSend, sh.idx, mt, len(frame))
	if v.Delay > 0 {
		time.Sleep(v.Delay)
	}
	if v.Reset {
		c.dropConn(sh)
		return nil, fmt.Errorf("dist: shard %d: injected connection reset (send %s)", sh.idx, MsgName(mt))
	}
	ch := make(chan pendReply, 1)
	sh.pendMu.Lock()
	sh.pending[seq] = pendEntry{ch: ch, gen: gen}
	sh.pendMu.Unlock()
	unregister := func() {
		sh.pendMu.Lock()
		delete(sh.pending, seq)
		sh.pendMu.Unlock()
	}
	if v.Drop {
		// Request lost in flight: skip the write and wait out the attempt,
		// exactly as a real loss would play out.
	} else {
		sh.sendMu.Lock()
		_ = conn.SetWriteDeadline(attemptDeadline)
		_, werr := conn.Write(frame)
		sh.sendMu.Unlock()
		if werr != nil {
			unregister()
			c.dropConn(sh)
			return nil, fmt.Errorf("dist: shard %d write %s: %w", sh.idx, MsgName(mt), werr)
		}
		c.counters.BytesOut.Add(uint64(len(frame)))
	}
	timer := time.NewTimer(time.Until(attemptDeadline))
	defer timer.Stop()
	select {
	case r := <-ch:
		if r.err != nil {
			return nil, r.err
		}
		return r.payload, nil
	case <-timer.C:
		unregister()
		return nil, fmt.Errorf("dist: shard %d %s: attempt timed out", sh.idx, MsgName(mt))
	}
}

// rpc runs one request through the full robustness ladder:
//
//	retry+backoff within the request deadline
//	-> reconnect (live worker, fresh deadline)
//	-> respawn + replay the write-ahead log (dead or unresponsive worker)
//	-> degrade the shard to local serving (respawn budget exhausted)
//
// and returns ErrShardDegraded only from the last rung. Requests are
// pipelined: any number may be in flight per shard, so only the recovery
// rungs serialise (under sh.mu, deduplicated by respawn count — concurrent
// failing requests trigger one respawn, not one each).
func (c *Coordinator) rpc(sh *shard, mt byte, payload any) ([]byte, error) {
	sh.inflight.Add(1)
	defer sh.inflight.Add(-1)
	for cycle := 0; ; cycle++ {
		if c.closed.Load() {
			return nil, errClosed
		}
		if sh.degraded.Load() {
			return nil, ErrShardDegraded
		}
		sh.mu.Lock()
		sawRespawns := sh.respawns
		sh.mu.Unlock()
		deadline := c.opts.Clock.Now().Add(c.opts.RequestTimeout)
		var out []byte
		err := sh.retrier.Do(deadline, func() error {
			pl, xerr := c.attempt(sh, mt, payload, deadline)
			if xerr == nil {
				out = pl
			}
			return xerr
		})
		if err == nil {
			return out, nil
		}
		if errors.Is(err, errClosed) {
			return nil, err
		}
		c.dropConn(sh)
		if cycle == 0 && c.alive(sh) {
			continue // reconnect rung: live worker, fresh deadline
		}
		if rerr := c.recoverShard(sh, sawRespawns); rerr != nil {
			return nil, rerr
		}
	}
}

// recoverShard runs the respawn rung, serialised per shard. sawRespawns is
// the respawn count the failing request observed before its cycle: if it
// moved, another request already respawned the worker on our behalf, so
// retry instead of burning a second budget slot on one failure.
func (c *Coordinator) recoverShard(sh *shard, sawRespawns int) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if c.closed.Load() {
		return errClosed
	}
	if sh.degraded.Load() {
		return ErrShardDegraded
	}
	if sh.respawns != sawRespawns {
		return nil // a concurrent request already ran this rung
	}
	for {
		rerr := c.respawnAndReplayLocked(sh)
		if rerr == nil {
			return nil
		}
		if c.closed.Load() {
			return errClosed
		}
		if sh.respawns >= c.opts.MaxRespawns {
			c.degradeLocked(sh, rerr)
			return ErrShardDegraded
		}
	}
}

// syncExchange performs one synchronous request/response on a private,
// not-yet-published connection (the replay path: sh.mu is held, no read
// loop exists for conn yet). Fault verdicts apply — replay traffic is as
// chaos-targetable as live traffic.
func (c *Coordinator) syncExchange(sh *shard, conn net.Conn, mt byte, seq uint64, payload any, deadline time.Time) ([]byte, error) {
	frame, err := EncodeFrame(mt, seq, payload)
	if err != nil {
		return nil, err
	}
	v := c.frameVerdict(chaos.DirSend, sh.idx, mt, len(frame))
	if v.Delay > 0 {
		time.Sleep(v.Delay)
	}
	switch {
	case v.Reset:
		return nil, fmt.Errorf("dist: shard %d: injected connection reset (send %s)", sh.idx, MsgName(mt))
	case v.Drop:
		// Request lost in flight: the read below times out.
	default:
		_ = conn.SetWriteDeadline(deadline)
		if _, err := conn.Write(frame); err != nil {
			return nil, fmt.Errorf("dist: shard %d write %s: %w", sh.idx, MsgName(mt), err)
		}
		c.counters.BytesOut.Add(uint64(len(frame)))
	}
	for {
		_ = conn.SetReadDeadline(deadline)
		rmt, rseq, pl, wire, err := ReadFrame(conn)
		if err != nil {
			return nil, fmt.Errorf("dist: shard %d read: %w", sh.idx, err)
		}
		c.counters.BytesIn.Add(uint64(wire))
		rv := c.frameVerdict(chaos.DirRecv, sh.idx, rmt, wire)
		if rv.Delay > 0 {
			time.Sleep(rv.Delay)
		}
		if rv.Reset {
			return nil, fmt.Errorf("dist: shard %d: injected connection reset (recv %s)", sh.idx, MsgName(rmt))
		}
		if rv.Drop {
			continue // response lost in flight: keep waiting for one that isn't
		}
		if rseq != seq {
			continue // stale response to an earlier request on this conn
		}
		return pl, nil
	}
}

// replayExchange wraps syncExchange in the retry policy, redialling the
// (possibly *conn=nil) connection as needed. Used only under sh.mu by the
// respawn rung.
func (c *Coordinator) replayExchange(sh *shard, conn *net.Conn, mt byte, payload any) ([]byte, error) {
	seq := sh.seq.Add(1)
	deadline := c.opts.Clock.Now().Add(c.opts.RequestTimeout)
	var pl []byte
	err := sh.retrier.Do(deadline, func() error {
		if *conn == nil {
			nc, derr := c.dial(sh, time.Now().Add(c.opts.AttemptTimeout))
			if derr != nil {
				return fmt.Errorf("dist: shard %d dial: %w", sh.idx, derr)
			}
			*conn = nc
		}
		attemptDeadline := time.Now().Add(c.opts.AttemptTimeout)
		if attemptDeadline.After(deadline) {
			attemptDeadline = deadline
		}
		p, xerr := c.syncExchange(sh, *conn, mt, seq, payload, attemptDeadline)
		if xerr != nil {
			_ = (*conn).Close()
			*conn = nil
			return xerr
		}
		pl = p
		return nil
	})
	return pl, err
}

// replayAuditSize bounds the post-replay cross-check: up to this many
// restored items, spread evenly across the log, are fetched back in one
// MsgGetBatch and byte-compared against the write-ahead log.
const replayAuditSize = 16

// respawnAndReplayLocked relaunches the shard's worker and replays the
// write-ahead put log into its empty store — in MsgPutBatch chunks, not one
// frame per item, so recovery of a large shard costs O(log/batch) round
// trips. Replay is safe because items are write-once: the worker accepts
// byte-identical duplicates, so a put that was stored but whose ack was
// lost replays harmlessly. After replay, a sampled MsgGetBatch audit
// fetches restored items back and byte-compares them against the log; a
// mismatch fails this rung (the ladder respawns again or degrades — the
// log stays authoritative either way). The fresh connection is published
// (read loop started) only after replay and audit succeed.
func (c *Coordinator) respawnAndReplayLocked(sh *shard) error {
	if sh.respawns >= c.opts.MaxRespawns {
		return fmt.Errorf("dist: shard %d respawn budget (%d) exhausted", sh.idx, c.opts.MaxRespawns)
	}
	sh.respawns++
	c.counters.Respawns.Add(1)
	c.killWorker(sh)
	c.dropConnLocked(sh)
	if err := c.spawnWorker(sh); err != nil {
		return err
	}
	conn, err := c.dial(sh, time.Now().Add(5*time.Second))
	if err != nil {
		return fmt.Errorf("dist: shard %d reconnect after respawn: %w", sh.idx, err)
	}
	fail := func(err error) error {
		if conn != nil {
			_ = conn.Close()
		}
		return err
	}
	sh.logMu.Lock()
	entries := append([]PutMsg(nil), sh.log...)
	sh.logMu.Unlock()
	for start := 0; start < len(entries); {
		end := start
		batchBytes := 0
		for end < len(entries) && end-start < c.opts.BatchOps && batchBytes < c.opts.BatchBytes {
			batchBytes += len(entries[end].Coll) + len(entries[end].Key) + len(entries[end].Val)
			end++
		}
		pl, err := c.replayExchange(sh, &conn, MsgPutBatch, PutBatchMsg{Ops: entries[start:end]})
		if err != nil {
			return fail(fmt.Errorf("dist: shard %d replay puts %d-%d/%d: %w", sh.idx, start+1, end, len(entries), err))
		}
		var ack AckMsg
		if err := DecodePayload(pl, &ack); err != nil {
			return fail(err)
		}
		if ack.Err != "" {
			return fail(fmt.Errorf("dist: shard %d replay refused: %s", sh.idx, ack.Err))
		}
		c.counters.ReplayedPuts.Add(uint64(end - start))
		start = end
	}
	if len(entries) > 0 {
		stride := len(entries) / replayAuditSize
		if stride < 1 {
			stride = 1
		}
		var idxs []int
		for i := 0; i < len(entries) && len(idxs) < replayAuditSize; i += stride {
			idxs = append(idxs, i)
		}
		gets := make([]GetMsg, len(idxs))
		for j, i := range idxs {
			gets[j] = GetMsg{Coll: entries[i].Coll, Key: entries[i].Key}
		}
		pl, err := c.replayExchange(sh, &conn, MsgGetBatch, GetBatchMsg{Gets: gets})
		if err != nil {
			return fail(fmt.Errorf("dist: shard %d replay audit: %w", sh.idx, err))
		}
		var batch ItemBatchMsg
		if err := DecodePayload(pl, &batch); err != nil {
			return fail(err)
		}
		if len(batch.Items) != len(idxs) {
			return fail(fmt.Errorf("dist: shard %d replay audit: %d answers for %d gets", sh.idx, len(batch.Items), len(idxs)))
		}
		for j, i := range idxs {
			it := &batch.Items[j]
			if it.Err != "" {
				return fail(fmt.Errorf("dist: shard %d replay audit: %s", sh.idx, it.Err))
			}
			if !it.Found || !bytes.Equal(it.Val, entries[i].Val) {
				return fail(fmt.Errorf("dist: shard %d replay audit: restored %s differs from the put log", sh.idx, entries[i].Coll))
			}
		}
	}
	c.publishConnLocked(sh, conn)
	return nil
}

// degradeLocked retires the shard: its items are served from the
// coordinator's log from now on. The worker (if any) is reaped so a
// degraded run can never leak a process. Buffered puts are discarded — the
// write-ahead log already holds every one of them, and the log is now the
// serving store.
func (c *Coordinator) degradeLocked(sh *shard, cause error) {
	if sh.degraded.Swap(true) {
		return
	}
	c.counters.Degradations.Add(1)
	c.killWorker(sh)
	c.dropConnLocked(sh)
	sh.pbufMu.Lock()
	sh.pbuf, sh.pbufBytes = nil, 0
	sh.pbufMu.Unlock()
	_ = cause // recorded implicitly: Degradations counts, callers see ErrShardDegraded
}

// logPut appends one put to the shard's write-ahead log (before any
// network I/O, so replay and degraded serving always see it). dup reports
// a byte-identical duplicate — already logged, and already on its way to
// (or at) the worker, so the caller must not enqueue it again.
func (c *Coordinator) logPut(sh *shard, m PutMsg) (dup bool, err error) {
	k := storeKey(m.Coll, m.Key)
	sh.logMu.Lock()
	defer sh.logMu.Unlock()
	if i, prev := sh.logIdx[k]; prev {
		if bytes.Equal(sh.log[i].Val, m.Val) {
			return true, nil
		}
		return false, fmt.Errorf("dist: write-once violation in put log: %s re-put with differing bytes", m.Coll)
	}
	sh.logIdx[k] = len(sh.log)
	sh.log = append(sh.log, m)
	return false, nil
}

func (c *Coordinator) logLookup(sh *shard, coll string, key []byte) ([]byte, bool) {
	sh.logMu.Lock()
	defer sh.logMu.Unlock()
	i, ok := sh.logIdx[storeKey(coll, key)]
	if !ok {
		return nil, false
	}
	return sh.log[i].Val, true
}

// enqueuePut appends one already-logged put to the shard's outgoing
// buffer, reporting whether the buffer tripped a size threshold and wants
// an inline flush.
func (c *Coordinator) enqueuePut(sh *shard, m PutMsg) (full bool) {
	sh.pbufMu.Lock()
	sh.pbuf = append(sh.pbuf, m)
	sh.pbufBytes += len(m.Coll) + len(m.Key) + len(m.Val)
	full = len(sh.pbuf) >= c.opts.BatchOps || sh.pbufBytes >= c.opts.BatchBytes
	sh.pbufMu.Unlock()
	return full
}

// flushShard sends the shard's buffered puts as one MsgPutBatch frame and
// waits for the ack. Serialised per shard (flushMu) so batches leave in
// enqueue order with at most one in flight; puts arriving meanwhile simply
// buffer for the next frame. A degraded shard absorbs the flush silently —
// the write-ahead log holds every buffered put and is now the serving
// store. Any worker refusal is terminal (latched via setTerm).
func (c *Coordinator) flushShard(sh *shard) error {
	sh.flushMu.Lock()
	defer sh.flushMu.Unlock()
	sh.pbufMu.Lock()
	ops := sh.pbuf
	sh.pbuf, sh.pbufBytes = nil, 0
	sh.pbufMu.Unlock()
	if len(ops) == 0 {
		return nil
	}
	if sh.degraded.Load() {
		return nil
	}
	pl, err := c.rpc(sh, MsgPutBatch, PutBatchMsg{Ops: ops})
	if errors.Is(err, ErrShardDegraded) {
		return nil // the log holds them; gets will be served locally
	}
	if err != nil {
		c.setTerm(err)
		return err
	}
	var ack AckMsg
	if err := DecodePayload(pl, &ack); err != nil {
		c.setTerm(err)
		return err
	}
	if ack.Err != "" {
		err := errors.New(ack.Err)
		c.setTerm(err)
		return err
	}
	c.counters.RemotePuts.Add(uint64(len(ops)))
	c.counters.PutFrames.Add(1)
	return nil
}

// flushIfPending is the pre-verified-read barrier, made precise: the read
// needs its own mirror on the worker, so flush only when that key still
// sits in the outgoing buffer, or when a flush is mid-rpc (it may be
// carrying the key; queueing behind it on flushMu is the wait). With
// neither, the key's mirror was already acked — or its producer has logged
// but not yet enqueued it, a window the caller's not-found re-poll absorbs.
// Skipping the flush here is what keeps sampled reads from fragmenting the
// put batches the rest of the run is amortising.
func (c *Coordinator) flushIfPending(sh *shard, coll string, kb []byte) error {
	if !sh.flushMu.TryLock() {
		return c.flushShard(sh)
	}
	pending := false
	sh.pbufMu.Lock()
	for i := range sh.pbuf {
		if sh.pbuf[i].Coll == coll && bytes.Equal(sh.pbuf[i].Key, kb) {
			pending = true
			break
		}
	}
	sh.pbufMu.Unlock()
	sh.flushMu.Unlock()
	if !pending {
		return nil
	}
	return c.flushShard(sh)
}

// flushLoop is the time-based flush: it sweeps every shard each
// FlushEvery, so a trickle of puts that never trips a size threshold still
// reaches the workers with bounded latency.
func (c *Coordinator) flushLoop() {
	defer close(c.flDone)
	t := time.NewTicker(c.opts.FlushEvery)
	defer t.Stop()
	for {
		select {
		case <-c.flStop:
			return
		case <-t.C:
		}
		for _, sh := range c.shards {
			sh.pbufMu.Lock()
			n := len(sh.pbuf)
			sh.pbufMu.Unlock()
			if n > 0 {
				_ = c.flushShard(sh) // errors latch via setTerm
			}
		}
	}
}

func (c *Coordinator) heartbeatLoop() {
	defer close(c.hbDone)
	t := time.NewTicker(c.opts.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-c.hbStop:
			return
		case <-t.C:
		}
		for _, sh := range c.shards {
			if sh.degraded.Load() || c.closed.Load() {
				continue
			}
			if sh.inflight.Load() > 0 {
				continue // an in-flight request is a better health probe
			}
			c.counters.Heartbeats.Add(1)
			if _, err := c.rpc(sh, MsgPing, nil); err != nil && !errors.Is(err, errClosed) {
				// rpc already ran the whole recovery ladder; a surviving
				// error means the shard just degraded.
				c.counters.HeartbeatFailures.Add(1)
			}
		}
	}
}

// Counters returns the coordinator's counter block (live; snapshot with
// Snapshot).
func (c *Coordinator) Counters() *Counters { return &c.counters }

// WorkerPIDs returns the PIDs of the currently live worker processes —
// the orphan-freedom tests capture them before Close and probe them after.
func (c *Coordinator) WorkerPIDs() []int {
	var pids []int
	for _, sh := range c.shards {
		sh.procMu.Lock()
		if sh.cmd != nil && sh.cmd.Process != nil {
			select {
			case <-sh.waitDone:
			default:
				pids = append(pids, sh.cmd.Process.Pid)
			}
		}
		sh.procMu.Unlock()
	}
	return pids
}

// Degraded reports how many shards have degraded to local serving.
func (c *Coordinator) Degraded() int {
	n := 0
	for _, sh := range c.shards {
		if sh.degraded.Load() {
			n++
		}
	}
	return n
}

// Close reaps the whole fleet: close each worker's stdin lifeline (its
// graceful-exit signal), give it a moment, then kill. After Close returns
// every worker process has been waited on — zero orphans by construction.
//
// Close is safe against in-flight requests: c.closed flips first, the
// recovery ladder refuses to spawn once it is set, and the connection /
// process teardown happens under the same locks (sh.mu, sh.procMu) the
// transport and the respawn rung hold — a respawn that won the race
// finishes publishing its worker before Close's lock acquisition, and
// Close then reaps that worker like any other.
func (c *Coordinator) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	if c.hbStop != nil {
		close(c.hbStop)
		<-c.hbDone
	}
	if c.flStop != nil {
		close(c.flStop)
		<-c.flDone
	}
	for _, sh := range c.shards {
		sh.mu.Lock()
		c.dropConnLocked(sh)
		sh.procMu.Lock()
		cmd, stdin, done := sh.cmd, sh.stdin, sh.waitDone
		sh.cmd, sh.stdin, sh.waitDone = nil, nil, nil
		sh.procMu.Unlock()
		sh.mu.Unlock()
		if stdin != nil {
			_ = stdin.Close() // EOF: the worker's exit signal
		}
		if cmd == nil || done == nil {
			continue
		}
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			if cmd.Process != nil {
				_ = cmd.Process.Kill()
			}
			<-done
		}
	}
	if c.ownsDir {
		_ = os.RemoveAll(c.dir)
	}
	return nil
}

// ---- chaos.TransportControl ----

// Shards implements chaos.TransportControl.
func (c *Coordinator) Shards() int { return len(c.shards) }

// SetFrameHook implements chaos.TransportControl.
func (c *Coordinator) SetFrameHook(fn func(dir chaos.Dir, shard int, msgType string, size int) chaos.Verdict) {
	if fn == nil {
		c.hook.Store(nil)
		return
	}
	c.hook.Store(&frameHookHolder{fn: fn})
}

// KillWorker implements chaos.TransportControl: SIGKILL the shard's
// current process, no cleanup — the supervisor must notice and recover.
func (c *Coordinator) KillWorker(shardIdx int) error {
	if shardIdx < 0 || shardIdx >= len(c.shards) {
		return fmt.Errorf("dist: no shard %d", shardIdx)
	}
	sh := c.shards[shardIdx]
	sh.procMu.Lock()
	defer sh.procMu.Unlock()
	if sh.cmd == nil || sh.cmd.Process == nil {
		return nil
	}
	if sh.waitDone != nil {
		select {
		case <-sh.waitDone:
			return nil // already dead
		default:
		}
	}
	return sh.cmd.Process.Kill()
}

// ---- cnc.ItemBackend (per graph, via Attach) ----

// Attach installs the coordinator as g's item backend. Each attached graph
// gets a unique collection-name prefix, so two graphs of one run (a tuner
// rebuild, say) can never collide in the shared item space — collection
// names are only unique within a graph.
func (c *Coordinator) Attach(g *cnc.Graph) {
	n := c.graphSeq.Add(1)
	g.WithItemBackend(&graphBackend{c: c, prefix: fmt.Sprintf("g%d/", n)})
}

type graphBackend struct {
	c      *Coordinator
	prefix string

	// gets numbers this graph's backend gets for verified-read sampling
	// (every VerifySample'th get goes to the wire).
	gets atomic.Uint64

	// objs caches each put's original value object by (collection, key) so
	// an unverified local get returns it with zero gob work — the
	// coordinator-side analogue of single-process object sharing, and the
	// difference between a get costing a map load and costing an encode of
	// the key plus a decode of the value. The write-ahead log's bytes stay
	// canonical: degraded serving, replay and every verified read still go
	// through them, so the cache can only ever short-circuit work, never
	// change what a get observes (items are write-once, the object never
	// mutates after Put).
	objs sync.Map // objKey -> any

	// verifyWG tracks in-flight asynchronous verified reads; the Flush
	// barrier waits on it so a mismatch discovered off the critical path
	// still fails the run it belongs to. verifyInflight bounds them —
	// a saturated verifier sheds the sample instead of stalling steps.
	verifyWG       sync.WaitGroup
	verifyInflight atomic.Int64
}

// maxAsyncVerify bounds concurrently outstanding asynchronous verified
// reads per graph.
const maxAsyncVerify = 32

// objKey addresses the object cache. Item keys are comparable by the same
// contract that lets cnc collections use them as map keys.
type objKey struct {
	coll string
	key  any
}

func (gb *graphBackend) locate(coll string, key any) (string, []byte, *shard, error) {
	full := gb.prefix + coll
	kb, err := EncodeValue(key)
	if err != nil {
		return "", nil, nil, err
	}
	return full, kb, gb.c.shards[ShardOf(full, kb, len(gb.c.shards))], nil
}

// stagePut logs one put into the shard's write-ahead log and buffers its
// mirror. Returns the shard when the buffer tripped a size threshold (the
// caller flushes after staging everything it has).
func (gb *graphBackend) stagePut(coll string, key, val any) (*shard, error) {
	full, kb, sh, err := gb.locate(coll, key)
	if err != nil {
		return nil, err
	}
	vb, err := EncodeValue(val)
	if err != nil {
		return nil, err
	}
	m := PutMsg{Coll: full, Key: kb, Val: vb}
	dup, err := gb.c.logPut(sh, m)
	if err != nil {
		return nil, err
	}
	// Logged (or a byte-identical replay): the object may serve local gets.
	gb.objs.Store(objKey{coll: full, key: key}, val)
	if dup || sh.degraded.Load() {
		// Already buffered/sent, or the log is this shard's only store.
		return nil, nil
	}
	if gb.c.enqueuePut(sh, m) {
		return sh, nil
	}
	return nil, nil
}

// Put implements cnc.ItemBackend: write-ahead log (synchronous — the log
// is what gets serve and replay rebuilds from, so it must hold the item
// before any consumer can observe it), then buffer the mirror for the
// shard's next MsgPutBatch frame. The frame flushes when a size threshold
// trips (inline, here), when the FlushEvery sweeper fires, before any
// sampled remote read of the shard, and at the end-of-run barrier — the
// put itself no longer waits a round trip.
func (gb *graphBackend) Put(coll string, key, val any) error {
	if err := gb.c.termError(); err != nil {
		return err
	}
	full, err := gb.stagePut(coll, key, val)
	if err != nil {
		return err
	}
	if full != nil {
		if err := gb.flushIgnoreDegraded(full); err != nil {
			return err
		}
	}
	return gb.c.termError()
}

// PutBatch implements cnc.ItemBackend: stage every op, then flush only the
// shards whose buffers tripped a threshold — a burst of N puts costs at
// most one frame per tripped shard now and leaves the rest to the sweeper.
func (gb *graphBackend) PutBatch(ops []cnc.PutOp) error {
	if err := gb.c.termError(); err != nil {
		return err
	}
	var full []*shard
	for i := range ops {
		sh, err := gb.stagePut(ops[i].Coll, ops[i].Key, ops[i].Val)
		if err != nil {
			return err
		}
		if sh != nil {
			full = append(full, sh)
		}
	}
	for _, sh := range full {
		if err := gb.flushIgnoreDegraded(sh); err != nil {
			return err
		}
	}
	return gb.c.termError()
}

func (gb *graphBackend) flushIgnoreDegraded(sh *shard) error {
	err := gb.c.flushShard(sh)
	if err == nil || errors.Is(err, ErrShardDegraded) {
		return nil
	}
	return err
}

// Flush implements cnc.BackendFlusher: drain every shard's put buffer,
// wait out the in-flight asynchronous verified reads, and surface any
// latched terminal error — the end-of-run barrier that makes "run
// succeeded" mean "every mirror landed (or its shard degraded with the
// log serving) and every sampled cross-check passed".
func (gb *graphBackend) Flush() error {
	for _, sh := range gb.c.shards {
		if err := gb.flushIgnoreDegraded(sh); err != nil {
			return err
		}
	}
	gb.verifyWG.Wait()
	return gb.c.termError()
}

// shouldVerify decides whether this get is a sampled verified read.
func (gb *graphBackend) shouldVerify() bool {
	vs := gb.c.opts.VerifySample
	if vs < 0 {
		return false
	}
	if vs <= 1 {
		return true
	}
	return gb.gets.Add(1)%uint64(vs) == 0
}

// Get implements cnc.ItemBackend. The write-ahead log is the
// read-your-writes cache: every put was logged synchronously before its
// producer could wake a consumer, so the authoritative bytes are always
// local and a get usually costs no round trip at all. A sampled fraction
// (Options.VerifySample) is additionally fetched from the shard owner and
// byte-compared — the statistical form of PR 8's fetch-every-read proof
// that the remote data plane actually holds what the coordinator thinks
// it holds. A mismatch is terminal.
//
// Sampled verification (VerifySample > 1) runs off the step's critical
// path: the get serves locally and the cross-check proceeds in a bounded
// background fetch whose failure latches terminally and whose completion
// the Flush barrier awaits — the run cannot succeed past an unfinished or
// failed check. Full verification (VerifySample 1, the chaos/CI setting)
// stays synchronous, so a failed comparison pins the exact get.
//
// A get can legitimately race its producer's in-flight mirror: the local
// store insert (which makes the item gettable) precedes the backend Put,
// so a speculatively re-executed consumer can reach here before the
// producer logged the item. A log miss within the request deadline is
// therefore re-polled, not failed; the same re-poll absorbs the window on
// the remote side of a verified read (the mirror is flushed before the
// fetch, but an earlier flush may still be in flight).
func (gb *graphBackend) Get(coll string, key any) (any, error) {
	if err := gb.c.termError(); err != nil {
		return nil, err
	}
	c := gb.c
	verify := gb.shouldVerify()
	syncVerify := verify && c.opts.VerifySample == 1
	if !syncVerify {
		// Fast path: the producer's own object, no key encode, no value
		// decode. A miss falls through to the log poll below (the consumer
		// is racing its producer's stagePut).
		if v, ok := gb.objs.Load(objKey{coll: gb.prefix + coll, key: key}); ok {
			c.counters.LocalGets.Add(1)
			if verify {
				gb.verifyAsync(coll, key)
			}
			return v, nil
		}
	}
	full, kb, sh, err := gb.locate(coll, key)
	if err != nil {
		return nil, err
	}
	deadline := time.Now().Add(c.opts.RequestTimeout)
	for poll := 0; ; poll++ {
		if poll > 0 {
			c.counters.RaceRetries.Add(1)
			time.Sleep(200 * time.Microsecond)
		}
		vb, ok := c.logLookup(sh, full, kb)
		if !ok {
			if time.Now().Before(deadline) {
				continue // racing the producer's logPut; it will land
			}
			return nil, fmt.Errorf("dist: no put-log entry for %s (item never mirrored)", full)
		}
		if sh.degraded.Load() {
			c.counters.DegradedGets.Add(1)
			return DecodeValue(vb)
		}
		if !syncVerify {
			c.counters.LocalGets.Add(1)
			if verify {
				gb.verifyAsync(coll, key)
			}
			return DecodeValue(vb)
		}
		// Sampled verified read: make sure this key's mirror has reached
		// the shard (flush only if it is still buffered or riding an
		// in-flight frame), then fetch and compare.
		if err := c.flushIfPending(sh, full, kb); err != nil && !errors.Is(err, ErrShardDegraded) {
			return nil, err
		}
		pl, err := c.rpc(sh, MsgGet, GetMsg{Coll: full, Key: kb})
		if errors.Is(err, ErrShardDegraded) {
			c.counters.DegradedGets.Add(1)
			return DecodeValue(vb)
		}
		if err != nil {
			return nil, err
		}
		var item ItemMsg
		if err := DecodePayload(pl, &item); err != nil {
			return nil, err
		}
		if item.Err != "" {
			return nil, errors.New(item.Err)
		}
		if !item.Found {
			if time.Now().Before(deadline) {
				continue // racing an in-flight mirror frame
			}
			// Past the deadline the mirror would long since have landed:
			// the worker's store is genuinely missing an item the
			// coordinator holds — a protocol bug, not a race.
			return nil, fmt.Errorf("dist: shard %d lost %s despite replay", sh.idx, full)
		}
		if !bytes.Equal(item.Val, vb) {
			err := fmt.Errorf("dist: verified read mismatch: shard %d holds %d bytes for %s, put log has %d",
				sh.idx, len(item.Val), full, len(vb))
			c.setTerm(err)
			return nil, err
		}
		c.counters.RemoteGets.Add(1)
		c.counters.VerifiedReads.Add(1)
		return DecodeValue(vb)
	}
}

// verifyAsync schedules one sampled cross-check off the critical path. A
// saturated verifier sheds the sample — sampling is statistical, stalling
// a step to preserve one data point would defeat its purpose.
func (gb *graphBackend) verifyAsync(coll string, key any) {
	if gb.verifyInflight.Add(1) > maxAsyncVerify {
		gb.verifyInflight.Add(-1)
		return
	}
	gb.verifyWG.Add(1)
	go func() {
		defer gb.verifyWG.Done()
		defer gb.verifyInflight.Add(-1)
		if err := gb.verifyOnce(coll, key); err != nil && !errors.Is(err, errClosed) {
			gb.c.setTerm(err)
		}
	}()
}

// verifyOnce fetches one item from its shard owner and byte-compares it
// against the write-ahead log — the background body of a sampled verified
// read. Degraded shards have nothing to verify against; a missing item is
// re-polled within the request deadline (an in-flight mirror frame), after
// which it is the terminal protocol failure the sampling exists to catch.
func (gb *graphBackend) verifyOnce(coll string, key any) error {
	c := gb.c
	full, kb, sh, err := gb.locate(coll, key)
	if err != nil {
		return err
	}
	vb, ok := c.logLookup(sh, full, kb)
	if !ok {
		return nil // the serving get saw it; nothing coherent to compare yet
	}
	deadline := time.Now().Add(c.opts.RequestTimeout)
	for {
		if sh.degraded.Load() {
			return nil
		}
		if err := c.flushIfPending(sh, full, kb); err != nil && !errors.Is(err, ErrShardDegraded) {
			return err
		}
		pl, err := c.rpc(sh, MsgGet, GetMsg{Coll: full, Key: kb})
		if errors.Is(err, ErrShardDegraded) {
			return nil
		}
		if err != nil {
			return err
		}
		var item ItemMsg
		if err := DecodePayload(pl, &item); err != nil {
			return err
		}
		if item.Err != "" {
			return errors.New(item.Err)
		}
		if !item.Found {
			if time.Now().Before(deadline) {
				time.Sleep(200 * time.Microsecond)
				continue
			}
			return fmt.Errorf("dist: shard %d lost %s despite replay", sh.idx, full)
		}
		if !bytes.Equal(item.Val, vb) {
			return fmt.Errorf("dist: verified read mismatch: shard %d holds %d bytes for %s, put log has %d",
				sh.idx, len(item.Val), full, len(vb))
		}
		c.counters.RemoteGets.Add(1)
		c.counters.VerifiedReads.Add(1)
		return nil
	}
}
