package dist

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"dpflow/internal/chaos"
	"dpflow/internal/cnc"
)

// ErrShardDegraded reports that a shard exhausted its recovery ladder and
// the coordinator now serves its items locally from the write-ahead put
// log — the graceful-degradation terminal state, not a failure: a fully
// degraded run is exactly single-process execution.
var ErrShardDegraded = errors.New("dist: shard degraded to local serving")

// Options configures a Coordinator.
type Options struct {
	// Shards is the number of worker processes (default 2).
	Shards int
	// SocketDir hosts the per-shard Unix sockets; empty means a fresh
	// temporary directory owned (and removed) by the coordinator.
	SocketDir string
	// RequestTimeout is the per-request deadline: one full retry cycle
	// (attempts + backoff) must land inside it before the ladder escalates
	// to reconnect/respawn (default 2s).
	RequestTimeout time.Duration
	// AttemptTimeout bounds one send+receive attempt inside the cycle, so
	// a dropped response costs one attempt, not the whole deadline
	// (default RequestTimeout/4, floor 20ms).
	AttemptTimeout time.Duration
	// Backoff is the retry schedule between attempts.
	Backoff Backoff
	// HeartbeatEvery is the health-check period; 0 means 250ms, negative
	// disables heartbeats.
	HeartbeatEvery time.Duration
	// MaxRespawns is the per-shard respawn budget before the shard
	// degrades to local serving. Zero means the default (3); negative
	// means no respawns at all — a lost worker degrades immediately (the
	// degradation tests' configuration).
	MaxRespawns int
	// Seed seeds the backoff jitter (default 1).
	Seed int64
	// Spawn overrides how a shard worker process is created (tests);
	// default is self-exec with EnvWorkerSocket set (MaybeWorkerChild).
	Spawn func(socketPath string) (*exec.Cmd, error)
	// Clock overrides time for the retry engine (tests); default wall.
	Clock Clock
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 2
	}
	if o.MaxRespawns == 0 {
		o.MaxRespawns = 3
	} else if o.MaxRespawns < 0 {
		o.MaxRespawns = 0
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 2 * time.Second
	}
	if o.AttemptTimeout <= 0 {
		o.AttemptTimeout = o.RequestTimeout / 4
	}
	if o.AttemptTimeout < 20*time.Millisecond {
		o.AttemptTimeout = 20 * time.Millisecond
	}
	if o.HeartbeatEvery == 0 {
		o.HeartbeatEvery = 250 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Clock == nil {
		o.Clock = RealClock
	}
	return o
}

// Counters is the coordinator's observable activity, all monotone.
type Counters struct {
	// RemotePuts / RemoteGets are successfully completed remote item
	// operations.
	RemotePuts, RemoteGets atomic.Uint64
	// Retries counts re-attempts inside request deadlines.
	Retries atomic.Uint64
	// Respawns counts worker processes relaunched by the supervisor,
	// ReplayedPuts the log entries re-delivered to them.
	Respawns, ReplayedPuts atomic.Uint64
	// Degradations counts shards that exhausted recovery and fell back to
	// local serving; DegradedGets the gets served from the local log.
	Degradations, DegradedGets atomic.Uint64
	// RaceRetries counts gets re-polled because they raced their
	// producer's in-flight mirror (see graphBackend.Get).
	RaceRetries atomic.Uint64
	// BytesOut / BytesIn are frame bytes across all sockets.
	BytesOut, BytesIn atomic.Uint64
	// Heartbeats / HeartbeatFailures count health probes sent and probes
	// that found a shard unhealthy.
	Heartbeats, HeartbeatFailures atomic.Uint64
}

// CounterSnapshot is a plain-value copy of Counters for reports.
type CounterSnapshot struct {
	RemotePuts, RemoteGets        uint64
	Retries                       uint64
	Respawns, ReplayedPuts        uint64
	Degradations, DegradedGets    uint64
	RaceRetries                   uint64
	BytesOut, BytesIn             uint64
	Heartbeats, HeartbeatFailures uint64
}

// Snapshot copies the counters.
func (c *Counters) Snapshot() CounterSnapshot {
	return CounterSnapshot{
		RemotePuts: c.RemotePuts.Load(), RemoteGets: c.RemoteGets.Load(),
		Retries:  c.Retries.Load(),
		Respawns: c.Respawns.Load(), ReplayedPuts: c.ReplayedPuts.Load(),
		Degradations: c.Degradations.Load(), DegradedGets: c.DegradedGets.Load(),
		RaceRetries: c.RaceRetries.Load(),
		BytesOut:    c.BytesOut.Load(), BytesIn: c.BytesIn.Load(),
		Heartbeats: c.Heartbeats.Load(), HeartbeatFailures: c.HeartbeatFailures.Load(),
	}
}

// shard is the coordinator's view of one worker process.
type shard struct {
	idx    int
	socket string

	// mu serialises the request/response exchange and the recovery ladder.
	mu       sync.Mutex
	conn     net.Conn
	seq      uint64
	respawns int
	retrier  *Retrier

	degraded atomic.Bool

	// procMu guards the process handle (KillWorker and the supervisor
	// race by design).
	procMu   sync.Mutex
	cmd      *exec.Cmd
	stdin    io.WriteCloser
	waitDone chan struct{}

	// logMu guards the write-ahead put log.
	logMu  sync.Mutex
	log    []PutMsg
	logIdx map[string]int
}

type frameHookHolder struct {
	fn func(dir chaos.Dir, shard int, msgType string, size int) chaos.Verdict
}

// Coordinator owns the worker fleet and implements cnc.ItemBackend (via
// Attach) and chaos.TransportControl.
type Coordinator struct {
	opts     Options
	dir      string
	ownsDir  bool
	shards   []*shard
	counters Counters
	hook     atomic.Pointer[frameHookHolder]
	graphSeq atomic.Uint64
	closed   atomic.Bool
	hbStop   chan struct{}
	hbDone   chan struct{}
}

// NewCoordinator spawns the worker fleet and connects to every shard. On
// any startup failure the already-spawned workers are reaped before the
// error returns.
func NewCoordinator(opts Options) (*Coordinator, error) {
	opts = opts.withDefaults()
	c := &Coordinator{opts: opts, dir: opts.SocketDir}
	if c.dir == "" {
		dir, err := os.MkdirTemp("", "dpflow-dist-*")
		if err != nil {
			return nil, fmt.Errorf("dist: socket dir: %w", err)
		}
		c.dir, c.ownsDir = dir, true
	}
	for i := 0; i < opts.Shards; i++ {
		sh := &shard{
			idx:    i,
			socket: filepath.Join(c.dir, fmt.Sprintf("shard-%d.sock", i)),
			logIdx: make(map[string]int),
		}
		sh.retrier = NewRetrier(opts.Backoff, opts.Clock, rand.New(rand.NewSource(opts.Seed*31+int64(i))))
		sh.retrier.OnRetry = func() { c.counters.Retries.Add(1) }
		c.shards = append(c.shards, sh)
	}
	for _, sh := range c.shards {
		if err := c.spawnWorker(sh); err != nil {
			c.Close()
			return nil, err
		}
		conn, err := c.dial(sh, time.Now().Add(5*time.Second))
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("dist: connect shard %d: %w", sh.idx, err)
		}
		sh.conn = conn
	}
	if opts.HeartbeatEvery > 0 {
		c.hbStop = make(chan struct{})
		c.hbDone = make(chan struct{})
		go c.heartbeatLoop()
	}
	return c, nil
}

// spawnWorker launches (or relaunches) the shard's process and installs
// the stdin lifeline: the coordinator holds the pipe's write end for the
// worker's whole life, so coordinator death reaps every worker.
func (c *Coordinator) spawnWorker(sh *shard) error {
	var cmd *exec.Cmd
	var err error
	if c.opts.Spawn != nil {
		cmd, err = c.opts.Spawn(sh.socket)
	} else {
		var exe string
		exe, err = os.Executable()
		if err == nil {
			cmd = exec.Command(exe)
			cmd.Env = append(os.Environ(), EnvWorkerSocket+"="+sh.socket)
		}
	}
	if err != nil {
		return fmt.Errorf("dist: spawn shard %d: %w", sh.idx, err)
	}
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return fmt.Errorf("dist: spawn shard %d: stdin: %w", sh.idx, err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("dist: spawn shard %d: %w", sh.idx, err)
	}
	waitDone := make(chan struct{})
	go func() { _ = cmd.Wait(); close(waitDone) }()
	sh.procMu.Lock()
	sh.cmd, sh.stdin, sh.waitDone = cmd, stdin, waitDone
	sh.procMu.Unlock()
	return nil
}

// dial connects to the shard's socket, retrying while the (possibly
// just-spawned) worker comes up.
func (c *Coordinator) dial(sh *shard, deadline time.Time) (net.Conn, error) {
	var lastErr error
	for {
		conn, err := net.DialTimeout("unix", sh.socket, 200*time.Millisecond)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		if time.Now().After(deadline) {
			return nil, lastErr
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// alive reports whether the shard's current worker process is running.
func (c *Coordinator) alive(sh *shard) bool {
	sh.procMu.Lock()
	done := sh.waitDone
	sh.procMu.Unlock()
	if done == nil {
		return false
	}
	select {
	case <-done:
		return false
	default:
		return true
	}
}

// killWorker force-terminates the shard's process and reaps it.
func (c *Coordinator) killWorker(sh *shard) {
	sh.procMu.Lock()
	cmd, stdin, done := sh.cmd, sh.stdin, sh.waitDone
	sh.cmd, sh.stdin, sh.waitDone = nil, nil, nil
	sh.procMu.Unlock()
	if stdin != nil {
		_ = stdin.Close()
	}
	if cmd == nil {
		return
	}
	if done != nil {
		select {
		case <-done: // already exited, Wait already reaped it
			return
		default:
		}
	}
	if cmd.Process != nil {
		_ = cmd.Process.Kill()
	}
	if done != nil {
		<-done // Kill guarantees exit; Wait (in spawnWorker's goroutine) reaps
	}
}

func (c *Coordinator) dropConnLocked(sh *shard) {
	if sh.conn != nil {
		_ = sh.conn.Close()
		sh.conn = nil
	}
}

func (c *Coordinator) frameVerdict(dir chaos.Dir, shardIdx int, mt byte, size int) chaos.Verdict {
	h := c.hook.Load()
	if h == nil || h.fn == nil {
		return chaos.Verdict{}
	}
	return h.fn(dir, shardIdx, MsgName(mt), size)
}

// exchange performs one send+receive attempt under sh.mu, applying fault
// verdicts to each frame in both directions. Any error leaves the
// connection dropped so the next attempt redials.
func (c *Coordinator) exchange(sh *shard, mt byte, payload any, cycleDeadline time.Time) ([]byte, error) {
	attemptDeadline := time.Now().Add(c.opts.AttemptTimeout)
	if attemptDeadline.After(cycleDeadline) {
		attemptDeadline = cycleDeadline
	}
	if sh.conn == nil {
		conn, err := c.dial(sh, attemptDeadline)
		if err != nil {
			return nil, fmt.Errorf("dist: shard %d dial: %w", sh.idx, err)
		}
		sh.conn = conn
	}
	frame, err := EncodeFrame(mt, sh.seq, payload)
	if err != nil {
		return nil, err
	}
	v := c.frameVerdict(chaos.DirSend, sh.idx, mt, len(frame))
	if v.Delay > 0 {
		time.Sleep(v.Delay)
	}
	switch {
	case v.Reset:
		c.dropConnLocked(sh)
		return nil, fmt.Errorf("dist: shard %d: injected connection reset (send %s)", sh.idx, MsgName(mt))
	case v.Drop:
		// Request lost in flight: skip the write and let the read below
		// time out, exactly as a real loss would play out.
	default:
		_ = sh.conn.SetWriteDeadline(attemptDeadline)
		if _, err := sh.conn.Write(frame); err != nil {
			c.dropConnLocked(sh)
			return nil, fmt.Errorf("dist: shard %d write %s: %w", sh.idx, MsgName(mt), err)
		}
		c.counters.BytesOut.Add(uint64(len(frame)))
	}
	for {
		_ = sh.conn.SetReadDeadline(attemptDeadline)
		rmt, rseq, pl, err := ReadFrame(sh.conn)
		if err != nil {
			c.dropConnLocked(sh)
			return nil, fmt.Errorf("dist: shard %d read: %w", sh.idx, err)
		}
		c.counters.BytesIn.Add(uint64(headerLen + 9 + len(pl)))
		rv := c.frameVerdict(chaos.DirRecv, sh.idx, rmt, headerLen+9+len(pl))
		if rv.Delay > 0 {
			time.Sleep(rv.Delay)
		}
		if rv.Reset {
			c.dropConnLocked(sh)
			return nil, fmt.Errorf("dist: shard %d: injected connection reset (recv %s)", sh.idx, MsgName(rmt))
		}
		if rv.Drop {
			continue // response lost in flight: keep waiting for one that isn't
		}
		if rseq != sh.seq {
			continue // stale response to an earlier attempt of this request
		}
		return pl, nil
	}
}

// rpc runs one request through the full robustness ladder:
//
//	retry+backoff within the request deadline
//	-> reconnect (live worker, fresh deadline)
//	-> respawn + replay the write-ahead log (dead or unresponsive worker)
//	-> degrade the shard to local serving (respawn budget exhausted)
//
// and returns ErrShardDegraded only from the last rung.
func (c *Coordinator) rpc(sh *shard, mt byte, payload any) ([]byte, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return c.rpcLocked(sh, mt, payload)
}

func (c *Coordinator) rpcLocked(sh *shard, mt byte, payload any) ([]byte, error) {
	if sh.degraded.Load() {
		return nil, ErrShardDegraded
	}
	sh.seq++
	var out []byte
	for cycle := 0; ; cycle++ {
		deadline := c.opts.Clock.Now().Add(c.opts.RequestTimeout)
		err := sh.retrier.Do(deadline, func() error {
			pl, xerr := c.exchange(sh, mt, payload, deadline)
			if xerr == nil {
				out = pl
			}
			return xerr
		})
		if err == nil {
			return out, nil
		}
		c.dropConnLocked(sh)
		if cycle == 0 && c.alive(sh) {
			continue // reconnect rung: live worker, fresh deadline
		}
		for {
			rerr := c.respawnAndReplayLocked(sh)
			if rerr == nil {
				break
			}
			if sh.respawns >= c.opts.MaxRespawns {
				c.degradeLocked(sh, rerr)
				return nil, ErrShardDegraded
			}
		}
	}
}

// respawnAndReplayLocked relaunches the shard's worker and replays the
// write-ahead put log into its empty store. Replay is safe because items
// are write-once: the worker accepts byte-identical duplicates, so a put
// that was stored but whose ack was lost replays harmlessly.
func (c *Coordinator) respawnAndReplayLocked(sh *shard) error {
	if sh.respawns >= c.opts.MaxRespawns {
		return fmt.Errorf("dist: shard %d respawn budget (%d) exhausted", sh.idx, c.opts.MaxRespawns)
	}
	sh.respawns++
	c.counters.Respawns.Add(1)
	c.killWorker(sh)
	c.dropConnLocked(sh)
	if err := c.spawnWorker(sh); err != nil {
		return err
	}
	conn, err := c.dial(sh, time.Now().Add(5*time.Second))
	if err != nil {
		return fmt.Errorf("dist: shard %d reconnect after respawn: %w", sh.idx, err)
	}
	sh.conn = conn
	sh.logMu.Lock()
	entries := append([]PutMsg(nil), sh.log...)
	sh.logMu.Unlock()
	for i := range entries {
		sh.seq++
		deadline := c.opts.Clock.Now().Add(c.opts.RequestTimeout)
		var pl []byte
		err := sh.retrier.Do(deadline, func() error {
			p, xerr := c.exchange(sh, MsgPut, entries[i], deadline)
			if xerr == nil {
				pl = p
			}
			return xerr
		})
		if err != nil {
			return fmt.Errorf("dist: shard %d replay put %d/%d: %w", sh.idx, i+1, len(entries), err)
		}
		var ack AckMsg
		if err := DecodePayload(pl, &ack); err != nil {
			return err
		}
		if ack.Err != "" {
			return fmt.Errorf("dist: shard %d replay refused: %s", sh.idx, ack.Err)
		}
		c.counters.ReplayedPuts.Add(1)
	}
	return nil
}

// degradeLocked retires the shard: its items are served from the
// coordinator's log from now on. The worker (if any) is reaped so a
// degraded run can never leak a process.
func (c *Coordinator) degradeLocked(sh *shard, cause error) {
	if sh.degraded.Swap(true) {
		return
	}
	c.counters.Degradations.Add(1)
	c.killWorker(sh)
	c.dropConnLocked(sh)
	_ = cause // recorded implicitly: Degradations counts, callers see ErrShardDegraded
}

// logPut appends one put to the shard's write-ahead log (before any
// network I/O, so replay and degraded serving always see it).
func (c *Coordinator) logPut(sh *shard, m PutMsg) error {
	k := storeKey(m.Coll, m.Key)
	sh.logMu.Lock()
	defer sh.logMu.Unlock()
	if i, dup := sh.logIdx[k]; dup {
		if string(sh.log[i].Val) == string(m.Val) {
			return nil
		}
		return fmt.Errorf("dist: write-once violation in put log: %s re-put with differing bytes", m.Coll)
	}
	sh.logIdx[k] = len(sh.log)
	sh.log = append(sh.log, m)
	return nil
}

func (c *Coordinator) logLookup(sh *shard, coll string, key []byte) ([]byte, bool) {
	sh.logMu.Lock()
	defer sh.logMu.Unlock()
	i, ok := sh.logIdx[storeKey(coll, key)]
	if !ok {
		return nil, false
	}
	return sh.log[i].Val, true
}

func (c *Coordinator) heartbeatLoop() {
	defer close(c.hbDone)
	t := time.NewTicker(c.opts.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-c.hbStop:
			return
		case <-t.C:
		}
		for _, sh := range c.shards {
			if sh.degraded.Load() {
				continue
			}
			if !sh.mu.TryLock() {
				continue // an in-flight rpc is a better health probe
			}
			c.counters.Heartbeats.Add(1)
			if _, err := c.rpcLocked(sh, MsgPing, nil); err != nil {
				// rpcLocked already ran the whole recovery ladder; a
				// surviving error means the shard just degraded.
				c.counters.HeartbeatFailures.Add(1)
			}
			sh.mu.Unlock()
		}
	}
}

// Counters returns the coordinator's counter block (live; snapshot with
// Snapshot).
func (c *Coordinator) Counters() *Counters { return &c.counters }

// WorkerPIDs returns the PIDs of the currently live worker processes —
// the orphan-freedom tests capture them before Close and probe them after.
func (c *Coordinator) WorkerPIDs() []int {
	var pids []int
	for _, sh := range c.shards {
		sh.procMu.Lock()
		if sh.cmd != nil && sh.cmd.Process != nil {
			select {
			case <-sh.waitDone:
			default:
				pids = append(pids, sh.cmd.Process.Pid)
			}
		}
		sh.procMu.Unlock()
	}
	return pids
}

// Degraded reports how many shards have degraded to local serving.
func (c *Coordinator) Degraded() int {
	n := 0
	for _, sh := range c.shards {
		if sh.degraded.Load() {
			n++
		}
	}
	return n
}

// Close reaps the whole fleet: close each worker's stdin lifeline (its
// graceful-exit signal), give it a moment, then kill. After Close returns
// every worker process has been waited on — zero orphans by construction.
func (c *Coordinator) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	if c.hbStop != nil {
		close(c.hbStop)
		<-c.hbDone
	}
	for _, sh := range c.shards {
		sh.procMu.Lock()
		cmd, stdin, done := sh.cmd, sh.stdin, sh.waitDone
		sh.cmd, sh.stdin, sh.waitDone = nil, nil, nil
		sh.procMu.Unlock()
		if stdin != nil {
			_ = stdin.Close() // EOF: the worker's exit signal
		}
		if sh.conn != nil {
			_ = sh.conn.Close()
			sh.conn = nil
		}
		if cmd == nil || done == nil {
			continue
		}
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			if cmd.Process != nil {
				_ = cmd.Process.Kill()
			}
			<-done
		}
	}
	if c.ownsDir {
		_ = os.RemoveAll(c.dir)
	}
	return nil
}

// ---- chaos.TransportControl ----

// Shards implements chaos.TransportControl.
func (c *Coordinator) Shards() int { return len(c.shards) }

// SetFrameHook implements chaos.TransportControl.
func (c *Coordinator) SetFrameHook(fn func(dir chaos.Dir, shard int, msgType string, size int) chaos.Verdict) {
	if fn == nil {
		c.hook.Store(nil)
		return
	}
	c.hook.Store(&frameHookHolder{fn: fn})
}

// KillWorker implements chaos.TransportControl: SIGKILL the shard's
// current process, no cleanup — the supervisor must notice and recover.
func (c *Coordinator) KillWorker(shardIdx int) error {
	if shardIdx < 0 || shardIdx >= len(c.shards) {
		return fmt.Errorf("dist: no shard %d", shardIdx)
	}
	sh := c.shards[shardIdx]
	sh.procMu.Lock()
	defer sh.procMu.Unlock()
	if sh.cmd == nil || sh.cmd.Process == nil {
		return nil
	}
	if sh.waitDone != nil {
		select {
		case <-sh.waitDone:
			return nil // already dead
		default:
		}
	}
	return sh.cmd.Process.Kill()
}

// ---- cnc.ItemBackend (per graph, via Attach) ----

// Attach installs the coordinator as g's item backend. Each attached graph
// gets a unique collection-name prefix, so two graphs of one run (a tuner
// rebuild, say) can never collide in the shared item space — collection
// names are only unique within a graph.
func (c *Coordinator) Attach(g *cnc.Graph) {
	n := c.graphSeq.Add(1)
	g.WithItemBackend(&graphBackend{c: c, prefix: fmt.Sprintf("g%d/", n)})
}

type graphBackend struct {
	c      *Coordinator
	prefix string
}

func (gb *graphBackend) locate(coll string, key any) (string, []byte, *shard, error) {
	full := gb.prefix + coll
	kb, err := EncodeValue(key)
	if err != nil {
		return "", nil, nil, err
	}
	return full, kb, gb.c.shards[ShardOf(full, kb, len(gb.c.shards))], nil
}

// Put implements cnc.ItemBackend: write-ahead log, then mirror to the
// shard owner. A degraded shard absorbs the put into the log alone — that
// is the single-process fallback.
func (gb *graphBackend) Put(coll string, key, val any) error {
	full, kb, sh, err := gb.locate(coll, key)
	if err != nil {
		return err
	}
	vb, err := EncodeValue(val)
	if err != nil {
		return err
	}
	m := PutMsg{Coll: full, Key: kb, Val: vb}
	if err := gb.c.logPut(sh, m); err != nil {
		return err
	}
	pl, err := gb.c.rpc(sh, MsgPut, m)
	if errors.Is(err, ErrShardDegraded) {
		return nil // the log holds it; gets will be served locally
	}
	if err != nil {
		return err
	}
	var ack AckMsg
	if err := DecodePayload(pl, &ack); err != nil {
		return err
	}
	if ack.Err != "" {
		return errors.New(ack.Err)
	}
	gb.c.counters.RemotePuts.Add(1)
	return nil
}

// Get implements cnc.ItemBackend: fetch the authoritative bytes from the
// shard owner (or the local log for a degraded shard) and decode.
//
// A get can legitimately race its producer's in-flight mirror: the local
// store insert (which makes the item gettable) precedes the mirror RPC, so
// a speculatively re-executed consumer can reach here before the put frame
// reaches the worker. The mirror is guaranteed to be on its way — same
// shard, serialised behind this request — so a not-found answer within the
// race window is absorbed by re-polling until the request deadline, after
// which a miss really is a lost item.
func (gb *graphBackend) Get(coll string, key any) (any, error) {
	full, kb, sh, err := gb.locate(coll, key)
	if err != nil {
		return nil, err
	}
	deadline := time.Now().Add(gb.c.opts.RequestTimeout)
	for poll := 0; ; poll++ {
		if poll > 0 {
			gb.c.counters.RaceRetries.Add(1)
			time.Sleep(200 * time.Microsecond)
		}
		pl, err := gb.c.rpc(sh, MsgGet, GetMsg{Coll: full, Key: kb})
		if errors.Is(err, ErrShardDegraded) {
			vb, ok := gb.c.logLookup(sh, full, kb)
			if !ok {
				if time.Now().Before(deadline) {
					continue // racing the producer's logPut; it will land
				}
				return nil, fmt.Errorf("dist: degraded shard %d has no log entry for %s", sh.idx, full)
			}
			gb.c.counters.DegradedGets.Add(1)
			return DecodeValue(vb)
		}
		if err != nil {
			return nil, err
		}
		var item ItemMsg
		if err := DecodePayload(pl, &item); err != nil {
			return nil, err
		}
		if item.Err != "" {
			return nil, errors.New(item.Err)
		}
		if !item.Found {
			if time.Now().Before(deadline) {
				continue // racing the producer's in-flight mirror
			}
			// Past the deadline the mirror would long since have landed:
			// the worker's store is genuinely missing an item the
			// coordinator holds — a protocol bug, not a race.
			return nil, fmt.Errorf("dist: shard %d lost %s despite replay", sh.idx, full)
		}
		gb.c.counters.RemoteGets.Add(1)
		return DecodeValue(item.Val)
	}
}
