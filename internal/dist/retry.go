package dist

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ErrDeadline marks a request whose per-request deadline expired before any
// attempt succeeded. It always wraps the last transport error too, so
// callers can see both the policy failure (errors.Is(err, ErrDeadline)) and
// the underlying cause.
var ErrDeadline = errors.New("dist: request deadline exceeded")

// Clock abstracts time for the retry engine so its policy is unit-testable
// on a fake clock — no real sleeping, no flaky timing assertions.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

type realClock struct{}

func (realClock) Now() time.Time        { return time.Now() }
func (realClock) Sleep(d time.Duration) { time.Sleep(d) }

// RealClock is the wall-clock Clock.
var RealClock Clock = realClock{}

// Backoff is an exponential backoff schedule with jitter.
type Backoff struct {
	// Base is the first delay (default 1ms).
	Base time.Duration
	// Max caps the grown delay, pre-jitter (default 100ms).
	Max time.Duration
	// Factor is the per-attempt growth (default 2).
	Factor float64
	// Jitter scales a uniform random addition: the delay for attempt k is
	// grown(k) * (1 + Jitter*U[0,1)) (default 0.5). Jitter de-synchronises
	// retry storms when several shards fail together.
	Jitter float64
}

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 100 * time.Millisecond
	}
	if b.Factor < 1 {
		b.Factor = 2
	}
	if b.Jitter < 0 {
		b.Jitter = 0
	}
	return b
}

// delay computes the post-jitter delay for 0-based attempt k.
func (b Backoff) delay(k int, rng *rand.Rand) time.Duration {
	d := float64(b.Base)
	for i := 0; i < k; i++ {
		d *= b.Factor
		if d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	if b.Jitter > 0 && rng != nil {
		d *= 1 + b.Jitter*rng.Float64()
	}
	return time.Duration(d)
}

// Retrier runs operations under a deadline with exponential backoff. The
// zero value is not usable; construct with NewRetrier.
type Retrier struct {
	backoff Backoff
	clock   Clock
	// OnRetry, when non-nil, is called once per re-attempt (not for the
	// first attempt) — the coordinator's Retries counter hook.
	OnRetry func()

	mu  sync.Mutex
	rng *rand.Rand
}

// NewRetrier builds a retrier drawing jitter from rng (nil disables
// jitter). clock nil means RealClock.
func NewRetrier(b Backoff, clock Clock, rng *rand.Rand) *Retrier {
	if clock == nil {
		clock = RealClock
	}
	return &Retrier{backoff: b.withDefaults(), clock: clock, rng: rng}
}

// Do runs op until it succeeds or the deadline expires. The deadline is
// checked *before* sleeping: if the next backoff would overrun it, Do
// returns immediately with ErrDeadline wrapping the last transport error —
// it never sleeps into a deadline it already knows it will miss.
func (r *Retrier) Do(deadline time.Time, op func() error) error {
	for attempt := 0; ; attempt++ {
		err := op()
		if err == nil {
			return nil
		}
		r.mu.Lock()
		d := r.backoff.delay(attempt, r.rng)
		r.mu.Unlock()
		if r.clock.Now().Add(d).After(deadline) {
			return fmt.Errorf("%w (attempt %d, next backoff %v): %w",
				ErrDeadline, attempt+1, d, err)
		}
		if r.OnRetry != nil {
			r.OnRetry()
		}
		r.clock.Sleep(d)
	}
}
