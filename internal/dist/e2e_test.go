package dist

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"dpflow/internal/bench"
	"dpflow/internal/chaos"
	"dpflow/internal/gep"
)

// fastOpts are coordinator options tuned for tests: tight deadlines and
// backoffs so recovery ladders complete in tens of milliseconds.
func fastOpts() Options {
	return Options{
		Shards:         2,
		RequestTimeout: 400 * time.Millisecond,
		AttemptTimeout: 50 * time.Millisecond,
		Backoff:        Backoff{Base: time.Millisecond, Max: 20 * time.Millisecond, Factor: 2, Jitter: 0.5},
		HeartbeatEvery: 50 * time.Millisecond,
	}
}

// TestDistAllBenchmarksVerify: every registered benchmark runs 2-process
// sharded with zero per-benchmark code and verifies against its serial
// reference, with real remote traffic and no recovery activity.
func TestDistAllBenchmarksVerify(t *testing.T) {
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			t.Parallel()
			r := &Runner{Shards: 2, Discipline: true, Options: fastOpts()}
			res := r.Drive(b, 64, 16, 42, nil)
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			if res.Counters.RemotePuts == 0 || res.Counters.RemoteGets == 0 {
				t.Fatalf("no remote traffic (puts %d, gets %d) — the run was not actually distributed",
					res.Counters.RemotePuts, res.Counters.RemoteGets)
			}
			if res.Counters.BytesOut == 0 || res.Counters.BytesIn == 0 {
				t.Fatalf("no bytes on the wire (out %d, in %d)", res.Counters.BytesOut, res.Counters.BytesIn)
			}
			if res.Counters.Respawns != 0 || res.Degraded != 0 {
				t.Fatalf("clean run needed recovery (respawns %d, degraded %d)",
					res.Counters.Respawns, res.Degraded)
			}
			if len(res.Violations) != 0 {
				t.Fatalf("discipline violations: %v", res.Violations)
			}
		})
	}
}

// TestDistChaosMatrix is the tentpole sweep: benchmarks × process-level
// faults × seeds, 2 worker processes each. Every cell must end in a
// verified result with zero discipline violations and zero leaked workers
// — faults may only cost retries, respawns or degradations, never
// correctness. Aggregate assertions afterwards prove the sweep actually
// exercised the recovery machinery rather than passing vacuously.
func TestDistChaosMatrix(t *testing.T) {
	seeds := 10
	benches := bench.All()
	if testing.Short() {
		seeds = 2
		var short []bench.Benchmark
		for _, b := range benches {
			if b.Name() == "ge" || b.Name() == "fw" {
				short = append(short, b)
			}
		}
		benches = short
	}
	faults := []struct {
		name string
		mk   func() chaos.DistFault
	}{
		{"process-kill", func() chaos.DistFault { return &chaos.ProcessKill{Prob: 0.05, Times: 1, After: 8} }},
		{"message-drop", func() chaos.DistFault { return &chaos.MessageDrop{Prob: 0.03, Times: 4} }},
		{"message-delay", func() chaos.DistFault { return &chaos.MessageDelay{Prob: 0.05, Times: 5, Delay: 5 * time.Millisecond} }},
		{"conn-reset", func() chaos.DistFault { return &chaos.ConnReset{Prob: 0.03, Times: 3} }},
	}

	var injections, retries, respawns atomic.Uint64
	t.Run("matrix", func(t *testing.T) {
		for _, b := range benches {
			for _, f := range faults {
				for seed := int64(1); seed <= int64(seeds); seed++ {
					b, f, seed := b, f, seed
					t.Run(fmt.Sprintf("%s/%s/seed%d", b.Name(), f.name, seed), func(t *testing.T) {
						t.Parallel()
						r := &Runner{Shards: 2, Discipline: true, Options: fastOpts()}
						res := r.Drive(b, 32, 8, seed, f.mk())
						if res.Err != nil {
							t.Fatal(res.Err)
						}
						if len(res.Violations) != 0 {
							t.Fatalf("discipline violations under %s: %v", f.name, res.Violations)
						}
						injections.Add(uint64(res.Injections))
						retries.Add(res.Counters.Retries)
						respawns.Add(res.Counters.Respawns)
					})
				}
			}
		}
	})
	// The sweep must not pass vacuously: across the whole matrix, faults
	// fired and the recovery ladder did real work.
	if injections.Load() == 0 {
		t.Error("no fault injection fired anywhere in the matrix")
	}
	if retries.Load() == 0 {
		t.Error("no transport retry anywhere in the matrix — drops/resets were not absorbed by the retry rung")
	}
	if respawns.Load() == 0 {
		t.Error("no worker respawn anywhere in the matrix — process kills were not absorbed by the supervisor rung")
	}
}

// TestDistDegradation: with the respawn budget disabled, losing a worker
// degrades its shard to coordinator-local serving from the put log — and
// the run still verifies. Graceful degradation is single-process execution.
func TestDistDegradation(t *testing.T) {
	ge, err := bench.ByName("ge")
	if err != nil {
		t.Fatal(err)
	}
	opts := fastOpts()
	opts.MaxRespawns = -1 // no respawns: first loss degrades
	r := &Runner{Shards: 2, Discipline: true, Options: opts}
	res := r.Drive(ge, 64, 16, 7, &chaos.ProcessKill{Prob: 1, Times: 1, After: 6})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Injections == 0 {
		t.Fatal("kill never fired")
	}
	if res.Counters.Degradations == 0 {
		t.Fatalf("shard did not degrade (counters %+v)", res.Counters)
	}
	if res.Counters.DegradedGets == 0 {
		t.Fatal("no get was served from the local log after degradation")
	}
	if res.Counters.Respawns != 0 {
		t.Fatalf("respawns %d with a zero budget", res.Counters.Respawns)
	}
}

// TestRespawnReplayServesPrekillItems drives the supervisor rung directly:
// put items, SIGKILL every worker, then get the items back — each get
// forces a respawn whose log replay must restore the dead shard's store.
func TestRespawnReplayServesPrekillItems(t *testing.T) {
	c, err := NewCoordinator(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	gb := &graphBackend{c: c, prefix: "t/"}
	const items = 24
	for i := 0; i < items; i++ {
		if err := gb.Put("receipts", gep.ItemKey{I: i}, i%2 == 0); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	for s := 0; s < c.Shards(); s++ {
		if err := c.KillWorker(s); err != nil {
			t.Fatalf("kill shard %d: %v", s, err)
		}
	}
	for i := 0; i < items; i++ {
		v, err := gb.Get("receipts", gep.ItemKey{I: i})
		if err != nil {
			t.Fatalf("get %d after kill: %v", i, err)
		}
		if v != (i%2 == 0) {
			t.Fatalf("get %d = %v after replay, want %v", i, v, i%2 == 0)
		}
	}
	snap := c.Counters().Snapshot()
	if snap.Respawns == 0 || snap.ReplayedPuts == 0 {
		t.Fatalf("recovery did not respawn/replay (respawns %d, replayed %d)", snap.Respawns, snap.ReplayedPuts)
	}
	if c.Degraded() != 0 {
		t.Fatalf("%d shards degraded; replay should have recovered them", c.Degraded())
	}
}

// TestCloseReapsAllWorkers: after Close, no worker process exists — the
// zero-orphans contract, probed by PID.
func TestCloseReapsAllWorkers(t *testing.T) {
	c, err := NewCoordinator(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	pids := c.WorkerPIDs()
	if len(pids) != 2 {
		t.Fatalf("WorkerPIDs = %v, want 2 live workers", pids)
	}
	if leaked := livePIDs(pids); len(leaked) != 2 {
		t.Fatalf("live probe sees %v of %v before Close", leaked, pids)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if leaked := livePIDs(pids); len(leaked) != 0 {
		t.Fatalf("worker PIDs %v still alive after Close", leaked)
	}
}
