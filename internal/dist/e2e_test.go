package dist

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dpflow/internal/bench"
	"dpflow/internal/chaos"
	"dpflow/internal/gep"
)

// fastOpts are coordinator options tuned for tests: tight deadlines and
// backoffs so recovery ladders complete in tens of milliseconds. Reads are
// verified against the shard on every get (VerifySample 1) so the tests
// exercise the full wire path; CI's second sweep overrides the rate via
// DPFLOW_VERIFY_SAMPLE to run the same matrix at the production default.
func fastOpts() Options {
	return Options{
		Shards:         2,
		RequestTimeout: 400 * time.Millisecond,
		AttemptTimeout: 50 * time.Millisecond,
		Backoff:        Backoff{Base: time.Millisecond, Max: 20 * time.Millisecond, Factor: 2, Jitter: 0.5},
		HeartbeatEvery: 50 * time.Millisecond,
		VerifySample:   verifySampleFromEnv(),
	}
}

// verifySampleFromEnv resolves the test suite's verified-read rate:
// every get (1) unless DPFLOW_VERIFY_SAMPLE says otherwise.
func verifySampleFromEnv() int {
	if s := os.Getenv("DPFLOW_VERIFY_SAMPLE"); s != "" {
		if n, err := strconv.Atoi(s); err == nil {
			return n
		}
	}
	return 1
}

// TestDistAllBenchmarksVerify: every registered benchmark runs 2-process
// sharded with zero per-benchmark code and verifies against its serial
// reference, with real remote traffic and no recovery activity.
func TestDistAllBenchmarksVerify(t *testing.T) {
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			t.Parallel()
			r := &Runner{Shards: 2, Discipline: true, Options: fastOpts()}
			res := r.Drive(b, 64, 16, 42, nil)
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			if res.Counters.RemotePuts == 0 || res.Counters.PutFrames == 0 {
				t.Fatalf("no remote puts (%d ops in %d frames) — the run was not actually distributed",
					res.Counters.RemotePuts, res.Counters.PutFrames)
			}
			// With sampling on, verified reads must really cross the wire;
			// with it off (env override), every get must be served locally.
			if fastOpts().VerifySample >= 0 && res.Counters.RemoteGets == 0 {
				t.Fatalf("sampling enabled but no get crossed the wire (counters %+v)", res.Counters)
			}
			if res.Counters.LocalGets+res.Counters.RemoteGets == 0 {
				t.Fatal("no gets at all — the backend was bypassed")
			}
			if res.Counters.BytesOut == 0 || res.Counters.BytesIn == 0 {
				t.Fatalf("no bytes on the wire (out %d, in %d)", res.Counters.BytesOut, res.Counters.BytesIn)
			}
			if res.Counters.Respawns != 0 || res.Degraded != 0 {
				t.Fatalf("clean run needed recovery (respawns %d, degraded %d)",
					res.Counters.Respawns, res.Degraded)
			}
			if len(res.Violations) != 0 {
				t.Fatalf("discipline violations: %v", res.Violations)
			}
		})
	}
}

// TestDistChaosMatrix is the tentpole sweep: benchmarks × process-level
// faults × seeds, 2 worker processes each. Every cell must end in a
// verified result with zero discipline violations and zero leaked workers
// — faults may only cost retries, respawns or degradations, never
// correctness. Aggregate assertions afterwards prove the sweep actually
// exercised the recovery machinery rather than passing vacuously.
func TestDistChaosMatrix(t *testing.T) {
	seeds := 10
	benches := bench.All()
	if testing.Short() {
		seeds = 2
		var short []bench.Benchmark
		for _, b := range benches {
			if b.Name() == "ge" || b.Name() == "fw" {
				short = append(short, b)
			}
		}
		benches = short
	}
	faults := []struct {
		name string
		mk   func() chaos.DistFault
	}{
		{"process-kill", func() chaos.DistFault { return &chaos.ProcessKill{Prob: 0.05, Times: 1, After: 8} }},
		{"message-drop", func() chaos.DistFault { return &chaos.MessageDrop{Prob: 0.03, Times: 4} }},
		{"message-delay", func() chaos.DistFault { return &chaos.MessageDelay{Prob: 0.05, Times: 5, Delay: 5 * time.Millisecond} }},
		{"conn-reset", func() chaos.DistFault { return &chaos.ConnReset{Prob: 0.03, Times: 3} }},
	}

	var injections, retries, respawns atomic.Uint64
	t.Run("matrix", func(t *testing.T) {
		for _, b := range benches {
			for _, f := range faults {
				for seed := int64(1); seed <= int64(seeds); seed++ {
					b, f, seed := b, f, seed
					t.Run(fmt.Sprintf("%s/%s/seed%d", b.Name(), f.name, seed), func(t *testing.T) {
						t.Parallel()
						r := &Runner{Shards: 2, Discipline: true, Options: fastOpts()}
						res := r.Drive(b, 32, 8, seed, f.mk())
						if res.Err != nil {
							t.Fatal(res.Err)
						}
						if len(res.Violations) != 0 {
							t.Fatalf("discipline violations under %s: %v", f.name, res.Violations)
						}
						injections.Add(uint64(res.Injections))
						retries.Add(res.Counters.Retries)
						respawns.Add(res.Counters.Respawns)
					})
				}
			}
		}
	})
	// The sweep must not pass vacuously: across the whole matrix, faults
	// fired and the recovery ladder did real work.
	if injections.Load() == 0 {
		t.Error("no fault injection fired anywhere in the matrix")
	}
	if retries.Load() == 0 {
		t.Error("no transport retry anywhere in the matrix — drops/resets were not absorbed by the retry rung")
	}
	if respawns.Load() == 0 {
		t.Error("no worker respawn anywhere in the matrix — process kills were not absorbed by the supervisor rung")
	}
}

// TestDistDegradation: with the respawn budget disabled, losing a worker
// degrades its shard to coordinator-local serving from the put log — and
// the run still verifies. Graceful degradation is single-process execution.
func TestDistDegradation(t *testing.T) {
	ge, err := bench.ByName("ge")
	if err != nil {
		t.Fatal(err)
	}
	opts := fastOpts()
	opts.MaxRespawns = -1 // no respawns: first loss degrades
	// Full synchronous verification regardless of the env override: the
	// degraded-serving counters this test asserts only tick on gets that
	// actually try the shard.
	opts.VerifySample = 1
	r := &Runner{Shards: 2, Discipline: true, Options: opts}
	res := r.Drive(ge, 64, 16, 7, &chaos.ProcessKill{Prob: 1, Times: 1, After: 6})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Injections == 0 {
		t.Fatal("kill never fired")
	}
	if res.Counters.Degradations == 0 {
		t.Fatalf("shard did not degrade (counters %+v)", res.Counters)
	}
	if res.Counters.DegradedGets == 0 {
		t.Fatal("no get was served from the local log after degradation")
	}
	if res.Counters.Respawns != 0 {
		t.Fatalf("respawns %d with a zero budget", res.Counters.Respawns)
	}
}

// TestRespawnReplayServesPrekillItems drives the supervisor rung directly:
// put items, SIGKILL every worker, then get the items back — each get
// forces a respawn whose log replay must restore the dead shard's store.
func TestRespawnReplayServesPrekillItems(t *testing.T) {
	opts := fastOpts()
	// Full synchronous verification regardless of the env override: it is
	// the verified reads that notice the dead workers and force the
	// respawn-and-replay this test exists to exercise.
	opts.VerifySample = 1
	c, err := NewCoordinator(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	gb := &graphBackend{c: c, prefix: "t/"}
	const items = 24
	for i := 0; i < items; i++ {
		if err := gb.Put("receipts", gep.ItemKey{I: i}, i%2 == 0); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	for s := 0; s < c.Shards(); s++ {
		if err := c.KillWorker(s); err != nil {
			t.Fatalf("kill shard %d: %v", s, err)
		}
	}
	for i := 0; i < items; i++ {
		v, err := gb.Get("receipts", gep.ItemKey{I: i})
		if err != nil {
			t.Fatalf("get %d after kill: %v", i, err)
		}
		if v != (i%2 == 0) {
			t.Fatalf("get %d = %v after replay, want %v", i, v, i%2 == 0)
		}
	}
	snap := c.Counters().Snapshot()
	if snap.Respawns == 0 || snap.ReplayedPuts == 0 {
		t.Fatalf("recovery did not respawn/replay (respawns %d, replayed %d)", snap.Respawns, snap.ReplayedPuts)
	}
	if c.Degraded() != 0 {
		t.Fatalf("%d shards degraded; replay should have recovered them", c.Degraded())
	}
}

// TestCloseReapsAllWorkers: after Close, no worker process exists — the
// zero-orphans contract, probed by PID.
func TestCloseReapsAllWorkers(t *testing.T) {
	c, err := NewCoordinator(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	pids := c.WorkerPIDs()
	if len(pids) != 2 {
		t.Fatalf("WorkerPIDs = %v, want 2 live workers", pids)
	}
	if leaked := livePIDs(pids); len(leaked) != 2 {
		t.Fatalf("live probe sees %v of %v before Close", leaked, pids)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if leaked := livePIDs(pids); len(leaked) != 0 {
		t.Fatalf("worker PIDs %v still alive after Close", leaked)
	}
}

// TestCloseMidRPC closes the coordinator while rpcs are in flight from many
// goroutines. Close must win cleanly: no data race on the connection (this
// test is the -race target for that fix), no deadlock in the draining rpcs,
// and — because the recovery ladder is gated on closed — no worker spawned
// after Close, so no orphaned PIDs.
func TestCloseMidRPC(t *testing.T) {
	c, err := NewCoordinator(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	pids := c.WorkerPIDs()
	gb := &graphBackend{c: c, prefix: "t/"}
	const seeded = 8
	for i := 0; i < seeded; i++ {
		if err := gb.Put("receipts", gep.ItemKey{I: i}, true); err != nil {
			t.Fatalf("seed put %d: %v", i, err)
		}
	}
	// Stall every frame a little so the workers' replies are reliably still
	// in flight when Close lands mid-exchange.
	c.SetFrameHook(func(dir chaos.Dir, shard int, msgType string, size int) chaos.Verdict {
		return chaos.Verdict{Delay: 2 * time.Millisecond}
	})
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 64; i++ {
				// Errors are expected once Close lands; what matters is
				// that every call returns instead of deadlocking.
				_, _ = gb.Get("receipts", gep.ItemKey{I: i % seeded})
				_ = gb.Put("receipts", gep.ItemKey{I: 1000 + g*100 + i}, true)
			}
		}()
	}
	close(start)
	time.Sleep(5 * time.Millisecond) // let the rpcs take flight
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if leaked := livePIDs(pids); len(leaked) != 0 {
		t.Fatalf("worker PIDs %v still alive after mid-rpc Close", leaked)
	}
	// The recovery ladder must not have respawned anything post-Close:
	// WorkerPIDs reports only processes not yet reaped.
	if after := livePIDs(c.WorkerPIDs()); len(after) != 0 {
		t.Fatalf("worker PIDs %v spawned by recovery after Close", after)
	}
}

// TestChaosDropsBatchFrame aims MessageDrop at putbatch frames only: losing
// a whole batch mid-flight must cost one retry of the batch, never an item.
// The run must still verify with zero violations.
func TestChaosDropsBatchFrame(t *testing.T) {
	ge, err := bench.ByName("ge")
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Shards: 2, Discipline: true, Options: fastOpts()}
	res := r.Drive(ge, 64, 16, 11, &chaos.MessageDrop{Prob: 1, Times: 3, Only: "putbatch"})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Injections == 0 {
		t.Fatal("no putbatch frame was dropped — the targeted fault never fired")
	}
	if res.Counters.Retries == 0 {
		t.Fatal("batch frames dropped but no retry recorded — the loss was not absorbed by the retry rung")
	}
	if len(res.Violations) != 0 {
		t.Fatalf("discipline violations after dropped batch frames: %v", res.Violations)
	}
	if res.Counters.PutFrames == 0 || res.Counters.RemotePuts == 0 {
		t.Fatalf("no batched puts on the wire (counters %+v)", res.Counters)
	}
}

// TestBatchedPutsReduceFrames is the tentpole's wire-level acceptance
// check: with verified reads off (no per-get flush barriers), a run's
// mirror puts must cross the socket in far fewer frames than ops — at
// least 4 ops per putbatch frame on average, against the 1:1 ratio of the
// old per-item data plane.
func TestBatchedPutsReduceFrames(t *testing.T) {
	ge, err := bench.ByName("ge")
	if err != nil {
		t.Fatal(err)
	}
	opts := fastOpts()
	opts.VerifySample = -1                  // local reads: no pre-get flush barriers
	opts.FlushEvery = 20 * time.Millisecond // let size, not time, trigger flushes
	r := &Runner{Shards: 2, Discipline: true, Options: opts}
	res := r.Drive(ge, 64, 16, 3, nil)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Counters.PutFrames == 0 {
		t.Fatalf("no putbatch frames (counters %+v)", res.Counters)
	}
	if ratio := float64(res.Counters.RemotePuts) / float64(res.Counters.PutFrames); ratio < 4 {
		t.Fatalf("%d puts in %d frames (%.1f puts/frame) — batching is not amortising the round trips",
			res.Counters.RemotePuts, res.Counters.PutFrames, ratio)
	}
	if res.Counters.RemoteGets != 0 {
		t.Fatalf("%d remote gets with sampling disabled — local serving is broken", res.Counters.RemoteGets)
	}
	if res.Counters.LocalGets == 0 {
		t.Fatal("no local gets recorded")
	}
}
