// Package fw implements the paper's third benchmark: Floyd-Warshall
// all-pairs shortest path. It instantiates the GEP recursion of
// internal/gep with the min-plus kernel over the full cubic update set
// (every tile updates at every elimination step, unlike GE's triangular
// set), which yields the classic blocked FW phase structure: diagonal tile,
// then pivot row and column, then the rest.
package fw

import (
	"context"

	"dpflow/internal/cnc"
	"dpflow/internal/core"
	"dpflow/internal/forkjoin"
	"dpflow/internal/gep"
	"dpflow/internal/kernels"
	"dpflow/internal/matrix"
)

// Infinity is the distance used for absent edges. It is large enough to
// dominate any real path yet small enough that sums of two infinities do
// not overflow float64 precision (so min-plus arithmetic stays exact for
// integer edge weights).
const Infinity = 1 << 30

// Algorithm is the GEP instantiation for FW: the min-plus kernel over the
// full cubic update set.
var Algorithm = gep.Algorithm{Kernel: kernels.FW, Shape: gep.Cube}

// Serial runs the classic triply nested Floyd-Warshall loop.
func Serial(x *matrix.Dense) { kernels.FWSerial(x) }

// RDPSerial runs the 2-way recursive divide-and-conquer FW serially.
func RDPSerial(x *matrix.Dense, base int) error { return Algorithm.RDPSerial(x, base) }

// ForkJoin runs the fork-join (OpenMP-tasking style) R-DP FW on pool.
func ForkJoin(x *matrix.Dense, base int, pool *forkjoin.Pool) error {
	return Algorithm.ForkJoin(x, base, pool)
}

// RunCnC runs the data-flow R-DP FW in the given CnC variant.
func RunCnC(x *matrix.Dense, base, workers int, v core.Variant) (gep.CnCStats, error) {
	return Algorithm.RunCnC(x, base, workers, v)
}

// RunCnCContext is RunCnC with cooperative cancellation and an optional
// graph-tuning hook (see gep.Algorithm.RunCnCContext).
func RunCnCContext(ctx context.Context, x *matrix.Dense, base, workers int, v core.Variant, tune func(*cnc.Graph)) (gep.CnCStats, error) {
	return Algorithm.RunCnCContext(ctx, x, base, workers, v, tune)
}

// Run dispatches any variant. SerialLoop ignores base, workers and pool.
func Run(v core.Variant, x *matrix.Dense, base, workers int, pool *forkjoin.Pool) (gep.CnCStats, error) {
	return RunContext(context.Background(), v, x, base, workers, pool)
}

// RunContext is Run with cooperative cancellation for the parallel
// variants.
func RunContext(ctx context.Context, v core.Variant, x *matrix.Dense, base, workers int, pool *forkjoin.Pool) (gep.CnCStats, error) {
	if v == core.SerialLoop {
		Serial(x)
		return gep.CnCStats{}, nil
	}
	return Algorithm.RunContext(ctx, v, x, base, workers, pool)
}
