package fw

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dpflow/internal/core"
	"dpflow/internal/forkjoin"
	"dpflow/internal/graphgen"
	"dpflow/internal/matrix"
)

func randomGraph(n int, seed int64) *matrix.Dense {
	return graphgen.Random(graphgen.Config{N: n, Density: 0.35, MaxWeight: 9, Infinity: Infinity},
		rand.New(rand.NewSource(seed)))
}

// The ring graph has a closed-form APSP solution: check every variant
// against the oracle, not just against each other.
func TestRingOracle(t *testing.T) {
	pool := forkjoin.NewPool(forkjoin.Config{Workers: 2})
	defer pool.Close()
	const n = 32
	for _, v := range []core.Variant{core.SerialLoop, core.OMPTasking, core.NativeCnC, core.ManualCnC} {
		d := graphgen.Ring(n, Infinity)
		if _, err := Run(v, d, 4, 2, pool); err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if want := graphgen.RingDistance(n, i, j); d.At(i, j) != want {
					t.Fatalf("%v: dist(%d,%d) = %v, want %v", v, i, j, d.At(i, j), want)
				}
			}
		}
	}
}

// Property: CnC FW output satisfies the triangle inequality and matches the
// serial loop, for random graphs, sizes, densities and base sizes.
func TestFWProperty(t *testing.T) {
	f := func(seed int64, baseExp uint8) bool {
		n := 16
		base := 1 << (baseExp % 5) // 1..16
		d := randomGraph(n, seed)
		ref := d.Clone()
		Serial(ref)
		if _, err := RunCnC(d, base, 3, core.TunerCnC); err != nil {
			return false
		}
		if !matrix.Equal(d, ref) {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				for k := 0; k < n; k++ {
					if d.At(i, j) > d.At(i, k)+d.At(k, j) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestDenseGraphAllFinite(t *testing.T) {
	d := graphgen.Random(graphgen.Config{N: 16, Density: 1, MaxWeight: 5, Infinity: Infinity},
		rand.New(rand.NewSource(4)))
	Serial(d)
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			if d.At(i, j) >= Infinity {
				t.Fatalf("complete graph left dist(%d,%d) infinite", i, j)
			}
		}
	}
}
