package fw

import (
	"testing"

	"dpflow/internal/core"
	"dpflow/internal/matrix"
)

// TestCnCLeakFree checks the FW memory contract end-to-end for every
// GC-enabled schedule: the declared get-counts must free every item by
// quiesce (no leak) without ever freeing one early (which would fail the
// run with a use-after-free), and the peak live set must stay below the
// total number of items put.
func TestCnCLeakFree(t *testing.T) {
	for _, v := range []core.Variant{core.NativeCnC, core.TunerCnC, core.ManualCnC} {
		t.Run(v.String(), func(t *testing.T) {
			orig := randomGraph(64, 3)
			ref := orig.Clone()
			Serial(ref)

			x := orig.Clone()
			stats, err := RunCnC(x, 8, 3, v)
			if err != nil {
				t.Fatal(err)
			}
			if !matrix.Equal(x, ref) {
				t.Fatalf("result disagrees with serial (maxdiff %g)", matrix.MaxAbsDiff(x, ref))
			}
			if stats.LiveItems != 0 {
				t.Fatalf("LiveItems = %d after quiesce, want 0 (declared get-counts too high)", stats.LiveItems)
			}
			if stats.ItemsFreed != int64(stats.ItemsPut) {
				t.Fatalf("ItemsFreed = %d, want %d", stats.ItemsFreed, stats.ItemsPut)
			}
			if stats.PeakLiveItems >= int64(stats.ItemsPut) {
				t.Fatalf("PeakLiveItems = %d, want < %d (no item ever died)", stats.PeakLiveItems, stats.ItemsPut)
			}
		})
	}
}

// TestNonBlockingExcludedFromGC: the polling schedule re-runs step
// instances on poll misses, so per-instance release would over-decrement;
// the memory contract is deliberately not declared there and no item may
// ever be freed.
func TestNonBlockingExcludedFromGC(t *testing.T) {
	orig := randomGraph(64, 3)
	ref := orig.Clone()
	Serial(ref)

	x := orig.Clone()
	stats, err := RunCnC(x, 8, 3, core.NonBlockingCnC)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(x, ref) {
		t.Fatalf("result disagrees with serial (maxdiff %g)", matrix.MaxAbsDiff(x, ref))
	}
	if stats.ItemsFreed != 0 {
		t.Fatalf("ItemsFreed = %d, want 0 (no get-counts declared for polling)", stats.ItemsFreed)
	}
	if stats.LiveItems != int64(stats.ItemsPut) {
		t.Fatalf("LiveItems = %d, want %d", stats.LiveItems, stats.ItemsPut)
	}
}
