package exec

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// chanSource is a minimal Source over per-slot FIFO queues. When steal is
// set, any slot may also drain other slots' queues (modelling stealable
// work); otherwise work is runnable only on its own slot (modelling
// ComputeOn pinning).
type chanSource struct {
	mu    sync.Mutex
	qs    [][]func()
	steal bool
	ran   atomic.Int64
}

func newChanSource(slots int, steal bool) *chanSource {
	return &chanSource{qs: make([][]func(), slots), steal: steal}
}

func (s *chanSource) push(slot int, f func()) {
	s.mu.Lock()
	s.qs[slot] = append(s.qs[slot], f)
	s.mu.Unlock()
}

func (s *chanSource) pop(slot int) func() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.qs[slot]) > 0 {
		f := s.qs[slot][0]
		s.qs[slot] = s.qs[slot][1:]
		return f
	}
	if s.steal {
		for i := range s.qs {
			if len(s.qs[i]) > 0 {
				f := s.qs[i][0]
				s.qs[i] = s.qs[i][1:]
				return f
			}
		}
	}
	return nil
}

func (s *chanSource) RunSlot(slot, budget int) int {
	n := 0
	for n < budget {
		f := s.pop(slot)
		if f == nil {
			break
		}
		f()
		s.ran.Add(1)
		n++
	}
	return n
}

func TestExecutorRunsAllWork(t *testing.T) {
	e := New(4)
	defer e.Close()
	src := newChanSource(4, true)
	l := e.Lease("t", 4, src)
	defer l.Close()

	const total = 1000
	var done sync.WaitGroup
	done.Add(total)
	for i := 0; i < total; i++ {
		slot := i % 4
		src.push(slot, func() { done.Done() })
		l.Notify(slot)
	}
	waitDone(t, &done, 5*time.Second, "work did not complete")
	if got := src.ran.Load(); got != total {
		t.Fatalf("ran %d, want %d", got, total)
	}
}

// TestExecutorNoLostWakeup ping-pongs single items with full quiescence in
// between, the pattern most likely to race Notify against a parking worker.
func TestExecutorNoLostWakeup(t *testing.T) {
	e := New(2)
	defer e.Close()
	src := newChanSource(1, false)
	l := e.Lease("t", 1, src)
	defer l.Close()

	for i := 0; i < 2000; i++ {
		ch := make(chan struct{})
		src.push(0, func() { close(ch) })
		l.Notify(0)
		select {
		case <-ch:
		case <-time.After(5 * time.Second):
			t.Fatalf("iteration %d: item never ran (lost wakeup)", i)
		}
	}
}

// TestExecutorPinnedSlotServed verifies work runnable only on its hinted
// slot is served even when other leases keep the executor busy.
func TestExecutorPinnedSlotServed(t *testing.T) {
	e := New(2)
	defer e.Close()

	// A noisy lease that keeps generating work.
	noisy := newChanSource(2, true)
	nl := e.Lease("noisy", 2, noisy)
	defer nl.Close()
	stop := atomic.Bool{}
	var refill func()
	refill = func() {
		if !stop.Load() {
			noisy.push(0, refill)
			nl.Notify(0)
		}
	}
	noisy.push(0, refill)
	nl.Notify(0)
	defer stop.Store(true)

	// Pinned work on slot 3 of a 4-slot non-stealing lease.
	pinned := newChanSource(4, false)
	pl := e.Lease("pinned", 4, pinned)
	defer pl.Close()
	for i := 0; i < 100; i++ {
		ch := make(chan struct{})
		pinned.push(3, func() { close(ch) })
		pl.Notify(3)
		select {
		case <-ch:
		case <-time.After(5 * time.Second):
			t.Fatalf("iteration %d: pinned work starved", i)
		}
	}
}

// TestExecutorMultiLeaseCompletion runs many leases concurrently and
// verifies every one finishes, with goroutines bounded by the pool.
func TestExecutorMultiLeaseCompletion(t *testing.T) {
	e := New(4)
	defer e.Close()
	before := runtime.NumGoroutine()

	const leases, perLease = 8, 500
	var wg sync.WaitGroup
	for i := 0; i < leases; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			src := newChanSource(4, true)
			l := e.Lease("t", 4, src)
			defer l.Close()
			var done sync.WaitGroup
			done.Add(perLease)
			for j := 0; j < perLease; j++ {
				slot := j % 4
				src.push(slot, func() { done.Done() })
				l.Notify(slot)
			}
			waitDone(t, &done, 10*time.Second, "lease work did not complete")
		}()
	}
	wg.Wait()

	after := runtime.NumGoroutine()
	if after > before+leases {
		t.Fatalf("goroutines grew from %d to %d: not bounded by pool + O(leases)", before, after)
	}
	st := e.Stats()
	if st.Units < leases*perLease {
		t.Fatalf("executor ran %d units, want >= %d", st.Units, leases*perLease)
	}
	if st.Leases != 0 {
		t.Fatalf("leases still registered after close: %d", st.Leases)
	}
}

// TestLeaseCloseDrains verifies that after Close returns the executor
// never calls RunSlot again, even with work still queued.
func TestLeaseCloseDrains(t *testing.T) {
	e := New(2)
	defer e.Close()
	src := newChanSource(2, true)
	l := e.Lease("t", 2, src)
	for i := 0; i < 100; i++ {
		src.push(i%2, func() { time.Sleep(100 * time.Microsecond) })
		l.Notify(i % 2)
	}
	l.Close()
	ranAtClose := src.ran.Load()
	time.Sleep(50 * time.Millisecond)
	if got := src.ran.Load(); got != ranAtClose {
		t.Fatalf("RunSlot called after Close: %d -> %d", ranAtClose, got)
	}
	l.Close() // idempotent
}

// TestExecutorCloseJoinsWorkers verifies Close wakes parked workers and
// joins them.
func TestExecutorCloseJoinsWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	e := New(4)
	// Let workers reach their parked state.
	time.Sleep(20 * time.Millisecond)
	e.Close()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("worker goroutines leaked: %d -> %d", before, after)
	}
}

func TestDefaultSingleton(t *testing.T) {
	a, b := Default(), Default()
	if a != b {
		t.Fatal("Default not a singleton")
	}
	if a.Workers() < 1 {
		t.Fatalf("default workers = %d", a.Workers())
	}
}

func waitDone(t *testing.T, wg *sync.WaitGroup, d time.Duration, msg string) {
	t.Helper()
	ch := make(chan struct{})
	go func() { wg.Wait(); close(ch) }()
	select {
	case <-ch:
	case <-time.After(d):
		t.Fatal(msg)
	}
}
