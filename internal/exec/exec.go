// Package exec is the process-wide shared executor: one pool of physical
// worker goroutines, sized to GOMAXPROCS, that every runtime in the module
// leases logical workers from. Before this seam existed each cnc.Graph and
// forkjoin.Pool spawned its own goroutine pool, so N concurrent graphs ran
// N×workers goroutines on GOMAXPROCS cores — oversubscription the paper's
// schedulers never modelled, and a structure under which no cross-graph
// admission control is possible. With the executor, worker *ownership*
// lives here and the runtimes become reentrant clients:
//
//   - a client leases `slots` logical workers (its configured concurrency
//     cap) and hands the lease a Source — a non-blocking "run up to budget
//     units of work on logical slot s" entry point;
//   - physical workers multiplex across all active leases: they claim one
//     logical slot at a time (so per-slot state — deques, pinned FIFOs,
//     ComputeOn ordering — keeps its single-consumer discipline), run a
//     bounded batch, release the slot and rotate to the next lease with
//     work;
//   - idleness is handled here, once: clients mark leases dirty on every
//     push (Lease.Notify) and the executor's park/wake protocol — the same
//     register-then-reprobe token design the cnc dispatch layer proved out
//     in PR 4 — guarantees no lost wakeup without a thundering herd.
//
// Total goroutines are therefore bounded by the executor size plus O(1)
// per in-flight run (context monitors, callers blocked in Run), never by
// jobs × workers.
//
// # Claim protocol
//
// A lease's logical slot is run by at most one physical worker at a time:
// slots are claimed by CAS, and a claim runs the Source until it reports no
// work or a batch budget is exhausted. Clients tag pushes with a slot hint
// (Notify(slot)); hinted slots are claimed preferentially, which is how
// ComputeOn-pinned work — runnable only on its designated logical worker —
// is guaranteed to be served even when other slots are idle. Work that any
// slot can serve (stealable queues) is covered by a fallback claim of any
// free slot.
//
// # Dirty-bit discipline (lost-wakeup freedom)
//
// Notify sets the slot's dirty bit and the lease's dirty bit *after* the
// client's push completed, then wakes at most one parked physical worker.
// A serving worker clears the lease dirty bit before scanning and each slot
// dirty bit before running it, so a push racing with the scan re-dirties
// and re-wakes. A dirty slot found busy (another worker inside it) re-sets
// the lease dirty bit: either the busy claim's own run loop sees the new
// work, or a later sweep re-claims the slot once it is released. A physical
// worker parks only after registering in the parked set and sweeping every
// lease once more — the push-enqueues-then-wakes / park-registers-then-
// reprobes pairing that makes the token handoff race-free.
package exec

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Source is the client side of a lease: a runtime able to execute its own
// work on a logical worker without blocking. RunSlot must run up to budget
// units of work available to logical worker `slot` — including work it can
// steal from the client's other slots — and return the number actually
// run, returning (rather than blocking) as soon as nothing is runnable.
// The executor guarantees at most one RunSlot call per slot is in flight.
type Source interface {
	RunSlot(slot, budget int) int
}

// batchBudget bounds one slot claim: after this many units the physical
// worker releases the slot and rotates to the next lease with work, so a
// busy tenant cannot monopolise a physical worker against a newly dirty
// one. Large enough that the claim overhead (one CAS + one sweep) is noise
// against hundreds of step executions.
const batchBudget = 256

// Stats is a snapshot of executor activity.
type Stats struct {
	Workers int    // physical worker goroutines
	Leases  int    // currently registered leases
	Claims  uint64 // slot claims that ran at least one unit
	Units   uint64 // work units executed across all leases
	Parks   uint64 // physical workers that went to sleep
	Wakeups uint64 // wake tokens handed to parked workers
}

// Executor is a pool of physical worker goroutines multiplexing every
// active lease. Create one with New (tests, pinned-GOMAXPROCS harnesses)
// or share the process-wide Default.
type Executor struct {
	workers int

	leases atomic.Pointer[[]*Lease] // copy-on-write snapshot for lock-free sweeps
	leaseMu sync.Mutex              // serialises snapshot rewrites

	parkMu   sync.Mutex
	parked   []int
	isParked []bool
	done     bool
	nParked  atomic.Int32
	wake     []chan struct{}

	claims  atomic.Uint64
	units   atomic.Uint64
	parks   atomic.Uint64
	wakeups atomic.Uint64

	wg sync.WaitGroup
}

// New creates and starts an executor with the given number of physical
// workers (minimum 1; 0 means GOMAXPROCS). Close it when done — except the
// process-wide Default, which lives for the process.
func New(workers int) *Executor {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Executor{workers: workers}
	empty := make([]*Lease, 0)
	e.leases.Store(&empty)
	e.isParked = make([]bool, workers)
	e.wake = make([]chan struct{}, workers)
	for i := range e.wake {
		e.wake[i] = make(chan struct{}, 1)
	}
	e.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go e.loop(i)
	}
	return e
}

var (
	defaultOnce sync.Once
	defaultExec *Executor
)

// Default returns the process-wide executor, created on first use with
// GOMAXPROCS physical workers. Every cnc.Graph and forkjoin.Pool without an
// explicit executor runs here, which is what lets N concurrent graphs
// multiplex instead of oversubscribing. Never Close it.
func Default() *Executor {
	defaultOnce.Do(func() { defaultExec = New(0) })
	return defaultExec
}

// Workers returns the number of physical workers.
func (e *Executor) Workers() int { return e.workers }

// Stats returns a snapshot of the executor's activity counters.
func (e *Executor) Stats() Stats {
	return Stats{
		Workers: e.workers,
		Leases:  len(*e.leases.Load()),
		Claims:  e.claims.Load(),
		Units:   e.units.Load(),
		Parks:   e.parks.Load(),
		Wakeups: e.wakeups.Load(),
	}
}

// Close shuts the executor down and joins its workers. Callers must close
// every lease first; work still queued in leased runtimes is abandoned.
// Closing Default is a bug.
func (e *Executor) Close() {
	e.parkMu.Lock()
	e.done = true
	ws := append([]int(nil), e.parked...)
	for _, id := range ws {
		e.removeParkedLocked(id)
	}
	e.parkMu.Unlock()
	for _, id := range ws {
		select {
		case e.wake[id] <- struct{}{}:
		default:
		}
	}
	e.wg.Wait()
}

// Lease registers a client with `slots` logical workers. The lease is
// served immediately; call Notify after every push of work and Close when
// the client is done (Close waits for in-flight slot claims to drain, so
// after it returns the executor will never call src again).
func (e *Executor) Lease(name string, slots int, src Source) *Lease {
	if slots < 1 {
		slots = 1
	}
	l := &Lease{
		ex:        e,
		name:      name,
		src:       src,
		slots:     slots,
		slotDirty: make([]atomic.Bool, slots),
		slotBusy:  make([]atomic.Bool, slots),
		idle:      make(chan struct{}, 1),
	}
	e.leaseMu.Lock()
	old := *e.leases.Load()
	next := make([]*Lease, len(old)+1)
	copy(next, old)
	next[len(old)] = l
	e.leases.Store(&next)
	e.leaseMu.Unlock()
	return l
}

func (e *Executor) removeLease(l *Lease) {
	e.leaseMu.Lock()
	old := *e.leases.Load()
	next := make([]*Lease, 0, len(old))
	for _, o := range old {
		if o != l {
			next = append(next, o)
		}
	}
	e.leases.Store(&next)
	e.leaseMu.Unlock()
}

// Lease is one client's reservation of logical workers on the executor.
type Lease struct {
	ex    *Executor
	name  string
	src   Source
	slots int

	dirty     atomic.Bool
	slotDirty []atomic.Bool
	slotBusy  []atomic.Bool

	closed atomic.Bool
	active atomic.Int64 // physical workers currently inside serve()
	idle   chan struct{}

	claims atomic.Uint64
	units  atomic.Uint64
}

// Name returns the name the lease was registered with.
func (l *Lease) Name() string { return l.name }

// Slots returns the lease's logical worker count.
func (l *Lease) Slots() int { return l.slots }

// Units returns the number of work units the executor has run for this
// lease.
func (l *Lease) Units() uint64 { return l.units.Load() }

// Notify marks logical slot `slot` (any slot when out of range, e.g. -1)
// as having work and wakes at most one parked physical worker. Call it
// after the push that made the work visible — never before — so the
// executor's clear-before-scan discipline cannot miss it. Returns whether
// a parked worker was actually woken (the client-visible wake bill).
func (l *Lease) Notify(slot int) bool {
	if l.closed.Load() {
		return false
	}
	if slot >= 0 && slot < l.slots && !l.slotDirty[slot].Load() {
		l.slotDirty[slot].Store(true)
	}
	if !l.dirty.Load() {
		l.dirty.Store(true)
	}
	return l.ex.wakeOne()
}

// Close deregisters the lease and blocks until every in-flight slot claim
// has returned: after Close, the executor never calls the lease's Source
// again. Work still queued inside the client is the client's to drain or
// abandon. Close is idempotent.
func (l *Lease) Close() {
	if l.closed.Swap(true) {
		// Another Close is (or was) waiting for the drain; wait too.
		for l.active.Load() > 0 {
			<-l.idle
		}
		return
	}
	l.ex.removeLease(l)
	for l.active.Load() > 0 {
		<-l.idle
	}
}

// enter/exit bracket one physical worker's serve pass over the lease.
func (l *Lease) enter() bool {
	if l.closed.Load() {
		return false
	}
	l.active.Add(1)
	if l.closed.Load() {
		l.exit()
		return false
	}
	return true
}

func (l *Lease) exit() {
	if l.active.Add(-1) == 0 && l.closed.Load() {
		select {
		case l.idle <- struct{}{}:
		default:
		}
	}
}

// serve runs one bounded pass over the lease: claim dirty slots first
// (pinned work is only runnable on its hinted slot), then — if nothing was
// claimed — any free slot once, which serves stealable work whose hint
// slot is busy or stale. Returns the number of units run.
func (e *Executor) serve(l *Lease) int {
	if !l.enter() {
		return 0
	}
	defer l.exit()
	// Clear-before-scan: a Notify racing with this pass re-dirties.
	l.dirty.Store(false)
	total := 0
	claimed := false
	for s := 0; s < l.slots; s++ {
		if !l.slotDirty[s].Load() {
			continue
		}
		if !l.slotBusy[s].CompareAndSwap(false, true) {
			// Busy dirty slot: its current claim either sees the new work in
			// its own run loop or a later sweep re-claims it — either way the
			// lease must stay visibly dirty so that sweep happens.
			l.dirty.Store(true)
			continue
		}
		claimed = true
		l.slotDirty[s].Store(false)
		n := l.src.RunSlot(s, batchBudget)
		l.slotBusy[s].Store(false)
		if n > 0 {
			total += n
			if n >= batchBudget {
				l.dirty.Store(true) // budget exhausted: likely more work
			}
		}
	}
	if !claimed && total == 0 {
		// No claimable dirty slot; try one free slot so stealable work with
		// a busy hint slot is still served.
		for s := 0; s < l.slots; s++ {
			if !l.slotBusy[s].CompareAndSwap(false, true) {
				continue
			}
			n := l.src.RunSlot(s, batchBudget)
			l.slotBusy[s].Store(false)
			if n > 0 {
				total = n
				if n >= batchBudget {
					l.dirty.Store(true)
				}
			}
			break
		}
	}
	if total > 0 {
		e.claims.Add(1)
		e.units.Add(uint64(total))
		l.claims.Add(1)
		l.units.Add(uint64(total))
	}
	return total
}

// sweep serves one lease with work, rotating the worker's cursor for
// fairness across tenants. Returns whether any work ran.
func (e *Executor) sweep(cursor *int) bool {
	ls := *e.leases.Load()
	n := len(ls)
	if n == 0 {
		return false
	}
	for i := 0; i < n; i++ {
		idx := (*cursor + i) % n
		l := ls[idx]
		if !l.dirty.Load() {
			continue
		}
		if e.serve(l) > 0 {
			*cursor = (idx + 1) % n
			return true
		}
	}
	return false
}

func (e *Executor) loop(id int) {
	defer e.wg.Done()
	cursor := id // stagger starting positions across workers
	for {
		if e.sweep(&cursor) {
			continue
		}
		// Register as parked, then sweep once more before sleeping: a
		// Notify that missed the registration completed its push first, so
		// this sweep sees the dirty bit; a Notify that saw it leaves a
		// token.
		e.parkMu.Lock()
		if e.done {
			e.parkMu.Unlock()
			return
		}
		e.isParked[id] = true
		e.parked = append(e.parked, id)
		e.nParked.Add(1)
		e.parkMu.Unlock()
		if e.sweep(&cursor) {
			e.cancelPark(id)
			continue
		}
		e.parks.Add(1)
		<-e.wake[id]
		// A stale token can deliver before anyone deregistered us: always
		// deregister here so the parked set never holds a running worker.
		e.cancelPark(id)
		e.parkMu.Lock()
		stop := e.done
		e.parkMu.Unlock()
		if stop {
			return
		}
	}
}

// wakeOne hands a token to one parked worker (most recently parked first —
// warmest stack). No-op when nobody is parked, checked without the lock.
func (e *Executor) wakeOne() bool {
	if e.nParked.Load() == 0 {
		return false
	}
	e.parkMu.Lock()
	chosen := -1
	if n := len(e.parked); n > 0 {
		chosen = e.parked[n-1]
		e.removeParkedLocked(chosen)
	}
	e.parkMu.Unlock()
	if chosen < 0 {
		return false
	}
	e.wakeups.Add(1)
	select {
	case e.wake[chosen] <- struct{}{}:
	default:
	}
	return true
}

func (e *Executor) cancelPark(id int) {
	e.parkMu.Lock()
	if e.isParked[id] {
		e.removeParkedLocked(id)
	}
	e.parkMu.Unlock()
}

func (e *Executor) removeParkedLocked(id int) {
	e.isParked[id] = false
	e.nParked.Add(-1)
	for i, w := range e.parked {
		if w == id {
			e.parked = append(e.parked[:i], e.parked[i+1:]...)
			return
		}
	}
}
