package admission

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func mustAdmit(t *testing.T, tn *Tenant, bytes int64) *Grant {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	g, err := tn.Admit(ctx, bytes)
	if err != nil {
		t.Fatalf("Admit(%d) = %v", bytes, err)
	}
	return g
}

func TestAdmitWithinBudget(t *testing.T) {
	c := New(100)
	tn := c.Tenant("a", 0)
	g1 := mustAdmit(t, tn, 60)
	g2 := mustAdmit(t, tn, 40)
	if g1.Degraded() || g2.Degraded() {
		t.Fatal("in-budget admissions marked degraded")
	}
	s := c.Stats()
	if s.Reserved != 100 || s.Admitted != 2 || s.Degradations != 0 {
		t.Fatalf("stats = %+v", s)
	}
	g1.Release()
	g2.Release()
	if s := c.Stats(); s.Reserved != 0 || s.Released != 2 {
		t.Fatalf("after release: %+v", s)
	}
}

// A reservation that does not fit waits until a release makes room, and
// the sum of live reservations never exceeds the budget.
func TestAdmitBackpressure(t *testing.T) {
	c := New(100)
	tn := c.Tenant("a", 0)
	g1 := mustAdmit(t, tn, 80)

	admitted := make(chan *Grant)
	go func() {
		g, err := tn.Admit(context.Background(), 50)
		if err != nil {
			t.Error(err)
		}
		admitted <- g
	}()
	// The 50 must be queued, not admitted: 80+50 > 100.
	time.Sleep(20 * time.Millisecond)
	select {
	case <-admitted:
		t.Fatal("reservation admitted over budget")
	default:
	}
	if s := c.Stats(); s.QueueDepth != 1 {
		t.Fatalf("queue depth = %d, want 1", s.QueueDepth)
	}
	g1.Release()
	g2 := <-admitted
	if g2.Degraded() {
		t.Fatal("normally admitted reservation marked degraded")
	}
	if s := c.Stats(); s.Reserved != 50 || s.QueueDepth != 0 {
		t.Fatalf("after pump: %+v", s)
	}
	g2.Release()
}

// Admission is strict FIFO: a small job that fits cannot jump a queued
// big job.
func TestAdmitFIFONoStarvation(t *testing.T) {
	c := New(100)
	tn := c.Tenant("a", 0)
	g1 := mustAdmit(t, tn, 80)

	var order []int
	var mu sync.Mutex
	record := func(i int) {
		mu.Lock()
		order = append(order, i)
		mu.Unlock()
	}
	var wg sync.WaitGroup
	big := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(big) // queued first
		g, _ := tn.Admit(context.Background(), 95)
		record(1)
		g.Release()
	}()
	<-big
	time.Sleep(20 * time.Millisecond) // let the 90 reach the queue
	wg.Add(1)
	go func() {
		defer wg.Done()
		g, _ := tn.Admit(context.Background(), 10) // would fit right now
		record(2)
		g.Release()
	}()
	time.Sleep(20 * time.Millisecond)
	if s := c.Stats(); s.QueueDepth != 2 {
		t.Fatalf("queue depth = %d, want 2 (small job must queue behind big)", s.QueueDepth)
	}
	g1.Release()
	wg.Wait()
	if len(order) != 2 || order[0] != 1 {
		t.Fatalf("admission order = %v, want the big job first", order)
	}
}

func TestTenantQuota(t *testing.T) {
	c := New(0) // unlimited process budget: quota-only arbitration
	a := c.Tenant("a", 50)
	b := c.Tenant("b", 50)
	ga := mustAdmit(t, a, 50)
	// Tenant b is unaffected by a's full quota.
	gb := mustAdmit(t, b, 50)
	// a's next reservation waits for a's own release.
	admitted := make(chan struct{})
	go func() {
		g, _ := a.Admit(context.Background(), 10)
		close(admitted)
		g.Release()
	}()
	time.Sleep(20 * time.Millisecond)
	select {
	case <-admitted:
		t.Fatal("tenant exceeded its quota")
	default:
	}
	ga.Release()
	select {
	case <-admitted:
	case <-time.After(5 * time.Second):
		t.Fatal("release did not unblock the tenant's waiter")
	}
	gb.Release()
}

// A reservation larger than the process budget is force-admitted once the
// controller drains, counted as a degradation — never deadlocked.
func TestDegradationOverBudget(t *testing.T) {
	c := New(100)
	tn := c.Tenant("a", 0)
	g1 := mustAdmit(t, tn, 30)
	admitted := make(chan *Grant)
	go func() {
		g, err := tn.Admit(context.Background(), 500)
		if err != nil {
			t.Error(err)
		}
		admitted <- g
	}()
	time.Sleep(20 * time.Millisecond)
	select {
	case <-admitted:
		t.Fatal("hopeless reservation admitted while others still run")
	default:
	}
	g1.Release() // drains the controller: force-admission fires
	var g2 *Grant
	select {
	case g2 = <-admitted:
	case <-time.After(5 * time.Second):
		t.Fatal("hopeless reservation never force-admitted (deadlock)")
	}
	if !g2.Degraded() {
		t.Fatal("forced admission not marked degraded")
	}
	if s := c.Stats(); s.Degradations != 1 {
		t.Fatalf("degradations = %d, want 1", s.Degradations)
	}
	g2.Release()
	if s := c.Stats(); s.Reserved != 0 {
		t.Fatalf("reserved = %d after all releases", s.Reserved)
	}
}

// A reservation larger than its tenant quota degrades once the tenant
// drains, without waiting for unrelated tenants.
func TestDegradationOverQuota(t *testing.T) {
	c := New(1000)
	a := c.Tenant("a", 50)
	b := c.Tenant("b", 0)
	gb := mustAdmit(t, b, 100) // unrelated live reservation
	g := mustAdmit(t, a, 90)   // > a's quota; a has nothing out
	if !g.Degraded() {
		t.Fatal("over-quota admission with idle tenant not degraded")
	}
	g.Release()
	gb.Release()
}

func TestAdmitCancellation(t *testing.T) {
	c := New(100)
	tn := c.Tenant("a", 0)
	g1 := mustAdmit(t, tn, 100)
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error)
	go func() {
		_, err := tn.Admit(ctx, 50)
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	if err := <-errCh; err != context.Canceled {
		t.Fatalf("cancelled Admit = %v, want context.Canceled", err)
	}
	if s := c.Stats(); s.QueueDepth != 0 {
		t.Fatalf("queue depth = %d after cancellation", s.QueueDepth)
	}
	// A cancelled head must not wedge the queue for the next waiter.
	admitted := make(chan struct{})
	go func() {
		g, _ := tn.Admit(context.Background(), 50)
		close(admitted)
		defer g.Release()
	}()
	time.Sleep(20 * time.Millisecond)
	g1.Release()
	select {
	case <-admitted:
	case <-time.After(5 * time.Second):
		t.Fatal("queue wedged after a cancelled waiter")
	}
}

// Concurrent stress: reservations from many goroutines never exceed the
// budget (checked at every admission) and all eventually complete.
func TestAdmitConcurrentNeverOverBudget(t *testing.T) {
	const budget = 1000
	c := New(budget)
	tn := c.Tenant("a", 0)
	var live atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			size := int64(100 + 10*(i%5))
			g, err := tn.Admit(context.Background(), size)
			if err != nil {
				t.Error(err)
				return
			}
			if now := live.Add(size); now > budget {
				t.Errorf("live reservations %d exceed budget %d", now, budget)
			}
			time.Sleep(time.Millisecond)
			live.Add(-size)
			g.Release()
		}(i)
	}
	wg.Wait()
	s := c.Stats()
	if s.Reserved != 0 || s.Degradations != 0 {
		t.Fatalf("final stats: %+v", s)
	}
	if s.MaxQueueDepth == 0 {
		t.Fatal("stress run never queued — budget contention untested")
	}
}

func TestUnsizedJobsBypass(t *testing.T) {
	c := New(10)
	tn := c.Tenant("a", 0)
	g1 := mustAdmit(t, tn, 10)
	g2 := mustAdmit(t, tn, 0) // unsized: no reservation to arbitrate
	if g2.Bytes() != 0 {
		t.Fatalf("unsized grant bytes = %d", g2.Bytes())
	}
	g2.Release()
	g1.Release()
	if s := c.Stats(); s.Reserved != 0 {
		t.Fatalf("reserved = %d", s.Reserved)
	}
}
