// Package admission is cross-graph admission control: the process-level
// promotion of the per-graph memory accountant (cnc.WithMemoryLimit,
// PR 2). One Controller guards one process memory budget; tenants hold
// per-tenant quotas; jobs reserve bytes before they run and release them
// when done. The contract mirrors the accountant's, one level up:
//
//   - Admitted reservations never exceed the process budget or the
//     tenant's quota — so when every job also runs under
//     WithMemoryLimit(reservation), the aggregate PeakLiveBytes of all
//     running jobs stays ≤ the process budget whenever nothing stalled or
//     degraded (the accountant guarantees per-graph peak ≤ limit iff
//     BackpressureStalls == 0; this controller guarantees Σ limits ≤
//     budget iff Degradations == 0).
//   - Waiting is strict FIFO across tenants: the queue head is admitted
//     as soon as budget and quota have room, and nothing behind it can
//     jump the queue — a stream of small jobs cannot starve a big one.
//   - Liveness beats the budget, counted: a reservation that could never
//     be satisfied even with everything else drained (bytes > budget, or
//     bytes > quota) is admitted anyway and counted as a Degradation —
//     the process-level analogue of the accountant's forced admission —
//     instead of deadlocking the queue or OOM-killing later.
//
// Callers surface the counters through /metrics; operators alert on
// Degradations > 0 exactly like BackpressureStalls > 0.
package admission

import (
	"context"
	"sync"
)

// Controller guards one process-wide memory budget. Create with New;
// register tenants with Tenant.
type Controller struct {
	mu       sync.Mutex
	budget   int64 // 0 = unlimited
	reserved int64
	queue    []*waiter
	tenants  map[string]*Tenant

	admitted     uint64
	released     uint64
	degradations uint64
	maxQueue     int
}

// Tenant is one client of the controller with its own quota. Obtain with
// Controller.Tenant; safe for concurrent use.
type Tenant struct {
	c        *Controller
	name     string
	quota    int64 // 0 = unlimited (still bounded by the process budget)
	reserved int64

	admitted     uint64
	degradations uint64
}

type waiter struct {
	t     *Tenant
	bytes int64
	ready chan struct{} // closed on admission
	// degraded is set when the admission was forced over budget/quota.
	degraded bool
	// abandoned is set when the waiter's context was cancelled; the pump
	// skips it without reserving.
	abandoned bool
}

// Grant is an admitted reservation. Release it exactly once when the job's
// memory is gone (after the graph quiesced and verification read what it
// needed). Bytes is what was reserved — the value to hand the graph as its
// WithMemoryLimit.
type Grant struct {
	t        *Tenant
	bytes    int64
	degraded bool
	released bool
}

// New creates a controller with the given process budget in bytes;
// budget <= 0 means unlimited (admission is then quota-only).
func New(budget int64) *Controller {
	if budget < 0 {
		budget = 0
	}
	return &Controller{budget: budget, tenants: make(map[string]*Tenant)}
}

// Budget returns the process budget (0 = unlimited).
func (c *Controller) Budget() int64 { return c.budget }

// Tenant returns the named tenant, creating it with the given quota on
// first use (quota <= 0 = unlimited). A later call with a different quota
// updates it; in-flight reservations are unaffected.
func (c *Controller) Tenant(name string, quota int64) *Tenant {
	if quota < 0 {
		quota = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.tenants[name]
	if t == nil {
		t = &Tenant{c: c, name: name}
		c.tenants[name] = t
	}
	t.quota = quota
	return t
}

// Name returns the tenant's name.
func (t *Tenant) Name() string { return t.name }

// fits reports whether a reservation can be taken right now. Caller holds
// c.mu.
func (c *Controller) fits(t *Tenant, bytes int64) bool {
	if c.budget > 0 && c.reserved+bytes > c.budget {
		return false
	}
	if t.quota > 0 && t.reserved+bytes > t.quota {
		return false
	}
	return true
}

// take records the reservation. Caller holds c.mu.
func (c *Controller) take(t *Tenant, bytes int64, degraded bool) {
	c.reserved += bytes
	t.reserved += bytes
	c.admitted++
	t.admitted++
	if degraded {
		c.degradations++
		t.degradations++
	}
}

// Admit blocks until the reservation is granted (FIFO, respecting the
// process budget and the tenant quota), the context is cancelled, or the
// reservation is found hopeless and force-admitted as a counted
// degradation. bytes <= 0 is admitted immediately without reserving (an
// unsized job: admission control has nothing to arbitrate).
func (t *Tenant) Admit(ctx context.Context, bytes int64) (*Grant, error) {
	if bytes <= 0 {
		return &Grant{t: t}, nil
	}
	c := t.c
	c.mu.Lock()
	// Fast path: empty queue and room available. Admission never overtakes
	// the queue — with waiters present even a fitting request lines up —
	// and hopeless requests go through the queue too, so their forced
	// admission waits for in-flight reservations to drain first.
	if len(c.queue) == 0 && c.fits(t, bytes) {
		c.take(t, bytes, false)
		c.mu.Unlock()
		return &Grant{t: t, bytes: bytes}, nil
	}
	w := &waiter{t: t, bytes: bytes, ready: make(chan struct{})}
	c.queue = append(c.queue, w)
	if len(c.queue) > c.maxQueue {
		c.maxQueue = len(c.queue)
	}
	// The new tail might itself be admissible (everything ahead of it may
	// have been abandoned) — pump once before sleeping.
	c.pumpLocked()
	c.mu.Unlock()

	select {
	case <-w.ready:
		return &Grant{t: t, bytes: bytes, degraded: w.degraded}, nil
	case <-ctx.Done():
		c.mu.Lock()
		select {
		case <-w.ready:
			// Admission raced the cancellation and won; honour it, the
			// caller observes ctx itself if it still wants to bail (and
			// then releases the grant).
			c.mu.Unlock()
			return &Grant{t: t, bytes: bytes, degraded: w.degraded}, nil
		default:
		}
		w.abandoned = true
		c.dropAbandonedLocked()
		c.pumpLocked() // the departed head may unblock the next waiter
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// Release returns the grant's reservation to the budget and admits any
// newly-fitting waiters. Idempotent.
func (g *Grant) Release() {
	if g == nil || g.released || g.bytes == 0 {
		if g != nil {
			g.released = true
		}
		return
	}
	g.released = true
	c := g.t.c
	c.mu.Lock()
	c.reserved -= g.bytes
	g.t.reserved -= g.bytes
	c.released++
	c.pumpLocked()
	c.mu.Unlock()
}

// Bytes returns the reservation size (the job's WithMemoryLimit value);
// 0 for unsized jobs.
func (g *Grant) Bytes() int64 { return g.bytes }

// Degraded reports whether this admission was forced over budget/quota.
func (g *Grant) Degraded() bool { return g.degraded }

// pumpLocked admits queue heads while they fit. Strict FIFO: the first
// non-abandoned waiter that does not fit stops the pump — unless it is
// hopeless AND nothing is currently reserved, in which case waiting is
// pointless (no release could ever make room) and it is force-admitted as
// a counted degradation. Caller holds c.mu.
func (c *Controller) pumpLocked() {
	for len(c.queue) > 0 {
		w := c.queue[0]
		if w.abandoned {
			c.queue = c.queue[1:]
			continue
		}
		degraded := false
		if !c.fits(w.t, w.bytes) {
			// A hopeless head would park the whole queue forever; degrade
			// it the moment no live reservation could ever make room — the
			// admission analogue of the accountant's idle-graph forced
			// admission. While relevant reservations are still out we keep
			// waiting: their release bounds the overshoot to the one
			// oversized job.
			force := false
			if c.budget > 0 && w.bytes > c.budget {
				// Never fits the process budget: wait only for the process
				// to drain.
				force = c.reserved == 0
			} else if w.t.quota > 0 && w.bytes > w.t.quota {
				// Never fits the tenant quota: wait for the tenant to
				// drain and the budget to have room the normal way.
				force = w.t.reserved == 0 && !c.budgetBlocked(w.bytes)
			}
			if !force {
				return
			}
			degraded = true
		}
		c.queue = c.queue[1:]
		c.take(w.t, w.bytes, degraded)
		w.degraded = degraded
		close(w.ready)
	}
}

// budgetBlocked reports whether the process budget (as opposed to a
// tenant quota) is what blocks a reservation of the given size right now.
// Caller holds c.mu.
func (c *Controller) budgetBlocked(bytes int64) bool {
	return c.budget > 0 && c.reserved+bytes > c.budget
}

// dropAbandonedLocked compacts abandoned waiters anywhere in the queue
// (cancellation is the only way to leave it from the middle). Caller
// holds c.mu.
func (c *Controller) dropAbandonedLocked() {
	q := c.queue[:0]
	for _, w := range c.queue {
		if !w.abandoned {
			q = append(q, w)
		}
	}
	for i := len(q); i < len(c.queue); i++ {
		c.queue[i] = nil
	}
	c.queue = q
}

// TenantStats is one tenant's slice of the controller snapshot.
type TenantStats struct {
	Name         string
	Quota        int64 // 0 = unlimited
	Reserved     int64
	Admitted     uint64
	Degradations uint64
}

// Stats is a point-in-time snapshot of the controller.
type Stats struct {
	Budget        int64 // 0 = unlimited
	Reserved      int64
	QueueDepth    int    // waiters currently queued
	MaxQueueDepth int    // high-water mark of QueueDepth
	Admitted      uint64 // grants handed out (including degraded)
	Released      uint64 // grants returned
	Degradations  uint64 // forced admissions over budget/quota
	Tenants       []TenantStats
}

// Stats returns a snapshot; safe to call concurrently with admissions.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	depth := 0
	for _, w := range c.queue {
		if !w.abandoned {
			depth++
		}
	}
	s := Stats{
		Budget:        c.budget,
		Reserved:      c.reserved,
		QueueDepth:    depth,
		MaxQueueDepth: c.maxQueue,
		Admitted:      c.admitted,
		Released:      c.released,
		Degradations:  c.degradations,
	}
	for _, t := range c.tenants {
		s.Tenants = append(s.Tenants, TenantStats{
			Name:         t.name,
			Quota:        t.quota,
			Reserved:     t.reserved,
			Admitted:     t.admitted,
			Degradations: t.degradations,
		})
	}
	return s
}
