package sw

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dpflow/internal/core"
	"dpflow/internal/forkjoin"
	"dpflow/internal/kernels"
	"dpflow/internal/matrix"
	"dpflow/internal/seq"
)

func problem(n int, seed int64) *Problem {
	rng := rand.New(rand.NewSource(seed))
	a := seq.RandomDNA(n, rng)
	b := seq.Mutate(a, 0.3, seq.DNAAlphabet, rng)
	return &Problem{A: a, B: b, Scoring: kernels.DefaultScoring}
}

// The linear-space scorer must agree with the full-table serial fill —
// the one equivalence the registry conformance suite cannot check, since
// Linear never materialises a table. (Variant-vs-serial agreement for the
// table-filling drivers lives in internal/bench's conformance suite.)
func TestLinearMatchesSerialScore(t *testing.T) {
	p := problem(64, 1)
	ref := p.NewTable()
	wantScore := p.Serial(ref)
	if got := p.Linear(); got != wantScore {
		t.Fatalf("linear-space score %v != full-table score %v", got, wantScore)
	}
}

func TestRunDispatch(t *testing.T) {
	pool := forkjoin.NewPool(forkjoin.Config{Workers: 2})
	defer pool.Close()
	p := problem(32, 2)
	want, _ := p.Run(core.SerialLoop, 4, 1, nil)
	for _, v := range []core.Variant{core.SerialRDP, core.OMPTasking, core.NativeCnC, core.TunerCnC, core.ManualCnC} {
		got, err := p.Run(v, 4, 2, pool)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if got != want {
			t.Fatalf("%v: score %v, want %v", v, got, want)
		}
	}
	if _, err := p.Run(core.OMPTasking, 4, 2, nil); err == nil {
		t.Fatal("OMPTasking without pool should error")
	}
	if _, err := p.Run(core.Variant(99), 4, 2, nil); err == nil {
		t.Fatal("unknown variant should error")
	}
}

func TestValidation(t *testing.T) {
	p := problem(32, 3)
	if _, err := p.RDPSerial(matrix.New(3, 3), 4); err == nil {
		t.Error("wrong table size accepted")
	}
	if _, err := p.RDPSerial(p.NewTable(), 0); err == nil {
		t.Error("base 0 accepted")
	}
	bad := &Problem{A: []byte("ACGTACG"), B: []byte("ACGTACG"), Scoring: kernels.DefaultScoring}
	if _, err := bad.RDPSerial(matrix.New(8, 8), 4); err == nil {
		t.Error("non-power-of-two length accepted")
	}
	uneven := &Problem{A: []byte("ACGT"), B: []byte("AC"), Scoring: kernels.DefaultScoring}
	if _, err := uneven.RDPSerial(matrix.New(5, 5), 4); err == nil {
		t.Error("unequal lengths accepted")
	}
}

// Property: for random sequences and base sizes, the data-flow score equals
// the linear-space reference and never drops below the self-alignment lower
// bound on identical prefixes.
func TestCnCScoreProperty(t *testing.T) {
	f := func(seed int64, baseExp uint8) bool {
		p := problem(32, seed)
		base := 1 << (baseExp % 6) // 1..32
		h := p.NewTable()
		got, _, err := p.RunCnC(h, base, 2, core.NativeCnC)
		if err != nil {
			return false
		}
		return got == p.Linear()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// The wavefront structure: base tasks count must be exactly (n/bs)².
func TestBaseTaskCensus(t *testing.T) {
	p := problem(64, 4)
	h := p.NewTable()
	_, stats, err := p.RunCnC(h, 8, 2, core.ManualCnC)
	if err != nil {
		t.Fatal(err)
	}
	if stats.BaseTasks != 64 {
		t.Fatalf("BaseTasks = %d, want 64", stats.BaseTasks)
	}
	if stats.Aborts != 0 {
		t.Fatalf("manual variant aborted %d times", stats.Aborts)
	}
}

func TestIdenticalSequencesScore(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := seq.RandomDNA(64, rng)
	p := &Problem{A: a, B: append([]byte(nil), a...), Scoring: kernels.DefaultScoring}
	h := p.NewTable()
	score, _, err := p.RunCnC(h, 16, 2, core.TunerCnC)
	if err != nil {
		t.Fatal(err)
	}
	if want := float64(64) * kernels.DefaultScoring.Match; score != want {
		t.Fatalf("self-alignment score %v, want %v", score, want)
	}
}

func TestForkJoinWavefrontMatchesSerial(t *testing.T) {
	pool := forkjoin.NewPool(forkjoin.Config{Workers: 3})
	defer pool.Close()
	for _, base := range []int{4, 8, 32} {
		p := problem(64, int64(base))
		ref := p.NewTable()
		want := p.Serial(ref)
		h := p.NewTable()
		got, err := p.ForkJoinWavefront(h, base, pool)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("base=%d: score %v, want %v", base, got, want)
		}
		if !matrix.Equal(h, ref) {
			t.Fatalf("base=%d: table differs", base)
		}
	}
}
