// Package sw implements the paper's second benchmark: Smith-Waterman local
// alignment. The DP table has the classic wavefront dependency structure —
// cell (i, j) depends on (i−1, j), (i, j−1) and (i−1, j−1) — so at tile
// granularity the data-flow program exposes Θ(n/b) anti-diagonal
// parallelism, while the fork-join recursion
//
//	R(X) = R(X00); R(X01) ∥ R(X10); R(X11)
//
// inserts a join between the anti-diagonals of different recursion levels.
// That join is the artificial dependency the paper highlights: it blocks
// wavefront pipelining (tile (2,0) cannot start when (1,0) finishes — it
// must wait for the whole X00∥X10-subtree barrier), which is why SW is the
// benchmark where data-flow beats fork-join at every problem size.
package sw

import (
	"context"
	"fmt"

	"dpflow/internal/cnc"
	"dpflow/internal/core"
	"dpflow/internal/determinacy"
	"dpflow/internal/forkjoin"
	"dpflow/internal/gep"
	"dpflow/internal/kernels"
	"dpflow/internal/matrix"
)

// Problem bundles one SW instance: two sequences of equal power-of-two
// length and a scoring scheme. The DP table is (N+1)×(N+1) with the zero
// row/column boundary.
type Problem struct {
	A, B    []byte
	Scoring kernels.Scoring
	// Trace, when non-nil, brackets every base-tile kernel invocation in
	// every driver: the returned func is called when the kernel finishes
	// (the sched report's utilisation probe).
	Trace func() func()
}

// kernel applies the SW base-case kernel at table coordinates (i, j) under
// the optional Trace hook. Callers pass the already-shifted 1+tile origin.
func (p *Problem) kernel(h *matrix.Dense, i, j, s int) {
	if p.Trace != nil {
		done := p.Trace()
		defer done()
	}
	kernels.SW(h, p.A, p.B, p.Scoring, i, j, s)
}

// N returns the sequence length.
func (p *Problem) N() int { return len(p.A) }

// NewTable allocates the (N+1)×(N+1) DP table.
func (p *Problem) NewTable() *matrix.Dense { return matrix.New(p.N()+1, p.N()+1) }

func (p *Problem) validate(h *matrix.Dense, base int) error {
	n := p.N()
	if len(p.B) != n {
		return fmt.Errorf("sw: sequences must have equal length, got %d and %d", n, len(p.B))
	}
	if !matrix.IsPow2(n) {
		return fmt.Errorf("sw: length %d must be a power of two", n)
	}
	if h.Rows() != n+1 || h.Cols() != n+1 {
		return fmt.Errorf("sw: table must be %dx%d, got %dx%d", n+1, n+1, h.Rows(), h.Cols())
	}
	if base < 1 {
		return fmt.Errorf("sw: base %d must be >= 1", base)
	}
	return nil
}

// Serial fills the table with the straightforward loop and returns the
// maximum local-alignment score.
func (p *Problem) Serial(h *matrix.Dense) float64 {
	return kernels.SWSerial(h, p.A, p.B, p.Scoring)
}

// Linear computes the score in O(n) space (the paper's space optimisation).
func (p *Problem) Linear() float64 { return kernels.SWLinear(p.A, p.B, p.Scoring) }

// RDPSerial runs the 2-way recursive divide-and-conquer SW serially.
func (p *Problem) RDPSerial(h *matrix.Dense, base int) (float64, error) {
	if err := p.validate(h, base); err != nil {
		return 0, err
	}
	p.recurse(h, 0, 0, p.N(), base)
	return kernels.MaxScore(h), nil
}

func (p *Problem) recurse(h *matrix.Dense, i0, j0, s, base int) {
	if s <= base {
		p.kernel(h, 1+i0, 1+j0, s)
		return
	}
	half := s / 2
	p.recurse(h, i0, j0, half, base)
	p.recurse(h, i0, j0+half, half, base)
	p.recurse(h, i0+half, j0, half, base)
	p.recurse(h, i0+half, j0+half, half, base)
}

// ForkJoin runs the fork-join R-DP SW on pool: R(X00); R(X01) ∥ R(X10);
// join; R(X11), with the same structure recursively.
func (p *Problem) ForkJoin(h *matrix.Dense, base int, pool *forkjoin.Pool) (float64, error) {
	return p.ForkJoinContext(context.Background(), h, base, pool)
}

// ForkJoinContext is ForkJoin with cooperative cancellation: a cancelled
// ctx unwinds the recursion and returns ctx.Err() with a partial table.
func (p *Problem) ForkJoinContext(ctx context.Context, h *matrix.Dense, base int, pool *forkjoin.Pool) (float64, error) {
	if err := p.validate(h, base); err != nil {
		return 0, err
	}
	r := &fjSW{p: p, h: h, base: base}
	if err := pool.RunContext(ctx, func(c *forkjoin.Ctx) { r.recurse(c, 0, 0, p.N()) }); err != nil {
		return 0, err
	}
	return kernels.MaxScore(h), nil
}

// declareRace reports the wavefront access set of one base tile to the
// pool's race detector when the run is race-checked: tile (ti, tj) is
// written and its west, north and north-west neighbours are read (the SW
// kernel reads their boundary row/column out of the shared table).
func declareRace(c *forkjoin.Ctx, ti, tj int) {
	f := c.Race()
	if f == nil {
		return
	}
	f.Write(determinacy.TileCell(ti, tj))
	if ti > 0 {
		f.Read(determinacy.TileCell(ti-1, tj))
	}
	if tj > 0 {
		f.Read(determinacy.TileCell(ti, tj-1))
	}
	if ti > 0 && tj > 0 {
		f.Read(determinacy.TileCell(ti-1, tj-1))
	}
}

// fjSW is the per-run state of the recursive fork-join driver: the problem,
// the table and the base-case threshold, bundled so spawns can go through
// the closure-free SpawnCall trampoline.
type fjSW struct {
	p    *Problem
	h    *matrix.Dense
	base int
}

func swCallRecurse(c *forkjoin.Ctx, recv any, a [4]int) {
	recv.(*fjSW).recurse(c, a[0], a[1], a[2])
}

func (r *fjSW) recurse(ctx *forkjoin.Ctx, i0, j0, s int) {
	if s <= r.base {
		declareRace(ctx, i0/s, j0/s)
		r.p.kernel(r.h, 1+i0, 1+j0, s)
		return
	}
	half := s / 2
	r.recurse(ctx, i0, j0, half)
	var g forkjoin.Group
	ctx.SpawnCall(&g, swCallRecurse, r, [4]int{i0, j0 + half, half})
	ctx.SpawnCall(&g, swCallRecurse, r, [4]int{i0 + half, j0, half})
	ctx.Wait(&g) // artificial dependency: X11 waits for both anti-diagonal halves
	r.recurse(ctx, i0+half, j0+half, half)
}

// TileTag identifies a recursive block (I, J) of size S (in units of S), as
// in the GEP tags but without a K dimension — SW has a single pass.
type TileTag struct {
	I, J int
	S    int
}

// TileKey identifies a completed base tile in the item collection.
type TileKey struct {
	I, J int
}

// NewCnCGraph builds the static CnC structure of the SW program — one step
// collection prescribed by one tag collection, synchronised through one
// item collection of finished tiles — without running it.
func NewCnCGraph(name string) *cnc.Graph {
	g := cnc.NewGraph(name, 1)
	out := cnc.NewItemCollection[TileKey, bool](g, "tile_outputs")
	tags := cnc.NewTagCollection[TileTag](g, "tile_tags", false)
	step := cnc.NewStepCollection(g, "swTile", func(TileTag) error { return nil })
	step.Consumes(out).Produces(out)
	tags.Prescribe(step)
	return g
}

// RunCnC runs the data-flow SW: one step collection prescribed by one tag
// collection, one item collection of finished tiles. Base tiles fire as
// soon as their west, north and north-west neighbours are done — the
// wavefront the fork-join version cannot express.
func (p *Problem) RunCnC(h *matrix.Dense, base, workers int, variant core.Variant) (float64, gep.CnCStats, error) {
	return p.RunCnCContext(context.Background(), h, base, workers, variant, nil)
}

// RunCnCContext is RunCnC with cooperative cancellation; tune, when
// non-nil, receives the built graph before the run starts (the chaos
// harness's injection hook).
func (p *Problem) RunCnCContext(ctx context.Context, h *matrix.Dense, base, workers int, variant core.Variant, tune func(*cnc.Graph)) (float64, gep.CnCStats, error) {
	if err := p.validate(h, base); err != nil {
		return 0, gep.CnCStats{}, err
	}
	n := p.N()
	bs := gep.BaseSize(n, base)
	tiles := n / bs

	g := cnc.NewGraph("sw-"+variant.String(), workers)
	out := cnc.NewItemCollection[TileKey, bool](g, "tile_outputs")
	tags := cnc.NewTagCollection[TileTag](g, "tile_tags", false)

	await := func(k TileKey) bool {
		if variant == core.NonBlockingCnC {
			_, ok := out.TryGet(k)
			return ok
		}
		out.Get(k)
		return true
	}
	step := cnc.NewStepCollection(g, "swTile", func(t TileTag) error {
		if t.S > base {
			half := t.S / 2
			bu := g.NewBurst()
			tags.PutThrottledInto(TileTag{2 * t.I, 2 * t.J, half}, bu)
			tags.PutThrottledInto(TileTag{2 * t.I, 2*t.J + 1, half}, bu)
			tags.PutThrottledInto(TileTag{2*t.I + 1, 2 * t.J, half}, bu)
			tags.PutThrottledInto(TileTag{2*t.I + 1, 2*t.J + 1, half}, bu)
			bu.Flush()
			return nil
		}
		if t.I > 0 && !await(TileKey{t.I - 1, t.J}) ||
			t.J > 0 && !await(TileKey{t.I, t.J - 1}) ||
			t.I > 0 && t.J > 0 && !await(TileKey{t.I - 1, t.J - 1}) {
			tags.Put(t)
			return nil
		}
		p.kernel(h, 1+t.I*t.S, 1+t.J*t.S, t.S)
		out.Put(TileKey{t.I, t.J}, true)
		return nil
	})
	step.Consumes(out).Produces(out)

	deps := func(t TileTag) []cnc.Dep {
		if t.S > base {
			return nil
		}
		var ds []cnc.Dep
		if t.I > 0 {
			ds = append(ds, out.Key(TileKey{t.I - 1, t.J}))
		}
		if t.J > 0 {
			ds = append(ds, out.Key(TileKey{t.I, t.J - 1}))
		}
		if t.I > 0 && t.J > 0 {
			ds = append(ds, out.Key(TileKey{t.I - 1, t.J - 1}))
		}
		return ds
	}
	switch variant {
	case core.TunerCnC:
		step.WithDeps(cnc.TunedPrescheduled, deps)
	case core.ManualCnC:
		step.WithDeps(cnc.TunedTriggered, deps)
	}
	tags.Prescribe(step)

	// Memory contract (see internal/cnc: WithGetCount / WithMemoryLimit).
	// Tile (i, j) is read by its east, south and south-east neighbours, so
	// its get-count is the number of those that exist; interior tiles free
	// after exactly three reads, the last row/column after one, and the
	// corner (T−1, T−1) frees immediately on put. NonBlockingCnC is
	// excluded: its poll-miss re-put retires one successful step instance
	// per poll, which would release dependencies more than once.
	if variant != core.NonBlockingCnC {
		tile := bs * bs * 8
		out.WithGetCount(func(k TileKey) int {
			c := 0
			if k.I+1 < tiles {
				c++
			}
			if k.J+1 < tiles {
				c++
			}
			if k.I+1 < tiles && k.J+1 < tiles {
				c++
			}
			return c
		}).WithSizeOf(func(TileKey) int { return tile })
		step.WithGets(deps)
		tags.WithTagBytes(func(t TileTag) int {
			if t.S > base {
				return 0 // split tags only fan out; base tiles carry the data
			}
			return tile
		})
	}
	if tune != nil {
		tune(g)
	}

	err := g.RunContext(ctx, func() {
		if variant == core.ManualCnC {
			// One burst per anti-diagonal row: the whole grid's tags reach
			// the queue in tiles batched pushes instead of tiles² singles.
			for i := 0; i < tiles; i++ {
				bu := g.NewBurst()
				for j := 0; j < tiles; j++ {
					tags.PutThrottledInto(TileTag{i, j, bs}, bu)
				}
				bu.Flush()
			}
			return
		}
		tags.PutThrottled(TileTag{0, 0, n})
	})
	// Puts, not Len: with get-counts active Len is the *live* census and
	// drops to zero as tiles are garbage-collected.
	stats := gep.CnCStats{Stats: g.Stats(), BaseTasks: int(out.Puts())}
	if err != nil {
		return 0, stats, err
	}
	return kernels.MaxScore(h), stats, nil
}

// Run dispatches any variant; it allocates the table internally and returns
// the alignment score.
func (p *Problem) Run(v core.Variant, base, workers int, pool *forkjoin.Pool) (float64, error) {
	return p.RunContext(context.Background(), v, base, workers, pool)
}

// RunContext is Run with cooperative cancellation for the parallel
// variants; the serial variants ignore ctx.
func (p *Problem) RunContext(ctx context.Context, v core.Variant, base, workers int, pool *forkjoin.Pool) (float64, error) {
	h := p.NewTable()
	switch v {
	case core.SerialLoop:
		return p.Serial(h), nil
	case core.SerialRDP:
		return p.RDPSerial(h, base)
	case core.OMPTasking:
		if pool == nil {
			return 0, fmt.Errorf("sw: OMPTasking requires a fork-join pool")
		}
		return p.ForkJoinContext(ctx, h, base, pool)
	case core.NativeCnC, core.TunerCnC, core.ManualCnC, core.NonBlockingCnC:
		score, _, err := p.RunCnCContext(ctx, h, base, workers, v, nil)
		return score, err
	default:
		return 0, fmt.Errorf("sw: unsupported variant %v", v)
	}
}

// ForkJoinWavefront runs the tiled wavefront with one taskwait barrier per
// anti-diagonal — the alternative fork-join formulation the paper's
// footnote 6 describes ("in fork-join implementation, there is a barrier
// synchronization for every wavefront computation"). Its span is the
// optimal 2T−1 diagonals, but every diagonal is a full barrier: a tile
// cannot start until ALL tiles of the previous diagonal finish, not just
// its three neighbours, so it still under-utilises relative to data-flow
// when tile costs vary or workers outnumber the diagonal width.
func (p *Problem) ForkJoinWavefront(h *matrix.Dense, base int, pool *forkjoin.Pool) (float64, error) {
	if err := p.validate(h, base); err != nil {
		return 0, err
	}
	bs := gep.BaseSize(p.N(), base)
	tiles := p.N() / bs
	r := &fjSW{p: p, h: h, base: bs}
	pool.Run(func(ctx *forkjoin.Ctx) {
		var g forkjoin.Group
		for d := 0; d < 2*tiles-1; d++ {
			lo := 0
			if d >= tiles {
				lo = d - tiles + 1
			}
			hi := d
			if hi >= tiles {
				hi = tiles - 1
			}
			for i := lo; i <= hi; i++ {
				ctx.SpawnCall(&g, swCallTile, r, [4]int{i, d - i})
			}
			ctx.Wait(&g) // barrier per wavefront
		}
	})
	return kernels.MaxScore(h), nil
}

// swCallTile runs one base tile of the wavefront schedule; fjSW.base holds
// the resolved tile side.
func swCallTile(c *forkjoin.Ctx, recv any, a [4]int) {
	r := recv.(*fjSW)
	ti, tj := a[0], a[1]
	declareRace(c, ti, tj)
	r.p.kernel(r.h, 1+ti*r.base, 1+tj*r.base, r.base)
}
