package sw

import (
	"testing"

	"dpflow/internal/core"
	"dpflow/internal/forkjoin"
)

// Full-run allocation budgets (ISSUE 7), the SW counterpart of the gates in
// internal/gep: pooled dispatch keeps a complete wavefront run's allocation
// count at graph-construction-plus-boxed-keys scale. Budgets are ~2×
// current measurements at n=256/base=16 (16×16 tiles); see
// internal/gep/alloc_test.go for the rationale.
func TestRunAllocBudget(t *testing.T) {
	const n, base, workers = 256, 16, 4
	budget := map[core.Variant]float64{
		core.NativeCnC:  10000, // measured ~5.1k
		core.TunerCnC:   6000,  // measured ~3.1k
		core.ManualCnC:  9000,  // measured ~4.4k
		core.OMPTasking: 100,   // measured ~13
	}
	pool := forkjoin.NewPool(forkjoin.Config{Workers: workers})
	defer pool.Close()
	p := problem(n, 1)

	for _, v := range core.ParallelVariants {
		v := v
		run := func() {
			h := p.NewTable()
			if v == core.OMPTasking {
				if _, err := p.ForkJoinWavefront(h, base, pool); err != nil {
					t.Fatal(err)
				}
				return
			}
			if _, _, err := p.RunCnC(h, base, workers, v); err != nil {
				t.Fatal(err)
			}
		}
		run() // warm the pools and the runtime
		allocs := testing.AllocsPerRun(3, run)
		t.Logf("SW/%s: %.0f allocs/run (budget %.0f)", v, allocs, budget[v])
		if allocs > budget[v] {
			t.Errorf("SW/%s: %.0f allocs/run exceeds budget %.0f — a pooled dispatch path regressed", v, allocs, budget[v])
		}
	}
}
