package sw

import (
	"testing"

	"dpflow/internal/core"
)

// TestCnCLeakFree checks the SW memory contract end-to-end for every
// GC-enabled schedule: the per-tile get-counts (right, down, and diagonal
// readers at interior tiles, fewer at the edges) must free every item by
// quiesce without ever freeing one early.
func TestCnCLeakFree(t *testing.T) {
	for _, v := range []core.Variant{core.NativeCnC, core.TunerCnC, core.ManualCnC} {
		t.Run(v.String(), func(t *testing.T) {
			p := problem(64, 5)
			want := p.Linear()

			h := p.NewTable()
			score, stats, err := p.RunCnC(h, 8, 3, v)
			if err != nil {
				t.Fatal(err)
			}
			if score != want {
				t.Fatalf("score = %v, want %v", score, want)
			}
			if stats.LiveItems != 0 {
				t.Fatalf("LiveItems = %d after quiesce, want 0 (declared get-counts too high)", stats.LiveItems)
			}
			if stats.ItemsFreed != int64(stats.ItemsPut) {
				t.Fatalf("ItemsFreed = %d, want %d", stats.ItemsFreed, stats.ItemsPut)
			}
			if stats.PeakLiveItems >= int64(stats.ItemsPut) {
				t.Fatalf("PeakLiveItems = %d, want < %d (no item ever died)", stats.PeakLiveItems, stats.ItemsPut)
			}
		})
	}
}

// TestNonBlockingExcludedFromGC: the polling schedule re-runs step
// instances on poll misses, so the memory contract is deliberately not
// declared there and no item may ever be freed.
func TestNonBlockingExcludedFromGC(t *testing.T) {
	p := problem(64, 5)
	want := p.Linear()

	h := p.NewTable()
	score, stats, err := p.RunCnC(h, 8, 3, core.NonBlockingCnC)
	if err != nil {
		t.Fatal(err)
	}
	if score != want {
		t.Fatalf("score = %v, want %v", score, want)
	}
	if stats.ItemsFreed != 0 {
		t.Fatalf("ItemsFreed = %d, want 0 (no get-counts declared for polling)", stats.ItemsFreed)
	}
	if stats.LiveItems != int64(stats.ItemsPut) {
		t.Fatalf("LiveItems = %d, want %d", stats.LiveItems, stats.ItemsPut)
	}
}
