// Package serve is the long-running job service behind cmd/dpserve: an
// HTTP server that accepts dynamic-programming jobs, multiplexes them onto
// one shared exec.Executor, and arbitrates their memory through
// cross-tenant admission control (internal/exec/admission).
//
// A job is either a leaf — a registry benchmark id plus instance
// parameters — or a dynamic fork-join node: a list of child specs expanded
// at submission time into concurrently running children (the Conductor
// FORK_JOIN_DYNAMIC shape: the fan-out is data, not code). Leaves reserve
// their declared MemoryBytes with the admission controller before running
// and hand the granted reservation to the graph as its WithMemoryLimit, so
// the per-graph accountant and the process-level controller compose: the
// aggregate PeakLiveBytes of everything running stays within the process
// budget whenever nothing stalled or degraded.
//
// Orchestration runs on plain goroutines, never on executor workers: a
// graph run blocks until quiescence, and an executor worker that blocks on
// a *different* graph's completion would deadlock the pool (see
// internal/exec). The HTTP handler goroutines and the per-job goroutines
// spawned here are exactly the "O(jobs)" goroutine overhead the shared
// executor design budgets for.
//
// Every job gets a cooperative cancellation context (POST
// /jobs/{id}/cancel), an optional deadline, and a chaos.Watchdog watching
// the graph's own progress counters — a faulty or wedged job is cancelled
// by its watchdog instead of holding its admission reservation forever,
// which is what keeps one tenant's bad job from starving another tenant's
// queue position.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"dpflow/internal/bench"
	"dpflow/internal/chaos"
	"dpflow/internal/cnc"
	"dpflow/internal/core"
	"dpflow/internal/exec"
	"dpflow/internal/exec/admission"
	"dpflow/internal/forkjoin"
)

// Config configures a Server. The zero value serves on the process-wide
// executor with an unlimited memory budget.
type Config struct {
	// Executor is the shared pool jobs lease logical workers from; nil
	// means exec.Default().
	Executor *exec.Executor
	// Budget is the process memory budget in bytes handed to the admission
	// controller; 0 = unlimited (admission is then quota-only).
	Budget int64
	// Quotas are per-tenant byte quotas; tenants not listed get
	// DefaultQuota (0 = unlimited).
	Quotas map[string]int64
	// DefaultQuota applies to tenants absent from Quotas; 0 = unlimited.
	DefaultQuota int64
	// StallWindow is the per-job watchdog window: a running job whose
	// progress counters do not move for this long is cancelled as stalled.
	// 0 defaults to 10s; negative disables the watchdog.
	StallWindow time.Duration
	// MaxJobs caps the number of jobs one submission may expand to
	// (fork-join specs are trees); 0 defaults to 256.
	MaxJobs int
}

// JobSpec is the submission body of POST /jobs. Exactly one of Benchmark
// (a leaf job) or Fork (a dynamic fork-join node whose children are
// expanded at submission) must be set.
type JobSpec struct {
	// Tenant attributes the job's admission reservation and metrics;
	// empty means "default".
	Tenant string `json:"tenant,omitempty"`

	// Benchmark is the registry id (ge, sw, fw, ch) of a leaf job.
	Benchmark string `json:"benchmark,omitempty"`
	// Variant is the series label or alias (cnc, tuner, manual, openmp,
	// nonblocking, serial, serial_rdp); empty means cnc.
	Variant string `json:"variant,omitempty"`
	// N is the problem size (required for leaves); Base the base-case size
	// (default 16); Seed the instance seed.
	N    int   `json:"n,omitempty"`
	Base int   `json:"base,omitempty"`
	Seed int64 `json:"seed,omitempty"`
	// Workers is the job's logical-concurrency cap: dispatch lanes leased
	// from the shared executor, not goroutines. 0 means the executor's
	// physical worker count.
	Workers int `json:"workers,omitempty"`

	// DeadlineMS bounds the job (admission wait included); 0 = none.
	DeadlineMS int `json:"deadline_ms,omitempty"`
	// MemoryBytes is the job's admission reservation and the graph's
	// WithMemoryLimit; 0 skips memory arbitration for this job.
	MemoryBytes int64 `json:"memory_bytes,omitempty"`

	// Fork makes this a fork-join node: the children run concurrently and
	// the node completes when all of them do (fails on the first failure).
	Fork []JobSpec `json:"fork,omitempty"`
}

// Job states reported by GET /jobs/{id}.
const (
	StateQueued    = "queued"    // waiting for admission
	StateRunning   = "running"   // graph in flight (or children running)
	StateDone      = "done"      // completed and verified
	StateFailed    = "failed"    // run, verify or deadline failure
	StateCancelled = "cancelled" // cancelled via the API or a parent
)

// Status is the JSON shape of GET /jobs/{id}.
type Status struct {
	ID        string   `json:"id"`
	Tenant    string   `json:"tenant"`
	State     string   `json:"state"`
	Benchmark string   `json:"benchmark,omitempty"`
	Variant   string   `json:"variant,omitempty"`
	Error     string   `json:"error,omitempty"`
	Verified  bool     `json:"verified"`
	Degraded  bool     `json:"degraded,omitempty"`
	Stalled   bool     `json:"stalled,omitempty"`
	ElapsedMS int64    `json:"elapsed_ms"`
	Stats     *Metrics `json:"stats,omitempty"`
	Children  []Status `json:"children,omitempty"`
}

// Metrics is the per-job runtime counter snapshot exposed in Status.
type Metrics struct {
	TagsPut            uint64 `json:"tags_put"`
	ItemsPut           uint64 `json:"items_put"`
	StepsDone          uint64 `json:"steps_done"`
	Steals             uint64 `json:"steals"`
	Wakeups            uint64 `json:"wakeups"`
	LiveBytes          int64  `json:"live_bytes"`
	PeakLiveBytes      int64  `json:"peak_live_bytes"`
	BackpressureStalls int64  `json:"backpressure_stalls"`
	BackpressureWaits  int64  `json:"backpressure_waits"`
}

// Server is the job service. Create with New, mount Handler, Close when
// done (cancels running jobs and waits for them).
type Server struct {
	cfg Config
	ex  *exec.Executor
	ctl *admission.Controller

	baseCtx  context.Context
	shutdown context.CancelFunc
	wg       sync.WaitGroup

	mu    sync.Mutex
	jobs  map[string]*Job
	order []string // submission order, for stable listings
	seq   int
}

// Job is one node of a submitted job tree.
type Job struct {
	s    *Server
	id   string
	spec JobSpec

	children []*Job
	cancel   context.CancelFunc

	mu        sync.Mutex
	state     string
	err       error
	verified  bool
	degraded  bool
	stalled   bool
	requested bool // cancel endpoint hit (distinguishes from deadline)
	started   time.Time
	finished  time.Time
	graphs    []*cnc.Graph // live graphs, captured via RunOpts.Tune
	pool      *forkjoin.Pool
	final     cnc.Stats
	haveFinal bool
}

// New creates a Server.
func New(cfg Config) *Server {
	if cfg.StallWindow == 0 {
		cfg.StallWindow = 10 * time.Second
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 256
	}
	ex := cfg.Executor
	if ex == nil {
		ex = exec.Default()
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		cfg:      cfg,
		ex:       ex,
		ctl:      admission.New(cfg.Budget),
		baseCtx:  ctx,
		shutdown: cancel,
		jobs:     make(map[string]*Job),
	}
}

// Admission returns the server's admission controller (metrics, tests).
func (s *Server) Admission() *admission.Controller { return s.ctl }

// Close cancels every running job and waits for their goroutines. The
// executor is not closed — it is shared and typically process-wide.
func (s *Server) Close() {
	s.shutdown()
	s.wg.Wait()
}

func (s *Server) tenantFor(name string) *admission.Tenant {
	if name == "" {
		name = "default"
	}
	quota := s.cfg.DefaultQuota
	if q, ok := s.cfg.Quotas[name]; ok {
		quota = q
	}
	return s.ctl.Tenant(name, quota)
}

// parseVariant resolves a submission's variant token.
func parseVariant(name string) (core.Variant, error) {
	switch strings.ToLower(name) {
	case "", "cnc", "native":
		return core.NativeCnC, nil
	case "cnc_tuner", "tuner":
		return core.TunerCnC, nil
	case "cnc_manual", "manual":
		return core.ManualCnC, nil
	case "cnc_nonblocking", "nonblocking":
		return core.NonBlockingCnC, nil
	case "openmp", "omp", "forkjoin":
		return core.OMPTasking, nil
	case "serial":
		return core.SerialLoop, nil
	case "serial_rdp":
		return core.SerialRDP, nil
	}
	return 0, fmt.Errorf("unknown variant %q", name)
}

// validate checks a spec tree and counts its jobs.
func (s *Server) validate(spec *JobSpec, count *int) error {
	*count++
	if *count > s.cfg.MaxJobs {
		return fmt.Errorf("spec expands to more than %d jobs", s.cfg.MaxJobs)
	}
	if len(spec.Fork) > 0 {
		if spec.Benchmark != "" {
			return errors.New("a job is either a benchmark leaf or a fork node, not both")
		}
		for i := range spec.Fork {
			// Children inherit the parent's tenant unless they name their own.
			if spec.Fork[i].Tenant == "" {
				spec.Fork[i].Tenant = spec.Tenant
			}
			if err := s.validate(&spec.Fork[i], count); err != nil {
				return err
			}
		}
		return nil
	}
	if spec.Benchmark == "" {
		return errors.New("leaf job needs a benchmark id")
	}
	if _, err := bench.ByName(spec.Benchmark); err != nil {
		return err
	}
	if _, err := parseVariant(spec.Variant); err != nil {
		return err
	}
	if spec.N <= 0 {
		return errors.New("leaf job needs n > 0")
	}
	if spec.Base == 0 {
		spec.Base = 16
	}
	if spec.Base < 0 {
		return errors.New("base must be positive")
	}
	return nil
}

// Submit expands a spec into a job tree, registers it, and starts the root
// on a plain goroutine. It returns the root job.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	count := 0
	if err := s.validate(&spec, &count); err != nil {
		return nil, err
	}
	s.mu.Lock()
	root := s.buildLocked(spec)
	s.mu.Unlock()

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		root.run(s.baseCtx)
	}()
	return root, nil
}

// buildLocked allocates the job tree and registers every node. Caller
// holds s.mu.
func (s *Server) buildLocked(spec JobSpec) *Job {
	s.seq++
	j := &Job{s: s, id: fmt.Sprintf("job-%d", s.seq), spec: spec, state: StateQueued}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	for _, child := range spec.Fork {
		j.children = append(j.children, s.buildLocked(child))
	}
	return j
}

// ID returns the job's id.
func (j *Job) ID() string { return j.id }

// run executes the job tree node to completion. It runs on a plain
// goroutine — NEVER on an executor worker: a graph run blocks until
// quiescence, and blocking an executor worker on another graph's progress
// deadlocks the shared pool.
func (j *Job) run(parent context.Context) {
	ctx, cancel := context.WithCancel(parent)
	if j.spec.DeadlineMS > 0 {
		ctx, cancel = context.WithTimeout(parent, time.Duration(j.spec.DeadlineMS)*time.Millisecond)
	}
	defer cancel()
	j.mu.Lock()
	j.cancel = cancel
	j.started = time.Now()
	j.mu.Unlock()

	var err error
	var verified bool
	if len(j.children) > 0 {
		verified, err = j.runFork(ctx)
	} else {
		verified, err = j.runLeaf(ctx)
	}

	j.mu.Lock()
	j.err = err
	j.verified = verified
	j.finished = time.Now()
	switch {
	case err == nil:
		j.state = StateDone
	case j.requested || errors.Is(err, context.Canceled):
		j.state = StateCancelled
	default:
		j.state = StateFailed
	}
	j.mu.Unlock()
}

// runFork runs the children concurrently (plain goroutines) and joins
// them: done when all are done, failed on the first failure.
func (j *Job) runFork(ctx context.Context) (bool, error) {
	j.setState(StateRunning)
	var wg sync.WaitGroup
	for _, c := range j.children {
		wg.Add(1)
		go func(c *Job) {
			defer wg.Done()
			c.run(ctx)
		}(c)
	}
	wg.Wait()
	verified := true
	var firstErr error
	for _, c := range j.children {
		c.mu.Lock()
		if c.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("child %s: %w", c.id, c.err)
		}
		verified = verified && c.verified
		c.mu.Unlock()
	}
	return verified && firstErr == nil, firstErr
}

// runLeaf admits, runs and verifies one benchmark instance.
func (j *Job) runLeaf(ctx context.Context) (bool, error) {
	s := j.s
	spec := j.spec

	// Admission first: the job holds StateQueued until its reservation is
	// granted, so GET /jobs distinguishes "waiting for memory" from
	// "computing". The context carries the deadline, so a job cannot hold
	// a queue slot past it.
	tenant := s.tenantFor(spec.Tenant)
	grant, err := tenant.Admit(ctx, spec.MemoryBytes)
	if err != nil {
		return false, fmt.Errorf("admission: %w", err)
	}
	defer grant.Release()
	j.mu.Lock()
	j.degraded = grant.Degraded()
	j.state = StateRunning
	j.mu.Unlock()

	b, err := bench.ByName(spec.Benchmark)
	if err != nil {
		return false, err
	}
	inst, err := b.NewInstance(spec.N, spec.Base, spec.Seed)
	if err != nil {
		return false, err
	}
	variant, err := parseVariant(spec.Variant)
	if err != nil {
		return false, err
	}
	workers := spec.Workers
	if workers <= 0 {
		workers = s.ex.Workers()
	}

	opts := bench.RunOpts{Workers: workers}
	switch {
	case variant == core.OMPTasking:
		pool := forkjoin.NewPool(forkjoin.Config{Workers: workers, Executor: s.ex})
		defer pool.Close()
		j.mu.Lock()
		j.pool = pool
		j.mu.Unlock()
		opts.Pool = pool
	case variant.IsCnC():
		opts.Tune = func(g *cnc.Graph) {
			g.WithExecutor(s.ex)
			if grant.Bytes() > 0 {
				g.WithMemoryLimit(grant.Bytes())
			}
			j.mu.Lock()
			j.graphs = append(j.graphs, g)
			j.mu.Unlock()
		}
	}

	// The watchdog watches the job's own progress counters and cancels it
	// on a stall — a wedged job releases its reservation instead of
	// starving the admission queue. Serial variants have no counters to
	// watch; their bound is the deadline.
	if s.cfg.StallWindow > 0 && (variant.IsCnC() || variant == core.OMPTasking) {
		runCtx, runCancel := context.WithCancel(ctx)
		defer runCancel()
		wd := chaos.NewWatchdog(chaos.WatchdogConfig{
			Window:   s.cfg.StallWindow,
			Progress: j.progress,
			OnStall: func(blocked []string) {
				j.mu.Lock()
				j.stalled = true
				j.mu.Unlock()
				runCancel()
			},
		})
		wd.Start()
		defer wd.Stop()
		ctx = runCtx
	}

	stats, err := inst.Run(ctx, variant, opts)
	j.mu.Lock()
	j.final = stats.Stats
	j.haveFinal = true
	j.mu.Unlock()
	if err != nil {
		if j.isStalled() {
			return false, fmt.Errorf("watchdog: no progress for %v: %w", s.cfg.StallWindow, err)
		}
		return false, err
	}
	if err := inst.Verify(); err != nil {
		return false, fmt.Errorf("verify: %w", err)
	}
	return true, nil
}

// progress is the watchdog's heartbeat: any counter moving means the job
// is alive.
func (j *Job) progress() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	var p uint64
	for _, g := range j.graphs {
		st := g.Stats()
		p += st.StepsDone + st.ItemsPut + st.TagsPut
	}
	if j.pool != nil {
		p += j.pool.Stats().Executed
	}
	return p
}

func (j *Job) isStalled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stalled
}

func (j *Job) setState(state string) {
	j.mu.Lock()
	j.state = state
	j.mu.Unlock()
}

// Cancel requests cooperative cancellation of the job and its children.
func (j *Job) Cancel() {
	j.mu.Lock()
	j.requested = true
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	for _, c := range j.children {
		c.Cancel()
	}
}

// metrics snapshots the job's runtime counters: the final stats once the
// run finished, live graph scrapes while it is in flight.
func (j *Job) metrics() Metrics {
	j.mu.Lock()
	defer j.mu.Unlock()
	var st cnc.Stats
	if j.haveFinal {
		st = j.final
	} else {
		for _, g := range j.graphs {
			gs := g.Stats()
			st.TagsPut += gs.TagsPut
			st.ItemsPut += gs.ItemsPut
			st.StepsDone += gs.StepsDone
			st.Steals += gs.Steals
			st.Wakeups += gs.Wakeups
			st.LiveBytes += gs.LiveBytes
			st.PeakLiveBytes += gs.PeakLiveBytes
			st.BackpressureStalls += gs.BackpressureStalls
			st.BackpressureWaits += gs.BackpressureWaits
		}
	}
	if j.pool != nil {
		ps := j.pool.Stats()
		st.StepsDone += ps.Executed
		st.Steals += ps.Steals
	}
	return Metrics{
		TagsPut:            st.TagsPut,
		ItemsPut:           st.ItemsPut,
		StepsDone:          st.StepsDone,
		Steals:             st.Steals,
		Wakeups:            st.Wakeups,
		LiveBytes:          st.LiveBytes,
		PeakLiveBytes:      st.PeakLiveBytes,
		BackpressureStalls: st.BackpressureStalls,
		BackpressureWaits:  st.BackpressureWaits,
	}
}

// Status reports the job's current state, including children.
func (j *Job) Status() Status {
	j.mu.Lock()
	tenant := j.spec.Tenant
	if tenant == "" {
		tenant = "default"
	}
	st := Status{
		ID:        j.id,
		Tenant:    tenant,
		State:     j.state,
		Benchmark: j.spec.Benchmark,
		Variant:   j.spec.Variant,
		Verified:  j.verified,
		Degraded:  j.degraded,
		Stalled:   j.stalled,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if !j.started.IsZero() {
		end := j.finished
		if end.IsZero() {
			end = time.Now()
		}
		st.ElapsedMS = end.Sub(j.started).Milliseconds()
	}
	j.mu.Unlock()
	if len(j.children) == 0 {
		m := j.metrics()
		st.Stats = &m
	}
	for _, c := range j.children {
		st.Children = append(st.Children, c.Status())
	}
	return st
}

// Handler returns the server's HTTP API:
//
//	POST /jobs             submit a JobSpec; 202 with {"id": ...}
//	GET  /jobs             list all jobs (submission order)
//	GET  /jobs/{id}        one job's status
//	POST /jobs/{id}/cancel cooperative cancellation
//	GET  /metrics          Prometheus text format
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		http.Error(w, fmt.Sprintf("bad job spec: %v", err), http.StatusBadRequest)
		return
	}
	job, err := s.Submit(spec)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(map[string]string{"id": job.ID()})
}

func (s *Server) jobByID(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(j.Status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	j.Cancel()
	w.WriteHeader(http.StatusAccepted)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]Status, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// handleMetrics renders the Prometheus text exposition: job states,
// admission controller counters (budget, reservations, queue depth,
// degradations — per tenant included), executor counters, and the
// per-tenant aggregation of every job's graph stats (steals, wakeups,
// live/peak bytes, backpressure stalls).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()

	states := map[string]int{}
	type agg struct {
		m    Metrics
		jobs int
	}
	tenants := map[string]*agg{}
	for _, j := range jobs {
		st := j.Status()
		states[st.State]++
		if len(j.children) > 0 {
			continue // leaves carry the runtime counters
		}
		a := tenants[st.Tenant]
		if a == nil {
			a = &agg{}
			tenants[st.Tenant] = a
		}
		a.jobs++
		m := j.metrics()
		a.m.TagsPut += m.TagsPut
		a.m.ItemsPut += m.ItemsPut
		a.m.StepsDone += m.StepsDone
		a.m.Steals += m.Steals
		a.m.Wakeups += m.Wakeups
		a.m.LiveBytes += m.LiveBytes
		a.m.PeakLiveBytes += m.PeakLiveBytes
		a.m.BackpressureStalls += m.BackpressureStalls
		a.m.BackpressureWaits += m.BackpressureWaits
	}

	var b strings.Builder
	gauge := func(name, help string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	}
	counter := func(name, help string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	}

	gauge("dpserve_jobs", "jobs by state")
	for _, st := range []string{StateQueued, StateRunning, StateDone, StateFailed, StateCancelled} {
		fmt.Fprintf(&b, "dpserve_jobs{state=%q} %d\n", st, states[st])
	}

	as := s.ctl.Stats()
	gauge("dpserve_admission_budget_bytes", "process memory budget (0 = unlimited)")
	fmt.Fprintf(&b, "dpserve_admission_budget_bytes %d\n", as.Budget)
	gauge("dpserve_admission_reserved_bytes", "live admitted reservations")
	fmt.Fprintf(&b, "dpserve_admission_reserved_bytes %d\n", as.Reserved)
	gauge("dpserve_admission_queue_depth", "jobs waiting for admission")
	fmt.Fprintf(&b, "dpserve_admission_queue_depth %d\n", as.QueueDepth)
	gauge("dpserve_admission_queue_depth_max", "high-water mark of the admission queue")
	fmt.Fprintf(&b, "dpserve_admission_queue_depth_max %d\n", as.MaxQueueDepth)
	counter("dpserve_admission_admitted_total", "reservations granted")
	fmt.Fprintf(&b, "dpserve_admission_admitted_total %d\n", as.Admitted)
	counter("dpserve_admission_released_total", "reservations returned")
	fmt.Fprintf(&b, "dpserve_admission_released_total %d\n", as.Released)
	counter("dpserve_admission_degradations_total", "forced admissions over budget/quota")
	fmt.Fprintf(&b, "dpserve_admission_degradations_total %d\n", as.Degradations)
	sort.Slice(as.Tenants, func(i, k int) bool { return as.Tenants[i].Name < as.Tenants[k].Name })
	gauge("dpserve_admission_tenant_reserved_bytes", "live reservations per tenant")
	for _, t := range as.Tenants {
		fmt.Fprintf(&b, "dpserve_admission_tenant_reserved_bytes{tenant=%q} %d\n", t.Name, t.Reserved)
	}
	counter("dpserve_admission_tenant_degradations_total", "forced admissions per tenant")
	for _, t := range as.Tenants {
		fmt.Fprintf(&b, "dpserve_admission_tenant_degradations_total{tenant=%q} %d\n", t.Name, t.Degradations)
	}

	es := s.ex.Stats()
	gauge("dpserve_executor_workers", "physical worker goroutines in the shared pool")
	fmt.Fprintf(&b, "dpserve_executor_workers %d\n", es.Workers)
	gauge("dpserve_executor_leases", "currently registered leases")
	fmt.Fprintf(&b, "dpserve_executor_leases %d\n", es.Leases)
	counter("dpserve_executor_claims_total", "slot claims that ran work")
	fmt.Fprintf(&b, "dpserve_executor_claims_total %d\n", es.Claims)
	counter("dpserve_executor_units_total", "work units executed")
	fmt.Fprintf(&b, "dpserve_executor_units_total %d\n", es.Units)
	counter("dpserve_executor_parks_total", "physical workers parked")
	fmt.Fprintf(&b, "dpserve_executor_parks_total %d\n", es.Parks)
	counter("dpserve_executor_wakeups_total", "wake tokens handed to parked workers")
	fmt.Fprintf(&b, "dpserve_executor_wakeups_total %d\n", es.Wakeups)

	names := make([]string, 0, len(tenants))
	for name := range tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	emit := func(name, help, kind string, val func(*agg) int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
		for _, tn := range names {
			fmt.Fprintf(&b, "%s{tenant=%q} %d\n", name, tn, val(tenants[tn]))
		}
	}
	emit("dpserve_graph_jobs", "leaf jobs per tenant", "gauge",
		func(a *agg) int64 { return int64(a.jobs) })
	emit("dpserve_graph_steps_done_total", "step/task executions per tenant", "counter",
		func(a *agg) int64 { return int64(a.m.StepsDone) })
	emit("dpserve_graph_items_put_total", "item puts per tenant", "counter",
		func(a *agg) int64 { return int64(a.m.ItemsPut) })
	emit("dpserve_graph_steals_total", "work steals per tenant", "counter",
		func(a *agg) int64 { return int64(a.m.Steals) })
	emit("dpserve_graph_wakeups_total", "dispatch wakeups per tenant", "counter",
		func(a *agg) int64 { return int64(a.m.Wakeups) })
	emit("dpserve_graph_live_bytes", "live accounted bytes per tenant", "gauge",
		func(a *agg) int64 { return a.m.LiveBytes })
	emit("dpserve_graph_peak_live_bytes", "sum of per-job peak live bytes per tenant", "gauge",
		func(a *agg) int64 { return a.m.PeakLiveBytes })
	emit("dpserve_graph_backpressure_stalls_total", "forced over-budget puts per tenant", "counter",
		func(a *agg) int64 { return a.m.BackpressureStalls })
	emit("dpserve_graph_backpressure_waits_total", "throttled puts per tenant", "counter",
		func(a *agg) int64 { return a.m.BackpressureWaits })

	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	w.Write([]byte(b.String()))
}
