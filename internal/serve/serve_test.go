package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dpflow/internal/exec"
)

// newTestServer spins up a server on a dedicated 2-worker executor so
// goroutine accounting stays local to the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	ex := exec.New(2)
	cfg.Executor = ex
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
		ex.Close()
	})
	return s, ts
}

func submit(t *testing.T, ts *httptest.Server, spec JobSpec) string {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("submit response: %v", err)
	}
	if out["id"] == "" {
		t.Fatal("submit returned no job id")
	}
	return out["id"]
}

func getStatus(t *testing.T, ts *httptest.Server, id string) Status {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("status decode: %v", err)
	}
	return st
}

func isTerminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCancelled
}

func waitJob(t *testing.T, ts *httptest.Server, id string) Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		if isTerminal(st.State) {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return Status{}
}

func TestSubmitRegistryJob(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := submit(t, ts, JobSpec{Tenant: "t1", Benchmark: "ge", N: 64, Base: 16, MemoryBytes: 1 << 20})
	st := waitJob(t, ts, id)
	if st.State != StateDone {
		t.Fatalf("state = %s (err %q), want done", st.State, st.Error)
	}
	if !st.Verified {
		t.Fatal("job finished but not verified")
	}
	if st.Stats == nil || st.Stats.StepsDone == 0 {
		t.Fatalf("stats missing or empty: %+v", st.Stats)
	}
	if st.Tenant != "t1" {
		t.Fatalf("tenant = %q", st.Tenant)
	}
}

// Every variant token runs through the service, fork-join included (the
// pool leases from the same shared executor).
func TestAllVariants(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, variant := range []string{"cnc", "tuner", "manual", "nonblocking", "openmp", "serial_rdp"} {
		id := submit(t, ts, JobSpec{Benchmark: "ge", Variant: variant, N: 32, Base: 8})
		st := waitJob(t, ts, id)
		if st.State != StateDone || !st.Verified {
			t.Fatalf("variant %s: state=%s verified=%v err=%q", variant, st.State, st.Verified, st.Error)
		}
	}
}

// A dynamic fork-join spec expands into concurrently running children —
// different benchmarks and execution models in one submission — and the
// root completes when all children verify.
func TestDynamicForkJoinSpec(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := submit(t, ts, JobSpec{
		Tenant: "t1",
		Fork: []JobSpec{
			{Benchmark: "ge", N: 32, Base: 8, MemoryBytes: 1 << 18},
			{Benchmark: "sw", N: 32, Base: 8, Variant: "openmp"},
			{Fork: []JobSpec{ // nested fork node
				{Benchmark: "fw", N: 32, Base: 8, Variant: "tuner"},
			}},
		},
	})
	st := waitJob(t, ts, id)
	if st.State != StateDone || !st.Verified {
		t.Fatalf("root state=%s verified=%v err=%q", st.State, st.Verified, st.Error)
	}
	if len(st.Children) != 3 {
		t.Fatalf("children = %d, want 3", len(st.Children))
	}
	for _, c := range st.Children {
		if c.State != StateDone || !c.Verified {
			t.Fatalf("child %s: state=%s verified=%v err=%q", c.ID, c.State, c.Verified, c.Error)
		}
		if c.Tenant != "t1" {
			t.Fatalf("child %s did not inherit tenant: %q", c.ID, c.Tenant)
		}
	}
}

func TestBadSpecsRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, bad := range []string{
		`{"benchmark":"nope","n":32}`,                       // unknown benchmark
		`{"benchmark":"ge"}`,                                // missing n
		`{"benchmark":"ge","n":32,"variant":"what"}`,        // unknown variant
		`{"benchmark":"ge","n":32,"fork":[{"n":1}]}`,        // leaf and fork at once
		`{"fork":[{"benchmark":"ge"}]}`,                     // child missing n
		`{"benchmark":"ge","n":32,"unknown_field":"x"}`,     // unknown field
	} {
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("spec %s accepted with status %d", bad, resp.StatusCode)
		}
	}
	// Nothing was registered.
	resp, _ := http.Get(ts.URL + "/jobs")
	var jobs []Status
	json.NewDecoder(resp.Body).Decode(&jobs)
	resp.Body.Close()
	if len(jobs) != 0 {
		t.Fatalf("rejected specs left %d jobs behind", len(jobs))
	}
}

func TestCancelJob(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Big enough to still be running when the cancel lands.
	id := submit(t, ts, JobSpec{Benchmark: "ge", N: 512, Base: 8})
	resp, err := http.Post(ts.URL+"/jobs/"+id+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	st := waitJob(t, ts, id)
	// The job may have won the race and finished; both are valid terminal
	// outcomes, but a cancel that landed must report StateCancelled.
	if st.State != StateCancelled && st.State != StateDone {
		t.Fatalf("state after cancel = %s (err %q)", st.State, st.Error)
	}
}

func TestDeadline(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := submit(t, ts, JobSpec{Benchmark: "ge", N: 512, Base: 8, DeadlineMS: 1})
	st := waitJob(t, ts, id)
	if st.State != StateFailed {
		t.Fatalf("state = %s, want failed (deadline)", st.State)
	}
	if !strings.Contains(st.Error, "deadline") {
		t.Fatalf("error %q does not mention the deadline", st.Error)
	}
}

// Two jobs whose reservations cannot coexist under the budget both finish:
// the second waits for the first's release (backpressure, not failure).
func TestAdmissionSerialisesOverBudgetJobs(t *testing.T) {
	s, ts := newTestServer(t, Config{Budget: 100})
	a := submit(t, ts, JobSpec{Tenant: "a", Benchmark: "ge", N: 64, Base: 16, MemoryBytes: 60})
	b := submit(t, ts, JobSpec{Tenant: "b", Benchmark: "ge", N: 64, Base: 16, MemoryBytes: 60})
	sa, sb := waitJob(t, ts, a), waitJob(t, ts, b)
	if sa.State != StateDone || sb.State != StateDone {
		t.Fatalf("states = %s/%s, want done/done", sa.State, sb.State)
	}
	as := s.Admission().Stats()
	if as.Admitted != 2 || as.Released != 2 || as.Reserved != 0 {
		t.Fatalf("admission stats: %+v", as)
	}
	if as.Degradations != 0 {
		t.Fatalf("in-budget jobs degraded: %+v", as)
	}
}

// A reservation larger than the budget still runs — force-admitted once
// the process drains, and the degradation is visible in the job status
// and the metrics.
func TestOversizedJobDegrades(t *testing.T) {
	_, ts := newTestServer(t, Config{Budget: 100})
	id := submit(t, ts, JobSpec{Benchmark: "ge", N: 32, Base: 8, MemoryBytes: 500})
	st := waitJob(t, ts, id)
	if st.State != StateDone || !st.Verified {
		t.Fatalf("state=%s verified=%v err=%q", st.State, st.Verified, st.Error)
	}
	if !st.Degraded {
		t.Fatal("over-budget admission not reported as degraded")
	}
	body := scrapeMetrics(t, ts)
	if !strings.Contains(body, "dpserve_admission_degradations_total 1") {
		t.Fatalf("metrics missing the degradation:\n%s", body)
	}
}

func scrapeMetrics(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b strings.Builder
	buf := make([]byte, 64<<10)
	for {
		n, err := resp.Body.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return b.String()
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Budget: 8 << 20})
	id := submit(t, ts, JobSpec{Tenant: "t1", Benchmark: "ge", N: 64, Base: 16, MemoryBytes: 4 << 20})
	waitJob(t, ts, id)
	body := scrapeMetrics(t, ts)
	for _, want := range []string{
		`dpserve_jobs{state="done"} 1`,
		"dpserve_admission_budget_bytes 8388608",
		"dpserve_admission_reserved_bytes 0",
		"dpserve_admission_queue_depth 0",
		"dpserve_admission_admitted_total 1",
		"dpserve_admission_released_total 1",
		`dpserve_admission_tenant_reserved_bytes{tenant="t1"} 0`,
		"dpserve_executor_workers 2",
		`dpserve_graph_jobs{tenant="t1"} 1`,
		`dpserve_graph_steps_done_total{tenant="t1"}`,
		`dpserve_graph_peak_live_bytes{tenant="t1"}`,
		`dpserve_graph_backpressure_stalls_total{tenant="t1"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
	// Every metric line parses as name{labels} value.
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed metric line %q", line)
		}
		if _, err := fmt.Sscanf(fields[1], "%f", new(float64)); err != nil {
			t.Fatalf("metric value in %q not numeric: %v", line, err)
		}
	}
}

func TestStatusNotFound(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/jobs/job-999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

// The watchdog cancels a job whose progress counters stop moving, and the
// stall is visible in the status — a wedged tenant releases its admission
// reservation instead of holding it forever.
func TestWatchdogCancelsStalledJob(t *testing.T) {
	_, ts := newTestServer(t, Config{StallWindow: 50 * time.Millisecond})
	// An undersized deadline would also kill it; use a plain big job and
	// trust the watchdog only if it genuinely fires. A stall cannot be
	// provoked through the public API with healthy benchmarks — that path
	// is exercised by the chaos suite — so here we only check that healthy
	// jobs are NOT killed by a tight watchdog window.
	id := submit(t, ts, JobSpec{Benchmark: "ge", N: 128, Base: 8})
	st := waitJob(t, ts, id)
	if st.State != StateDone {
		t.Fatalf("healthy job killed under tight watchdog: state=%s stalled=%v err=%q",
			st.State, st.Stalled, st.Error)
	}
}
