package simsched_test

import (
	"fmt"

	"dpflow/internal/dag"
	"dpflow/internal/gep"
	"dpflow/internal/simsched"
)

// Simulating with unbounded processors yields the span; the ratio of work
// to span is the parallelism the execution model exposes. The fork-join
// joins cost Smith-Waterman most of its wavefront parallelism.
func ExampleSimulate() {
	var unit simsched.Costs
	for k := 0; k < dag.NumKinds; k++ {
		if dag.Kind(k) != dag.KindJoin {
			unit.Exec[k] = 1
		}
	}
	const tiles = 16
	df, _ := simsched.Simulate(dag.NewSWDataflow(tiles), 0, unit)
	fj, _ := simsched.Simulate(dag.NewSWForkJoin(tiles), 0, unit)
	fmt.Printf("data-flow: span %.0f, parallelism %.1f\n", df.Makespan, df.Work/df.Makespan)
	fmt.Printf("fork-join: span %.0f, parallelism %.1f\n", fj.Makespan, fj.Work/fj.Makespan)
	// Output:
	// data-flow: span 31, parallelism 8.3
	// fork-join: span 81, parallelism 3.2
}

// The GE data-flow span is the A→B/C→D chain: 3T−2 tasks.
func ExampleSimulate_span() {
	var unit simsched.Costs
	for k := 0; k < dag.NumKinds; k++ {
		if dag.Kind(k) != dag.KindJoin {
			unit.Exec[k] = 1
		}
	}
	r, _ := simsched.Simulate(dag.NewGEPDataflow(8, gep.Triangular), 0, unit)
	fmt.Println(r.SpanTasks)
	// Output: 22
}
