package simsched

import (
	"fmt"

	"dpflow/internal/dag"
)

// Cluster models the paper's second future-work direction — "extending the
// framework to distributed-memory parallel machines" — in the style of
// distributed CnC / PaRSEC: owner-computes placement (every task runs on
// its home node), with a latency + size/bandwidth communication delay on
// every dependency edge that crosses nodes. Within a node, tasks share the
// node's cores under the same greedy policy as Simulate.
type Cluster struct {
	Nodes        int
	CoresPerNode int
	// Home maps a task to its owning node (e.g. block-cyclic over tiles).
	Home func(id int) int
	// Latency is the per-message fixed cost, seconds.
	Latency float64
	// TransferTime is the per-message payload cost, seconds (tile bytes /
	// interconnect bandwidth). Joins transfer nothing.
	TransferTime float64
}

// ClusterResult extends Result with communication accounting.
type ClusterResult struct {
	Result
	Messages int // dependency edges that crossed nodes
	CommTime float64
}

// SimulateCluster executes the DAG on the cluster. A task becomes runnable
// on its home node when every predecessor has finished and — for remote
// predecessors — its output has arrived (finish + Latency + TransferTime).
func SimulateCluster(g dag.Graph, cl Cluster, c Costs) (ClusterResult, error) {
	if cl.Nodes < 1 || cl.CoresPerNode < 1 || cl.Home == nil {
		return ClusterResult{}, fmt.Errorf("simsched: cluster needs Nodes, CoresPerNode >= 1 and a Home function")
	}
	n := g.Len()
	indeg := make([]int32, n)
	avail := make([]float64, n) // earliest start due to dependencies/comm
	// Per-node ready pools ordered by availability time (heap of events).
	readyQ := make([]eventHeap, cl.Nodes)
	free := make([]int, cl.Nodes)
	for i := range free {
		free[i] = cl.CoresPerNode
	}
	for i := 0; i < n; i++ {
		indeg[i] = int32(g.InDeg(i))
		if indeg[i] == 0 {
			readyQ[cl.Home(i)%cl.Nodes].push(event{at: c.Startup, id: int32(i)})
		}
	}

	var (
		running  eventHeap // completion events; id encodes task
		now      = c.Startup
		done     int
		busy     float64
		messages int
		commTime float64
	)
	dispatch := func() {
		for node := 0; node < cl.Nodes; node++ {
			q := &readyQ[node]
			for free[node] > 0 && !q.empty() && q.peek().at <= now {
				ev := q.pop()
				t := c.TaskTime(g.Kind(int(ev.id)))
				busy += t
				running.push(event{at: now + t, id: ev.id})
				free[node]--
			}
		}
	}
	nextReadyTime := func() (float64, bool) {
		best, ok := 0.0, false
		for node := 0; node < cl.Nodes; node++ {
			if free[node] == 0 || readyQ[node].empty() {
				continue
			}
			at := readyQ[node].peek().at
			if !ok || at < best {
				best, ok = at, true
			}
		}
		return best, ok
	}

	for done < n {
		dispatch()
		// Advance time: to the next completion, or — if cores sit free
		// waiting on in-flight messages — to the next availability.
		if running.empty() {
			at, ok := nextReadyTime()
			if !ok {
				return ClusterResult{}, fmt.Errorf("simsched: %d of %d tasks never became ready (cycle?)", n-done, n)
			}
			now = at
			continue
		}
		if at, ok := nextReadyTime(); ok && at < running.peek().at {
			now = at
			continue
		}
		ev := running.pop()
		now = ev.at
		for {
			id := ev.id
			node := cl.Home(int(id)) % cl.Nodes
			free[node]++
			g.EachSucc(int(id), func(s int) {
				arrive := now
				if sn := cl.Home(s) % cl.Nodes; sn != node && g.Kind(int(id)) != dag.KindJoin {
					delay := cl.Latency + cl.TransferTime
					arrive += delay
					messages++
					commTime += delay
				}
				if arrive > avail[s] {
					avail[s] = arrive
				}
				indeg[s]--
				if indeg[s] == 0 {
					readyQ[cl.Home(s)%cl.Nodes].push(event{at: avail[s], id: int32(s)})
				}
			})
			done++
			if running.empty() || running.peek().at != now {
				break
			}
			ev = running.pop()
		}
	}
	res := ClusterResult{Messages: messages, CommTime: commTime}
	res.Makespan = now
	res.Work = totalWork(g, c)
	res.Processors = cl.Nodes * cl.CoresPerNode
	res.BusyTime = busy
	res.Utilization = busy / (float64(res.Processors) * now)
	return res, nil
}
