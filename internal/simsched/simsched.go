// Package simsched is a discrete-event simulator of greedy list scheduling
// on P identical processors — the machinery that lets this repository
// reproduce the paper's 64-core EPYC and 192-core Skylake results on a
// machine with one physical core.
//
// The simulator executes a task DAG (internal/dag) under a cost model: each
// task takes Cost(kind) seconds of processor time plus Overhead(kind)
// seconds of runtime bookkeeping, and a task becomes ready the moment its
// last predecessor finishes (data-flow) or its guarding join completes
// (fork-join). Greedy scheduling — never leave a processor idle while a
// task is ready — is what both real runtimes (work stealing, CnC/TBB)
// approximate, and it is the standard model in which the fork-join span
// results the paper cites are stated; Brent's inequality
// T₁/P ≤ T_P ≤ T₁/P + T∞ is asserted by the tests.
package simsched

import (
	"fmt"

	"dpflow/internal/dag"
)

// Costs is the cost model of one (benchmark, machine, variant)
// combination. See internal/model for how the entries are derived.
type Costs struct {
	// Exec is the execution time of one task of each kind, seconds.
	Exec [dag.NumKinds]float64
	// Overhead is the runtime bookkeeping charged per task of each kind
	// (spawn/tag-put/abort-retry amortisation...), seconds.
	Overhead [dag.NumKinds]float64
	// Startup is charged once before the first task can run — e.g. the
	// manual CnC variant's up-front instantiation of the whole task graph.
	Startup float64
	// SerialPerTask is a global dispatch-serialisation term: successive
	// task dispatches are spaced at least this far apart regardless of how
	// many processors are free. It models centralised scheduler state —
	// GNU OpenMP's single task queue and its lock, or the manual CnC
	// variant's contended global collections — and is what makes runs with
	// millions of micro-tasks scheduler-bound, as the paper observes at
	// tiny base sizes.
	SerialPerTask float64
}

// TaskTime returns the total processor time one task of kind k occupies.
func (c *Costs) TaskTime(k dag.Kind) float64 { return c.Exec[k] + c.Overhead[k] }

// Result summarises one simulated execution.
type Result struct {
	Makespan    float64 // seconds from start to last task completion
	Work        float64 // ΣTaskTime — the serial execution time T1
	SpanTasks   int     // number of tasks on the critical path
	Processors  int     // P used (0 = unbounded)
	BusyTime    float64 // total processor-seconds spent executing
	Utilization float64 // BusyTime / (P × Makespan); 0 for unbounded P
	PeakReady   int     // maximum size of the ready pool (parallelism proxy)
	// Timeline, when requested via SimulateTimeline, samples the number of
	// busy processors over the run: Timeline[i] covers the window
	// [i, i+1)·Makespan/len(Timeline). It is the quantitative form of the
	// paper's "threads becoming idle" observation.
	Timeline []float64
}

// SimulateTimeline runs Simulate and additionally samples processor
// occupancy into `buckets` windows.
func SimulateTimeline(g dag.Graph, p int, c Costs, buckets int) (Result, error) {
	if p <= 0 || buckets <= 0 {
		return Simulate(g, p, c)
	}
	r, err := simulateBounded(g, p, c, buckets)
	return r, err
}

// Simulate runs the graph on p processors (p <= 0 simulates unbounded
// processors, in which case Makespan is the span T∞). It panics only on
// malformed graphs; cyclic graphs are reported as an error.
func Simulate(g dag.Graph, p int, c Costs) (Result, error) {
	if p <= 0 {
		return simulateInfinite(g, c)
	}
	return simulateBounded(g, p, c, 0)
}

func simulateBounded(g dag.Graph, p int, c Costs, buckets int) (Result, error) {
	n := g.Len()
	indeg := make([]int32, n)
	ready := newQueue(p * 4)
	for i := 0; i < n; i++ {
		indeg[i] = int32(g.InDeg(i))
		if indeg[i] == 0 {
			ready.push(int32(i))
		}
	}

	var (
		running     eventHeap
		now         = c.Startup
		done        int
		free        = p
		busy        float64
		peakReady   int
		serialClock = c.Startup // next instant the central dispatcher is free
		intervals   [][2]float64
	)
	for done < n {
		if ready.len() > peakReady {
			peakReady = ready.len()
		}
		// Dispatch ready tasks onto free processors, throttled by the
		// global dispatcher when SerialPerTask > 0.
		for free > 0 && ready.len() > 0 {
			id := ready.pop()
			start := now
			if c.SerialPerTask > 0 {
				if serialClock > start {
					start = serialClock
				}
				serialClock = start + c.SerialPerTask
			}
			t := c.TaskTime(g.Kind(int(id)))
			busy += t
			if buckets > 0 {
				intervals = append(intervals, [2]float64{start, start + t})
			}
			running.push(event{at: start + t, id: id})
			free--
		}
		if running.empty() {
			return Result{}, fmt.Errorf("simsched: %d of %d tasks never became ready (cycle?)", n-done, n)
		}
		// Advance to the next completion; batch-complete simultaneous ones.
		ev := running.pop()
		now = ev.at
		complete(g, ev.id, indeg, ready)
		done++
		free++
		for !running.empty() && running.peek().at == now {
			ev = running.pop()
			complete(g, ev.id, indeg, ready)
			done++
			free++
		}
	}
	work := totalWork(g, c)
	res := Result{
		Makespan:    now,
		Work:        work,
		Processors:  p,
		BusyTime:    busy,
		Utilization: busy / (float64(p) * now),
		PeakReady:   peakReady,
	}
	if buckets > 0 && now > 0 {
		res.Timeline = binIntervals(intervals, now, buckets)
	}
	return res, nil
}

// binIntervals converts busy intervals into average-occupancy buckets over
// [0, makespan).
func binIntervals(intervals [][2]float64, makespan float64, buckets int) []float64 {
	out := make([]float64, buckets)
	width := makespan / float64(buckets)
	for _, iv := range intervals {
		lo, hi := iv[0], iv[1]
		b0 := int(lo / width)
		b1 := int(hi / width)
		if b1 >= buckets {
			b1 = buckets - 1
		}
		for b := b0; b <= b1; b++ {
			wLo, wHi := float64(b)*width, float64(b+1)*width
			overlap := minF(hi, wHi) - maxF(lo, wLo)
			if overlap > 0 {
				out[b] += overlap / width
			}
		}
	}
	return out
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func complete(g dag.Graph, id int32, indeg []int32, ready *queue) {
	g.EachSucc(int(id), func(s int) {
		indeg[s]--
		if indeg[s] == 0 {
			ready.push(int32(s))
		}
	})
}

// simulateInfinite computes the span by longest-path dynamic programming
// over a Kahn traversal: finish(v) = taskTime(v) + max over preds, which
// equals the unbounded-processor greedy makespan.
func simulateInfinite(g dag.Graph, c Costs) (Result, error) {
	n := g.Len()
	indeg := make([]int32, n)
	finish := make([]float64, n)
	depth := make([]int32, n)
	queue := make([]int32, 0, 1024)
	for i := 0; i < n; i++ {
		indeg[i] = int32(g.InDeg(i))
		if indeg[i] == 0 {
			queue = append(queue, int32(i))
			finish[i] = c.TaskTime(g.Kind(i))
			if g.Kind(i) != dag.KindJoin {
				depth[i] = 1
			}
		}
	}
	seen := 0
	span := 0.0
	spanTasks := int32(0)
	for len(queue) > 0 {
		id := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		if finish[id] > span {
			span = finish[id]
		}
		if depth[id] > spanTasks {
			spanTasks = depth[id]
		}
		g.EachSucc(int(id), func(s int) {
			if finish[id] > finish[s] {
				finish[s] = finish[id]
			}
			d := depth[id]
			if g.Kind(s) != dag.KindJoin {
				d++
			}
			if d > depth[s] {
				depth[s] = d
			}
			indeg[s]--
			if indeg[s] == 0 {
				finish[s] += c.TaskTime(g.Kind(s))
				queue = append(queue, int32(s))
			}
		})
	}
	if seen != n {
		return Result{}, fmt.Errorf("simsched: only %d of %d tasks reachable (cycle?)", seen, n)
	}
	makespan := span + c.Startup
	// Even unbounded processors cannot beat a serialised dispatcher.
	if floor := c.Startup + float64(n)*c.SerialPerTask; floor > makespan {
		makespan = floor
	}
	return Result{
		Makespan:  makespan,
		Work:      totalWork(g, c),
		SpanTasks: int(spanTasks),
	}, nil
}

func totalWork(g dag.Graph, c Costs) float64 {
	var byKind [dag.NumKinds]int
	for i := 0; i < g.Len(); i++ {
		byKind[g.Kind(i)]++
	}
	w := 0.0
	for k, cnt := range byKind {
		w += float64(cnt) * c.TaskTime(dag.Kind(k))
	}
	return w
}

// queue is a growable FIFO of task ids.
type queue struct {
	buf        []int32
	head, tail int
	size       int
}

func newQueue(capHint int) *queue {
	if capHint < 16 {
		capHint = 16
	}
	return &queue{buf: make([]int32, capHint)}
}

func (q *queue) len() int { return q.size }

func (q *queue) push(v int32) {
	if q.size == len(q.buf) {
		grown := make([]int32, 2*len(q.buf))
		n := copy(grown, q.buf[q.head:])
		copy(grown[n:], q.buf[:q.tail])
		q.buf = grown
		q.head, q.tail = 0, q.size
	}
	q.buf[q.tail] = v
	q.tail = (q.tail + 1) % len(q.buf)
	q.size++
}

func (q *queue) pop() int32 {
	v := q.buf[q.head]
	q.head = (q.head + 1) % len(q.buf)
	q.size--
	return v
}

// event is one running task's completion.
type event struct {
	at float64
	id int32
}

// eventHeap is a binary min-heap on completion time, specialised to avoid
// interface dispatch on hot paths.
type eventHeap struct {
	es []event
}

func (h *eventHeap) empty() bool { return len(h.es) == 0 }
func (h *eventHeap) peek() event { return h.es[0] }

func (h *eventHeap) push(e event) {
	h.es = append(h.es, e)
	i := len(h.es) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.es[parent].at <= h.es[i].at {
			break
		}
		h.es[parent], h.es[i] = h.es[i], h.es[parent]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	top := h.es[0]
	last := len(h.es) - 1
	h.es[0] = h.es[last]
	h.es = h.es[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && h.es[l].at < h.es[small].at {
			small = l
		}
		if r < last && h.es[r].at < h.es[small].at {
			small = r
		}
		if small == i {
			break
		}
		h.es[i], h.es[small] = h.es[small], h.es[i]
		i = small
	}
	return top
}
