package simsched

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dpflow/internal/dag"
	"dpflow/internal/gep"
)

// unitCosts charges 1s per task and nothing for joins or overheads.
func unitCosts() Costs {
	var c Costs
	for k := 0; k < dag.NumKinds; k++ {
		if dag.Kind(k) != dag.KindJoin {
			c.Exec[k] = 1
		}
	}
	return c
}

func TestSingleProcessorEqualsWork(t *testing.T) {
	g := dag.NewGEPDataflow(4, gep.Triangular)
	c := unitCosts()
	r, err := Simulate(g, 1, c)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Makespan-r.Work) > 1e-9 {
		t.Fatalf("P=1 makespan %v != work %v", r.Makespan, r.Work)
	}
	if r.Utilization < 0.999 {
		t.Fatalf("P=1 utilization %v", r.Utilization)
	}
}

func TestBrentBound(t *testing.T) {
	c := unitCosts()
	for _, g := range []dag.Graph{
		dag.NewGEPDataflow(6, gep.Triangular),
		dag.NewGEPDataflow(4, gep.Cube),
		dag.NewGEPForkJoin(8, gep.Triangular),
		dag.NewSWDataflow(10),
		dag.NewSWForkJoin(8),
	} {
		span, err := Simulate(g, 0, c)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []int{1, 2, 4, 16, 64} {
			r, err := Simulate(g, p, c)
			if err != nil {
				t.Fatal(err)
			}
			lower := r.Work / float64(p)
			upper := r.Work/float64(p) + span.Makespan
			if r.Makespan < lower-1e-9 || r.Makespan > upper+1e-9 {
				t.Fatalf("Brent violated: P=%d T_P=%v not in [%v, %v]", p, r.Makespan, lower, upper)
			}
			if r.Makespan < span.Makespan-1e-9 {
				t.Fatalf("T_P=%v below span %v", r.Makespan, span.Makespan)
			}
		}
	}
}

func TestMonotoneInProcessors(t *testing.T) {
	g := dag.NewGEPForkJoin(8, gep.Triangular)
	c := unitCosts()
	prev := math.Inf(1)
	for _, p := range []int{1, 2, 4, 8, 16, 32} {
		r, err := Simulate(g, p, c)
		if err != nil {
			t.Fatal(err)
		}
		// Greedy isn't strictly monotone in general, but on these uniform
		// task costs halving work per processor must never hurt by more
		// than a task.
		if r.Makespan > prev+1 {
			t.Fatalf("P=%d makespan %v much worse than previous %v", p, r.Makespan, prev)
		}
		prev = r.Makespan
	}
}

// The data-flow span must never exceed the fork-join span, and for SW the
// gap must grow with the number of tiles — the paper's central claim about
// artificial dependencies, stated in span terms.
func TestSpanDominance(t *testing.T) {
	c := unitCosts()
	for _, tiles := range []int{2, 4, 8, 16, 32} {
		for _, shape := range []gep.Shape{gep.Triangular, gep.Cube} {
			df, err := Simulate(dag.NewGEPDataflow(tiles, shape), 0, c)
			if err != nil {
				t.Fatal(err)
			}
			fj, err := Simulate(dag.NewGEPForkJoin(tiles, shape), 0, c)
			if err != nil {
				t.Fatal(err)
			}
			if df.Makespan > fj.Makespan+1e-9 {
				t.Fatalf("%v tiles=%d: dataflow span %v > forkjoin span %v",
					shape, tiles, df.Makespan, fj.Makespan)
			}
		}
	}
	// SW spans: dataflow = 2T-1 (tile wavefront); forkjoin = T^lg3.
	var prevRatio float64
	for _, tiles := range []int{4, 8, 16, 32, 64} {
		df, _ := Simulate(dag.NewSWDataflow(tiles), 0, c)
		fj, _ := Simulate(dag.NewSWForkJoin(tiles), 0, c)
		if want := float64(2*tiles - 1); df.Makespan != want {
			t.Fatalf("SW dataflow span = %v, want %v", df.Makespan, want)
		}
		if want := math.Pow(float64(tiles), math.Log2(3)); math.Abs(fj.Makespan-want) > 1e-6 {
			t.Fatalf("SW forkjoin span = %v, want T^lg3 = %v", fj.Makespan, want)
		}
		ratio := fj.Makespan / df.Makespan
		if ratio <= prevRatio {
			t.Fatalf("SW span ratio not growing: tiles=%d ratio=%v prev=%v", tiles, ratio, prevRatio)
		}
		prevRatio = ratio
	}
}

// GE data-flow span in unit tasks: the critical path goes through
// A(k) -> B/C(k) -> D(k) -> A(k+1) ... = 3T - 2 tasks.
func TestGEDataflowSpanClosedForm(t *testing.T) {
	c := unitCosts()
	for _, tiles := range []int{2, 4, 8, 16} {
		r, err := Simulate(dag.NewGEPDataflow(tiles, gep.Triangular), 0, c)
		if err != nil {
			t.Fatal(err)
		}
		if want := float64(3*tiles - 2); r.Makespan != want {
			t.Fatalf("tiles=%d: span %v, want %v", tiles, r.Makespan, want)
		}
		if r.SpanTasks != 3*tiles-2 {
			t.Fatalf("tiles=%d: SpanTasks %d, want %d", tiles, r.SpanTasks, 3*tiles-2)
		}
	}
}

func TestStartupShiftsMakespan(t *testing.T) {
	g := dag.NewSWDataflow(4)
	c := unitCosts()
	base, _ := Simulate(g, 2, c)
	c.Startup = 10
	shifted, _ := Simulate(g, 2, c)
	if math.Abs(shifted.Makespan-base.Makespan-10) > 1e-9 {
		t.Fatalf("startup not added: %v vs %v", shifted.Makespan, base.Makespan)
	}
}

func TestOverheadAddsToWork(t *testing.T) {
	g := dag.NewSWDataflow(4)
	c := unitCosts()
	plain, _ := Simulate(g, 1, c)
	c.Overhead[dag.KindSW] = 0.5
	heavy, _ := Simulate(g, 1, c)
	if want := plain.Makespan * 1.5; math.Abs(heavy.Makespan-want) > 1e-9 {
		t.Fatalf("overhead: %v, want %v", heavy.Makespan, want)
	}
}

func TestPeakReadyReflectsParallelism(t *testing.T) {
	// SW wavefront on a T×T grid has at most T simultaneously ready tiles.
	g := dag.NewSWDataflow(8)
	r, err := Simulate(g, 64, unitCosts())
	if err != nil {
		t.Fatal(err)
	}
	if r.PeakReady < 4 || r.PeakReady > 8 {
		t.Fatalf("PeakReady = %d, want within (4, 8]", r.PeakReady)
	}
}

func TestUtilizationBounds(t *testing.T) {
	g := dag.NewGEPForkJoin(8, gep.Triangular)
	r, err := Simulate(g, 16, unitCosts())
	if err != nil {
		t.Fatal(err)
	}
	if r.Utilization <= 0 || r.Utilization > 1+1e-9 {
		t.Fatalf("utilization %v out of range", r.Utilization)
	}
}

func TestQueueWraparound(t *testing.T) {
	q := newQueue(4)
	for round := 0; round < 10; round++ {
		for i := int32(0); i < 7; i++ {
			q.push(i)
		}
		for i := int32(0); i < 7; i++ {
			if got := q.pop(); got != i {
				t.Fatalf("round %d: pop = %d, want %d", round, got, i)
			}
		}
	}
	if q.len() != 0 {
		t.Fatalf("len = %d", q.len())
	}
}

func TestAffinityValidation(t *testing.T) {
	g := dag.NewSWDataflow(4)
	c := unitCosts()
	if _, err := SimulateAffinity(g, 0, c, Affinity{Sockets: 2, Home: func(int) int { return 0 }}); err == nil {
		t.Fatal("p=0 accepted")
	}
	if _, err := SimulateAffinity(g, 2, c, Affinity{}); err == nil {
		t.Fatal("missing Home accepted")
	}
}

// With one socket there are no migrations and the makespan matches the
// plain simulator.
func TestAffinitySingleSocketMatchesPlain(t *testing.T) {
	g := dag.NewGEPDataflow(6, gep.Triangular)
	c := unitCosts()
	plain, err := Simulate(g, 4, c)
	if err != nil {
		t.Fatal(err)
	}
	af, err := SimulateAffinity(g, 4, c, Affinity{
		Sockets: 1, Home: func(int) int { return 0 }, MigratePenalty: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if af.Migrations != 0 {
		t.Fatalf("%d migrations on one socket", af.Migrations)
	}
	if math.Abs(af.Makespan-plain.Makespan) > 1e-9 {
		t.Fatalf("makespan %v != plain %v", af.Makespan, plain.Makespan)
	}
}

// Preferring home tasks must reduce migrations (and with a real penalty,
// the makespan) relative to FIFO dispatch.
func TestAffinityPreferHomeReducesMigrations(t *testing.T) {
	g := dag.NewGEPDataflow(16, gep.Triangular)
	c := unitCosts()
	home := func(id int) int { return id % 4 }
	fifo, err := SimulateAffinity(g, 16, c, Affinity{
		Sockets: 4, Home: home, MigratePenalty: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	pref, err := SimulateAffinity(g, 16, c, Affinity{
		Sockets: 4, Home: home, MigratePenalty: 0.5, PreferHome: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pref.Migrations >= fifo.Migrations {
		t.Fatalf("prefer-home migrations %d >= fifo %d", pref.Migrations, fifo.Migrations)
	}
	if pref.Makespan > fifo.Makespan {
		t.Fatalf("prefer-home slower: %v vs %v", pref.Makespan, fifo.Makespan)
	}
}

// Every task still executes exactly once: the affinity dispatcher must not
// drop or duplicate work (checked via total busy time with unit costs and
// zero penalty).
func TestAffinityConservation(t *testing.T) {
	g := dag.NewSWDataflow(8)
	c := unitCosts()
	r, err := SimulateAffinity(g, 3, c, Affinity{
		Sockets: 3, Home: func(id int) int { return id % 3 }, PreferHome: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.BusyTime-float64(g.Len())) > 1e-9 {
		t.Fatalf("busy time %v, want %v", r.BusyTime, float64(g.Len()))
	}
}

func TestClusterValidation(t *testing.T) {
	g := dag.NewSWDataflow(4)
	if _, err := SimulateCluster(g, Cluster{}, unitCosts()); err == nil {
		t.Fatal("empty cluster accepted")
	}
}

// One node with free communication must match the plain simulator.
func TestClusterSingleNodeMatchesPlain(t *testing.T) {
	g := dag.NewGEPDataflow(6, gep.Triangular)
	c := unitCosts()
	plain, err := Simulate(g, 4, c)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := SimulateCluster(g, Cluster{
		Nodes: 1, CoresPerNode: 4, Home: func(int) int { return 0 },
		Latency: 99, TransferTime: 99,
	}, c)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Messages != 0 || cl.CommTime != 0 {
		t.Fatalf("intra-node run sent %d messages", cl.Messages)
	}
	if math.Abs(cl.Makespan-plain.Makespan) > 1e-9 {
		t.Fatalf("makespan %v != plain %v", cl.Makespan, plain.Makespan)
	}
}

// With zero communication cost, more nodes never hurt; with heavy
// communication, a finely distributed wavefront slows down — the classic
// distributed-memory tradeoff.
func TestClusterCommunicationTradeoff(t *testing.T) {
	g := dag.NewSWDataflow(16)
	c := unitCosts()
	homeRR := func(id int) int { return id % 4 }
	freeComm, err := SimulateCluster(g, Cluster{Nodes: 4, CoresPerNode: 4, Home: homeRR}, c)
	if err != nil {
		t.Fatal(err)
	}
	oneNode, err := SimulateCluster(g, Cluster{Nodes: 1, CoresPerNode: 4, Home: func(int) int { return 0 }}, c)
	if err != nil {
		t.Fatal(err)
	}
	if freeComm.Makespan > oneNode.Makespan+1e-9 {
		t.Fatalf("free communication but distributed run slower: %v vs %v",
			freeComm.Makespan, oneNode.Makespan)
	}
	costly, err := SimulateCluster(g, Cluster{
		Nodes: 4, CoresPerNode: 4, Home: homeRR, Latency: 5, TransferTime: 5,
	}, c)
	if err != nil {
		t.Fatal(err)
	}
	if costly.Makespan <= freeComm.Makespan {
		t.Fatalf("communication cost had no effect: %v vs %v", costly.Makespan, freeComm.Makespan)
	}
	if costly.Messages == 0 || costly.CommTime == 0 {
		t.Fatalf("no communication accounted: %+v", costly)
	}
}

// Every task completes exactly once regardless of distribution.
func TestClusterConservation(t *testing.T) {
	g := dag.NewGEPDataflow(8, gep.Triangular)
	c := unitCosts()
	r, err := SimulateCluster(g, Cluster{
		Nodes: 3, CoresPerNode: 2,
		Home:    func(id int) int { return (id * 7) % 3 },
		Latency: 0.25, TransferTime: 0.1,
	}, c)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.BusyTime-float64(g.Len())) > 1e-9 {
		t.Fatalf("busy %v, want %v", r.BusyTime, float64(g.Len()))
	}
	if r.Makespan < r.Work/6 {
		t.Fatalf("makespan below work bound")
	}
}

// Property test on random layered DAGs: Brent's inequality, work/span
// consistency and conservation must hold for arbitrary graph shapes, not
// just the benchmark-derived ones.
func TestRandomDAGProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomLayeredDAG(rng)
		c := unitCosts()
		span, err := Simulate(g, 0, c)
		if err != nil {
			return false
		}
		for _, p := range []int{1, 3, 7} {
			r, err := Simulate(g, p, c)
			if err != nil {
				return false
			}
			if r.Makespan < r.Work/float64(p)-1e-9 ||
				r.Makespan > r.Work/float64(p)+span.Makespan+1e-9 ||
				r.Makespan < span.Makespan-1e-9 {
				return false
			}
			if math.Abs(r.BusyTime-r.Work) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// randomLayeredDAG builds a random DAG in CSR form via the dag builders'
// public contract: layered nodes with random forward edges.
type randomDAG struct {
	kinds []dag.Kind
	indeg []int
	succs [][]int
}

func (r *randomDAG) Len() int             { return len(r.kinds) }
func (r *randomDAG) Kind(id int) dag.Kind { return r.kinds[id] }
func (r *randomDAG) InDeg(id int) int     { return r.indeg[id] }
func (r *randomDAG) EachSucc(id int, f func(int)) {
	for _, s := range r.succs[id] {
		f(s)
	}
}

func randomLayeredDAG(rng *rand.Rand) dag.Graph {
	layers := 2 + rng.Intn(5)
	perLayer := 1 + rng.Intn(6)
	var ids [][]int
	g := &randomDAG{}
	for l := 0; l < layers; l++ {
		var layer []int
		for i := 0; i < perLayer; i++ {
			g.kinds = append(g.kinds, dag.KindD)
			g.indeg = append(g.indeg, 0)
			g.succs = append(g.succs, nil)
			layer = append(layer, len(g.kinds)-1)
		}
		ids = append(ids, layer)
	}
	for l := 0; l+1 < layers; l++ {
		for _, u := range ids[l] {
			for _, v := range ids[l+1] {
				if rng.Float64() < 0.5 {
					g.succs[u] = append(g.succs[u], v)
					g.indeg[v]++
				}
			}
		}
	}
	return g
}

// The timeline must integrate back to the utilization: mean occupancy over
// the buckets equals BusyTime / Makespan.
func TestTimelineIntegratesToUtilization(t *testing.T) {
	g := dag.NewGEPForkJoin(8, gep.Triangular)
	r, err := SimulateTimeline(g, 8, unitCosts(), 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Timeline) != 50 {
		t.Fatalf("timeline has %d buckets", len(r.Timeline))
	}
	sum := 0.0
	for _, v := range r.Timeline {
		if v < -1e-9 || v > float64(r.Processors)+1e-9 {
			t.Fatalf("occupancy %v outside [0, P]", v)
		}
		sum += v
	}
	mean := sum / float64(len(r.Timeline))
	if want := r.BusyTime / r.Makespan; math.Abs(mean-want) > 0.05*want {
		t.Fatalf("mean occupancy %v, want %v", mean, want)
	}
	// The fork-join run must actually show idle phases: some bucket well
	// below the peak.
	min, max := math.Inf(1), 0.0
	for _, v := range r.Timeline {
		min, max = math.Min(min, v), math.Max(max, v)
	}
	if min > max/2 {
		t.Fatalf("no idle phases visible: min %v max %v", min, max)
	}
}

func TestTimelineDisabledByDefault(t *testing.T) {
	g := dag.NewSWDataflow(4)
	r, err := Simulate(g, 2, unitCosts())
	if err != nil {
		t.Fatal(err)
	}
	if r.Timeline != nil {
		t.Fatal("Simulate should not sample a timeline")
	}
}
