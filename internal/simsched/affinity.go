package simsched

import (
	"fmt"

	"dpflow/internal/dag"
)

// Affinity models NUMA placement: processors are grouped into sockets, a
// Home function assigns every task a home socket (e.g. the socket that
// touched its tile last), and executing a task away from home pays a
// migration penalty (the tile's working set crossing the interconnect).
// With PreferHome the dispatcher scans the ready pool for a home-socket
// task before settling for a migrated one — the scheduling policy the
// paper's §IV-B projects for the compute_on tuner.
type Affinity struct {
	Sockets        int
	Home           func(id int) int
	MigratePenalty float64
	PreferHome     bool
	// ScanLimit bounds the ready-pool scan per dispatch (0 = 64).
	ScanLimit int
}

// AffinityResult extends Result with migration accounting.
type AffinityResult struct {
	Result
	Migrations int // tasks executed away from their home socket
}

// SimulateAffinity runs the greedy simulation with socket-aware dispatch.
// Processor p belongs to socket p % Sockets (round-robin interleave, so
// every socket has free capacity at every pool size).
func SimulateAffinity(g dag.Graph, p int, c Costs, af Affinity) (AffinityResult, error) {
	if p <= 0 {
		return AffinityResult{}, fmt.Errorf("simsched: affinity simulation needs p > 0")
	}
	if af.Sockets < 1 || af.Home == nil {
		return AffinityResult{}, fmt.Errorf("simsched: affinity needs Sockets >= 1 and a Home function")
	}
	scan := af.ScanLimit
	if scan <= 0 {
		scan = 64
	}
	n := g.Len()
	indeg := make([]int32, n)
	var ready []int32
	for i := 0; i < n; i++ {
		indeg[i] = int32(g.InDeg(i))
		if indeg[i] == 0 {
			ready = append(ready, int32(i))
		}
	}

	// pick removes and returns a ready task for the given socket,
	// preferring home tasks within the scan window.
	pick := func(socket int) int32 {
		idx := 0
		if af.PreferHome {
			limit := len(ready)
			if limit > scan {
				limit = scan
			}
			for i := 0; i < limit; i++ {
				if af.Home(int(ready[i])) == socket {
					idx = i
					break
				}
			}
		}
		id := ready[idx]
		ready = append(ready[:idx], ready[idx+1:]...)
		return id
	}

	var (
		running     eventHeap
		now         = c.Startup
		done        int
		busy        float64
		migrations  int
		peakReady   int
		serialClock = c.Startup
		freeProcs   = make([]int, p) // free processor ids, LIFO
	)
	for i := range freeProcs {
		freeProcs[i] = i
	}
	procOf := make(map[int32]int32, p)

	for done < n {
		if len(ready) > peakReady {
			peakReady = len(ready)
		}
		for len(freeProcs) > 0 && len(ready) > 0 {
			proc := freeProcs[len(freeProcs)-1]
			freeProcs = freeProcs[:len(freeProcs)-1]
			socket := proc % af.Sockets
			id := pick(socket)
			t := c.TaskTime(g.Kind(int(id)))
			if g.Kind(int(id)) != dag.KindJoin && af.Home(int(id)) != socket {
				t += af.MigratePenalty
				migrations++
			}
			start := now
			if c.SerialPerTask > 0 {
				if serialClock > start {
					start = serialClock
				}
				serialClock = start + c.SerialPerTask
			}
			busy += t
			running.push(event{at: start + t, id: id})
			procOf[id] = int32(proc)
		}
		if running.empty() {
			return AffinityResult{}, fmt.Errorf("simsched: %d of %d tasks never became ready (cycle?)", n-done, n)
		}
		ev := running.pop()
		now = ev.at
		for {
			g.EachSucc(int(ev.id), func(s int) {
				indeg[s]--
				if indeg[s] == 0 {
					ready = append(ready, int32(s))
				}
			})
			done++
			freeProcs = append(freeProcs, int(procOf[ev.id]))
			delete(procOf, ev.id)
			if running.empty() || running.peek().at != now {
				break
			}
			ev = running.pop()
		}
	}
	res := AffinityResult{Migrations: migrations}
	res.Makespan = now
	res.Work = totalWork(g, c)
	res.Processors = p
	res.BusyTime = busy
	res.Utilization = busy / (float64(p) * now)
	res.PeakReady = peakReady
	return res, nil
}
