package ge

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dpflow/internal/core"
	"dpflow/internal/forkjoin"
	"dpflow/internal/matrix"
)

// End-to-end: every variant must actually solve linear systems.
func TestSolveSystemAllVariants(t *testing.T) {
	pool := forkjoin.NewPool(forkjoin.Config{Workers: 2})
	defer pool.Close()
	rng := rand.New(rand.NewSource(7))
	for _, v := range []core.Variant{core.SerialLoop, core.SerialRDP, core.OMPTasking, core.NativeCnC, core.TunerCnC, core.ManualCnC} {
		a, want := NewSystem(32, rng)
		if _, err := Run(v, a, 4, 2, pool); err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		got, err := BackSubstitute(a)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-8 {
				t.Fatalf("%v: x[%d] = %v, want %v", v, i, got[i], want[i])
			}
		}
	}
}

// Property: for random diagonally dominant systems of random power-of-two
// sizes and random base sizes, the CnC solution solves the system.
func TestSolveProperty(t *testing.T) {
	f := func(seed int64, sizeExp, baseExp uint8) bool {
		n := 8 << (sizeExp % 3)               // 8, 16, 32
		base := 1 << (baseExp % 4)            // 1, 2, 4, 8
		rng := rand.New(rand.NewSource(seed)) // deterministic per case
		a, want := NewSystem(n, rng)
		if _, err := RunCnC(a, base, 2, core.NativeCnC); err != nil {
			return false
		}
		got, err := BackSubstitute(a)
		if err != nil {
			return false
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestBackSubstituteErrors(t *testing.T) {
	if _, err := BackSubstitute(matrix.New(3, 4)); err == nil {
		t.Error("non-square accepted")
	}
	if _, err := BackSubstitute(matrix.New(1, 1)); err == nil {
		t.Error("too-small system accepted")
	}
	z := matrix.NewSquare(3) // zero pivots
	if _, err := BackSubstitute(z); err == nil {
		t.Error("zero pivot not reported")
	}
}

// The CnC determinism guarantee: identical DP tables for any worker count.
func TestCnCDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	orig := matrix.NewSquare(32)
	orig.FillDiagonallyDominant(rng)
	ref := orig.Clone()
	if _, err := RunCnC(ref, 4, 1, core.NativeCnC); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 7} {
		x := orig.Clone()
		if _, err := RunCnC(x, 4, workers, core.NativeCnC); err != nil {
			t.Fatal(err)
		}
		if !matrix.Equal(x, ref) {
			t.Fatalf("workers=%d: nondeterministic result", workers)
		}
	}
}
