package ge

import (
	"context"
	"math/rand"
	"runtime"
	"testing"

	"dpflow/internal/cnc"
	"dpflow/internal/core"
	"dpflow/internal/matrix"
)

// TestCnCLeakFree checks the GE memory contract across the three schedules
// that declare get-counts: after a successful run every item must have been
// garbage-collected (a too-high declared count would leave LiveItems > 0;
// a too-low one fails the run with a use-after-free or over-release), the
// result must still be correct, and the live high-water mark must sit
// strictly below the total put count — items died while the run progressed.
func TestCnCLeakFree(t *testing.T) {
	for _, v := range []core.Variant{core.NativeCnC, core.TunerCnC, core.ManualCnC} {
		t.Run(v.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			orig := matrix.NewSquare(64)
			orig.FillDiagonallyDominant(rng)
			ref := orig.Clone()
			Serial(ref)

			x := orig.Clone()
			stats, err := RunCnC(x, 8, 3, v)
			if err != nil {
				t.Fatal(err)
			}
			if !matrix.Equal(x, ref) {
				t.Fatalf("result disagrees with serial (maxdiff %g)", matrix.MaxAbsDiff(x, ref))
			}
			if stats.LiveItems != 0 {
				t.Fatalf("LiveItems = %d after quiesce, want 0 (declared get-counts too high)", stats.LiveItems)
			}
			if stats.ItemsFreed != int64(stats.ItemsPut) {
				t.Fatalf("ItemsFreed = %d, want %d", stats.ItemsFreed, stats.ItemsPut)
			}
			if stats.PeakLiveItems >= int64(stats.ItemsPut) {
				t.Fatalf("PeakLiveItems = %d, want < %d (no item ever died)", stats.PeakLiveItems, stats.ItemsPut)
			}
		})
	}
}

// TestNonBlockingExcludedFromGC pins the NonBlockingCnC carve-out: its
// poll-miss re-put retires one successful step instance per poll, so
// completion-time releases would over-release. The variant therefore runs
// without get-counts — nothing freed, everything live at quiesce.
func TestNonBlockingExcludedFromGC(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := matrix.NewSquare(32)
	x.FillDiagonallyDominant(rng)
	stats, err := RunCnC(x, 4, 3, core.NonBlockingCnC)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ItemsFreed != 0 {
		t.Fatalf("ItemsFreed = %d, want 0 (NonBlocking must not declare get-counts)", stats.ItemsFreed)
	}
	if stats.LiveItems != int64(stats.ItemsPut) {
		t.Fatalf("LiveItems = %d, want %d", stats.LiveItems, stats.ItemsPut)
	}
}

// TestBoundedMemory2KGE is the acceptance run: a 2048×2048 Native-CnC GE at
// base 64. The unbounded pass must quiesce with zero live items and a peak
// strictly below the total puts; the same problem under a memory limit of
// half the unbounded byte peak must complete without deadlock or stall and
// keep PeakLiveBytes within the budget.
func TestBoundedMemory2KGE(t *testing.T) {
	if testing.Short() {
		t.Skip("2K GE acceptance run skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(42))
	orig := matrix.NewSquare(2048)
	orig.FillDiagonallyDominant(rng)
	workers := runtime.GOMAXPROCS(0)

	x := orig.Clone()
	unbounded, err := RunCnC(x, 64, workers, core.NativeCnC)
	if err != nil {
		t.Fatal(err)
	}
	if unbounded.LiveItems != 0 {
		t.Fatalf("unbounded: LiveItems = %d, want 0", unbounded.LiveItems)
	}
	if unbounded.ItemsFreed != int64(unbounded.ItemsPut) {
		t.Fatalf("unbounded: ItemsFreed = %d, want %d", unbounded.ItemsFreed, unbounded.ItemsPut)
	}
	if unbounded.PeakLiveItems >= int64(unbounded.ItemsPut) {
		t.Fatalf("unbounded: PeakLiveItems = %d, want < ItemsPut = %d",
			unbounded.PeakLiveItems, unbounded.ItemsPut)
	}
	if unbounded.PeakLiveBytes == 0 {
		t.Fatal("unbounded: PeakLiveBytes = 0; SizeOf hints not wired")
	}

	// Feasible budget: 95% of the unbounded peak sits above the admission
	// policy's live-set floor, so the bound must hold strictly (stalls 0).
	limit := unbounded.PeakLiveBytes * 95 / 100
	y := orig.Clone()
	bounded, err := RunCnCContext(context.Background(), y, 64, workers, core.NativeCnC,
		func(g *cnc.Graph) { g.WithMemoryLimit(limit) })
	if err != nil {
		t.Fatal(err)
	}
	if bounded.PeakLiveBytes > limit {
		t.Fatalf("bounded: PeakLiveBytes = %d, want <= %d", bounded.PeakLiveBytes, limit)
	}
	if bounded.BackpressureStalls != 0 {
		t.Fatalf("bounded: BackpressureStalls = %d, want 0 (budget was feasible)", bounded.BackpressureStalls)
	}
	if bounded.BackpressureWaits == 0 {
		t.Fatal("bounded: BackpressureWaits = 0; the budget never throttled")
	}
	if bounded.LiveItems != 0 {
		t.Fatalf("bounded: LiveItems = %d, want 0", bounded.LiveItems)
	}
	if !matrix.Equal(x, y) {
		t.Fatalf("bounded run disagrees with unbounded (maxdiff %g)", matrix.MaxAbsDiff(x, y))
	}

	// Infeasible budget: half the unbounded peak is below the live-set
	// floor. The run must still complete correctly — degrading past the
	// bound with the overflow reported as stalls — instead of deadlocking.
	tight := unbounded.PeakLiveBytes / 2
	z := orig.Clone()
	degraded, err := RunCnCContext(context.Background(), z, 64, workers, core.NativeCnC,
		func(g *cnc.Graph) { g.WithMemoryLimit(tight) })
	if err != nil {
		t.Fatal(err)
	}
	if degraded.BackpressureStalls == 0 {
		t.Fatalf("degraded: BackpressureStalls = 0, want > 0 (half-peak budget is infeasible)")
	}
	if degraded.PeakLiveBytes > unbounded.PeakLiveBytes {
		t.Fatalf("degraded: PeakLiveBytes = %d exceeds the unbounded peak %d",
			degraded.PeakLiveBytes, unbounded.PeakLiveBytes)
	}
	if degraded.LiveItems != 0 {
		t.Fatalf("degraded: LiveItems = %d, want 0", degraded.LiveItems)
	}
	if !matrix.Equal(x, z) {
		t.Fatalf("degraded run disagrees with unbounded (maxdiff %g)", matrix.MaxAbsDiff(x, z))
	}
	t.Logf("unbounded peak %d bytes (%d items) over %d puts; bounded to %d: peak %d, waits %d; tight %d: peak %d, stalls %d",
		unbounded.PeakLiveBytes, unbounded.PeakLiveItems, unbounded.ItemsPut,
		limit, bounded.PeakLiveBytes, bounded.BackpressureWaits,
		tight, degraded.PeakLiveBytes, degraded.BackpressureStalls)
}
