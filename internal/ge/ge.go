// Package ge is the paper's running example: Gaussian Elimination without
// pivoting (§III). It instantiates the GEP recursion of internal/gep with
// the GE kernel and the triangular update set, and adds the linear-system
// utilities the examples use.
//
// GE without pivoting is numerically meaningful for symmetric positive-
// definite or diagonally dominant matrices; the generators here produce the
// latter. Following the paper's convention, a system of n-1 equations in
// n-1 unknowns is represented as an n×n matrix whose last column is the
// right-hand side.
package ge

import (
	"context"
	"fmt"
	"math/rand"

	"dpflow/internal/cnc"
	"dpflow/internal/core"
	"dpflow/internal/forkjoin"
	"dpflow/internal/gep"
	"dpflow/internal/kernels"
	"dpflow/internal/matrix"
)

// Algorithm is the GEP instantiation for GE: the elimination kernel over the
// triangular update set Σ_GE = {(i,j,k): i > k, j > k}.
var Algorithm = gep.Algorithm{Kernel: kernels.GE, Shape: gep.Triangular}

// Serial runs the loop-based serial implementation (Listing 2).
func Serial(x *matrix.Dense) { kernels.GESerial(x) }

// RDPSerial runs the 2-way recursive divide-and-conquer GE serially.
func RDPSerial(x *matrix.Dense, base int) error { return Algorithm.RDPSerial(x, base) }

// ForkJoin runs the fork-join (OpenMP-tasking style) R-DP GE on pool.
func ForkJoin(x *matrix.Dense, base int, pool *forkjoin.Pool) error {
	return Algorithm.ForkJoin(x, base, pool)
}

// RunCnC runs the data-flow R-DP GE in the given CnC variant.
func RunCnC(x *matrix.Dense, base, workers int, v core.Variant) (gep.CnCStats, error) {
	return Algorithm.RunCnC(x, base, workers, v)
}

// RunCnCContext is RunCnC with cooperative cancellation and an optional
// graph-tuning hook (see gep.Algorithm.RunCnCContext).
func RunCnCContext(ctx context.Context, x *matrix.Dense, base, workers int, v core.Variant, tune func(*cnc.Graph)) (gep.CnCStats, error) {
	return Algorithm.RunCnCContext(ctx, x, base, workers, v, tune)
}

// Run dispatches any variant. SerialLoop ignores base, workers and pool.
func Run(v core.Variant, x *matrix.Dense, base, workers int, pool *forkjoin.Pool) (gep.CnCStats, error) {
	return RunContext(context.Background(), v, x, base, workers, pool)
}

// RunContext is Run with cooperative cancellation for the parallel
// variants.
func RunContext(ctx context.Context, v core.Variant, x *matrix.Dense, base, workers int, pool *forkjoin.Pool) (gep.CnCStats, error) {
	if v == core.SerialLoop {
		Serial(x)
		return gep.CnCStats{}, nil
	}
	return Algorithm.RunContext(ctx, v, x, base, workers, pool)
}

// NewSystem builds a random diagonally dominant n×n augmented system whose
// last column is A·x for a random solution x, and returns the matrix and
// the exact solution (of length n-1).
func NewSystem(n int, rng *rand.Rand) (*matrix.Dense, []float64) {
	a := matrix.NewSquare(n)
	a.FillDiagonallyDominant(rng)
	x := make([]float64, n-1)
	for i := range x {
		x[i] = -1 + 2*rng.Float64()
	}
	for i := 0; i < n-1; i++ {
		sum := 0.0
		for j := 0; j < n-1; j++ {
			sum += a.At(i, j) * x[j]
		}
		a.Set(i, n-1, sum)
	}
	return a, x
}

// BackSubstitute solves the upper-triangularised augmented system produced
// by any of the GE drivers, returning the n-1 unknowns.
func BackSubstitute(a *matrix.Dense) ([]float64, error) {
	n := a.Rows()
	if n < 2 || n != a.Cols() {
		return nil, fmt.Errorf("ge: augmented system must be square with n >= 2, got %dx%d", n, a.Cols())
	}
	x := make([]float64, n-1)
	for i := n - 2; i >= 0; i-- {
		sum := a.At(i, n-1)
		for j := i + 1; j < n-1; j++ {
			sum -= a.At(i, j) * x[j]
		}
		p := a.At(i, i)
		if p == 0 {
			return nil, fmt.Errorf("ge: zero pivot at row %d (matrix not diagonally dominant?)", i)
		}
		x[i] = sum / p
	}
	return x, nil
}
