package determinacy

import (
	"strings"
	"testing"
)

// The unit tests drive Frames directly — Root/Fork/Join are exactly the
// calls the fork-join pool makes on Run/Spawn/Wait, so a hand-built frame
// tree is a faithful miniature of a pool run with a fixed schedule.

func TestSiblingWritesRace(t *testing.T) {
	d := NewDetector()
	root := d.Root()
	a, b := root.Fork(), root.Fork()
	c := TileCell(1, 2)
	a.Write(c)
	b.Write(c)
	err := d.Err()
	if err == nil {
		t.Fatal("unordered sibling writes not reported")
	}
	re, ok := err.(*RaceError)
	if !ok {
		t.Fatalf("Err() = %T, want *RaceError", err)
	}
	if re.Cell != "tile(1,2)" {
		t.Errorf("Cell = %q, want tile(1,2)", re.Cell)
	}
	// Tasks are named by fork path: first and second spawn off the root.
	if re.FirstTask != "root/1:1" || re.SecondTask != "root/2:1" {
		t.Errorf("tasks = %q, %q; want root/1:1, root/2:1", re.FirstTask, re.SecondTask)
	}
}

func TestSpawnOrdersParentBeforeChild(t *testing.T) {
	d := NewDetector()
	root := d.Root()
	c := TileCell(0, 0)
	root.Write(c) // before the spawn: ordered before the child
	kid := root.Fork()
	kid.Write(c)
	if err := d.Err(); err != nil {
		t.Fatalf("pre-spawn parent write vs child reported as race: %v", err)
	}
}

func TestPostSpawnParentWriteRacesChild(t *testing.T) {
	d := NewDetector()
	root := d.Root()
	c := TileCell(0, 0)
	kid := root.Fork()
	kid.Write(c)
	root.Write(c) // after the spawn, before any join: concurrent with kid
	if d.Err() == nil {
		t.Fatal("post-spawn parent write vs unjoined child not reported")
	}
}

func TestJoinOrdersChildBeforeParent(t *testing.T) {
	d := NewDetector()
	root := d.Root()
	c := TileCell(3, 3)
	kid := root.Fork()
	kid.Write(c)
	root.Join([]*Frame{kid})
	root.Write(c) // after the join: ordered after the child
	if err := d.Err(); err != nil {
		t.Fatalf("joined child vs post-wait parent reported as race: %v", err)
	}
}

func TestPhasedSiblingsNoRace(t *testing.T) {
	// The benchmarks' shape: a batch of tasks, a join, a second batch
	// touching the same tiles. Nothing in phase 2 races phase 1.
	d := NewDetector()
	root := d.Root()
	c := TileCell(2, 5)
	a, b := root.Fork(), root.Fork()
	a.Write(c)
	b.Read(TileCell(9, 9))
	root.Join([]*Frame{a, b})
	x, y := root.Fork(), root.Fork()
	x.Read(c)
	root.Join([]*Frame{x, y})
	root.Write(c)
	if err := d.Err(); err != nil {
		t.Fatalf("phased accesses reported as race: %v", err)
	}
}

func TestConcurrentReadsNoRaceThenWriteRaces(t *testing.T) {
	d := NewDetector()
	root := d.Root()
	c := TileCell(0, 1)
	a, b := root.Fork(), root.Fork()
	a.Read(c)
	b.Read(c)
	if err := d.Err(); err != nil {
		t.Fatalf("concurrent reads reported as race: %v", err)
	}
	w := root.Fork() // still unordered with a and b
	w.Write(c)
	races := d.Races()
	if len(races) != 2 {
		t.Fatalf("got %d races, want 2 (write vs each recorded reader): %v", len(races), races)
	}
	for _, r := range races {
		if r.FirstOp != "read" || r.SecondOp != "write" {
			t.Errorf("race ops = %s/%s, want read/write", r.FirstOp, r.SecondOp)
		}
	}
}

func TestDeepRecursionOrdering(t *testing.T) {
	// Nested fork/join at depth: each level spawns two children writing
	// distinct halves, joins, then the parent touches both. No races.
	d := NewDetector()
	var recurse func(f *Frame, lo, hi, depth int)
	recurse = func(f *Frame, lo, hi, depth int) {
		if depth == 0 || hi-lo < 2 {
			for i := lo; i < hi; i++ {
				f.Write(TileCell(i, 0))
			}
			return
		}
		mid := (lo + hi) / 2
		a, b := f.Fork(), f.Fork()
		recurse(a, lo, mid, depth-1)
		recurse(b, mid, hi, depth-1)
		f.Join([]*Frame{a, b})
		for i := lo; i < hi; i++ {
			f.Read(TileCell(i, 0))
		}
	}
	root := d.Root()
	recurse(root, 0, 16, 4)
	if err := d.Err(); err != nil {
		t.Fatalf("disjoint recursive writes reported as race: %v", err)
	}
	st := d.Stats()
	if st.Accesses == 0 || st.Queries == 0 || st.Cells != 16 {
		t.Fatalf("stats = %+v, want live accesses/queries and 16 cells", st)
	}
}

func TestErrDeterministicMinimum(t *testing.T) {
	d := NewDetector()
	root := d.Root()
	a, b := root.Fork(), root.Fork()
	// Two independent races on different cells, detected in this order.
	a.Write(TileCell(9, 9))
	b.Write(TileCell(9, 9))
	a.Write(TileCell(1, 1))
	b.Write(TileCell(1, 1))
	want := d.Races()[0].Error() // sorted: lexicographic minimum
	if got := d.Err().Error(); got != want {
		t.Fatalf("Err() = %q, want the message-order minimum %q", got, want)
	}
	if !strings.Contains(want, "tile(1,1)") {
		t.Fatalf("minimum message %q should name tile(1,1)", want)
	}
}

func TestRootResetsShadowStateAcrossRuns(t *testing.T) {
	d := NewDetector()
	r1 := d.Root()
	r1.Fork().Write(TileCell(4, 4))
	// Second run on the same detector: old shadow entries must not be
	// compared against the new run's unrelated timestamps.
	r2 := d.Root()
	r2.Fork().Write(TileCell(4, 4))
	if err := d.Err(); err != nil {
		t.Fatalf("cross-run accesses reported as race: %v", err)
	}
}

func TestRaceCapBounded(t *testing.T) {
	d := NewDetector()
	root := d.Root()
	a, b := root.Fork(), root.Fork()
	for i := 0; i < 400; i++ {
		a.Write(TileCell(i, i))
		b.Write(TileCell(i, i))
	}
	if n := len(d.Races()); n != 256 {
		t.Fatalf("recorded %d races, want the 256 cap", n)
	}
}
