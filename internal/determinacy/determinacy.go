// Package determinacy implements on-the-fly determinacy-race detection for
// the repo's two execution models.
//
// For the fork-join model it provides a DePa-style order-maintenance scheme
// (Westrick, Fluet & Acar, arXiv 2204.14168): every task carries a compact
// timestamp — its dag depth plus a fork-path of spawn epochs — maintained by
// the pool on each Spawn and Wait, so "did access A precede access B in the
// series-parallel dag?" is answered structurally, without clocks per worker.
// Shadow cells record the last writer and a bounded reader set per tracked
// cell (one cell per base-case tile in the benchmarks); an access that is
// unordered with a recorded conflicting access raises a RaceError naming
// both tasks by fork path.
//
// For the CnC model, DisciplineChecker (discipline.go) validates the
// nested-dataflow discipline of Dinh & Simhadri (arXiv 1602.04552): items
// are write-once, get-counts are exact, and the final item store must be
// schedule-independent.
//
// Both detectors are passive: they never alter scheduling, they collect
// findings, and Err() reports the lexicographically first finding so the
// reported error is deterministic given the detected set.
package determinacy

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// rec is the immutable spine of one task's timestamp: its position in the
// fork tree. The fork-path encoding is the chain of spawnEpoch values from
// the root; together with depth it answers precedence queries by lifting
// both accesses to their least common ancestor strand.
type rec struct {
	parent     *rec
	depth      uint32
	spawnEpoch uint32 // parent strand epoch at the Spawn that created this task

	// joined is the parent strand epoch that begins after the Wait that
	// joined this task; 0 while unjoined. Written once by the parent's
	// waiter, read by concurrent precedence queries, hence atomic.
	joined atomic.Uint32
}

// path renders the fork-path encoding, e.g. "root/3/1".
func (r *rec) path() string {
	if r.parent == nil {
		return "root"
	}
	return r.parent.path() + "/" + strconv.Itoa(int(r.spawnEpoch))
}

// access is one timestamped shadow-cell access: the task plus the strand
// segment (epoch) it was in. Strand segments advance at each Spawn and each
// completed Wait, so code before a spawn is ordered before the child while
// code after it is concurrent.
type access struct {
	rec   *rec
	epoch uint32
}

func (a access) name() string {
	return a.rec.path() + ":" + strconv.Itoa(int(a.epoch))
}

// Frame is the mutable per-task view of the timestamp: the task's rec plus
// its current strand epoch. A Frame is owned by the goroutine running the
// task; only immutable copies escape into shadow cells.
type Frame struct {
	d     *Detector
	rec   *rec
	epoch uint32
}

// RaceError reports two unordered conflicting accesses to one cell. Tasks
// are named by their fork path (spawn epochs from the root) and strand
// segment, which identifies them independently of scheduling.
type RaceError struct {
	Cell      string
	FirstOp   string // "read" or "write"
	FirstTask string
	SecondOp  string
	SecondTask string
}

func (e *RaceError) Error() string {
	return fmt.Sprintf("determinacy: race on %s: %s by task %s is unordered with %s by task %s",
		e.Cell, e.FirstOp, e.FirstTask, e.SecondOp, e.SecondTask)
}

const shadowShards = 64

type shadowShard struct {
	mu    sync.Mutex
	cells map[uint64]*shadow
}

// shadow is the per-cell access history: the last writer and up to two
// readers since that write. Two reader slots suffice to catch every
// read-write race in series-parallel dags unless three or more pairwise-
// concurrent readers precede the racing write; in that case a race may go
// unreported (never falsely reported) — the standard bounded-shadow
// compromise, and irrelevant for the tile kernels here, whose tiles have at
// most two concurrent readers per phase.
type shadow struct {
	writer  access
	readers [2]access
}

// Detector is the fork-join race detector. Create one per pool run with
// NewDetector, hand it to forkjoin.Pool.WithRaceDetection, and check Err()
// after the run. Disabled cost is one nil check per spawn, wait and access.
type Detector struct {
	shards [shadowShards]shadowShard
	namer  func(cell uint64) string

	raceMu sync.Mutex
	races  []*RaceError

	tasks    atomic.Uint64
	accesses atomic.Uint64
	queries  atomic.Uint64
}

// DetectorStats is a snapshot of detector activity.
type DetectorStats struct {
	Tasks    uint64 // frames created (roots + forks)
	Accesses uint64 // shadow-cell reads + writes checked
	Queries  uint64 // precedence queries answered
	Cells    int    // distinct cells tracked
	Races    int    // conflicting unordered pairs recorded
}

// NewDetector returns an empty detector. Cells are named by SetCellNamer;
// the default decodes TileCell packing as "tile(i,j)".
func NewDetector() *Detector {
	d := &Detector{namer: func(cell uint64) string {
		return fmt.Sprintf("tile(%d,%d)", int32(cell>>32), int32(cell))
	}}
	for i := range d.shards {
		d.shards[i].cells = make(map[uint64]*shadow)
	}
	return d
}

// SetCellNamer overrides how cells are rendered in RaceError messages.
func (d *Detector) SetCellNamer(f func(cell uint64) string) { d.namer = f }

// TileCell packs a tile coordinate into a cell id for Read/Write.
func TileCell(i, j int) uint64 { return uint64(uint32(i))<<32 | uint64(uint32(j)) }

// Root starts a new run: shadow state from any previous run on this
// detector is discarded (timestamps from different runs are unrelated) and
// the root task's frame is returned. Races already recorded are kept.
// A detector must not be shared by concurrent runs.
func (d *Detector) Root() *Frame {
	for i := range d.shards {
		s := &d.shards[i]
		s.mu.Lock()
		s.cells = make(map[uint64]*shadow)
		s.mu.Unlock()
	}
	d.tasks.Add(1)
	return &Frame{d: d, rec: &rec{}, epoch: 1}
}

// Fork records a Spawn: it creates the child's frame and advances the
// parent's strand epoch, so parent code after the spawn is concurrent with
// the child while code before it precedes the child.
func (f *Frame) Fork() *Frame {
	child := &rec{parent: f.rec, depth: f.rec.depth + 1, spawnEpoch: f.epoch}
	f.epoch++
	f.d.tasks.Add(1)
	return &Frame{d: f.d, rec: child, epoch: 1}
}

// Join records a completed Wait: the parent's strand epoch advances and
// every child of this frame in kids becomes ordered before the new segment.
// Children spawned by a different task (cross-task groups) are left
// unjoined — a conservative choice that can over-report concurrency; every
// driver in this repo waits on its own spawns, where the encoding is exact.
func (f *Frame) Join(kids []*Frame) {
	f.epoch++
	for _, k := range kids {
		if k.rec.parent == f.rec {
			k.rec.joined.Store(f.epoch)
		}
	}
}

// hb reports whether access a precedes access b in the series-parallel dag.
// Both are lifted to their least common ancestor strand: a through join
// epochs (an unjoined subtree precedes nothing outside itself), b through
// spawn epochs; at the LCA the strand is sequential and epochs compare
// directly. Cost is O(depth difference); the benchmarks' recursions are
// logarithmic in tile count.
func (d *Detector) hb(a, b access) bool {
	d.queries.Add(1)
	ra, ea := a.rec, a.epoch
	rb, eb := b.rec, b.epoch
	for ra.depth > rb.depth {
		j := ra.joined.Load()
		if j == 0 {
			return false
		}
		ra, ea = ra.parent, j
	}
	for rb.depth > ra.depth {
		rb, eb = rb.parent, rb.spawnEpoch
	}
	for ra != rb {
		j := ra.joined.Load()
		if j == 0 {
			return false
		}
		ra, ea = ra.parent, j
		rb, eb = rb.parent, rb.spawnEpoch
	}
	return ea <= eb
}

func (d *Detector) shard(cell uint64) *shadowShard {
	// Mix the halves so row-major tile ids spread across shards.
	h := cell ^ cell>>32 ^ cell>>7
	return &d.shards[h%shadowShards]
}

// Write checks and records a write of cell by the current task.
func (f *Frame) Write(cell uint64) {
	d := f.d
	d.accesses.Add(1)
	cur := access{rec: f.rec, epoch: f.epoch}
	sh := d.shard(cell)
	sh.mu.Lock()
	s := sh.cells[cell]
	if s == nil {
		s = &shadow{}
		sh.cells[cell] = s
	}
	if s.writer.rec != nil && !d.hb(s.writer, cur) {
		d.report(cell, s.writer, "write", cur, "write")
	}
	for _, r := range s.readers {
		if r.rec != nil && !d.hb(r, cur) {
			d.report(cell, r, "read", cur, "write")
		}
	}
	s.writer = cur
	s.readers = [2]access{}
	sh.mu.Unlock()
}

// Read checks and records a read of cell by the current task.
func (f *Frame) Read(cell uint64) {
	d := f.d
	d.accesses.Add(1)
	cur := access{rec: f.rec, epoch: f.epoch}
	sh := d.shard(cell)
	sh.mu.Lock()
	s := sh.cells[cell]
	if s == nil {
		s = &shadow{}
		sh.cells[cell] = s
	}
	if s.writer.rec != nil && !d.hb(s.writer, cur) {
		d.report(cell, s.writer, "write", cur, "read")
	}
	// Keep cur in a reader slot: prefer an empty slot, then one holding a
	// reader that precedes cur (any future access racing with that reader
	// also races with cur, so dropping it loses nothing).
	slot := -1
	for i, r := range s.readers {
		if r.rec == nil || d.hb(r, cur) {
			slot = i
			break
		}
	}
	if slot < 0 {
		slot = 1
	}
	s.readers[slot] = cur
	sh.mu.Unlock()
}

func (d *Detector) report(cell uint64, a access, aOp string, b access, bOp string) {
	// Canonicalise the pair (by task name, then op): the message identifies
	// an unordered pair, and which of the two the schedule happened to
	// execute first is irrelevant — so one race renders identically under
	// every interleaving that detects it.
	if bn, an := b.name(), a.name(); bn < an || (bn == an && bOp < aOp) {
		a, aOp, b, bOp = b, bOp, a, aOp
	}
	e := &RaceError{
		Cell:       d.namer(cell),
		FirstOp:    aOp,
		FirstTask:  a.name(),
		SecondOp:   bOp,
		SecondTask: b.name(),
	}
	d.raceMu.Lock()
	if len(d.races) < 256 {
		d.races = append(d.races, e)
	}
	d.raceMu.Unlock()
}

// Err returns nil if no race was detected, else the first detected race in
// message order — deterministic given the set of findings, however the
// schedule interleaved the detections.
func (d *Detector) Err() error {
	d.raceMu.Lock()
	defer d.raceMu.Unlock()
	if len(d.races) == 0 {
		return nil
	}
	first := d.races[0]
	for _, r := range d.races[1:] {
		if r.Error() < first.Error() {
			first = r
		}
	}
	return first
}

// Races returns every recorded race, sorted by message.
func (d *Detector) Races() []*RaceError {
	d.raceMu.Lock()
	out := make([]*RaceError, len(d.races))
	copy(out, d.races)
	d.raceMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Error() < out[j].Error() })
	return out
}

// Stats returns a snapshot of detector activity.
func (d *Detector) Stats() DetectorStats {
	st := DetectorStats{
		Tasks:    d.tasks.Load(),
		Accesses: d.accesses.Load(),
		Queries:  d.queries.Load(),
	}
	for i := range d.shards {
		s := &d.shards[i]
		s.mu.Lock()
		st.Cells += len(s.cells)
		s.mu.Unlock()
	}
	d.raceMu.Lock()
	st.Races = len(d.races)
	d.raceMu.Unlock()
	return st
}
