package determinacy

import (
	"strings"
	"sync"
	"testing"
)

func TestEnterAttributesNested(t *testing.T) {
	dc := NewDisciplineChecker()
	if got := dc.Current(); got != "(unattributed)" {
		t.Fatalf("Current outside any Enter = %q", got)
	}
	exitOuter := dc.Enter("outer@1")
	if got := dc.Current(); got != "outer@1" {
		t.Fatalf("Current = %q, want outer@1", got)
	}
	exitInner := dc.Enter("inner@2")
	if got := dc.Current(); got != "inner@2" {
		t.Fatalf("nested Current = %q, want inner@2", got)
	}
	exitInner()
	if got := dc.Current(); got != "outer@1" {
		t.Fatalf("Current after inner exit = %q, want outer@1", got)
	}
	exitOuter()
	if got := dc.Current(); got != "(unattributed)" {
		t.Fatalf("Current after full exit = %q", got)
	}
}

func TestEnterIsPerGoroutine(t *testing.T) {
	dc := NewDisciplineChecker()
	exit := dc.Enter("main-step")
	defer exit()
	var got string
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		got = dc.Current()
	}()
	wg.Wait()
	if got != "(unattributed)" {
		t.Fatalf("other goroutine saw label %q, want (unattributed)", got)
	}
}

func TestDoublePutNamesBothWriters(t *testing.T) {
	dc := NewDisciplineChecker()
	exitA := dc.Enter("writer-a@0")
	dc.RecordPut("out", 7, 2, "10")
	exitA()
	exitB := dc.Enter("writer-b@0")
	e := dc.DoublePut("out", 7, "11")
	exitB()
	if e.FirstPutBy != "writer-a@0" || e.SecondPutBy != "writer-b@0" {
		t.Fatalf("writers = %q, %q", e.FirstPutBy, e.SecondPutBy)
	}
	if !e.Differs {
		t.Fatal("Differs = false for conflicting values")
	}
	msg := e.Error()
	for _, want := range []string{"write-once violation", "out[7]", "writer-a@0", "writer-b@0", "10", "11"} {
		if !strings.Contains(msg, want) {
			t.Errorf("message %q missing %q", msg, want)
		}
	}
	if err := dc.Err(); err == nil {
		t.Fatal("Err() nil after a recorded violation")
	}
}

func TestDoublePutEqualValues(t *testing.T) {
	dc := NewDisciplineChecker()
	dc.RecordPut("out", 1, -1, "5")
	e := dc.DoublePut("out", 1, "5")
	if e.Differs {
		t.Fatal("Differs = true for identical values")
	}
	if !strings.Contains(e.Error(), "equal values") {
		t.Fatalf("message %q should say equal values", e.Error())
	}
}

func TestOverdrawNamesConsumers(t *testing.T) {
	dc := NewDisciplineChecker()
	dc.RecordPut("items", "k", 2, "v")
	for _, step := range []string{"reader-b@1", "reader-a@0"} {
		exit := dc.Enter(step)
		dc.RecordGet("items", "k")
		dc.RecordRelease("items", "k")
		exit()
	}
	exit := dc.Enter("greedy@9")
	e := dc.Overdraw("items", "k", "get")
	exit()
	if e.By != "greedy@9" || e.Declared != 2 {
		t.Fatalf("By = %q Declared = %d, want greedy@9 / 2", e.By, e.Declared)
	}
	// Consumers are sorted for deterministic reports.
	if len(e.Consumers) != 2 || e.Consumers[0] != "reader-a@0" || e.Consumers[1] != "reader-b@1" {
		t.Fatalf("Consumers = %v", e.Consumers)
	}
	for _, want := range []string{"overdraw", "items[k]", "declared 2", "greedy@9", "over-get"} {
		if !strings.Contains(e.Error(), want) {
			t.Errorf("message %q missing %q", e.Error(), want)
		}
	}
}

func TestViolationsSortedAndErrMinimum(t *testing.T) {
	dc := NewDisciplineChecker()
	dc.RecordPut("z", 1, -1, "1")
	dc.DoublePut("z", 1, "2")
	dc.RecordPut("a", 1, -1, "1")
	dc.DoublePut("a", 1, "2")
	v := dc.Violations()
	if len(v) != 2 {
		t.Fatalf("got %d violations, want 2", len(v))
	}
	if v[0].Error() > v[1].Error() {
		t.Fatal("Violations not sorted by message")
	}
	if dc.Err().Error() != v[0].Error() {
		t.Fatal("Err() is not the message-order minimum")
	}
}

func TestFingerprintAndDiff(t *testing.T) {
	a := NewDisciplineChecker()
	a.RecordPut("out", 1, 1, "10")
	a.RecordPut("out", 2, 1, "20")
	b := NewDisciplineChecker()
	b.RecordPut("out", 1, 1, "10")
	b.RecordPut("out", 2, 1, "21")
	b.RecordPut("out", 3, 1, "30")

	if diff := DiffFingerprints(a.Fingerprint(), a.Fingerprint()); len(diff) != 0 {
		t.Fatalf("self-diff = %v, want empty", diff)
	}
	diff := DiffFingerprints(a.Fingerprint(), b.Fingerprint())
	if len(diff) != 2 {
		t.Fatalf("diff = %v, want value mismatch on out[2] and missing out[3]", diff)
	}
	if !strings.Contains(diff[0], "out[2]") || !strings.Contains(diff[0], "20 vs 21") {
		t.Errorf("diff[0] = %q", diff[0])
	}
	if !strings.Contains(diff[1], "out[3]") || !strings.Contains(diff[1], "second run") {
		t.Errorf("diff[1] = %q", diff[1])
	}
}

func TestDisciplineStats(t *testing.T) {
	dc := NewDisciplineChecker()
	dc.RecordPut("c", 1, 1, "x")
	dc.RecordGet("c", 1)
	dc.RecordRelease("c", 1)
	dc.Overdraw("c", 1, "release")
	st := dc.Stats()
	want := DisciplineStats{Puts: 1, Gets: 1, Releases: 1, Items: 1, Violations: 1}
	if st != want {
		t.Fatalf("Stats() = %+v, want %+v", st, want)
	}
}
