package determinacy

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// DisciplineChecker validates the CnC nested-dataflow discipline on an item
// store: items are single-assignment (a double put with differing values is
// a determinism bug, not just an API misuse), declared get-counts are
// exact (an overdraw is attributed to the step that over-read, alongside
// the steps that legitimately consumed the budget), and the final item
// contents must be schedule-independent (Fingerprint / DiffFingerprints
// back the post-run determinism audit).
//
// The checker is passive and graph-agnostic: the cnc runtime reports
// events into it when installed via Graph.WithDisciplineCheck. Step
// attribution uses a per-goroutine label stack maintained by Enter — the
// runtime brackets every step body (and the environment) with Enter, so
// puts, gets and releases are charged to the step instance that issued
// them even across inline nested runs.
type DisciplineChecker struct {
	mu     sync.Mutex
	labels map[uint64][]string // goroutine id -> label stack
	items  map[itemRef]*itemLedger
	faults []error

	puts     atomic.Uint64
	gets     atomic.Uint64
	releases atomic.Uint64
}

type itemRef struct {
	coll string
	key  any
}

type itemLedger struct {
	putBy    string
	value    string
	declared int // declared get-count; -1 when the collection has none
	consumers []string
}

// DisciplineStats is a snapshot of checker activity.
type DisciplineStats struct {
	Puts       uint64
	Gets       uint64
	Releases   uint64
	Items      int
	Violations int
}

// DoublePutError reports a write-once violation: the same item was put
// twice. Differs distinguishes a determinism-breaking conflicting put from
// a benign (but still illegal) duplicate of the same value.
type DoublePutError struct {
	Collection  string
	Key         string
	FirstPutBy  string
	SecondPutBy string
	FirstValue  string
	SecondValue string
	Differs     bool
}

func (e *DoublePutError) Error() string {
	vals := fmt.Sprintf("equal values (%s)", e.FirstValue)
	if e.Differs {
		vals = fmt.Sprintf("differing values (%s vs %s)", e.FirstValue, e.SecondValue)
	}
	return fmt.Sprintf("determinacy: write-once violation on %s[%s]: put by %s and again by %s with %s",
		e.Collection, e.Key, e.FirstPutBy, e.SecondPutBy, vals)
}

// OverdrawError reports a get-count overdraw: By accessed the item after
// the declared budget was exhausted by Consumers.
type OverdrawError struct {
	Collection string
	Key        string
	Declared   int
	By         string
	Op         string // "get" or "release"
	Consumers  []string
}

func (e *OverdrawError) Error() string {
	return fmt.Sprintf("determinacy: get-count overdraw on %s[%s]: declared %d, consumed by [%s], then %s over-%s",
		e.Collection, e.Key, e.Declared, strings.Join(e.Consumers, " "), e.By, e.Op)
}

// NewDisciplineChecker returns an empty checker.
func NewDisciplineChecker() *DisciplineChecker {
	return &DisciplineChecker{
		labels: make(map[uint64][]string),
		items:  make(map[itemRef]*itemLedger),
	}
}

// goid parses the current goroutine's id from its stack header. Only the
// checking path pays for it; the runtime has no portable cheaper handle.
func goid() uint64 {
	var b [64]byte
	n := runtime.Stack(b[:], false)
	const prefix = len("goroutine ")
	var id uint64
	for _, c := range b[prefix:n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}

// Enter pushes a step label for the current goroutine and returns the
// matching pop. The runtime brackets each step body with it; the label
// stack makes inline nested runs attribute correctly.
func (dc *DisciplineChecker) Enter(label string) func() {
	id := goid()
	dc.mu.Lock()
	dc.labels[id] = append(dc.labels[id], label)
	dc.mu.Unlock()
	return func() {
		dc.mu.Lock()
		st := dc.labels[id]
		if n := len(st); n > 0 {
			if n == 1 {
				delete(dc.labels, id)
			} else {
				dc.labels[id] = st[:n-1]
			}
		}
		dc.mu.Unlock()
	}
}

// current returns the innermost label of the calling goroutine. Callers
// must hold dc.mu.
func (dc *DisciplineChecker) current(id uint64) string {
	if st := dc.labels[id]; len(st) > 0 {
		return st[len(st)-1]
	}
	return "(unattributed)"
}

// Current returns the step label attributed to the calling goroutine.
func (dc *DisciplineChecker) Current() string {
	id := goid()
	dc.mu.Lock()
	defer dc.mu.Unlock()
	return dc.current(id)
}

// RecordPut records a successful item put by the current step. declared is
// the item's get-count, or -1 when the collection has none.
func (dc *DisciplineChecker) RecordPut(coll string, key any, declared int, value string) {
	dc.puts.Add(1)
	id := goid()
	dc.mu.Lock()
	defer dc.mu.Unlock()
	ref := itemRef{coll, key}
	if dc.items[ref] == nil {
		dc.items[ref] = &itemLedger{putBy: dc.current(id), value: value, declared: declared}
	}
}

// DoublePut records a write-once violation by the current step and returns
// the error naming both putters. The runtime calls it from the put path
// that its own single-assignment check rejected.
func (dc *DisciplineChecker) DoublePut(coll string, key any, value string) *DoublePutError {
	id := goid()
	dc.mu.Lock()
	defer dc.mu.Unlock()
	e := &DoublePutError{
		Collection:  coll,
		Key:         fmt.Sprint(key),
		FirstPutBy:  "(unknown)",
		SecondPutBy: dc.current(id),
		SecondValue: value,
	}
	if led := dc.items[itemRef{coll, key}]; led != nil {
		e.FirstPutBy, e.FirstValue = led.putBy, led.value
		e.Differs = led.value != value
	} else {
		e.FirstValue = "(unrecorded)"
		e.Differs = true
	}
	dc.faults = append(dc.faults, e)
	return e
}

// RecordGet records an item read by the current step.
func (dc *DisciplineChecker) RecordGet(coll string, key any) {
	dc.gets.Add(1)
}

// RecordRelease records one get-count decrement charged to the current
// step, building the consumer ledger that overdraw reports draw on.
func (dc *DisciplineChecker) RecordRelease(coll string, key any) {
	dc.releases.Add(1)
	id := goid()
	dc.mu.Lock()
	defer dc.mu.Unlock()
	if led := dc.items[itemRef{coll, key}]; led != nil {
		led.consumers = append(led.consumers, dc.current(id))
	}
}

// Overdraw records a get-count overdraw by the current step (op is "get"
// for a read of a freed item, "release" for a decrement past zero) and
// returns the error attributing it alongside the recorded consumers.
func (dc *DisciplineChecker) Overdraw(coll string, key any, op string) *OverdrawError {
	id := goid()
	dc.mu.Lock()
	defer dc.mu.Unlock()
	e := &OverdrawError{
		Collection: coll,
		Key:        fmt.Sprint(key),
		Declared:   -1,
		By:         dc.current(id),
		Op:         op,
	}
	if led := dc.items[itemRef{coll, key}]; led != nil {
		e.Declared = led.declared
		e.Consumers = append([]string(nil), led.consumers...)
		sort.Strings(e.Consumers)
	}
	dc.faults = append(dc.faults, e)
	return e
}

// Violations returns every recorded discipline violation, sorted by
// message so the report is deterministic.
func (dc *DisciplineChecker) Violations() []error {
	dc.mu.Lock()
	out := make([]error, len(dc.faults))
	copy(out, dc.faults)
	dc.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Error() < out[j].Error() })
	return out
}

// Err returns nil if the run obeyed the discipline, else the first
// violation in message order.
func (dc *DisciplineChecker) Err() error {
	if v := dc.Violations(); len(v) > 0 {
		return v[0]
	}
	return nil
}

// Fingerprint returns the item-store contents recorded across the run:
// every item ever put, keyed "collection[key]", valued by its rendered
// value. Unlike the live store it is independent of get-count GC, so two
// runs of a determinate graph fingerprint identically under any schedule.
func (dc *DisciplineChecker) Fingerprint() map[string]string {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	out := make(map[string]string, len(dc.items))
	for ref, led := range dc.items {
		out[fmt.Sprintf("%s[%v]", ref.coll, ref.key)] = led.value
	}
	return out
}

// DiffFingerprints compares two item-store fingerprints and returns a
// sorted description of every difference; empty means identical contents.
func DiffFingerprints(a, b map[string]string) []string {
	var out []string
	for k, va := range a {
		if vb, ok := b[k]; !ok {
			out = append(out, fmt.Sprintf("%s: present only in first run (%s)", k, va))
		} else if va != vb {
			out = append(out, fmt.Sprintf("%s: %s vs %s", k, va, vb))
		}
	}
	for k, vb := range b {
		if _, ok := a[k]; !ok {
			out = append(out, fmt.Sprintf("%s: present only in second run (%s)", k, vb))
		}
	}
	sort.Strings(out)
	return out
}

// Stats returns a snapshot of checker activity.
func (dc *DisciplineChecker) Stats() DisciplineStats {
	dc.mu.Lock()
	items, faults := len(dc.items), len(dc.faults)
	dc.mu.Unlock()
	return DisciplineStats{
		Puts:       dc.puts.Load(),
		Gets:       dc.gets.Load(),
		Releases:   dc.releases.Load(),
		Items:      items,
		Violations: faults,
	}
}
