package par

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dpflow/internal/core"
	"dpflow/internal/forkjoin"
	"dpflow/internal/matrix"
)

// The classic textbook instance: chains 30×35, 35×15, 15×5, 5×10, 10×20,
// 20×25 have optimal cost 15125 (CLRS §15.2).
func TestSerialKnownInstance(t *testing.T) {
	p := &Problem{Dims: []int{30, 35, 15, 5, 10, 20, 25}}
	m := p.NewTable()
	if got := p.Serial(m); got != 15125 {
		t.Fatalf("optimal cost = %v, want 15125", got)
	}
	// Spot-check an interior cell from the textbook table: m[2][5] = 7125.
	if got := m.At(2, 5); got != 7125 {
		t.Fatalf("m[2][5] = %v, want 7125", got)
	}
}

func TestTwoMatrices(t *testing.T) {
	p := &Problem{Dims: []int{4, 7, 3}}
	m := p.NewTable()
	if got := p.Serial(m); got != 4*7*3 {
		t.Fatalf("cost = %v, want %v", got, 4*7*3)
	}
}

func TestAllVariantsAgree(t *testing.T) {
	pool := forkjoin.NewPool(forkjoin.Config{Workers: 3})
	defer pool.Close()
	rng := rand.New(rand.NewSource(1))
	p := RandomProblem(64, 30, rng)
	ref := p.NewTable()
	want := p.Serial(ref)

	for _, v := range []core.Variant{core.SerialRDP, core.OMPTasking,
		core.NativeCnC, core.TunerCnC, core.ManualCnC, core.NonBlockingCnC} {
		for _, base := range []int{4, 16, 64} {
			got, err := p.Run(v, base, 3, pool)
			if err != nil {
				t.Fatalf("%v base=%d: %v", v, base, err)
			}
			if got != want {
				t.Fatalf("%v base=%d: cost %v, want %v", v, base, got, want)
			}
		}
	}
}

// The full tables must match, not just the corner cost.
func TestTablesMatchExactly(t *testing.T) {
	pool := forkjoin.NewPool(forkjoin.Config{Workers: 2})
	defer pool.Close()
	rng := rand.New(rand.NewSource(2))
	p := RandomProblem(32, 20, rng)
	ref := p.NewTable()
	p.Serial(ref)

	fj := p.NewTable()
	if _, err := p.ForkJoin(fj, 8, pool); err != nil {
		t.Fatal(err)
	}
	df := p.NewTable()
	if _, _, err := p.RunCnC(df, 8, 3, core.NativeCnC); err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(fj, ref) || !matrix.Equal(df, ref) {
		t.Fatal("parallel tables differ from serial")
	}
}

// Property: for random chains, the optimum never exceeds the left-to-right
// association cost, and all variants agree.
func TestOptimalityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := RandomProblem(16, 12, rng)
		m := p.NewTable()
		opt := p.Serial(m)
		// Left-to-right association.
		ltr, rows := 0.0, p.Dims[0]
		for k := 1; k < p.N(); k++ {
			ltr += float64(rows) * float64(p.Dims[k]) * float64(p.Dims[k+1])
		}
		if opt > ltr {
			return false
		}
		got, _, err := p.RunCnC(p.NewTable(), 4, 2, core.TunerCnC)
		return err == nil && got == opt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestValidation(t *testing.T) {
	bad := &Problem{Dims: []int{3, 4, 5}} // n=2 is fine; test n=3
	if _, err := bad.Run(core.SerialRDP, 2, 1, nil); err != nil {
		t.Fatalf("n=2 rejected: %v", err)
	}
	odd := &Problem{Dims: []int{1, 2, 3, 4}} // n=3, not a power of two
	if _, err := odd.Run(core.SerialRDP, 2, 1, nil); err == nil {
		t.Fatal("non-power-of-two accepted")
	}
	p := &Problem{Dims: []int{1, 2, 3, 4, 5}}
	if _, err := p.Run(core.SerialRDP, 0, 1, nil); err == nil {
		t.Fatal("base 0 accepted")
	}
	if _, err := p.Run(core.OMPTasking, 2, 1, nil); err == nil {
		t.Fatal("OMPTasking without pool accepted")
	}
	if _, err := p.Run(core.Variant(42), 2, 1, nil); err == nil {
		t.Fatal("unknown variant accepted")
	}
}

// The tuned variants declare high-fan-in dependency lists (up to 2·(J−I));
// they must never abort and the task census must be the triangular tile
// count.
func TestHighFanInDeps(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := RandomProblem(64, 15, rng)
	m := p.NewTable()
	_, stats, err := p.RunCnC(m, 8, 4, core.ManualCnC)
	if err != nil {
		t.Fatal(err)
	}
	tiles := 8 // 64/8
	if want := tiles * (tiles + 1) / 2; stats.BaseTasks != want {
		t.Fatalf("BaseTasks = %d, want %d", stats.BaseTasks, want)
	}
	if stats.Aborts != 0 {
		t.Fatalf("manual variant aborted %d times", stats.Aborts)
	}
}
