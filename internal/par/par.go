// Package par implements the parenthesis problem — matrix-chain
// multiplication — as a fourth DP benchmark beyond the paper's three. It
// belongs to the same family of recursive divide-and-conquer DPs
// (Chowdhury & Ramachandran treat it alongside GE and FW), but its
// dependency structure is qualitatively different: cell (i, j) reads every
// (i, k) and (k+1, j) with i ≤ k < j, so a tile depends on the whole band
// of tiles between it and the diagonal, not just a constant-size
// neighbourhood. That makes it a good stress test for the CnC tuners
// (dependency lists grow linearly with the tile's off-diagonal distance)
// and a clean illustration of a fork-join schedule whose barrier per
// anti-diagonal is the natural — and only reasonable — join placement.
//
//	m[i][j] = min over i <= k < j of m[i][k] + m[k+1][j] + p[i-1]·p[k]·p[j]
//
// with 1-based matrix indices and dims p[0..n]. All weights are small
// integers, so float64 min-plus arithmetic is exact and every
// implementation agrees bit-for-bit.
package par

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"dpflow/internal/cnc"
	"dpflow/internal/core"
	"dpflow/internal/forkjoin"
	"dpflow/internal/gep"
	"dpflow/internal/matrix"
)

// Problem is one matrix-chain instance: Dims has length N+1; matrix i has
// shape Dims[i-1] × Dims[i].
type Problem struct {
	Dims []int
}

// N returns the chain length (number of matrices).
func (p *Problem) N() int { return len(p.Dims) - 1 }

// RandomProblem generates a chain of n matrices with dimensions in
// [1, maxDim].
func RandomProblem(n, maxDim int, rng *rand.Rand) *Problem {
	dims := make([]int, n+1)
	for i := range dims {
		dims[i] = 1 + rng.Intn(maxDim)
	}
	return &Problem{Dims: dims}
}

// NewTable allocates the (N+1)×(N+1) DP table (row/col 0 unused; the
// diagonal is zero).
func (p *Problem) NewTable() *matrix.Dense { return matrix.New(p.N()+1, p.N()+1) }

func (p *Problem) validate(base int) error {
	n := p.N()
	if n < 1 {
		return fmt.Errorf("par: need at least one matrix, got dims of length %d", len(p.Dims))
	}
	if !matrix.IsPow2(n) {
		return fmt.Errorf("par: chain length %d must be a power of two", n)
	}
	if base < 1 {
		return fmt.Errorf("par: base %d must be >= 1", base)
	}
	return nil
}

// cell computes one cell (i, j), j > i, assuming every (i, k) and (k+1, j)
// with smaller gap is final.
func (p *Problem) cell(m *matrix.Dense, i, j int) {
	best := math.Inf(1)
	row := m.Row(i)
	pij := float64(p.Dims[i-1]) * float64(p.Dims[j])
	for k := i; k < j; k++ {
		if c := row[k] + m.At(k+1, j) + pij*float64(p.Dims[k]); c < best {
			best = c
		}
	}
	m.Set(i, j, best)
}

// Serial fills the table with the classic gap-order loop and returns the
// optimal multiplication cost m[1][N].
func (p *Problem) Serial(m *matrix.Dense) float64 {
	n := p.N()
	for gap := 1; gap < n; gap++ {
		for i := 1; i+gap <= n; i++ {
			p.cell(m, i, i+gap)
		}
	}
	return m.At(1, n)
}

// TileKernel computes every cell of tile (I, J) (0-based tile coordinates
// over the 1-based cell grid, tile side bs) in ascending gap order. Cells
// outside the upper triangle are skipped. All tiles strictly between (I, J)
// and the diagonal must be final.
func (p *Problem) TileKernel(m *matrix.Dense, tI, tJ, bs int) {
	n := p.N()
	iLo, iHi := 1+tI*bs, 1+(tI+1)*bs-1
	jLo, jHi := 1+tJ*bs, 1+(tJ+1)*bs-1
	if iHi > n {
		iHi = n
	}
	if jHi > n {
		jHi = n
	}
	// Ascending gap order within the tile keeps intra-tile dependencies
	// satisfied; the maximum gap inside the tile is jHi - iLo.
	for gap := 1; gap <= jHi-iLo; gap++ {
		for i := iLo; i <= iHi; i++ {
			j := i + gap
			if j < jLo || j > jHi {
				continue
			}
			p.cell(m, i, j)
		}
	}
}

// RDPSerial computes the table tile by tile in gap order — the serial
// reference for the parallel schedules. base chooses the tile side
// (rounded to the recursion's effective size like the other benchmarks).
func (p *Problem) RDPSerial(m *matrix.Dense, base int) (float64, error) {
	if err := p.validate(base); err != nil {
		return 0, err
	}
	bs := gep.BaseSize(p.N(), base)
	tiles := p.N() / bs
	for gap := 0; gap < tiles; gap++ {
		for i := 0; i+gap < tiles; i++ {
			p.TileKernel(m, i, i+gap, bs)
		}
	}
	return m.At(1, p.N()), nil
}

// ForkJoin runs the fork-join schedule: tiles of each anti-diagonal in
// parallel, a taskwait barrier between diagonals — the natural join
// placement for this DP (any coarser nesting serialises more).
func (p *Problem) ForkJoin(m *matrix.Dense, base int, pool *forkjoin.Pool) (float64, error) {
	return p.ForkJoinContext(context.Background(), m, base, pool)
}

// ForkJoinContext is ForkJoin with cooperative cancellation: a cancelled
// ctx abandons the remaining anti-diagonals and returns ctx.Err().
func (p *Problem) ForkJoinContext(ctx context.Context, m *matrix.Dense, base int, pool *forkjoin.Pool) (float64, error) {
	if err := p.validate(base); err != nil {
		return 0, err
	}
	bs := gep.BaseSize(p.N(), base)
	tiles := p.N() / bs
	if err := pool.RunContext(ctx, func(c *forkjoin.Ctx) {
		var g forkjoin.Group
		for gap := 0; gap < tiles; gap++ {
			for i := 0; i+gap < tiles; i++ {
				ti, tj := i, i+gap
				c.Spawn(&g, func(*forkjoin.Ctx) { p.TileKernel(m, ti, tj, bs) })
			}
			c.Wait(&g)
		}
	}); err != nil {
		return 0, err
	}
	return m.At(1, p.N()), nil
}

// Tile identifies one tile of the upper-triangular tile grid.
type Tile struct{ I, J int }

// RunCnC runs the data-flow schedule: every tile fires as soon as the
// tiles it reads — all of (I, K) and (K, J) with I ≤ K ≤ J, gap smaller —
// are done. Unlike SW's constant-degree wavefront, the dependency list
// grows with the tile's distance from the diagonal, which exercises the
// tuners' countdown machinery at high fan-in.
func (p *Problem) RunCnC(m *matrix.Dense, base, workers int, variant core.Variant) (float64, gep.CnCStats, error) {
	return p.RunCnCContext(context.Background(), m, base, workers, variant, nil)
}

// RunCnCContext is RunCnC with cooperative cancellation; tune, when
// non-nil, receives the built graph before the run starts (the chaos
// harness's injection hook).
func (p *Problem) RunCnCContext(ctx context.Context, m *matrix.Dense, base, workers int, variant core.Variant, tune func(*cnc.Graph)) (float64, gep.CnCStats, error) {
	if err := p.validate(base); err != nil {
		return 0, gep.CnCStats{}, err
	}
	bs := gep.BaseSize(p.N(), base)
	tiles := p.N() / bs

	g := cnc.NewGraph("par-"+variant.String(), workers)
	out := cnc.NewItemCollection[Tile, bool](g, "tile_outputs")
	tags := cnc.NewTagCollection[Tile](g, "tile_tags", false)

	await := func(k Tile) bool {
		if variant == core.NonBlockingCnC {
			_, ok := out.TryGet(k)
			return ok
		}
		out.Get(k)
		return true
	}
	step := cnc.NewStepCollection(g, "parTile", func(t Tile) error {
		for k := t.I; k <= t.J; k++ {
			if k < t.J && !await(Tile{t.I, k}) || k > t.I && !await(Tile{k, t.J}) {
				tags.Put(t)
				return nil
			}
		}
		p.TileKernel(m, t.I, t.J, bs)
		out.Put(Tile{t.I, t.J}, true)
		return nil
	})
	step.Consumes(out).Produces(out)

	deps := func(t Tile) []cnc.Dep {
		var ds []cnc.Dep
		for k := t.I; k <= t.J; k++ {
			if k < t.J {
				ds = append(ds, out.Key(Tile{t.I, k}))
			}
			if k > t.I {
				ds = append(ds, out.Key(Tile{k, t.J}))
			}
		}
		return ds
	}
	switch variant {
	case core.TunerCnC:
		step.WithDeps(cnc.TunedPrescheduled, deps)
	case core.ManualCnC:
		step.WithDeps(cnc.TunedTriggered, deps)
	}
	tags.Prescribe(step)
	if tune != nil {
		tune(g)
	}

	err := g.RunContext(ctx, func() {
		// One burst per anti-diagonal: each diagonal's tags reach the queue
		// in a single batched push and wakeup pass.
		for gap := 0; gap < tiles; gap++ {
			bu := g.NewBurst()
			for i := 0; i+gap < tiles; i++ {
				tags.PutInto(Tile{i, i + gap}, bu)
			}
			bu.Flush()
		}
	})
	stats := gep.CnCStats{Stats: g.Stats(), BaseTasks: out.Len()}
	if err != nil {
		return 0, stats, err
	}
	return m.At(1, p.N()), stats, nil
}

// Run dispatches any variant, allocating the table internally.
func (p *Problem) Run(v core.Variant, base, workers int, pool *forkjoin.Pool) (float64, error) {
	return p.RunContext(context.Background(), v, base, workers, pool)
}

// RunContext is Run with cooperative cancellation for the parallel
// variants; the serial variants ignore ctx.
func (p *Problem) RunContext(ctx context.Context, v core.Variant, base, workers int, pool *forkjoin.Pool) (float64, error) {
	m := p.NewTable()
	switch v {
	case core.SerialLoop:
		return p.Serial(m), nil
	case core.SerialRDP:
		return p.RDPSerial(m, base)
	case core.OMPTasking:
		if pool == nil {
			return 0, fmt.Errorf("par: OMPTasking requires a fork-join pool")
		}
		return p.ForkJoinContext(ctx, m, base, pool)
	case core.NativeCnC, core.TunerCnC, core.ManualCnC, core.NonBlockingCnC:
		cost, _, err := p.RunCnCContext(ctx, m, base, workers, v, nil)
		return cost, err
	default:
		return 0, fmt.Errorf("par: unsupported variant %v", v)
	}
}
