package chaos

import (
	"context"
	"fmt"

	"dpflow/internal/cnc"
	"dpflow/internal/determinacy"
)

// Schedule is one execution schedule for a determinism audit: the worker
// count the run builds its graphs with and the steal policy installed on
// each of them. Varying both between the two audit runs perturbs the order
// steps execute in about as much as the runtime allows without changing the
// program.
type Schedule struct {
	Workers int
	Steal   cnc.StealPolicy
}

// AuditRun is a schedule-parameterised workload for DeterminismAudit. It
// must build its graphs with the given worker count, call tune on every
// graph before running it, and keep no state across invocations — the audit
// calls it twice, once per schedule.
type AuditRun func(ctx context.Context, workers int, tune func(*cnc.Graph)) error

// DeterminismAudit replays run under two schedules with discipline checking
// installed and diffs the item-store fingerprints of the two executions. A
// determinate CnC program must put identical item contents under any
// schedule, so any returned difference is a determinism bug; a discipline
// violation or run failure during either replay surfaces as err instead.
// The fingerprint covers every item the last graph of each run put,
// independent of get-count GC (determinacy.DisciplineChecker.Fingerprint).
func DeterminismAudit(ctx context.Context, run AuditRun, a, b Schedule) ([]string, error) {
	fa, err := auditOnce(ctx, run, a)
	if err != nil {
		return nil, fmt.Errorf("chaos: determinism audit baseline schedule (%d workers): %w", a.Workers, err)
	}
	fb, err := auditOnce(ctx, run, b)
	if err != nil {
		return nil, fmt.Errorf("chaos: determinism audit permuted schedule (%d workers): %w", b.Workers, err)
	}
	return determinacy.DiffFingerprints(fa, fb), nil
}

// auditOnce executes run under one schedule and returns the item-store
// fingerprint of its last graph. A fresh checker per graph keeps multi-graph
// runs (tuner probes before the main graph) from polluting the fingerprint
// with probe-sized items.
func auditOnce(ctx context.Context, run AuditRun, s Schedule) (map[string]string, error) {
	var last *determinacy.DisciplineChecker
	err := run(ctx, s.Workers, func(g *cnc.Graph) {
		dc := determinacy.NewDisciplineChecker()
		g.SetStealPolicy(s.Steal)
		g.WithDisciplineCheck(dc)
		last = dc
	})
	if err != nil {
		return nil, err
	}
	if last == nil {
		return nil, fmt.Errorf("run built no graphs: tune never called")
	}
	if verr := last.Err(); verr != nil {
		return nil, verr
	}
	return last.Fingerprint(), nil
}
