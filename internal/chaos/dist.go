package chaos

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// This file extends the fault vocabulary to the process level. The in-graph
// faults (StepError, DropTag, ...) perturb one runtime through cnc.Hooks;
// the distributed faults below perturb the *transport* between a
// coordinator and its shard workers through the TransportControl seam the
// distributed runtime exposes. The layering mirrors chaos/cnc: this package
// defines the control interface, internal/dist implements it, and no import
// cycle exists because dist imports chaos (never the reverse).

// Dir is the direction of a frame crossing the coordinator/worker boundary,
// from the coordinator's point of view.
type Dir int

const (
	// DirSend is a frame leaving the coordinator for a worker.
	DirSend Dir = iota
	// DirRecv is a frame arriving at the coordinator from a worker.
	DirRecv
)

func (d Dir) String() string {
	if d == DirSend {
		return "send"
	}
	return "recv"
}

// Verdict is a frame hook's decision about one frame. The zero value lets
// the frame pass untouched.
type Verdict struct {
	// Drop discards the frame. A dropped request never reaches the worker;
	// a dropped response strands the coordinator's wait — either way the
	// per-request deadline must convert the loss into a retry.
	Drop bool
	// Delay stalls the frame's delivery, modelling a congested or
	// scheduler-starved transport. Delays shorter than the request deadline
	// must be absorbed invisibly; longer ones behave like Drop.
	Delay time.Duration
	// Reset tears the connection down mid-exchange instead of delivering
	// the frame — the half-written-frame failure mode. The coordinator must
	// reconnect (or respawn) and retry.
	Reset bool
}

// TransportControl is the seam a distributed runtime exposes for
// process-level fault injection. The coordinator in internal/dist
// implements it; a stub suffices for tests of the faults themselves.
//
// Implementations must tolerate hooks being installed and cleared (set to
// nil) at any moment, including mid-exchange.
type TransportControl interface {
	// Shards is the number of shard workers (fault targets).
	Shards() int
	// SetFrameHook installs fn on every frame crossing the boundary in
	// either direction; nil uninstalls. size is the encoded frame length in
	// bytes, msgType its wire discriminator (e.g. "put", "get", "ack").
	SetFrameHook(fn func(dir Dir, shard int, msgType string, size int) Verdict)
	// KillWorker forcefully terminates the given shard's worker process
	// (SIGKILL semantics: no cleanup, no goodbye frame). The runtime's
	// supervisor is expected to notice via a failed exchange or heartbeat
	// and recover.
	KillWorker(shard int) error
}

// DistFault is a process-level injectable failure mode, the transport-tier
// analogue of Fault. ArmDist installs the fault on a live transport and
// returns the probe recording its injections.
//
// All four distributed faults are recoverable by construction: the
// coordinator's retry/respawn/replay ladder must absorb every one of them
// or degrade gracefully — a run that verifies is the only acceptable
// outcome, which is exactly what the chaos sweep asserts.
type DistFault interface {
	// Name identifies the fault in errors and logs.
	Name() string
	// ArmDist installs the fault on tc, drawing all randomness from rng.
	ArmDist(tc TransportControl, rng *rand.Rand) *Probe
}

// ProcessKill SIGKILLs a randomly chosen shard worker after letting a few
// frames through, forcing the supervisor down the respawn-and-replay path.
// Each injection kills one worker; the budget bounds total kills.
type ProcessKill struct {
	Prob  float64 // per-frame kill probability once armed (default 0.1)
	Times int     // total kill budget (default 1)
	// After is the number of frames to let pass before kills may start
	// (default 4), so the store holds state worth replaying.
	After int
}

// Name implements DistFault.
func (f *ProcessKill) Name() string { return "process-kill" }

// ArmDist implements DistFault.
func (f *ProcessKill) ArmDist(tc TransportControl, rng *rand.Rand) *Probe {
	p := &Probe{}
	a := newArmer(rng, f.Prob, f.Times)
	after := f.After
	if after <= 0 {
		after = 4
	}
	var seen int
	var mu sync.Mutex
	tc.SetFrameHook(func(dir Dir, shard int, msgType string, size int) Verdict {
		mu.Lock()
		seen++
		warm := seen > after
		mu.Unlock()
		if !warm || !a.fire() {
			return Verdict{}
		}
		// Kill the frame's own shard: the exchange in flight is the one
		// that observes the death, the worst case for the supervisor.
		p.record(fmt.Sprintf("kill shard %d (%s %s)", shard, dir, msgType))
		// The frame itself still passes; the kill races it, which is the
		// point — either order must recover.
		go tc.KillWorker(shard)
		return Verdict{}
	})
	return p
}

// MessageDrop silently discards frames, in both directions: lost requests
// (worker never sees the put/get) and lost responses (coordinator waits for
// an ack that never comes). The per-request deadline must turn each loss
// into a retry.
type MessageDrop struct {
	Prob  float64
	Times int
	// Only restricts the fault to frames of one wire type (the msgType
	// string the frame hook receives, e.g. "putbatch"); empty matches all.
	// Targeting lets the sweep aim at specific protocol machinery — losing
	// a whole batch frame must cost one retry, not one item.
	Only string
}

// Name implements DistFault.
func (f *MessageDrop) Name() string { return "message-drop" }

// ArmDist implements DistFault.
func (f *MessageDrop) ArmDist(tc TransportControl, rng *rand.Rand) *Probe {
	p := &Probe{}
	a := newArmer(rng, f.Prob, f.Times)
	tc.SetFrameHook(func(dir Dir, shard int, msgType string, size int) Verdict {
		if (f.Only != "" && msgType != f.Only) || !a.fire() {
			return Verdict{}
		}
		p.record(fmt.Sprintf("drop %s %s shard %d (%dB)", dir, msgType, shard, size))
		return Verdict{Drop: true}
	})
	return p
}

// MessageDelay stalls frame delivery — transport congestion. Sub-deadline
// delays must be invisible (absorbed by the wait); the sweep also verifies
// the watchdog attributes the quiet period to remote waiting rather than
// declaring a livelock.
type MessageDelay struct {
	Prob  float64
	Delay time.Duration // default 5ms
	Times int
	// Only restricts the fault to one wire type; empty matches all.
	Only string
}

// Name implements DistFault.
func (f *MessageDelay) Name() string { return "message-delay" }

// ArmDist implements DistFault.
func (f *MessageDelay) ArmDist(tc TransportControl, rng *rand.Rand) *Probe {
	p := &Probe{}
	a := newArmer(rng, f.Prob, f.Times)
	delay := f.Delay
	if delay <= 0 {
		delay = 5 * time.Millisecond
	}
	tc.SetFrameHook(func(dir Dir, shard int, msgType string, size int) Verdict {
		if (f.Only != "" && msgType != f.Only) || !a.fire() {
			return Verdict{}
		}
		p.record(fmt.Sprintf("delay %s %s shard %d %v", dir, msgType, shard, delay))
		return Verdict{Delay: delay}
	})
	return p
}

// ConnReset tears a connection down mid-exchange instead of delivering the
// frame — the half-written-frame / peer-crash failure mode, distinct from
// ProcessKill in that the worker process (and its store) survives, so
// reconnecting without replay suffices.
type ConnReset struct {
	Prob  float64
	Times int
	// Only restricts the fault to one wire type; empty matches all.
	Only string
}

// Name implements DistFault.
func (f *ConnReset) Name() string { return "conn-reset" }

// ArmDist implements DistFault.
func (f *ConnReset) ArmDist(tc TransportControl, rng *rand.Rand) *Probe {
	p := &Probe{}
	a := newArmer(rng, f.Prob, f.Times)
	tc.SetFrameHook(func(dir Dir, shard int, msgType string, size int) Verdict {
		if (f.Only != "" && msgType != f.Only) || !a.fire() {
			return Verdict{}
		}
		p.record(fmt.Sprintf("reset %s %s shard %d", dir, msgType, shard))
		return Verdict{Reset: true}
	})
	return p
}

// DistFaults returns one instance of every process-level fault with the
// given per-frame probability and total budget — the battery the
// distributed chaos sweep crosses with benchmarks and seeds.
func DistFaults(prob float64, times int) []DistFault {
	return []DistFault{
		&ProcessKill{Prob: prob, Times: times},
		&MessageDrop{Prob: prob, Times: times},
		&MessageDelay{Prob: prob, Times: times},
		&ConnReset{Prob: prob, Times: times},
	}
}
