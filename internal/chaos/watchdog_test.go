package chaos_test

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dpflow/internal/chaos"
	"dpflow/internal/cnc"
)

// A frozen progress counter must trip the watchdog within the window (plus
// scheduling slack) and hand OnStall the blocked dump.
func TestWatchdogDetectsStall(t *testing.T) {
	fired := make(chan []string, 1)
	wd := chaos.NewWatchdog(chaos.WatchdogConfig{
		Progress: func() uint64 { return 7 },
		Blocked:  func() []string { return []string{"s@1 <- it[1]"} },
		Window:   50 * time.Millisecond,
		OnStall:  func(blocked []string) { fired <- blocked },
	})
	wd.Start()
	defer wd.Stop()
	select {
	case blocked := <-fired:
		if len(blocked) != 1 || blocked[0] != "s@1 <- it[1]" {
			t.Fatalf("blocked dump = %v", blocked)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("watchdog did not fire on a frozen counter")
	}
	if stalled, blocked := wd.Stalled(); !stalled || len(blocked) != 1 {
		t.Fatalf("Stalled() = %v, %v", stalled, blocked)
	}
}

// A counter that keeps moving must never trip the watchdog.
func TestWatchdogIgnoresProgress(t *testing.T) {
	var n atomic.Uint64
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
				n.Add(1)
			}
		}
	}()
	defer close(stop)
	wd := chaos.NewWatchdog(chaos.WatchdogConfig{
		Progress: n.Load,
		Window:   60 * time.Millisecond,
		OnStall:  func([]string) { t.Error("stall declared despite progress") },
	})
	wd.Start()
	time.Sleep(300 * time.Millisecond)
	wd.Stop()
	if stalled, _ := wd.Stalled(); stalled {
		t.Fatal("watchdog stalled on a moving counter")
	}
}

// Stop must be safe before Start, after Start, and twice.
func TestWatchdogStopIdempotent(t *testing.T) {
	wd := chaos.NewWatchdog(chaos.WatchdogConfig{Progress: func() uint64 { return 0 }})
	wd.Stop()
	wd.Stop()
	wd.Start() // no-op after Stop
	wd2 := chaos.NewWatchdog(chaos.WatchdogConfig{Progress: func() uint64 { return 0 }, Window: time.Hour})
	wd2.Start()
	wd2.Stop()
	wd2.Stop()
}

// The livelock the runtime cannot see: a non-blocking-get style step polls
// for an item that never arrives and re-puts its own tag, so workers stay
// busy and StepsDone keeps growing while no data is ever produced. The
// runtime never quiesces (no deadlock report); the ItemsPut watchdog must
// catch the stall and cancel the run, which then drains and returns
// ctx.Err() — distinguishing livelock from the quiesced-deadlock case the
// runtime reports itself.
func TestWatchdogCatchesRePutLivelock(t *testing.T) {
	g := cnc.NewGraph("livelock", 4)
	items := cnc.NewItemCollection[int, int](g, "it")
	tags := cnc.NewTagCollection[int](g, "tg", false)
	step := cnc.NewStepCollection(g, "s", func(i int) error {
		if i == 0 {
			items.Put(0, 0) // some real progress early on
			return nil
		}
		if _, ok := items.TryGet(99); !ok { // never produced
			tags.Put(i) // non-blocking re-put: livelock, not deadlock
			return nil
		}
		return nil
	})
	tags.Prescribe(step)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	wd := chaos.NewWatchdog(chaos.WatchdogConfig{
		Progress: func() uint64 { return g.Stats().ItemsPut },
		Blocked:  g.Blocked,
		Window:   150 * time.Millisecond,
		OnStall:  func([]string) { cancel() },
	})
	wd.Start()
	defer wd.Stop()

	start := time.Now()
	err := g.RunContext(ctx, func() {
		tags.Put(0)
		tags.Put(1)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled from the watchdog", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("livelock ran %v before the watchdog caught it", d)
	}
	if stalled, _ := wd.Stalled(); !stalled {
		t.Fatal("watchdog did not record the stall")
	}
	if s := g.Stats(); s.StepsDone == 0 {
		t.Fatal("livelock should have kept retiring steps (that is what makes it a livelock)")
	}
}

// A true deadlock, by contrast, quiesces and is reported by the runtime
// itself — the watchdog must not be needed and must not have fired first.
func TestDeadlockStillReportedByRuntime(t *testing.T) {
	g := cnc.NewGraph("deadlock", 2)
	items := cnc.NewItemCollection[int, int](g, "it")
	tags := cnc.NewTagCollection[int](g, "tg", false)
	step := cnc.NewStepCollection(g, "s", func(i int) error {
		items.Get(99) // parks forever: quiesced deadlock
		return nil
	})
	tags.Prescribe(step)
	wd := chaos.NewWatchdog(chaos.WatchdogConfig{
		Progress: func() uint64 { return g.Stats().ItemsPut },
		Window:   10 * time.Second,
	})
	wd.Start()
	defer wd.Stop()
	err := g.Run(func() { tags.Put(1) })
	var dl *cnc.DeadlockError
	if !errors.As(err, &dl) || !strings.Contains(dl.Blocked[0], "it[99]") {
		t.Fatalf("err = %v, want runtime DeadlockError naming it[99]", err)
	}
	if stalled, _ := wd.Stalled(); stalled {
		t.Fatal("watchdog fired for a deadlock the runtime detects itself")
	}
}
