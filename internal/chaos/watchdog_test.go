package chaos_test

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dpflow/internal/chaos"
	"dpflow/internal/cnc"
)

// A frozen progress counter must trip the watchdog within the window (plus
// scheduling slack) and hand OnStall the blocked dump.
func TestWatchdogDetectsStall(t *testing.T) {
	fired := make(chan []string, 1)
	wd := chaos.NewWatchdog(chaos.WatchdogConfig{
		Progress: func() uint64 { return 7 },
		Blocked:  func() []string { return []string{"s@1 <- it[1]"} },
		Window:   50 * time.Millisecond,
		OnStall:  func(blocked []string) { fired <- blocked },
	})
	wd.Start()
	defer wd.Stop()
	select {
	case blocked := <-fired:
		if len(blocked) != 1 || blocked[0] != "s@1 <- it[1]" {
			t.Fatalf("blocked dump = %v", blocked)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("watchdog did not fire on a frozen counter")
	}
	if stalled, blocked := wd.Stalled(); !stalled || len(blocked) != 1 {
		t.Fatalf("Stalled() = %v, %v", stalled, blocked)
	}
}

// A counter that keeps moving must never trip the watchdog.
func TestWatchdogIgnoresProgress(t *testing.T) {
	var n atomic.Uint64
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
				n.Add(1)
			}
		}
	}()
	defer close(stop)
	wd := chaos.NewWatchdog(chaos.WatchdogConfig{
		Progress: n.Load,
		Window:   60 * time.Millisecond,
		OnStall:  func([]string) { t.Error("stall declared despite progress") },
	})
	wd.Start()
	time.Sleep(300 * time.Millisecond)
	wd.Stop()
	if stalled, _ := wd.Stalled(); stalled {
		t.Fatal("watchdog stalled on a moving counter")
	}
}

// Stop must be safe before Start, after Start, and twice.
func TestWatchdogStopIdempotent(t *testing.T) {
	wd := chaos.NewWatchdog(chaos.WatchdogConfig{Progress: func() uint64 { return 0 }})
	wd.Stop()
	wd.Stop()
	wd.Start() // no-op after Stop
	wd2 := chaos.NewWatchdog(chaos.WatchdogConfig{Progress: func() uint64 { return 0 }, Window: time.Hour})
	wd2.Start()
	wd2.Stop()
	wd2.Stop()
}

// The livelock the runtime cannot see: a non-blocking-get style step polls
// for an item that never arrives and re-puts its own tag, so workers stay
// busy and StepsDone keeps growing while no data is ever produced. The
// runtime never quiesces (no deadlock report); the ItemsPut watchdog must
// catch the stall and cancel the run, which then drains and returns
// ctx.Err() — distinguishing livelock from the quiesced-deadlock case the
// runtime reports itself.
func TestWatchdogCatchesRePutLivelock(t *testing.T) {
	g := cnc.NewGraph("livelock", 4)
	items := cnc.NewItemCollection[int, int](g, "it")
	tags := cnc.NewTagCollection[int](g, "tg", false)
	step := cnc.NewStepCollection(g, "s", func(i int) error {
		if i == 0 {
			items.Put(0, 0) // some real progress early on
			return nil
		}
		if _, ok := items.TryGet(99); !ok { // never produced
			tags.Put(i) // non-blocking re-put: livelock, not deadlock
			return nil
		}
		return nil
	})
	tags.Prescribe(step)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	wd := chaos.NewWatchdog(chaos.WatchdogConfig{
		Progress: func() uint64 { return g.Stats().ItemsPut },
		Blocked:  g.Blocked,
		Window:   150 * time.Millisecond,
		OnStall:  func([]string) { cancel() },
	})
	wd.Start()
	defer wd.Stop()

	start := time.Now()
	err := g.RunContext(ctx, func() {
		tags.Put(0)
		tags.Put(1)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled from the watchdog", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("livelock ran %v before the watchdog caught it", d)
	}
	if stalled, _ := wd.Stalled(); !stalled {
		t.Fatal("watchdog did not record the stall")
	}
	if s := g.Stats(); s.StepsDone == 0 {
		t.Fatal("livelock should have kept retiring steps (that is what makes it a livelock)")
	}
}

// Zero-put graphs are the degenerate stall: the progress counter never
// moves off its initial value, so there is no "last change" sample to
// anchor the window. The watchdog must treat arming time as the anchor and
// fire one window later, not wait forever for a first change.
func TestWatchdogZeroProgressFromStart(t *testing.T) {
	fired := make(chan struct{})
	wd := chaos.NewWatchdog(chaos.WatchdogConfig{
		Progress: func() uint64 { return 0 },
		Window:   50 * time.Millisecond,
		OnStall:  func([]string) { close(fired) },
	})
	wd.Start()
	defer wd.Stop()
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("watchdog never fired on a counter that never left zero")
	}
}

// The stall window is measured from the last observed change: progress
// arriving just before the window would have elapsed must push the firing
// point a full window further out, and the watchdog can never fire earlier
// than one window after that last change.
func TestWatchdogWindowAnchorsOnLastChange(t *testing.T) {
	const window = 200 * time.Millisecond
	var n atomic.Uint64
	fired := make(chan time.Time, 1)
	wd := chaos.NewWatchdog(chaos.WatchdogConfig{
		Progress: n.Load,
		Window:   window,
		OnStall:  func([]string) { fired <- time.Now() },
	})
	wd.Start()
	defer wd.Stop()
	// Bump the counter late in the first window, then freeze it for good.
	time.Sleep(window * 3 / 4)
	bumpTime := time.Now()
	n.Add(1)
	select {
	case at := <-fired:
		if since := at.Sub(bumpTime); since < window {
			t.Fatalf("fired %v after the last change, want at least the %v window", since, window)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog never fired after progress froze")
	}
}

// A zero-put graph that quiesces — the consumer parks on an item nothing
// ever produces — is a deadlock the runtime itself must name precisely; the
// runner's watchdog must not race it to a vaguer cancellation.
func TestRunnerZeroPutDeadlockNamed(t *testing.T) {
	r := &chaos.Runner{Timeout: 30 * time.Second, StallWindow: 10 * time.Second}
	target := chaos.Target{
		Name: "zero-put-deadlock",
		Run: func(ctx context.Context, tune func(*cnc.Graph)) error {
			g := cnc.NewGraph("zero-put", 2)
			items := cnc.NewItemCollection[int, int](g, "it")
			tags := cnc.NewTagCollection[int](g, "tg", false)
			step := cnc.NewStepCollection(g, "starved", func(i int) error {
				items.Get(42) // nothing ever puts: quiesced deadlock, zero items
				return nil
			})
			tags.Prescribe(step)
			tune(g)
			return g.RunContext(ctx, func() { tags.Put(1) })
		},
	}
	start := time.Now()
	res := r.Drive(target, &chaos.StepError{Prob: 1e-12, Times: 1}, 1)
	if time.Since(start) > 10*time.Second {
		t.Fatal("zero-put deadlock took the slow path out")
	}
	var dl *cnc.DeadlockError
	if !errors.As(res.Err, &dl) {
		t.Fatalf("Err = %v, want the runtime's DeadlockError", res.Err)
	}
	if len(dl.Blocked) != 1 || !strings.Contains(dl.Blocked[0], "starved@1 <- it[42]") {
		t.Fatalf("blocked = %v, want the starved instance named with its missing item", dl.Blocked)
	}
	if res.Stalled || res.DeadlineFired {
		t.Fatalf("Stalled = %v DeadlineFired = %v: the runtime's own report should have won", res.Stalled, res.DeadlineFired)
	}
}

// A zero-put livelock — busy re-puts from the first step, never any item —
// cannot quiesce, so only the watchdog can end it. The run must come back
// as a stall with the run's identity in the error, never as a hang or a
// hard-deadline kill.
func TestRunnerZeroPutLivelockStalls(t *testing.T) {
	r := &chaos.Runner{Timeout: 30 * time.Second, StallWindow: 200 * time.Millisecond}
	target := chaos.Target{
		Name: "zero-put-livelock",
		Run: func(ctx context.Context, tune func(*cnc.Graph)) error {
			g := cnc.NewGraph("zero-put-livelock", 2)
			items := cnc.NewItemCollection[int, int](g, "it")
			tags := cnc.NewTagCollection[int](g, "tg", false)
			step := cnc.NewStepCollection(g, "poll", func(i int) error {
				if _, ok := items.TryGet(42); !ok {
					tags.Put(i + 1) // ItemsPut stays 0 the whole run
				}
				return nil
			})
			tags.Prescribe(step)
			tune(g)
			return g.RunContext(ctx, func() { tags.Put(0) })
		},
	}
	start := time.Now()
	res := r.Drive(target, &chaos.StepError{Prob: 1e-12, Times: 1}, 1)
	if time.Since(start) > 10*time.Second {
		t.Fatal("zero-put livelock escaped the watchdog")
	}
	if !res.Stalled {
		t.Fatalf("Stalled = false, Err = %v; the watchdog should have ended the run", res.Err)
	}
	if res.DeadlineFired {
		t.Fatal("hard deadline fired; the watchdog should have cancelled long before")
	}
	if res.Err == nil || !errors.Is(res.Err, context.Canceled) || !strings.Contains(res.Err.Error(), "zero-put-livelock") {
		t.Fatalf("Err = %v, want wrapped context.Canceled naming the run", res.Err)
	}
}

// A true deadlock, by contrast, quiesces and is reported by the runtime
// itself — the watchdog must not be needed and must not have fired first.
func TestDeadlockStillReportedByRuntime(t *testing.T) {
	g := cnc.NewGraph("deadlock", 2)
	items := cnc.NewItemCollection[int, int](g, "it")
	tags := cnc.NewTagCollection[int](g, "tg", false)
	step := cnc.NewStepCollection(g, "s", func(i int) error {
		items.Get(99) // parks forever: quiesced deadlock
		return nil
	})
	tags.Prescribe(step)
	wd := chaos.NewWatchdog(chaos.WatchdogConfig{
		Progress: func() uint64 { return g.Stats().ItemsPut },
		Window:   10 * time.Second,
	})
	wd.Start()
	defer wd.Stop()
	err := g.Run(func() { tags.Put(1) })
	var dl *cnc.DeadlockError
	if !errors.As(err, &dl) || !strings.Contains(dl.Blocked[0], "it[99]") {
		t.Fatalf("err = %v, want runtime DeadlockError naming it[99]", err)
	}
	if stalled, _ := wd.Stalled(); stalled {
		t.Fatal("watchdog fired for a deadlock the runtime detects itself")
	}
}
