package chaos_test

import (
	"context"
	"strings"
	"testing"

	"dpflow/internal/bench"
	"dpflow/internal/chaos"
	"dpflow/internal/cnc"
	"dpflow/internal/core"
)

// TestDeterminismAuditBenchmarks replays every registered benchmark's CnC
// graph under two schedules (different worker counts and steal policies)
// and checks the item-store fingerprints are identical: the CnC runtime's
// determinism claim, verified on contents rather than just on the final
// table.
func TestDeterminismAuditBenchmarks(t *testing.T) {
	for _, b := range bench.All() {
		b := b
		t.Run(b.ID().String(), func(t *testing.T) {
			t.Parallel()
			run := func(ctx context.Context, workers int, tune func(*cnc.Graph)) error {
				// Fresh instance per replay: instances are single-use, and
				// both replays must start from identical inputs.
				in, err := b.NewInstance(chaosN, chaosBase, 7)
				if err != nil {
					return err
				}
				if _, err := in.Run(ctx, core.NativeCnC, bench.RunOpts{Workers: workers, Tune: tune}); err != nil {
					return err
				}
				return in.Verify()
			}
			diff, err := chaos.DeterminismAudit(context.Background(), run,
				chaos.Schedule{Workers: 2, Steal: cnc.StealSequential},
				chaos.Schedule{Workers: chaosWorkers, Steal: cnc.StealRandom})
			if err != nil {
				t.Fatalf("audit failed: %v", err)
			}
			if len(diff) != 0 {
				t.Fatalf("schedules produced different item stores:\n%s", strings.Join(diff, "\n"))
			}
		})
	}
}

// TestDeterminismAuditCatchesScheduleDependence audits a graph whose output
// depends on the schedule (it records the worker count into the item store
// — the deterministic stand-in for any order-dependent computation) and
// checks the audit reports the divergence, naming the item and both values.
func TestDeterminismAuditCatchesScheduleDependence(t *testing.T) {
	run := func(ctx context.Context, workers int, tune func(*cnc.Graph)) error {
		g := cnc.NewGraph("sched-dep", workers)
		out := cnc.NewItemCollection[int, int](g, "out")
		tags := cnc.NewTagCollection[int](g, "t", false)
		step := cnc.NewStepCollection(g, "s", func(i int) error {
			out.Put(i, workers)
			return nil
		})
		tags.Prescribe(step)
		tune(g)
		return g.RunContext(ctx, func() { tags.Put(0) })
	}
	diff, err := chaos.DeterminismAudit(context.Background(), run,
		chaos.Schedule{Workers: 1, Steal: cnc.StealSequential},
		chaos.Schedule{Workers: 4, Steal: cnc.StealRandom})
	if err != nil {
		t.Fatalf("audit failed: %v", err)
	}
	if len(diff) != 1 || !strings.Contains(diff[0], "out[0]") || !strings.Contains(diff[0], "1 vs 4") {
		t.Fatalf("diff = %v, want the out[0] divergence named with both values", diff)
	}
}

// TestDeterminismAuditSurfacesViolation audits a graph that double-puts an
// item: the audit must fail with the checker's write-once report (naming
// both writers) rather than fingerprinting a broken run.
func TestDeterminismAuditSurfacesViolation(t *testing.T) {
	run := func(ctx context.Context, workers int, tune func(*cnc.Graph)) error {
		g := cnc.NewGraph("double-put", workers)
		out := cnc.NewItemCollection[int, int](g, "out")
		tune(g)
		return g.RunContext(ctx, func() {
			out.Put(0, 1)
			out.Put(0, 2)
		})
	}
	_, err := chaos.DeterminismAudit(context.Background(), run,
		chaos.Schedule{Workers: 1, Steal: cnc.StealSequential},
		chaos.Schedule{Workers: 2, Steal: cnc.StealRandom})
	if err == nil || !strings.Contains(err.Error(), "write-once violation") {
		t.Fatalf("err = %v, want write-once violation surfaced", err)
	}
}
