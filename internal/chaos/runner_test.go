package chaos_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"dpflow/internal/bench"
	"dpflow/internal/chaos"
	"dpflow/internal/cnc"
	"dpflow/internal/core"
)

// Sweep geometry: 4x4 tiles per benchmark, small enough that 20 seeds x 4
// faults x every registered benchmark stays fast under -race, large enough
// that every variant exercises real cross-tile dependencies.
const (
	chaosN       = 32
	chaosBase    = 8
	chaosWorkers = 4
	chaosSeeds   = 20
)

// cncVariants are the three CnC schedules the chaos sweep rotates through
// by seed, so every (shape, fault) pair sees all of them.
var cncVariants = []core.Variant{core.NativeCnC, core.TunerCnC, core.ManualCnC}

// newBenchTarget builds a fresh single-use instance of a registered
// benchmark as a chaos target: the work state is private to the run,
// Instance.Run threads the runner's tune hook into every graph the
// benchmark builds, and Verify is the instance's own oracle (serial
// reference comparison, plus the score check for SW).
func newBenchTarget(t *testing.T, b bench.Benchmark, seed int64, v core.Variant) chaos.Target {
	t.Helper()
	in, err := b.NewInstance(chaosN, chaosBase, seed)
	if err != nil {
		t.Fatalf("%s instance: %v", b.ID(), err)
	}
	return chaos.Target{
		Name: b.ID().String() + "/" + v.String(),
		Run: func(ctx context.Context, tune func(*cnc.Graph)) error {
			_, err := in.Run(ctx, v, bench.RunOpts{Workers: chaosWorkers, Tune: tune})
			return err
		},
		Verify: in.Verify,
	}
}

// TestChaosSweep is the acceptance matrix: every registered benchmark
// under every fault for chaosSeeds seeds, rotating through the CnC
// variants.
// Each run must either complete with a table equal to the serial reference
// (possibly after retries) or return an error naming the injected fault,
// and the hard deadline must never fire.
func TestChaosSweep(t *testing.T) {
	const times = 5
	r := &chaos.Runner{
		Timeout:     60 * time.Second,
		StallWindow: 2 * time.Second,
		Retry:       times, // >= the fault budget: recoverable faults must be absorbed
		Discipline:  true,  // every run is discipline-checked; zero violations expected
	}
	for _, b := range bench.All() {
		for _, mkFault := range []func() chaos.Fault{
			func() chaos.Fault { return &chaos.StepError{Prob: 0.05, Times: times} },
			func() chaos.Fault { return &chaos.StepPanic{Prob: 0.05, Times: times} },
			func() chaos.Fault { return &chaos.DelayedPut{Prob: 0.05, Times: times, Delay: 500 * time.Microsecond} },
			func() chaos.Fault { return &chaos.DropTag{Prob: 0.02, Times: 1} },
		} {
			fault := mkFault()
			t.Run(b.ID().String()+"/"+fault.Name(), func(t *testing.T) {
				t.Parallel()
				injected := 0
				for seed := int64(0); seed < chaosSeeds; seed++ {
					v := cncVariants[seed%int64(len(cncVariants))]
					target := newBenchTarget(t, b, seed, v)
					fault := mkFault() // fresh budget per run
					res := r.Drive(target, fault, seed)
					injected += res.Injections
					if res.DeadlineFired {
						t.Fatalf("seed %d %s: hard deadline fired (stalled=%v blocked=%v)",
							seed, target.Name, res.Stalled, res.Blocked)
					}
					// Faults may fail runs, but they must never be able to
					// break the dataflow discipline: no injected error,
					// panic, delay, or drop may manufacture a double put or
					// a get-count overdraw.
					if len(res.Violations) > 0 {
						t.Fatalf("seed %d %s: fault produced discipline violations: %v",
							seed, target.Name, res.Violations)
					}
					if res.Err == nil {
						// Completed and verified against the serial
						// reference — the leak-freedom claim must hold
						// too: these graphs declare get-counts, so every
						// item put must have been freed despite the
						// injected retries, re-reads, and delays.
						if res.LiveItems != 0 {
							t.Fatalf("seed %d %s: verified run leaked %d items (freed %d)",
								seed, target.Name, res.LiveItems, res.ItemsFreed)
						}
						if res.ItemsFreed == 0 {
							t.Fatalf("seed %d %s: verified run freed no items; get-counts not wired", seed, target.Name)
						}
						if res.Discipline.Puts == 0 {
							t.Fatalf("seed %d %s: discipline checker saw no puts; checking is vacuous", seed, target.Name)
						}
						continue
					}
					// A failed run must name the fault precisely and must
					// stem from an actual injection, not a runtime bug.
					if res.Injections == 0 {
						t.Fatalf("seed %d %s: error with zero injections: %v", seed, target.Name, res.Err)
					}
					if !errors.Is(res.Err, chaos.ErrInjected) && !strings.Contains(res.Err.Error(), fault.Name()) {
						t.Fatalf("seed %d %s: error does not name the fault: %v", seed, target.Name, res.Err)
					}
					if fault.Recoverable() {
						// Retry >= Times guarantees recovery for pre-body faults.
						t.Fatalf("seed %d %s: recoverable fault %s not absorbed by retry budget: %v",
							seed, target.Name, fault.Name(), res.Err)
					}
				}
				if injected == 0 {
					t.Fatalf("%s/%s: fault never fired across %d seeds — sweep is vacuous",
						b.ID(), fault.Name(), chaosSeeds)
				}
			})
		}
	}
}

// TestRunnerStallPath drives a target that livelocks on its own (a
// NonBlockingCnC-style re-put loop) under a fault that never fires, and
// checks the Runner's watchdog exit: cancelled run, Stalled set, deadline
// untouched, error wrapped with the run's identity.
func TestRunnerStallPath(t *testing.T) {
	r := &chaos.Runner{Timeout: 30 * time.Second, StallWindow: 250 * time.Millisecond}
	target := chaos.Target{
		Name: "livelock",
		Run: func(ctx context.Context, tune func(*cnc.Graph)) error {
			g := cnc.NewGraph("livelock", chaosWorkers)
			items := cnc.NewItemCollection[int, int](g, "it")
			tags := cnc.NewTagCollection[int](g, "tg", false)
			step := cnc.NewStepCollection(g, "s", func(i int) error {
				if _, ok := items.TryGet(99); !ok {
					tags.Put(i)
				}
				return nil
			})
			tags.Prescribe(step)
			tune(g)
			return g.RunContext(ctx, func() { tags.Put(1) })
		},
	}
	res := r.Drive(target, &chaos.StepError{Prob: 1e-12, Times: 1}, 1)
	if res.Err == nil || !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("Err = %v, want wrapped context.Canceled from the watchdog", res.Err)
	}
	if !res.Stalled {
		t.Fatal("Result.Stalled not set")
	}
	if res.DeadlineFired {
		t.Fatal("hard deadline fired; the watchdog should have cancelled long before")
	}
	if !strings.Contains(res.Err.Error(), "livelock") {
		t.Fatalf("Err does not identify the run: %v", res.Err)
	}
}

// TestRunnerVerifyFailureNamesFault checks the corrupted-result path: a
// run that completes but fails verification must produce an ErrInjected-
// wrapped error naming the fault.
func TestRunnerVerifyFailureNamesFault(t *testing.T) {
	r := &chaos.Runner{Timeout: 10 * time.Second}
	target := chaos.Target{
		Name:   "always-wrong",
		Run:    func(ctx context.Context, tune func(*cnc.Graph)) error { return nil },
		Verify: func() error { return errors.New("result mismatch") },
	}
	res := r.Drive(target, &chaos.DropTag{Prob: 1, Times: 1}, 3)
	if !errors.Is(res.Err, chaos.ErrInjected) {
		t.Fatalf("Err = %v, want ErrInjected wrap", res.Err)
	}
	if !strings.Contains(res.Err.Error(), "drop-tag") || !strings.Contains(res.Err.Error(), "always-wrong") {
		t.Fatalf("Err does not name fault and target: %v", res.Err)
	}
}

// TestRunnerDetectsLeak drives a target whose graph declares a get-count
// higher than the actual read count: the run completes and verifies, but
// items stay live, and the runner must flag the leak as an error.
func TestRunnerDetectsLeak(t *testing.T) {
	r := &chaos.Runner{Timeout: 10 * time.Second}
	target := chaos.Target{
		Name: "leaky",
		Run: func(ctx context.Context, tune func(*cnc.Graph)) error {
			g := cnc.NewGraph("leaky", 1)
			tune(g)
			items := cnc.NewItemCollection[int, int](g, "items")
			items.WithGetCount(func(int) int { return 2 }) // actual reads: 1
			tags := cnc.NewTagCollection[int](g, "tags", false)
			step := cnc.NewStepCollection(g, "read", func(i int) error {
				items.Get(i)
				return nil
			})
			step.WithGets(func(i int) []cnc.Dep { return []cnc.Dep{items.Key(i)} })
			tags.Prescribe(step)
			return g.RunContext(ctx, func() {
				items.Put(1, 10)
				tags.Put(1)
			})
		},
		Verify: func() error { return nil },
	}
	res := r.Drive(target, &chaos.DropTag{Prob: 0, Times: 0}, 1)
	if res.Err == nil || !strings.Contains(res.Err.Error(), "leaked") {
		t.Fatalf("Err = %v, want leak report", res.Err)
	}
	if res.LiveItems != 1 || res.ItemsFreed != 0 {
		t.Fatalf("LiveItems = %d, ItemsFreed = %d, want 1 live / 0 freed", res.LiveItems, res.ItemsFreed)
	}
}
