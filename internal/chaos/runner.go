package chaos

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"dpflow/internal/cnc"
	"dpflow/internal/determinacy"
)

// Target is one workload the chaos runner can drive: a benchmark run plus
// the oracle that checks its result.
type Target struct {
	// Name identifies the target in results.
	Name string
	// Run executes the workload once under ctx. It must call tune with
	// every cnc.Graph it builds, before running it — the benchmark
	// packages expose this as the tune parameter of their RunCnCContext
	// entry points — and leave its output where Verify can inspect it.
	Run func(ctx context.Context, tune func(*cnc.Graph)) error
	// Verify checks the result of a nominally successful run against an
	// independent reference (typically matrix.Equal versus the serial
	// implementation). It runs only when Run returned nil.
	Verify func() error
}

// Runner drives targets under injected faults with a liveness harness
// around every run: a hard deadline (the run can never hang) and a
// progress watchdog that cancels a stalled run long before the deadline.
type Runner struct {
	// Timeout is the hard per-run deadline (default 30s). In a passing
	// run it must never fire; the watchdog is the intended stall exit.
	Timeout time.Duration
	// StallWindow is the watchdog's no-progress window (default 2s).
	StallWindow time.Duration
	// Retry is the step retry budget installed on every graph of a run
	// under a Recoverable fault; set it at least as high as the fault's
	// injection budget to make recovery certain.
	Retry int
	// Discipline installs a fresh dataflow-discipline checker
	// (determinacy.DisciplineChecker) on every graph of the run. Any
	// write-once or get-count violation the checker records fails the run
	// even when the result verified — injected faults must never be able
	// to break the discipline, only to fail or stall the run.
	Discipline bool
}

// Result reports one driven run.
type Result struct {
	Target string
	Fault  string
	Seed   int64
	// Injections is how many times the fault actually fired.
	Injections int
	// Fired lists where ("step@tag" / "coll[key]") it fired.
	Fired []string
	// Err is nil exactly when the run completed and verified. Any injected
	// failure that surfaced — directly, via a deadlock it caused, or via a
	// corrupted result — is wrapped so errors.Is(Err, ErrInjected) or the
	// fault name identifies it.
	Err error
	// Stalled reports that the watchdog cancelled the run.
	Stalled bool
	// Blocked is the wait-state dump taken at stall time.
	Blocked []string
	// DeadlineFired reports that the hard deadline expired — a harness
	// failure in any expected scenario, fatal in tests.
	DeadlineFired bool
	// LiveItems, PeakLiveItems, ItemsFreed, and BackpressureStalls are the
	// memory accounting of the last graph the run built. After a verified
	// run of a graph with declared get-counts, LiveItems must be 0 — the
	// leak-freedom claim the runner enforces itself.
	LiveItems          int64
	PeakLiveItems      int64
	ItemsFreed         int64
	BackpressureStalls int64
	// Violations are the dataflow-discipline findings across every graph
	// the run built (always empty unless Runner.Discipline is set; expected
	// empty even then — the runtimes must keep the discipline under every
	// fault).
	Violations []error
	// Discipline is the checker activity of the last graph, evidence the
	// checking was live (Puts > 0) rather than vacuously clean.
	Discipline determinacy.DisciplineStats
}

// Drive runs target once under fault with the given seed and classifies
// the outcome. Every run ends in bounded time: normal completion, a
// precise error, watchdog cancellation, or (never, if the harness is
// healthy) the hard deadline.
func (r *Runner) Drive(target Target, fault Fault, seed int64) Result {
	timeout := r.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	rng := rand.New(rand.NewSource(seed))
	res := Result{Target: target.Name, Fault: fault.Name(), Seed: seed}

	var probe *Probe
	var wd *Watchdog
	var graph *cnc.Graph
	var checkers []*determinacy.DisciplineChecker
	tune := func(g *cnc.Graph) {
		graph = g
		if r.Discipline {
			dc := determinacy.NewDisciplineChecker()
			g.WithDisciplineCheck(dc)
			checkers = append(checkers, dc)
		}
		probe = fault.Arm(g, rng)
		if r.Retry > 0 && fault.Recoverable() {
			g.SetRetry(r.Retry)
		}
		if wd != nil {
			wd.Stop()
		}
		wd = NewWatchdog(WatchdogConfig{
			// ItemsPut rather than StepsDone: a re-put livelock keeps
			// retiring steps without producing data, and data is the
			// progress that matters.
			Progress: func() uint64 { return g.Stats().ItemsPut },
			Blocked:  g.Blocked,
			Window:   r.StallWindow,
			OnStall:  func([]string) { cancel() },
		})
		wd.Start()
	}

	err := target.Run(ctx, tune)
	if wd != nil {
		wd.Stop()
		res.Stalled, res.Blocked = wd.Stalled()
	}
	if probe != nil {
		res.Injections = probe.Count()
		res.Fired = probe.Fired()
	}
	res.DeadlineFired = errors.Is(err, context.DeadlineExceeded) || ctx.Err() == context.DeadlineExceeded

	var stats cnc.Stats
	if graph != nil {
		stats = graph.Stats()
		res.LiveItems = stats.LiveItems
		res.PeakLiveItems = stats.PeakLiveItems
		res.ItemsFreed = stats.ItemsFreed
		res.BackpressureStalls = stats.BackpressureStalls
	}
	for _, dc := range checkers {
		res.Violations = append(res.Violations, dc.Violations()...)
	}
	if n := len(checkers); n > 0 {
		res.Discipline = checkers[n-1].Stats()
	}

	switch {
	case err != nil:
		res.Err = fmt.Errorf("chaos: %s under fault %s (seed %d, %d injections): %w",
			target.Name, fault.Name(), seed, res.Injections, err)
	case target.Verify != nil:
		if verr := target.Verify(); verr != nil {
			res.Err = fmt.Errorf("%w: fault %s corrupted %s (seed %d, fired %v): %v",
				ErrInjected, fault.Name(), target.Name, seed, res.Fired, verr)
		}
	}
	// Leak freedom rides along with every verified run: a graph with
	// declared get-counts that survived the fault must also have freed
	// every item it put. A leak here means a fault path (retry, abort
	// re-read, dropped tag, delayed put) broke the release accounting.
	if res.Err == nil && graph != nil && graph.HasGetCounts() {
		if stats.LiveItems != 0 {
			res.Err = fmt.Errorf("chaos: %s under fault %s (seed %d): run verified but leaked %d of %d items (freed %d)",
				target.Name, fault.Name(), seed, stats.LiveItems, stats.ItemsPut, stats.ItemsFreed)
		}
	}
	// The dataflow discipline rides along the same way: faults may fail or
	// stall a run, but a verified run that broke write-once or overdrew a
	// get-count is a determinism bug regardless of what was injected.
	if res.Err == nil && len(res.Violations) > 0 {
		res.Err = fmt.Errorf("chaos: %s under fault %s (seed %d): run verified but broke dataflow discipline (%d violations): %w",
			target.Name, fault.Name(), seed, len(res.Violations), res.Violations[0])
	}
	return res
}
