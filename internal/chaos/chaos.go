// Package chaos is the fault-injection and liveness-monitoring harness for
// the repository's two runtimes. It perturbs CnC graph executions through
// the cnc.Hooks interception points — step panics, transient step errors,
// delayed item puts, dropped tags — and watches runs for livelock with a
// progress watchdog, so the robustness properties the runtimes claim
// (panic containment, precise deadlock reports, cooperative cancellation,
// retry-based recovery) are exercised under adversarial schedules instead
// of only on the happy path.
//
// The package deliberately lives outside internal/cnc: the runtime exposes
// generic hooks (cnc.Hooks, cnc.Graph.SetRetry, cnc.Graph.Blocked) and all
// chaos-specific behaviour is composed here.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"dpflow/internal/cnc"
)

// ErrInjected marks every failure this package injects, so tests and the
// Runner can tell an injected fault from a genuine runtime bug with
// errors.Is (error-returning faults preserve the chain; panic faults
// surface through the runtime's panic-containment message and are matched
// by name).
var ErrInjected = errors.New("chaos: injected fault")

// Probe records what a fault actually did during one run: one entry per
// injection, labelled "step@tag" or "coll[key]". Faults report their probe
// from Arm so tests can assert both that the fault fired and where.
type Probe struct {
	mu    sync.Mutex
	fired []string
}

func (p *Probe) record(ev string) {
	p.mu.Lock()
	p.fired = append(p.fired, ev)
	p.mu.Unlock()
}

// Count returns the number of injections so far.
func (p *Probe) Count() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.fired)
}

// Fired returns a copy of the injection log.
func (p *Probe) Fired() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.fired...)
}

// Fault is one injectable failure mode. Arm installs the fault's hooks on
// the graph (replacing any hook set) and returns the probe recording its
// injections. A fault must be armed on at most one graph at a time.
type Fault interface {
	// Name identifies the fault in errors and logs.
	Name() string
	// Recoverable reports whether a sufficient step retry budget absorbs
	// the fault (true for pre-body errors and panics, which fail attempts
	// before any Put; false for dropped tags, which lose work silently).
	Recoverable() bool
	// Arm installs the fault on g, drawing all randomness from rng.
	Arm(g *cnc.Graph, rng *rand.Rand) *Probe
}

// armer is the shared fire-decision state of a fault: a seeded RNG (not
// thread-safe, hence the mutex — hooks run concurrently on every worker)
// and a total injection budget.
type armer struct {
	mu   sync.Mutex
	rng  *rand.Rand
	prob float64
	left int
}

func newArmer(rng *rand.Rand, prob float64, times int) *armer {
	if prob <= 0 {
		prob = 0.1
	}
	if times <= 0 {
		times = 1
	}
	return &armer{rng: rng, prob: prob, left: times}
}

// fire decides one injection opportunity.
func (a *armer) fire() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.left <= 0 || a.rng.Float64() >= a.prob {
		return false
	}
	a.left--
	return true
}

// StepError injects transient step failures: each execution attempt fails
// with probability Prob (before the body runs, so the attempt has no side
// effects and re-execution is sound) until Times injections have happened.
// A retry budget >= Times is guaranteed to absorb it.
type StepError struct {
	Prob  float64 // per-attempt injection probability (default 0.1)
	Times int     // total injection budget (default 1)
}

// Name implements Fault.
func (f *StepError) Name() string { return "step-error" }

// Recoverable implements Fault.
func (f *StepError) Recoverable() bool { return true }

// Arm implements Fault.
func (f *StepError) Arm(g *cnc.Graph, rng *rand.Rand) *Probe {
	p := &Probe{}
	a := newArmer(rng, f.Prob, f.Times)
	g.SetHooks(&cnc.Hooks{BeforeStep: func(step string, tag any) error {
		if !a.fire() {
			return nil
		}
		p.record(fmt.Sprintf("%s@%v", step, tag))
		return fmt.Errorf("%w: transient error in %s@%v", ErrInjected, step, tag)
	}})
	return p
}

// StepPanic injects step panics: like StepError, but the attempt dies by
// panicking inside the BeforeStep hook, which runs under the step's panic
// containment — the runtime must convert it into a step failure, never
// crash a worker. Recoverable by the same retry argument.
type StepPanic struct {
	Prob  float64
	Times int
}

// Name implements Fault.
func (f *StepPanic) Name() string { return "step-panic" }

// Recoverable implements Fault.
func (f *StepPanic) Recoverable() bool { return true }

// Arm implements Fault.
func (f *StepPanic) Arm(g *cnc.Graph, rng *rand.Rand) *Probe {
	p := &Probe{}
	a := newArmer(rng, f.Prob, f.Times)
	g.SetHooks(&cnc.Hooks{BeforeStep: func(step string, tag any) error {
		if !a.fire() {
			return nil
		}
		p.record(fmt.Sprintf("%s@%v", step, tag))
		panic(fmt.Errorf("%w: panic in %s@%v", ErrInjected, step, tag))
	}})
	return p
}

// DelayedPut injects scheduling jitter: item puts stall for Delay with
// probability Prob. It never fails anything — it exists to shake out
// ordering assumptions (a consumer scheduled before its producer's put
// lands must still park and requeue correctly), so every run under it must
// complete with a correct table and no retries.
type DelayedPut struct {
	Prob  float64
	Delay time.Duration // default 1ms
	Times int
}

// Name implements Fault.
func (f *DelayedPut) Name() string { return "delayed-put" }

// Recoverable implements Fault.
func (f *DelayedPut) Recoverable() bool { return true }

// Arm implements Fault.
func (f *DelayedPut) Arm(g *cnc.Graph, rng *rand.Rand) *Probe {
	p := &Probe{}
	a := newArmer(rng, f.Prob, f.Times)
	delay := f.Delay
	if delay <= 0 {
		delay = time.Millisecond
	}
	g.SetHooks(&cnc.Hooks{BeforeItemPut: func(coll string, key any) {
		if !a.fire() {
			return
		}
		p.record(fmt.Sprintf("%s[%v]", coll, key))
		time.Sleep(delay)
	}})
	return p
}

// DropTag injects lost control messages: a tag put is silently discarded
// with probability Prob. The prescribed step instance never exists, so the
// graph either completes without its work (a wrong result the verifier
// must catch) or quiesces into a DeadlockError naming the starved
// consumers. Not recoverable: no retry budget can resurrect a tag the
// runtime never saw.
type DropTag struct {
	Prob  float64
	Times int
}

// Name implements Fault.
func (f *DropTag) Name() string { return "drop-tag" }

// Recoverable implements Fault.
func (f *DropTag) Recoverable() bool { return false }

// Arm implements Fault.
func (f *DropTag) Arm(g *cnc.Graph, rng *rand.Rand) *Probe {
	p := &Probe{}
	a := newArmer(rng, f.Prob, f.Times)
	g.SetHooks(&cnc.Hooks{DropTag: func(coll string, tag any) bool {
		if !a.fire() {
			return false
		}
		p.record(fmt.Sprintf("%s[%v]", coll, tag))
		return true
	}})
	return p
}

// Faults returns one instance of every fault type with the given
// per-opportunity probability and total budget — the standard battery the
// chaos tests sweep.
func Faults(prob float64, times int) []Fault {
	return []Fault{
		&StepError{Prob: prob, Times: times},
		&StepPanic{Prob: prob, Times: times},
		&DelayedPut{Prob: prob, Times: times},
		&DropTag{Prob: prob, Times: times},
	}
}
