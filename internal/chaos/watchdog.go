package chaos

import (
	"sync"
	"time"
)

// WatchdogConfig configures a progress watchdog.
//
// The watchdog covers the liveness failure the runtime cannot detect
// itself. A graph that quiesces with parked instances is a *deadlock*: the
// runtime already turns it into a precise DeadlockError. A graph that
// never quiesces because workers keep busy without advancing — the
// non-blocking variant re-putting tags whose dependencies never arrive is
// the canonical case — is a *livelock*: steps run, counters like
// StepsStarted grow, but no new results appear. The watchdog samples a
// progress counter and declares a stall when it stops moving for Window.
type WatchdogConfig struct {
	// Progress returns a monotone counter of real progress. For CnC graphs
	// cnc.Stats.StepsDone is the issue-level default; use ItemsPut to
	// catch re-put livelocks, where failed attempts still retire "done"
	// steps without producing data.
	Progress func() uint64
	// Blocked, when non-nil, is sampled once at stall time to dump the
	// wait state (cnc.Graph.Blocked for CnC graphs).
	Blocked func() []string
	// Window is how long Progress may stand still before the watchdog
	// declares a stall (default 2s).
	Window time.Duration
	// Poll is the sampling period (default Window/8, minimum 1ms).
	Poll time.Duration
	// OnStall, when non-nil, runs exactly once, on the watchdog goroutine,
	// when the stall is declared — typically a context.CancelFunc so the
	// stalled run drains and returns instead of hanging.
	OnStall func(blocked []string)
	// RemoteBusy, when non-nil, is sampled at every would-be stall: a
	// nonzero value means the run is parked inside a remote operation
	// (cnc.Graph.BackendBusy for distributed runs) — possibly sitting out a
	// retry/backoff window far longer than Window — not livelocked. The
	// watchdog defers the stall verdict, counts the deferral in Stats, and
	// restarts its window, so transport stalls surface through the
	// transport's own deadline machinery instead of as a false livelock.
	RemoteBusy func() int64
}

// WatchdogStats counts what the watchdog observed while monitoring one run.
type WatchdogStats struct {
	// RemoteWaitDeferrals is how many times a would-be stall verdict was
	// deferred because RemoteBusy reported in-flight remote operations —
	// the "parked on a remote get" vs livelock distinction, made visible.
	RemoteWaitDeferrals uint64
}

// Watchdog monitors one run. Start it after the monitored graph exists and
// Stop it (idempotently) when the run returns.
type Watchdog struct {
	cfg  WatchdogConfig
	stop chan struct{}
	done chan struct{}

	mu       sync.Mutex
	stalled  bool
	blockedA []string
	started  bool
	stopped  bool
	stats    WatchdogStats
}

// NewWatchdog builds a watchdog; Start arms it.
func NewWatchdog(cfg WatchdogConfig) *Watchdog {
	if cfg.Window <= 0 {
		cfg.Window = 2 * time.Second
	}
	if cfg.Poll <= 0 {
		cfg.Poll = cfg.Window / 8
	}
	if cfg.Poll < time.Millisecond {
		cfg.Poll = time.Millisecond
	}
	return &Watchdog{cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}
}

// Start launches the monitor goroutine. It may be called once.
func (w *Watchdog) Start() {
	w.mu.Lock()
	if w.started {
		w.mu.Unlock()
		return
	}
	w.started = true
	w.mu.Unlock()
	go w.loop()
}

// Stop shuts the monitor down and waits for its goroutine to exit, so a
// stopped watchdog never leaks and never fires afterwards. Idempotent.
func (w *Watchdog) Stop() {
	w.mu.Lock()
	if !w.started || w.stopped {
		w.started = true // Stop before Start: make Start a no-op
		w.stopped = true
		w.mu.Unlock()
		return
	}
	w.stopped = true
	w.mu.Unlock()
	close(w.stop)
	<-w.done
}

// Stalled reports whether the watchdog declared a stall, and the blocked
// dump taken at that moment.
func (w *Watchdog) Stalled() (bool, []string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stalled, append([]string(nil), w.blockedA...)
}

// Stats returns a snapshot of the watchdog's observation counters.
func (w *Watchdog) Stats() WatchdogStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

func (w *Watchdog) loop() {
	defer close(w.done)
	ticker := time.NewTicker(w.cfg.Poll)
	defer ticker.Stop()
	last := w.cfg.Progress()
	lastChange := time.Now()
	for {
		select {
		case <-w.stop:
			return
		case <-ticker.C:
		}
		if cur := w.cfg.Progress(); cur != last {
			last = cur
			lastChange = time.Now()
			continue
		}
		if time.Since(lastChange) < w.cfg.Window {
			continue
		}
		if w.cfg.RemoteBusy != nil && w.cfg.RemoteBusy() > 0 {
			// Parked inside a remote operation, not livelocked: the
			// transport's deadline machinery owns this wait. Defer the
			// verdict and restart the window.
			w.mu.Lock()
			w.stats.RemoteWaitDeferrals++
			w.mu.Unlock()
			lastChange = time.Now()
			continue
		}
		var blocked []string
		if w.cfg.Blocked != nil {
			blocked = w.cfg.Blocked()
		}
		w.mu.Lock()
		w.stalled = true
		w.blockedA = blocked
		w.mu.Unlock()
		if w.cfg.OnStall != nil {
			w.cfg.OnStall(blocked)
		}
		return // one-shot: the stall handler owns recovery from here
	}
}
